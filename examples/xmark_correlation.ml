(* The Section 3.2 scenario: the XMark auction data hides a correlation —
   expensive auctions attract more bidders. The two queries Q1 (cheap
   auctions) and Qm1 (expensive auctions) have near-identical shapes and
   near-identical auction counts, yet their optimal plans differ. ROX
   notices by re-sampling and picks different edge orders.

     dune exec examples/xmark_correlation.exe *)

open Rox_storage
open Rox_xquery
open Rox_joingraph

let query op =
  Printf.sprintf
    {|let $d := doc("xmark.xml")
for $o in $d//open_auction[.//current/text() %s 145],
    $p in $d//person[.//province],
    $i in $d//item[./quantity = 1]
where $o//bidder//personref/@person = $p/@id and
      $o//itemref/@item = $i/@id
return $o|}
    op

let describe_run engine name src =
  let compiled = Compile.compile_string engine src in
  let answer, result = Rox_core.Optimizer.answer_default compiled in
  let graph = compiled.Compile.graph in
  let c = result.Rox_core.Optimizer.counter in
  Printf.printf "%s: %d auctions, sampling=%d execution=%d work units\n" name
    (Array.length answer)
    (Rox_algebra.Cost.read c Rox_algebra.Cost.Sampling)
    (Rox_algebra.Cost.read c Rox_algebra.Cost.Execution);
  Printf.printf "  edge order:\n";
  List.iteri
    (fun i id ->
      let e = Graph.edge graph id in
      Printf.printf "    %2d. %s %s %s\n" (i + 1)
        (Vertex.label (Graph.vertex graph e.Edge.v1))
        (Edge.label e)
        (Vertex.label (Graph.vertex graph e.Edge.v2)))
    result.Rox_core.Optimizer.edge_order;
  result.Rox_core.Optimizer.edge_order

let () =
  let engine = Engine.create () in
  let params = Rox_workload.Xmark.scaled 1.0 in
  ignore (Rox_workload.Xmark.generate ~params engine ~uri:"xmark.xml" : Engine.docref);
  let r = Engine.get engine 0 in
  Printf.printf "generated xmark.xml: %d nodes, %d auctions, %d persons, %d items\n\n"
    (Rox_shred.Doc.node_count r.Engine.doc)
    (Rox_util.Column.length (Element_index.lookup_name r.Engine.elements "open_auction"))
    (Rox_util.Column.length (Element_index.lookup_name r.Engine.elements "person"))
    (Rox_util.Column.length (Element_index.lookup_name r.Engine.elements "item"));
  let o1 = describe_run engine "Q1  (current < 145, few bidders each)" (query "<") in
  print_newline ();
  let o2 = describe_run engine "Qm1 (current > 145, many bidders each)" (query ">") in
  print_newline ();
  if o1 <> o2 then
    print_endline
      "The two orders differ: ROX detected the price/bidder correlation at\n\
       run-time — a static optimizer sees identical statistics for both queries."
  else
    print_endline "(orders coincide at this scale — rerun with a larger factor)"

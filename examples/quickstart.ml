(* Quickstart: load an XML document, run an XQuery through the ROX run-time
   optimizer, and read the answer back as XML.

     dune exec examples/quickstart.exe *)

let document =
  {|<library>
  <book year="2009"><title>Run-time Query Optimization</title>
    <author>Abdel Kader</author><author>Boncz</author></book>
  <book year="2004"><title>Staircase Join</title>
    <author>Grust</author><author>van Keulen</author><author>Teubner</author></book>
  <book year="2009"><title>Join Graph Isolation</title>
    <author>Grust</author><author>Mayr</author><author>Rittinger</author></book>
</library>|}

let query =
  {|for $b in doc("library.xml")//book[./@year = 2009],
    $a in doc("library.xml")//author
where $b//author/text() = $a/text()
return $a|}

let () =
  (* 1. An engine owns documents, string pools and indices. *)
  let engine = Rox_storage.Engine.create () in
  let docref =
    Rox_storage.Engine.add_tree engine ~uri:"library.xml"
      (Rox_xmldom.Xml_parser.parse_string document)
  in
  Printf.printf "loaded library.xml: %d nodes\n\n"
    (Rox_shred.Doc.node_count docref.Rox_storage.Engine.doc);

  (* 2. Compile the XQuery: static compilation stops at the Join Graph. *)
  let compiled = Rox_xquery.Compile.compile_string engine query in
  print_string "Join Graph isolated from the query:\n";
  print_string (Rox_joingraph.Pretty.to_string compiled.Rox_xquery.Compile.graph);

  (* 3. Run ROX: optimization happens during execution, driven by sampling. *)
  let trace = Rox_joingraph.Trace.create () in
  (* One explicit session owns the run: seed, trace, counter, budgets. *)
  let session = Rox_core.Session.create ~trace () in
  let answer, result = Rox_core.Optimizer.answer session compiled in

  (* 4. The answer is a sequence of nodes of the queried document. *)
  let doc = docref.Rox_storage.Engine.doc in
  Printf.printf "\nanswer (%d author elements, XQuery order):\n" (Array.length answer);
  Array.iter
    (fun pre ->
      let text =
        Rox_shred.Navigation.children doc pre
        |> Array.to_list
        |> List.map (fun c -> Rox_shred.Doc.value doc c)
        |> String.concat ""
      in
      Printf.printf "  <author>%s</author>\n" text)
    answer;

  (* 5. Inspect what the optimizer did. *)
  let c = result.Rox_core.Optimizer.counter in
  Printf.printf "\nwork units: sampling=%d execution=%d\n"
    (Rox_algebra.Cost.read c Rox_algebra.Cost.Sampling)
    (Rox_algebra.Cost.read c Rox_algebra.Cost.Execution);
  Printf.printf "edges executed in order: %s\n"
    (String.concat " -> "
       (List.map string_of_int result.Rox_core.Optimizer.edge_order))

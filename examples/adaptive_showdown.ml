(* ROX vs a static plan, head to head, as the data grows. The static plan is
   produced once by the generic classical heuristic (exact single-document
   estimates over base tables, no correlation knowledge) and re-executed at
   every scale; ROX re-optimizes at run-time on each instance.

     dune exec examples/adaptive_showdown.exe *)

open Rox_storage
open Rox_xquery

let query =
  {|let $d := doc("xmark.xml")
for $o in $d//open_auction[.//current/text() > 145],
    $p in $d//person[.//province]
where $o//bidder//personref/@person = $p/@id
return $o|}

let () =
  Printf.printf "%-8s %12s %12s %12s %8s\n" "scale" "static work" "ROX total" "ROX exec"
    "speedup";
  List.iter
    (fun factor ->
      let engine = Engine.create () in
      let params = Rox_workload.Xmark.scaled factor in
      ignore (Rox_workload.Xmark.generate ~params engine ~uri:"xmark.xml" : Engine.docref);
      let compiled = Compile.compile_string engine query in
      (* Static plan from the classical heuristic. *)
      let order =
        Rox_classical.Classical_opt.static_order engine compiled.Compile.graph
      in
      let static_run =
        Rox_classical.Executor.execute (Rox_core.Session.create ()) engine
          compiled.Compile.graph order
      in
      let static_work = Rox_algebra.Cost.total static_run.Rox_classical.Executor.counter in
      (* ROX. *)
      let result = Rox_core.Optimizer.run_default compiled in
      let c = result.Rox_core.Optimizer.counter in
      let rox_total = Rox_algebra.Cost.total c in
      let rox_exec = Rox_algebra.Cost.read c Rox_algebra.Cost.Execution in
      Printf.printf "%-8s %12d %12d %12d %7.1fx\n"
        (Printf.sprintf "%.2f" factor)
        static_work rox_total rox_exec
        (float_of_int static_work /. float_of_int rox_total))
    [ 0.1; 0.25; 0.5; 1.0; 2.0 ];
  print_endline
    "\n(static pays for the undetected price/bidder correlation; ROX's total\n\
     includes all of its sampling)"

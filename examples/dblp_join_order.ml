(* The Figure 4/5 scenario: joining the author sets of four DBLP venues.
   Three are database conferences (strongly correlated author pools), one is
   image processing (nearly disjoint). The classical optimizer orders joins
   by input size and walks into the correlation; ROX samples its way around
   it.

     dune exec examples/dblp_join_order.exe *)

open Rox_workload
open Rox_classical

let () =
  let names = [ "VLDB"; "ICDE"; "ICIP"; "ADBIS" ] in
  let venues = List.map Dblp.find_venue names in
  let engine = Rox_storage.Engine.create () in
  let loaded = Dblp.load ~params:{ Dblp.default_gen with Dblp.scale = 5 } engine venues in
  List.iter
    (fun l ->
      Printf.printf "%-8s %-6s %6d author tags\n" l.Dblp.venue.Dblp.name
        (String.concat "," (List.map Dblp.area_name l.Dblp.venue.Dblp.areas))
        l.Dblp.author_tag_count)
    loaded;
  let query = Dblp.query_for (List.map Dblp.uri_of venues) in
  Printf.printf "\n%s\n\n" query;
  let compiled = Rox_xquery.Compile.compile_string engine query in
  let graph = compiled.Rox_xquery.Compile.graph in
  print_string (Rox_joingraph.Pretty.to_string graph);
  let template = Option.get (Enumerate.analyze graph) in

  (* The classical optimizer: exact per-document stats, smallest-input-first
     across documents. *)
  let classical_order = Classical_opt.join_order engine graph template in
  Printf.printf "\nclassical join order (smallest-input-first): %s\n"
    (Enumerate.order_name classical_order);
  let best_classical =
    List.map
      (fun placement ->
        let edges = Enumerate.plan_edges graph template ~order:classical_order ~placement in
        let run = Executor.execute (Rox_core.Session.create ()) engine graph edges in
        Rox_algebra.Cost.total run.Executor.counter)
      Enumerate.placements
    |> List.fold_left min max_int
  in
  Printf.printf "classical cost (best canonical placement): %d work units\n" best_classical;

  (* ROX. *)
  let result = Rox_core.Optimizer.run_default compiled in
  let c = result.Rox_core.Optimizer.counter in
  let rox_total = Rox_algebra.Cost.total c in
  Printf.printf "\nROX cost: %d work units (%d sampling + %d execution)\n" rox_total
    (Rox_algebra.Cost.read c Rox_algebra.Cost.Sampling)
    (Rox_algebra.Cost.read c Rox_algebra.Cost.Execution);
  let nrows = Rox_joingraph.Relation.rows result.Rox_core.Optimizer.relation in
  if nrows = 0 then
    print_endline
      "ROX found no author publishing in all four venues - a needle-in-haystack\n\
       query, which is exactly when picking the right join order matters most"
  else Printf.printf "ROX found %d result combinations across the four venues\n" nrows;
  Printf.printf "\nclassical / ROX = %.1fx\n"
    (float_of_int best_classical /. float_of_int rox_total)

examples/adaptive_showdown.ml: Compile Engine List Printf Rox_algebra Rox_classical Rox_core Rox_storage Rox_workload Rox_xquery

examples/quickstart.mli:

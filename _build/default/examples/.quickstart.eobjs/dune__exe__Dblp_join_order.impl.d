examples/dblp_join_order.ml: Classical_opt Dblp Enumerate Executor List Option Printf Rox_algebra Rox_classical Rox_core Rox_joingraph Rox_storage Rox_workload Rox_xquery String

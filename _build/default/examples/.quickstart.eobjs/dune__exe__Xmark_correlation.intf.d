examples/xmark_correlation.mli:

examples/quickstart.ml: Array List Printf Rox_algebra Rox_core Rox_joingraph Rox_shred Rox_storage Rox_xmldom Rox_xquery String

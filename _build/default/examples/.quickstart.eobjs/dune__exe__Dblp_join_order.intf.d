examples/dblp_join_order.mli:

examples/adaptive_showdown.mli:

examples/xmark_correlation.ml: Array Compile Edge Element_index Engine Graph List Printf Rox_algebra Rox_core Rox_joingraph Rox_shred Rox_storage Rox_workload Rox_xquery Vertex

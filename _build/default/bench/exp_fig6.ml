(* E7 — Figure 6: elapsed cost of ROX vs the four plan classes over document
   combinations grouped by area distribution (2:2 / 3:1 / 4:0) and ordered
   by the correlation measure C. Costs are deterministic work units,
   normalized to the optimal plan of each combination. *)

open Rox_workload
open Bench_common

type row = {
  group : Combos.group;
  names : string list;
  correlation : float;
  costs : plan_class_costs;
}

let combo_rows ctx ~per_group ~seed =
  let venue_subset =
    List.filter
      (fun (_, vs) -> List.for_all (fun v -> List.mem_assoc v.Dblp.name ctx.by_name) vs)
      (Combos.all_combinations Dblp.venues)
  in
  let nonempty =
    List.filter
      (fun (_, vs) ->
        Correlation.nonempty_joint
          (List.map (fun v -> List.assoc v.Dblp.name ctx.by_name) vs))
      venue_subset
  in
  let chosen = Combos.sample_per_group ~seed ~per_group nonempty in
  List.filter_map
    (fun (group, vs) ->
      let compiled = compile_combo ctx vs in
      match plan_classes ctx compiled with
      | None -> None
      | Some costs ->
        let docs = List.map (fun v -> List.assoc v.Dblp.name ctx.by_name) vs in
        Some
          { group; names = List.map (fun v -> v.Dblp.name) vs;
            correlation = Correlation.measure docs; costs })
    chosen

let norm base v = float_of_int v /. float_of_int (max 1 base)

let print_rows rows =
  let table =
    List.concat_map
      (fun g ->
        List.filter (fun r -> r.group = g) rows
        |> List.sort (fun a b -> compare a.correlation b.correlation)
        |> List.map (fun r ->
               let n v = Printf.sprintf "%.2f" (norm r.costs.optimal v) in
               [
                 Combos.group_name r.group;
                 String.concat "," r.names;
                 Printf.sprintf "%.0f" r.correlation;
                 n r.costs.largest;
                 n r.costs.classical;
                 n r.costs.rox_order;
                 n r.costs.smallest;
                 n r.costs.rox_full;
                 n r.costs.rox_pure;
               ]))
      Combos.groups
  in
  Rox_util.Table_fmt.print
    ~header:
      [ "grp"; "documents"; "C"; "largest"; "classical"; "ROXorder"; "smallest";
        "ROXfull"; "ROXpure" ]
    table

let print_aggregates rows =
  subheader "per-group aggregates (normalized to optimal, geometric mean)";
  let agg group =
    let of_group = List.filter (fun r -> r.group = group) rows in
    if of_group = [] then ()
    else begin
      let gm f =
        Rox_util.Stats.geometric_mean
          (Array.of_list (List.map (fun r -> max 1e-9 (norm r.costs.optimal (f r.costs))) of_group))
      in
      let classical_vs_rox =
        Rox_util.Stats.geometric_mean
          (Array.of_list
             (List.map
                (fun r -> float_of_int r.costs.classical /. float_of_int (max 1 r.costs.rox_full))
                of_group))
      in
      Printf.printf
        "  %s (%d combos): largest=%.1f classical=%.2f ROXorder=%.2f smallest=%.2f ROXfull=%.2f ROXpure=%.2f | classical/ROXfull=%.2f\n"
        (Combos.group_name group) (List.length of_group)
        (gm (fun c -> c.largest))
        (gm (fun c -> c.classical))
        (gm (fun c -> c.rox_order))
        (gm (fun c -> c.smallest))
        (gm (fun c -> c.rox_full))
        (gm (fun c -> c.rox_pure))
        classical_vs_rox
    end
  in
  List.iter agg Combos.groups;
  let overheads =
    List.map
      (fun r ->
        float_of_int (r.costs.rox_full - r.costs.rox_pure)
        /. float_of_int (max 1 r.costs.rox_pure))
      rows
  in
  if overheads <> [] then
    Printf.printf
      "\nROX sampling overhead over pure plan: mean=%.0f%%, p90=%.0f%% (paper: ~30%% average, almost always < 2x)\n"
      (100.0 *. Rox_util.Stats.mean (Array.of_list overheads))
      (100.0 *. Rox_util.Stats.percentile (Array.of_list overheads) 90.0)

(* The paper's scatter: combos on x (grouped 2:2 | 3:1 | 4:0, ordered by C
   within each group), normalized cost on a log y axis. *)
let print_scatter rows =
  let ordered =
    List.concat_map
      (fun g ->
        List.filter (fun r -> r.group = g) rows
        |> List.sort (fun a b -> compare a.correlation b.correlation))
      Combos.groups
  in
  let series label marker f =
    { Rox_util.Ascii_plot.label; marker;
      values =
        Array.of_list (List.map (fun r -> norm r.costs.optimal (f r.costs)) ordered) }
  in
  subheader "normalized cost scatter (x: combos grouped 2:2 | 3:1 | 4:0, by C)";
  Rox_util.Ascii_plot.print ~height:18
    [
      series "ROX pure" '*' (fun c -> c.rox_pure);
      series "ROX full" 'o' (fun c -> c.rox_full);
      series "classical" 'c' (fun c -> c.classical);
      series "largest" 'x' (fun c -> c.largest);
    ]

let run ~full () =
  header "Figure 6: ROX vs plan classes across document combinations";
  let per_group = if full then 20 else 8 in
  let scale = if full then 20 else 10 in
  let ctx, dt = time_it (fun () -> load_dblp ~scale (Array.to_list Dblp.venues)) in
  Printf.printf "loaded 23 documents at x%d (%.2fs); sweeping %d combos per group\n%!"
    scale dt per_group;
  let rows, dt = time_it (fun () -> combo_rows ctx ~per_group ~seed:17) in
  print_rows rows;
  print_scatter rows;
  print_aggregates rows;
  Printf.printf "\nsweep time: %.1fs\n" dt

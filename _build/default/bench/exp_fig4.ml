(* E4 — Figure 4: the DBLP 4-document Join Graph, with the join-equivalence
   (dotted/derived) edges ROX adds for plan flexibility. *)

open Rox_xquery
open Rox_workload
open Bench_common

let run () =
  header "Figure 4: Join Graph of the DBLP query (with derived join equivalences)";
  let venues = List.map Dblp.find_venue [ "VLDB"; "ICDE"; "SIGMOD"; "EDBT" ] in
  let ctx = load_dblp venues in
  let compiled = compile_combo ctx venues in
  Printf.printf "query:\n%s\n\n" (Dblp.query_for (List.map Dblp.uri_of venues));
  print_string (Rox_joingraph.Pretty.to_string compiled.Compile.graph);
  subheader "graphviz";
  print_string (Rox_joingraph.Pretty.to_dot compiled.Compile.graph)

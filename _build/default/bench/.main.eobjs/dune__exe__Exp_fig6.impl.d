bench/exp_fig6.ml: Array Bench_common Combos Correlation Dblp List Printf Rox_util Rox_workload String

bench/exp_fig1.ml: Array Bench_common Compile Printf Rox_algebra Rox_core Rox_joingraph Rox_xquery String Tail

bench/exp_ablation.ml: Array Bench_common Compile Dblp List Optimizer Printf Rox_algebra Rox_classical Rox_core Rox_joingraph Rox_util Rox_workload Rox_xquery

bench/exp_fig7.ml: Array Bench_common Classical_opt Combos Correlation Dblp Enumerate List Midquery Option Printf Rox_algebra Rox_classical Rox_core Rox_util Rox_workload Rox_xquery

bench/exp_fig8.ml: Array Bench_common Combos Correlation Dblp List Printf Rox_algebra Rox_core Rox_util Rox_workload

bench/exp_fig4.ml: Bench_common Compile Dblp List Printf Rox_joingraph Rox_workload Rox_xquery

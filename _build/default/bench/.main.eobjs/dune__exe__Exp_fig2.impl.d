bench/exp_fig2.ml: Array Bench_common Buffer Compile Engine List Optimizer Printf Rox_core Rox_joingraph Rox_storage Rox_util Rox_xmldom Rox_xquery String Trace

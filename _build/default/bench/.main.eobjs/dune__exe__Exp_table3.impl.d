bench/exp_table3.ml: Array Bench_common Dblp List Printf Rox_util Rox_workload String

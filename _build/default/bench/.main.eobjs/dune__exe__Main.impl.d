bench/main.ml: Array Exp_ablation Exp_bechamel Exp_fig1 Exp_fig2 Exp_fig4 Exp_fig5 Exp_fig6 Exp_fig7 Exp_fig8 Exp_table2 Exp_table3 List Printf Sys Unix

bench/exp_table2.ml: Array Bench_common Compile Edge Graph Hashtbl List Optimizer Printf Rox_algebra Rox_core Rox_joingraph Rox_util Rox_xquery Trace Vertex

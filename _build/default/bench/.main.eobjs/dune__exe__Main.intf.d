bench/main.mli:

bench/exp_fig5.ml: Array Bench_common Classical_opt Compile Dblp Enumerate Executor List Option Printf Rox_classical Rox_core Rox_util Rox_workload Rox_xquery

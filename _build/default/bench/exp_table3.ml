(* E5 — Table 3: the 23 DBLP venues: research areas, author-tag counts and
   document sizes at x1 and x10 scale (x100 computed, since replication is
   exactly linear — verified on the smallest venue). *)

open Rox_workload
open Bench_common

let run ~full () =
  header "Table 3: research areas, documents and their characteristics";
  Printf.printf
    "(counts are Table 3 / reduction=10; scaling replicates articles with\n\
    \ serial-suffixed author names and titles, exactly as in the paper)\n";
  let ctx1 = load_dblp ~scale:1 (Array.to_list Dblp.venues) in
  let ctx10 = load_dblp ~scale:10 (Array.to_list Dblp.venues) in
  let rows =
    List.map2
      (fun l1 l10 ->
        let v = l1.Dblp.venue in
        [
          v.Dblp.name;
          String.concat " " (List.map Dblp.area_name v.Dblp.areas);
          string_of_int l1.Dblp.author_tag_count;
          string_of_int l10.Dblp.author_tag_count;
          string_of_int (100 * l1.Dblp.author_tag_count);
          Rox_util.Table_fmt.human_int l1.Dblp.byte_size;
          Rox_util.Table_fmt.human_int l10.Dblp.byte_size;
        ])
      ctx1.loaded ctx10.loaded
  in
  Rox_util.Table_fmt.print
    ~header:[ "venue"; "area(s)"; "tags x1"; "tags x10"; "tags x100"; "bytes x1"; "bytes x10" ]
    rows;
  (* Verify linear scaling on one venue at x100. *)
  if full then begin
    let ctx100 = load_dblp ~scale:100 [ Dblp.find_venue "Fuzzy Logic in AI" ] in
    let l100 = List.hd ctx100.loaded in
    let l1 = List.find (fun l -> l.Dblp.venue.Dblp.name = "Fuzzy Logic in AI") ctx1.loaded in
    Printf.printf "\nscaling check (Fuzzy Logic in AI): x1 tags=%d, x100 tags=%d (exactly 100x: %b)\n"
      l1.Dblp.author_tag_count l100.Dblp.author_tag_count
      (l100.Dblp.author_tag_count = 100 * l1.Dblp.author_tag_count)
  end

(* Ablations of ROX's design choices (see DESIGN.md):
   - re-sampling after each execution vs frozen Phase-1 weights
     (independence assumption);
   - chain sampling vs greedy smallest-weight edge;
   - growing cut-off vs fixed tau cut-off (front-bias mitigation). *)

open Rox_xquery
open Rox_workload
open Rox_core
open Bench_common

let variants =
  [
    ("ROX (full)", Optimizer.default_options);
    ("no resample", { Optimizer.default_options with resample = false });
    ("greedy (no chain)", { Optimizer.default_options with use_chain = false });
    ("fixed cutoff", { Optimizer.default_options with grow_cutoff = false });
    ("no operator race", { Optimizer.default_options with race_operators = false });
  ]

let measure compiled options =
  let result = Optimizer.run ~options compiled in
  let c = result.Optimizer.counter in
  ( Rox_algebra.Cost.read c Rox_algebra.Cost.Sampling,
    Rox_algebra.Cost.read c Rox_algebra.Cost.Execution )

let run () =
  header "Ablations: chain sampling, re-sampling, cut-off growth";
  (* XMark Q1 / Qm1. *)
  let engine = xmark_engine ~factor:1.0 () in
  let queries =
    [ ("XMark Q1 (<145)", Compile.compile_string engine (q1_query "<" 145));
      ("XMark Qm1 (>145)", Compile.compile_string engine (q1_query ">" 145)) ]
  in
  (* A correlated DBLP combo. *)
  let venues = List.map Dblp.find_venue [ "VLDB"; "ICDE"; "ICIP"; "ADBIS" ] in
  let ctx = load_dblp ~scale:10 venues in
  let queries = queries @ [ ("DBLP VLDB,ICDE,ICIP,ADBIS x10", compile_combo ctx venues) ] in
  let table =
    List.concat_map
      (fun (qname, compiled) ->
        List.map
          (fun (vname, options) ->
            let sampling, execution = measure compiled options in
            [
              qname;
              vname;
              string_of_int sampling;
              string_of_int execution;
              string_of_int (sampling + execution);
            ])
          variants)
      queries
  in
  Rox_util.Table_fmt.print
    ~header:[ "workload"; "variant"; "sampling"; "execution"; "total" ]
    table;
  Printf.printf
    "\n(execution column = plan quality; sampling column = optimization spend.\n\
    \ 'no resample' and 'greedy' typically buy less sampling at the price of\n\
    \ worse plans on correlated inputs.)\n";

  (* Baseline ladder: synopsis-static < mid-query re-optimization < ROX. *)
  subheader "optimizer ladder: static synopsis / mid-query re-opt / ROX";
  let ladder =
    List.map
      (fun (qname, compiled) ->
        let graph = compiled.Compile.graph in
        let static_work =
          let order = Rox_classical.Midquery.synopsis_order compiled.Compile.engine graph in
          match Rox_classical.Executor.execute ~max_rows:3_000_000 compiled.Compile.engine graph order with
          | run -> string_of_int (Rox_algebra.Cost.total run.Rox_classical.Executor.counter)
          | exception Rox_joingraph.Runtime.Blowup _ -> "blowup"
        in
        let mq = Rox_classical.Midquery.execute compiled.Compile.engine graph in
        let mq_work = Rox_algebra.Cost.total mq.Rox_classical.Midquery.counter in
        let rox = Optimizer.run compiled in
        let rox_work = Rox_algebra.Cost.total rox.Optimizer.counter in
        [
          qname;
          static_work;
          Printf.sprintf "%d (%d replans)" mq_work mq.Rox_classical.Midquery.replans;
          string_of_int rox_work;
        ])
      queries
  in
  Rox_util.Table_fmt.print
    ~header:[ "workload"; "static synopsis"; "mid-query re-opt"; "ROX total" ]
    ladder;

  (* Approximate mode: fraction of tables vs answer recall and work. *)
  subheader "approximate (sample-driven) execution";
  let compiled = List.assoc "XMark Qm1 (>145)" queries in
  let exact, _ = Optimizer.answer compiled in
  let exact_n = max 1 (Array.length exact) in
  let rows =
    List.map
      (fun fraction ->
        let options =
          { Optimizer.default_options with table_fraction = Some fraction }
        in
        let approx, result = Optimizer.answer ~options compiled in
        [
          Printf.sprintf "%.2f" fraction;
          string_of_int (Array.length approx);
          Printf.sprintf "%.0f%%" (100.0 *. float_of_int (Array.length approx) /. float_of_int exact_n);
          string_of_int (Rox_algebra.Cost.total result.Optimizer.counter);
        ])
      [ 0.1; 0.25; 0.5; 1.0 ]
  in
  Rox_util.Table_fmt.print ~header:[ "fraction"; "answers"; "recall"; "work" ] rows;
  Printf.printf "(exact answer: %d nodes)\n" (Array.length exact)

(* Dataset generator CLI.

     rox-datagen xmark --factor 1.0 -o xmark.xml
     rox-datagen dblp -o data/                # the 23 Table-3 documents
     rox-datagen dblp --venue VLDB --venue ICDE --scale 10 -o data/

   Documents are written as XML files; load them back with `rox run
   --doc file.xml query.xq` or through Xml_parser + Engine in code. *)

open Cmdliner
open Rox_workload

let write_tree path tree =
  Rox_xmldom.Xml_writer.to_file path tree;
  Printf.printf "wrote %s (%d bytes)\n" path (Rox_xmldom.Xml_writer.serialized_size tree)

(* ---- xmark ---- *)

let xmark_cmd =
  let factor =
    Arg.(value & opt float 1.0 & info [ "factor" ] ~docv:"F"
           ~doc:"Population scale factor (1.0 = 4350 items, 5100 persons, 2400 auctions).")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.") in
  let output =
    Arg.(value & opt string "xmark.xml" & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output file.")
  in
  let run factor seed output =
    let params = Xmark.scaled factor in
    let tree = Xmark.generate_tree ~seed ~params () in
    write_tree output tree
  in
  Cmd.v
    (Cmd.info "xmark" ~doc:"Generate an XMark-like auction document (price/bidder correlation built in).")
    Term.(const run $ factor $ seed $ output)

(* ---- dblp ---- *)

let dblp_cmd =
  let venues_arg =
    Arg.(value & opt_all string [] & info [ "venue" ] ~docv:"NAME"
           ~doc:"Venue to generate (repeatable); default: all 23 of Table 3.")
  in
  let scale =
    Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N"
           ~doc:"Replication factor (x1/x10/x100 of the paper).")
  in
  let reduction =
    Arg.(value & opt int 10 & info [ "reduction" ] ~docv:"R"
           ~doc:"Divide Table-3 base author-tag counts by R (1 = full size).")
  in
  let seed = Arg.(value & opt int 2009 & info [ "seed" ] ~docv:"SEED" ~doc:"Master seed.") in
  let outdir =
    Arg.(value & opt string "." & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let run venues scale reduction seed outdir =
    let selection =
      match venues with
      | [] -> Array.to_list Dblp.venues
      | names ->
        List.map
          (fun n ->
            try Dblp.find_venue n
            with Not_found ->
              Printf.eprintf "unknown venue %S; known venues:\n" n;
              Array.iter (fun v -> Printf.eprintf "  %s\n" v.Dblp.name) Dblp.venues;
              exit 2)
          names
    in
    let params = { Dblp.default_gen with Dblp.scale; reduction; seed } in
    (* Generate through an engine (cheap) and unshred for serialization so
       the written documents are byte-for-byte what experiments load. *)
    let engine = Rox_storage.Engine.create () in
    let loaded = Dblp.load ~params engine selection in
    List.iter
      (fun l ->
        let path = Filename.concat outdir (Dblp.uri_of l.Dblp.venue) in
        let tree = Rox_shred.Navigation.unshred l.Dblp.docref.Rox_storage.Engine.doc in
        write_tree path tree;
        Printf.printf "  %s: %d author tags\n" l.Dblp.venue.Dblp.name l.Dblp.author_tag_count)
      loaded
  in
  Cmd.v
    (Cmd.info "dblp" ~doc:"Generate the Table-3 DBLP-like venue documents (area-correlated author pools).")
    Term.(const run $ venues_arg $ scale $ reduction $ seed $ outdir)

let () =
  let doc = "ROX dataset generator (XMark-like and DBLP-like workloads of the paper)" in
  exit (Cmd.eval (Cmd.group (Cmd.info "rox-datagen" ~doc) [ xmark_cmd; dblp_cmd ]))

(** Small statistics helpers for the experiment harness.

    Section 4.3 of the paper defines the correlation measure C as the
    variance of pairwise join selectivities around their mean; Figures 6–8
    report means, geometric means and percentiles of normalized run costs.
    These are the primitives behind those reports. *)

val mean : float array -> float
(** Arithmetic mean; 0 for an empty array. *)

val variance : float array -> float
(** Population variance (divides by n); 0 for fewer than 1 element. *)

val stddev : float array -> float

val geometric_mean : float array -> float
(** Geometric mean of strictly positive values. *)

val percentile : float array -> float -> float
(** [percentile a p] with [p] in [0,100]; nearest-rank on a sorted copy.
    @raise Invalid_argument on an empty array. *)

val minimum : float array -> float
val maximum : float array -> float

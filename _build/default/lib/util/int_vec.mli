(** Growable array of unboxed integers.

    The shredder, the indices and every physical operator build result node
    sequences incrementally; this vector is the common building block. It
    amortizes growth by doubling and exposes its storage as a plain
    [int array] snapshot when construction is done. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val is_empty : t -> bool
val get : t -> int -> int
val set : t -> int -> int -> unit
val push : t -> int -> unit
val pop : t -> int
(** Removes and returns the last element. @raise Invalid_argument if empty. *)

val clear : t -> unit
val last : t -> int
(** @raise Invalid_argument if empty. *)

val to_array : t -> int array
(** Fresh array copy of the contents. *)

val of_array : int array -> t
val iter : (int -> unit) -> t -> unit
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
val append_array : t -> int array -> unit
val sort : t -> unit
(** In-place ascending sort of the live prefix. *)

val sorted_dedup : t -> int array
(** Sorts, removes duplicates, and returns the result (leaves [t] sorted). *)

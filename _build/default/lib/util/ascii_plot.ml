type series = {
  label : string;
  marker : char;
  values : float array;
}

let finite_positive v = Float.is_finite v && v > 0.0

let render ?(width = 72) ?(height = 20) ?(log_y = true) ?(x_label = "") series =
  let xs = List.fold_left (fun acc s -> max acc (Array.length s.values)) 0 series in
  if xs = 0 then "(empty plot)\n"
  else begin
    let transform v = if log_y then log10 v else v in
    let all_values =
      List.concat_map
        (fun s -> List.filter finite_positive (Array.to_list s.values))
        series
    in
    match all_values with
    | [] -> "(no data)\n"
    | first :: rest ->
      let vmin = List.fold_left min first rest in
      let vmax = List.fold_left max first rest in
      let lo = transform vmin and hi = transform vmax in
      let lo, hi = if hi -. lo < 1e-9 then (lo -. 1.0, hi +. 1.0) else (lo, hi) in
      let canvas = Array.make_matrix height width ' ' in
      let x_of i = if xs <= 1 then 0 else i * (width - 1) / (xs - 1) in
      let y_of v =
        let frac = (transform v -. lo) /. (hi -. lo) in
        let row = int_of_float (frac *. float_of_int (height - 1) +. 0.5) in
        height - 1 - max 0 (min (height - 1) row)
      in
      (* Later series first so the earliest series wins overlaps. *)
      List.iter
        (fun s ->
          Array.iteri
            (fun i v -> if finite_positive v then canvas.(y_of v).(x_of i) <- s.marker)
            s.values)
        (List.rev series);
      let buf = Buffer.create ((width + 12) * (height + 4)) in
      for row = 0 to height - 1 do
        (* Y-axis tick: value at this row. *)
        let frac = float_of_int (height - 1 - row) /. float_of_int (height - 1) in
        let v = lo +. (frac *. (hi -. lo)) in
        let v = if log_y then 10.0 ** v else v in
        let tick =
          if row = 0 || row = height - 1 || row = height / 2 then
            Printf.sprintf "%8s |" (Table_fmt.human_float v)
          else Printf.sprintf "%8s |" ""
        in
        Buffer.add_string buf tick;
        Buffer.add_string buf (String.init width (fun c -> canvas.(row).(c)));
        Buffer.add_char buf '\n'
      done;
      Buffer.add_string buf (Printf.sprintf "%8s +%s\n" "" (String.make width '-'));
      if x_label <> "" then Buffer.add_string buf (Printf.sprintf "%10s%s\n" "" x_label);
      Buffer.add_string buf
        (Printf.sprintf "%10slegend: %s%s\n" ""
           (String.concat "  "
              (List.map (fun s -> Printf.sprintf "%c=%s" s.marker s.label) series))
           (if log_y then "  (log y)" else ""));
      Buffer.contents buf
  end

let print ?width ?height ?log_y ?x_label series =
  print_string (render ?width ?height ?log_y ?x_label series)

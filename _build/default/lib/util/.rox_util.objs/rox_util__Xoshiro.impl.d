lib/util/xoshiro.ml: Array Hashtbl Int64

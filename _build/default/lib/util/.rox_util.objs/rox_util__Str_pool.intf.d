lib/util/str_pool.mli:

lib/util/xoshiro.mli:

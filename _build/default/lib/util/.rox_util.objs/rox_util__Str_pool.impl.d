lib/util/str_pool.ml: Array Hashtbl

lib/util/stats.mli:

lib/util/bin_search.mli:

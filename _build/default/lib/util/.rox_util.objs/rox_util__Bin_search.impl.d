lib/util/bin_search.ml: Array

(** ASCII table rendering for the benchmark harness.

    Every experiment in [bench/main.ml] prints its paper table / figure data
    as a plain-text table; this module owns alignment and separators so the
    harness code stays declarative. *)

type align = Left | Right

val render : ?aligns:align array -> header:string list -> string list list -> string
(** [render ~header rows] draws a boxed table. [aligns] defaults to
    right-alignment for cells that parse as numbers and left otherwise,
    judged per column from the first data row. *)

val print : ?aligns:align array -> header:string list -> string list list -> unit

val human_int : int -> string
(** 12345678 -> "12.3M"-style compact rendering (matches the paper's
    "43.5K" edge labels). *)

val human_float : float -> string
(** Compact float: 3 significant-ish digits, no trailing zeros. *)

type align = Left | Right

let is_number s =
  s <> ""
  && (match float_of_string_opt s with
      | Some _ -> true
      | None ->
        (* Accept compact forms like "43.5K". *)
        let n = String.length s in
        n > 1 && float_of_string_opt (String.sub s 0 (n - 1)) <> None)

let default_aligns header rows =
  let ncols = List.length header in
  match rows with
  | [] -> Array.make ncols Left
  | first :: _ ->
    Array.of_list
      (List.mapi
         (fun i _ ->
           match List.nth_opt first i with
           | Some cell when is_number cell -> Right
           | _ -> Left)
         header)

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ?aligns ~header rows =
  let aligns = match aligns with Some a -> a | None -> default_aligns header rows in
  let ncols = List.length header in
  let widths = Array.make ncols 0 in
  let observe row =
    List.iteri
      (fun i cell ->
        if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  observe header;
  List.iter observe rows;
  let line_of row =
    let cells =
      List.mapi
        (fun i cell ->
          let align = if i < Array.length aligns then aligns.(i) else Left in
          pad align widths.(i) cell)
        row
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let sep =
    "+"
    ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line_of header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line_of row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf sep;
  Buffer.contents buf

let print ?aligns ~header rows = print_string (render ?aligns ~header rows); print_newline ()

let human_int n =
  let f = float_of_int n in
  let abs = abs_float f in
  if abs >= 1e9 then Printf.sprintf "%.1fG" (f /. 1e9)
  else if abs >= 1e6 then Printf.sprintf "%.1fM" (f /. 1e6)
  else if abs >= 1e4 then Printf.sprintf "%.1fK" (f /. 1e3)
  else string_of_int n

let human_float f =
  if Float.is_integer f && abs_float f < 1e15 then Printf.sprintf "%.0f" f
  else if abs_float f >= 100.0 then Printf.sprintf "%.0f" f
  else if abs_float f >= 10.0 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.2f" f

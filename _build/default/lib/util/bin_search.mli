(** Binary and galloping searches over sorted [int array]s.

    Node sequences in this engine are always sorted on the [pre] rank
    (document order), so range restriction — the heart of the staircase
    join — is a pair of boundary searches. *)

val lower_bound : int array -> int -> int
(** [lower_bound a x] is the least index [i] with [a.(i) >= x], or
    [Array.length a] when no such index exists. *)

val upper_bound : int array -> int -> int
(** Least index [i] with [a.(i) > x]. *)

val lower_bound_from : int array -> int -> int -> int
(** [lower_bound_from a lo x]: like {!lower_bound} but only searching the
    suffix starting at [lo]. Gallops from [lo], so a scan that advances
    monotonically through [a] pays O(log gap) per probe. *)

val mem : int array -> int -> bool
(** Membership in a sorted array. *)

val count_range : int array -> lo:int -> hi:int -> int
(** Number of elements [x] with [lo <= x <= hi]. *)

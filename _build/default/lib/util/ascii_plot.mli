(** ASCII scatter plots for the benchmark harness.

    Figure 6 of the paper is a scatter of normalized evaluation times (log
    scale) over document combinations; the harness renders the same shape
    in plain text. Multiple series share the canvas, each with its own
    marker; y values are positive (log axis), x is the sample index. *)

type series = {
  label : string;
  marker : char;
  values : float array;  (** y per x index; NaN = absent *)
}

val render :
  ?width:int ->
  ?height:int ->
  ?log_y:bool ->
  ?x_label:string ->
  series list ->
  string
(** Draw all series on one canvas with a y-axis scale and a legend.
    Overlapping points keep the marker of the earliest series in the
    list. Default 72x20, log-scale y. *)

val print :
  ?width:int -> ?height:int -> ?log_y:bool -> ?x_label:string -> series list -> unit

let lower_bound_in a lo hi x =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let upper_bound_in a lo hi x =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let lower_bound a x = lower_bound_in a 0 (Array.length a) x
let upper_bound a x = upper_bound_in a 0 (Array.length a) x

let lower_bound_from a lo x =
  let n = Array.length a in
  if lo >= n then n
  else if a.(lo) >= x then lo
  else begin
    (* Gallop: double the step until we overshoot, then binary search. *)
    let step = ref 1 in
    let prev = ref lo in
    let cur = ref (lo + 1) in
    while !cur < n && a.(!cur) < x do
      prev := !cur;
      step := !step * 2;
      cur := !cur + !step
    done;
    lower_bound_in a (!prev + 1) (min !cur n) x
  end

let mem a x =
  let i = lower_bound a x in
  i < Array.length a && a.(i) = x

let count_range a ~lo ~hi =
  if hi < lo then 0 else upper_bound a hi - lower_bound a lo

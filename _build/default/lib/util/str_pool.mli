(** String interning pool.

    Qualified names and text/attribute values are interned to dense integer
    ids. One *global* pool is shared by every document loaded into an engine,
    so cross-document value equi-joins (the DBLP author joins of the paper)
    compare integers rather than strings. *)

type t

type id = int
(** Dense identifier, [0 .. count-1]. *)

val create : unit -> t
val intern : t -> string -> id
(** Returns the existing id or allocates the next one. *)

val find : t -> string -> id option
(** Lookup without allocation. *)

val to_string : t -> id -> string
(** @raise Invalid_argument on an id never returned by this pool. *)

val count : t -> int

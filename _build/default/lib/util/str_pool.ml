type id = int

type t = {
  by_string : (string, id) Hashtbl.t;
  mutable by_id : string array;
  mutable next : int;
}

let create () =
  { by_string = Hashtbl.create 1024; by_id = Array.make 1024 ""; next = 0 }

let intern t s =
  match Hashtbl.find_opt t.by_string s with
  | Some id -> id
  | None ->
    let id = t.next in
    if id >= Array.length t.by_id then begin
      let bigger = Array.make (2 * Array.length t.by_id) "" in
      Array.blit t.by_id 0 bigger 0 id;
      t.by_id <- bigger
    end;
    t.by_id.(id) <- s;
    Hashtbl.replace t.by_string s id;
    t.next <- id + 1;
    id

let find t s = Hashtbl.find_opt t.by_string s

let to_string t id =
  if id < 0 || id >= t.next then invalid_arg "Str_pool.to_string";
  t.by_id.(id)

let count t = t.next

lib/workload/xmark.ml: Doc Printf Rox_shred Rox_storage Rox_util Sink Xoshiro

lib/workload/correlation.ml: Array Doc Element_index Engine Hashtbl List Navigation Nodekind Option Rox_shred Rox_storage Rox_util

lib/workload/sink.ml: Doc List Qname Rox_shred Rox_xmldom String Tree

lib/workload/xmark.mli: Rox_storage Rox_xmldom

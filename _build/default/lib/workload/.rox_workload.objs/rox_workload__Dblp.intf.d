lib/workload/dblp.mli: Rox_storage

lib/workload/correlation.mli: Hashtbl Rox_storage

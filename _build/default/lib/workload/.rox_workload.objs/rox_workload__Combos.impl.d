lib/workload/combos.ml: Array Dblp Hashtbl List Option Rox_util Xoshiro

lib/workload/sink.mli: Rox_shred Rox_xmldom

lib/workload/dblp.ml: Array Buffer Doc Hashtbl List Option Printf Rox_shred Rox_storage Rox_util Sink String Xoshiro

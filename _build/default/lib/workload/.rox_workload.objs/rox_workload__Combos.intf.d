lib/workload/combos.mli: Dblp

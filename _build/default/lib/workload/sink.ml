open Rox_shred
open Rox_xmldom

type t = {
  open_el : string -> unit;
  attr : string -> string -> unit;
  text : string -> unit;
  close_el : unit -> unit;
}

let doc_builder b =
  {
    open_el = Doc.Builder.open_element b;
    attr = Doc.Builder.attribute b;
    text = Doc.Builder.text b;
    close_el = (fun () -> Doc.Builder.close_element b);
  }

let tree_builder () =
  (* Stack of (tag, reversed attrs, reversed children). *)
  let stack = ref [] in
  let result = ref None in
  let sink =
    {
      open_el = (fun tag -> stack := (tag, ref [], ref []) :: !stack);
      attr =
        (fun name value ->
          match !stack with
          | (_, attrs, _) :: _ -> attrs := { Tree.name = Qname.of_string name; value } :: !attrs
          | [] -> invalid_arg "Sink.tree_builder: attribute outside element");
      text =
        (fun s ->
          match !stack with
          | (_, _, kids) :: _ -> kids := Tree.Text s :: !kids
          | [] -> invalid_arg "Sink.tree_builder: text outside element");
      close_el =
        (fun () ->
          match !stack with
          | (tag, attrs, kids) :: rest ->
            let node =
              Tree.Element
                { Tree.tag = Qname.of_string tag; attrs = List.rev !attrs;
                  children = List.rev !kids }
            in
            stack := rest;
            (match rest with
             | (_, _, kids) :: _ -> kids := node :: !kids
             | [] -> result := Some node)
          | [] -> invalid_arg "Sink.tree_builder: close without open");
    }
  in
  let finish () =
    match !result with
    | Some node -> Tree.document node
    | None -> invalid_arg "Sink.tree_builder: no document emitted"
  in
  (sink, finish)

let escaped_len ~attr s =
  let n = ref 0 in
  String.iter
    (fun c ->
      n := !n
           + (match c with
              | '<' | '>' -> 4
              | '&' -> 5
              | '"' when attr -> 6
              | _ -> 1))
    s;
  !n

let byte_counter () =
  let total = ref 0 in
  (* Stack of (tag length, had content). *)
  let stack = ref [] in
  let mark_content () =
    match !stack with
    | (len, false) :: rest ->
      (* Close the open tag with '>'. *)
      total := !total + 1;
      stack := (len, true) :: rest
    | _ -> ()
  in
  let sink =
    {
      open_el =
        (fun tag ->
          mark_content ();
          total := !total + 1 + String.length tag;
          stack := (String.length tag, false) :: !stack);
      attr =
        (fun name value ->
          total := !total + 1 + String.length name + 2 + escaped_len ~attr:true value + 1);
      text =
        (fun s ->
          mark_content ();
          total := !total + escaped_len ~attr:false s);
      close_el =
        (fun () ->
          match !stack with
          | (len, had_content) :: rest ->
            total := !total + (if had_content then 3 + len else 2);
            stack := rest
          | [] -> invalid_arg "Sink.byte_counter: close without open");
    }
  in
  (sink, fun () -> !total)

let tee a b =
  {
    open_el = (fun tag -> a.open_el tag; b.open_el tag);
    attr = (fun n v -> a.attr n v; b.attr n v);
    text = (fun s -> a.text s; b.text s);
    close_el = (fun () -> a.close_el (); b.close_el ());
  }

(** The correlation measure C of Section 4.3.

    For a document combination D = {d1..d4}, the pairwise join selectivity
    is js(di, dj) = |di ⋈ dj| · 100 / max(|di|, |dj|) over the author text
    multisets, and C is the variance of the js values around their mean —
    high C means some pairs join much more selectively than others, i.e.
    correlated documents. *)

val author_multiset : Rox_storage.Engine.docref -> (int, int) Hashtbl.t
(** value id → occurrence count of the text values under <author>. *)

val join_size : (int, int) Hashtbl.t -> (int, int) Hashtbl.t -> int
(** Multiset equi-join cardinality: Σ_v cnt1(v)·cnt2(v). *)

val pairwise_selectivity : (int, int) Hashtbl.t -> (int, int) Hashtbl.t -> float
(** js(di, dj); multiset sizes include duplicates. *)

val measure : Rox_storage.Engine.docref list -> float
(** C over all pairs of the combination. *)

val nonempty : Rox_storage.Engine.docref list -> bool
(** Does every pair join non-emptily? *)

val joint_size : Rox_storage.Engine.docref list -> int
(** Cardinality of the full k-way author equi-join: Σ_v Π_d cnt_d(v). *)

val nonempty_joint : Rox_storage.Engine.docref list -> bool
(** Does the full combination yield results? (The paper omits combinations
    that yield empty results with the sample query.) *)

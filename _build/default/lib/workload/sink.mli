(** Streaming document sinks.

    Generators emit documents through this abstract interface once, and the
    same emission (same RNG stream) can build a shredded {!Rox_shred.Doc},
    an in-memory {!Rox_xmldom.Tree}, count serialized bytes (Table 3
    document sizes without materializing multi-MB strings), or any
    combination via {!tee}. *)

type t = {
  open_el : string -> unit;
  attr : string -> string -> unit;   (** only directly after open_el *)
  text : string -> unit;
  close_el : unit -> unit;
}

val doc_builder : Rox_shred.Doc.Builder.builder -> t

val tree_builder : unit -> t * (unit -> Rox_xmldom.Tree.t)
(** The thunk is valid once emission completed. *)

val byte_counter : unit -> t * (unit -> int)
(** Counts the bytes of the compact XML serialization ({!Rox_xmldom.Xml_writer}
    format, escaping included). *)

val tee : t -> t -> t
(** Duplicates every event to both sinks. *)

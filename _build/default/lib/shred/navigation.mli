(** Per-node traversal primitives over a shredded document.

    These are the building blocks the physical operators and the tests use:
    child enumeration by subtree-size skipping, ancestor chains via the
    parent column, and subtree bounds for the containment test. They also
    power [unshred], the encoding-to-tree inverse used in round-trip
    tests. *)

val subtree_bounds : Doc.t -> Doc.pre -> Doc.pre * Doc.pre
(** [(first, last)] pre ranks of the nodes strictly inside the subtree;
    [first > last] for a leaf. *)

val children : Doc.t -> Doc.pre -> Doc.pre array
(** Non-attribute children in document order. Skips over grandchild
    subtrees in O(#children). *)

val attributes : Doc.t -> Doc.pre -> Doc.pre array
(** Attribute nodes of an element, document order. *)

val ancestors : Doc.t -> Doc.pre -> Doc.pre array
(** Proper ancestors, nearest first, excluding the virtual doc root's
    absent parent (the virtual root itself is included last). *)

val following_first : Doc.t -> Doc.pre -> Doc.pre
(** Pre rank of the first node after the subtree of the given node
    (= [pre + size + 1]); may be one past the last row. *)

val next_sibling : Doc.t -> Doc.pre -> Doc.pre option
val prev_sibling : Doc.t -> Doc.pre -> Doc.pre option
(** Siblings share a parent; attributes are not siblings of content. *)

val root_element : Doc.t -> Doc.pre
(** The (unique) element child of the virtual root. *)

val unshred : Doc.t -> Rox_xmldom.Tree.t
(** Rebuild the tree; inverse of {!Doc.of_tree}. *)

(** Node kinds of the relational XML encoding.

    Mirrors the kind set of the staircase join definition in Section 2.2:
    [k ∈ {*, doc, elem, text, attr, comment, pi}]. [Any] is the wildcard
    kind test; it never appears as a stored kind. *)

type t = Doc | Elem | Attr | Text | Comment | Pi

val to_int : t -> int
(** Dense code, stable across runs: Doc=0, Elem=1, Attr=2, Text=3,
    Comment=4, Pi=5. *)

val of_int : int -> t
(** @raise Invalid_argument outside [0,5]. *)

val to_string : t -> string
val equal : t -> t -> bool

type test = Any | Kind of t

val matches : test -> t -> bool
val test_to_string : test -> string

type t = Doc | Elem | Attr | Text | Comment | Pi

let to_int = function
  | Doc -> 0
  | Elem -> 1
  | Attr -> 2
  | Text -> 3
  | Comment -> 4
  | Pi -> 5

let of_int = function
  | 0 -> Doc
  | 1 -> Elem
  | 2 -> Attr
  | 3 -> Text
  | 4 -> Comment
  | 5 -> Pi
  | n -> invalid_arg (Printf.sprintf "Nodekind.of_int %d" n)

let to_string = function
  | Doc -> "doc"
  | Elem -> "elem"
  | Attr -> "attr"
  | Text -> "text"
  | Comment -> "comment"
  | Pi -> "pi"

let equal a b = to_int a = to_int b

type test = Any | Kind of t

let matches test k =
  match test with
  | Any -> true
  | Kind k' -> equal k k'

let test_to_string = function
  | Any -> "*"
  | Kind k -> to_string k

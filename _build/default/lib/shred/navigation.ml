open Rox_util

let subtree_bounds doc pre = (pre + 1, pre + Doc.size doc pre)

let children doc pre =
  let out = Int_vec.create () in
  let first, last = subtree_bounds doc pre in
  let i = ref first in
  while !i <= last do
    (match Doc.kind doc !i with
     | Nodekind.Attr -> ()
     | Nodekind.Doc | Nodekind.Elem | Nodekind.Text | Nodekind.Comment | Nodekind.Pi ->
       Int_vec.push out !i);
    i := !i + Doc.size doc !i + 1
  done;
  Int_vec.to_array out

let attributes doc pre =
  let out = Int_vec.create () in
  let first, last = subtree_bounds doc pre in
  let i = ref first in
  let continue = ref true in
  (* Attributes are ranked before any content child, contiguously. *)
  while !continue && !i <= last do
    (match Doc.kind doc !i with
     | Nodekind.Attr -> Int_vec.push out !i
     | Nodekind.Doc | Nodekind.Elem | Nodekind.Text | Nodekind.Comment | Nodekind.Pi ->
       continue := false);
    incr i
  done;
  Int_vec.to_array out

let ancestors doc pre =
  let out = Int_vec.create () in
  let p = ref (Doc.parent doc pre) in
  while !p >= 0 do
    Int_vec.push out !p;
    p := Doc.parent doc !p
  done;
  Int_vec.to_array out

let following_first doc pre = pre + Doc.size doc pre + 1

(* Attributes have no siblings (XPath), and attribute nodes are never
   siblings of content nodes. *)
let is_attr doc pre =
  match Doc.kind doc pre with Nodekind.Attr -> true | _ -> false

let next_sibling doc pre =
  let parent = Doc.parent doc pre in
  if parent < 0 || is_attr doc pre then None
  else begin
    let candidate = following_first doc pre in
    let _, last = subtree_bounds doc parent in
    (* Attributes precede all content, so the candidate is never one. *)
    if candidate <= last then Some candidate else None
  end

let prev_sibling doc pre =
  let parent = Doc.parent doc pre in
  if parent < 0 || is_attr doc pre then None
  else begin
    let sibs = children doc parent in
    let rec find i =
      if i >= Array.length sibs then None
      else if sibs.(i) = pre then (if i = 0 then None else Some sibs.(i - 1))
      else find (i + 1)
    in
    find 0
  end

let root_element doc =
  let kids = children doc 0 in
  let rec first_elem i =
    if i >= Array.length kids then invalid_arg "Navigation.root_element: no element child"
    else
      match Doc.kind doc kids.(i) with
      | Nodekind.Elem -> kids.(i)
      | _ -> first_elem (i + 1)
  in
  first_elem 0

let unshred doc =
  let open Rox_xmldom in
  let rec build pre =
    match Doc.kind doc pre with
    | Nodekind.Elem ->
      let attrs =
        attributes doc pre
        |> Array.to_list
        |> List.map (fun a ->
               { Tree.name = Qname.of_string (Doc.name doc a); value = Doc.value doc a })
      in
      let kids = children doc pre |> Array.to_list |> List.map build in
      Tree.Element { Tree.tag = Qname.of_string (Doc.name doc pre); attrs; children = kids }
    | Nodekind.Text -> Tree.Text (Doc.value doc pre)
    | Nodekind.Comment -> Tree.Comment (Doc.value doc pre)
    | Nodekind.Pi -> Tree.Pi (Doc.name doc pre, Doc.value doc pre)
    | Nodekind.Attr | Nodekind.Doc -> invalid_arg "Navigation.unshred: unexpected kind"
  in
  match build (root_element doc) with
  | Tree.Element _ as e -> Tree.document e
  | _ -> assert false

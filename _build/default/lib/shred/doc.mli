(** Shredded XML document: the pre/size/level columnar encoding.

    Every XML node of a document occupies one row, identified by its [pre]
    rank — the order of opening tags in the document (MonetDB/XQuery's
    range-based encoding, Section 2.2 of the paper). Row 0 is the virtual
    document root (kind [Doc]); attribute nodes are ranked immediately after
    their owner element (before its content) and counted in its subtree
    [size], so the containment test [c.pre < s.pre <= c.pre + size(c)]
    uniformly covers all axes.

    Qualified names and values are interned in two {!Rox_util.Str_pool}s
    supplied at build time. Sharing one value pool across documents makes
    cross-document equi-joins integer comparisons. *)

type t

type pre = int
(** Node identifier: row index in this document. *)

val id : t -> int
(** Engine-assigned document id (position in the engine's registry; -1 for a
    document not yet registered). *)

val set_id : t -> int -> unit
val uri : t -> string
val node_count : t -> int

val kind : t -> pre -> Nodekind.t
val name_id : t -> pre -> int
(** Interned qname of an element / attribute (target for a PI); -1 for
    kinds without a name. *)

val value_id : t -> pre -> int
(** Interned value of a text or attribute node (content for comment / PI);
    -1 for elements and the doc root. *)

val size : t -> pre -> int
(** Subtree size, excluding the node itself. *)

val level : t -> pre -> int
(** Depth; 0 for the virtual root. *)

val parent : t -> pre -> pre
(** -1 for the virtual root. *)

val qname_pool : t -> Rox_util.Str_pool.t
val value_pool : t -> Rox_util.Str_pool.t

val name : t -> pre -> string
(** Convenience: resolved qname string; "" when nameless. *)

val value : t -> pre -> string
(** Convenience: resolved value string; "" when valueless. *)

val in_subtree : t -> root:pre -> pre -> bool
(** Containment: is the node inside (strictly below) [root]? *)

val is_ancestor : t -> anc:pre -> pre -> bool
(** Same as [in_subtree ~root:anc] — ancestor along the parent chain. *)

(** {1 Construction} *)

module Builder : sig
  (** Streaming construction in document order. Generators shred directly
      through this interface without materializing a {!Rox_xmldom.Tree.t}. *)

  type builder

  val create :
    ?uri:string ->
    qnames:Rox_util.Str_pool.t ->
    values:Rox_util.Str_pool.t ->
    unit ->
    builder

  val open_element : builder -> string -> unit
  val attribute : builder -> string -> string -> unit
  (** Only valid directly after {!open_element} / other attributes, before
      any content — document order. *)

  val text : builder -> string -> unit
  val comment : builder -> string -> unit
  val pi : builder -> string -> string -> unit
  val close_element : builder -> unit
  val finish : builder -> t
  (** @raise Invalid_argument if elements remain open or none was added. *)
end

val of_tree :
  ?uri:string ->
  qnames:Rox_util.Str_pool.t ->
  values:Rox_util.Str_pool.t ->
  Rox_xmldom.Tree.t ->
  t

open Rox_util

type pre = int

type t = {
  mutable doc_id : int;
  uri : string;
  kinds : Bytes.t;
  names : int array;
  values : int array;
  sizes : int array;
  levels : int array;
  parents : int array;
  qname_pool : Str_pool.t;
  value_pool : Str_pool.t;
}

let id t = t.doc_id
let set_id t i = t.doc_id <- i
let uri t = t.uri
let node_count t = Bytes.length t.kinds
let kind t pre = Nodekind.of_int (Char.code (Bytes.get t.kinds pre))
let name_id t pre = t.names.(pre)
let value_id t pre = t.values.(pre)
let size t pre = t.sizes.(pre)
let level t pre = t.levels.(pre)
let parent t pre = t.parents.(pre)
let qname_pool t = t.qname_pool
let value_pool t = t.value_pool

let name t pre =
  let id = t.names.(pre) in
  if id < 0 then "" else Str_pool.to_string t.qname_pool id

let value t pre =
  let id = t.values.(pre) in
  if id < 0 then "" else Str_pool.to_string t.value_pool id

let in_subtree t ~root pre = pre > root && pre <= root + t.sizes.(root)
let is_ancestor t ~anc pre = in_subtree t ~root:anc pre

module Builder = struct
  type builder = {
    b_uri : string;
    b_qnames : Str_pool.t;
    b_values : Str_pool.t;
    b_kinds : Buffer.t;
    b_names : Int_vec.t;
    b_values_col : Int_vec.t;
    b_sizes : Int_vec.t; (* patched on close *)
    b_levels : Int_vec.t;
    b_parents : Int_vec.t;
    mutable stack : int list; (* pre ranks of open elements, innermost first *)
    mutable in_tag : bool; (* attributes still allowed *)
  }

  let create ?(uri = "generated.xml") ~qnames ~values () =
    let b =
      {
        b_uri = uri;
        b_qnames = qnames;
        b_values = values;
        b_kinds = Buffer.create 4096;
        b_names = Int_vec.create ();
        b_values_col = Int_vec.create ();
        b_sizes = Int_vec.create ();
        b_levels = Int_vec.create ();
        b_parents = Int_vec.create ();
        stack = [];
        in_tag = false;
      }
    in
    (* Row 0: virtual document root. *)
    Buffer.add_char b.b_kinds (Char.chr (Nodekind.to_int Nodekind.Doc));
    Int_vec.push b.b_names (-1);
    Int_vec.push b.b_values_col (-1);
    Int_vec.push b.b_sizes 0;
    Int_vec.push b.b_levels 0;
    Int_vec.push b.b_parents (-1);
    b.stack <- [ 0 ];
    b

  let depth b = List.length b.stack - 1

  let add_row b ~kind ~name ~value =
    let pre = Buffer.length b.b_kinds in
    let parent = match b.stack with p :: _ -> p | [] -> invalid_arg "Doc.Builder: closed" in
    Buffer.add_char b.b_kinds (Char.chr (Nodekind.to_int kind));
    Int_vec.push b.b_names name;
    Int_vec.push b.b_values_col value;
    Int_vec.push b.b_sizes 0;
    Int_vec.push b.b_levels (depth b + 1);
    Int_vec.push b.b_parents parent;
    pre

  let open_element b tag =
    let name = Str_pool.intern b.b_qnames tag in
    let pre = add_row b ~kind:Nodekind.Elem ~name ~value:(-1) in
    b.stack <- pre :: b.stack;
    b.in_tag <- true

  let attribute b name value =
    if not b.in_tag then
      invalid_arg "Doc.Builder.attribute: attributes must precede element content";
    let name = Str_pool.intern b.b_qnames name in
    let value = Str_pool.intern b.b_values value in
    ignore (add_row b ~kind:Nodekind.Attr ~name ~value : int)

  let text b s =
    b.in_tag <- false;
    let value = Str_pool.intern b.b_values s in
    ignore (add_row b ~kind:Nodekind.Text ~name:(-1) ~value : int)

  let comment b s =
    b.in_tag <- false;
    let value = Str_pool.intern b.b_values s in
    ignore (add_row b ~kind:Nodekind.Comment ~name:(-1) ~value : int)

  let pi b target content =
    b.in_tag <- false;
    let name = Str_pool.intern b.b_qnames target in
    let value = Str_pool.intern b.b_values content in
    ignore (add_row b ~kind:Nodekind.Pi ~name ~value : int)

  let close_element b =
    b.in_tag <- false;
    match b.stack with
    | pre :: rest when pre <> 0 ->
      (* Subtree size = rows emitted since this element opened. *)
      Int_vec.set b.b_sizes pre (Buffer.length b.b_kinds - pre - 1);
      b.stack <- rest
    | _ -> invalid_arg "Doc.Builder.close_element: no open element"

  let finish b =
    (match b.stack with
     | [ 0 ] -> ()
     | _ -> invalid_arg "Doc.Builder.finish: unclosed elements");
    let total = Buffer.length b.b_kinds in
    if total < 2 then invalid_arg "Doc.Builder.finish: empty document";
    Int_vec.set b.b_sizes 0 (total - 1);
    {
      doc_id = -1;
      uri = b.b_uri;
      kinds = Buffer.to_bytes b.b_kinds;
      names = Int_vec.to_array b.b_names;
      values = Int_vec.to_array b.b_values_col;
      sizes = Int_vec.to_array b.b_sizes;
      levels = Int_vec.to_array b.b_levels;
      parents = Int_vec.to_array b.b_parents;
      qname_pool = b.b_qnames;
      value_pool = b.b_values;
    }
end

let of_tree ?uri ~qnames ~values tree =
  let open Rox_xmldom in
  let b = Builder.create ?uri ~qnames ~values () in
  let rec walk = function
    | Tree.Element e ->
      Builder.open_element b (Qname.to_string e.tag);
      List.iter
        (fun { Tree.name; value } -> Builder.attribute b (Qname.to_string name) value)
        e.attrs;
      List.iter walk e.children;
      Builder.close_element b
    | Tree.Text s -> Builder.text b s
    | Tree.Comment s -> Builder.comment b s
    | Tree.Pi (target, content) -> Builder.pi b target content
  in
  walk (Tree.Element tree.Tree.root);
  Builder.finish b

lib/shred/nodekind.mli:

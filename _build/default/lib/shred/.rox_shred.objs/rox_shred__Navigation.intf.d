lib/shred/navigation.mli: Doc Rox_xmldom

lib/shred/navigation.ml: Array Doc Int_vec List Nodekind Qname Rox_util Rox_xmldom Tree

lib/shred/doc.mli: Nodekind Rox_util Rox_xmldom

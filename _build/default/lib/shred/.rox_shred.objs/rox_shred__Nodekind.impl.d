lib/shred/nodekind.ml: Printf

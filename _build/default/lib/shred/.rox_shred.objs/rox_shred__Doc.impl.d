lib/shred/doc.ml: Array Buffer Bytes Char Int_vec List Nodekind Qname Rox_util Rox_xmldom Str_pool Tree

(** Cut-off sampled operator execution — the [↓l(OP)] of Section 2.3.

    A sampled operator runs with a (small) outer sample and the full inner
    input, but *stops generating results at limit l*, so its cost stays
    linear in the sample size regardless of join hit ratio. The fraction
    [f] of outer tuples consumed when the cut-off strikes extrapolates the
    full-result cardinality: |r'| = |r| / f (the paper's rowid trick).

    The front-bias this introduces (early outer tuples dominate the sample)
    is accepted exactly as in the paper; chain sampling mitigates it by
    growing the limit per round (Algorithm 2, line 12). *)

type t = {
  out : int array;
      (** Inner-side output nodes in generation order — may contain
          duplicates; feeds the next link of a sampled chain. *)
  produced : int;
  consumed_outer : int;  (** Outer tuples consumed (incl. a partial last). *)
  fraction : float;      (** f: consumed / |outer|; 1.0 when completed. *)
  est : float;           (** Extrapolated full-result pair cardinality. *)
  completed : bool;      (** The operator finished before hitting the limit. *)
}

val run : limit:int -> outer_len:int -> iter:((int -> int -> unit) -> unit) -> t
(** [run ~limit ~outer_len ~iter] drives [iter emit] where the operator
    calls [emit outer_idx inner_node] in ascending [outer_idx] order; [run]
    interrupts it once [limit] results exist. *)

val out_distinct : t -> int array
(** Document-ordered, duplicate-free view of [out]. *)

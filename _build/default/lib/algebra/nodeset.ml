open Rox_util

let intersect a b =
  let out = Int_vec.create ~capacity:(min (Array.length a) (Array.length b) + 1) () in
  let i = ref 0 and j = ref 0 in
  while !i < Array.length a && !j < Array.length b do
    let x = a.(!i) and y = b.(!j) in
    if x = y then begin
      Int_vec.push out x;
      incr i;
      incr j
    end
    else if x < y then incr i
    else incr j
  done;
  Int_vec.to_array out

let union a b =
  let out = Int_vec.create ~capacity:(Array.length a + Array.length b) () in
  let i = ref 0 and j = ref 0 in
  while !i < Array.length a && !j < Array.length b do
    let x = a.(!i) and y = b.(!j) in
    if x = y then begin
      Int_vec.push out x;
      incr i;
      incr j
    end
    else if x < y then begin
      Int_vec.push out x;
      incr i
    end
    else begin
      Int_vec.push out y;
      incr j
    end
  done;
  while !i < Array.length a do
    Int_vec.push out a.(!i);
    incr i
  done;
  while !j < Array.length b do
    Int_vec.push out b.(!j);
    incr j
  done;
  Int_vec.to_array out

let difference a b =
  let out = Int_vec.create () in
  let i = ref 0 and j = ref 0 in
  while !i < Array.length a do
    if !j >= Array.length b then begin
      Int_vec.push out a.(!i);
      incr i
    end
    else begin
      let x = a.(!i) and y = b.(!j) in
      if x = y then begin
        incr i;
        incr j
      end
      else if x < y then begin
        Int_vec.push out x;
        incr i
      end
      else incr j
    end
  done;
  Int_vec.to_array out

let mem = Bin_search.mem

let is_sorted_dedup a =
  let rec check i = i >= Array.length a || (a.(i - 1) < a.(i) && check (i + 1)) in
  Array.length a = 0 || check 1

let of_unsorted a = Int_vec.sorted_dedup (Int_vec.of_array a)

let equal a b = a = b

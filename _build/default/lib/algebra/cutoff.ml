open Rox_util

type t = {
  out : int array;
  produced : int;
  consumed_outer : int;
  fraction : float;
  est : float;
  completed : bool;
}

exception Cut

let run ~limit ~outer_len ~iter =
  let out = Int_vec.create ~capacity:(min limit 1024) () in
  let last_outer = ref (-1) in
  let emit oi node =
    last_outer := max !last_outer oi;
    Int_vec.push out node;
    if Int_vec.length out >= limit then raise Cut
  in
  let completed =
    try
      iter emit;
      true
    with Cut -> false
  in
  let produced = Int_vec.length out in
  let consumed_outer = if completed then outer_len else !last_outer + 1 in
  let fraction =
    if completed || outer_len = 0 then 1.0
    else float_of_int (max 1 consumed_outer) /. float_of_int outer_len
  in
  let est = if completed then float_of_int produced else float_of_int produced /. fraction in
  { out = Int_vec.to_array out; produced; consumed_outer; fraction; est; completed }

let out_distinct t = Int_vec.sorted_dedup (Int_vec.of_array t.out)

type counter = { mutable sampling : int; mutable execution : int }
type bucket = Sampling | Execution
type meter = { counter : counter; bucket : bucket }

let new_counter () = { sampling = 0; execution = 0 }

let reset c =
  c.sampling <- 0;
  c.execution <- 0

let total c = c.sampling + c.execution
let meter counter bucket = { counter; bucket }
let sampling_meter counter = { counter; bucket = Sampling }
let execution_meter counter = { counter; bucket = Execution }

let charge m units =
  match m with
  | None -> ()
  | Some { counter; bucket } ->
    (match bucket with
     | Sampling -> counter.sampling <- counter.sampling + units
     | Execution -> counter.execution <- counter.execution + units)

let read c = function
  | Sampling -> c.sampling
  | Execution -> c.execution

(** XPath axes supported by the staircase join.

    The set of Section 2.2 — {anc, ancs, child, parent, desc, self, descs,
    foll, folls, prec, precs} — plus the attribute axis (the paper reaches
    attribute vertices through "/" edges; we name the axis explicitly).

    [reverse] gives the axis that evaluates the same edge from the other
    end: ROX "may very well decide to execute the step in the reverse
    direction" (Section 2.1). *)

type t =
  | Child
  | Descendant
  | Desc_or_self
  | Parent
  | Ancestor
  | Anc_or_self
  | Following
  | Preceding
  | Following_sibling
  | Preceding_sibling
  | Self
  | Attribute

val reverse : t -> t
(** [reverse a] satisfies: s ∈ a(c) ⇔ c ∈ (reverse a)(s). The reverse of
    [Attribute] is [Parent] (an attribute's parent is its owner element). *)

val to_string : t -> string
(** XPath syntax name, e.g. "descendant-or-self". *)

val of_string : string -> t
(** @raise Invalid_argument on unknown axis names. *)

val short_label : t -> string
(** The paper's edge labels: "/" for child, "//" for descendant, "@" for
    attribute, full name otherwise. *)

val all : t array

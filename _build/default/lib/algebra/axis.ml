type t =
  | Child
  | Descendant
  | Desc_or_self
  | Parent
  | Ancestor
  | Anc_or_self
  | Following
  | Preceding
  | Following_sibling
  | Preceding_sibling
  | Self
  | Attribute

let reverse = function
  | Child -> Parent
  | Descendant -> Ancestor
  | Desc_or_self -> Anc_or_self
  | Parent -> Child
  | Ancestor -> Descendant
  | Anc_or_self -> Desc_or_self
  | Following -> Preceding
  | Preceding -> Following
  | Following_sibling -> Preceding_sibling
  | Preceding_sibling -> Following_sibling
  | Self -> Self
  | Attribute -> Parent

let to_string = function
  | Child -> "child"
  | Descendant -> "descendant"
  | Desc_or_self -> "descendant-or-self"
  | Parent -> "parent"
  | Ancestor -> "ancestor"
  | Anc_or_self -> "ancestor-or-self"
  | Following -> "following"
  | Preceding -> "preceding"
  | Following_sibling -> "following-sibling"
  | Preceding_sibling -> "preceding-sibling"
  | Self -> "self"
  | Attribute -> "attribute"

let of_string = function
  | "child" -> Child
  | "descendant" -> Descendant
  | "descendant-or-self" -> Desc_or_self
  | "parent" -> Parent
  | "ancestor" -> Ancestor
  | "ancestor-or-self" -> Anc_or_self
  | "following" -> Following
  | "preceding" -> Preceding
  | "following-sibling" -> Following_sibling
  | "preceding-sibling" -> Preceding_sibling
  | "self" -> Self
  | "attribute" -> Attribute
  | s -> invalid_arg (Printf.sprintf "Axis.of_string: %s" s)

let short_label = function
  | Child -> "/"
  | Descendant -> "//"
  | Attribute -> "@"
  | axis -> to_string axis

let all =
  [| Child; Descendant; Desc_or_self; Parent; Ancestor; Anc_or_self; Following;
     Preceding; Following_sibling; Preceding_sibling; Self; Attribute |]

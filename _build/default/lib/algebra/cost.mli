(** Work-unit cost accounting.

    The paper reports elapsed times on one fixed testbed; this reproduction
    additionally measures *work units* — tuples touched and produced,
    charged by each physical operator according to the cost column of
    Table 1. Work units are deterministic, so plan comparisons (Figures
    5–7) and the sampling-overhead ratios (Figure 8) are exactly
    reproducible.

    A {!counter} keeps two buckets: work done while *sampling* (weight
    estimation + chain sampling) and work done *executing* edges for real.
    The ROX "full run" of the figures is [sampling + execution]; the "pure
    plan" is [execution] alone. *)

type counter = { mutable sampling : int; mutable execution : int }

type bucket = Sampling | Execution

type meter
(** A counter plus the bucket to charge; operators take a meter so they
    stay agnostic of what phase they run in. *)

val new_counter : unit -> counter
val reset : counter -> unit
val total : counter -> int
val meter : counter -> bucket -> meter
val sampling_meter : counter -> meter
val execution_meter : counter -> meter

val charge : meter option -> int -> unit
(** [charge m units] adds work; [None] meters are free (tests that don't
    care about accounting). *)

val read : counter -> bucket -> int

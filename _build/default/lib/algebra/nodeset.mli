(** Operations on node sequences: sorted, duplicate-free [int array]s.

    The ROX state-update step (Algorithm 1, lines 14–17) intersects a
    vertex table with the nodes that survived an edge execution; these are
    the merge-based primitives for that. *)

val intersect : int array -> int array -> int array
val union : int array -> int array -> int array
val difference : int array -> int array -> int array
val mem : int array -> int -> bool
val is_sorted_dedup : int array -> bool
val of_unsorted : int array -> int array
(** Sort + dedup a scratch array (copy; input untouched). *)

val equal : int array -> int array -> bool

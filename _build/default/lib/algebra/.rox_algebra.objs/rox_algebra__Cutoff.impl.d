lib/algebra/cutoff.ml: Int_vec Rox_util

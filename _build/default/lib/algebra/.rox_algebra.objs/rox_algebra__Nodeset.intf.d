lib/algebra/nodeset.mli:

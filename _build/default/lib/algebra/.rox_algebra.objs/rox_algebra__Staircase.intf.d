lib/algebra/staircase.mli: Axis Cost Doc Rox_shred

lib/algebra/selection.mli: Cost Rox_shred

lib/algebra/nodeset.ml: Array Bin_search Int_vec Rox_util

lib/algebra/value_join.mli: Cost Engine Rox_shred Rox_storage

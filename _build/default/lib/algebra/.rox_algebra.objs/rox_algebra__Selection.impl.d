lib/algebra/selection.ml: Array Cost Doc Int_vec Printf Rox_shred Rox_util String

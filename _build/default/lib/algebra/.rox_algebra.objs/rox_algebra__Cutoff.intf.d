lib/algebra/cutoff.mli:

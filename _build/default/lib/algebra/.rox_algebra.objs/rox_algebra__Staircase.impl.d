lib/algebra/staircase.ml: Array Axis Bin_search Cost Doc Int_vec Nodekind Rox_shred Rox_util

lib/algebra/cost.ml:

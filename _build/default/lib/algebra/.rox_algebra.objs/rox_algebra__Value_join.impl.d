lib/algebra/value_join.ml: Array Bin_search Cost Doc Engine Hashtbl Int_vec Rox_shred Rox_storage Rox_util Value_index

lib/algebra/axis.mli:

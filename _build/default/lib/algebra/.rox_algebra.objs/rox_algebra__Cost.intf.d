lib/algebra/cost.mli:

lib/algebra/axis.ml: Printf

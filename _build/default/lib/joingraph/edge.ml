type op =
  | Step of Rox_algebra.Axis.t
  | Equijoin

type t = { id : int; v1 : int; v2 : int; op : op; derived : bool }

let other_end t v =
  if t.v1 = v then t.v2
  else if t.v2 = v then t.v1
  else invalid_arg "Edge.other_end: vertex not on edge"

let touches t v = t.v1 = v || t.v2 = v

let label t =
  match t.op with
  | Step axis -> Rox_algebra.Axis.short_label axis
  | Equijoin -> "="

(** The Join Graph (Definition 1): an edge-labeled graph over node-set
    vertices, the order-independent representation handed from static
    compilation to the ROX run-time.

    Construction is monotone (add vertices, then edges); the optimizer
    never mutates the graph — execution bookkeeping lives in the ROX
    state. *)

type t

val create : unit -> t

val add_vertex : t -> doc_id:int -> Vertex.annot -> Vertex.t
val add_edge : t -> ?derived:bool -> v1:int -> v2:int -> Edge.op -> Edge.t

val vertex : t -> int -> Vertex.t
val edge : t -> int -> Edge.t
val vertex_count : t -> int
val edge_count : t -> int
val vertices : t -> Vertex.t array
val edges : t -> Edge.t array

val incident : t -> int -> Edge.t list
(** Edges touching a vertex, in insertion order. *)

val neighbors : t -> int -> (Edge.t * Vertex.t) list

val find_edge : t -> int -> int -> Edge.t option
(** Any edge between the two vertices. *)

val equi_closure : t -> Edge.t list
(** Adds the transitive closure of the equi-join relation as [derived]
    equi-join edges (the dotted join equivalences of Figure 4: if a=b and
    a=c then b=c) and returns the edges added. Idempotent. *)

val connected : t -> bool
(** Is the whole graph one connected component? (Join Graphs fed to ROX
    always are.) *)

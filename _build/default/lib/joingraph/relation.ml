open Rox_util
open Rox_algebra

type t = {
  verts : int array;
  data : int array; (* row-major *)
  nrows : int;
}

exception Too_large of int

let width t = Array.length t.verts
let rows t = t.nrows
let vertices t = t.verts

let col_index t v =
  let rec find i =
    if i >= Array.length t.verts then None else if t.verts.(i) = v then Some i else find (i + 1)
  in
  find 0

let has_vertex t v = col_index t v <> None

let col_index_exn t v =
  match col_index t v with
  | Some i -> i
  | None -> invalid_arg "Relation: vertex not in relation"

let singleton ~vertex nodes =
  { verts = [| vertex |]; data = Array.copy nodes; nrows = Array.length nodes }

let of_pairs ~v1 ~v2 (p : Exec.pairs) =
  let n = Array.length p.Exec.left in
  let data = Array.make (2 * n) 0 in
  for i = 0 to n - 1 do
    data.(2 * i) <- p.Exec.left.(i);
    data.((2 * i) + 1) <- p.Exec.right.(i)
  done;
  { verts = [| v1; v2 |]; data; nrows = n }

let column t v =
  let c = col_index_exn t v in
  let w = width t in
  Array.init t.nrows (fun i -> t.data.((i * w) + c))

let column_distinct t v = Int_vec.sorted_dedup (Int_vec.of_array (column t v))

(* Multimap from pair left node to its right nodes. *)
let pairs_multimap (p : Exec.pairs) =
  let map : (int, Int_vec.t) Hashtbl.t = Hashtbl.create (Array.length p.Exec.left) in
  Array.iteri
    (fun i l ->
      let vec =
        match Hashtbl.find_opt map l with
        | Some v -> v
        | None ->
          let v = Int_vec.create ~capacity:2 () in
          Hashtbl.replace map l v;
          v
      in
      Int_vec.push vec p.Exec.right.(i))
    p.Exec.left;
  map

let extend ?meter ?(max_rows = max_int) t ~on ~new_vertex (p : Exec.pairs) =
  let c = col_index_exn t on in
  let w = width t in
  let map = pairs_multimap p in
  let out = Int_vec.create () in
  let nrows = ref 0 in
  for i = 0 to t.nrows - 1 do
    match Hashtbl.find_opt map t.data.((i * w) + c) with
    | None -> ()
    | Some matches ->
      Int_vec.iter
        (fun m ->
          for j = 0 to w - 1 do
            Int_vec.push out t.data.((i * w) + j)
          done;
          Int_vec.push out m;
          incr nrows;
          if !nrows > max_rows then raise (Too_large !nrows))
        matches
  done;
  Cost.charge meter !nrows;
  { verts = Array.append t.verts [| new_vertex |]; data = Int_vec.to_array out; nrows = !nrows }

let rows_by_key t c =
  let w = width t in
  let map : (int, Int_vec.t) Hashtbl.t = Hashtbl.create (max 16 t.nrows) in
  for i = 0 to t.nrows - 1 do
    let key = t.data.((i * w) + c) in
    let vec =
      match Hashtbl.find_opt map key with
      | Some v -> v
      | None ->
        let v = Int_vec.create ~capacity:2 () in
        Hashtbl.replace map key v;
        v
    in
    Int_vec.push vec i
  done;
  map

let fuse ?meter ?(max_rows = max_int) left right ~on_left ~on_right (p : Exec.pairs) =
  let cl = col_index_exn left on_left in
  let cr = col_index_exn right on_right in
  let wl = width left and wr = width right in
  let left_rows = rows_by_key left cl in
  let right_rows = rows_by_key right cr in
  let out = Int_vec.create () in
  let nrows = ref 0 in
  Array.iteri
    (fun i lnode ->
      let rnode = p.Exec.right.(i) in
      match (Hashtbl.find_opt left_rows lnode, Hashtbl.find_opt right_rows rnode) with
      | Some lrows, Some rrows ->
        Int_vec.iter
          (fun li ->
            Int_vec.iter
              (fun ri ->
                for j = 0 to wl - 1 do
                  Int_vec.push out left.data.((li * wl) + j)
                done;
                for j = 0 to wr - 1 do
                  Int_vec.push out right.data.((ri * wr) + j)
                done;
                incr nrows;
                if !nrows > max_rows then raise (Too_large !nrows))
              rrows)
          lrows
      | _ -> ())
    p.Exec.left;
  Cost.charge meter !nrows;
  {
    verts = Array.append left.verts right.verts;
    data = Int_vec.to_array out;
    nrows = !nrows;
  }

let filter_pairs ?meter t ~c1 ~c2 (p : Exec.pairs) =
  let i1 = col_index_exn t c1 and i2 = col_index_exn t c2 in
  let w = width t in
  let set : (int * int, unit) Hashtbl.t = Hashtbl.create (Array.length p.Exec.left) in
  Array.iteri (fun i l -> Hashtbl.replace set (l, p.Exec.right.(i)) ()) p.Exec.left;
  let out = Int_vec.create () in
  let nrows = ref 0 in
  for i = 0 to t.nrows - 1 do
    Cost.charge meter 1;
    let key = (t.data.((i * w) + i1), t.data.((i * w) + i2)) in
    if Hashtbl.mem set key then begin
      for j = 0 to w - 1 do
        Int_vec.push out t.data.((i * w) + j)
      done;
      incr nrows
    end
  done;
  { t with data = Int_vec.to_array out; nrows = !nrows }

let project t keep =
  let cols = Array.map (col_index_exn t) keep in
  let w = width t in
  let nw = Array.length cols in
  let data = Array.make (t.nrows * nw) 0 in
  for i = 0 to t.nrows - 1 do
    Array.iteri (fun j c -> data.((i * nw) + j) <- t.data.((i * w) + c)) cols
  done;
  { verts = Array.copy keep; data; nrows = t.nrows }

let row_array t i =
  let w = width t in
  Array.sub t.data (i * w) w

let distinct ?meter t =
  let seen : (int array, unit) Hashtbl.t = Hashtbl.create (max 16 t.nrows) in
  let out = Int_vec.create () in
  let nrows = ref 0 in
  for i = 0 to t.nrows - 1 do
    Cost.charge meter 1;
    let row = row_array t i in
    if not (Hashtbl.mem seen row) then begin
      Hashtbl.replace seen row ();
      Array.iter (Int_vec.push out) row;
      incr nrows
    end
  done;
  { t with data = Int_vec.to_array out; nrows = !nrows }

let sort_rows t =
  let rows = Array.init t.nrows (row_array t) in
  Array.sort compare rows;
  let w = width t in
  let data = Array.make (t.nrows * w) 0 in
  Array.iteri (fun i row -> Array.blit row 0 data (i * w) w) rows;
  { t with data }

let iter_rows t f =
  let w = width t in
  let buf = Array.make w 0 in
  for i = 0 to t.nrows - 1 do
    Array.blit t.data (i * w) buf 0 w;
    f buf
  done

let cross ?meter ?(max_rows = max_int) a b =
  let wa = width a and wb = width b in
  let nrows = a.nrows * b.nrows in
  if nrows > max_rows then raise (Too_large nrows);
  Cost.charge meter nrows;
  let data = Array.make (nrows * (wa + wb)) 0 in
  let r = ref 0 in
  for i = 0 to a.nrows - 1 do
    for j = 0 to b.nrows - 1 do
      Array.blit a.data (i * wa) data (!r * (wa + wb)) wa;
      Array.blit b.data (j * wb) data ((!r * (wa + wb)) + wa) wb;
      incr r
    done
  done;
  { verts = Array.append a.verts b.verts; data; nrows }

lib/joingraph/pretty.mli: Edge Graph

lib/joingraph/vertex.ml: Rox_algebra

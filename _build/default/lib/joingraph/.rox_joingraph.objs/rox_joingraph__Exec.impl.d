lib/joingraph/exec.ml: Array Axis Cutoff Edge Element_index Engine Float Graph Int_vec Kind_index Rox_algebra Rox_shred Rox_storage Rox_util Selection Staircase Value_index Value_join Vertex

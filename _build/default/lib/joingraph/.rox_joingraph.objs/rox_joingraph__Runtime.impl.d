lib/joingraph/runtime.ml: Array Axis Edge Engine Exec Graph List Relation Rox_algebra Rox_storage Vertex

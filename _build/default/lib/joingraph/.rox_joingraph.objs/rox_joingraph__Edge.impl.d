lib/joingraph/edge.ml: Rox_algebra

lib/joingraph/relation.ml: Array Cost Exec Hashtbl Int_vec Rox_algebra Rox_util

lib/joingraph/relation.mli: Exec Rox_algebra

lib/joingraph/edge.mli: Rox_algebra

lib/joingraph/pretty.ml: Array Buffer Edge Graph Printf Rox_algebra String Vertex

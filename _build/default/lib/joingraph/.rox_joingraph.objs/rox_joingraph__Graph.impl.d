lib/joingraph/graph.ml: Array Edge List Vertex

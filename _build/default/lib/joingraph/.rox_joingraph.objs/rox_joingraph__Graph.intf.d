lib/joingraph/graph.mli: Edge Vertex

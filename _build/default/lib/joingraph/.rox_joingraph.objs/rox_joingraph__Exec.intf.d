lib/joingraph/exec.mli: Edge Engine Graph Rox_algebra Rox_storage Vertex

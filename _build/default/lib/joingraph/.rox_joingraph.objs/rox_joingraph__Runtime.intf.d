lib/joingraph/runtime.mli: Edge Engine Exec Graph Relation Rox_algebra Rox_storage

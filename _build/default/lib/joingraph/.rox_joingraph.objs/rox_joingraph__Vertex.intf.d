lib/joingraph/vertex.mli: Rox_algebra

(** Textual rendering of Join Graphs.

    Prints graphs in the paper's notation — one line per edge, e.g.
    [open_auction ◦//– bidder] — optionally decorated with edge weights
    (the sampled cardinality estimates of Figures 3.1/3.2), plus a Graphviz
    dot form for documentation. *)

val edge_line : ?weight:string -> Graph.t -> Edge.t -> string
(** One edge in paper notation. *)

val to_string : ?weights:(Edge.t -> string option) -> Graph.t -> string

val to_dot : ?weights:(Edge.t -> string option) -> Graph.t -> string
(** Graphviz rendering; derived (join-equivalence) edges are dashed like
    the dotted edges of Figure 4. *)

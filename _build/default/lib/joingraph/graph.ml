type t = {
  mutable vertices : Vertex.t list;  (* reversed *)
  mutable nvertices : int;
  mutable edges : Edge.t list;  (* reversed *)
  mutable nedges : int;
  mutable vertex_arr : Vertex.t array option;  (* caches, invalidated on add *)
  mutable edge_arr : Edge.t array option;
}

let create () =
  { vertices = []; nvertices = 0; edges = []; nedges = 0; vertex_arr = None; edge_arr = None }

let add_vertex t ~doc_id annot =
  let v = { Vertex.id = t.nvertices; doc_id; annot } in
  t.vertices <- v :: t.vertices;
  t.nvertices <- t.nvertices + 1;
  t.vertex_arr <- None;
  v

let add_edge t ?(derived = false) ~v1 ~v2 op =
  if v1 < 0 || v1 >= t.nvertices || v2 < 0 || v2 >= t.nvertices then
    invalid_arg "Graph.add_edge: unknown vertex";
  if v1 = v2 then invalid_arg "Graph.add_edge: self loop";
  let e = { Edge.id = t.nedges; v1; v2; op; derived } in
  t.edges <- e :: t.edges;
  t.nedges <- t.nedges + 1;
  t.edge_arr <- None;
  e

let vertices t =
  match t.vertex_arr with
  | Some a -> a
  | None ->
    let a = Array.of_list (List.rev t.vertices) in
    t.vertex_arr <- Some a;
    a

let edges t =
  match t.edge_arr with
  | Some a -> a
  | None ->
    let a = Array.of_list (List.rev t.edges) in
    t.edge_arr <- Some a;
    a

let vertex t i =
  if i < 0 || i >= t.nvertices then invalid_arg "Graph.vertex";
  (vertices t).(i)

let edge t i =
  if i < 0 || i >= t.nedges then invalid_arg "Graph.edge";
  (edges t).(i)

let vertex_count t = t.nvertices
let edge_count t = t.nedges

let incident t v =
  Array.to_list (edges t) |> List.filter (fun e -> Edge.touches e v)

let neighbors t v =
  incident t v |> List.map (fun e -> (e, vertex t (Edge.other_end e v)))

let find_edge t a b =
  Array.to_list (edges t)
  |> List.find_opt (fun e ->
         (e.Edge.v1 = a && e.Edge.v2 = b) || (e.Edge.v1 = b && e.Edge.v2 = a))

let equi_closure t =
  (* Union-find over equi-join-connected vertices. *)
  let parent = Array.init t.nvertices (fun i -> i) in
  let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(ra) <- rb
  in
  Array.iter
    (fun e -> match e.Edge.op with Edge.Equijoin -> union e.Edge.v1 e.Edge.v2 | Edge.Step _ -> ())
    (edges t);
  let added = ref [] in
  for a = 0 to t.nvertices - 1 do
    for b = a + 1 to t.nvertices - 1 do
      if find a = find b then
        match find_edge t a b with
        | Some _ -> ()
        | None -> added := add_edge t ~derived:true ~v1:a ~v2:b Edge.Equijoin :: !added
    done
  done;
  List.rev !added

let connected t =
  if t.nvertices = 0 then true
  else begin
    let seen = Array.make t.nvertices false in
    let rec visit v =
      if not seen.(v) then begin
        seen.(v) <- true;
        List.iter (fun e -> visit (Edge.other_end e v)) (incident t v)
      end
    in
    visit 0;
    Array.for_all (fun b -> b) seen
  end

(** Materialized intermediate results over Join Graph vertices.

    ROX "executes the operations in the Join Graph one by one, fully
    materializing partial results" (Section 1.1). A relation is the joined
    table over the vertices of one already-executed connected subgraph: one
    column per vertex, each cell a node (pre rank) of that vertex's
    document. Executing an edge either creates a fresh binary relation,
    extends one component, fuses two components, or filters a component
    whose endpoints it already spans.

    The per-vertex tables T(v) of Algorithm 1 are distinct column
    projections of these relations. *)

type t

exception Too_large of int
(** Raised by the constructing operations when [max_rows] is exceeded —
    *before* the oversized relation is fully materialized. The payload is
    the row count reached. *)

val width : t -> int
val rows : t -> int
val vertices : t -> int array
(** Column order. *)

val has_vertex : t -> int -> bool
val singleton : vertex:int -> int array -> t
(** One-column relation from a node set. *)

val of_pairs : v1:int -> v2:int -> Exec.pairs -> t

val column : t -> int -> int array
(** All cells of the vertex's column, with duplicates, in row order. *)

val column_distinct : t -> int -> int array
(** Sorted duplicate-free column — the updated T(v). *)

val extend :
  ?meter:Rox_algebra.Cost.meter ->
  ?max_rows:int ->
  t -> on:int -> new_vertex:int -> Exec.pairs -> t
(** [extend r ~on ~new_vertex pairs] joins [r] with the pair list on [r]'s
    [on] column (pairs are oriented (on-node, new-node)). Work charged:
    result rows. *)

val fuse :
  ?meter:Rox_algebra.Cost.meter ->
  ?max_rows:int ->
  t -> t -> on_left:int -> on_right:int -> Exec.pairs -> t
(** Join two components through an edge whose endpoints live one in each:
    pairs oriented (left-component node, right-component node). *)

val filter_pairs :
  ?meter:Rox_algebra.Cost.meter -> t -> c1:int -> c2:int -> Exec.pairs -> t
(** Keep rows whose (c1, c2) cell pair appears in the pair list — an edge
    both of whose endpoints are already in the component. *)

val project : t -> int array -> t
(** Restrict to the given vertex columns (in the given order). *)

val distinct : ?meter:Rox_algebra.Cost.meter -> t -> t
(** Duplicate row elimination (the δ of the plan tail). *)

val sort_rows : t -> t
(** Lexicographic row order over the columns — the τ numbering of the plan
    tail sorts by node identity column by column. *)

val iter_rows : t -> (int array -> unit) -> unit
(** Calls with a scratch row buffer (do not retain). *)

val cross : ?meter:Rox_algebra.Cost.meter -> ?max_rows:int -> t -> t -> t
(** Cartesian product (needed only when a plan joins two components on an
    edge spanning them — via [fuse] — never blindly; exposed for tests and
    the plan-space enumerator). *)

let vertex_name graph vid =
  let v = Graph.vertex graph vid in
  let label = Vertex.label v in
  Printf.sprintf "%s[d%d]" label v.Vertex.doc_id

let edge_line ?weight graph (e : Edge.t) =
  let connector =
    match e.Edge.op with
    | Edge.Equijoin -> "=="
    | Edge.Step axis -> Printf.sprintf "o-%s->" (Rox_algebra.Axis.short_label axis)
  in
  let base =
    Printf.sprintf "%s %s %s" (vertex_name graph e.Edge.v1) connector
      (vertex_name graph e.Edge.v2)
  in
  let base = if e.Edge.derived then base ^ " (derived)" else base in
  match weight with
  | Some w -> Printf.sprintf "%s  [w=%s]" base w
  | None -> base

let to_string ?weights graph =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "Join Graph: %d vertices, %d edges\n" (Graph.vertex_count graph)
       (Graph.edge_count graph));
  Array.iter
    (fun e ->
      let weight = match weights with Some f -> f e | None -> None in
      Buffer.add_string buf "  ";
      Buffer.add_string buf (edge_line ?weight graph e);
      Buffer.add_char buf '\n')
    (Graph.edges graph);
  Buffer.contents buf

let to_dot ?weights graph =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "graph joingraph {\n";
  Array.iter
    (fun (v : Vertex.t) ->
      Buffer.add_string buf
        (Printf.sprintf "  v%d [label=\"%s\"];\n" v.Vertex.id
           (String.concat "\\\"" (String.split_on_char '"' (Vertex.label v)))))
    (Graph.vertices graph);
  Array.iter
    (fun (e : Edge.t) ->
      let style = if e.Edge.derived then ", style=dashed" else "" in
      let weight =
        match weights with
        | Some f -> (match f e with Some w -> ", " ^ w | None -> "")
        | None -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  v%d -- v%d [label=\"%s\"%s%s];\n" e.Edge.v1 e.Edge.v2
           (Edge.label e) style weight))
    (Graph.edges graph);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

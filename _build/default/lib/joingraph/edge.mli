(** Join Graph edges: XPath step joins and value equi-joins.

    A step edge [v1 ◦ax— v2] reads "the nodes of v2 reachable from context
    v1 along axis ax"; the stored direction is representational — the
    engine may execute the reverse axis from v2 (Section 2.1). A [derived]
    edge is a join-equivalence added by ROX's transitive closure over
    equi-joins (the dotted edges of Figure 4). *)

type op =
  | Step of Rox_algebra.Axis.t  (** context = v1, result = v2 *)
  | Equijoin

type t = {
  id : int;
  v1 : int;
  v2 : int;
  op : op;
  derived : bool;
}

val other_end : t -> int -> int
(** The opposite endpoint. @raise Invalid_argument if the vertex is not an
    endpoint of the edge. *)

val touches : t -> int -> bool

val label : t -> string
(** "//", "/", "@", "=", or the long axis name. *)

(** Kind index: node kind → document-ordered node sequence.

    Provides the [D_k] inner inputs of the staircase join (Section 2.2):
    "the entire document [D*], or a kind restriction [D_k]". Text-node
    steps ([text()]) and attribute steps are the common users. *)

type t

val build : Rox_shred.Doc.t -> t

val lookup : t -> Rox_shred.Nodekind.t -> int array
(** Shared sorted pre array of all nodes of that kind. *)

val all : t -> int array
(** Every node except the virtual doc root — the [D*] input. *)

val count : t -> Rox_shred.Nodekind.t -> int

lib/storage/engine.ml: Array Doc Element_index Hashtbl Kind_index Rox_shred Rox_util Str_pool Value_index

lib/storage/value_index.mli: Rox_shred

lib/storage/sampling.ml: Array Rox_util Xoshiro

lib/storage/kind_index.mli: Rox_shred

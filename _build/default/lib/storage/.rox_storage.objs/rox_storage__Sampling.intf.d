lib/storage/sampling.mli: Rox_util

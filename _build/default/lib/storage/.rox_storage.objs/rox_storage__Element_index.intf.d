lib/storage/element_index.mli: Rox_shred

lib/storage/value_index.ml: Array Doc Hashtbl Int_vec Nodekind Rox_shred Rox_util

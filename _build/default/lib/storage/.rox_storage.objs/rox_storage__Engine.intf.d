lib/storage/engine.mli: Element_index Kind_index Rox_shred Rox_util Rox_xmldom Value_index

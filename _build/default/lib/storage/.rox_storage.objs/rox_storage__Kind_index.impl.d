lib/storage/kind_index.ml: Array Doc Int_vec Nodekind Rox_shred Rox_util

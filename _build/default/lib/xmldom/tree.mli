(** In-memory XML tree.

    The tree is the exchange format between the parser, the workload
    generators and the shredder. It is deliberately minimal: elements with
    attributes, text, comments and processing instructions — the node kinds
    of the pre/size/level encoding of Section 2.2. *)

type attribute = { name : Qname.t; value : string }

type node =
  | Element of element
  | Text of string
  | Comment of string
  | Pi of string * string  (** target, content *)

and element = { tag : Qname.t; attrs : attribute list; children : node list }

type t = { root : element }
(** A document with a single root element. *)

val element : ?attrs:(string * string) list -> string -> node list -> node
(** Convenience constructor: [element "person" ~attrs:["id","p1"] children]. *)

val text : string -> node
val document : node -> t
(** @raise Invalid_argument if the node is not an element. *)

val node_count : t -> int
(** Total number of encoding slots the document will occupy when shredded:
    1 (virtual document root) + elements + attributes + texts + comments +
    PIs. *)

val find_elements : t -> string -> element list
(** All descendant elements (document order) with the given local name;
    handy in tests. *)

val text_content : element -> string
(** Concatenated descendant text. *)

(** XML serialization.

    The inverse of {!Xml_parser}: used by the dataset generators to write
    documents to disk (the paper's DBLP split produces one file per venue)
    and by tests to check parse/print round-trips. *)

val escape_text : string -> string
(** Escapes [<], [>] and [&]. *)

val escape_attr : string -> string
(** Additionally escapes double quotes. *)

val to_buffer : ?indent:bool -> Buffer.t -> Tree.t -> unit
val to_string : ?indent:bool -> Tree.t -> string
val to_file : ?indent:bool -> string -> Tree.t -> unit

val serialized_size : Tree.t -> int
(** Byte size of the compact (non-indented) serialization, without building
    the whole string when it is large — Table 3 reports document sizes. *)

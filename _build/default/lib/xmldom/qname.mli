(** Qualified names.

    The paper's element index is keyed by qualified name; we keep the
    (prefix, local) split purely syntactic — no namespace resolution is
    needed for the XMark / DBLP workloads — but preserve it so serialization
    round-trips. *)

type t = { prefix : string; local : string }

val make : ?prefix:string -> string -> t
val of_string : string -> t
(** Splits on the first [':'] when present. *)

val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

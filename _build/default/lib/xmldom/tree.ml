type attribute = { name : Qname.t; value : string }

type node =
  | Element of element
  | Text of string
  | Comment of string
  | Pi of string * string

and element = { tag : Qname.t; attrs : attribute list; children : node list }

type t = { root : element }

let element ?(attrs = []) tag children =
  let attrs = List.map (fun (k, v) -> { name = Qname.of_string k; value = v }) attrs in
  Element { tag = Qname.of_string tag; attrs; children }

let text s = Text s

let document = function
  | Element e -> { root = e }
  | Text _ | Comment _ | Pi _ -> invalid_arg "Tree.document: root must be an element"

let node_count t =
  let rec count_node = function
    | Element e ->
      1 + List.length e.attrs + List.fold_left (fun acc c -> acc + count_node c) 0 e.children
    | Text _ | Comment _ | Pi _ -> 1
  in
  1 + count_node (Element t.root)

let find_elements t name =
  let out = ref [] in
  let rec walk = function
    | Element e ->
      if String.equal e.tag.Qname.local name then out := e :: !out;
      List.iter walk e.children
    | Text _ | Comment _ | Pi _ -> ()
  in
  walk (Element t.root);
  List.rev !out

let text_content e =
  let buf = Buffer.create 64 in
  let rec walk = function
    | Element e -> List.iter walk e.children
    | Text s -> Buffer.add_string buf s
    | Comment _ | Pi _ -> ()
  in
  walk (Element e);
  Buffer.contents buf

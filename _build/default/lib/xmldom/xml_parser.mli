(** Non-validating XML parser.

    Handles the XML subset the experiments need and then some: elements,
    attributes (single or double quoted), character data with entity and
    character references, CDATA sections, comments, processing instructions,
    an optional XML declaration and a skipped DOCTYPE. Namespace
    declarations are kept as plain attributes.

    Whitespace-only text between elements is dropped by default (the
    shredded encodings of data-centric documents such as DBLP never store
    indentation), which keeps generated-then-reparsed documents structurally
    identical. *)

exception Parse_error of { line : int; column : int; message : string }

val parse_string : ?keep_whitespace:bool -> string -> Tree.t
(** @raise Parse_error on malformed input. *)

val parse_file : ?keep_whitespace:bool -> string -> Tree.t

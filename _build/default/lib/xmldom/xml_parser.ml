exception Parse_error of { line : int; column : int; message : string }

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of beginning of current line *)
  keep_whitespace : bool;
}

let error st message =
  raise (Parse_error { line = st.line; column = st.pos - st.bol + 1; message })

let eof st = st.pos >= String.length st.src

let peek st = if eof st then '\000' else st.src.[st.pos]

let advance st =
  if not (eof st) then begin
    if st.src.[st.pos] = '\n' then begin
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
    end;
    st.pos <- st.pos + 1
  end

let expect st c =
  if peek st <> c then error st (Printf.sprintf "expected %C, found %C" c (peek st));
  advance st

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_space st =
  while (not (eof st)) && is_space (peek st) do advance st done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
  || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  if not (is_name_start (peek st)) then error st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do advance st done;
  String.sub st.src start (st.pos - start)

(* Decode one reference after '&' has been consumed. *)
let parse_reference st buf =
  if peek st = '#' then begin
    advance st;
    let hex = peek st = 'x' in
    if hex then advance st;
    let start = st.pos in
    while (not (eof st)) && peek st <> ';' do advance st done;
    let digits = String.sub st.src start (st.pos - start) in
    expect st ';';
    let code =
      match int_of_string_opt (if hex then "0x" ^ digits else digits) with
      | Some c when c >= 0 -> c
      | _ -> error st "bad character reference"
    in
    (* UTF-8 encode. *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  end
  else begin
    let name = parse_name st in
    expect st ';';
    match name with
    | "lt" -> Buffer.add_char buf '<'
    | "gt" -> Buffer.add_char buf '>'
    | "amp" -> Buffer.add_char buf '&'
    | "quot" -> Buffer.add_char buf '"'
    | "apos" -> Buffer.add_char buf '\''
    | other -> error st (Printf.sprintf "unknown entity &%s;" other)
  end

let parse_attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then error st "expected quoted attribute value";
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    if eof st then error st "unterminated attribute value"
    else if peek st = quote then advance st
    else if peek st = '&' then begin
      advance st;
      parse_reference st buf;
      loop ()
    end
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      loop ()
    end
  in
  loop ();
  Buffer.contents buf

let starts_with st prefix =
  let n = String.length prefix in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = prefix

let skip_until st marker =
  let n = String.length marker in
  let rec loop () =
    if eof st then error st (Printf.sprintf "unterminated construct, expected %s" marker)
    else if starts_with st marker then
      for _ = 1 to n do advance st done
    else begin
      advance st;
      loop ()
    end
  in
  loop ()

let capture_until st marker =
  let start = st.pos in
  let n = String.length marker in
  let rec loop () =
    if eof st then error st (Printf.sprintf "unterminated construct, expected %s" marker)
    else if starts_with st marker then begin
      let content = String.sub st.src start (st.pos - start) in
      for _ = 1 to n do advance st done;
      content
    end
    else begin
      advance st;
      loop ()
    end
  in
  loop ()

let is_blank s =
  let rec check i = i >= String.length s || (is_space s.[i] && check (i + 1)) in
  check 0

let rec parse_misc st =
  (* Comments / PIs / whitespace allowed in prolog and epilog. *)
  skip_space st;
  if starts_with st "<!--" then begin
    st.pos <- st.pos + 4;
    skip_until st "-->";
    parse_misc st
  end
  else if starts_with st "<?" then begin
    st.pos <- st.pos + 2;
    skip_until st "?>";
    parse_misc st
  end
  else if starts_with st "<!DOCTYPE" then begin
    (* Skip to matching '>'; internal subsets with brackets are balanced. *)
    let depth = ref 0 in
    let rec loop () =
      if eof st then error st "unterminated DOCTYPE"
      else begin
        (match peek st with
         | '[' -> incr depth
         | ']' -> decr depth
         | '>' when !depth = 0 ->
           advance st;
           raise Exit
         | _ -> ());
        advance st;
        loop ()
      end
    in
    (try loop () with Exit -> ());
    parse_misc st
  end

let rec parse_element st =
  expect st '<';
  let tag = Qname.of_string (parse_name st) in
  let attrs = ref [] in
  let rec parse_attrs () =
    skip_space st;
    if is_name_start (peek st) then begin
      let name = Qname.of_string (parse_name st) in
      skip_space st;
      expect st '=';
      skip_space st;
      let value = parse_attr_value st in
      attrs := { Tree.name; value } :: !attrs;
      parse_attrs ()
    end
  in
  parse_attrs ();
  skip_space st;
  if starts_with st "/>" then begin
    st.pos <- st.pos + 2;
    { Tree.tag; attrs = List.rev !attrs; children = [] }
  end
  else begin
    expect st '>';
    let children = parse_content st tag in
    { Tree.tag; attrs = List.rev !attrs; children }
  end

and parse_content st open_tag =
  let children = ref [] in
  let buf = Buffer.create 32 in
  let flush_text () =
    if Buffer.length buf > 0 then begin
      let s = Buffer.contents buf in
      Buffer.clear buf;
      if st.keep_whitespace || not (is_blank s) then
        children := Tree.Text s :: !children
    end
  in
  let rec loop () =
    if eof st then error st "unexpected end of input inside element"
    else if starts_with st "</" then begin
      flush_text ();
      st.pos <- st.pos + 2;
      let name = Qname.of_string (parse_name st) in
      skip_space st;
      expect st '>';
      if not (Qname.equal name open_tag) then
        error st
          (Printf.sprintf "mismatched close tag </%s> for <%s>" (Qname.to_string name)
             (Qname.to_string open_tag))
    end
    else if starts_with st "<!--" then begin
      flush_text ();
      st.pos <- st.pos + 4;
      let content = capture_until st "-->" in
      children := Tree.Comment content :: !children;
      loop ()
    end
    else if starts_with st "<![CDATA[" then begin
      st.pos <- st.pos + 9;
      let content = capture_until st "]]>" in
      Buffer.add_string buf content;
      loop ()
    end
    else if starts_with st "<?" then begin
      flush_text ();
      st.pos <- st.pos + 2;
      let target = parse_name st in
      skip_space st;
      let content = capture_until st "?>" in
      children := Tree.Pi (target, content) :: !children;
      loop ()
    end
    else if peek st = '<' then begin
      flush_text ();
      let e = parse_element st in
      children := Tree.Element e :: !children;
      loop ()
    end
    else if peek st = '&' then begin
      advance st;
      parse_reference st buf;
      loop ()
    end
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      loop ()
    end
  in
  loop ();
  List.rev !children

let parse_string ?(keep_whitespace = false) src =
  let st = { src; pos = 0; line = 1; bol = 0; keep_whitespace } in
  parse_misc st;
  if peek st <> '<' then error st "expected root element";
  let root = parse_element st in
  parse_misc st;
  skip_space st;
  if not (eof st) then error st "trailing content after root element";
  { Tree.root }

let parse_file ?keep_whitespace path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  parse_string ?keep_whitespace content

type t = { prefix : string; local : string }

let make ?(prefix = "") local = { prefix; local }

let of_string s =
  match String.index_opt s ':' with
  | None -> { prefix = ""; local = s }
  | Some i ->
    { prefix = String.sub s 0 i; local = String.sub s (i + 1) (String.length s - i - 1) }

let to_string t = if t.prefix = "" then t.local else t.prefix ^ ":" ^ t.local
let equal a b = String.equal a.prefix b.prefix && String.equal a.local b.local

let compare a b =
  match String.compare a.local b.local with
  | 0 -> String.compare a.prefix b.prefix
  | c -> c

let pp ppf t = Format.pp_print_string ppf (to_string t)

let escape_into buf ~attr s =
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' when attr -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s

let escape_text s =
  let buf = Buffer.create (String.length s + 8) in
  escape_into buf ~attr:false s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s + 8) in
  escape_into buf ~attr:true s;
  Buffer.contents buf

let rec write_node buf ~indent ~depth node =
  let pad () =
    if indent then begin
      if Buffer.length buf > 0 then Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * depth) ' ')
    end
  in
  match node with
  | Tree.Text s ->
    pad ();
    escape_into buf ~attr:false s
  | Tree.Comment s ->
    pad ();
    Buffer.add_string buf "<!--";
    Buffer.add_string buf s;
    Buffer.add_string buf "-->"
  | Tree.Pi (target, content) ->
    pad ();
    Buffer.add_string buf "<?";
    Buffer.add_string buf target;
    if content <> "" then begin
      Buffer.add_char buf ' ';
      Buffer.add_string buf content
    end;
    Buffer.add_string buf "?>"
  | Tree.Element e ->
    pad ();
    Buffer.add_char buf '<';
    Buffer.add_string buf (Qname.to_string e.tag);
    List.iter
      (fun { Tree.name; value } ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (Qname.to_string name);
        Buffer.add_string buf "=\"";
        escape_into buf ~attr:true value;
        Buffer.add_char buf '"')
      e.attrs;
    if e.children = [] then Buffer.add_string buf "/>"
    else begin
      Buffer.add_char buf '>';
      (* Only indent children when none of them is text: mixed content must
         stay byte-identical through round-trips. *)
      let has_text =
        List.exists (function Tree.Text _ -> true | _ -> false) e.children
      in
      let indent = indent && not has_text in
      List.iter (write_node buf ~indent ~depth:(depth + 1)) e.children;
      if indent then begin
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (2 * depth) ' ')
      end;
      Buffer.add_string buf "</";
      Buffer.add_string buf (Qname.to_string e.tag);
      Buffer.add_char buf '>'
    end

let to_buffer ?(indent = false) buf t =
  write_node buf ~indent ~depth:0 (Tree.Element t.Tree.root)

let to_string ?indent t =
  let buf = Buffer.create 4096 in
  to_buffer ?indent buf t;
  Buffer.contents buf

let to_file ?indent path t =
  let oc = open_out_bin path in
  let buf = Buffer.create 65536 in
  to_buffer ?indent buf t;
  Buffer.output_buffer oc buf;
  close_out oc

let serialized_size t =
  (* Sum of per-node contributions of the compact form; avoids allocating a
     multi-hundred-MB string for the x100 scaled documents. *)
  let escaped_len ~attr s =
    let n = ref 0 in
    String.iter
      (fun c ->
        n := !n
             + (match c with
                | '<' | '>' -> 4
                | '&' -> 5
                | '"' when attr -> 6
                | _ -> 1))
      s;
    !n
  in
  let rec node_len = function
    | Tree.Text s -> escaped_len ~attr:false s
    | Tree.Comment s -> 7 + String.length s
    | Tree.Pi (target, content) ->
      4 + String.length target + (if content = "" then 0 else 1 + String.length content)
    | Tree.Element e ->
      let tag_len = String.length (Qname.to_string e.tag) in
      let attrs_len =
        List.fold_left
          (fun acc { Tree.name; value } ->
            acc + 1 + String.length (Qname.to_string name) + 2 + escaped_len ~attr:true value + 1)
          0 e.attrs
      in
      if e.children = [] then 1 + tag_len + attrs_len + 2
      else
        (1 + tag_len + attrs_len + 1)
        + List.fold_left (fun acc c -> acc + node_len c) 0 e.children
        + (2 + tag_len + 1)
  in
  node_len (Tree.Element t.Tree.root)

lib/xmldom/tree.ml: Buffer List Qname String

lib/xmldom/xml_writer.mli: Buffer Tree

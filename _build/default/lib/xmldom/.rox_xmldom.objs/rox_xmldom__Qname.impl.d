lib/xmldom/qname.ml: Format String

lib/xmldom/tree.mli: Qname

lib/xmldom/qname.mli: Format

lib/xmldom/xml_parser.mli: Tree

lib/xmldom/xml_parser.ml: Buffer Char List Printf Qname String Tree

lib/xmldom/xml_writer.ml: Buffer List Qname String Tree

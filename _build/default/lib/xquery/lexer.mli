(** Tokenizer for the XQuery fragment. *)

type token =
  | LET | FOR | WHERE | RETURN | IN | AND
  | VAR of string           (** $name *)
  | NAME of string           (** NCName, possibly prefixed *)
  | STRING of string         (** "..." or '...' *)
  | NUMBER of float
  | DOC                      (** doc / fn:doc *)
  | ASSIGN                   (** := *)
  | COMMA | LPAREN | RPAREN | LBRACKET | RBRACKET
  | SLASH | DSLASH           (** / and // *)
  | AT | DOT
  | EQ | NE | LT | LE | GT | GE
  | TEXT_FUN                 (** text() *)
  | NODE_FUN                 (** node() *)
  | AXIS of string           (** e.g. "descendant" in descendant::x *)
  | EOF

exception Lex_error of { position : int; message : string }

val tokenize : string -> token list
val token_to_string : token -> string

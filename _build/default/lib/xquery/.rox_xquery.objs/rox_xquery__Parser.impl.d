lib/xquery/parser.ml: Array Ast Axis Lexer List Printf Rox_algebra

lib/xquery/tail.mli: Rox_algebra Rox_joingraph

lib/xquery/compile.ml: Array Ast Axis Edge Engine Float Graph Hashtbl List Parser Printf Rox_algebra Rox_joingraph Rox_shred Rox_storage Selection Tail Vertex

lib/xquery/ast.mli: Format Rox_algebra

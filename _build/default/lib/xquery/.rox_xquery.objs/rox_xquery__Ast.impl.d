lib/xquery/ast.ml: Axis Format List Printf Rox_algebra String

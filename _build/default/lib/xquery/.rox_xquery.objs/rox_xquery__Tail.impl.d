lib/xquery/tail.ml: Array Relation Rox_joingraph

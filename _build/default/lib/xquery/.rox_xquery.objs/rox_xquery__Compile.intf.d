lib/xquery/compile.mli: Ast Rox_joingraph Rox_storage Tail

lib/xquery/lexer.mli:

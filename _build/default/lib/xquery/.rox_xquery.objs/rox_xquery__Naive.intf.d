lib/xquery/naive.mli: Ast Rox_storage

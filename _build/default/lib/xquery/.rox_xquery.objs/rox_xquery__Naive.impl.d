lib/xquery/naive.ml: Array Ast Axis Doc Engine Float List Navigation Nodekind Parser Printf Rox_algebra Rox_shred Rox_storage String

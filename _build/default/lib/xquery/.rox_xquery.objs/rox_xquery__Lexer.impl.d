lib/xquery/lexer.ml: Buffer List Printf String

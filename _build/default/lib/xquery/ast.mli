(** Abstract syntax of the FLWOR / XPath fragment ROX optimizes.

    This is the query class of the paper: [let $d := doc(...)] bindings,
    conjunctive [for] clauses over path expressions with structural and
    value predicates, a [where] conjunction of value joins and comparisons,
    and a variable [return]. Exactly the shape whose compiled plans reduce
    to a single Join Graph plus a π/δ/τ tail (Section 2.1). *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type literal =
  | Str of string
  | Num of float

type node_test =
  | Name_test of string       (** element name *)
  | Text_test                 (** text() *)
  | Attribute_test of string  (** @name *)
  | Node_test                 (** node() *)

type step = {
  axis : Rox_algebra.Axis.t;
  test : node_test;
  preds : predicate list;
}

and path = {
  start : start;
  steps : step list;
}

and start =
  | From_doc of string   (** doc("uri") *)
  | From_var of string
  | From_self            (** "." inside predicates *)

and predicate =
  | Exists of path                 (** [./reserve] *)
  | Value_cmp of path * cmp * literal  (** [./quantity = 1], [.//x/text() < 5] *)

type where_atom =
  | Join of path * path            (** $a/@p = $b/@id — value equi-join *)
  | Filter of path * cmp * literal

type query = {
  lets : (string * path) list;
  fors : (string * path) list;
  where : where_atom list;  (** conjunction *)
  return_var : string;
}

val pp_path : Format.formatter -> path -> unit
val pp_query : Format.formatter -> query -> unit
val cmp_to_string : cmp -> string

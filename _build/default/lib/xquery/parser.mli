(** Recursive-descent parser for the FLWOR / XPath fragment.

    Accepts the query shapes of the paper — e.g. the XMark query Q1 and the
    DBLP 4-document author-join template — and general conjunctive
    FLWOR-with-predicates queries in that class. *)

exception Parse_error of string

val parse : string -> Ast.query
(** @raise Parse_error (with the offending token in the message). *)

val parse_path : string -> Ast.path
(** Parse a standalone path expression (tests / tools). *)

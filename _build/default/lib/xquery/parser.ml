open Lexer

exception Parse_error of string

type state = { tokens : token array; mutable pos : int }

let peek st = st.tokens.(st.pos)
let peek2 st = if st.pos + 1 < Array.length st.tokens then st.tokens.(st.pos + 1) else EOF
let advance st = if st.pos < Array.length st.tokens - 1 then st.pos <- st.pos + 1

let err st expected =
  raise
    (Parse_error
       (Printf.sprintf "expected %s, found %s (token %d)" expected
          (token_to_string (peek st))
          st.pos))

let expect st t what =
  if peek st = t then advance st else err st what

let parse_cmp st =
  match peek st with
  | EQ -> advance st; Ast.Eq
  | NE -> advance st; Ast.Ne
  | LT -> advance st; Ast.Lt
  | LE -> advance st; Ast.Le
  | GT -> advance st; Ast.Gt
  | GE -> advance st; Ast.Ge
  | _ -> err st "comparison operator"

let is_cmp = function
  | EQ | NE | LT | LE | GT | GE -> true
  | _ -> false

let parse_literal st =
  match peek st with
  | STRING s -> advance st; Ast.Str s
  | NUMBER f -> advance st; Ast.Num f
  | _ -> err st "literal"

(* One step after a '/' or '//' (the axis is supplied by the caller),
   or an initial bare step inside a predicate. *)
let rec parse_step st ~axis =
  let open Rox_algebra in
  let axis, test =
    match peek st with
    | AT ->
      advance st;
      (match peek st with
       | NAME n ->
         advance st;
         ((if axis = Axis.Child then Axis.Attribute else axis), Ast.Attribute_test n)
       | _ -> err st "attribute name after @")
    | TEXT_FUN -> advance st; (axis, Ast.Text_test)
    | NODE_FUN -> advance st; (axis, Ast.Node_test)
    | AXIS a ->
      advance st;
      let axis = try Axis.of_string a with Invalid_argument m -> raise (Parse_error m) in
      (match peek st with
       | NAME n -> advance st; (axis, Ast.Name_test n)
       | TEXT_FUN -> advance st; (axis, Ast.Text_test)
       | NODE_FUN -> advance st; (axis, Ast.Node_test)
       | AT ->
         advance st;
         (match peek st with
          | NAME n -> advance st; (axis, Ast.Attribute_test n)
          | _ -> err st "attribute name after @")
       | _ -> err st "node test after axis::")
    | NAME n -> advance st; (axis, Ast.Name_test n)
    | _ -> err st "step (name, @name, text(), node() or axis::test)"
  in
  let preds = parse_predicates st in
  { Ast.axis; test; preds }

and parse_predicates st =
  match peek st with
  | LBRACKET ->
    advance st;
    let path = parse_pred_path st in
    let pred =
      if is_cmp (peek st) then begin
        let cmp = parse_cmp st in
        let lit = parse_literal st in
        Ast.Value_cmp (path, cmp, lit)
      end
      else Ast.Exists path
    in
    expect st RBRACKET "]";
    pred :: parse_predicates st
  | _ -> []

(* A path inside a predicate: './foo', './/foo', 'foo/bar', '@id', ... *)
and parse_pred_path st =
  match peek st with
  | DOT ->
    advance st;
    let steps = parse_steps st in
    { Ast.start = Ast.From_self; steps }
  | VAR v ->
    advance st;
    let steps = parse_steps st in
    { Ast.start = Ast.From_var v; steps }
  | NAME _ | AT | TEXT_FUN | NODE_FUN | AXIS _ ->
    let first = parse_step st ~axis:Rox_algebra.Axis.Child in
    let rest = parse_steps st in
    { Ast.start = Ast.From_self; steps = first :: rest }
  | _ -> err st "predicate path"

and parse_steps st =
  match peek st with
  | SLASH ->
    advance st;
    let step = parse_step st ~axis:Rox_algebra.Axis.Child in
    step :: parse_steps st
  | DSLASH ->
    advance st;
    let step = parse_step st ~axis:Rox_algebra.Axis.Descendant in
    step :: parse_steps st
  | _ -> []

let parse_path_expr st =
  match peek st with
  | DOC ->
    advance st;
    expect st LPAREN "(";
    let uri =
      match peek st with
      | STRING s -> advance st; s
      | _ -> err st "document uri string"
    in
    expect st RPAREN ")";
    let steps = parse_steps st in
    { Ast.start = Ast.From_doc uri; steps }
  | VAR v ->
    advance st;
    let steps = parse_steps st in
    { Ast.start = Ast.From_var v; steps }
  | DOT ->
    advance st;
    let steps = parse_steps st in
    { Ast.start = Ast.From_self; steps }
  | _ -> err st "path expression (doc(...), $var or .)"

let parse_where_atom st =
  let lhs = parse_path_expr st in
  let cmp = parse_cmp st in
  match peek st with
  | STRING _ | NUMBER _ ->
    let lit = parse_literal st in
    Ast.Filter (lhs, cmp, lit)
  | _ ->
    let rhs = parse_path_expr st in
    if cmp <> Ast.Eq then
      raise (Parse_error "only equality joins between two paths are supported");
    Ast.Join (lhs, rhs)

let parse_query st =
  let lets = ref [] in
  let fors = ref [] in
  let rec parse_bindings ~sep ~dest =
    (match peek st with
     | VAR v ->
       advance st;
       (match sep with
        | `Assign -> expect st ASSIGN ":="
        | `In -> expect st IN "in");
       let path = parse_path_expr st in
       dest := (v, path) :: !dest
     | _ -> err st "variable binding");
    if peek st = COMMA
       && (match peek2 st with VAR _ -> true | _ -> false)
    then begin
      advance st;
      parse_bindings ~sep ~dest
    end
  in
  let rec parse_clauses () =
    match peek st with
    | LET ->
      advance st;
      parse_bindings ~sep:`Assign ~dest:lets;
      parse_clauses ()
    | FOR ->
      advance st;
      parse_bindings ~sep:`In ~dest:fors;
      parse_clauses ()
    | _ -> ()
  in
  parse_clauses ();
  if !fors = [] then raise (Parse_error "query needs at least one for clause");
  let where =
    if peek st = WHERE then begin
      advance st;
      let rec atoms () =
        let a = parse_where_atom st in
        if peek st = AND then begin
          advance st;
          a :: atoms ()
        end
        else [ a ]
      in
      atoms ()
    end
    else []
  in
  expect st RETURN "return";
  let return_var =
    match peek st with
    | VAR v -> advance st; v
    | _ -> err st "return variable"
  in
  if peek st <> EOF then err st "end of query";
  {
    Ast.lets = List.rev !lets;
    fors = List.rev !fors;
    where;
    return_var;
  }

let with_tokens src f =
  let tokens = Array.of_list (Lexer.tokenize src) in
  let st = { tokens; pos = 0 } in
  f st

let parse src =
  try with_tokens src parse_query with
  | Lexer.Lex_error { position; message } ->
    raise (Parse_error (Printf.sprintf "lexical error at %d: %s" position message))

let parse_path src =
  try
    with_tokens src (fun st ->
        let p = parse_path_expr st in
        if peek st <> EOF then err st "end of path";
        p)
  with Lexer.Lex_error { position; message } ->
    raise (Parse_error (Printf.sprintf "lexical error at %d: %s" position message))

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type literal =
  | Str of string
  | Num of float

type node_test =
  | Name_test of string
  | Text_test
  | Attribute_test of string
  | Node_test

type step = {
  axis : Rox_algebra.Axis.t;
  test : node_test;
  preds : predicate list;
}

and path = {
  start : start;
  steps : step list;
}

and start =
  | From_doc of string
  | From_var of string
  | From_self

and predicate =
  | Exists of path
  | Value_cmp of path * cmp * literal

type where_atom =
  | Join of path * path
  | Filter of path * cmp * literal

type query = {
  lets : (string * path) list;
  fors : (string * path) list;
  where : where_atom list;
  return_var : string;
}

let cmp_to_string = function
  | Eq -> "="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let literal_to_string = function
  | Str s -> Printf.sprintf "%S" s
  | Num f -> Printf.sprintf "%g" f

let test_to_string = function
  | Name_test n -> n
  | Text_test -> "text()"
  | Attribute_test n -> "@" ^ n
  | Node_test -> "node()"

let rec path_to_string p =
  let start =
    match p.start with
    | From_doc uri -> Printf.sprintf "doc(%S)" uri
    | From_var v -> "$" ^ v
    | From_self -> "."
  in
  start ^ String.concat "" (List.map step_to_string p.steps)

and step_to_string s =
  let open Rox_algebra in
  let sep =
    match (s.axis, s.test) with
    | Axis.Descendant, _ | Axis.Desc_or_self, _ -> "//"
    | Axis.Attribute, _ -> "/"
    | Axis.Child, _ -> "/"
    | axis, _ -> "/" ^ Axis.to_string axis ^ "::"
  in
  sep ^ test_to_string s.test
  ^ String.concat "" (List.map pred_to_string s.preds)

and pred_to_string = function
  | Exists p -> "[" ^ path_to_string p ^ "]"
  | Value_cmp (p, c, l) ->
    "[" ^ path_to_string p ^ " " ^ cmp_to_string c ^ " " ^ literal_to_string l ^ "]"

let pp_path ppf p = Format.pp_print_string ppf (path_to_string p)

let pp_query ppf q =
  let open Format in
  List.iter (fun (v, p) -> fprintf ppf "let $%s := %s@\n" v (path_to_string p)) q.lets;
  List.iteri
    (fun i (v, p) ->
      fprintf ppf "%s $%s in %s%s@\n"
        (if i = 0 then "for" else "   ")
        v (path_to_string p)
        (if i < List.length q.fors - 1 then "," else ""))
    q.fors;
  (match q.where with
   | [] -> ()
   | atoms ->
     let atom_to_string = function
       | Join (a, b) -> path_to_string a ^ " = " ^ path_to_string b
       | Filter (p, c, l) ->
         path_to_string p ^ " " ^ cmp_to_string c ^ " " ^ literal_to_string l
     in
     fprintf ppf "where %s@\n" (String.concat " and " (List.map atom_to_string atoms)));
  fprintf ppf "return $%s" q.return_var

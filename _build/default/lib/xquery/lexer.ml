type token =
  | LET | FOR | WHERE | RETURN | IN | AND
  | VAR of string
  | NAME of string
  | STRING of string
  | NUMBER of float
  | DOC
  | ASSIGN
  | COMMA | LPAREN | RPAREN | LBRACKET | RBRACKET
  | SLASH | DSLASH
  | AT | DOT
  | EQ | NE | LT | LE | GT | GE
  | TEXT_FUN
  | NODE_FUN
  | AXIS of string
  | EOF

exception Lex_error of { position : int; message : string }

let token_to_string = function
  | LET -> "let"
  | FOR -> "for"
  | WHERE -> "where"
  | RETURN -> "return"
  | IN -> "in"
  | AND -> "and"
  | VAR v -> "$" ^ v
  | NAME n -> n
  | STRING s -> Printf.sprintf "%S" s
  | NUMBER f -> Printf.sprintf "%g" f
  | DOC -> "doc"
  | ASSIGN -> ":="
  | COMMA -> ","
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SLASH -> "/"
  | DSLASH -> "//"
  | AT -> "@"
  | DOT -> "."
  | EQ -> "="
  | NE -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | TEXT_FUN -> "text()"
  | NODE_FUN -> "node()"
  | AXIS a -> a ^ "::"
  | EOF -> "<eof>"

let is_digit c = c >= '0' && c <= '9'

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c = is_name_start c || is_digit c || c = '-' || c = '.'

let tokenize src =
  let n = String.length src in
  let pos = ref 0 in
  let err message = raise (Lex_error { position = !pos; message }) in
  let peek k = if !pos + k < n then src.[!pos + k] else '\000' in
  let tokens = ref [] in
  let push t = tokens := t :: !tokens in
  let read_name () =
    let start = !pos in
    while !pos < n && is_name_char src.[!pos] do incr pos done;
    (* Allow a single ':' for prefixed names (fn:doc), but not '::'. *)
    if !pos < n && src.[!pos] = ':' && !pos + 1 < n && src.[!pos + 1] <> ':'
       && is_name_start src.[!pos + 1]
    then begin
      incr pos;
      while !pos < n && is_name_char src.[!pos] do incr pos done
    end;
    String.sub src start (!pos - start)
  in
  while !pos < n do
    let c = src.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '(' && peek 1 = ':' then begin
      (* XQuery comment (: ... :), non-nesting is enough here. *)
      pos := !pos + 2;
      let rec skip () =
        if !pos + 1 >= n then err "unterminated comment"
        else if src.[!pos] = ':' && src.[!pos + 1] = ')' then pos := !pos + 2
        else begin
          incr pos;
          skip ()
        end
      in
      skip ()
    end
    else if c = '$' then begin
      incr pos;
      if not (is_name_start (peek 0)) then err "expected variable name after $";
      push (VAR (read_name ()))
    end
    else if c = '"' || c = '\'' then begin
      let quote = c in
      incr pos;
      let buf = Buffer.create 16 in
      while !pos < n && src.[!pos] <> quote do
        Buffer.add_char buf src.[!pos];
        incr pos
      done;
      if !pos >= n then err "unterminated string literal";
      incr pos;
      push (STRING (Buffer.contents buf))
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && (is_digit src.[!pos] || src.[!pos] = '.') do incr pos done;
      match float_of_string_opt (String.sub src start (!pos - start)) with
      | Some f -> push (NUMBER f)
      | None -> err "malformed number"
    end
    else if is_name_start c then begin
      let name = read_name () in
      if !pos + 1 < n && src.[!pos] = ':' && src.[!pos + 1] = ':' then begin
        pos := !pos + 2;
        push (AXIS name)
      end
      else
        match name with
        | "let" -> push LET
        | "for" -> push FOR
        | "where" -> push WHERE
        | "return" -> push RETURN
        | "in" -> push IN
        | "and" -> push AND
        | "doc" | "fn:doc" -> push DOC
        | "text" when peek 0 = '(' && peek 1 = ')' ->
          pos := !pos + 2;
          push TEXT_FUN
        | "node" when peek 0 = '(' && peek 1 = ')' ->
          pos := !pos + 2;
          push NODE_FUN
        | name -> push (NAME name)
    end
    else begin
      (match c with
       | ':' when peek 1 = '=' ->
         incr pos;
         push ASSIGN
       | ',' -> push COMMA
       | '(' -> push LPAREN
       | ')' -> push RPAREN
       | '[' -> push LBRACKET
       | ']' -> push RBRACKET
       | '/' when peek 1 = '/' ->
         incr pos;
         push DSLASH
       | '/' -> push SLASH
       | '@' -> push AT
       | '.' -> push DOT
       | '=' -> push EQ
       | '!' when peek 1 = '=' ->
         incr pos;
         push NE
       | '<' when peek 1 = '=' ->
         incr pos;
         push LE
       | '<' -> push LT
       | '>' when peek 1 = '=' ->
         incr pos;
         push GE
       | '>' -> push GT
       | c -> err (Printf.sprintf "unexpected character %C" c));
      incr pos
    end
  done;
  List.rev (EOF :: !tokens)

open Rox_storage
open Rox_shred
open Rox_algebra

exception Unsupported of string

type node = int * int (* doc id, pre *)

let doc_of engine id = (Engine.get engine id).Engine.doc

let node_kind engine (d, p) = Doc.kind (doc_of engine d) p
let node_name engine (d, p) = Doc.name (doc_of engine d) p
let node_value engine (d, p) = Doc.value (doc_of engine d) p

let test_match engine n (test : Ast.node_test) =
  match test with
  | Ast.Name_test name ->
    (match node_kind engine n with
     | Nodekind.Elem -> String.equal (node_name engine n) name
     | _ -> false)
  | Ast.Text_test -> node_kind engine n = Nodekind.Text
  | Ast.Attribute_test name ->
    (match node_kind engine n with
     | Nodekind.Attr -> String.equal (node_name engine n) name
     | _ -> false)
  | Ast.Node_test -> true

let axis_nodes engine ((d, p) : node) (axis : Axis.t) : node list =
  let doc = doc_of engine d in
  let wrap pres = List.map (fun pre -> (d, pre)) pres in
  let subtree_list ~include_self =
    let first, last = Navigation.subtree_bounds doc p in
    let range = List.init (max 0 (last - first + 1)) (fun i -> first + i) in
    if include_self then p :: range else range
  in
  match axis with
  | Axis.Child -> wrap (Array.to_list (Navigation.children doc p))
  | Axis.Attribute -> wrap (Array.to_list (Navigation.attributes doc p))
  | Axis.Descendant ->
    (* Attributes live inside subtree ranges; the descendant axis includes
       them deliberately (//@id reaches attributes of descendants). *)
    wrap (subtree_list ~include_self:false)
  | Axis.Desc_or_self -> wrap (subtree_list ~include_self:true)
  | Axis.Self -> [ (d, p) ]
  | Axis.Parent ->
    let parent = Doc.parent doc p in
    if parent >= 0 then [ (d, parent) ] else []
  | Axis.Ancestor -> wrap (Array.to_list (Navigation.ancestors doc p))
  | Axis.Anc_or_self -> (d, p) :: wrap (Array.to_list (Navigation.ancestors doc p))
  | Axis.Following ->
    let start = Navigation.following_first doc p in
    wrap (List.init (max 0 (Doc.node_count doc - start)) (fun i -> start + i))
  | Axis.Preceding ->
    let out = ref [] in
    for q = p - 1 downto 1 do
      if q + Doc.size doc q < p then out := q :: !out
    done;
    wrap !out
  | Axis.Following_sibling ->
    let rec collect cur acc =
      match Navigation.next_sibling doc cur with
      | Some s -> collect s (s :: acc)
      | None -> List.rev acc
    in
    wrap (collect p [])
  | Axis.Preceding_sibling ->
    let rec collect cur acc =
      match Navigation.prev_sibling doc cur with
      | Some s -> collect s (s :: acc)
      | None -> acc
    in
    wrap (collect p [])

let dedup_sort nodes = List.sort_uniq compare nodes

let literal_string = function
  | Ast.Str s -> s
  | Ast.Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%g" f

(* Candidate comparison values of a result node: its own value for text /
   attribute nodes, the direct text children for elements (consistent with
   the compiler's implicit text() step). *)
let comparison_values engine ((d, p) as n) =
  match node_kind engine n with
  | Nodekind.Text | Nodekind.Attr -> [ node_value engine n ]
  | Nodekind.Elem ->
    let doc = doc_of engine d in
    Navigation.children doc p
    |> Array.to_list
    |> List.filter_map (fun c ->
           match Doc.kind doc c with
           | Nodekind.Text -> Some (Doc.value doc c)
           | _ -> None)
  | Nodekind.Doc | Nodekind.Comment | Nodekind.Pi -> []

let cmp_holds cmp lit value =
  match cmp with
  | Ast.Eq -> String.equal value (literal_string lit)
  | Ast.Ne -> not (String.equal value (literal_string lit))
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
    (match (float_of_string_opt value, lit) with
     | Some v, Ast.Num f ->
       (match cmp with
        | Ast.Lt -> v < f
        | Ast.Le -> v <= f
        | Ast.Gt -> v > f
        | Ast.Ge -> v >= f
        | Ast.Eq | Ast.Ne -> assert false)
     | _ -> false)

let rec eval_path_vars engine ~vars ~context (path : Ast.path) =
  let start =
    match path.Ast.start with
    | Ast.From_doc uri ->
      (match Engine.find_uri engine uri with
       | Some r -> [ (Rox_shred.Doc.id r.Engine.doc, 0) ]
       | None -> raise (Unsupported (Printf.sprintf "document %S not loaded" uri)))
    | Ast.From_var v ->
      (match List.assoc_opt v vars with
       | Some nodes -> nodes
       | None -> raise (Unsupported (Printf.sprintf "unbound variable $%s" v)))
    | Ast.From_self -> context
  in
  List.fold_left
    (fun nodes (step : Ast.step) ->
      nodes
      |> List.concat_map (fun n ->
             axis_nodes engine n step.Ast.axis
             |> List.filter (fun m -> test_match engine m step.Ast.test)
             |> List.filter (fun m -> holds_predicates engine ~vars m step.Ast.preds))
      |> dedup_sort)
    (dedup_sort start) path.Ast.steps

and holds_predicates engine ~vars n preds =
  List.for_all
    (fun pred ->
      match (pred : Ast.predicate) with
      | Ast.Exists p -> eval_path_vars engine ~vars ~context:[ n ] p <> []
      | Ast.Value_cmp (p, cmp, lit) ->
        eval_path_vars engine ~vars ~context:[ n ] p
        |> List.exists (fun m ->
               List.exists (cmp_holds cmp lit) (comparison_values engine m)))
    preds

let eval_path engine ~context path = eval_path_vars engine ~vars:[] ~context path

let where_holds engine ~vars atom =
  match (atom : Ast.where_atom) with
  | Ast.Join (p1, p2) ->
    let n1 = eval_path_vars engine ~vars ~context:[] p1 in
    let n2 = eval_path_vars engine ~vars ~context:[] p2 in
    let values nodes =
      List.concat_map (comparison_values engine) nodes |> List.sort_uniq compare
    in
    let v1 = values n1 and v2 = values n2 in
    List.exists (fun v -> List.mem v v2) v1
  | Ast.Filter (p, cmp, lit) ->
    eval_path_vars engine ~vars ~context:[] p
    |> List.exists (fun m -> List.exists (cmp_holds cmp lit) (comparison_values engine m))

let eval_query engine (q : Ast.query) =
  let vars =
    List.fold_left
      (fun vars (v, path) -> (v, eval_path_vars engine ~vars ~context:[] path) :: vars)
      [] q.Ast.lets
  in
  (* Enumerate for-variable bindings depth-first; collect satisfying binding
     tuples. *)
  let tuples = ref [] in
  let rec enumerate vars bound = function
    | [] ->
      if List.for_all (where_holds engine ~vars) q.Ast.where then
        tuples := List.rev bound :: !tuples
    | (v, path) :: rest ->
      let nodes = eval_path_vars engine ~vars ~context:[] path in
      List.iter (fun n -> enumerate ((v, [ n ]) :: vars) ((v, n) :: bound) rest) nodes
  in
  enumerate vars [] q.Ast.fors;
  let distinct = List.sort_uniq compare (List.map (List.map snd) !tuples) in
  let return_index =
    let rec find i = function
      | [] -> raise (Unsupported (Printf.sprintf "unbound return variable $%s" q.Ast.return_var))
      | (v, _) :: rest -> if v = q.Ast.return_var then i else find (i + 1) rest
    in
    find 0 q.Ast.fors
  in
  List.map (fun tuple -> List.nth tuple return_index) distinct

let eval_string engine src = eval_query engine (Parser.parse src)

(** Naive reference evaluator.

    Evaluates the FLWOR fragment directly over the shredded documents by
    per-node navigation — nested loops, no join graph, no indices, no
    optimizer. Deliberately an *independent* implementation of the
    semantics: the test suites compare ROX and every enumerated plan
    against its output. Exponential in the worst case; use on small
    documents only. *)

exception Unsupported of string

val eval_path :
  Rox_storage.Engine.t -> context:(int * int) list -> Ast.path -> (int * int) list
(** Nodes as (doc id, pre), document order per document, duplicate-free.
    [context] seeds [From_self] paths; [From_doc]/[From_var]-started paths
    are evaluated against the engine (variables must be in scope — use
    {!eval_query} for full queries). *)

val eval_query : Rox_storage.Engine.t -> Ast.query -> (int * int) list
(** The query answer: return-variable nodes in XQuery order (sorted by the
    for-variable binding tuples, duplicates across distinct tuples kept). *)

val eval_string : Rox_storage.Engine.t -> string -> (int * int) list

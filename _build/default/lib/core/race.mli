(** Physical operator racing.

    "The current ROX prototype, after deciding to execute an edge, tries
    all applicable physical operators on a sample to see which one is
    fastest" (Section 6). Before a full edge execution, each applicable
    zero-investment variant — the two step directions, or the two
    index-probe directions of an equi-join — is run with a τ-sample and
    its measured work extrapolated to the full input; the cheapest variant
    performs the real execution. The probing cost is charged to the
    sampling bucket. *)

type choice =
  | Step_dir of Rox_joingraph.Exec.direction
  | Equi_dir of Rox_joingraph.Exec.direction
  | Default  (** no variant could be sampled; let the runtime decide *)

val choose : State.t -> Rox_joingraph.Edge.t -> choice

lib/core/optimizer.mli: Rox_algebra Rox_joingraph Rox_storage Rox_xquery State Trace

lib/core/state.ml: Array Cost Edge Exec Graph List Option Rox_algebra Rox_joingraph Rox_storage Rox_util Runtime Sampling Trace Xoshiro

lib/core/state.mli: Edge Graph Rox_algebra Rox_joingraph Rox_storage Rox_util Runtime Trace

lib/core/chain.mli: Rox_joingraph State

lib/core/estimate.mli: Rox_joingraph State

lib/core/optimizer.ml: Array Chain Edge Estimate Exec Graph List Race Relation Rox_algebra Rox_joingraph Rox_xquery Runtime State Trace Vertex

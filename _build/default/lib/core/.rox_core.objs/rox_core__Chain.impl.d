lib/core/chain.ml: Edge Exec Graph List Option Printf Rox_algebra Rox_joingraph Runtime State Trace Vertex

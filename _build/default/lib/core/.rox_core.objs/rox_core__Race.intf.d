lib/core/race.mli: Rox_joingraph State

lib/core/trace.ml: List

lib/core/estimate.ml: Array Edge Exec Hashtbl List Option Rox_algebra Rox_joingraph Runtime State

lib/core/trace.mli:

lib/core/race.ml: Array Cost Cutoff Edge Exec Graph List Option Rox_algebra Rox_joingraph Runtime State Vertex

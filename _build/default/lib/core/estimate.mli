(** EstimateCard (Section 3, Phase 1): weight an edge by sampled execution.

    [EstimateCard(e) = card(v)/|S(v)| × est] where v is the endpoint with
    the smaller cardinality, S(v) its materialized sample, and est the
    cut-off-extrapolated pair cardinality of executing e's operator with
    S(v) against the other endpoint's table (or its index domain while
    unmaterialized — the zero-investment inner input). *)

val edge_weight : State.t -> Rox_joingraph.Edge.t -> float option
(** [None] when neither endpoint has a sample yet ("an edge whose both
    vertices do not have a materialized sample will stay unweighted"). All
    work is charged to the sampling bucket. *)

val reweigh_incident : State.t -> int list -> unit
(** Re-sample the weights of every un-executed edge incident to the given
    vertices (Algorithm 1, lines 18–19) — the re-sampling that lets ROX
    "detect arbitrary correlations between edges". *)

(** Fixed-plan executor.

    Executes a Join Graph in a *given* edge order through the very same
    {!Rox_joingraph.Runtime} machinery as ROX — same operators, same cost
    accounting — but with no sampling and no adaptation. This is the
    workhorse behind every non-ROX plan class of Figures 5–7 (smallest,
    largest, classical, and the canonical step placements of the ROX join
    order). *)

type run = {
  relation : Rox_joingraph.Relation.t;
  edge_rows : (int * int) list;
      (** (edge id, component rows after execution), in execution order. *)
  counter : Rox_algebra.Cost.counter;
  cumulative_rows : int;  (** Σ component rows over all executed edges. *)
  join_rows : int;
      (** Σ component rows over equi-join edges only — the "cumulative
          (intermediate) join result cardinality" of Figure 5. *)
}

exception Plan_error of string
(** The order misses an edge or repeats one. *)

val execute :
  ?max_rows:int ->
  Rox_storage.Engine.t ->
  Rox_joingraph.Graph.t ->
  Rox_joingraph.Edge.t list ->
  run
(** The order must cover every non-trivial edge exactly once (trivial
    root-descendant edges may be included; they are skipped).
    @raise Plan_error on malformed orders.
    @raise Rox_joingraph.Runtime.Blowup when materialization explodes. *)

val answer :
  ?max_rows:int ->
  Rox_xquery.Compile.compiled ->
  Rox_joingraph.Edge.t list ->
  int array * run
(** Execute and apply the query tail. *)

open Rox_shred
open Rox_storage

let n_buckets = 16

type histogram = {
  h_min : float;
  h_max : float;
  buckets : int array;
  total : int;          (* numeric text children *)
  distinct : int;       (* distinct numeric values (approx: distinct ids) *)
}

type t = {
  elem_counts : (string, int) Hashtbl.t;
  child_pairs : (string * string, int) Hashtbl.t;
  desc_pairs : (string * string, int) Hashtbl.t;
  text_children : (string, int) Hashtbl.t;
  attr_counts : (string * string, int) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
  total_elements : int;
  total_texts : int;
}

let bump tbl key n =
  Hashtbl.replace tbl key (n + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let build (r : Engine.docref) =
  let doc = r.Engine.doc in
  let elem_counts = Hashtbl.create 64 in
  let child_pairs = Hashtbl.create 256 in
  let desc_pairs = Hashtbl.create 256 in
  let text_children = Hashtbl.create 64 in
  let attr_counts = Hashtbl.create 64 in
  let numeric_acc : (string, float list ref * (int, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 64
  in
  let total_elements = ref 0 in
  let total_texts = ref 0 in
  (* One pre-order walk with an ancestor-name stack; each ancestor name is
     counted at most once per node (set semantics for the pair counts). *)
  let stack = ref [] in (* (pre_end, name) innermost first *)
  for pre = 1 to Doc.node_count doc - 1 do
    (* Pop ancestors whose subtree ended. *)
    let rec pop () =
      match !stack with
      | (pre_end, _) :: rest when pre > pre_end ->
        stack := rest;
        pop ()
      | _ -> ()
    in
    pop ();
    let parent_name =
      let parent = Doc.parent doc pre in
      if parent <= 0 then "#root" else Doc.name doc parent
    in
    (match Doc.kind doc pre with
     | Nodekind.Elem ->
       let name = Doc.name doc pre in
       incr total_elements;
       bump elem_counts name 1;
       bump child_pairs (parent_name, name) 1;
       let seen = Hashtbl.create 8 in
       List.iter
         (fun (_, anc) ->
           if not (Hashtbl.mem seen anc) then begin
             Hashtbl.replace seen anc ();
             bump desc_pairs (anc, name) 1
           end)
         !stack;
       stack := (pre + Doc.size doc pre, name) :: !stack
     | Nodekind.Text ->
       incr total_texts;
       bump text_children parent_name 1;
       (match float_of_string_opt (Doc.value doc pre) with
        | Some v ->
          let values, distinct =
            match Hashtbl.find_opt numeric_acc parent_name with
            | Some pair -> pair
            | None ->
              let pair = (ref [], Hashtbl.create 16) in
              Hashtbl.replace numeric_acc parent_name pair;
              pair
          in
          values := v :: !values;
          Hashtbl.replace distinct (Doc.value_id doc pre) ()
        | None -> ())
     | Nodekind.Attr -> bump attr_counts (parent_name, Doc.name doc pre) 1
     | Nodekind.Doc | Nodekind.Comment | Nodekind.Pi -> ())
  done;
  let histograms = Hashtbl.create (Hashtbl.length numeric_acc) in
  Hashtbl.iter
    (fun name (values, distinct) ->
      let values = Array.of_list !values in
      let h_min = Array.fold_left min values.(0) values in
      let h_max = Array.fold_left max values.(0) values in
      let buckets = Array.make n_buckets 0 in
      let width = (h_max -. h_min) /. float_of_int n_buckets in
      Array.iter
        (fun v ->
          let b =
            if width <= 0.0 then 0
            else min (n_buckets - 1) (int_of_float ((v -. h_min) /. width))
          in
          buckets.(b) <- buckets.(b) + 1)
        values;
      Hashtbl.replace histograms name
        { h_min; h_max; buckets; total = Array.length values;
          distinct = Hashtbl.length distinct })
    numeric_acc;
  {
    elem_counts;
    child_pairs;
    desc_pairs;
    text_children;
    attr_counts;
    histograms;
    total_elements = !total_elements;
    total_texts = !total_texts;
  }

let get tbl key = Option.value ~default:0 (Hashtbl.find_opt tbl key)
let element_count t name = get t.elem_counts name
let child_pair_count t ~parent ~child = get t.child_pairs (parent, child)
let desc_pair_count t ~anc ~desc = get t.desc_pairs (anc, desc)
let text_child_count t ~parent = get t.text_children parent
let attr_count t ~elem ~attr = get t.attr_counts (elem, attr)

(* Histogram mass satisfying the predicate, assuming uniform distribution
   within a bucket and uniform frequency over distinct values for
   equality. *)
let selectivity t ~elem pred =
  match Hashtbl.find_opt t.histograms elem with
  | None ->
    (* No numeric data: equality may still match string values — fall back
       to a guessy but bounded default. *)
    (match pred with Rox_algebra.Selection.Eq _ -> 0.1 | _ -> 0.0)
  | Some h ->
    let range_mass lo hi =
      (* Inclusive [lo, hi] over the histogram. *)
      let lo = max lo h.h_min and hi = min hi h.h_max in
      if hi < lo || h.total = 0 then 0.0
      else begin
        let width = (h.h_max -. h.h_min) /. float_of_int n_buckets in
        if width <= 0.0 then if lo <= h.h_min && h.h_min <= hi then 1.0 else 0.0
        else begin
          let mass = ref 0.0 in
          for b = 0 to n_buckets - 1 do
            let b_lo = h.h_min +. (float_of_int b *. width) in
            let b_hi = b_lo +. width in
            let overlap = max 0.0 (min hi b_hi -. max lo b_lo) in
            if overlap > 0.0 then
              mass := !mass +. (float_of_int h.buckets.(b) *. overlap /. width)
          done;
          !mass /. float_of_int h.total
        end
      end
    in
    (match pred with
     | Rox_algebra.Selection.Eq _ -> 1.0 /. float_of_int (max 1 h.distinct)
     | Rox_algebra.Selection.Lt f -> range_mass neg_infinity (f -. epsilon_float)
     | Rox_algebra.Selection.Le f -> range_mass neg_infinity f
     | Rox_algebra.Selection.Gt f -> range_mass (f +. epsilon_float) infinity
     | Rox_algebra.Selection.Ge f -> range_mass f infinity
     | Rox_algebra.Selection.Between (lo, hi) -> range_mass lo hi)

let vertex_name = function
  | Rox_joingraph.Vertex.Root -> "#root"
  | Rox_joingraph.Vertex.Element q -> q
  | Rox_joingraph.Vertex.Text _ -> "#text"
  | Rox_joingraph.Vertex.Attr (q, _) -> "@" ^ q

let estimate_step t ~context_card ~context ~axis ~target =
  let open Rox_joingraph in
  let cname = vertex_name context in
  (* Fan-out of the forward step per context node, and the total target
     population for predicate scaling. *)
  let pair_total ~anc_name ~target' =
    match target' with
    | Vertex.Element q ->
      (match axis with
       | Rox_algebra.Axis.Child -> float_of_int (child_pair_count t ~parent:anc_name ~child:q)
       | _ -> float_of_int (desc_pair_count t ~anc:anc_name ~desc:q))
    | Vertex.Text _ ->
      (* Text pairs are only tracked per direct parent; approximate
         descendant text by scaling with the subtree element ratio. *)
      (match axis with
       | Rox_algebra.Axis.Child -> float_of_int (text_child_count t ~parent:cname)
       | _ ->
         let elems_below =
           Hashtbl.fold
             (fun (anc, _) n acc -> if anc = cname then acc + n else acc)
             t.desc_pairs 0
         in
         float_of_int (text_child_count t ~parent:cname)
         +. (float_of_int elems_below
            *. float_of_int t.total_texts
            /. float_of_int (max 1 t.total_elements)))
    | Vertex.Attr (q, _) -> float_of_int (attr_count t ~elem:cname ~attr:q)
    | Vertex.Root -> 0.0
  in
  let context_population =
    match context with
    | Vertex.Root -> 1.0
    | Vertex.Element q -> float_of_int (max 1 (element_count t q))
    | Vertex.Text _ -> float_of_int (max 1 t.total_texts)
    | Vertex.Attr (q, _) ->
      float_of_int
        (max 1
           (Hashtbl.fold
              (fun (_, attr) n acc -> if attr = q then acc + n else acc)
              t.attr_counts 0))
  in
  let forward_pairs =
    match (context, axis) with
    | Vertex.Root, (Rox_algebra.Axis.Descendant | Rox_algebra.Axis.Desc_or_self) ->
      (* Everything descends from the root. *)
      (match target with
       | Vertex.Element q -> float_of_int (element_count t q)
       | Vertex.Text _ -> float_of_int t.total_texts
       | Vertex.Attr (q, _) ->
         float_of_int
           (Hashtbl.fold
              (fun (_, attr) n acc -> if attr = q then acc + n else acc)
              t.attr_counts 0)
       | Vertex.Root -> 1.0)
    | _ -> pair_total ~anc_name:cname ~target':target
  in
  let pred_selectivity =
    match target with
    | Vertex.Text (Some pred) -> selectivity t ~elem:cname pred
    | Vertex.Attr (_, Some _) -> 0.1
    | _ -> 1.0
  in
  (* Independence: the context estimate covers a fraction of the context
     population; pairs scale linearly with it. *)
  forward_pairs *. (context_card /. context_population) *. pred_selectivity

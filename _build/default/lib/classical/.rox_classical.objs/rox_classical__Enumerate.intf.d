lib/classical/enumerate.mli: Edge Graph Rox_joingraph

lib/classical/executor.ml: Cost Edge Graph List Printf Relation Rox_algebra Rox_joingraph Rox_xquery Runtime

lib/classical/enumerate.ml: Array Edge Graph Hashtbl List Option Printf Rox_joingraph Runtime String Vertex

lib/classical/classical_opt.mli: Edge Enumerate Graph Rox_joingraph Rox_storage

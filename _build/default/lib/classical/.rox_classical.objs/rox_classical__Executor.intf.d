lib/classical/executor.mli: Rox_algebra Rox_joingraph Rox_storage Rox_xquery

lib/classical/synopsis.ml: Array Doc Engine Hashtbl List Nodekind Option Rox_algebra Rox_joingraph Rox_shred Rox_storage Vertex

lib/classical/midquery.ml: Array Cost Edge Engine Exec Graph Hashtbl List Relation Rox_algebra Rox_joingraph Rox_storage Rox_xquery Runtime Synopsis Vertex

lib/classical/classical_opt.ml: Array Edge Enumerate Exec Graph Hashtbl List Rox_joingraph Runtime Vertex

lib/classical/synopsis.mli: Rox_algebra Rox_joingraph Rox_storage

lib/classical/midquery.mli: Edge Graph Relation Rox_algebra Rox_joingraph Rox_storage Rox_xquery

open Rox_algebra
open Rox_joingraph

type run = {
  relation : Relation.t;
  edge_rows : (int * int) list;
  counter : Cost.counter;
  cumulative_rows : int;
  join_rows : int;
}

exception Plan_error of string

let execute ?max_rows engine graph order =
  let runtime = Runtime.create ?max_rows engine graph in
  let counter = Cost.new_counter () in
  let meter = Cost.execution_meter counter in
  let rows = ref [] in
  List.iter
    (fun (e : Edge.t) ->
      if not (Runtime.executed runtime e) then begin
        let info = Runtime.execute_edge ~meter runtime e in
        rows := (e.Edge.id, info.Runtime.rel_rows) :: !rows
      end
      else if not (Runtime.is_trivial_edge graph e || Runtime.implied runtime e) then
        raise (Plan_error (Printf.sprintf "edge %d appears twice in the plan" e.Edge.id)))
    order;
  if not (Runtime.all_executed runtime) then
    raise (Plan_error "plan does not cover all edges");
  let relation = Runtime.final_relation ~meter runtime in
  let edge_rows = List.rev !rows in
  let is_join id = match (Graph.edge graph id).Edge.op with Edge.Equijoin -> true | Edge.Step _ -> false in
  {
    relation;
    edge_rows;
    counter;
    cumulative_rows = List.fold_left (fun acc (_, r) -> acc + r) 0 edge_rows;
    join_rows =
      List.fold_left (fun acc (id, r) -> if is_join id then acc + r else acc) 0 edge_rows;
  }

let answer ?max_rows (compiled : Rox_xquery.Compile.compiled) order =
  let run =
    execute ?max_rows compiled.Rox_xquery.Compile.engine compiled.Rox_xquery.Compile.graph
      order
  in
  let nodes =
    Rox_xquery.Tail.apply
      ~meter:(Cost.execution_meter run.counter)
      compiled.Rox_xquery.Compile.tail run.relation
  in
  (nodes, run)

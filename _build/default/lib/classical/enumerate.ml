open Rox_joingraph

type placement = SJ | JS | S_J

let placements = [ SJ; JS; S_J ]

let placement_name = function
  | SJ -> "SJ"
  | JS -> "JS"
  | S_J -> "S_J"

type join_order =
  | Linear of int list
  | Bushy of (int * int) * (int * int)

let order_name = function
  | Linear (a :: b :: rest) ->
    Printf.sprintf "(%d-%d)%s" (a + 1) (b + 1)
      (String.concat "" (List.map (fun d -> Printf.sprintf "-%d" (d + 1)) rest))
  | Linear _ -> invalid_arg "Enumerate.order_name: degenerate linear order"
  | Bushy ((a, b), (c, d)) -> Printf.sprintf "(%d-%d)-(%d-%d)" (a + 1) (b + 1) (c + 1) (d + 1)

let normalize = function
  | Linear (a :: b :: rest) -> Linear (min a b :: max a b :: rest)
  | Linear l -> Linear l
  | Bushy ((a, b), (c, d)) -> Bushy ((min a b, max a b), (min c d, max c d))

let equal_order o1 o2 = normalize o1 = normalize o2

let all_join_orders ~ndocs =
  if ndocs < 2 then invalid_arg "Enumerate.all_join_orders: need at least 2 documents";
  let docs = List.init ndocs (fun i -> i) in
  let pairs =
    List.concat_map (fun a -> List.filter_map (fun b -> if b > a then Some (a, b) else None) docs) docs
  in
  let rec permutations = function
    | [] -> [ [] ]
    | xs ->
      List.concat_map
        (fun x -> List.map (fun p -> x :: p) (permutations (List.filter (( <> ) x) xs)))
        xs
  in
  let linear =
    List.concat_map
      (fun (a, b) ->
        let rest = List.filter (fun d -> d <> a && d <> b) docs in
        List.map (fun perm -> Linear (a :: b :: perm)) (permutations rest))
      pairs
  in
  let bushy =
    if ndocs <> 4 then []
    else
      List.map
        (fun (a, b) ->
          match List.filter (fun d -> d <> a && d <> b) docs with
          | [ c; d ] -> Bushy ((a, b), (c, d))
          | _ -> assert false)
        pairs
  in
  linear @ bushy

type slot = {
  doc_pos : int;
  step_edges : Edge.t list;
  join_vertex : int;
}

type template = { slots : slot array }

let analyze graph =
  (* Group non-root vertices by document and detect a linear step chain per
     document ending in the vertex that carries the equi-joins. *)
  let edges = Graph.edges graph in
  let join_vertices = Hashtbl.create 8 in
  Array.iter
    (fun (e : Edge.t) ->
      match e.Edge.op with
      | Edge.Equijoin ->
        Hashtbl.replace join_vertices e.Edge.v1 ();
        Hashtbl.replace join_vertices e.Edge.v2 ()
      | Edge.Step _ -> ())
    edges;
  let doc_ids =
    Array.to_list (Graph.vertices graph)
    |> List.map (fun (v : Vertex.t) -> v.Vertex.doc_id)
    |> List.sort_uniq compare
  in
  let slot_of pos doc_id =
    (* Non-trivial step edges of this document, chained root-outward. *)
    let doc_steps =
      Array.to_list edges
      |> List.filter (fun (e : Edge.t) ->
             (not (Runtime.is_trivial_edge graph e))
             && (match e.Edge.op with Edge.Step _ -> true | Edge.Equijoin -> false)
             && (Graph.vertex graph e.Edge.v1).Vertex.doc_id = doc_id)
    in
    let joins_here =
      Hashtbl.fold
        (fun v () acc ->
          if (Graph.vertex graph v).Vertex.doc_id = doc_id then v :: acc else acc)
        join_vertices []
    in
    match joins_here with
    | [ join_vertex ] ->
      (* Order steps by walking from the join vertex back towards the root:
         a linear chain means each vertex is the target of exactly one
         step. *)
      let rec chain v acc =
        match List.find_opt (fun (e : Edge.t) -> e.Edge.v2 = v) doc_steps with
        | Some e -> chain e.Edge.v1 (e :: acc)
        | None -> acc
      in
      let ordered = chain join_vertex [] in
      if List.length ordered = List.length doc_steps then
        Some { doc_pos = pos; step_edges = ordered; join_vertex }
      else None
    | _ -> None
  in
  let slots = List.mapi slot_of doc_ids in
  if List.for_all Option.is_some slots && List.length slots >= 2 then
    Some { slots = Array.of_list (List.map Option.get slots) }
  else None

let connecting_edge graph template ~joined ~incoming =
  (* Any equi-join edge between the incoming document's join vertex and an
     already-joined one; the equi-closure guarantees one exists. *)
  let vin = template.slots.(incoming).join_vertex in
  let rec find = function
    | [] -> invalid_arg "Enumerate.plan_edges: no connecting equi-join edge"
    | d :: rest ->
      (match Graph.find_edge graph template.slots.(d).join_vertex vin with
       | Some e -> e
       | None -> find rest)
  in
  find joined

(* A plan atom: one join edge plus the documents it introduces. *)
type plan_atom = Join of Edge.t * int list

let atoms graph template = function
  | Linear (a :: b :: rest) ->
    let j1 = connecting_edge graph template ~joined:[ a ] ~incoming:b in
    let first = [ Join (j1, [ a; b ]) ] in
    let _, joins =
      List.fold_left
        (fun (joined, acc) d ->
          let e = connecting_edge graph template ~joined ~incoming:d in
          (d :: joined, Join (e, [ d ]) :: acc))
        ([ b; a ], []) rest
    in
    first @ List.rev joins
  | Linear _ -> invalid_arg "Enumerate.plan_edges: degenerate linear order"
  | Bushy ((a, b), (c, d)) ->
    let j1 = connecting_edge graph template ~joined:[ a ] ~incoming:b in
    let j2 = connecting_edge graph template ~joined:[ c ] ~incoming:d in
    let j3 = connecting_edge graph template ~joined:[ a; b ] ~incoming:c in
    [ Join (j1, [ a; b ]); Join (j2, [ c; d ]); Join (j3, []) ]

let plan_edges graph template ~order ~placement =
  let joins = atoms graph template order in
  let appearance = List.concat_map (function Join (_, docs) -> docs) joins in
  let steps_of d = template.slots.(d).step_edges in
  match placement with
  | SJ ->
    List.concat_map steps_of appearance
    @ List.map (function Join (e, _) -> e) joins
  | JS ->
    (match appearance with
     | first :: rest ->
       steps_of first
       @ List.map (function Join (e, _) -> e) joins
       @ List.concat_map steps_of rest
     | [] -> invalid_arg "Enumerate.plan_edges: no documents")
  | S_J ->
    List.concat_map
      (function
        | Join (e, docs) ->
          (* The first document of a fresh component steps before its join;
             the others right after. *)
          (match docs with
           | d1 :: others when List.length docs >= 2 ->
             steps_of d1 @ [ e ] @ List.concat_map steps_of others
           | docs -> [ e ] @ List.concat_map steps_of docs))
      joins

let canonical_plans graph template =
  let ndocs = Array.length template.slots in
  List.concat_map
    (fun order ->
      List.map
        (fun placement -> (order, placement, plan_edges graph template ~order ~placement))
        placements)
    (all_join_orders ~ndocs)

(** Path synopsis: static cardinality estimation for XML steps.

    The related work the paper positions against ([1, 8, 13, 14, 28, 30,
    31]) estimates intermediate cardinalities from per-document structural
    summaries built at load time. This synopsis records, exactly:

    - element counts per qualified name;
    - parent/child pair counts (elements, text children, attributes);
    - ancestor/descendant pair counts per name pair (a DataGuide-style
      path summary, collected in one shredding walk);
    - an equi-width histogram of the numeric text values under each
      element name, for range-selectivity estimation.

    Estimates for *steps within one document* derive from these counts
    under the attribute-value-independence heuristic — precisely the
    assumption ROX's run-time re-sampling does away with, and the reason
    the synopsis-driven optimizer mis-plans on correlated data
    (Section 5: estimation techniques "are based on the attribute value
    independence heuristic"). Cross-document equi-join selectivities are
    *not* estimable from per-document synopses at all; callers fall back
    to heuristics. *)

type t

val build : Rox_storage.Engine.docref -> t

val element_count : t -> string -> int
val child_pair_count : t -> parent:string -> child:string -> int
val desc_pair_count : t -> anc:string -> desc:string -> int
val text_child_count : t -> parent:string -> int
val attr_count : t -> elem:string -> attr:string -> int

val estimate_step :
  t ->
  context_card:float ->
  context :Rox_joingraph.Vertex.annot ->
  axis:Rox_algebra.Axis.t ->
  target:Rox_joingraph.Vertex.annot ->
  float
(** Expected result cardinality of one step from an estimated context set,
    under independence: the per-context fan-out ratio times the context
    cardinality, with the target's value-predicate selectivity folded in.
    Supported axes: child / attribute / descendant and their reverses;
    other axes fall back to the descendant ratio. *)

val selectivity : t -> elem:string -> Rox_algebra.Selection.t -> float
(** Fraction of the element name's text children satisfying the
    predicate, from the histogram (equality uses a distinct-value
    uniformity assumption). In [0, 1]. *)

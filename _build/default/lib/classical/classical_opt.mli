(** The "classical" compile-time optimizer of Section 4.2.

    A static optimizer "equipped with an accurate cardinality estimation
    module": it correctly estimates the result size of any operator
    executed in the context of a *single* document (we grant it exact
    counts, computed off the books), but cannot estimate operations joining
    two different documents and falls back on a smallest-input-first
    heuristic, producing a linear join order from the two smallest
    author-text sets up to the largest. *)

open Rox_joingraph

val input_size : Rox_storage.Engine.t -> Graph.t -> Enumerate.slot -> int
(** Exact cardinality of the document's join input (its step chain run to
    the join vertex) — the single-document estimate the classical
    optimizer is granted. Uncharged: planning is free. *)

val join_order :
  Rox_storage.Engine.t -> Graph.t -> Enumerate.template -> Enumerate.join_order
(** Smallest-input-first linear order. *)

val static_order : Rox_storage.Engine.t -> Graph.t -> Edge.t list
(** Generic static plan for arbitrary Join Graphs (used by the XMark
    demonstrations): greedy connected expansion by statically estimated
    edge output — exact counts for single-document operators over *base*
    tables (no feedback from intermediate results), smallest-input-first
    for cross-document joins. This is precisely the optimizer that cannot
    see correlations. *)

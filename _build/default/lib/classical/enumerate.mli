(** Plan-space enumeration for the k-document equi-join template (Section
    4.2).

    The DBLP query joins the author text sets of k documents; its plan
    space factors into (a) the equi-join order — linear or bushy — and (b)
    the placement of the per-document XPath step chains among the joins.
    For k = 4 there are the paper's 18 join orders, and we reproduce its 3
    canonical placements:

    - [SJ] — all steps first (in join order), then the joins;
    - [JS] — one step, all joins over otherwise unrestricted text sets,
      remaining steps last;
    - [S_J] — each document's steps right after the join that introduces
      that document.  *)

open Rox_joingraph

type placement = SJ | JS | S_J

val placements : placement list
val placement_name : placement -> string

type join_order =
  | Linear of int list
      (** Document slots in join order: [[a;b;c;d]] = ((a⋈b)⋈c)⋈d. *)
  | Bushy of (int * int) * (int * int)
      (** (a⋈b), then (c⋈d), then the connecting join. *)

val order_name : join_order -> string
(** The paper's legend notation with 1-based slots: "(2-1)-3-4". *)

val normalize : join_order -> join_order
(** Leading (and bushy second) pairs are unordered: sort them so equivalent
    orders compare equal. *)

val equal_order : join_order -> join_order -> bool

val all_join_orders : ndocs:int -> join_order list
(** All linear orders with an unordered leading pair, plus (for 4
    documents) the bushy shapes: 18 orders for ndocs = 4. *)

type slot = {
  doc_pos : int;               (** 0-based slot *)
  step_edges : Edge.t list;    (** non-trivial step edges, root-outward *)
  join_vertex : int;           (** the vertex carrying the equi-joins *)
}

type template = { slots : slot array }

val analyze : Graph.t -> template option
(** Recognize the template: per-document linear step chains whose terminal
    vertices form the equi-join component. [None] if the graph has another
    shape. *)

val plan_edges :
  Graph.t -> template -> order:join_order -> placement:placement -> Edge.t list
(** The concrete edge order implementing the plan; feed to
    {!Executor.execute}. *)

val canonical_plans :
  Graph.t -> template -> (join_order * placement * Edge.t list) list
(** Every join order × every canonical placement. *)

test/suite_workload.ml: Alcotest Array Combos Correlation Dblp Doc Element_index Engine Hashtbl Helpers List Navigation Printf Rox_shred Rox_storage Rox_workload Rox_xmldom Value_index Xmark

test/helpers.ml: Alcotest List Printf QCheck QCheck_alcotest Rox_storage Rox_util Rox_xmldom Rox_xquery String Tree Xml_parser Xoshiro

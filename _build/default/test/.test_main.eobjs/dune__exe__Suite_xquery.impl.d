test/suite_xquery.ml: Alcotest Array Ast Compile Edge Exec Format Graph Helpers Lexer List Naive Parser Relation Rox_algebra Rox_core Rox_joingraph Rox_storage Rox_workload Rox_xquery Tail Vertex

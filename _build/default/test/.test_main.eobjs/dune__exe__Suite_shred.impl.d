test/suite_shred.ml: Alcotest Doc Helpers Navigation Nodekind QCheck Rox_shred Rox_util Rox_xmldom Tree Xml_parser

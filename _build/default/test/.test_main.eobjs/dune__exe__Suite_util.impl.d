test/suite_util.ml: Alcotest Array Ascii_plot Bin_search Helpers Int_vec List QCheck Rox_util Seq Stats Str_pool String Table_fmt Xoshiro

test/suite_fuzz.ml: Alcotest Array Compile Engine Helpers List Naive Printf QCheck Rox_classical Rox_core Rox_joingraph Rox_storage Rox_util Rox_xmldom Rox_xquery String Tail Tree Xoshiro

test/suite_joingraph.ml: Alcotest Array Axis Cutoff Edge Exec Graph Helpers List Option Pretty Relation Rox_algebra Rox_joingraph Rox_xmldom Runtime Selection String Vertex

test/suite_xml.ml: Alcotest Helpers List QCheck Qname Rox_xmldom String Tree Xml_parser Xml_writer

test/suite_storage.ml: Alcotest Array Doc Element_index Engine Helpers Kind_index Nodekind Option QCheck Rox_algebra Rox_shred Rox_storage Rox_util Rox_xmldom Sampling Value_index

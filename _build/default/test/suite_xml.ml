open Rox_xmldom
open Helpers

(* ---------- Qname ---------- *)

let test_qname () =
  let q = Qname.of_string "xs:int" in
  check_string "prefix" "xs" q.Qname.prefix;
  check_string "local" "int" q.Qname.local;
  check_string "roundtrip" "xs:int" (Qname.to_string q);
  let plain = Qname.of_string "person" in
  check_string "no prefix" "" plain.Qname.prefix;
  check_bool "equal" true (Qname.equal plain (Qname.make "person"));
  check_bool "compare by local" true (Qname.compare (Qname.make "a") (Qname.make "b") < 0)

(* ---------- Parser ---------- *)

let parse = Xml_parser.parse_string

let test_parse_simple () =
  let t = parse "<a><b>hi</b><c/></a>" in
  check_string "root tag" "a" (Qname.to_string t.Tree.root.Tree.tag);
  check_int "children" 2 (List.length t.Tree.root.Tree.children);
  match t.Tree.root.Tree.children with
  | [ Tree.Element b; Tree.Element c ] ->
    check_string "b" "b" (Qname.to_string b.Tree.tag);
    check_string "text" "hi" (Tree.text_content b);
    check_string "c" "c" (Qname.to_string c.Tree.tag);
    check_int "c empty" 0 (List.length c.Tree.children)
  | _ -> Alcotest.fail "unexpected shape"

let test_parse_attributes () =
  let t = parse {|<a x="1" y='two "quoted"'/>|} in
  match t.Tree.root.Tree.attrs with
  | [ x; y ] ->
    check_string "x" "1" x.Tree.value;
    check_string "y" {|two "quoted"|} y.Tree.value
  | _ -> Alcotest.fail "expected two attributes"

let test_parse_entities () =
  let t = parse "<a>&lt;tag&gt; &amp; &quot;q&quot; &apos;a&apos; &#65;&#x42;</a>" in
  check_string "decoded" {|<tag> & "q" 'a' AB|} (Tree.text_content t.Tree.root)

let test_parse_entity_in_attr () =
  let t = parse {|<a v="&amp;&lt;"/>|} in
  match t.Tree.root.Tree.attrs with
  | [ v ] -> check_string "attr decoded" "&<" v.Tree.value
  | _ -> Alcotest.fail "expected attribute"

let test_parse_cdata () =
  let t = parse "<a><![CDATA[<raw> & stuff]]></a>" in
  check_string "cdata" "<raw> & stuff" (Tree.text_content t.Tree.root)

let test_parse_comment_pi () =
  let t = parse "<a><!-- note --><?php echo ?><b/></a>" in
  match t.Tree.root.Tree.children with
  | [ Tree.Comment c; Tree.Pi (target, _); Tree.Element _ ] ->
    check_string "comment" " note " c;
    check_string "pi target" "php" target
  | _ -> Alcotest.fail "expected comment, pi, element"

let test_parse_prolog () =
  let t = parse "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a ANY>]><a/>" in
  check_string "root" "a" (Qname.to_string t.Tree.root.Tree.tag)

let test_parse_whitespace_dropped () =
  let t = parse "<a>\n  <b/>\n</a>" in
  check_int "no blank text" 1 (List.length t.Tree.root.Tree.children)

let test_parse_whitespace_kept () =
  let t = Xml_parser.parse_string ~keep_whitespace:true "<a>\n  <b/>\n</a>" in
  check_int "blank text kept" 3 (List.length t.Tree.root.Tree.children)

let test_parse_mixed_content () =
  let t = parse "<p>one <b>two</b> three</p>" in
  check_int "three children" 3 (List.length t.Tree.root.Tree.children);
  check_string "full text" "one two three" (Tree.text_content t.Tree.root)

let expect_error src =
  match parse src with
  | exception Xml_parser.Parse_error _ -> ()
  | _ -> Alcotest.fail ("expected parse error for: " ^ src)

let test_parse_errors () =
  expect_error "<a><b></a>";
  expect_error "<a>";
  expect_error "no markup";
  expect_error "<a></a><b></b>";
  expect_error "<a attr=oops/>";
  expect_error "<a>&unknown;</a>";
  expect_error ""

let test_error_location () =
  match parse "<a>\n<b></c>\n</a>" with
  | exception Xml_parser.Parse_error { line; _ } -> check_int "line number" 2 line
  | _ -> Alcotest.fail "expected error"

(* ---------- Writer ---------- *)

let test_escapes () =
  check_string "text" "a&lt;b&gt;c&amp;d\"e" (Xml_writer.escape_text "a<b>c&d\"e");
  check_string "attr" "a&lt;b&gt;c&amp;d&quot;e" (Xml_writer.escape_attr "a<b>c&d\"e")

let test_write_simple () =
  let t = Tree.document (Tree.element ~attrs:[ ("x", "1") ] "a" [ Tree.text "hi"; Tree.element "b" [] ]) in
  check_string "compact" {|<a x="1">hi<b/></a>|} (Xml_writer.to_string t)

let prop_roundtrip =
  qtest ~count:200 "parse (to_string t) = t" QCheck.small_int (fun seed ->
      let t = random_tree_no_blank seed in
      let s = Xml_writer.to_string t in
      Xml_parser.parse_string s = t)

let prop_roundtrip_indented =
  qtest ~count:100 "indented output reparses to same tree" QCheck.small_int (fun seed ->
      let t = random_tree_no_blank seed in
      let s = Xml_writer.to_string ~indent:true t in
      Xml_parser.parse_string s = t)

let prop_serialized_size =
  qtest ~count:200 "serialized_size = |to_string|" QCheck.small_int (fun seed ->
      let t = random_tree seed in
      Xml_writer.serialized_size t = String.length (Xml_writer.to_string t))

let test_node_count () =
  let t = parse {|<a x="1"><b>t</b><!--c--><?p i?></a>|} in
  (* doc root + a + @x + b + text + comment + pi = 7 *)
  check_int "node_count" 7 (Tree.node_count t)

let test_find_elements () =
  let t = parse "<a><b/><c><b><b/></b></c></a>" in
  check_int "3 b elements" 3 (List.length (Tree.find_elements t "b"))

let suite =
  [
    Alcotest.test_case "qname" `Quick test_qname;
    Alcotest.test_case "parse simple" `Quick test_parse_simple;
    Alcotest.test_case "parse attributes" `Quick test_parse_attributes;
    Alcotest.test_case "parse entities" `Quick test_parse_entities;
    Alcotest.test_case "parse entity in attr" `Quick test_parse_entity_in_attr;
    Alcotest.test_case "parse cdata" `Quick test_parse_cdata;
    Alcotest.test_case "parse comment and pi" `Quick test_parse_comment_pi;
    Alcotest.test_case "parse prolog and doctype" `Quick test_parse_prolog;
    Alcotest.test_case "whitespace dropped" `Quick test_parse_whitespace_dropped;
    Alcotest.test_case "whitespace kept" `Quick test_parse_whitespace_kept;
    Alcotest.test_case "mixed content" `Quick test_parse_mixed_content;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "error location" `Quick test_error_location;
    Alcotest.test_case "escapes" `Quick test_escapes;
    Alcotest.test_case "write simple" `Quick test_write_simple;
    prop_roundtrip;
    prop_roundtrip_indented;
    prop_serialized_size;
    Alcotest.test_case "node count" `Quick test_node_count;
    Alcotest.test_case "find elements" `Quick test_find_elements;
  ]

open Rox_shred
open Rox_xmldom
open Helpers

let pools () = (Rox_util.Str_pool.create (), Rox_util.Str_pool.create ())

let shred xml =
  let qnames, values = pools () in
  Doc.of_tree ~qnames ~values (Xml_parser.parse_string xml)

(* ---------- Encoding invariants ---------- *)

let test_hand_encoding () =
  (*  pre: 0=docroot 1=a 2=@x 3=b 4=text 5=c *)
  let doc = shred {|<a x="1"><b>t</b><c/></a>|} in
  check_int "node count" 6 (Doc.node_count doc);
  check_bool "kind 0" true (Doc.kind doc 0 = Nodekind.Doc);
  check_bool "kind 1" true (Doc.kind doc 1 = Nodekind.Elem);
  check_bool "kind 2" true (Doc.kind doc 2 = Nodekind.Attr);
  check_bool "kind 3" true (Doc.kind doc 3 = Nodekind.Elem);
  check_bool "kind 4" true (Doc.kind doc 4 = Nodekind.Text);
  check_bool "kind 5" true (Doc.kind doc 5 = Nodekind.Elem);
  check_string "name a" "a" (Doc.name doc 1);
  check_string "name @x" "x" (Doc.name doc 2);
  check_string "value @x" "1" (Doc.value doc 2);
  check_string "value text" "t" (Doc.value doc 4);
  check_int "size doc" 5 (Doc.size doc 0);
  check_int "size a" 4 (Doc.size doc 1);
  check_int "size b" 1 (Doc.size doc 3);
  check_int "size c" 0 (Doc.size doc 5);
  check_int "level a" 1 (Doc.level doc 1);
  check_int "level @x" 2 (Doc.level doc 2);
  check_int "level text" 3 (Doc.level doc 4);
  check_int "parent a" 0 (Doc.parent doc 1);
  check_int "parent b" 1 (Doc.parent doc 3);
  check_int "parent text" 3 (Doc.parent doc 4);
  check_int "parent docroot" (-1) (Doc.parent doc 0)

let encoding_invariants doc =
  let n = Doc.node_count doc in
  let ok = ref true in
  for pre = 0 to n - 1 do
    let size = Doc.size doc pre in
    if pre + size >= n then ok := false;
    let parent = Doc.parent doc pre in
    if pre = 0 then (if parent <> -1 then ok := false)
    else begin
      (* Parent subtree contains the child; level is parent + 1. *)
      if not (Doc.in_subtree doc ~root:parent pre) then ok := false;
      if Doc.level doc pre <> Doc.level doc parent + 1 then ok := false
    end
  done;
  (* Sizes are consistent: node's subtree = sum of child subtrees (+1 each). *)
  for pre = 0 to n - 1 do
    let first, last = Navigation.subtree_bounds doc pre in
    let i = ref first in
    let acc = ref 0 in
    while !i <= last do
      acc := !acc + Doc.size doc !i + 1;
      i := !i + Doc.size doc !i + 1
    done;
    if !acc <> Doc.size doc pre then ok := false
  done;
  !ok

let prop_invariants =
  qtest ~count:150 "pre/size/level invariants on random docs" QCheck.small_int (fun seed ->
      let qnames, values = pools () in
      encoding_invariants (Doc.of_tree ~qnames ~values (random_tree seed)))

let prop_unshred_roundtrip =
  qtest ~count:150 "unshred (of_tree t) = t" QCheck.small_int (fun seed ->
      let t = random_tree seed in
      let qnames, values = pools () in
      Navigation.unshred (Doc.of_tree ~qnames ~values t) = t)

let prop_node_count =
  qtest ~count:100 "Doc.node_count = Tree.node_count" QCheck.small_int (fun seed ->
      let t = random_tree seed in
      let qnames, values = pools () in
      Doc.node_count (Doc.of_tree ~qnames ~values t) = Tree.node_count t)

(* ---------- Builder ---------- *)

let test_builder_errors () =
  let qnames, values = pools () in
  let b = Doc.Builder.create ~qnames ~values () in
  Doc.Builder.open_element b "a";
  Doc.Builder.text b "x";
  (match Doc.Builder.attribute b "late" "v" with
   | exception Invalid_argument _ -> ()
   | () -> Alcotest.fail "attribute after content must fail");
  (match Doc.Builder.finish b with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "finish with open element must fail");
  Doc.Builder.close_element b;
  ignore (Doc.Builder.finish b : Doc.t)

let test_builder_empty () =
  let qnames, values = pools () in
  let b = Doc.Builder.create ~qnames ~values () in
  match Doc.Builder.finish b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty document must fail"

let test_shared_pools () =
  let qnames, values = pools () in
  let d1 = Doc.of_tree ~qnames ~values (Xml_parser.parse_string "<a>same</a>") in
  let d2 = Doc.of_tree ~qnames ~values (Xml_parser.parse_string "<b>same</b>") in
  (* Text value ids are shared across documents. *)
  check_int "shared value id" (Doc.value_id d1 2) (Doc.value_id d2 2)

(* ---------- Navigation ---------- *)

let test_children_attributes () =
  let doc = shred {|<a x="1" y="2"><b><c/></b>t<d/></a>|} in
  (* pre: 0 doc, 1 a, 2 @x, 3 @y, 4 b, 5 c, 6 text, 7 d *)
  check_bool "children of a" true (Navigation.children doc 1 = [| 4; 6; 7 |]);
  check_bool "attrs of a" true (Navigation.attributes doc 1 = [| 2; 3 |]);
  check_bool "children of b" true (Navigation.children doc 4 = [| 5 |]);
  check_bool "ancestors of c" true (Navigation.ancestors doc 5 = [| 4; 1; 0 |]);
  check_int "root element" 1 (Navigation.root_element doc)

let test_siblings () =
  let doc = shred "<a><b><x/></b><c/><d/></a>" in
  (* pre: 0 doc, 1 a, 2 b, 3 x, 4 c, 5 d *)
  check_bool "next of b" true (Navigation.next_sibling doc 2 = Some 4);
  check_bool "next of c" true (Navigation.next_sibling doc 4 = Some 5);
  check_bool "next of d" true (Navigation.next_sibling doc 5 = None);
  check_bool "prev of d" true (Navigation.prev_sibling doc 5 = Some 4);
  check_bool "prev of b" true (Navigation.prev_sibling doc 2 = None);
  check_int "following_first of b" 4 (Navigation.following_first doc 2)

let test_in_subtree () =
  let doc = shred "<a><b><x/></b><c/></a>" in
  check_bool "x in b" true (Doc.in_subtree doc ~root:2 3);
  check_bool "c not in b" false (Doc.in_subtree doc ~root:2 4);
  check_bool "not self" false (Doc.in_subtree doc ~root:2 2);
  check_bool "all in docroot" true (Doc.is_ancestor doc ~anc:0 4)

(* ---------- Nodekind ---------- *)

let test_nodekind () =
  for i = 0 to 5 do
    check_int "roundtrip" i (Nodekind.to_int (Nodekind.of_int i))
  done;
  (match Nodekind.of_int 6 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "of_int 6 must fail");
  check_bool "matches any" true (Nodekind.matches Nodekind.Any Nodekind.Pi);
  check_bool "matches kind" true (Nodekind.matches (Nodekind.Kind Nodekind.Text) Nodekind.Text);
  check_bool "mismatch" false (Nodekind.matches (Nodekind.Kind Nodekind.Text) Nodekind.Elem)

let suite =
  [
    Alcotest.test_case "hand encoding" `Quick test_hand_encoding;
    prop_invariants;
    prop_unshred_roundtrip;
    prop_node_count;
    Alcotest.test_case "builder errors" `Quick test_builder_errors;
    Alcotest.test_case "builder empty" `Quick test_builder_empty;
    Alcotest.test_case "shared pools" `Quick test_shared_pools;
    Alcotest.test_case "children and attributes" `Quick test_children_attributes;
    Alcotest.test_case "siblings" `Quick test_siblings;
    Alcotest.test_case "in_subtree" `Quick test_in_subtree;
    Alcotest.test_case "nodekind" `Quick test_nodekind;
  ]

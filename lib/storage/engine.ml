open Rox_util
open Rox_shred

type docref = {
  doc : Doc.t;
  elements : Element_index.t;
  kinds : Kind_index.t;
  values : Value_index.t;
}

type t = {
  qname_pool : Str_pool.t;
  value_pool : Str_pool.t;
  mutable docs : docref array;
  mutable ndocs : int;
  by_uri : (string, int) Hashtbl.t;
  (* Generation counter for derived state (caches): any registration or
     explicit invalidation bumps it, so consumers can scope keys by epoch
     and retire everything derived from the old document set in O(1). *)
  mutable epoch : int;
  (* RX5xx access-log site for the mutation epoch (-1 when the log was
     disarmed at engine construction). Epoch reads and bumps record here,
     so the race detector can prove a concurrent bump never overlaps a
     reader minting fingerprints — or report RX503 when it does. The
     bump stands proxy for the whole registration mutation (docs table,
     uri map): the epoch write is its last store. *)
  al_epoch : int;
}

let create () =
  {
    qname_pool = Str_pool.create ();
    value_pool = Str_pool.create ();
    docs = [||];
    ndocs = 0;
    by_uri = Hashtbl.create 16;
    epoch = 0;
    al_epoch =
      (if Rox_util.Accesslog.armed () then
         Rox_util.Accesslog.site ~name:"engine.epoch" Rox_util.Accesslog.Epoch
       else -1);
  }

let epoch t =
  if Rox_util.Accesslog.armed () then
    Rox_util.Accesslog.record ~site:t.al_epoch ~info:t.epoch
      Rox_util.Accesslog.Read;
  t.epoch

let bump_epoch t =
  t.epoch <- t.epoch + 1;
  if Rox_util.Accesslog.armed () then
    Rox_util.Accesslog.record ~site:t.al_epoch ~info:t.epoch
      Rox_util.Accesslog.Write

let qnames t = t.qname_pool
let values t = t.value_pool

let register t doc =
  let r =
    {
      doc;
      elements = Element_index.build doc;
      kinds = Kind_index.build doc;
      values = Value_index.build doc;
    }
  in
  if t.ndocs >= Array.length t.docs then begin
    let cap = max 4 (2 * Array.length t.docs) in
    let bigger = Array.make cap r in
    Array.blit t.docs 0 bigger 0 t.ndocs;
    t.docs <- bigger
  end;
  Doc.set_id doc t.ndocs;
  t.docs.(t.ndocs) <- r;
  Hashtbl.replace t.by_uri (Doc.uri doc) t.ndocs;
  t.ndocs <- t.ndocs + 1;
  bump_epoch t;
  r

let add_doc t doc = register t doc

let add_tree t ?uri tree =
  let doc = Doc.of_tree ?uri ~qnames:t.qname_pool ~values:t.value_pool tree in
  register t doc

let doc_count t = t.ndocs

let get t i =
  if i < 0 || i >= t.ndocs then invalid_arg "Engine.get: unknown document id";
  t.docs.(i)

let find_uri t uri =
  match Hashtbl.find_opt t.by_uri uri with
  | Some i -> Some t.docs.(i)
  | None -> None

let intern_qname t s = Str_pool.intern t.qname_pool s
let intern_value t s = Str_pool.intern t.value_pool s
let qname_id t s = Str_pool.find t.qname_pool s
let value_id t s = Str_pool.find t.value_pool s

open Rox_util

let sample rng table tau =
  if tau < 0 then
    invalid_arg (Printf.sprintf "Sampling.sample: negative sample size %d" tau);
  let n = Array.length table in
  if tau >= n then Array.copy table
  else begin
    let idx = Xoshiro.sample_without_replacement rng n tau in
    Array.map (fun i -> table.(i)) idx
  end

let sample_fraction rng table frac =
  if Float.is_nan frac || frac < 0.0 || frac > 1.0 then
    invalid_arg
      (Printf.sprintf "Sampling.sample_fraction: fraction %g outside [0, 1]" frac);
  let n = Array.length table in
  if n = 0 || frac = 0.0 then [||]
  else begin
    let k = max 1 (int_of_float (frac *. float_of_int n)) in
    sample rng table k
  end

open Rox_util

let sample rng table tau =
  if tau < 0 then
    invalid_arg (Printf.sprintf "Sampling.sample: negative sample size %d" tau);
  let n = Column.length table in
  if tau >= n then table
  else begin
    let idx = Xoshiro.sample_without_replacement rng n tau in
    (* Ascending distinct positions of the table: document order — and
       strict increase — survive sampling. *)
    Column.unsafe_of_array ~sorted:(Column.sorted table)
      (Array.map (fun i -> Column.get table i) idx)
  end

let sample_fraction rng table frac =
  if Float.is_nan frac || frac < 0.0 || frac > 1.0 then
    invalid_arg
      (Printf.sprintf "Sampling.sample_fraction: fraction %g outside [0, 1]" frac);
  let n = Column.length table in
  if n = 0 || frac = 0.0 then Column.empty
  else begin
    let k = max 1 (int_of_float (frac *. float_of_int n)) in
    sample rng table k
  end

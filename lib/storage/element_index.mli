(** Element index: qualified name → document-ordered element node sequence.

    The paper's [Delt(q)] relational sub-query (Table 1): given a qname it
    returns all matching elements, duplicate-free and sorted on [pre], and —
    crucially for ROX — the *count* of matches is available at zero
    marginal cost, as is uniform sampling (Section 2.3). *)

type t

val build : Rox_shred.Doc.t -> t

val lookup : t -> int -> Rox_util.Column.t
(** [lookup idx qname_id] is the shared sorted pre column (zero-copy,
    [sorted] flag set); empty when the name does not occur. *)

val lookup_name : t -> string -> Rox_util.Column.t
(** Resolves the string through the document's qname pool first. *)

val count : t -> int -> int
(** Number of elements with the given interned qname — O(1). *)

val names : t -> int array
(** All element qname ids present in the document. *)

val lookup_attr : t -> int -> Rox_util.Column.t
(** Attribute nodes with the given interned attribute name — the analogous
    access path for "@name" vertices. *)

val lookup_attr_name : t -> string -> Rox_util.Column.t
val count_attr : t -> int -> int

(** Kind index: node kind → document-ordered node sequence.

    Provides the [D_k] inner inputs of the staircase join (Section 2.2):
    "the entire document [D*], or a kind restriction [D_k]". Text-node
    steps ([text()]) and attribute steps are the common users. *)

type t

val build : Rox_shred.Doc.t -> t

val lookup : t -> Rox_shred.Nodekind.t -> Rox_util.Column.t
(** Shared sorted pre column (zero-copy, [sorted] flag set). *)

val all : t -> Rox_util.Column.t
(** Every node except the virtual doc root — the [D*] input. *)

val count : t -> Rox_shred.Nodekind.t -> int

(** Uniform sampling from materialized node sequences and indices.

    ROX's start samples are "a set of tuples sampled from indices" (Section
    2.3); efficient index sampling is what partial-sum trees give
    MonetDB/XQuery, and what direct positional access gives our dense
    arrays. Samples keep document order so they remain valid staircase-join
    context inputs. *)

val sample : Rox_util.Xoshiro.t -> Rox_util.Column.t -> int -> Rox_util.Column.t
(** [sample rng table tau] draws [min tau (length table)] elements without
    replacement, returned sorted (document order — the input is sorted;
    the sorted flag carries over, and a [tau >= length] draw is the table
    itself, zero-copy).
    @raise Invalid_argument when [tau] is negative. *)

val sample_fraction :
  Rox_util.Xoshiro.t -> Rox_util.Column.t -> float -> Rox_util.Column.t
(** Sample a fraction in [0,1] of the table (at least 1 element when the
    table is non-empty and the fraction is positive; a fraction of [1.0]
    copies the whole table).
    @raise Invalid_argument when the fraction is NaN or outside [0, 1]. *)

open Rox_util
open Rox_shred

type t = {
  text_by_value : (int, Column.t) Hashtbl.t;
  attr_by_name_value : (int * int, Column.t) Hashtbl.t;
  attr_by_value : (int, Column.t) Hashtbl.t;
  (* Numeric access path: parallel arrays sorted by numeric value. *)
  num_values : float array;
  num_pres : int array;
}

let build doc =
  let text_acc : (int, Int_vec.t) Hashtbl.t = Hashtbl.create 1024 in
  let attr_nv_acc : (int * int, Int_vec.t) Hashtbl.t = Hashtbl.create 1024 in
  let attr_v_acc : (int, Int_vec.t) Hashtbl.t = Hashtbl.create 1024 in
  let nums = ref [] in
  let num_count = ref 0 in
  let push tbl key pre =
    let vec =
      match Hashtbl.find_opt tbl key with
      | Some v -> v
      | None ->
        let v = Int_vec.create ~capacity:2 () in
        Hashtbl.replace tbl key v;
        v
    in
    Int_vec.push vec pre
  in
  for pre = 1 to Doc.node_count doc - 1 do
    match Doc.kind doc pre with
    | Nodekind.Text ->
      let v = Doc.value_id doc pre in
      push text_acc v pre;
      (match float_of_string_opt (Doc.value doc pre) with
       | Some f ->
         nums := (f, pre) :: !nums;
         incr num_count
       | None -> ())
    | Nodekind.Attr ->
      let v = Doc.value_id doc pre in
      let n = Doc.name_id doc pre in
      push attr_nv_acc (n, v) pre;
      push attr_v_acc v pre
    | Nodekind.Doc | Nodekind.Elem | Nodekind.Comment | Nodekind.Pi -> ()
  done;
  (* Buckets were filled in pre order: already sorted and duplicate-free. *)
  let freeze tbl =
    let out = Hashtbl.create (Hashtbl.length tbl) in
    Hashtbl.iter
      (fun k v -> Hashtbl.replace out k (Column.unsafe_of_array ~sorted:true (Int_vec.to_array v)))
      tbl;
    out
  in
  let num_pairs = Array.of_list !nums in
  Array.sort
    (fun (a, pa) (b, pb) ->
      match Float.compare a b with 0 -> Int.compare pa pb | c -> c)
    num_pairs;
  {
    text_by_value = freeze text_acc;
    attr_by_name_value = freeze attr_nv_acc;
    attr_by_value = freeze attr_v_acc;
    num_values = Array.map fst num_pairs;
    num_pres = Array.map snd num_pairs;
  }

let find_or_empty tbl key =
  match Hashtbl.find_opt tbl key with Some a -> a | None -> Column.empty

let text_eq t value_id = find_or_empty t.text_by_value value_id
let text_eq_count t value_id = Column.length (text_eq t value_id)
let attr_eq t ~name_id ~value_id = find_or_empty t.attr_by_name_value (name_id, value_id)
let attr_eq_count t ~name_id ~value_id = Column.length (attr_eq t ~name_id ~value_id)
let attr_eq_any_name t ~value_id = find_or_empty t.attr_by_value value_id

(* Boundary indices in the numeric-sorted arrays for [lo, hi]. *)
let range_bounds t ?lo ?hi () =
  let n = Array.length t.num_values in
  let start =
    match lo with
    | None -> 0
    | Some lo ->
      let lo_idx = ref 0 and hi_idx = ref n in
      while !lo_idx < !hi_idx do
        let mid = (!lo_idx + !hi_idx) / 2 in
        if t.num_values.(mid) < lo then lo_idx := mid + 1 else hi_idx := mid
      done;
      !lo_idx
  in
  let stop =
    match hi with
    | None -> n
    | Some hi ->
      let lo_idx = ref 0 and hi_idx = ref n in
      while !lo_idx < !hi_idx do
        let mid = (!lo_idx + !hi_idx) / 2 in
        if t.num_values.(mid) <= hi then lo_idx := mid + 1 else hi_idx := mid
      done;
      !lo_idx
  in
  (start, stop)

let text_range t ?lo ?hi () =
  let start, stop = range_bounds t ?lo ?hi () in
  let out = Array.sub t.num_pres start (max 0 (stop - start)) in
  Array.sort Int.compare out;
  Column.unsafe_of_array ~sorted:true out

let text_range_count t ?lo ?hi () =
  let start, stop = range_bounds t ?lo ?hi () in
  max 0 (stop - start)

let numeric_text_count t = Array.length t.num_values

(** Value index over text and attribute nodes.

    Models MonetDB/XQuery's ordered (val, qelt, qattr, pre) store of Section
    2.2 with two access paths:

    - a hash path for equality lookups ([Dtext(v)] and [Dattr(v, qelt,
      qattr)]) — matching "the released version of MonetDB that supports a
      hash-based index for string equality lookups";
    - an ordered numeric path for range selections (the [current < 145]
      predicates of the XMark queries), playing the role of the B-tree.

    Counts of qualifying nodes are available without materializing the
    result, and every result sequence is duplicate-free, sorted on pre.
    Unlike the paper's [Dattr], attribute lookups here return the attribute
    nodes themselves; the owner element is one O(1) [parent] hop away. *)

type t

val build : Rox_shred.Doc.t -> t

val text_eq : t -> int -> Rox_util.Column.t
(** [text_eq idx value_id]: text nodes whose value equals the interned
    value — shared sorted column (zero-copy, [sorted] flag set). *)

val text_eq_count : t -> int -> int

val attr_eq : t -> name_id:int -> value_id:int -> Rox_util.Column.t
(** Attribute nodes with a given name and value. *)

val attr_eq_count : t -> name_id:int -> value_id:int -> int

val attr_eq_any_name : t -> value_id:int -> Rox_util.Column.t
(** Attribute nodes with a given value, any attribute name — used by value
    equi-joins whose attribute name is fixed per vertex anyway. *)

val text_range : t -> ?lo:float -> ?hi:float -> unit -> Rox_util.Column.t
(** Text nodes whose value parses as a number within [lo, hi] (inclusive;
    bounds optional). Result is freshly allocated, sorted on pre. *)

val text_range_count : t -> ?lo:float -> ?hi:float -> unit -> int

val numeric_text_count : t -> int
(** How many text nodes have numeric values at all. *)

(** Multi-document execution context.

    An engine owns the global qname and value pools (so equi-joins across
    documents compare interned integers — the DBLP query joins author text
    across four documents) and, per registered document, the element, kind
    and value indices, built eagerly at registration like MonetDB/XQuery
    builds its indices at shred time. *)

type t

type docref = {
  doc : Rox_shred.Doc.t;
  elements : Element_index.t;
  kinds : Kind_index.t;
  values : Value_index.t;
}

val create : unit -> t
val qnames : t -> Rox_util.Str_pool.t
val values : t -> Rox_util.Str_pool.t

val add_tree : t -> ?uri:string -> Rox_xmldom.Tree.t -> docref
(** Shred, index and register a tree; the document id is its registration
    order. *)

val add_doc : t -> Rox_shred.Doc.t -> docref
(** Index and register an already-shredded document (it must have been
    shredded against this engine's pools). *)

val doc_count : t -> int
val get : t -> int -> docref
(** By document id. @raise Invalid_argument for an unknown id. *)

val epoch : t -> int
(** Generation counter over the engine's document set. Every registration
    (and every explicit {!bump_epoch}) increments it; state derived from
    the documents — notably [Rox_cache] fingerprints — is scoped by the
    epoch, so a bump retires all of it in O(1) without walking anything. *)

val bump_epoch : t -> unit
(** Invalidate all epoch-scoped derived state (caches) for this engine. *)

val find_uri : t -> string -> docref option
val intern_qname : t -> string -> int
val intern_value : t -> string -> int
val qname_id : t -> string -> int option
val value_id : t -> string -> int option

open Rox_util
open Rox_shred

type t = { by_kind : Column.t array; everything : Column.t }

let build doc =
  let vecs = Array.init 6 (fun _ -> Int_vec.create ()) in
  let all = Int_vec.create ~capacity:(Doc.node_count doc) () in
  for pre = 1 to Doc.node_count doc - 1 do
    Int_vec.push vecs.(Nodekind.to_int (Doc.kind doc pre)) pre;
    Int_vec.push all pre
  done;
  { by_kind =
      Array.map (fun v -> Column.unsafe_of_array ~sorted:true (Int_vec.to_array v)) vecs;
    everything = Column.unsafe_of_array ~sorted:true (Int_vec.to_array all) }

let lookup t kind = t.by_kind.(Nodekind.to_int kind)
let all t = t.everything
let count t kind = Column.length (lookup t kind)

open Rox_util
open Rox_shred

type t = {
  doc : Doc.t;
  by_name : (int, Column.t) Hashtbl.t;
  attrs_by_name : (int, Column.t) Hashtbl.t;
}

let build doc =
  let acc : (int, Int_vec.t) Hashtbl.t = Hashtbl.create 64 in
  let attr_acc : (int, Int_vec.t) Hashtbl.t = Hashtbl.create 64 in
  let push tbl name pre =
    let vec =
      match Hashtbl.find_opt tbl name with
      | Some v -> v
      | None ->
        let v = Int_vec.create () in
        Hashtbl.replace tbl name v;
        v
    in
    Int_vec.push vec pre
  in
  for pre = 0 to Doc.node_count doc - 1 do
    match Doc.kind doc pre with
    | Nodekind.Elem -> push acc (Doc.name_id doc pre) pre
    | Nodekind.Attr -> push attr_acc (Doc.name_id doc pre) pre
    | Nodekind.Doc | Nodekind.Text | Nodekind.Comment | Nodekind.Pi -> ()
  done;
  (* Rows were visited in pre order, so each vector is already sorted. *)
  let freeze acc =
    let out = Hashtbl.create (Hashtbl.length acc) in
    Hashtbl.iter
      (fun name vec ->
        Hashtbl.replace out name
          (Column.unsafe_of_array ~sorted:true (Int_vec.to_array vec)))
      acc;
    out
  in
  { doc; by_name = freeze acc; attrs_by_name = freeze attr_acc }

let find_or_empty tbl key =
  match Hashtbl.find_opt tbl key with Some a -> a | None -> Column.empty

let lookup t name_id = find_or_empty t.by_name name_id

let lookup_name t name =
  match Str_pool.find (Doc.qname_pool t.doc) name with
  | Some id -> lookup t id
  | None -> Column.empty

let count t name_id = Column.length (lookup t name_id)

let names t =
  let out = Int_vec.create () in
  Hashtbl.iter (fun name _ -> Int_vec.push out name) t.by_name;
  let arr = Int_vec.to_array out in
  Array.sort Int.compare arr;
  arr

let lookup_attr t name_id = find_or_empty t.attrs_by_name name_id

let lookup_attr_name t name =
  match Str_pool.find (Doc.qname_pool t.doc) name with
  | Some id -> lookup_attr t id
  | None -> Column.empty

let count_attr t name_id = Column.length (lookup_attr t name_id)

module L = Lru.Make (struct
  type t = string

  let equal = String.equal
  let hash = Fingerprint.shard_hash
end)

type value = { left : Rox_util.Column.t; right : Rox_util.Column.t }
type t = value L.t

(* Bit-identical in the Fingerprint sense: a fast-path hit and the locked
   reference must describe the same pair columns, even if a concurrent
   replacement produced a fresh (content-equal) materialization. *)
let value_equal a b =
  (a.left == b.left && a.right == b.right)
  || (Fingerprint.column a.left = Fingerprint.column b.left
      && Fingerprint.column a.right = Fingerprint.column b.right)

let create ?shards ?policy ?fast_path ?rebalance_every ?validate ~budget () =
  L.create ~name:"cache.relations" ?shards ?policy ?fast_path ?rebalance_every
    ?validate ~check_equal:value_equal ~budget ()

let find ?sanitize t k = L.find ?sanitize t k

(* Bytes of the *underlying storage*, with storage shared between the two
   columns (e.g. zero-copy views of the same array) counted once, plus a
   conservative constant for the key string, the hashtable slot and the
   recency-list node. *)
let weight v =
  let open Rox_util in
  let left = Column.storage_bytes v.left in
  let right =
    if Column.same_storage v.left v.right then 0 else Column.storage_bytes v.right
  in
  left + right + 128

let add ?cost t k v = L.add t k ~weight:(weight v) ?cost v
let stats = L.stats
let shard_stats = L.shard_stats
let clear = L.clear

module L = Lru.Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)

type value = { left : int array; right : int array }
type t = value L.t

let create ~budget = L.create ~budget
let find t k = L.find t k

(* 8 bytes per node in each column, plus a conservative constant for the
   key string, the hashtable slot and the recency-list node. *)
let weight v = (8 * (Array.length v.left + Array.length v.right)) + 128

let add t k v = L.add t k ~weight:(weight v) v
let stats = L.stats
let clear = L.clear

module L = Lru.Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)

type value = { left : Rox_util.Column.t; right : Rox_util.Column.t }
type t = value L.t

let create ~budget = L.create ~name:"cache.relations" ~budget
let find t k = L.find t k

(* Bytes of the *underlying storage*, with storage shared between the two
   columns (e.g. zero-copy views of the same array) counted once, plus a
   conservative constant for the key string, the hashtable slot and the
   recency-list node. *)
let weight v =
  let open Rox_util in
  let left = Column.storage_bytes v.left in
  let right =
    if Column.same_storage v.left v.right then 0 else Column.storage_bytes v.right
  in
  left + right + 128

let add t k v = L.add t k ~weight:(weight v) v
let stats = L.stats
let clear = L.clear

(** Byte-budgeted, weight-aware LRU — the generic core of the cross-query
    cache.

    Entries carry an explicit weight (their materialized size in bytes);
    the cache holds the most-recently-used entries whose weights sum to at
    most the byte budget, evicting from the cold end. Every lookup and
    insertion updates the hit/miss/eviction/byte counters exposed as a
    {!stats} snapshot, so benchmarks and the CLI can report reuse without
    instrumenting call sites.

    Every operation takes a per-cache mutex, so one cache (and hence one
    [Rox_cache.Store.t]) may be shared by concurrent sessions running on
    separate OCaml domains. The lock is uncontended in single-domain use.

    When the {!Rox_util.Accesslog} is armed at construction time, every
    operation additionally records one access-log Write under the cache's
    registered lock, so the RX5xx race detector sees the cache as a
    mutex-guarded shared site; disarmed, the instrumentation is one
    boolean test per operation. *)

type stats = {
  hits : int;        (** lookups answered from the cache *)
  misses : int;      (** lookups that found nothing *)
  insertions : int;  (** entries admitted (including replacements) *)
  evictions : int;   (** entries pushed out by the byte budget *)
  rejected : int;    (** entries larger than the whole budget, never admitted *)
  entries : int;     (** currently resident entries *)
  bytes : int;       (** currently resident weight total *)
  budget : int;      (** the configured byte budget *)
}

val stats_to_string : stats -> string
(** One-line rendering: hits/misses/hit-rate, evictions, bytes/budget. *)

module type S = sig
  type key
  type 'v t

  val create : name:string -> budget:int -> 'v t
  (** A cache holding at most [budget] bytes of entry weight. A
      non-positive budget admits nothing (every [add] is a no-op), which
      is how "cache off" is spelled. [name] labels the cache's site and
      lock in RX5xx race-detector reports. *)

  val find : 'v t -> key -> 'v option
  (** Counted lookup; a hit refreshes the entry's recency. *)

  val mem : 'v t -> key -> bool
  (** Uncounted, recency-neutral membership probe (tests, introspection). *)

  val add : 'v t -> key -> weight:int -> 'v -> unit
  (** Insert or replace, then evict least-recently-used entries until the
      weight total fits the budget again. Entries heavier than the whole
      budget are rejected (counted, not stored).
      @raise Invalid_argument when [weight] is negative. *)

  val remove : 'v t -> key -> unit
  val clear : 'v t -> unit
  (** Drop all entries. Counters other than [entries]/[bytes] persist. *)

  val stats : 'v t -> stats

  val iter_coldest_first : 'v t -> (key -> 'v -> unit) -> unit
  (** Entries in eviction order (least recently used first) — the
      observable the eviction-order property tests pin down. *)
end

module Make (K : Hashtbl.HashedType) : S with type key = K.t

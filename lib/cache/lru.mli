(** Byte-budgeted, weight-aware, sharded LRU — the generic core of the
    cross-query cache.

    Entries carry an explicit weight (their materialized size in bytes);
    the cache holds the most-recently-used entries whose weights sum to at
    most the byte budget, evicting from the cold end. Every lookup and
    insertion updates the hit/miss/eviction/byte counters exposed as a
    {!stats} snapshot, so benchmarks and the CLI can report reuse without
    instrumenting call sites.

    {2 Sharding}

    The key space is split across a power-of-two number of shards, each a
    complete LRU (own mutex, own hashtable, own recency list, own slice of
    the byte budget). A key's shard comes from the {e high} bits of its
    hash — with {!Fingerprint.shard_hash} as the functor's [hash], that is
    the high end of the 2x FNV-1a key digest — so misses and mutations
    contend only with operations on the same shard. With [shards = 1]
    (the default) behaviour is exactly the classic single-lock LRU.

    {2 Lock-free read fast path}

    Each shard additionally publishes an immutable read image (a
    persistent map swapped atomically by writers). When {!find} cannot
    take the shard lock immediately, it serves a {e hit} from that image
    without blocking — after validating the entry's stored epoch stamp
    against the [validate] callback (the engine's O(1) mutation epoch) —
    and counts it in [fast_hits]. Misses, and all mutations, take the one
    shard lock. Under the sanitizer ({!find} [~sanitize:true]) every
    fast-path hit is replayed through the locked reference lookup and the
    two results must be identical ([check_equal], RX308).

    {2 Cost-aware admission}

    With [policy = Cost_aware], entries carry the measured cost (ns) of
    recomputing them; eviction scans a bounded window at the cold end of
    the recency list and drops the entry with the lowest cost-per-byte,
    keeping what is expensive to recompute rather than what is merely
    recently touched. [Lru_only] is classic LRU.

    When the {!Rox_util.Accesslog} is armed at construction time, every
    locked operation records one access-log Write under the owning
    shard's registered lock, so the RX5xx race detector sees each shard
    as a mutex-guarded shared site; disarmed, the instrumentation is one
    boolean test per operation. *)

type stats = {
  hits : int;            (** lookups answered from the cache (locked + fast path) *)
  misses : int;          (** lookups that found nothing *)
  insertions : int;      (** entries admitted (including replacements) *)
  evictions : int;       (** entries pushed out by the byte budget *)
  cost_evictions : int;  (** evictions where cost-per-byte overrode pure LRU order *)
  rejected : int;        (** entries larger than their shard's budget, never admitted *)
  entries : int;         (** currently resident entries *)
  bytes : int;           (** currently resident weight total *)
  budget : int;          (** the configured byte budget (all shards) *)
  lock_waits : int;      (** lookups that found their shard lock busy *)
  fast_hits : int;       (** hits served lock-free from the read image *)
}

val stats_to_string : stats -> string
(** One-line rendering: hits/misses/hit-rate, evictions, bytes/budget,
    contention counters. *)

type policy =
  | Lru_only    (** evict the coldest entry, regardless of cost *)
  | Cost_aware  (** evict the lowest cost-per-byte entry within a bounded
                    cold-end window *)

val policy_to_string : policy -> string

val cost_scan_window : int
(** How many cold-end entries a [Cost_aware] eviction considers. *)

module type S = sig
  type key
  type 'v t

  val create :
    name:string ->
    ?shards:int ->
    ?policy:policy ->
    ?fast_path:bool ->
    ?rebalance_every:int ->
    ?validate:(unit -> int) ->
    ?check_equal:('v -> 'v -> bool) ->
    budget:int ->
    unit ->
    'v t
  (** A cache holding at most [budget] bytes of entry weight, split
      evenly across [shards] (a power of two, default 1). A non-positive
      budget admits nothing, which is how "cache off" is spelled. [name]
      labels each shard's site and lock in RX5xx race-detector reports
      (["name.shardN"] when [shards > 1]).

      [policy] selects the eviction discipline (default {!Lru_only}).
      [fast_path] (default [true]) enables the lock-free read image;
      [false] makes every operation block on its shard lock — the
      single-lock reference configuration benchmarks compare against.
      [validate] supplies the current engine epoch; a fast-path hit whose
      stored stamp disagrees is not served. [check_equal] compares a
      fast-path hit with the locked reference under the sanitizer
      (default: physical equality). Budgets are rebalanced across shards
      by insertion demand every [rebalance_every] insertions ([0]
      disables rebalancing).
      @raise Invalid_argument when [shards] is not a power of two. *)

  val find : ?sanitize:bool -> 'v t -> key -> 'v option
  (** Counted lookup; a hit through the locked path refreshes the entry's
      recency. When the shard lock is busy, a hit may be served lock-free
      from the published image (epoch-validated, recency not refreshed).
      [~sanitize:true] replays every fast-path hit through the locked
      reference and raises {!Rox_algebra.Sanitize.Violation}
      ([Shard_consistent], RX308) on mismatch. *)

  val find_fast : 'v t -> key -> 'v option
  (** Read the published image directly: no lock, no hit/miss counters
      (beyond [fast_hits]), no recency update. Deterministic handle on
      the fast path for tests; production callers want {!find}. *)

  val mem : 'v t -> key -> bool
  (** Uncounted, recency-neutral membership probe (tests, introspection). *)

  val add : 'v t -> key -> weight:int -> ?cost:int -> ?epoch:int -> 'v -> unit
  (** Insert or replace, then evict entries until the shard's weight
      total fits its budget again. [cost] is the measured recomputation
      cost in ns (drives {!Cost_aware} eviction; default 0). [epoch]
      overrides the stamp stored for fast-path validation (default: the
      [validate] callback's current value, or 0). Entries heavier than
      the whole shard budget are rejected (counted, not stored).
      @raise Invalid_argument when [weight] is negative. *)

  val remove : 'v t -> key -> unit
  val clear : 'v t -> unit
  (** Drop all entries. Counters other than [entries]/[bytes] persist. *)

  val stats : 'v t -> stats
  (** Summed across shards, one shard lock at a time (no global lock):
      a consistent-enough view of monotonic counters, not an atomic
      snapshot. [budget] reports the configured total. *)

  val shard_count : 'v t -> int
  val shard_of : 'v t -> key -> int
  (** Which shard holds [key] — the addressing function under test. *)

  val shard_stats : 'v t -> stats array
  (** Per-shard snapshots (each shard's own slice of the budget). *)

  val iter_coldest_first : 'v t -> (key -> 'v -> unit) -> unit
  (** Entries in eviction order within each shard (least recently used
      first), shard 0 first — the observable the eviction-order property
      tests pin down. With [shards = 1] this is exactly the classic
      global eviction order. *)
end

module Make (K : Hashtbl.HashedType) : S with type key = K.t

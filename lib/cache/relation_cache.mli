(** Cross-query cache of fully materialized edge executions.

    The value is the pair list a staircase or value join produced for one
    edge against concrete endpoint tables — exactly what
    [Rox_joingraph.Exec.full_pairs] returns, stored as its two parallel
    columns ((v1-node, v2-node) orientation). Keys are
    {!Fingerprint.t}s over the edge descriptor and the endpoint table
    contents, so a hit is valid for *any* query that executes the same
    edge shape against the same inputs on the same engine epoch.

    Stored columns are returned as-is; {!Rox_util.Column.t} is immutable
    by construction, so hits share storage with the producer. *)

type value = { left : Rox_util.Column.t; right : Rox_util.Column.t }

type t

val create :
  ?shards:int ->
  ?policy:Lru.policy ->
  ?fast_path:bool ->
  ?rebalance_every:int ->
  ?validate:(unit -> int) ->
  budget:int ->
  unit ->
  t
(** [budget] in bytes of resident pair data; sharding, eviction policy,
    fast path and epoch validation as in {!Lru.S.create}. Fast-path hits
    are cross-checked against the locked reference by column content
    (Fingerprint digests) under the sanitizer. *)

val find : ?sanitize:bool -> t -> Fingerprint.t -> value option
val add : ?cost:int -> t -> Fingerprint.t -> value -> unit
(** [cost] is the measured execution time (ns) of producing the value —
    the input to cost-aware eviction. *)

val weight : value -> int
(** The byte weight charged for a value: underlying column storage (shared
    storage counted once) plus entry overhead. *)

val stats : t -> Lru.stats
val shard_stats : t -> Lru.stats array
val clear : t -> unit

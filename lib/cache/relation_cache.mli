(** Cross-query cache of fully materialized edge executions.

    The value is the pair list a staircase or value join produced for one
    edge against concrete endpoint tables — exactly what
    [Rox_joingraph.Exec.full_pairs] returns, stored as its two parallel
    columns ((v1-node, v2-node) orientation). Keys are
    {!Fingerprint.t}s over the edge descriptor and the endpoint table
    contents, so a hit is valid for *any* query that executes the same
    edge shape against the same inputs on the same engine epoch.

    Stored columns are returned as-is; {!Rox_util.Column.t} is immutable
    by construction, so hits share storage with the producer. *)

type value = { left : Rox_util.Column.t; right : Rox_util.Column.t }

type t

val create : budget:int -> t
(** [budget] in bytes of resident pair data. *)

val find : t -> Fingerprint.t -> value option
val add : t -> Fingerprint.t -> value -> unit
val weight : value -> int
(** The byte weight charged for a value: underlying column storage (shared
    storage counted once) plus entry overhead. *)

val stats : t -> Lru.stats
val clear : t -> unit

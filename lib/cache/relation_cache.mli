(** Cross-query cache of fully materialized edge executions.

    The value is the pair list a staircase or value join produced for one
    edge against concrete endpoint tables — exactly what
    [Rox_joingraph.Exec.full_pairs] returns, stored as its two parallel
    columns ((v1-node, v2-node) orientation). Keys are
    {!Fingerprint.t}s over the edge descriptor and the endpoint table
    contents, so a hit is valid for *any* query that executes the same
    edge shape against the same inputs on the same engine epoch.

    Stored arrays are returned as-is and must be treated as immutable by
    consumers (the join-graph layer never mutates pair arrays). *)

type value = { left : int array; right : int array }

type t

val create : budget:int -> t
(** [budget] in bytes of resident pair data. *)

val find : t -> Fingerprint.t -> value option
val add : t -> Fingerprint.t -> value -> unit
val weight : value -> int
(** The byte weight charged for a value: 8 per node plus entry overhead. *)

val stats : t -> Lru.stats
val clear : t -> unit

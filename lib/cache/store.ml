type t = {
  engine : Rox_storage.Engine.t;
  relations : Relation_cache.t;
  estimates : Estimate_cache.t;
}

let default_budget = 16 * 1024 * 1024

let create ?(relation_budget = default_budget) ?(estimate_budget = default_budget)
    engine =
  {
    engine;
    relations = Relation_cache.create ~budget:relation_budget;
    estimates = Estimate_cache.create ~budget:estimate_budget;
  }

let of_megabytes engine mb =
  let bytes = mb * 1024 * 1024 in
  create ~relation_budget:(bytes * 3 / 4) ~estimate_budget:(bytes / 4) engine

let engine t = t.engine
let epoch t = Rox_storage.Engine.epoch t.engine
let relations t = t.relations
let estimates t = t.estimates

type stats = {
  relations : Lru.stats;
  estimates : Lru.stats;
}

let stats (t : t) : stats =
  { relations = Relation_cache.stats t.relations;
    estimates = Estimate_cache.stats t.estimates }

let observe_into t m =
  let s = stats t in
  Rox_telemetry.Metrics.set m.Rox_telemetry.Metrics.cache_resident_bytes
    (float_of_int (s.relations.Lru.bytes + s.estimates.Lru.bytes))

let stats_to_string s =
  Printf.sprintf "relations: %s\nestimates: %s\n"
    (Lru.stats_to_string s.relations)
    (Lru.stats_to_string s.estimates)

let clear (t : t) =
  Relation_cache.clear t.relations;
  Estimate_cache.clear t.estimates

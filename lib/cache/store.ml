type t = {
  engine : Rox_storage.Engine.t;
  relations : Relation_cache.t;
  estimates : Estimate_cache.t;
}

let default_budget = 16 * 1024 * 1024
let default_shards = 4

let create ?(relation_budget = default_budget) ?(estimate_budget = default_budget)
    ?(shards = default_shards) ?(policy = Lru.Lru_only) ?fast_path
    ?rebalance_every engine =
  (* Fast-path hits validate against the engine's O(1) mutation epoch:
     a stale entry (admitted before a document registration or an
     explicit bump) is never served lock-free. *)
  let validate () = Rox_storage.Engine.epoch engine in
  {
    engine;
    relations =
      Relation_cache.create ~shards ~policy ?fast_path ?rebalance_every
        ~validate ~budget:relation_budget ();
    estimates =
      Estimate_cache.create ~shards ~policy ?fast_path ?rebalance_every
        ~validate ~budget:estimate_budget ();
  }

let of_megabytes ?shards ?policy ?fast_path engine mb =
  let bytes = mb * 1024 * 1024 in
  create
    ~relation_budget:(bytes * 3 / 4)
    ~estimate_budget:(bytes / 4)
    ?shards ?policy ?fast_path engine

let engine t = t.engine
let epoch t = Rox_storage.Engine.epoch t.engine
let relations t = t.relations
let estimates t = t.estimates

type stats = {
  relations : Lru.stats;
  estimates : Lru.stats;
}

let stats (t : t) : stats =
  { relations = Relation_cache.stats t.relations;
    estimates = Estimate_cache.stats t.estimates }

let shard_stats (t : t) =
  (Relation_cache.shard_stats t.relations, Estimate_cache.shard_stats t.estimates)

let observe_into t m =
  (* Lru.stats already sums every shard (one shard lock at a time), so
     the residency gauge reflects the whole store, not one shard. *)
  let s = stats t in
  Rox_telemetry.Metrics.set m.Rox_telemetry.Metrics.cache_resident_bytes
    (float_of_int (s.relations.Lru.bytes + s.estimates.Lru.bytes));
  Rox_telemetry.Metrics.set m.Rox_telemetry.Metrics.cache_shard_lock_waits
    (float_of_int (s.relations.Lru.lock_waits + s.estimates.Lru.lock_waits))

let stats_to_string s =
  Printf.sprintf "relations: %s\nestimates: %s\n"
    (Lru.stats_to_string s.relations)
    (Lru.stats_to_string s.estimates)

let clear (t : t) =
  Relation_cache.clear t.relations;
  Estimate_cache.clear t.estimates

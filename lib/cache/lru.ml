type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  rejected : int;
  entries : int;
  bytes : int;
  budget : int;
}

let stats_to_string s =
  let lookups = s.hits + s.misses in
  let rate = if lookups = 0 then 0.0 else float_of_int s.hits /. float_of_int lookups in
  Printf.sprintf
    "hits %d / %d lookups (%.1f%%), %d insertions, %d evictions, %d rejected, %d entries, %d / %d bytes"
    s.hits lookups (100.0 *. rate) s.insertions s.evictions s.rejected s.entries
    s.bytes s.budget

module type S = sig
  type key
  type 'v t

  val create : name:string -> budget:int -> 'v t
  val find : 'v t -> key -> 'v option
  val mem : 'v t -> key -> bool
  val add : 'v t -> key -> weight:int -> 'v -> unit
  val remove : 'v t -> key -> unit
  val clear : 'v t -> unit
  val stats : 'v t -> stats
  val iter_coldest_first : 'v t -> (key -> 'v -> unit) -> unit
end

module Make (K : Hashtbl.HashedType) : S with type key = K.t = struct
  type key = K.t

  module H = Hashtbl.Make (K)

  (* Doubly-linked recency list: [first] is coldest (next eviction victim),
     [last] is hottest. *)
  type 'v node = {
    nkey : key;
    mutable nvalue : 'v;
    mutable nweight : int;
    mutable prev : 'v node option;
    mutable next : 'v node option;
  }

  type 'v t = {
    (* Coarse per-cache lock: a [Store.t] is shared read-side between
       concurrent sessions (possibly on different domains), and every
       public operation mutates recency links and stats counters. *)
    lock : Mutex.t;
    (* RX5xx access-log identities: every public operation records one
       Write at [al_site] while holding [al_lock], so the race detector
       sees the cache as one mutex-guarded shared site. Both are -1 when
       the log was disarmed at construction — the instrumentation then
       costs one boolean test per operation. *)
    al_site : int;
    al_lock : int;
    table : 'v node H.t;
    budget : int;
    mutable first : 'v node option;
    mutable last : 'v node option;
    mutable bytes : int;
    mutable hits : int;
    mutable misses : int;
    mutable insertions : int;
    mutable evictions : int;
    mutable rejected : int;
  }

  let create ~name ~budget =
    let armed = Rox_util.Accesslog.armed () in
    {
      lock = Mutex.create ();
      al_site =
        (if armed then Rox_util.Accesslog.site ~name Rox_util.Accesslog.Shared
         else -1);
      al_lock =
        (if armed then Rox_util.Accesslog.lock ~name:(name ^ ".mutex") else -1);
      table = H.create 64;
      budget;
      first = None;
      last = None;
      bytes = 0;
      hits = 0;
      misses = 0;
      insertions = 0;
      evictions = 0;
      rejected = 0;
    }

  let unlink t n =
    (match n.prev with Some p -> p.next <- n.next | None -> t.first <- n.next);
    (match n.next with Some s -> s.prev <- n.prev | None -> t.last <- n.prev);
    n.prev <- None;
    n.next <- None

  let push_hottest t n =
    n.prev <- t.last;
    n.next <- None;
    (match t.last with Some l -> l.next <- Some n | None -> t.first <- Some n);
    t.last <- Some n

  let is_hottest t n = match t.last with Some l -> l == n | None -> false

  let touch t n =
    if not (is_hottest t n) then begin
      unlink t n;
      push_hottest t n
    end

  (* Every public operation mutates recency links or counters, so each
     records as one Write (even [find]/[mem]) inside the critical
     section. Disarmed: one boolean test beyond the existing lock. *)
  let locked t f =
    Mutex.protect t.lock (fun () ->
        if Rox_util.Accesslog.armed () then
          Rox_util.Accesslog.with_lock t.al_lock (fun () ->
              Rox_util.Accesslog.record ~site:t.al_site Rox_util.Accesslog.Write;
              f ())
        else f ())

  let find t k =
    locked t @@ fun () ->
    match H.find_opt t.table k with
    | Some n ->
      t.hits <- t.hits + 1;
      touch t n;
      Some n.nvalue
    | None ->
      t.misses <- t.misses + 1;
      None

  let mem t k = locked t (fun () -> H.mem t.table k)

  let drop t n =
    unlink t n;
    H.remove t.table n.nkey;
    t.bytes <- t.bytes - n.nweight

  let evict_to_budget t =
    while t.bytes > t.budget do
      match t.first with
      | Some victim ->
        drop t victim;
        t.evictions <- t.evictions + 1
      | None -> assert false (* bytes > 0 implies a resident entry *)
    done

  let add t k ~weight v =
    if weight < 0 then
      invalid_arg (Printf.sprintf "Lru.add: negative weight %d" weight);
    locked t @@ fun () ->
    if t.budget <= 0 || weight > t.budget then begin
      (* Too large to ever fit: admitting it would just flush the cache. *)
      (match H.find_opt t.table k with Some n -> drop t n | None -> ());
      t.rejected <- t.rejected + 1
    end
    else begin
      (match H.find_opt t.table k with
       | Some n ->
         t.bytes <- t.bytes - n.nweight + weight;
         n.nvalue <- v;
         n.nweight <- weight;
         touch t n
       | None ->
         let n = { nkey = k; nvalue = v; nweight = weight; prev = None; next = None } in
         H.replace t.table k n;
         push_hottest t n;
         t.bytes <- t.bytes + weight);
      t.insertions <- t.insertions + 1;
      evict_to_budget t
    end

  let remove t k =
    locked t @@ fun () ->
    match H.find_opt t.table k with
    | Some n -> drop t n
    | None -> ()

  let clear t =
    locked t @@ fun () ->
    H.reset t.table;
    t.first <- None;
    t.last <- None;
    t.bytes <- 0

  let stats t =
    locked t @@ fun () ->
    {
      hits = t.hits;
      misses = t.misses;
      insertions = t.insertions;
      evictions = t.evictions;
      rejected = t.rejected;
      entries = H.length t.table;
      bytes = t.bytes;
      budget = t.budget;
    }

  let iter_coldest_first t f =
    locked t @@ fun () ->
    let rec go = function
      | None -> ()
      | Some n ->
        let next = n.next in
        f n.nkey n.nvalue;
        go next
    in
    go t.first
end

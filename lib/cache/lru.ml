type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  cost_evictions : int;
  rejected : int;
  entries : int;
  bytes : int;
  budget : int;
  lock_waits : int;
  fast_hits : int;
}

let stats_to_string s =
  let lookups = s.hits + s.misses in
  let rate = if lookups = 0 then 0.0 else float_of_int s.hits /. float_of_int lookups in
  Printf.sprintf
    "hits %d / %d lookups (%.1f%%, %d lock-free), %d insertions, %d evictions \
     (%d cost-aware), %d rejected, %d entries, %d / %d bytes, %d lock waits"
    s.hits lookups (100.0 *. rate) s.fast_hits s.insertions s.evictions
    s.cost_evictions s.rejected s.entries s.bytes s.budget s.lock_waits

type policy = Lru_only | Cost_aware

let policy_to_string = function Lru_only -> "lru" | Cost_aware -> "cost-aware"

(* Cost-aware eviction scans at most this many entries from the cold end
   of a shard's recency list and evicts the one with the lowest
   cost-per-byte — a bounded GreedyDual: recency still dominates (only the
   cold tail is eligible), cost breaks the tie inside the window. *)
let cost_scan_window = 8

module type S = sig
  type key
  type 'v t

  val create :
    name:string ->
    ?shards:int ->
    ?policy:policy ->
    ?fast_path:bool ->
    ?rebalance_every:int ->
    ?validate:(unit -> int) ->
    ?check_equal:('v -> 'v -> bool) ->
    budget:int ->
    unit ->
    'v t

  val find : ?sanitize:bool -> 'v t -> key -> 'v option
  val find_fast : 'v t -> key -> 'v option
  val mem : 'v t -> key -> bool
  val add : 'v t -> key -> weight:int -> ?cost:int -> ?epoch:int -> 'v -> unit
  val remove : 'v t -> key -> unit
  val clear : 'v t -> unit
  val stats : 'v t -> stats
  val shard_count : 'v t -> int
  val shard_of : 'v t -> key -> int
  val shard_stats : 'v t -> stats array
  val iter_coldest_first : 'v t -> (key -> 'v -> unit) -> unit
end

module Make (K : Hashtbl.HashedType) : S with type key = K.t = struct
  type key = K.t

  module H = Hashtbl.Make (K)
  module IM = Map.Make (Int)

  (* Doubly-linked recency list: [first] is coldest (next eviction victim),
     [last] is hottest. *)
  type 'v node = {
    nkey : key;
    mutable nvalue : 'v;
    mutable nweight : int;
    mutable ncost : int;
    mutable prev : 'v node option;
    mutable next : 'v node option;
  }

  (* Lock-free read image of one shard: full hash -> bucket of resident
     entries, each stamped with the epoch it was admitted under. Writers
     rebuild the persistent map under the shard lock and publish it with a
     single [Atomic.set]; readers dereference whatever snapshot is current
     without taking any lock — the map itself is immutable. *)
  type 'v image = (key * 'v * int) list IM.t

  type 'v shard = {
    (* One lock per shard: misses and mutations serialize only against
       operations on the same shard. *)
    lock : Mutex.t;
    (* RX5xx access-log identities: every locked operation records one
       Write at [al_site] while holding [al_lock], so the race detector
       sees each shard as its own mutex-guarded shared site. Both are -1
       when the log was disarmed at construction. *)
    al_site : int;
    al_lock : int;
    table : 'v node H.t;
    mutable budget : int;
    mutable first : 'v node option;
    mutable last : 'v node option;
    mutable bytes : int;
    mutable hits : int;
    mutable misses : int;
    mutable insertions : int;
    mutable evictions : int;
    mutable cost_evictions : int;
    mutable rejected : int;
    mutable last_ins : int;
    image : 'v image Atomic.t;
    waits : int Atomic.t;
    fast : int Atomic.t;
  }

  type 'v t = {
    shards : 'v shard array;
    shard_shift : int;
    total_budget : int;
    policy : policy;
    fast_path : bool;
    rebalance_every : int;
    validate : (unit -> int) option;
    check_equal : ('v -> 'v -> bool) option;
    insert_seq : int Atomic.t;
  }

  let create ~name ?(shards = 1) ?(policy = Lru_only) ?(fast_path = true)
      ?(rebalance_every = 1024) ?validate ?check_equal ~budget () =
    if shards < 1 || shards land (shards - 1) <> 0 then
      invalid_arg
        (Printf.sprintf "Lru.create: shard count %d is not a power of two" shards);
    let armed = Rox_util.Accesslog.armed () in
    let log2 =
      let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
      go shards 0
    in
    let mk_shard i =
      let label = if shards = 1 then name else Printf.sprintf "%s.shard%d" name i in
      {
        lock = Mutex.create ();
        al_site =
          (if armed then Rox_util.Accesslog.site ~name:label Rox_util.Accesslog.Shared
           else -1);
        al_lock =
          (if armed then Rox_util.Accesslog.lock ~name:(label ^ ".mutex") else -1);
        table = H.create 64;
        budget = (if budget <= 0 then 0 else budget / shards);
        first = None;
        last = None;
        bytes = 0;
        hits = 0;
        misses = 0;
        insertions = 0;
        evictions = 0;
        cost_evictions = 0;
        rejected = 0;
        last_ins = 0;
        image = Atomic.make IM.empty;
        waits = Atomic.make 0;
        fast = Atomic.make 0;
      }
    in
    {
      shards = Array.init shards mk_shard;
      shard_shift = 30 - log2;
      total_budget = max 0 budget;
      policy;
      fast_path;
      rebalance_every;
      validate;
      check_equal;
      insert_seq = Atomic.make 0;
    }

  (* Shard by the *top* bits of the 30-bit hash: Fingerprint-backed keys
     put their 2xFNV-1a digest bits there (see Fingerprint.shard_hash),
     and the in-shard hashtable consumes the low bits, so the two uses
     draw on independent digest bits. *)
  let shard_index t k =
    let n = Array.length t.shards in
    if n = 1 then 0 else (K.hash k lsr t.shard_shift) land (n - 1)

  let shard t k = t.shards.(shard_index t k)

  let bracketed s f =
    if Rox_util.Accesslog.armed () then
      Rox_util.Accesslog.with_lock s.al_lock (fun () ->
          Rox_util.Accesslog.record ~site:s.al_site Rox_util.Accesslog.Write;
          f ())
    else f ()

  let locked s f = Mutex.protect s.lock (fun () -> bracketed s f)

  let try_locked s f =
    if not (Mutex.try_lock s.lock) then None
    else
      Fun.protect
        ~finally:(fun () -> Mutex.unlock s.lock)
        (fun () -> Some (bracketed s f))

  (* ---- recency list (all under the shard lock) ---- *)

  let unlink s n =
    (match n.prev with Some p -> p.next <- n.next | None -> s.first <- n.next);
    (match n.next with Some x -> x.prev <- n.prev | None -> s.last <- n.prev);
    n.prev <- None;
    n.next <- None

  let push_hottest s n =
    n.prev <- s.last;
    n.next <- None;
    (match s.last with Some l -> l.next <- Some n | None -> s.first <- Some n);
    s.last <- Some n

  let is_hottest s n = match s.last with Some l -> l == n | None -> false

  let touch s n =
    if not (is_hottest s n) then begin
      unlink s n;
      push_hottest s n
    end

  (* ---- published read image (writers hold the shard lock) ---- *)

  let image_put s k v ep =
    let h = K.hash k in
    let m = Atomic.get s.image in
    let bucket = match IM.find_opt h m with Some b -> b | None -> [] in
    let bucket =
      (k, v, ep) :: List.filter (fun (k', _, _) -> not (K.equal k' k)) bucket
    in
    Atomic.set s.image (IM.add h bucket m)

  let image_del s k =
    let h = K.hash k in
    let m = Atomic.get s.image in
    match IM.find_opt h m with
    | None -> ()
    | Some bucket ->
      (match List.filter (fun (k', _, _) -> not (K.equal k' k)) bucket with
       | [] -> Atomic.set s.image (IM.remove h m)
       | bucket -> Atomic.set s.image (IM.add h bucket m))

  let image_find s k =
    match IM.find_opt (K.hash k) (Atomic.get s.image) with
    | None -> None
    | Some bucket ->
      List.find_map
        (fun (k', v, ep) -> if K.equal k' k then Some (v, ep) else None)
        bucket

  let epoch_ok t ep =
    match t.validate with None -> true | Some current -> current () = ep

  (* ---- core ops ---- *)

  let find_locked s k =
    match H.find_opt s.table k with
    | Some n ->
      s.hits <- s.hits + 1;
      touch s n;
      Some n.nvalue
    | None ->
      s.misses <- s.misses + 1;
      None

  let find ?(sanitize = false) t k =
    let s = shard t k in
    match try_locked s (fun () -> find_locked s k) with
    | Some r -> r
    | None ->
      (* The shard lock is busy: a hit can be served lock-free from the
         published image, provided the entry's epoch stamp still matches
         the engine. Misses (and disabled fast path) block like any
         mutation would. *)
      Atomic.incr s.waits;
      let speculative =
        if t.fast_path then
          match image_find s k with
          | Some (v, ep) when epoch_ok t ep -> Some v
          | _ -> None
        else None
      in
      (match speculative with
       | Some v when not sanitize ->
         Atomic.incr s.fast;
         Some v
       | Some v ->
         (* ROX_SANITIZE: replay through the single-lock reference path
            and insist the lock-free hit is the same result (RX308). An
            entry evicted between the image read and lock acquisition is
            not a violation — the reference answer wins either way. *)
         let reference = locked s (fun () -> find_locked s k) in
         (match reference with
          | Some v' ->
            let eq =
              match t.check_equal with
              | Some eq -> eq
              | None -> fun a b -> a == b
            in
            if not (eq v v') then
              Rox_algebra.Sanitize.fail ~op:"Lru.find(fast-path)"
                ~contract:Rox_algebra.Sanitize.Shard_consistent
                "lock-free hit differs from the locked reference entry"
          | None -> ());
         reference
       | None -> locked s (fun () -> find_locked s k))

  let find_fast t k =
    let s = shard t k in
    match image_find s k with
    | Some (v, ep) when epoch_ok t ep ->
      Atomic.incr s.fast;
      Some v
    | _ -> None

  let mem t k =
    let s = shard t k in
    locked s (fun () -> H.mem s.table k)

  let drop s n =
    unlink s n;
    H.remove s.table n.nkey;
    image_del s n.nkey;
    s.bytes <- s.bytes - n.nweight

  let victim_score n = float_of_int n.ncost /. float_of_int (max 1 n.nweight)

  let pick_victim t s =
    match s.first with
    | None -> None
    | Some coldest ->
      (match t.policy with
       | Lru_only -> Some coldest
       | Cost_aware ->
         let best = ref coldest and best_score = ref (victim_score coldest) in
         let cur = ref coldest.next and scanned = ref 1 in
         let continue = ref true in
         while !continue && !scanned < cost_scan_window do
           (match !cur with
            | Some n ->
              let sc = victim_score n in
              if sc < !best_score then begin
                best := n;
                best_score := sc
              end;
              cur := n.next;
              incr scanned
            | None -> continue := false)
         done;
         Some !best)

  let evict_to_budget t s =
    while s.bytes > s.budget do
      match pick_victim t s with
      | Some victim ->
        (match s.first with
         | Some coldest when not (coldest == victim) ->
           s.cost_evictions <- s.cost_evictions + 1
         | _ -> ());
        drop s victim;
        s.evictions <- s.evictions + 1
      | None -> assert false (* bytes > 0 implies a resident entry *)
    done

  (* Cheap budget rebalance: every [rebalance_every] insertions (across
     all shards) redistribute the byte budget proportionally to each
     shard's insertion demand since the last rebalance, with a floor of a
     quarter-share so a cold shard is never starved. One shard lock at a
     time, never nested — rebalance cannot deadlock against operations. *)
  let rebalance t =
    let n = Array.length t.shards in
    let demand = Array.make n 1 in
    Array.iteri
      (fun i s ->
        locked s (fun () ->
            demand.(i) <- 1 + s.insertions - s.last_ins;
            s.last_ins <- s.insertions))
      t.shards;
    let total_demand = Array.fold_left ( + ) 0 demand in
    let floor_b = t.total_budget / (4 * n) in
    let spread = t.total_budget - (n * floor_b) in
    Array.iteri
      (fun i s ->
        let b = floor_b + (spread * demand.(i) / total_demand) in
        locked s (fun () ->
            s.budget <- b;
            evict_to_budget t s))
      t.shards

  let maybe_rebalance t =
    if t.rebalance_every > 0 && Array.length t.shards > 1 && t.total_budget > 0
    then begin
      let tick = Atomic.fetch_and_add t.insert_seq 1 + 1 in
      if tick mod t.rebalance_every = 0 then rebalance t
    end

  let add t k ~weight ?(cost = 0) ?epoch v =
    if weight < 0 then
      invalid_arg (Printf.sprintf "Lru.add: negative weight %d" weight);
    let s = shard t k in
    locked s (fun () ->
        if s.budget <= 0 || weight > s.budget then begin
          (* Too large to ever fit this shard: admitting it would just
             flush the shard. *)
          (match H.find_opt s.table k with Some n -> drop s n | None -> ());
          s.rejected <- s.rejected + 1
        end
        else begin
          let ep =
            match epoch with
            | Some e -> e
            | None -> (match t.validate with Some f -> f () | None -> 0)
          in
          (match H.find_opt s.table k with
           | Some n ->
             s.bytes <- s.bytes - n.nweight + weight;
             n.nvalue <- v;
             n.nweight <- weight;
             n.ncost <- max cost 0;
             touch s n
           | None ->
             let n =
               {
                 nkey = k;
                 nvalue = v;
                 nweight = weight;
                 ncost = max cost 0;
                 prev = None;
                 next = None;
               }
             in
             H.replace s.table k n;
             push_hottest s n;
             s.bytes <- s.bytes + weight);
          image_put s k v ep;
          s.insertions <- s.insertions + 1;
          evict_to_budget t s
        end);
    maybe_rebalance t

  let remove t k =
    let s = shard t k in
    locked s (fun () ->
        match H.find_opt s.table k with Some n -> drop s n | None -> ())

  let clear t =
    Array.iter
      (fun s ->
        locked s (fun () ->
            H.reset s.table;
            s.first <- None;
            s.last <- None;
            s.bytes <- 0;
            Atomic.set s.image IM.empty))
      t.shards

  let shard_stat s =
    locked s (fun () ->
        {
          hits = s.hits + Atomic.get s.fast;
          misses = s.misses;
          insertions = s.insertions;
          evictions = s.evictions;
          cost_evictions = s.cost_evictions;
          rejected = s.rejected;
          entries = H.length s.table;
          bytes = s.bytes;
          budget = s.budget;
          lock_waits = Atomic.get s.waits;
          fast_hits = Atomic.get s.fast;
        })

  (* Aggregation takes each shard lock in turn, never all at once: the
     result is a sum of per-shard snapshots, not one global atomic
     snapshot — fine for the monotonic counters it reports. *)
  let stats t =
    let acc =
      Array.fold_left
        (fun (a : stats) s ->
          let x = shard_stat s in
          {
            hits = a.hits + x.hits;
            misses = a.misses + x.misses;
            insertions = a.insertions + x.insertions;
            evictions = a.evictions + x.evictions;
            cost_evictions = a.cost_evictions + x.cost_evictions;
            rejected = a.rejected + x.rejected;
            entries = a.entries + x.entries;
            bytes = a.bytes + x.bytes;
            budget = a.budget;
            lock_waits = a.lock_waits + x.lock_waits;
            fast_hits = a.fast_hits + x.fast_hits;
          })
        {
          hits = 0;
          misses = 0;
          insertions = 0;
          evictions = 0;
          cost_evictions = 0;
          rejected = 0;
          entries = 0;
          bytes = 0;
          budget = t.total_budget;
          lock_waits = 0;
          fast_hits = 0;
        }
        t.shards
    in
    acc

  let shard_count t = Array.length t.shards
  let shard_of = shard_index
  let shard_stats t = Array.map shard_stat t.shards

  let iter_coldest_first t f =
    Array.iter
      (fun s ->
        locked s (fun () ->
            let rec go = function
              | None -> ()
              | Some n ->
                let next = n.next in
                f n.nkey n.nvalue;
                go next
            in
            go s.first))
      t.shards
end

(** Canonical cache keys for edge executions and chain-sample requests.

    A fingerprint identifies the *inputs* of a deterministic computation:
    the engine epoch (so document mutation retires every key in O(1) — see
    {!Rox_storage.Engine.epoch}), a small textual descriptor of the
    operation (edge kind, axis, endpoint annotations, document ids,
    cut-off limits …), and the identities of the node-set inputs. Node
    sets are identified by content: length plus two independently seeded
    64-bit FNV-1a hashes, i.e. 128 effective bits — collisions are
    negligible, and the [ROX_SANITIZE] cross-check (see DESIGN.md) guards
    the remaining probability during debugging runs.

    Callers that own richer types (edges, vertices) render them to
    descriptor strings; this module only owns the hashing and the key
    grammar, so it sits below the join-graph layer. *)

type t = string
(** Printable, hashable key. *)

val hash64 : seed:int64 -> int array -> int64
(** FNV-1a over the array's length and elements. *)

val table : int array -> string
(** Content identity of a node set: ["<len>.<h1>.<h2>"]. *)

val option_table : int array option -> string
(** [table] of the array, or a distinguished token for [None] (an input
    served by the vertex's index domain rather than a materialized table —
    stable within an epoch). *)

val column : Rox_util.Column.t -> string
(** Content identity of a column — equal to [table] of the same values,
    computed without copying the view. *)

val option_column : Rox_util.Column.t option -> string

val make : epoch:int -> string list -> t
(** Join the descriptor parts under the epoch: ["e<epoch>|p1|p2|..."].
    Parts must not contain ['|'] (enforced nowhere hot; keep descriptors
    to the label alphabet). *)

val string_hash64 : seed:int64 -> string -> int64
(** FNV-1a over a string's bytes (no length prefix — keys are
    self-delimiting). *)

val shard_hash : string -> int
(** The high 30 bits of the XOR of the two seeded 64-bit digests of the
    key's bytes, as a non-negative [int] in [\[0, 2^30)]. The sharded
    {!Lru} takes its shard index from the *top* bits of this value and
    feeds the rest to the in-shard hashtable, so both uses see
    independent digest bits. *)

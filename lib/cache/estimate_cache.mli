(** Cross-query cache of cut-off sampled executions.

    ROX re-derives edge weights and chain segments by sampled execution
    again and again — across chain rounds, after every re-weighing, and
    from scratch for every query. The sampled operator
    [Rox_joingraph.Exec.sampled] is a pure function of (edge shape, outer
    sample, inner table, cut-off limit), so its {!Rox_algebra.Cutoff.t}
    result — estimate, sampled output, consumed fraction — can be replayed
    from cache whenever the same request recurs on the same engine epoch.

    The cached [out] array must be treated as immutable by consumers. *)

type t

val create :
  ?shards:int ->
  ?policy:Lru.policy ->
  ?fast_path:bool ->
  ?rebalance_every:int ->
  ?validate:(unit -> int) ->
  budget:int ->
  unit ->
  t

val find : ?sanitize:bool -> t -> Fingerprint.t -> Rox_algebra.Cutoff.t option
val add : ?cost:int -> t -> Fingerprint.t -> Rox_algebra.Cutoff.t -> unit
(** [cost] is the measured sampled-execution time (ns) — the input to
    cost-aware eviction. *)

val weight : Rox_algebra.Cutoff.t -> int
val stats : t -> Lru.stats
val shard_stats : t -> Lru.stats array
val clear : t -> unit

type t = string

let fnv_prime = 0x100000001b3L

let hash64 ~seed a =
  let h = ref seed in
  let mix x = h := Int64.mul (Int64.logxor !h (Int64.of_int x)) fnv_prime in
  mix (Array.length a);
  Array.iter mix a;
  !h

(* Two independent streams: the offset-basis of FNV-1a and an arbitrary
   odd second seed. *)
let seed1 = 0xcbf29ce484222325L
let seed2 = 0x9e3779b97f4a7c15L

let table a =
  Printf.sprintf "%d.%Lx.%Lx" (Array.length a) (hash64 ~seed:seed1 a)
    (hash64 ~seed:seed2 a)

let option_table = function
  | Some a -> table a
  | None -> "domain"

(* Hash a column without copying its view; content-identical to [table]
   of the same values, so row-major and columnar producers agree. *)
let column_hash64 ~seed c =
  let h = ref seed in
  let mix x = h := Int64.mul (Int64.logxor !h (Int64.of_int x)) fnv_prime in
  mix (Rox_util.Column.length c);
  Rox_util.Column.iter mix c;
  !h

let column c =
  Printf.sprintf "%d.%Lx.%Lx" (Rox_util.Column.length c)
    (column_hash64 ~seed:seed1 c) (column_hash64 ~seed:seed2 c)

let option_column = function
  | Some c -> column c
  | None -> "domain"

let make ~epoch parts = Printf.sprintf "e%d|%s" epoch (String.concat "|" parts)

(* The same two FNV-1a streams over a key's *bytes* — used to place keys
   on cache shards. [Hashtbl.hash] only mixes a string prefix, which would
   send every "e<epoch>|axis..." key family to a handful of shards. *)
let string_hash64 ~seed s =
  let h = ref seed in
  for i = 0 to String.length s - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code (String.unsafe_get s i)))) fnv_prime
  done;
  !h

let shard_hash s =
  let h =
    Int64.logxor (string_hash64 ~seed:seed1 s) (string_hash64 ~seed:seed2 s)
  in
  (* High 30 bits, as a non-negative int: shard selection peels bits from
     the top of this value, the in-shard hashtable from the bottom. *)
  Int64.to_int (Int64.shift_right_logical h 34)

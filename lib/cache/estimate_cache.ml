module L = Lru.Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)

type t = Rox_algebra.Cutoff.t L.t

let create ~budget = L.create ~name:"cache.estimates" ~budget
let find t k = L.find t k

let weight (c : Rox_algebra.Cutoff.t) =
  (8 * Array.length c.Rox_algebra.Cutoff.out) + 160

let add t k v = L.add t k ~weight:(weight v) v
let stats = L.stats
let clear = L.clear

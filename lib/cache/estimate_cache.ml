module L = Lru.Make (struct
  type t = string

  let equal = String.equal
  let hash = Fingerprint.shard_hash
end)

type t = Rox_algebra.Cutoff.t L.t

(* Cutoff.t is plain data (estimate, out array, consumed flag), so
   structural equality is the bit-identity the RX308 cross-check wants. *)
let cutoff_equal (a : Rox_algebra.Cutoff.t) (b : Rox_algebra.Cutoff.t) =
  a == b || a = b

let create ?shards ?policy ?fast_path ?rebalance_every ?validate ~budget () =
  L.create ~name:"cache.estimates" ?shards ?policy ?fast_path ?rebalance_every
    ?validate ~check_equal:cutoff_equal ~budget ()

let find ?sanitize t k = L.find ?sanitize t k

let weight (c : Rox_algebra.Cutoff.t) =
  (8 * Array.length c.Rox_algebra.Cutoff.out) + 160

let add ?cost t k v = L.add t k ~weight:(weight v) ?cost v
let stats = L.stats
let shard_stats = L.shard_stats
let clear = L.clear

(** The per-engine cache bundle handed through the execution stack.

    One store pairs a {!Relation_cache} (materialized edge executions,
    consulted by [Rox_joingraph.Runtime.execute_edge]) and an
    {!Estimate_cache} (cut-off sample results, consulted by the
    optimizer's weighing and chain exploration) with the
    {!Rox_storage.Engine} whose documents both describe. Fingerprints are
    scoped by {!Rox_storage.Engine.epoch}, so keys minted before a
    document registration (or an explicit
    {!Rox_storage.Engine.bump_epoch}) can never hit again — invalidation
    is one integer increment; the dead entries age out of the LRU under
    normal insertion pressure. The same epoch also validates the sharded
    caches' lock-free read fast path ({!Lru}): a hit whose stored epoch
    stamp disagrees with the engine is never served without the lock.

    A store is deliberately *external* to any single query run: create it
    once next to the engine and pass it to every optimizer invocation to
    get cross-query reuse. Both member caches are sharded ([shards]
    power-of-two slices, each with its own mutex), so concurrent sessions
    on separate domains contend only when they touch the same shard. *)

type t

val default_shards : int
(** Shards per member cache when unspecified (4). *)

val create :
  ?relation_budget:int ->
  ?estimate_budget:int ->
  ?shards:int ->
  ?policy:Lru.policy ->
  ?fast_path:bool ->
  ?rebalance_every:int ->
  Rox_storage.Engine.t ->
  t
(** Budgets in bytes; both default to 16 MiB. [shards]/[policy]/
    [fast_path]/[rebalance_every] configure both member caches (see
    {!Lru.S.create}); epoch validation is wired to the engine. *)

val of_megabytes :
  ?shards:int -> ?policy:Lru.policy -> ?fast_path:bool ->
  Rox_storage.Engine.t -> int -> t
(** The CLI's [--cache-mb n]: 3/4 of the budget to relations, 1/4 to
    estimates. [n <= 0] yields a store that caches nothing. *)

val engine : t -> Rox_storage.Engine.t
val epoch : t -> int
(** The engine's current epoch — the scope of every key minted now. *)

val relations : t -> Relation_cache.t
val estimates : t -> Estimate_cache.t

type stats = {
  relations : Lru.stats;
  estimates : Lru.stats;
}

val stats : t -> stats
val shard_stats : t -> Lru.stats array * Lru.stats array
(** Per-shard snapshots of (relations, estimates) — the serving STATS
    surface. *)

val stats_to_string : stats -> string

val observe_into : t -> Rox_telemetry.Metrics.t -> unit
(** Record the store's current residency (relation + estimate bytes,
    summed across every shard) into the registry's [cache_resident_bytes]
    gauge, and the accumulated shard-lock contention into
    [cache_shard_lock_waits]. Call at export time — gauges are
    point-in-time observations, not counters. *)

val clear : t -> unit

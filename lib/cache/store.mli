(** The per-engine cache bundle handed through the execution stack.

    One store pairs a {!Relation_cache} (materialized edge executions,
    consulted by [Rox_joingraph.Runtime.execute_edge]) and an
    {!Estimate_cache} (cut-off sample results, consulted by the
    optimizer's weighing and chain exploration) with the
    {!Rox_storage.Engine} whose documents both describe. Fingerprints are
    scoped by {!Rox_storage.Engine.epoch}, so keys minted before a
    document registration (or an explicit
    {!Rox_storage.Engine.bump_epoch}) can never hit again — invalidation
    is one integer increment; the dead entries age out of the LRU under
    normal insertion pressure.

    A store is deliberately *external* to any single query run: create it
    once next to the engine and pass it to every optimizer invocation to
    get cross-query reuse. *)

type t

val create : ?relation_budget:int -> ?estimate_budget:int -> Rox_storage.Engine.t -> t
(** Budgets in bytes; both default to 16 MiB. *)

val of_megabytes : Rox_storage.Engine.t -> int -> t
(** The CLI's [--cache-mb n]: 3/4 of the budget to relations, 1/4 to
    estimates. [n <= 0] yields a store that caches nothing. *)

val engine : t -> Rox_storage.Engine.t
val epoch : t -> int
(** The engine's current epoch — the scope of every key minted now. *)

val relations : t -> Relation_cache.t
val estimates : t -> Estimate_cache.t

type stats = {
  relations : Lru.stats;
  estimates : Lru.stats;
}

val stats : t -> stats
val stats_to_string : stats -> string

val observe_into : t -> Rox_telemetry.Metrics.t -> unit
(** Record the store's current residency (relation + estimate bytes) into
    the registry's [cache_resident_bytes] gauge. Call at export time — the
    gauge is a point-in-time observation, not a counter. *)

val clear : t -> unit

(** Mid-query re-optimization baseline (Section 5's [24, 25]: Kabra &
    DeWitt's re-optimization, Markl et al.'s progressive optimization).

    A synopsis-driven static plan executes edge by edge; after every edge
    the observed cardinality is compared against the optimizer's
    prediction, and when it falls outside the validity range
    [predicted/f, predicted·f], the remainder of the plan is re-planned
    with the observed table sizes as corrected statistics.

    This is the strongest classical contender the paper discusses — it
    reacts to mis-estimates, but only *after* paying for them, and its
    re-planning still assumes independence. ROX's continuous sampling
    avoids both weaknesses; the benchmark harness compares the three. *)

open Rox_joingraph

val synopsis_order : Rox_storage.Engine.t -> Graph.t -> Edge.t list
(** Static greedy plan from per-document synopses: exact base counts,
    estimated step fan-outs under independence, smallest-input-first for
    cross-document equi-joins. *)

type run = {
  relation : Relation.t;
  edge_order : int list;
  replans : int;              (** how many times the validity check fired *)
  counter : Rox_algebra.Cost.counter;
}

val execute :
  ?validity_factor:float ->
  Rox_core.Session.t ->
  Rox_storage.Engine.t ->
  Graph.t ->
  run
(** Execute with re-optimization; [validity_factor] defaults to 5.0.
    Planning and re-planning are uncharged (the paper's convention:
    optimizer time is not operator work); every executed operator is
    charged to the session counter's execution bucket. The run is
    session-confined — max_rows, sanitize mode, cache and deadline all
    come from the session. *)

val answer :
  ?validity_factor:float ->
  Rox_core.Session.t ->
  Rox_xquery.Compile.compiled ->
  int array * run

val answer_default : Rox_xquery.Compile.compiled -> int array * run
(** Thin wrapper: a fresh default session per call. *)

(** Fixed-plan executor.

    Executes a Join Graph in a *given* edge order through the very same
    {!Rox_joingraph.Runtime} machinery as ROX — same operators, same cost
    accounting — but with no sampling and no adaptation. This is the
    workhorse behind every non-ROX plan class of Figures 5–7 (smallest,
    largest, classical, and the canonical step placements of the ROX join
    order).

    Runs under the same {!Rox_core.Session} type as the optimizer: the
    session supplies the counter, the max-rows guard, the sanitize mode
    and the cache handle, and the whole run is session-confined with the
    deadline checked per edge. *)

type run = {
  relation : Rox_joingraph.Relation.t;
  edge_rows : (int * int) list;
      (** (edge id, component rows after execution), in execution order. *)
  counter : Rox_algebra.Cost.counter;
      (** the session's counter — every operator charged to its execution
          bucket. *)
  cumulative_rows : int;  (** Σ component rows over all executed edges. *)
  join_rows : int;
      (** Σ component rows over equi-join edges only — the "cumulative
          (intermediate) join result cardinality" of Figure 5. *)
}

exception Plan_error of string
(** The order misses an edge or repeats one. *)

val execute :
  Rox_core.Session.t ->
  Rox_storage.Engine.t ->
  Rox_joingraph.Graph.t ->
  Rox_joingraph.Edge.t list ->
  run
(** The order must cover every non-trivial edge exactly once (trivial
    root-descendant edges may be included; they are skipped).
    @raise Plan_error on malformed orders.
    @raise Rox_joingraph.Runtime.Blowup when materialization explodes.
    @raise Rox_algebra.Cost.Budget_exceeded past the session deadline. *)

val answer :
  Rox_core.Session.t ->
  Rox_xquery.Compile.compiled ->
  Rox_joingraph.Edge.t list ->
  int array * run
(** Execute and apply the query tail. *)

val execute_default :
  Rox_storage.Engine.t ->
  Rox_joingraph.Graph.t ->
  Rox_joingraph.Edge.t list ->
  run
(** Thin wrapper: a fresh default session per call. *)

val answer_default :
  Rox_xquery.Compile.compiled -> Rox_joingraph.Edge.t list -> int array * run

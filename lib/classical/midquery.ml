open Rox_storage
open Rox_algebra
open Rox_joingraph
open Rox_core

(* Per-document synopses, built once per engine. *)
let synopses engine =
  Array.init (Engine.doc_count engine) (fun i -> Synopsis.build (Engine.get engine i))

(* Estimated cardinality of an edge's result given current per-vertex
   estimates, under independence. Cross-document equi-joins are not
   estimable from per-document synopses: rank them smallest-input-first
   behind every estimable operator. *)
let edge_estimate synopses graph est (e : Edge.t) =
  let v1 = Graph.vertex graph e.Edge.v1 in
  let v2 = Graph.vertex graph e.Edge.v2 in
  match e.Edge.op with
  | Edge.Step axis when v1.Vertex.doc_id = v2.Vertex.doc_id ->
    let syn = synopses.(v1.Vertex.doc_id) in
    `Estimated
      (Synopsis.estimate_step syn ~context_card:est.(e.Edge.v1) ~context:v1.Vertex.annot
         ~axis ~target:v2.Vertex.annot)
  | Edge.Step _ -> `Estimated (est.(e.Edge.v1) *. est.(e.Edge.v2))
  | Edge.Equijoin ->
    if v1.Vertex.doc_id = v2.Vertex.doc_id then
      (* Same-document value join: assume a modest hit ratio. *)
      `Estimated (min est.(e.Edge.v1) est.(e.Edge.v2))
    else `Unknown (est.(e.Edge.v1) +. est.(e.Edge.v2))

(* Greedy connected plan over [edges], starting from the given per-vertex
   estimates; returns the order and the per-edge predictions. *)
let greedy_plan synopses engine graph est edges =
  let est = Array.copy est in
  ignore engine;
  let covered = Hashtbl.create 16 in
  let order = ref [] in
  let remaining = ref edges in
  while !remaining <> [] do
    let touches (e : Edge.t) =
      Hashtbl.length covered = 0 || Hashtbl.mem covered e.Edge.v1 || Hashtbl.mem covered e.Edge.v2
    in
    let eligible =
      match List.filter touches !remaining with [] -> !remaining | l -> l
    in
    let score e =
      match edge_estimate synopses graph est e with
      | `Estimated c -> c
      | `Unknown rank -> 1e12 +. rank
    in
    let best =
      List.fold_left
        (fun acc e ->
          match acc with
          | Some (_, bs) when bs <= score e -> acc
          | _ -> Some (e, score e))
        None eligible
    in
    match best with
    | None -> remaining := []
    | Some (e, s) ->
      let predicted = if s >= 1e12 then s -. 1e12 else s in
      order := (e, predicted) :: !order;
      Hashtbl.replace covered e.Edge.v1 ();
      Hashtbl.replace covered e.Edge.v2 ();
      (* Independence update: the result bounds both endpoint estimates. *)
      est.(e.Edge.v1) <- max 1.0 (min est.(e.Edge.v1) predicted);
      est.(e.Edge.v2) <- max 1.0 (min est.(e.Edge.v2) predicted);
      remaining := List.filter (fun e' -> e'.Edge.id <> e.Edge.id) !remaining
  done;
  List.rev !order

let base_estimates engine graph =
  Array.map
    (fun (v : Vertex.t) -> float_of_int (Exec.vertex_domain_count engine v))
    (Graph.vertices graph)

let plannable_edges runtime =
  Runtime.unexecuted_edges runtime

let synopsis_order engine graph =
  let syn = synopses engine in
  let runtime = Runtime.create engine graph in
  let plan = greedy_plan syn engine graph (base_estimates engine graph) (plannable_edges runtime) in
  List.map fst plan

type run = {
  relation : Relation.t;
  edge_order : int list;
  replans : int;
  counter : Cost.counter;
}

let execute ?(validity_factor = 5.0) session engine graph =
  Session.confine session (fun () ->
  let syn = synopses engine in
  let runtime =
    Runtime.create ~config:(Session.runtime_config session) engine graph
  in
  let counter = Session.counter session in
  let meter = Cost.execution_meter counter in
  let replans = ref 0 in
  let executed_order = ref [] in
  (* Current per-vertex statistics: base counts, overridden by observed
     table sizes as execution proceeds. *)
  let current_estimates () =
    Array.mapi
      (fun i base ->
        match Runtime.table runtime i with
        | Some t -> float_of_int (Rox_util.Column.length t)
        | None -> base)
      (base_estimates engine graph)
  in
  let rec drive plan =
    match plan with
    | [] ->
      (match plannable_edges runtime with
       | [] -> ()
       | rest -> drive (greedy_plan syn engine graph (current_estimates ()) rest))
    | (e, predicted) :: rest ->
      if Runtime.executed runtime e then drive rest
      else begin
        Session.check_deadline session;
        let info = Runtime.execute_edge ~meter runtime e in
        executed_order := e.Edge.id :: !executed_order;
        let observed = float_of_int info.Runtime.rel_rows in
        let invalid =
          predicted > 0.0
          && (observed > predicted *. validity_factor
             || observed < predicted /. validity_factor)
        in
        if invalid && plannable_edges runtime <> [] then begin
          (* Outside the validity range: re-plan the remainder with the
             observed statistics. *)
          incr replans;
          drive (greedy_plan syn engine graph (current_estimates ()) (plannable_edges runtime))
        end
        else drive rest
      end
  in
  drive (greedy_plan syn engine graph (base_estimates engine graph) (plannable_edges runtime));
  let relation = Runtime.final_relation ~meter runtime in
  { relation; edge_order = List.rev !executed_order; replans = !replans; counter })

let answer ?validity_factor session (compiled : Rox_xquery.Compile.compiled) =
  let run =
    execute ?validity_factor session compiled.Rox_xquery.Compile.engine
      compiled.Rox_xquery.Compile.graph
  in
  let nodes =
    Session.confine session (fun () ->
        Rox_xquery.Tail.apply ~sanitize:(Session.sanitize session)
          ~meter:(Cost.execution_meter run.counter)
          compiled.Rox_xquery.Compile.tail run.relation)
  in
  (nodes, run)

let answer_default compiled = answer (Session.create ()) compiled

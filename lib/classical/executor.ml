open Rox_algebra
open Rox_joingraph
open Rox_core

type run = {
  relation : Relation.t;
  edge_rows : (int * int) list;
  counter : Cost.counter;
  cumulative_rows : int;
  join_rows : int;
}

exception Plan_error of string

let execute session engine graph order =
  Session.confine session (fun () ->
      let runtime =
        Runtime.create ~config:(Session.runtime_config session) engine graph
      in
      let counter = Session.counter session in
      let meter = Cost.execution_meter counter in
      let rows = ref [] in
      List.iter
        (fun (e : Edge.t) ->
          if not (Runtime.executed runtime e) then begin
            Session.check_deadline session;
            let info = Runtime.execute_edge ~meter runtime e in
            rows := (e.Edge.id, info.Runtime.rel_rows) :: !rows
          end
          else if not (Runtime.is_trivial_edge graph e || Runtime.implied runtime e) then
            raise (Plan_error (Printf.sprintf "edge %d appears twice in the plan" e.Edge.id)))
        order;
      if not (Runtime.all_executed runtime) then
        raise (Plan_error "plan does not cover all edges");
      let relation = Runtime.final_relation ~meter runtime in
      let edge_rows = List.rev !rows in
      let is_join id = match (Graph.edge graph id).Edge.op with Edge.Equijoin -> true | Edge.Step _ -> false in
      {
        relation;
        edge_rows;
        counter;
        cumulative_rows = List.fold_left (fun acc (_, r) -> acc + r) 0 edge_rows;
        join_rows =
          List.fold_left
            (fun acc (id, r) -> if is_join id then acc + r else acc)
            0 edge_rows;
      })

let answer session (compiled : Rox_xquery.Compile.compiled) order =
  let run =
    execute session compiled.Rox_xquery.Compile.engine
      compiled.Rox_xquery.Compile.graph order
  in
  let nodes =
    Session.confine session (fun () ->
        Rox_xquery.Tail.apply ~sanitize:(Session.sanitize session)
          ~meter:(Cost.execution_meter run.counter)
          compiled.Rox_xquery.Compile.tail run.relation)
  in
  (nodes, run)

let execute_default engine graph order =
  execute (Session.create ()) engine graph order

let answer_default compiled order = answer (Session.create ()) compiled order

open Rox_joingraph

let input_size engine graph (slot : Enumerate.slot) =
  (* Run the document's step chain on a scratch runtime; no meter — the
     classical optimizer's planning statistics are free. *)
  let runtime = Runtime.create engine graph in
  List.iter
    (fun e -> ignore (Runtime.execute_edge runtime e : Runtime.exec_info))
    slot.Enumerate.step_edges;
  Rox_util.Column.length (Runtime.table_or_domain runtime slot.Enumerate.join_vertex)

let join_order engine graph (template : Enumerate.template) =
  let sized =
    Array.to_list template.Enumerate.slots
    |> List.map (fun slot -> (slot.Enumerate.doc_pos, input_size engine graph slot))
  in
  let sorted = List.sort (fun (_, a) (_, b) -> compare a b) sized in
  Enumerate.Linear (List.map fst sorted)

let static_order engine graph =
  (* Static estimate per edge: exact full-operator pair count for
     single-document edges (granted by the paper's premise), and a
     smallest-input rank for cross-document equi-joins. Estimates use base
     tables only: no intermediate-result feedback, hence blindness to
     correlations. *)
  let doc_of v = (Graph.vertex graph v).Vertex.doc_id in
  let domain v = Exec.vertex_domain engine (Graph.vertex graph v) in
  let score (e : Edge.t) =
    if doc_of e.Edge.v1 = doc_of e.Edge.v2 then begin
      let t1 = domain e.Edge.v1 and t2 = domain e.Edge.v2 in
      let pairs = Exec.full_pairs engine graph e ~t1 ~t2 in
      float_of_int (Exec.pair_count pairs)
    end
    else begin
      (* Unknowable cross-document cardinality: rank behind every
         single-document operator, smaller inputs first. *)
      let size v = Rox_util.Column.length (domain v) in
      1e12 +. float_of_int (size e.Edge.v1 + size e.Edge.v2)
    end
  in
  let pending =
    Array.to_list (Graph.edges graph)
    |> List.filter (fun e -> not (Runtime.is_trivial_edge graph e))
    |> List.map (fun e -> (e, score e))
  in
  (* Greedy connected expansion from the cheapest edge. *)
  let covered = Hashtbl.create 16 in
  let cover v = Hashtbl.replace covered v () in
  let touches_covered (e : Edge.t) =
    Hashtbl.mem covered e.Edge.v1 || Hashtbl.mem covered e.Edge.v2
  in
  let rec build pending acc =
    match pending with
    | [] -> List.rev acc
    | pending ->
      let eligible =
        match List.filter (fun (e, _) -> touches_covered e) pending with
        | [] -> pending (* start (or restart) a component *)
        | touching -> touching
      in
      let best =
        List.fold_left
          (fun acc (e, s) ->
            match acc with
            | Some (_, bs) when bs <= s -> acc
            | _ -> Some (e, s))
          None eligible
      in
      (match best with
       | None -> List.rev acc
       | Some (e, _) ->
         cover e.Edge.v1;
         cover e.Edge.v2;
         build (List.filter (fun (e', _) -> e'.Edge.id <> e.Edge.id) pending) (e :: acc))
  in
  build pending []

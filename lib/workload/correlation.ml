open Rox_storage
open Rox_shred

let author_multiset (r : Engine.docref) =
  let counts = Hashtbl.create 256 in
  let doc = r.Engine.doc in
  let authors = Element_index.lookup_name r.Engine.elements "author" in
  Rox_util.Column.iter
    (fun a ->
      (* The author element's text children. *)
      Array.iter
        (fun c ->
          match Doc.kind doc c with
          | Nodekind.Text ->
            let v = Doc.value_id doc c in
            Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
          | _ -> ())
        (Navigation.children doc a))
    authors;
  counts

let multiset_size counts = Hashtbl.fold (fun _ c acc -> acc + c) counts 0

let join_size a b =
  let small, large = if Hashtbl.length a <= Hashtbl.length b then (a, b) else (b, a) in
  Hashtbl.fold
    (fun v c acc ->
      match Hashtbl.find_opt large v with
      | Some c' -> acc + (c * c')
      | None -> acc)
    small 0

let pairwise_selectivity a b =
  let denom = max (multiset_size a) (multiset_size b) in
  if denom = 0 then 0.0 else float_of_int (join_size a b) *. 100.0 /. float_of_int denom

let all_pairs docs =
  let multisets = List.map author_multiset docs in
  let arr = Array.of_list multisets in
  let out = ref [] in
  for i = 0 to Array.length arr - 1 do
    for j = i + 1 to Array.length arr - 1 do
      out := (arr.(i), arr.(j)) :: !out
    done
  done;
  !out

let measure docs =
  let js = List.map (fun (a, b) -> pairwise_selectivity a b) (all_pairs docs) in
  Rox_util.Stats.variance (Array.of_list js)

let nonempty docs =
  List.for_all (fun (a, b) -> join_size a b > 0) (all_pairs docs)

let joint_size docs =
  match List.map author_multiset docs with
  | [] -> 0
  | first :: rest ->
    Hashtbl.fold
      (fun v c acc ->
        let product =
          List.fold_left
            (fun p m -> p * Option.value ~default:0 (Hashtbl.find_opt m v))
            c rest
        in
        acc + product)
      first 0

let nonempty_joint docs = joint_size docs > 0

(** DBLP-like dataset generator (Section 4.1, Table 3).

    Generates one XML document per journal / conference series — the 23
    "representative" venues of Table 3 across 5 research areas — with the
    correlation structure the experiments rely on: venues of the same
    research area draw their author occurrences from a shared per-area
    author pool (authors publish repeatedly within their area), so
    same-area documents have high pairwise author-join selectivity and
    cross-area documents low-but-nonzero selectivity (through dual-area
    venues and a small crossover probability).

    Scaling follows the paper: ×n replication of every article, suffixing
    author names and titles with the replica serial, which preserves the
    original distribution and correlation while multiplying counts by n.
    A [reduction] divisor keeps default runs laptop-sized; the Table 3
    author-tag counts are reproduced exactly when [reduction = 1].

    Each venue's content depends only on the master seed and the venue
    name, never on which other venues are loaded — experiments over
    document subsets stay consistent. *)

type area = AI | BI | DM | IR | DB

val area_name : area -> string

type venue = {
  name : string;
  areas : area list;     (** primary first; dual-area venues bridge areas *)
  author_tags : int;     (** Table 3 "# author tags × 1" *)
}

val venues : venue array
(** The 23 venues of Table 3, in table order. *)

val primary_area : venue -> area
val find_venue : string -> venue
(** @raise Not_found for unknown names. *)

type gen_params = {
  seed : int;
  scale : int;                      (** replication factor n (×1/×10/×100) *)
  reduction : int;                  (** divide Table-3 base tag counts *)
  avg_authors_per_article : float;
  crossover : float;                (** P[author drawn from a foreign area] *)
  secondary_area_fraction : float;  (** dual-area venues: P[secondary area] *)
  pool_divisor : float;             (** area pool = area base tags / divisor *)
}

val default_gen : gen_params
(** seed 2009, scale 1, reduction 10, ~2.4 authors/article, 10% crossover,
    30% secondary-area articles, pool divisor 3. *)

type loaded = {
  venue : venue;
  docref : Rox_storage.Engine.docref;
  author_tag_count : int;   (** actual author elements in the document *)
  byte_size : int;          (** compact serialized size *)
}

val load : ?params:gen_params -> Rox_storage.Engine.t -> venue list -> loaded list
(** Generate + register the documents (uri = name with spaces replaced by
    '_', plus ".xml"). *)

val load_all : ?params:gen_params -> Rox_storage.Engine.t -> loaded list

val uri_of : venue -> string

val venue_rng : gen_params -> venue -> Rox_util.Xoshiro.t
(** The stable per-venue xoshiro stream: a pure function of the master
    seed and the venue name, so content never depends on which other
    venues load. All venue randomness threads through this explicit
    state. *)

val emit_venue : params:gen_params -> ?rng:Rox_util.Xoshiro.t -> venue -> Sink.t -> int
(** Emit one venue document into a sink, returning its author-tag count.
    [rng] defaults to {!venue_rng}. *)

val query_for : string list -> string
(** The paper's 4-document XQuery template over the given uris (works for
    any k >= 2). *)

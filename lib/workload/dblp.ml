open Rox_util
open Rox_shred

type area = AI | BI | DM | IR | DB

let area_name = function
  | AI -> "AI"
  | BI -> "BI"
  | DM -> "DM"
  | IR -> "IR"
  | DB -> "DB"

type venue = {
  name : string;
  areas : area list;
  author_tags : int;
}

(* Table 3 of the paper, in table order. *)
let venues =
  [|
    { name = "Fuzzy Logic in AI"; areas = [ AI ]; author_tags = 62 };
    { name = "AI in Medicine"; areas = [ AI ]; author_tags = 2264 };
    { name = "AAAI"; areas = [ AI ]; author_tags = 6832 };
    { name = "CANS"; areas = [ AI; BI ]; author_tags = 214 };
    { name = "BMC Bioinform."; areas = [ BI ]; author_tags = 3547 };
    { name = "Bioinformatics"; areas = [ BI ]; author_tags = 15019 };
    { name = "BIOKDD"; areas = [ DM; BI ]; author_tags = 139 };
    { name = "MLDM"; areas = [ DM ]; author_tags = 575 };
    { name = "ICDM"; areas = [ DM ]; author_tags = 2205 };
    { name = "KDD"; areas = [ DM ]; author_tags = 3201 };
    { name = "WSDM"; areas = [ DM; IR ]; author_tags = 95 };
    { name = "INEX"; areas = [ IR ]; author_tags = 342 };
    { name = "SPIRE"; areas = [ IR ]; author_tags = 724 };
    { name = "TREC"; areas = [ IR ]; author_tags = 2541 };
    { name = "SIGIR"; areas = [ IR ]; author_tags = 4584 };
    { name = "ICME"; areas = [ IR ]; author_tags = 5757 };
    { name = "ICIP"; areas = [ IR ]; author_tags = 7935 };
    { name = "CIKM"; areas = [ DB; IR ]; author_tags = 3684 };
    { name = "ADBIS"; areas = [ DB ]; author_tags = 947 };
    { name = "EDBT"; areas = [ DB ]; author_tags = 1340 };
    { name = "SIGMOD"; areas = [ DB ]; author_tags = 5912 };
    { name = "ICDE"; areas = [ DB ]; author_tags = 6169 };
    { name = "VLDB"; areas = [ DB ]; author_tags = 6865 };
  |]

let primary_area v = List.hd v.areas

let find_venue name =
  match Array.find_opt (fun v -> v.name = name) venues with
  | Some v -> v
  | None -> raise Not_found

type gen_params = {
  seed : int;
  scale : int;
  reduction : int;
  avg_authors_per_article : float;
  crossover : float;
  secondary_area_fraction : float;
  pool_divisor : float;
}

let default_gen =
  {
    seed = 2009;
    scale = 1;
    reduction = 10;
    avg_authors_per_article = 2.4;
    crossover = 0.09;
    secondary_area_fraction = 0.3;
    pool_divisor = 3.0;
  }

let all_areas = [| AI; BI; DM; IR; DB |]

(* Area author-pool size: base tags of the area (dual-area venues count for
   their primary), divided by the average publications per author. *)
let pool_size params area =
  let base =
    Array.fold_left
      (fun acc v ->
        if primary_area v = area then acc + (v.author_tags / params.reduction) else acc)
      0 venues
  in
  max 25 (int_of_float (float_of_int base /. params.pool_divisor))

(* Core-pool skew with communities. 60% of the author occurrences come from
   the area's ~100 "core" prolific authors, the rest uniformly from the long
   tail. The core is split into [n_communities] sub-communities, and every
   venue has a primary community it favours: two venues of the same area
   join strongly when their communities align and several times more weakly
   when they do not — the heterogeneous correlation that makes the paper's
   smallest-input-first classical optimizer err (its Section 4.3 groups show
   "unexpectedly high correlation" even within one area). Crossover
   occurrences (an author publishing outside their area) are mostly tail
   authors, so cross-area joins stay rare-author coincidences, orders of
   magnitude smaller than aligned same-area joins (Figure 5's contrast).
   Per-author occurrence counts stay moderate, like real DBLP, so multi-way
   join results do not explode combinatorially. *)
let core_size = 80
let n_communities = 2
let community_size = core_size / n_communities

(* Core authors appear ~[target_core_count] times in every venue they
   publish in, regardless of venue size: a small venue simply involves
   fewer core authors (a prefix of its community, so that aligned venues
   of any size share their most prolific members). This mirrors real DBLP,
   where small parochial venues (ADBIS) are written by the same prolific
   community that fills ICDE/VLDB — which is exactly what the classical
   smallest-input-first heuristic cannot see. *)
let target_core_count = 10.0

let members_for ~core_prob base_tags =
  let mass = float_of_int base_tags *. core_prob *. 0.85 in
  max 3 (min community_size (int_of_float (mass /. target_core_count)))

let pick_author ?(core_prob = 0.7) ?members ?community rng params area =
  let n = max (core_size + 1) (pool_size params area) in
  let members = Option.value ~default:community_size members in
  let rank =
    if Xoshiro.float rng < core_prob then begin
      let comm =
        match community with
        | Some c when Xoshiro.float rng < 0.7 -> c
        | _ -> Xoshiro.int rng n_communities
      in
      (comm * community_size) + Xoshiro.int rng members
    end
    else core_size + Xoshiro.int rng (n - core_size)
  in
  Printf.sprintf "%s Author %d" (area_name area) rank

let uri_of v =
  String.map (fun c -> if c = ' ' then '_' else c) v.name ^ ".xml"

(* Stable per-venue seed: content must not depend on which subset loads. *)
let venue_seed master name =
  let h = Hashtbl.hash (master, name) in
  (h * 2654435761) land max_int

let venue_rng params (v : venue) = Xoshiro.create (venue_seed params.seed v.name)

let emit_venue ~params ?rng (v : venue) (sink : Sink.t) =
  let rng = match rng with Some r -> r | None -> venue_rng params v in
  let primary_community = Xoshiro.int rng n_communities in
  let base_tags = max 4 (v.author_tags / params.reduction) in
  let members = members_for ~core_prob:0.7 base_tags in
  let leaf tag content =
    sink.open_el tag;
    sink.text content;
    sink.close_el ()
  in
  sink.open_el "dblp";
  let emitted = ref 0 in
  let article = ref 0 in
  let author_count = ref 0 in
  while !emitted < base_tags do
    (* One base article: pick its area, then its authors. *)
    let area =
      match v.areas with
      | [ a ] -> a
      | a :: rest ->
        if Xoshiro.float rng < params.secondary_area_fraction && rest <> [] then List.hd rest
        else a
      | [] -> invalid_arg "Dblp: venue without area"
    in
    let n_authors =
      let avg = params.avg_authors_per_article in
      let n = 1 + Xoshiro.int rng (int_of_float (2.0 *. avg) - 1) in
      min n (base_tags - !emitted)
    in
    let authors =
      List.init n_authors (fun _ ->
          if Xoshiro.float rng < params.crossover then begin
            let foreign = all_areas.(Xoshiro.int rng (Array.length all_areas)) in
            pick_author ~core_prob:0.3 rng params foreign
          end
          else pick_author ~members ~community:primary_community rng params area)
      |> List.sort_uniq compare
    in
    emitted := !emitted + List.length authors;
    let title = Printf.sprintf "On the %s problem (%s %d)" (area_name area) v.name !article in
    let year = string_of_int (1995 + Xoshiro.int rng 14) in
    (* Replicate the article [scale] times with serial suffixes, preserving
       distribution and correlation (Section 4.1). *)
    for serial = 0 to params.scale - 1 do
      sink.open_el "inproceedings";
      sink.attr "key" (Printf.sprintf "conf/%s/%d-%d" v.name !article serial);
      List.iter
        (fun a ->
          incr author_count;
          leaf "author" (if params.scale > 1 then Printf.sprintf "%s %d" a serial else a))
        authors;
      leaf "title" (if params.scale > 1 then Printf.sprintf "%s #%d" title serial else title);
      leaf "year" year;
      sink.close_el ()
    done;
    incr article
  done;
  sink.close_el ();
  !author_count

type loaded = {
  venue : venue;
  docref : Rox_storage.Engine.docref;
  author_tag_count : int;
  byte_size : int;
}

let load ?(params = default_gen) engine selection =
  List.map
    (fun v ->
      let b =
        Doc.Builder.create ~uri:(uri_of v)
          ~qnames:(Rox_storage.Engine.qnames engine)
          ~values:(Rox_storage.Engine.values engine)
          ()
      in
      let counter, bytes = Sink.byte_counter () in
      let author_tag_count = emit_venue ~params v (Sink.tee (Sink.doc_builder b) counter) in
      let docref = Rox_storage.Engine.add_doc engine (Doc.Builder.finish b) in
      { venue = v; docref; author_tag_count; byte_size = bytes () })
    selection

let load_all ?params engine = load ?params engine (Array.to_list venues)

let query_for uris =
  let n = List.length uris in
  if n < 2 then invalid_arg "Dblp.query_for: need at least 2 documents";
  let buf = Buffer.create 256 in
  List.iteri
    (fun i uri ->
      Buffer.add_string buf
        (Printf.sprintf "%s $a%d in doc(\"%s\")//author%s\n"
           (if i = 0 then "for" else "   ")
           (i + 1) uri
           (if i < n - 1 then "," else "")))
    uris;
  Buffer.add_string buf "where ";
  for i = 2 to n do
    if i > 2 then Buffer.add_string buf " and ";
    Buffer.add_string buf (Printf.sprintf "$a1/text() = $a%d/text()" i)
  done;
  Buffer.add_string buf "\nreturn $a1";
  Buffer.contents buf

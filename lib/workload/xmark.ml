open Rox_util
open Rox_shred

type params = {
  n_items : int;
  n_persons : int;
  n_auctions : int;
  quantity_one_fraction : float;
  province_fraction : float;
  education_fraction : float;
  reserve_fraction : float;
  max_price : float;
  price_per_bidder : float;
}

let default_params =
  {
    n_items = 4350;
    n_persons = 5100;
    n_auctions = 2400;
    quantity_one_fraction = 0.81;
    province_fraction = 0.25;
    education_fraction = 0.5;
    reserve_fraction = 0.5;
    max_price = 300.0;
    price_per_bidder = 30.0;
  }

let scaled f =
  let scale n = max 1 (int_of_float (f *. float_of_int n)) in
  {
    default_params with
    n_items = scale default_params.n_items;
    n_persons = scale default_params.n_persons;
    n_auctions = scale default_params.n_auctions;
  }

(* The document is emitted through a Sink.t so the shredded and the tree
   form are produced by the identical code path and RNG stream. *)

let provinces = [| "Drenthe"; "Utrecht"; "Gelderland"; "Friesland"; "Zeeland"; "Limburg" |]
let degrees = [| "Bachelor"; "Master"; "PhD"; "Graduate" |]

let emit ?(seed = 7) ?rng ?(params = default_params) (sink : Sink.t) =
  (* Explicit RNG state threads through every draw; the seed only matters
     when the caller does not hand one in. *)
  let rng = match rng with Some r -> r | None -> Xoshiro.create seed in
  let leaf tag content =
    sink.open_el tag;
    sink.text content;
    sink.close_el ()
  in
  sink.open_el "site";
  (* Items. *)
  sink.open_el "regions";
  for i = 0 to params.n_items - 1 do
    sink.open_el "item";
    sink.attr "id" (Printf.sprintf "item%d" i);
    leaf "location" (if Xoshiro.bool rng then "United States" else "Netherlands");
    let quantity =
      if Xoshiro.float rng < params.quantity_one_fraction then 1 else 2 + Xoshiro.int rng 9
    in
    leaf "quantity" (string_of_int quantity);
    leaf "name" (Printf.sprintf "thing %d" i);
    sink.close_el ()
  done;
  sink.close_el ();
  (* People. *)
  sink.open_el "people";
  for i = 0 to params.n_persons - 1 do
    sink.open_el "person";
    sink.attr "id" (Printf.sprintf "person%d" i);
    leaf "name" (Printf.sprintf "Person %d" i);
    sink.open_el "address";
    leaf "city" "Enschede";
    if Xoshiro.float rng < params.province_fraction then
      leaf "province" (Xoshiro.pick rng provinces);
    sink.close_el ();
    sink.open_el "profile";
    if Xoshiro.float rng < params.education_fraction then
      leaf "education" (Xoshiro.pick rng degrees);
    leaf "interest" (Printf.sprintf "category%d" (Xoshiro.int rng 20));
    sink.close_el ();
    sink.close_el ()
  done;
  sink.close_el ();
  (* Open auctions, with the price <-> #bidders correlation. *)
  sink.open_el "open_auctions";
  for i = 0 to params.n_auctions - 1 do
    sink.open_el "open_auction";
    sink.attr "id" (Printf.sprintf "auction%d" i);
    if Xoshiro.float rng < params.reserve_fraction then
      leaf "reserve" (Printf.sprintf "%.2f" (10.0 +. Xoshiro.float rng *. 90.0));
    leaf "initial" (Printf.sprintf "%.2f" (Xoshiro.float rng *. 20.0));
    let price = Xoshiro.float rng *. params.max_price in
    let n_bidders =
      let base = 1 + int_of_float (price /. params.price_per_bidder) in
      max 1 (base + Xoshiro.int rng 2 - 1)  (* small noise, never zero *)
    in
    for _ = 1 to n_bidders do
      sink.open_el "bidder";
      leaf "date" "07/06/2026";
      sink.open_el "personref";
      sink.attr "person" (Printf.sprintf "person%d" (Xoshiro.int rng params.n_persons));
      sink.close_el ();
      leaf "increase" (Printf.sprintf "%.2f" (1.5 +. Xoshiro.float rng *. 10.0));
      sink.close_el ()
    done;
    leaf "current" (Printf.sprintf "%.2f" price);
    sink.open_el "itemref";
    sink.attr "item" (Printf.sprintf "item%d" (Xoshiro.int rng params.n_items));
    sink.close_el ();
    leaf "seller" (Printf.sprintf "person%d" (Xoshiro.int rng params.n_persons));
    sink.close_el ()
  done;
  sink.close_el ();
  sink.close_el () (* site *)

let generate ?seed ?rng ?params engine ~uri =
  let b =
    Doc.Builder.create ~uri
      ~qnames:(Rox_storage.Engine.qnames engine)
      ~values:(Rox_storage.Engine.values engine)
      ()
  in
  emit ?seed ?rng ?params (Sink.doc_builder b);
  Rox_storage.Engine.add_doc engine (Doc.Builder.finish b)

let generate_tree ?seed ?rng ?params () =
  let sink, finish = Sink.tree_builder () in
  emit ?seed ?rng ?params sink;
  finish ()

open Rox_util

type group = G22 | G31 | G40

let group_name = function
  | G22 -> "2:2"
  | G31 -> "3:1"
  | G40 -> "4:0"

let groups = [ G22; G31; G40 ]

let classify venues =
  let counts = Hashtbl.create 5 in
  List.iter
    (fun v ->
      let a = Dblp.primary_area v in
      Hashtbl.replace counts a (1 + Option.value ~default:0 (Hashtbl.find_opt counts a)))
    venues;
  let distribution =
    Hashtbl.fold (fun _ c acc -> c :: acc) counts [] |> List.sort (fun a b -> compare b a)
  in
  match distribution with
  | [ 4 ] -> Some G40
  | [ 3; 1 ] -> Some G31
  | [ 2; 2 ] -> Some G22
  | _ -> None

let rec subsets k lst =
  if k = 0 then [ [] ]
  else
    match lst with
    | [] -> []
    | x :: rest -> List.map (fun s -> x :: s) (subsets (k - 1) rest) @ subsets k rest

let all_combinations ?(k = 4) venues =
  subsets k (Array.to_list venues)
  |> List.filter_map (fun combo ->
         match classify combo with
         | Some g -> Some (g, combo)
         | None -> None)

let sample_per_group ?(seed = 13) ?rng ~per_group combos =
  let rng = match rng with Some r -> r | None -> Xoshiro.create seed in
  List.concat_map
    (fun g ->
      let of_group = List.filter (fun (g', _) -> g' = g) combos in
      let arr = Array.of_list of_group in
      if Array.length arr <= per_group then Array.to_list arr
      else begin
        let idx = Xoshiro.sample_without_replacement rng (Array.length arr) per_group in
        Array.to_list (Array.map (fun i -> arr.(i)) idx)
      end)
    groups

(** Document combinations grouped by research-area distribution (Section
    4.3): 2:2 (two pairs from two areas), 3:1, and 4:0 (all four from one
    area) — a proxy for the anticipated correlation of the combination.
    Grouping uses each venue's primary area, as in Table 3. *)

type group = G22 | G31 | G40

val group_name : group -> string
val groups : group list

val classify : Dblp.venue list -> group option
(** [None] for distributions the paper does not use (e.g. 2:1:1). *)

val all_combinations : ?k:int -> Dblp.venue array -> (group * Dblp.venue list) list
(** Every k-subset (default 4) that falls into one of the three groups. *)

val sample_per_group :
  ?seed:int -> ?rng:Rox_util.Xoshiro.t -> per_group:int ->
  (group * Dblp.venue list) list ->
  (group * Dblp.venue list) list
(** Deterministic subsample capped at [per_group] combinations per group
    (the full sweep is the paper's 831; benches default smaller). *)

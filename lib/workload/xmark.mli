(** XMark-like auction document generator (Section 3.2).

    Builds a synthetic auction site document with the schema the paper's Q1
    / Qm1 exercise — open auctions with bidders, current price, item and
    person references; people with ids, optional province and education;
    items with ids and quantities — and, crucially, the *correlation* the
    example turns on: "the bigger the current price of an item, the higher
    the number of bidders participating in the bid". A static optimizer
    cannot see this; ROX detects it by re-sampling.

    Bidder count is [1 + ⌊price / price_per_bidder⌋ + noise], so selecting
    auctions by [current < θ] (Q1) or [current > θ] (Qm1) lands in sparse-
    vs dense-bidder regions. *)

type params = {
  n_items : int;
  n_persons : int;
  n_auctions : int;
  quantity_one_fraction : float;  (** items with <quantity>1</quantity> *)
  province_fraction : float;      (** persons with a <province> *)
  education_fraction : float;     (** persons with an <education> *)
  reserve_fraction : float;       (** auctions with a <reserve> *)
  max_price : float;              (** current prices uniform in [0, max] *)
  price_per_bidder : float;       (** correlation strength *)
}

val default_params : params
(** 1/10th of the Figure 3 cardinalities: 4350 items, 5100 persons, 2400
    auctions, ~80% quantity-1, price ∈ [0, 300), one extra bidder per 30
    price units. *)

val scaled : float -> params
(** [scaled f] multiplies the three population sizes of
    {!default_params} by [f]. *)

val generate :
  ?seed:int -> ?rng:Rox_util.Xoshiro.t -> ?params:params ->
  Rox_storage.Engine.t -> uri:string ->
  Rox_storage.Engine.docref
(** Generate, shred against the engine's pools, index and register. All
    randomness flows through one explicit xoshiro state: [rng] when
    given, otherwise a fresh stream from [seed] (default 7) — never a
    shared process-global generator. *)

val generate_tree :
  ?seed:int -> ?rng:Rox_util.Xoshiro.t -> ?params:params -> unit ->
  Rox_xmldom.Tree.t
(** The same document as a tree (serialization, round-trip tests). Equal
    seeds and params produce the identical document in both forms. *)

(** Telemetry span verifier (RX4xx).

    A {!Rox_telemetry.Sink.t} records wall-clock spans next to the
    deterministic optimizer trace; this pass checks that the two stories
    agree:

    - [RX401] spans are well-nested per sink — as strictly LIFO intervals
      they must nest or be disjoint, never partially overlap;
    - [RX402] no span has a negative duration (a broken monotonic clock
      or a hand-built span);
    - [RX403] every [Edge_executed] trace event is covered by an
      ["execute_edge"] span whose [("edge", id)] attribute matches —
      skipped when either the trace or the span buffer was truncated;
    - [RX404] (warning) the span buffer hit its cap and dropped spans.

    A disabled sink vacuously passes: it records nothing to verify. *)

val check :
  ?trace:Rox_joingraph.Trace.t ->
  Rox_telemetry.Sink.t ->
  Diagnostic.t list

module D = Diagnostic
module Sink = Rox_telemetry.Sink
module Recorder = Rox_telemetry.Recorder

let span_end (s : Sink.span) = Int64.add s.Sink.start_ns s.Sink.dur_ns

(* Same interval discipline Telemetry_check enforces on live sinks
   (RX401/RX402), applied to a retained tree: same-lane spans must nest
   or be disjoint, and no span runs backwards. Retention stores
   [Sink.spans_chronological] output verbatim, so any violation here
   means the tree was corrupted between sampling and retention. *)
let check_lane_nesting add ~trace_id spans =
  let stack = ref [] in
  List.iteri
    (fun idx (s : Sink.span) ->
      if s.Sink.dur_ns < 0L then
        add
          (D.of_code "RX702" (D.Span idx)
             (Printf.sprintf
                "retained trace %d: span %S has negative duration %Ldns"
                trace_id s.Sink.name s.Sink.dur_ns));
      let rec pop () =
        match !stack with
        | (_, top) :: rest
          when Int64.compare (span_end top) s.Sink.start_ns <= 0 ->
          stack := rest;
          pop ()
        | _ -> ()
      in
      pop ();
      (match !stack with
       | [] -> ()
       | (pidx, parent) :: _ ->
         if Int64.compare (span_end s) (span_end parent) > 0 then
           add
             (D.of_code "RX702" (D.Span idx)
                ~hint:
                  "retain must store Sink.spans_chronological output \
                   unmodified"
                (Printf.sprintf
                   "retained trace %d: span %S (start %Ld, end %Ld) overlaps \
                    span #%d %S (end %Ld) without nesting inside it"
                   trace_id s.Sink.name s.Sink.start_ns (span_end s) pidx
                   parent.Sink.name (span_end parent))));
      stack := (idx, s) :: !stack)
    spans

let check_trace add (trace_id, _record, _reason, spans) =
  let lanes =
    List.sort_uniq compare (List.map (fun s -> s.Sink.lane) spans)
  in
  List.iter
    (fun lane ->
      check_lane_nesting add ~trace_id
        (List.filter (fun s -> s.Sink.lane = lane) spans))
    lanes

let check ?submitted recorder =
  let out = ref [] in
  let add d = out := d :: !out in
  (match submitted with
   | Some n ->
     let records = Recorder.records recorder in
     if records <> n then
       add
         (D.of_code "RX701" D.Graph_loc
            ~hint:
              "every submit_async outcome (executed, coalesced, rejected — \
               including shutdown-drained leftovers) must record exactly \
               once; take the snapshot at quiescence"
            (Printf.sprintf
               "%d flight record(s) observed for %d submitted request(s)"
               records n))
   | None -> ());
  List.iter (check_trace add) (Recorder.traces recorder);
  let count = Recorder.tenant_count recorder in
  let cap = Recorder.tenant_cap recorder in
  if count > cap + 1 then
    add
      (D.of_code "RX703" D.Graph_loc
         ~hint:
           "past tenant_cap distinct tenants every new client_id must fold \
            into the shared overflow bucket"
         (Printf.sprintf
            "%d tenant series for tenant_cap %d (bound is tenant_cap + 1 \
             including the overflow bucket)"
            count cap));
  List.rev !out

(** Static mutable-global lint (RX510/RX511) — the [rox lint] engine.

    Scans OCaml sources (no compiler dependency: a line-oriented lexical
    pass with comments and string literals stripped) for the two shapes
    of shared mutable state the multi-domain engine must account for:

    - {b globals}: column-zero [let] {e value} bindings whose right-hand
      side creates mutable state — [ref], [Atomic.make], [Mutex.create],
      [Condition.create], [Domain.DLS.new_key], [Hashtbl.create],
      [Buffer.create], [Queue.create], [Stack.create], [Bytes.create],
      [Array.make]/[init], or an array literal. Function bindings are
      skipped: state created per call is not global.
    - {b fields}: [mutable] record fields at any nesting depth, named
      [type.field] after the innermost enclosing [type]/[and].

    Each finding is matched against {!Capability.allowlist}. An
    unmatched binding is RX510 (error); an allowlist entry with an empty
    guard is RX510 on the entry; an entry matching no binding is RX511
    (warning) so the allowlist cannot outlive the code it excuses.

    The scanner is deliberately a heuristic: it over-approximates
    (arrays used as read-only lookup tables still need an entry saying
    so) and under-approximates (mutable state smuggled through
    non-column-zero module bodies is out of scope). The point is the
    ratchet — new top-level state fails CI until its guard is written
    down. *)

type kind = Capability.kind = Global | Field

type binding = {
  gb_file : string;  (** path as given to the scanner, e.g. [lib/x/y.ml] *)
  gb_line : int;     (** 1-based line of the [let] / [mutable] keyword *)
  gb_kind : kind;
  gb_name : string;  (** global name, or [type.field] for fields *)
  gb_what : string;  (** the creation pattern that matched, e.g. ["ref"] *)
}

val strip : string -> string
(** Source text with comments (nested) and string/char literals blanked
    to spaces — same length, same line structure. Exposed for tests. *)

val scan_source : file:string -> string -> binding list
(** Scan one file's contents. [file] is used verbatim in findings. *)

val scan_path : string -> binding list
(** Read and scan one [.ml] file. *)

val scan_root : string -> binding list
(** Recursively scan every [.ml] file under a directory, in sorted
    order. Findings are named relative to the root's parent
    ([lib/util/x.ml] whether invoked as [lib] or [../lib]) so they match
    {!Capability.allowlist} from any working directory. *)

val check : binding list -> Diagnostic.t list
(** Match bindings against {!Capability.allowlist}: RX510 for each
    undocumented binding and each empty-guard entry, RX511 for each
    stale entry. Errors first. *)

val run : root:string -> Report.t
(** [scan_root] + [check], packaged as a report with subject
    ["lint:" ^ root]. *)

open Rox_joingraph
module D = Diagnostic
module Sink = Rox_telemetry.Sink

(* Spans are wall-clock intervals, so two spans recorded by one sink *in
   the same lane* must either nest or be disjoint — lane 0 is the owner's
   strictly-LIFO [with_span] tree, and each lane > 0 replays one pool
   worker's sequential task stream. Spans in *different* lanes ran
   concurrently and may overlap freely, so the RX401 check partitions by
   lane first. Clock granularity can make a child share its parent's
   boundary instants, so containment checks are non-strict. *)

let span_end (s : Sink.span) = Int64.add s.Sink.start_ns s.Sink.dur_ns

let check_nesting add spans =
  let stack = ref [] in
  List.iteri
    (fun idx (s : Sink.span) ->
      if s.Sink.dur_ns < 0L then
        add
          (D.error "RX402" (D.Span idx)
             (Printf.sprintf "span %S has negative duration %Ldns" s.Sink.name
                s.Sink.dur_ns));
      (* Pop finished spans: anything that ended before this one started. *)
      let rec pop () =
        match !stack with
        | (_, top) :: rest when Int64.compare (span_end top) s.Sink.start_ns <= 0 ->
          stack := rest;
          pop ()
        | _ -> ()
      in
      pop ();
      (match !stack with
       | [] -> ()
       | (pidx, parent) :: _ ->
         (* Still-open enclosing span: this one must fit inside it. *)
         if Int64.compare (span_end s) (span_end parent) > 0 then
           add
             (D.error "RX401" (D.Span idx)
                (Printf.sprintf
                   "span %S (start %Ld, end %Ld) overlaps span #%d %S (end %Ld) \
                    without nesting inside it"
                   s.Sink.name s.Sink.start_ns (span_end s) pidx parent.Sink.name
                   (span_end parent)));
         if s.Sink.depth <= parent.Sink.depth then
           add
             (D.error "RX401" (D.Span idx)
                (Printf.sprintf
                   "span %S at depth %d opens inside span #%d %S at depth %d"
                   s.Sink.name s.Sink.depth pidx parent.Sink.name parent.Sink.depth)));
      stack := (idx, s) :: !stack)
    spans

(* Every Edge_executed trace event must be covered by an "execute_edge"
   telemetry span carrying a matching ("edge", id) attribute — the span
   instrumentation and the deterministic trace describe the same run. *)
let check_edge_coverage add trace spans =
  let span_edges = Hashtbl.create 16 in
  List.iter
    (fun (s : Sink.span) ->
      if s.Sink.name = "execute_edge" then
        match List.assoc_opt "edge" s.Sink.attrs with
        | Some id -> (
          match int_of_string_opt id with
          | Some e ->
            Hashtbl.replace span_edges e (1 + Option.value ~default:0 (Hashtbl.find_opt span_edges e))
          | None -> ())
        | None -> ())
    spans;
  List.iteri
    (fun idx ev ->
      match (ev : Trace.event) with
      | Trace.Edge_executed { edge; _ } ->
        (match Hashtbl.find_opt span_edges edge with
         | Some n when n > 0 -> Hashtbl.replace span_edges edge (n - 1)
         | _ ->
           add
             (D.error "RX403" (D.Event idx)
                ~hint:"Runtime.execute_edge must run under with_span \"execute_edge\""
                (Printf.sprintf
                   "edge e%d executed with no matching telemetry span" edge)))
      | _ -> ())
    (Trace.events trace)

let check ?trace (sink : Sink.t) =
  let out = ref [] in
  let add d = out := d :: !out in
  if Sink.enabled sink then begin
    let spans = Sink.spans_chronological sink in
    let lanes = List.sort_uniq compare (List.map (fun s -> s.Sink.lane) spans) in
    List.iter
      (fun lane ->
        check_nesting add (List.filter (fun s -> s.Sink.lane = lane) spans))
      lanes;
    if Sink.dropped sink > 0 then
      add
        (D.warning "RX404" D.Graph_loc
           ~hint:"raise the cap via Sink.create ?cap to keep every span"
           (Printf.sprintf "span buffer truncated: %d span(s) dropped"
              (Sink.dropped sink)));
    (* Edge coverage is only meaningful on a complete trace; a truncated
       one would report RX403 for edges whose events were dropped. *)
    match trace with
    | Some tr when Trace.dropped tr = 0 && Sink.dropped sink = 0 ->
      check_edge_coverage add tr spans
    | _ -> ()
  end;
  List.rev !out

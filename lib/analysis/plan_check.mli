(** Static analysis of an execution plan (an ordered list of edge ids).

    A valid plan references only existing edges (RX201), lists each at most
    once (RX202), covers every non-trivial edge (RX203), and skips the
    pre-satisfied root-descendant edges (RX204, warning). An equi-join
    edge absent from the plan whose endpoints the plan's other equi-joins
    already connect is transitively implied and only noted at [Info]
    severity. Plan steps that open a new component are reported as RX205
    at [Info] severity — multi-document graphs and shuffled baseline plans
    do this legitimately. *)

val check : Rox_joingraph.Graph.t -> int list -> Diagnostic.t list

module D = Diagnostic

type t = {
  subject : string;
  diagnostics : D.t list;  (** errors first, then warnings, then infos *)
}

let make ~subject diagnostics =
  (* Stable sort: severity groups keep discovery order within themselves. *)
  { subject; diagnostics = List.stable_sort D.compare_severity diagnostics }

let count severity t =
  List.length (List.filter (fun d -> d.D.severity = severity) t.diagnostics)

let errors t = count D.Error t
let warnings t = count D.Warning t
let has_errors t = errors t > 0

let summary t =
  Printf.sprintf "%s: %d error(s), %d warning(s), %d info" t.subject (errors t)
    (warnings t) (count D.Info t)

let to_string t =
  let lines = List.map (fun d -> "  " ^ D.to_string d) t.diagnostics in
  String.concat "\n" (summary t :: lines)

let print ?(oc = stdout) t =
  output_string oc (to_string t);
  output_char oc '\n'

let exit_code reports = if List.exists has_errors reports then 1 else 0

let to_json t =
  let open Rox_util.Minijson in
  Obj
    [
      ("subject", Str t.subject);
      ("errors", Num (float_of_int (errors t)));
      ("warnings", Num (float_of_int (warnings t)));
      ("diagnostics", Arr (List.map D.to_json t.diagnostics));
    ]

(* The machine-readable shape CI asserts on: stable keys, one object per
   report, totals at the top level so a jq one-liner can gate a build. *)
let json_string reports =
  let open Rox_util.Minijson in
  let total f = List.fold_left (fun n r -> n + f r) 0 reports in
  to_string
    (Obj
       [
         ("reports", Arr (List.map to_json reports));
         ("errors", Num (float_of_int (total errors)));
         ("warnings", Num (float_of_int (total warnings)));
         ("exit_code", Num (float_of_int (exit_code reports)));
       ])

(** Static analysis of a Join Graph.

    Verifies the structural invariants a graph must satisfy before the ROX
    optimizer may run it: one connected component (RX001), intact
    vertex/edge tables (RX002), no self-loops (RX003) or duplicate parallel
    edges (RX004), value-typed equi-join endpoints (RX005), single-document
    step edges (RX006), axis/annotation compatibility (RX007), a consistent
    and complete equi-closure (RX008), and one root per document (RX009). *)

val check : Rox_joingraph.Graph.t -> Diagnostic.t list
(** Diagnostics in discovery order; empty means the graph is clean. *)

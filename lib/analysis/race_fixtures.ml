(* Deliberate concurrency bugs (and their fixed twins) for the race
   detector to cut its teeth on.

   Each fixture arms the access log, runs a small multi-domain workload,
   and returns the detector's diagnostics over exactly that recording.
   The seeded race is the standing proof-of-teeth: `rox racecheck` runs
   it first and refuses to bless a workload with a detector that cannot
   see a planted unguarded counter.

   Fixtures save and restore the armed flag so they compose with any
   surrounding ROX_SANITIZE setting, and they model the real fork/join
   edges with hb tokens — the parent's setup writes must not read as
   races against the workers. *)

module Al = Rox_util.Accesslog

let with_recording f =
  let was = Al.armed () in
  Al.set_armed true;
  Al.reset ();
  let finish () =
    let sites = Al.sites_snapshot () in
    let events = Al.events () in
    Al.set_armed was;
    (sites, events)
  in
  match f () with
  | () ->
    let sites, events = finish () in
    Race_check.check ~sites events
  | exception exn ->
    ignore (finish ());
    raise exn

(* Spawn [n] workers with honest fork/join happens-before edges. *)
let fork_join n work =
  let start_toks = Array.init n (fun i -> Al.hb_token ~name:(Printf.sprintf "fixture.spawn%d" i)) in
  let done_toks = Array.init n (fun i -> Al.hb_token ~name:(Printf.sprintf "fixture.join%d" i)) in
  let domains =
    Array.init n (fun i ->
        Al.hb_publish start_toks.(i);
        Domain.spawn (fun () ->
            Al.hb_acquire start_toks.(i);
            work i;
            Al.hb_publish done_toks.(i)))
  in
  Array.iteri
    (fun i d ->
      Domain.join d;
      Al.hb_acquire done_toks.(i))
    domains

(* The seeded race: two domains bang on one counter with no lock at all.
   A real int ref races for real; the recorded site races on the log. *)
let seeded_race ?(domains = 2) ?(iters = 64) () =
  with_recording (fun () ->
      let counter = ref 0 in
      let site = Al.site ~name:"fixture.unguarded_counter" Al.Shared in
      Al.record ~site Al.Write (* parent seeds the counter *);
      counter := 0;
      fork_join domains (fun _ ->
          for _ = 1 to iters do
            Al.record ~site Al.Read;
            let v = !counter in
            Al.record ~site Al.Write;
            counter := v + 1
          done))

(* The fixed twin: same counter, one mutex on every path — must be clean. *)
let guarded_counter ?(domains = 2) ?(iters = 64) () =
  with_recording (fun () ->
      let counter = ref 0 in
      let mutex = Mutex.create () in
      let site = Al.site ~name:"fixture.guarded_counter" Al.Shared in
      let lock = Al.lock ~name:"fixture.counter_mutex" in
      fork_join domains (fun _ ->
          for _ = 1 to iters do
            Mutex.protect mutex (fun () ->
                Al.with_lock lock (fun () ->
                    Al.record ~site Al.Write;
                    incr counter))
          done))

(* An epoch bump racing unsynchronized readers: the engine-mutation
   pattern the RX503 code exists for. *)
let epoch_race ?(iters = 32) () =
  with_recording (fun () ->
      let epoch = ref 0 in
      let site = Al.site ~name:"fixture.mutation_epoch" Al.Epoch in
      Al.record ~site ~info:0 Al.Write;
      fork_join 2 (fun i ->
          if i = 0 then
            for _ = 1 to iters do
              Al.record ~site ~info:(!epoch + 1) Al.Write;
              incr epoch
            done
          else
            for _ = 1 to iters do
              Al.record ~site ~info:!epoch Al.Read;
              ignore (Sys.opaque_identity !epoch)
            done))

(* Inconsistent lock discipline: two sequential phases (fork/join orders
   them, so no race manifests), each guarding the same site with a
   *different* mutex. Every access is locked, no single lock covers the
   site — the fragile pattern RX502 warns about before a scheduling
   change turns it into RX501. *)
let split_locks ?(iters = 16) () =
  with_recording (fun () ->
      let cell = ref 0 in
      let m1 = Mutex.create () and m2 = Mutex.create () in
      let site = Al.site ~name:"fixture.split_lock_cell" Al.Shared in
      let l1 = Al.lock ~name:"fixture.lock_a" in
      let l2 = Al.lock ~name:"fixture.lock_b" in
      let phase mutex lock =
        fork_join 1 (fun _ ->
            for _ = 1 to iters do
              Mutex.protect mutex (fun () ->
                  Al.with_lock lock (fun () ->
                      Al.record ~site Al.Write;
                      incr cell))
            done)
      in
      phase m1 l1;
      phase m2 l2)

(* A session-shaped confined site leaked across the fork: RX504. *)
let confined_leak () =
  with_recording (fun () ->
      let site = Al.site ~name:"fixture.leaked_session" Al.Confined in
      Al.record ~site Al.Write;
      fork_join 1 (fun _ -> Al.record ~site Al.Write))

(* A sharded-cache interleaving with a planted hole: domain 0 follows the
   shard discipline (mutate only under the shard mutex), domain 1 plays a
   broken "fast path" that writes the shard's byte counter lock-free.
   The very bug the sharded Lru's published-image design exists to make
   impossible — the detector must still have teeth for it. *)
let shard_unguarded ?(iters = 48) () =
  with_recording (fun () ->
      let bytes = ref 0 in
      let site = Al.site ~name:"fixture.cache_shard" Al.Shared in
      let lock = Al.lock ~name:"fixture.cache_shard.mutex" in
      let mutex = Mutex.create () in
      fork_join 2 (fun d ->
          for _ = 1 to iters do
            if d = 0 then
              Mutex.protect mutex (fun () ->
                  Al.with_lock lock (fun () ->
                      Al.record ~site Al.Write;
                      incr bytes))
            else begin
              (* planted: shard state mutated without the shard lock *)
              Al.record ~site Al.Write;
              decr bytes
            end
          done))

(* The fixed twin is the real thing: a 4-shard Rox_cache.Lru hammered
   from two domains through its public operations — per-shard mutexes on
   every mutation, the lock-free path reading only the Atomic-published
   image (which records nothing at the mutable shard sites because it
   never touches them). Must come back clean. *)
let shard_guarded ?(domains = 2) ?(iters = 120) () =
  let module L = Rox_cache.Lru.Make (struct
    type t = string

    let equal = String.equal
    let hash = Hashtbl.hash
  end) in
  with_recording (fun () ->
      let cache =
        L.create ~name:"fixture.sharded_cache" ~shards:4 ~budget:4096 ()
      in
      fork_join domains (fun d ->
          for i = 1 to iters do
            let k = Printf.sprintf "k%d" ((i + d) land 31) in
            L.add cache k ~weight:16 ((d * 100_000) + i);
            ignore (L.find cache k : int option);
            ignore (L.find_fast cache k : int option)
          done))

let all =
  [
    ("seeded-race", (fun () -> seeded_race ()),
     "two domains increment an unguarded shared counter", [ "RX501" ]);
    ("guarded-counter", (fun () -> guarded_counter ()),
     "the same counter behind one mutex on every path", []);
    ("epoch-race", (fun () -> epoch_race ()),
     "an epoch bump racing unsynchronized readers", [ "RX503" ]);
    ("split-locks", (fun () -> split_locks ()),
     "two paths guard one site with two different locks", [ "RX502" ]);
    ("confined-leak", (fun () -> confined_leak ()),
     "a session-confined site touched from a second domain", [ "RX504" ]);
    ("shard-unguarded", (fun () -> shard_unguarded ()),
     "a cache shard's bytes mutated by a lock-free writer", [ "RX501" ]);
    ("shard-guarded", (fun () -> shard_guarded ()),
     "the real 4-shard LRU hammered through its public ops", []);
  ]

let find name =
  List.find_opt (fun (n, _, _, _) -> n = name) all

module Sanitize = Rox_algebra.Sanitize
module D = Diagnostic

let enabled () = Sanitize.default_mode ()
let set_enabled b = Sanitize.set_default_mode b

let code_of_contract = function
  | Sanitize.Sorted_dedup -> "RX301"
  | Sanitize.Domain_subset -> "RX302"
  | Sanitize.Cost_bound -> "RX303"
  | Sanitize.Cache_consistent -> "RX304"
  | Sanitize.Sorted_flag -> "RX305"
  | Sanitize.Kernel_equiv -> "RX306"
  | Sanitize.Session_confined -> "RX307"
  | Sanitize.Shard_consistent -> "RX308"
  | Sanitize.Partition_consistent -> "RX310"

let diagnostic_of_violation ?label (v : Sanitize.violation) =
  let message =
    match label with
    | None -> Sanitize.message v
    | Some l -> Printf.sprintf "%s: %s" l (Sanitize.message v)
  in
  D.error (code_of_contract v.Sanitize.contract) D.Graph_loc
    ~hint:"re-run with ROX_SANITIZE=1 under a debugger to catch the first breach"
    message

let wrap ?label f =
  (* Sanitizing runs build their own sanitize-on sessions; wrap only
     converts the first violation into a diagnostic — it no longer flips
     any process-global flag (RX307 would flag exactly that). *)
  match f () with
  | result -> Ok result
  | exception Sanitize.Violation v -> Error (diagnostic_of_violation ?label v)

module Sanitize = Rox_algebra.Sanitize
module D = Diagnostic

let enabled () = !Sanitize.enabled
let set_enabled b = Sanitize.enabled := b

let code_of_contract = function
  | Sanitize.Sorted_dedup -> "RX301"
  | Sanitize.Domain_subset -> "RX302"
  | Sanitize.Cost_bound -> "RX303"
  | Sanitize.Cache_consistent -> "RX304"
  | Sanitize.Sorted_flag -> "RX305"
  | Sanitize.Kernel_equiv -> "RX306"

let diagnostic_of_violation ?label (v : Sanitize.violation) =
  let message =
    match label with
    | None -> Sanitize.message v
    | Some l -> Printf.sprintf "%s: %s" l (Sanitize.message v)
  in
  D.error (code_of_contract v.Sanitize.contract) D.Graph_loc
    ~hint:"re-run with ROX_SANITIZE=1 under a debugger to catch the first breach"
    message

let wrap ?label f =
  let prev = !Sanitize.enabled in
  Sanitize.enabled := true;
  match f () with
  | result ->
    Sanitize.enabled := prev;
    Ok result
  | exception Sanitize.Violation v ->
    Sanitize.enabled := prev;
    Error (diagnostic_of_violation ?label v)
  | exception exn ->
    Sanitize.enabled := prev;
    raise exn

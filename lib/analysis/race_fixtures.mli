(** Deliberate concurrency bugs (and their fixed twins) for the RX5xx
    race detector.

    Every fixture arms the access log, runs a small real multi-domain
    workload (honest fork/join happens-before edges via hb tokens),
    restores the previous armed state, and returns the detector's
    diagnostics over that recording.

    The seeded race is the proof-of-teeth gate: [rox racecheck] refuses
    to bless a workload unless the detector flags it RX501. *)

val with_recording : (unit -> unit) -> Diagnostic.t list
(** Arm the access log, reset it, run [f], restore the previous armed
    state, and return {!Race_check.check} over the recording. The
    building block behind every fixture and the [rox racecheck]
    workload replay. *)

val fork_join : int -> (int -> unit) -> unit
(** [fork_join n work] spawns [n] domains running [work i] with honest
    fork/join happens-before edges (hb tokens around spawn and join), so
    the parent's setup writes do not read as races against the workers. *)

val seeded_race : ?domains:int -> ?iters:int -> unit -> Diagnostic.t list
(** Unguarded shared counter hammered by [domains] workers → RX501. *)

val guarded_counter : ?domains:int -> ?iters:int -> unit -> Diagnostic.t list
(** The same counter behind one mutex on every path → no diagnostics. *)

val epoch_race : ?iters:int -> unit -> Diagnostic.t list
(** A generation-counter bump racing unsynchronized readers → RX503. *)

val split_locks : ?iters:int -> unit -> Diagnostic.t list
(** One site, two phases, two different mutexes → RX502 (discipline
    warning; fork/join ordering keeps it from being a manifest race). *)

val confined_leak : unit -> Diagnostic.t list
(** A confined (session-like) site touched from a second domain → RX504. *)

val all : (string * (unit -> Diagnostic.t list) * string * string list) list
(** (name, run, description, expected codes) — the [--fixture] menu. *)

val find :
  string -> (string * (unit -> Diagnostic.t list) * string * string list) option

type kind = Global | Field

type entry = {
  cap_file : string;
  cap_kind : kind;
  cap_name : string;
  cap_guard : string;
}

let kind_string = function Global -> "global" | Field -> "field"

(* Terse constructors so the allowlist below reads as a table. *)
let g file name guard =
  { cap_file = file; cap_kind = Global; cap_name = name; cap_guard = guard }

let f file name guard =
  { cap_file = file; cap_kind = Field; cap_name = name; cap_guard = guard }

(* Every mutable global and mutable record field sanctioned under lib/,
   with the discipline that makes it safe under multi-domain execution.
   `rox lint` fails (RX510) on any mutable state not covered here, and
   warns (RX511) on entries that no longer match anything — the list can
   neither lag the code nor outlive it.

   The recurring guards, for reference:
   - "read-only table": initialized at module load, never written;
     module initialization happens-before every domain spawn.
   - "single-owner": reachable from exactly one session / builder /
     checker call, which lives and dies on one domain (RX307/RX504).
   - "mutex": every access inside one named mutex's critical section.
   - "publish-before-spawn": written only before worker domains are
     spawned; Domain.spawn publishes the write. *)
let allowlist =
  [
    (* -- algebra --------------------------------------------------- *)
    g "lib/algebra/axis.ml" "all"
      "read-only table: axis enumeration, never written after module init";
    g "lib/algebra/sanitize.ml" "default"
      "publish-before-spawn: seeded from ROX_SANITIZE at module init, \
       read-only afterwards (sessions copy it at construction)";
    g "lib/algebra/sanitize.ml" "region_key"
      "Domain.DLS key: the pointed-to region marker is per-domain by \
       construction — it is how RX307 confinement is implemented";
    f "lib/algebra/cost.ml" "counter.*"
      "single-owner: each counter belongs to one session, which is \
       confined to one domain (RX307/RX504)";
    (* -- analysis -------------------------------------------------- *)
    f "lib/analysis/race_check.ml" "site_state.*"
      "single-owner: checker-local replay state, built and consumed \
       inside one check call on one domain";
    f "lib/analysis/trace_check.ml" "comp.*"
      "single-owner: checker-local replay state, one check call";
    f "lib/analysis/trace_check.ml" "replay.*"
      "single-owner: checker-local replay state, one check call";
    (* -- cache ----------------------------------------------------- *)
    f "lib/cache/lru.ml" "node.*"
      "mutex: recency links and entry payloads only change inside the \
       owning shard's lock critical section";
    f "lib/cache/lru.ml" "shard.*"
      "mutex: every locked operation runs under the shard's own lock \
       (Mutex.protect in locked / try_locked); the lock-free fast path \
       reads only the Atomic-published immutable image, never these \
       fields; the armed access log records each locked entry as a Write";
    (* -- core ------------------------------------------------------ *)
    f "lib/core/pool.ml" "t.*"
      "mutex: batch installation, generation bumps, stopping and the \
       remaining countdown all happen inside t.mutex (the armed log \
       records the core.pool.mutex bracket and the core.pool.batch \
       site); t.domains is publish-before-spawn — written once in \
       create before any run, and hb spawn/fork/join/exit tokens order \
       the handoffs for the race detector";
    f "lib/core/pool.ml" "batch.*"
      "mutex: remaining is decremented only inside t.mutex; tasks are \
       claimed by the atomic cursor (disjoint fetch_and_add slots) and \
       each worker writes only its own exns slot, read by the caller \
       after the join edge";
    f "lib/core/session.ml" "t.deadline_at"
      "single-owner: a session lives and dies on one domain; confine \
       records an RX504 site access to prove it";
    (* -- joingraph ------------------------------------------------- *)
    f "lib/joingraph/graph.ml" "t.*"
      "publish-before-spawn: graphs mutate only during compilation; a \
       compiled query shared across domains is read-only";
    f "lib/joingraph/runtime.ml" "t.*"
      "single-owner: per-run optimizer state owned by one session run";
    f "lib/joingraph/trace.ml" "t.*"
      "single-owner: the trace belongs to one session (one domain); \
       cross-domain aggregation copies, never shares";
    (* -- serve ----------------------------------------------------- *)
    f "lib/serve/protocol.ml" "decoder.*"
      "single-owner: one decoder per connection, fed and drained only \
       by that connection's handler thread";
    f "lib/serve/server.ml" "pending.*"
      "mutex: outcome and waiters only change inside the server's one \
       t.mutex critical section (completion broadcasts under it)";
    f "lib/serve/server.ml" "t.*"
      "mutex: queue, in-flight table, audit and connection counters, \
       tenant table, server metrics, stopping and the worker list all \
       mutate inside Mutex.protect t.mutex (the locked wrapper records \
       the Accesslog serve.mutex bracket); worker spawn/join carry hb \
       tokens";
    (* -- shred ----------------------------------------------------- *)
    f "lib/shred/doc.ml" "t.doc_id"
      "publish-before-spawn: written once by Engine.register before the \
       engine is shared; read-only during serving";
    f "lib/shred/doc.ml" "builder.*"
      "single-owner: a builder is local to one parse call";
    (* -- storage --------------------------------------------------- *)
    f "lib/storage/engine.ml" "t.docs"
      "publish-before-spawn: registration happens before serving; the \
       epoch bump (an RX503 site) is the mutation's last store";
    f "lib/storage/engine.ml" "t.ndocs"
      "publish-before-spawn: same discipline as t.docs";
    f "lib/storage/engine.ml" "t.epoch"
      "publish-before-spawn: bumps are recorded at the engine.epoch \
       access-log site, so a bump overlapping a reader is RX503";
    (* -- telemetry ------------------------------------------------- *)
    f "lib/telemetry/metrics.ml" "counter.*"
      "single-owner: a Metrics.t belongs to one sink on one domain; \
       cross-domain totals live in Aggregate's per-domain slots, each \
       mutated only under its own slot mutex";
    f "lib/telemetry/metrics.ml" "gauge.*"
      "single-owner: same discipline as counter.*";
    f "lib/telemetry/metrics.ml" "histogram.*"
      "single-owner: same discipline as counter.*";
    f "lib/telemetry/aggregate.ml" "t.slots"
      "mutex: the slot list grows only under reg_mutex; each slot's \
       Metrics.t mutates only under that slot's slot_mutex, and the \
       owning domain is its only steady-state writer (Domain.DLS)";
    f "lib/telemetry/sink.ml" "t.*"
      "single-owner: sinks are session-local; Aggregate.absorb moves \
       totals into the calling domain's slot under that slot's mutex";
    f "lib/telemetry/recorder.ml" "slot.*"
      "mutex: a ring slot's cursor and contents mutate only under that \
       slot's slot_mutex; the owning domain is its only steady-state \
       writer (Domain.DLS, same discipline as Aggregate's slots)";
    f "lib/telemetry/recorder.ml" "t.slots"
      "mutex: the slot list grows only under reg_mutex; snapshot folds \
       take each slot's own mutex in turn";
    f "lib/telemetry/recorder.ml" "tenant_series.*"
      "mutex: tenant counters mutate only under ten_mutex, the same \
       lock that bounds the tenant table's cardinality";
    f "lib/telemetry/recorder.ml" "t.tenant_order"
      "mutex: first-seen tenant order appends only under ten_mutex";
    f "lib/telemetry/recorder.ml" "t.log_closed"
      "mutex: slow-log lifecycle flag, read and written only under \
       log_mutex (close vs a concurrent observe)";
    f "lib/telemetry/recorder.ml" "t.log_lines"
      "mutex: bumped only under log_mutex, right after the write";
    (* -- util: access log itself ----------------------------------- *)
    g "lib/util/accesslog.ml" "armed_flag"
      "publish-before-spawn: flipped at CLI startup or by a racecheck \
       driver before domains exist; spawn publishes the value";
    g "lib/util/accesslog.ml" "registry_mutex"
      "mutex: it IS the guard for the site/lock registries";
    g "lib/util/accesslog.ml" "sites"
      "mutex: grown only inside registry_mutex; snapshot arrays are \
       immutable once handed out";
    g "lib/util/accesslog.ml" "n_sites" "mutex: written under registry_mutex";
    g "lib/util/accesslog.ml" "lock_names"
      "mutex: grown only inside registry_mutex";
    g "lib/util/accesslog.ml" "n_locks" "mutex: written under registry_mutex";
    g "lib/util/accesslog.ml" "token_names"
      "mutex: grown only inside registry_mutex";
    g "lib/util/accesslog.ml" "n_tokens" "mutex: written under registry_mutex";
    g "lib/util/accesslog.ml" "cap"
      "publish-before-spawn: sized by set_armed before recording begins";
    g "lib/util/accesslog.ml" "buf"
      "publish-before-spawn: allocated by set_armed before recording; \
       slot writes are claimed by the atomic cursor";
    g "lib/util/accesslog.ml" "cursor"
      "Atomic.t: fetch_and_add claims disjoint slots";
    g "lib/util/accesslog.ml" "dropped_count" "Atomic.t: monotonic counter";
    g "lib/util/accesslog.ml" "lockset_key"
      "Domain.DLS key: each domain sees only its own lockset bitmask";
    (* -- util: plain data structures ------------------------------- *)
    g "lib/util/column.ml" "empty"
      "read-only table: the shared empty column holds length-0 arrays — \
       there is nothing to write";
    f "lib/util/int_table.ml" "t.*"
      "single-owner: tables are owned by one builder/session at a time";
    f "lib/util/int_vec.ml" "t.*"
      "single-owner: vectors are owned by one builder/session at a time";
    f "lib/util/str_pool.ml" "t.*"
      "publish-before-spawn: pools are populated while documents load, \
       read-only once the engine is shared";
    f "lib/util/xoshiro.ml" "t.*"
      "single-owner: each RNG stream belongs to one session (equal \
       seeds on different domains are distinct states)";
    (* -- workload generators --------------------------------------- *)
    g "lib/workload/dblp.ml" "venues"
      "read-only table: generator vocabulary, never written";
    g "lib/workload/dblp.ml" "all_areas"
      "read-only table: generator vocabulary, never written";
    g "lib/workload/xmark.ml" "provinces"
      "read-only table: generator vocabulary, never written";
    g "lib/workload/xmark.ml" "degrees"
      "read-only table: generator vocabulary, never written";
    (* -- parsers and compiler -------------------------------------- *)
    f "lib/xmldom/xml_parser.ml" "state.*"
      "single-owner: parser state is local to one parse call";
    f "lib/xquery/parser.ml" "state.*"
      "single-owner: parser state is local to one parse call";
    f "lib/xquery/compile.ml" "ctx.*"
      "single-owner: compile context is local to one compile call";
  ]

let name_matches ~pattern name =
  pattern = "*" || pattern = name
  ||
  (let n = String.length pattern in
   n >= 2
   && String.sub pattern (n - 2) 2 = ".*"
   && String.length name >= n - 1
   && String.sub name 0 (n - 1) = String.sub pattern 0 (n - 1))

let find ~file ~kind ~name =
  List.find_opt
    (fun e ->
      e.cap_file = file && e.cap_kind = kind
      && name_matches ~pattern:e.cap_name name)
    allowlist

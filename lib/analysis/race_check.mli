(** The RX5xx dynamic race detector.

    Replays a {!Rox_util.Accesslog} recording with Eraser-style lockset
    refinement plus vector-clock happens-before (derived from the
    recorded Acquire/Release events — real mutexes and the fork/join
    [hb_publish]/[hb_acquire] tokens both reduce to release/acquire
    clock transfer), and reports:

    - [RX501] (error): a cross-domain access pair on a shared site with
      no happens-before edge and no common lock, at least one side
      unlocked — a manifest data race.
    - [RX502] (warning): every access to a shared site held some lock,
      but no single lock covers all of them and only scheduling ordered
      this interleaving — fragile discipline, no manifest race.
    - [RX503] (error): the RX501 situation on an [Epoch]-kind site (a
      generation counter), called out separately because the damage is
      silent cache staleness.
    - [RX504] (error): a [Confined]-kind site (session state) accessed
      by a second domain — the cross-domain extension of RX307.

    At most one race diagnostic is reported per site (the first racy
    pair in recording order). *)

val check :
  sites:Rox_util.Accesslog.site_info array ->
  Rox_util.Accesslog.event array ->
  Diagnostic.t list
(** Pure replay of an explicit recording — what the property tests feed
    with synthetic interleavings. *)

val check_log : unit -> Diagnostic.t list
(** [check] over the live global log ({!Rox_util.Accesslog.events} +
    {!Rox_util.Accesslog.sites_snapshot}). Call after worker domains
    have joined. *)

val summary :
  sites:Rox_util.Accesslog.site_info array ->
  Rox_util.Accesslog.event array ->
  string
(** One line: event/access/domain/site/lock counts of a recording. *)

type counts = {
  sv_requests : int;
  sv_responses : int;
  sv_submitted : int;
  sv_executed : int;
  sv_coalesced : int;
  sv_rejected : int;
  sv_divergence : int;
}

let check c =
  let diags = ref [] in
  if c.sv_responses > c.sv_requests then
    diags :=
      Diagnostic.of_code "RX601" Diagnostic.Graph_loc
        ~hint:
          "every reply (including protocol errors) must answer exactly one \
           parsed frame"
        (Printf.sprintf "%d response(s) written for %d parsed request(s)"
           c.sv_responses c.sv_requests)
      :: !diags;
  if c.sv_divergence > 0 then
    diags :=
      Diagnostic.of_code "RX602" Diagnostic.Graph_loc
        ~hint:
          "the coalescing key conflated two distinct computations — audit \
           the fingerprint parts (query text, seed, tau, budgets, epoch)"
        (Printf.sprintf
           "%d coalesced result(s) diverged from an independent execution"
           c.sv_divergence)
      :: !diags;
  let accounted = c.sv_executed + c.sv_coalesced + c.sv_rejected in
  if c.sv_submitted <> accounted then
    diags :=
      Diagnostic.of_code "RX603" Diagnostic.Graph_loc
        ~hint:
          "take the snapshot at quiescence (workers joined, queue drained) \
           — mid-flight snapshots legitimately imbalance"
        (Printf.sprintf
           "%d submitted request(s) but %d accounted (executed %d + \
            coalesced %d + rejected %d)"
           c.sv_submitted accounted c.sv_executed c.sv_coalesced c.sv_rejected)
      :: !diags;
  List.rev !diags

(** RX6xx soundness checks over the serving front-end's audit counters.

    The server ([Rox_serve.Server]) cannot be a dependency of this library
    (the analysis layer sits below it), so the contract is a plain record
    of audit counts the server produces at quiescence — after its workers
    joined and every submitted request was answered. [Rox_serve] re-exports
    {!check} as its self-audit; [rox serve --smoke] and the serve test
    suite fail on any diagnostic. *)

type counts = {
  sv_requests : int;    (** protocol frames parsed *)
  sv_responses : int;   (** protocol replies written *)
  sv_submitted : int;   (** QUERY requests admitted to the serving path *)
  sv_executed : int;    (** requests a worker executed (ok or error reply) *)
  sv_coalesced : int;   (** requests attached to an in-flight execution *)
  sv_rejected : int;    (** requests bounced off the full admission queue *)
  sv_divergence : int;  (** sanitize-mode coalesced-result cross-check failures *)
}

val check : counts -> Diagnostic.t list
(** Verify one quiescent audit snapshot:
    - RX601 — [sv_responses > sv_requests]: a reply without a parsed frame;
    - RX602 — [sv_divergence > 0]: a coalesced result differed bit-for-bit
      from an independent execution of the same request;
    - RX603 — [sv_submitted <> sv_executed + sv_coalesced + sv_rejected]:
      a request was dropped or double-served. *)

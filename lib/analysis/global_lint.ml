type kind = Capability.kind = Global | Field

type binding = {
  gb_file : string;
  gb_line : int;
  gb_kind : kind;
  gb_name : string;
  gb_what : string;
}

(* --- lexical stripping --------------------------------------------------- *)

(* Blank comments and string/char literals to spaces, preserving length
   and newlines so line/column arithmetic survives. Handles nested
   comments, escaped quotes, and distinguishes char literals from type
   variables ('a) by shape. *)
let strip src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let rec skip_string i =
    (* [i] is inside a string literal; returns index after closing quote. *)
    if i >= n then i
    else
      match src.[i] with
      | '"' ->
        blank i;
        i + 1
      | '\\' when i + 1 < n ->
        blank i;
        blank (i + 1);
        skip_string (i + 2)
      | _ ->
        blank i;
        skip_string (i + 1)
  in
  let rec skip_comment i depth =
    if i >= n then i
    else if i + 1 < n && src.[i] = '(' && src.[i + 1] = '*' then begin
      blank i;
      blank (i + 1);
      skip_comment (i + 2) (depth + 1)
    end
    else if i + 1 < n && src.[i] = '*' && src.[i + 1] = ')' then begin
      blank i;
      blank (i + 1);
      if depth = 1 then i + 2 else skip_comment (i + 2) (depth - 1)
    end
    else begin
      blank i;
      skip_comment (i + 1) depth
    end
  in
  let is_char_literal i =
    (* 'x' or '\n' / '\065' etc. — anything else ('a the type variable,
       numeric literal quotes) is left alone. *)
    i + 2 < n
    &&
    if src.[i + 1] = '\\' then
      (* find closing quote within a few chars *)
      let rec close j k =
        j < n && k < 6 && (src.[j] = '\'' || close (j + 1) (k + 1))
      in
      close (i + 2) 0
    else src.[i + 2] = '\''
  in
  let rec go i =
    if i >= n then ()
    else if i + 1 < n && src.[i] = '(' && src.[i + 1] = '*' then
      go (skip_comment i 0)
    else if src.[i] = '"' then begin
      blank i;
      go (skip_string (i + 1))
    end
    else if src.[i] = '\'' && is_char_literal i then begin
      let rec close j = if src.[j] = '\'' then j else close (j + 1) in
      let e = close (i + 1) in
      for k = i to e do
        blank k
      done;
      go (e + 1)
    end
    else go (i + 1)
  in
  go 0;
  Bytes.to_string out

(* --- token helpers ------------------------------------------------------- *)

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

(* [tok] may contain dots ("Atomic.make"); a match requires non-ident
   characters (or boundaries) on both sides. *)
let contains_token text tok =
  let tn = String.length tok and n = String.length text in
  let rec go i =
    if i + tn > n then false
    else if
      String.sub text i tn = tok
      && (i = 0 || not (is_ident_char text.[i - 1]))
      && (i + tn >= n || (not (is_ident_char text.[i + tn])) && text.[i + tn] <> '.')
    then true
    else go (i + 1)
  in
  go 0

(* Creation patterns: (needle, token?, label). Non-token needles match as
   raw substrings (the array-literal bracket). *)
let creations =
  [
    ("ref", true, "ref");
    ("Atomic.make", true, "Atomic.make");
    ("Mutex.create", true, "Mutex.create");
    ("Condition.create", true, "Condition.create");
    ("Domain.DLS.new_key", true, "Domain.DLS.new_key");
    ("DLS.new_key", true, "Domain.DLS.new_key");
    ("Hashtbl.create", true, "Hashtbl.create");
    ("Buffer.create", true, "Buffer.create");
    ("Queue.create", true, "Queue.create");
    ("Stack.create", true, "Stack.create");
    ("Bytes.create", true, "Bytes.create");
    ("Bytes.make", true, "Bytes.make");
    ("Array.make", true, "Array.make");
    ("Array.init", true, "Array.init");
    ("Array.create_float", true, "Array.create_float");
    ("[|", false, "array literal");
  ]

let creation_in text =
  let rec go = function
    | [] -> None
    | (needle, tokenized, label) :: rest ->
      let hit =
        if tokenized then contains_token text needle
        else
          (* raw substring *)
          let nn = String.length needle and n = String.length text in
          let rec sub i =
            i + nn <= n && (String.sub text i nn = needle || sub (i + 1))
          in
          sub 0
      in
      if hit then Some label else go rest
  in
  go creations

let ident_at text i =
  let n = String.length text in
  let rec fin j = if j < n && is_ident_char text.[j] then fin (j + 1) else j in
  let e = fin i in
  if e > i then Some (String.sub text i (e - i), e) else None

let skip_ws text i =
  let n = String.length text in
  let rec go j =
    if j < n && (text.[j] = ' ' || text.[j] = '\t') then go (j + 1) else j
  in
  go i

(* --- scanning ------------------------------------------------------------ *)

let starts_with_kw line kw =
  let n = String.length kw in
  String.length line >= n
  && String.sub line 0 n = kw
  && (String.length line = n || not (is_ident_char line.[n]))

(* Index of the first '=' at bracket depth 0 that is a plain binding
   equals (not part of =>, <=, ==, !=, :=). *)
let binding_eq line from =
  let n = String.length line in
  let rec go i depth =
    if i >= n then None
    else
      match line.[i] with
      | '(' | '[' | '{' -> go (i + 1) (depth + 1)
      | ')' | ']' | '}' -> go (i + 1) (depth - 1)
      | '=' when depth = 0 ->
        let prev_op = i > from && (match line.[i - 1] with
          | '<' | '>' | '!' | ':' | '=' | '+' | '-' | '*' | '/' -> true
          | _ -> false)
        and next_op = i + 1 < n && (match line.[i + 1] with
          | '=' | '>' -> true
          | _ -> false)
        in
        if prev_op || next_op then go (i + 1) depth else Some i
      | _ -> go (i + 1) depth
  in
  go from 0

let region_blank text a b =
  let rec go i = i >= b || ((text.[i] = ' ' || text.[i] = '\t') && go (i + 1)) in
  go a

(* Scan one file's stripped lines. *)
let scan_lines ~file lines =
  let findings = ref [] in
  let n = Array.length lines in
  (* Block = [start] .. first following line whose column 0 is a letter
     or '('. *)
  let block_end start =
    let rec go i =
      if i >= n then i
      else
        let l = lines.(i) in
        if String.length l > 0 && (is_ident_char l.[0] || l.[0] = '(') then i
        else go (i + 1)
    in
    go (start + 1)
  in
  let block_text start stop =
    String.concat "\n" (Array.to_list (Array.sub lines start (stop - start)))
  in
  (* Type context for attributing mutable fields. *)
  let current_type = ref "" in
  let in_type_group = ref false in
  let update_type_ctx line =
    let l = skip_ws line 0 in
    let take kw =
      if
        starts_with_kw (String.sub line l (String.length line - l)) kw
        && (kw <> "and" || !in_type_group)
      then begin
        (* Name = last identifier before '=' (or line end): skips
           parameters like 'v and !'row. *)
        let stop =
          match String.index_from_opt line l '=' with
          | Some e -> e
          | None -> String.length line
        in
        let name = ref "" in
        let i = ref (l + String.length kw) in
        while !i < stop do
          (match ident_at line !i with
           | Some (id, e) ->
             if id <> "nonrec" && id <> "private" then name := id;
             i := e
           | None -> incr i)
        done;
        if !name <> "" then begin
          current_type := !name;
          if kw = "type" then in_type_group := true
        end;
        true
      end
      else false
    in
    if not (take "type") then ignore (take "and" : bool)
  in
  let i = ref 0 in
  while !i < n do
    let line = lines.(!i) in
    let col0 =
      String.length line > 0 && (is_ident_char line.[0] || line.[0] = '(')
    in
    (* Column-zero [let] value bindings. *)
    if col0 && starts_with_kw line "let" then begin
      in_type_group := false;
      let stop = block_end !i in
      let text = block_text !i stop in
      let p = skip_ws text 3 in
      let p = if starts_with_kw (String.sub text p (String.length text - p)) "rec"
        then skip_ws text (p + 3) else p
      in
      (match ident_at text p with
       | Some (name, e) when name <> "_" ->
         let q = skip_ws text e in
         (match binding_eq text q with
          | Some eq ->
            (* Value binding: nothing between the name and '=', or only
               a type annotation (starts with ':'). Anything else is a
               parameter list — a function, whose per-call state is not
               global. *)
            let is_value = region_blank text q eq || text.[q] = ':' in
            if is_value then
              let rhs = String.sub text (eq + 1) (String.length text - eq - 1) in
              (match creation_in rhs with
               | Some what ->
                 findings :=
                   {
                     gb_file = file;
                     gb_line = !i + 1;
                     gb_kind = Global;
                     gb_name = name;
                     gb_what = what;
                   }
                   :: !findings
               | None -> ())
          | None -> ())
       | _ -> ());
      i := stop
    end
    else begin
      if col0 && not (starts_with_kw line "type") && not (starts_with_kw line "and")
      then in_type_group := false;
      update_type_ctx line;
      (* Mutable fields at any depth. *)
      (if contains_token line "mutable" then
         let rec find_from j =
           match ident_at line (skip_ws line j) with
           | Some ("mutable", e) ->
             let fe = skip_ws line e in
             (match ident_at line fe with
              | Some (field, fend) ->
                let tname = if !current_type = "" then "?" else !current_type in
                findings :=
                  {
                    gb_file = file;
                    gb_line = !i + 1;
                    gb_kind = Field;
                    gb_name = tname ^ "." ^ field;
                    gb_what = "mutable field";
                  }
                  :: !findings;
                find_from fend
              | None -> ())
           | Some (_, e) -> find_from e
           | None ->
             let j' = skip_ws line j in
             if j' < String.length line then find_from (j' + 1)
         in
         find_from 0);
      incr i
    end
  done;
  List.rev !findings

let scan_source ~file src =
  let clean = strip src in
  scan_lines ~file (Array.of_list (String.split_on_char '\n' clean))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan_path path = scan_source ~file:path (read_file path)

let scan_root root =
  let files = ref [] in
  let rec walk dir rel =
    let entries = Sys.readdir dir in
    Array.sort compare entries;
    Array.iter
      (fun e ->
        let p = Filename.concat dir e in
        let r = rel ^ "/" ^ e in
        if Sys.is_directory p then (if e <> "_build" && e.[0] <> '.' then walk p r)
        else if Filename.check_suffix e ".ml" then files := (p, r) :: !files)
      entries
  in
  (* Findings are named relative to the root's parent (["lib/util/x.ml"]
     whether invoked as [lib] or [../lib]), so the capability allowlist
     matches from any working directory. *)
  walk root (Filename.basename root);
  List.concat_map
    (fun (p, r) -> scan_source ~file:r (read_file p))
    (List.sort compare !files)

(* --- checking ------------------------------------------------------------ *)

let check bindings =
  let used = Hashtbl.create 16 in
  let diags = ref [] in
  List.iter
    (fun b ->
      match Capability.find ~file:b.gb_file ~kind:b.gb_kind ~name:b.gb_name with
      | Some e when e.Capability.cap_guard <> "" -> Hashtbl.replace used e ()
      | Some e ->
        Hashtbl.replace used e ();
        diags :=
          Diagnostic.of_code "RX510"
            (Diagnostic.Source (b.gb_file, b.gb_line))
            (Printf.sprintf
               "allowlist entry for %s %s has an empty guard — document the \
                discipline that makes it safe"
               (Capability.kind_string b.gb_kind) b.gb_name)
          :: !diags
      | None ->
        diags :=
          Diagnostic.of_code "RX510"
            (Diagnostic.Source (b.gb_file, b.gb_line))
            ~hint:
              "add an entry to Capability.allowlist stating the guard, or \
               confine the state to a session/domain"
            (Printf.sprintf "undocumented mutable %s `%s` (%s)"
               (Capability.kind_string b.gb_kind) b.gb_name b.gb_what)
          :: !diags)
    bindings;
  List.iter
    (fun e ->
      if not (Hashtbl.mem used e) then
        diags :=
          Diagnostic.of_code "RX511"
            (Diagnostic.Source (e.Capability.cap_file, 0))
            (Printf.sprintf
               "stale allowlist entry: %s `%s` matches no source binding — \
                remove it"
               (Capability.kind_string e.Capability.cap_kind)
               e.Capability.cap_name)
          :: !diags)
    Capability.allowlist;
  List.rev !diags

let run ~root = Report.make ~subject:("lint:" ^ root) (check (scan_root root))

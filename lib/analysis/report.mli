(** Aggregation and rendering of analysis diagnostics. *)

type t = {
  subject : string;
  diagnostics : Diagnostic.t list;  (** errors first, then warnings, then infos *)
}

val make : subject:string -> Diagnostic.t list -> t
(** Sorts errors first (stable within each severity). *)

val errors : t -> int
val warnings : t -> int
val has_errors : t -> bool
val summary : t -> string
val to_string : t -> string
val print : ?oc:out_channel -> t -> unit

val exit_code : t list -> int
(** [1] if any report contains an error, [0] otherwise. *)

val to_json : t -> Rox_util.Minijson.t
(** One report as a JSON object (subject, counts, diagnostics). *)

val json_string : t list -> string
(** The [--json] payload: [{reports, errors, warnings, exit_code}] —
    stable keys so CI can assert on specific codes instead of grepping
    rendered text. *)

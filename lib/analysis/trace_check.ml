open Rox_joingraph
module D = Diagnostic

(* Replay state for the per-component cardinality accounting (RX108):
   which component each vertex belongs to, its current row count, and its
   member vertices (components merge on fuse). *)
type comp = { mutable rows : int; mutable members : int list }

type replay = {
  weighted : bool array;
  chosen : bool array;
  executed : bool array;
  comp_of : int array;
  mutable comps : comp option array;
  mutable ncomps : int;
  equi_uf : int array;
  (* Chain bookkeeping between Chain_started and Chain_chosen. *)
  mutable chain : (int * int) option;  (** (source, min_edge) *)
  mutable chain_round : int;
  mutable chain_cutoff : int;
  mutable next_order : int;
}

let rec uf_find uf v = if uf.(v) = v then v else (uf.(v) <- uf_find uf uf.(v); uf.(v))

let uf_union uf a b =
  let ra = uf_find uf a and rb = uf_find uf b in
  if ra <> rb then uf.(ra) <- rb

let new_comp r rows members =
  if r.ncomps >= Array.length r.comps then begin
    let bigger = Array.make (max 8 (2 * Array.length r.comps)) None in
    Array.blit r.comps 0 bigger 0 r.ncomps;
    r.comps <- bigger
  end;
  let cid = r.ncomps in
  r.comps.(cid) <- Some { rows; members };
  r.ncomps <- cid + 1;
  List.iter (fun v -> r.comp_of.(v) <- cid) members;
  cid

let comp_exn r cid = match r.comps.(cid) with Some c -> c | None -> assert false

let bad_stat f = Float.is_nan f || f < 0.0

(* Walk [edges] from [source]: each edge must extend the frontier vertex
   reached so far (a chain segment is a path, Section 3.2). *)
let path_connected graph source edges =
  let ok = ref true and cur = ref source in
  List.iter
    (fun id ->
      if !ok then begin
        let e = Graph.edge graph id in
        if Edge.touches e !cur then cur := Edge.other_end e !cur else ok := false
      end)
    edges;
  !ok

let check (g : Graph.t) (trace : Trace.t) =
  let out = ref [] in
  let add d = out := d :: !out in
  let nv = Graph.vertex_count g and ne = Graph.edge_count g in
  let r =
    {
      weighted = Array.make ne false;
      chosen = Array.make ne false;
      executed = Array.make ne false;
      comp_of = Array.make nv (-1);
      comps = Array.make 8 None;
      ncomps = 0;
      equi_uf = Array.init nv (fun i -> i);
      chain = None;
      chain_round = 0;
      chain_cutoff = 0;
      next_order = 1;
    }
  in
  let valid_edge id = id >= 0 && id < ne in
  let valid_vertex v = v >= 0 && v < nv in
  List.iteri
    (fun idx ev ->
      let loc = D.Event idx in
      match (ev : Trace.event) with
      | Trace.Vertex_initialized { vertex; card } ->
        if not (valid_vertex vertex) then
          add
            (D.error "RX111" loc
               (Printf.sprintf "initialized unknown vertex v%d (graph has %d)" vertex nv))
        else if card < 0 then
          add
            (D.error "RX111" loc
               (Printf.sprintf "vertex v%d initialized with negative cardinality %d"
                  vertex card))
      | Trace.Edge_weighted { edge; weight } ->
        if not (valid_edge edge) then
          add
            (D.error "RX112" loc
               (Printf.sprintf "weighted unknown edge e%d (graph has %d)" edge ne))
        else if bad_stat weight then
          add
            (D.error "RX112" loc
               (Printf.sprintf "edge e%d weighted %s" edge (string_of_float weight)))
        else r.weighted.(edge) <- true
      | Trace.Chain_started { source; min_edge } ->
        r.chain_round <- 0;
        r.chain_cutoff <- 0;
        if not (valid_edge min_edge) then begin
          r.chain <- None;
          add
            (D.error "RX106" loc
               (Printf.sprintf "chain started from unknown edge e%d" min_edge))
        end
        else if
          (not (valid_vertex source))
          || not (Edge.touches (Graph.edge g min_edge) source)
        then begin
          r.chain <- None;
          add
            (D.error "RX106" loc
               (Printf.sprintf "chain source v%d is not an endpoint of edge e%d" source
                  min_edge))
        end
        else r.chain <- Some (source, min_edge)
      | Trace.Chain_round { round; cutoff; paths } ->
        if r.chain = None then
          add
            (D.error "RX105" loc "chain round emitted outside a chain (no Chain_started)")
        else begin
          if round <> r.chain_round + 1 then
            add
              (D.error "RX105" loc
                 (Printf.sprintf "round %d follows round %d (must be consecutive)" round
                    r.chain_round));
          if cutoff < r.chain_cutoff then
            add
              (D.error "RX105" loc
                 (Printf.sprintf "cutoff shrank from %d to %d (must grow monotonically)"
                    r.chain_cutoff cutoff));
          if cutoff <= 0 then
            add (D.error "RX105" loc (Printf.sprintf "cutoff %d is not positive" cutoff));
          r.chain_round <- round;
          r.chain_cutoff <- max r.chain_cutoff cutoff;
          List.iter
            (fun (p : Trace.chain_path) ->
              if bad_stat p.Trace.cost || bad_stat p.Trace.sf then
                add
                  (D.error "RX113" loc
                     (Printf.sprintf "segment %s has cost %s, sf %s" p.Trace.label
                        (string_of_float p.Trace.cost) (string_of_float p.Trace.sf))))
            paths
        end
      | Trace.Chain_chosen { edges; trigger = _ } ->
        (match r.chain with
         | None ->
           add
             (D.error "RX106" loc
                "chain choice emitted outside a chain (no Chain_started)")
         | Some (source, _min_edge) ->
           let ids_ok =
             List.for_all
               (fun id ->
                 if valid_edge id then true
                 else begin
                   add
                     (D.error "RX106" loc
                        (Printf.sprintf "chain chose unknown edge e%d" id));
                   false
                 end)
               edges
           in
           if ids_ok then begin
             List.iter
               (fun id ->
                 if r.executed.(id) then
                   add
                     (D.error "RX110" loc
                        (Printf.sprintf "chain chose already-executed edge e%d" id)))
               edges;
             if edges = [] then
               add (D.error "RX106" loc "chain chose an empty path segment")
             else if not (path_connected g source edges) then
               add
                 (D.error "RX106" loc
                    (Printf.sprintf
                       "chosen edges [%s] do not form a connected path from v%d"
                       (String.concat "; "
                          (List.map (fun id -> Printf.sprintf "e%d" id) edges))
                       source));
             List.iter (fun id -> r.chosen.(id) <- true) edges
           end);
        r.chain <- None
      | Trace.Edge_executed { edge; order; pairs; rel_rows } ->
        if not (valid_edge edge) then
          add
            (D.error "RX101" loc
               (Printf.sprintf "executed unknown edge e%d (graph has %d)" edge ne))
        else begin
          let e = Graph.edge g edge in
          if r.executed.(edge) then
            add (D.error "RX102" loc (Printf.sprintf "edge e%d executed twice" edge));
          r.executed.(edge) <- true;
          if order <> r.next_order then
            add
              (D.error "RX103" loc
                 (Printf.sprintf "execution order %d, expected %d (contiguous from 1)"
                    order r.next_order));
          r.next_order <- r.next_order + 1;
          if not (r.weighted.(edge) || r.chosen.(edge)) then
            add
              (D.error "RX104" loc
                 ~hint:"Algorithm 2 weighs every edge before it may execute"
                 (Printf.sprintf
                    "edge e%d executed without a prior weight or chain choice" edge));
          if Runtime.is_trivial_edge g e then
            add
              (D.error "RX107" loc
                 (Printf.sprintf
                    "trivial root-descendant edge e%d appears in the execution order"
                    edge));
          if pairs < 0 || rel_rows < 0 then
            add
              (D.error "RX108" loc
                 (Printf.sprintf "negative cardinality (pairs %d, rows %d)" pairs
                    rel_rows))
          else begin
            (* Component replay: check the produced row count against the
               relational-algebra bound of the operation performed. *)
            let v1 = e.Edge.v1 and v2 = e.Edge.v2 in
            let c1 = r.comp_of.(v1) and c2 = r.comp_of.(v2) in
            let fl = float_of_int in
            let violation bound op_name =
              add
                (D.error "RX108" loc
                   (Printf.sprintf
                      "edge e%d (%s) produced %d rows from %d pairs, bound is %.0f"
                      edge op_name rel_rows pairs bound))
            in
            if pairs = 0 && rel_rows > 0 then
              add
                (D.error "RX108" loc
                   (Printf.sprintf "edge e%d produced %d rows from zero pairs" edge
                      rel_rows))
            else if c1 < 0 && c2 < 0 then begin
              if rel_rows <> pairs then
                add
                  (D.error "RX108" loc
                     (Printf.sprintf
                        "fresh component of edge e%d has %d rows, expected exactly %d \
                         pairs"
                        edge rel_rows pairs));
              ignore (new_comp r rel_rows [ v1; v2 ])
            end
            else if c1 >= 0 && c2 >= 0 && c1 = c2 then begin
              let c = comp_exn r c1 in
              if rel_rows > c.rows then violation (fl c.rows) "filter";
              c.rows <- rel_rows
            end
            else if c1 >= 0 && c2 >= 0 then begin
              let a = comp_exn r c1 and b = comp_exn r c2 in
              if fl rel_rows > fl a.rows *. fl b.rows *. fl pairs then
                violation (fl a.rows *. fl b.rows *. fl pairs) "fuse";
              a.rows <- rel_rows;
              a.members <- a.members @ b.members;
              List.iter (fun v -> r.comp_of.(v) <- c1) b.members;
              r.comps.(c2) <- None
            end
            else begin
              let cid, fresh = if c1 >= 0 then (c1, v2) else (c2, v1) in
              let c = comp_exn r cid in
              if fl rel_rows > fl c.rows *. fl pairs then
                violation (fl c.rows *. fl pairs) "extend";
              c.rows <- rel_rows;
              c.members <- fresh :: c.members;
              r.comp_of.(fresh) <- cid
            end
          end;
          match e.Edge.op with
          | Edge.Equijoin -> uf_union r.equi_uf e.Edge.v1 e.Edge.v2
          | Edge.Step _ -> ()
        end
      | Trace.Cache_lookup { edge; store = _; hit = _ } ->
        (* Cache consultations are free-form (estimate lookups happen for
           edges never executed); only the edge id must be real. *)
        if not (valid_edge edge) then
          add
            (D.error "RX114" loc
               (Printf.sprintf "cache lookup on unknown edge e%d (graph has %d)" edge
                  ne))
      | Trace.Truncated { dropped } ->
        (* A partial trace legitimately trips RX109 (and possibly RX103 if
           later chunks of the execution order were dropped); surface the
           truncation itself so those follow-on findings can be read in
           context. *)
        add
          (D.warning "RX115" loc
             ~hint:"raise the cap via Trace.create ?cap to capture the full run"
             (Printf.sprintf "trace truncated: %d event(s) dropped past the cap"
                dropped)))
    (Trace.events trace);
  (* RX109: completeness. Every non-trivial edge must have been executed or
     be transitively implied by executed equi-joins (Runtime.sweep_implied
     marks those without emitting an event). *)
  Array.iter
    (fun (e : Edge.t) ->
      if (not r.executed.(e.Edge.id)) && not (Runtime.is_trivial_edge g e) then begin
        let implied =
          match e.Edge.op with
          | Edge.Equijoin -> uf_find r.equi_uf e.Edge.v1 = uf_find r.equi_uf e.Edge.v2
          | Edge.Step _ -> false
        in
        if not implied then
          add
            (D.warning "RX109" (D.Edge e.Edge.id)
               ~hint:"partial traces (sampling-only runs) are expected to trip this"
               (Printf.sprintf "non-trivial edge e%d was never executed" e.Edge.id))
      end)
    (Graph.edges g);
  List.rev !out

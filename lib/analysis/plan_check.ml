open Rox_joingraph
module D = Diagnostic

let rec uf_find uf v = if uf.(v) = v then v else (uf.(v) <- uf_find uf uf.(v); uf.(v))

let uf_union uf a b =
  let ra = uf_find uf a and rb = uf_find uf b in
  if ra <> rb then uf.(ra) <- rb

let check (g : Graph.t) (plan : int list) =
  let out = ref [] in
  let add d = out := d :: !out in
  let ne = Graph.edge_count g and nv = Graph.vertex_count g in
  let seen = Array.make ne false in
  let touched = Array.make nv false in
  let any_touched = ref false in
  (* Equi-joins the plan does execute connect their endpoints; an absent
     equi-join between already-connected endpoints is transitively implied
     (Figure 4's closure edges are alternatives, not extra work). *)
  let equi_uf = Array.init nv (fun i -> i) in
  List.iteri
    (fun pos id ->
      if id < 0 || id >= ne then
        add
          (D.error "RX201" (D.Plan_pos pos)
             (Printf.sprintf "unknown edge id e%d (graph has %d edges)" id ne))
      else begin
        let e = Graph.edge g id in
        if seen.(id) then
          add
            (D.error "RX202" (D.Plan_pos pos)
               (Printf.sprintf "edge e%d appears twice in the plan" id))
        else seen.(id) <- true;
        if Runtime.is_trivial_edge g e then
          add
            (D.warning "RX204" (D.Plan_pos pos)
               ~hint:"root-descendant edges are pre-satisfied and need no plan step"
               (Printf.sprintf "trivial edge e%d listed in the plan" id));
        (* A step that touches no vertex reached so far starts a fresh
           component. Legitimate plans do this too (multi-document graphs,
           shuffled baselines), so this is informational only. *)
        if !any_touched && (not touched.(e.Edge.v1)) && not touched.(e.Edge.v2) then
          add
            (D.info "RX205" (D.Plan_pos pos)
               (Printf.sprintf "edge e%d opens a new component" id));
        touched.(e.Edge.v1) <- true;
        touched.(e.Edge.v2) <- true;
        any_touched := true;
        match e.Edge.op with
        | Edge.Equijoin -> uf_union equi_uf e.Edge.v1 e.Edge.v2
        | Edge.Step _ -> ()
      end)
    plan;
  Array.iter
    (fun (e : Edge.t) ->
      if (not seen.(e.Edge.id)) && not (Runtime.is_trivial_edge g e) then begin
        let implied =
          match e.Edge.op with
          | Edge.Equijoin -> uf_find equi_uf e.Edge.v1 = uf_find equi_uf e.Edge.v2
          | Edge.Step _ -> false
        in
        if implied then
          add
            (D.info "RX203" (D.Edge e.Edge.id)
               (Printf.sprintf
                  "equi-join edge e%d not in the plan but transitively implied"
                  e.Edge.id))
        else
          add
            (D.error "RX203" (D.Edge e.Edge.id)
               (Printf.sprintf "non-trivial edge e%d missing from the plan" e.Edge.id))
      end)
    (Graph.edges g);
  List.rev !out

(** The mutable-state capability allowlist behind [rox lint] (RX510/RX511).

    Every top-level mutable binding ([ref], [Atomic.t], [Mutex.t], DLS
    keys, arrays, growable tables) and every [mutable] record field under
    [lib/] must either be process-private by construction or carry an
    explicit entry here stating which discipline guards it. The lint
    ({!Global_lint}) scans the sources, matches what it finds against this
    list, and fails on any mutable state that is not documented (RX510) —
    so adding shared state to the engine forces the author to write down,
    in this file, why it is safe under multi-domain execution.

    Entries are matched by relative file path, binding kind, and name.
    The name is exact, or a wildcard of the form ["t.*"] / ["*"] covering
    every field of one record (one guard sentence for the whole record).
    An entry that matches nothing is itself reported (RX511) so the list
    cannot rot. *)

type kind =
  | Global  (** a top-level [let] binding creating mutable state *)
  | Field   (** a [mutable] record field, named [type.field] *)

type entry = {
  cap_file : string;  (** path relative to the scan root's parent, e.g.
                          ["lib/util/accesslog.ml"] *)
  cap_kind : kind;
  cap_name : string;  (** exact name, or a ["prefix.*"] / ["*"] wildcard *)
  cap_guard : string; (** the documented discipline that makes it safe;
                          must be non-empty or the entry fails the lint *)
}

val kind_string : kind -> string

val allowlist : entry list
(** Every mutable global and mutable field currently sanctioned under
    [lib/], each with its guard. Kept sorted by file. *)

val name_matches : pattern:string -> string -> bool
(** [name_matches ~pattern name] — exact match, or prefix match when
    [pattern] ends in [".*"] (["t.*"] matches ["t.bytes"]), or ["*"]
    matching everything. *)

val find : file:string -> kind:kind -> name:string -> entry option
(** First allowlist entry covering the given binding, if any. *)

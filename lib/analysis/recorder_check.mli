(** Flight-recorder verifier (RX7xx).

    Checks the {!Rox_telemetry.Recorder}'s three bounded layers against
    their invariants, at quiescence:

    - [RX701] record accounting: with [?submitted] (the RX603 audit's
      submitted count), every admitted request must have left exactly one
      flight record — executed, coalesced and rejected requests all
      record, so [Recorder.records = submitted]. This is what makes the
      slow log reconcile with the serve audit counters.
    - [RX702] every retained trace is well-nested per lane (the RX401
      discipline applied to the stored tree) with no negative durations —
      retention must store the chronological span order verbatim.
    - [RX703] tenant series cardinality respects the bound: at most
      [tenant_cap] named series plus the shared overflow bucket. *)

val check :
  ?submitted:int -> Rox_telemetry.Recorder.t -> Diagnostic.t list
(** [check ~submitted recorder] — omit [submitted] when no serve audit is
    available (e.g. a CLI-run recorder), which skips RX701. *)

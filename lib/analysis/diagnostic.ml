type severity = Error | Warning | Info

type location =
  | Graph_loc
  | Vertex of int
  | Edge of int
  | Event of int
  | Plan_pos of int
  | Span of int

type t = {
  severity : severity;
  code : string;
  location : location;
  message : string;
  hint : string option;
}

let make severity code location ?hint message =
  { severity; code; location; message; hint }

let error code location ?hint message = make Error code location ?hint message
let warning code location ?hint message = make Warning code location ?hint message
let info code location ?hint message = make Info code location ?hint message

let is_error d = d.severity = Error

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

(* Errors sort before warnings before infos. *)
let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let location_string = function
  | Graph_loc -> "graph"
  | Vertex v -> Printf.sprintf "vertex v%d" v
  | Edge e -> Printf.sprintf "edge e%d" e
  | Event i -> Printf.sprintf "trace event #%d" i
  | Plan_pos i -> Printf.sprintf "plan position %d" i
  | Span i -> Printf.sprintf "telemetry span #%d" i

let to_string d =
  let base =
    Printf.sprintf "[%s] %s at %s: %s" d.code (severity_string d.severity)
      (location_string d.location) d.message
  in
  match d.hint with
  | None -> base
  | Some h -> base ^ "\n  hint: " ^ h

let compare_severity a b = compare (severity_rank a.severity) (severity_rank b.severity)

(* One-line documentation per diagnostic code, for [rox_cli analyze --codes]
   and DESIGN.md cross-reference. *)
let code_docs =
  [
    ("RX001", "join graph is not connected");
    ("RX002", "vertex/edge table corruption (id or endpoint out of range)");
    ("RX003", "self-loop edge");
    ("RX004", "duplicate parallel edge (same endpoints and operator)");
    ("RX005", "equi-join endpoint is not a value (text/attribute) vertex");
    ("RX006", "step edge crosses document boundaries");
    ("RX007", "attribute-axis step targets a non-attribute vertex");
    ("RX008", "equi-closure inconsistency (derived edge not implied, or closure incomplete)");
    ("RX009", "multiple root vertices for one document");
    ("RX101", "trace executes an unknown edge id");
    ("RX102", "trace executes an edge twice");
    ("RX103", "execution order is not contiguous ascending");
    ("RX104", "edge executed without being weighted or chain-chosen first");
    ("RX105", "chain rounds not consecutive or cutoff not monotone");
    ("RX106", "chain-chosen edges do not form a connected path from the chain source");
    ("RX107", "trivial (root-descendant) edge appears in the execution order");
    ("RX108", "cardinality accounting violation during component replay");
    ("RX109", "non-trivial edge neither executed nor transitively implied");
    ("RX110", "chain chose an already-executed edge");
    ("RX111", "malformed vertex-initialized event");
    ("RX112", "malformed edge-weighted event");
    ("RX113", "malformed chain-round statistics");
    ("RX114", "cache lookup references an unknown edge id");
    ("RX115", "trace truncated at its event cap (later events dropped)");
    ("RX201", "plan references an unknown edge id");
    ("RX202", "plan lists an edge twice");
    ("RX203", "plan misses a non-trivial edge");
    ("RX204", "plan lists a trivial edge");
    ("RX205", "plan step opens a new component (non-contiguous plan)");
    ("RX301", "operator output violated the sorted duplicate-free contract");
    ("RX302", "operator output escaped its input domain");
    ("RX303", "operator exceeded its Table 1 cost bound");
    ("RX304", "cache hit differed from a fresh execution of the same operation");
    ("RX305", "a column's sorted flag contradicts its data");
    ("RX306", "columnar kernel diverged from the naive reference");
    ("RX307", "process-global mutable state read inside a session-confined run");
    ("RX401", "telemetry spans are not well-nested (overlap without containment)");
    ("RX402", "telemetry span has a negative duration");
    ("RX403", "executed edge has no matching telemetry span");
    ("RX404", "telemetry span buffer truncated (spans dropped past the cap)");
  ]

type severity = Error | Warning | Info

type location =
  | Graph_loc
  | Vertex of int
  | Edge of int
  | Event of int
  | Plan_pos of int
  | Span of int
  | Site of int
  | Source of string * int

type t = {
  severity : severity;
  code : string;
  location : location;
  message : string;
  hint : string option;
}

let make severity code location ?hint message =
  { severity; code; location; message; hint }

let error code location ?hint message = make Error code location ?hint message
let warning code location ?hint message = make Warning code location ?hint message
let info code location ?hint message = make Info code location ?hint message

let is_error d = d.severity = Error

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

(* Errors sort before warnings before infos. *)
let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let location_string = function
  | Graph_loc -> "graph"
  | Vertex v -> Printf.sprintf "vertex v%d" v
  | Edge e -> Printf.sprintf "edge e%d" e
  | Event i -> Printf.sprintf "trace event #%d" i
  | Plan_pos i -> Printf.sprintf "plan position %d" i
  | Span i -> Printf.sprintf "telemetry span #%d" i
  | Site i -> Printf.sprintf "shared site #%d" i
  | Source (file, line) -> Printf.sprintf "%s:%d" file line

let to_string d =
  let base =
    Printf.sprintf "[%s] %s at %s: %s" d.code (severity_string d.severity)
      (location_string d.location) d.message
  in
  match d.hint with
  | None -> base
  | Some h -> base ^ "\n  hint: " ^ h

let compare_severity a b = compare (severity_rank a.severity) (severity_rank b.severity)

(* --- the code registry --------------------------------------------------

   The single table every RX code lives in: default severity, the
   one-line summary shown by [rox analyze --codes], and the longer
   explanation behind [rox analyze --explain CODE]. Check modules may
   locally soften a code (e.g. RX005 downgrades to a warning on the
   untyped side of a join), but the code's meaning and its documentation
   come from here alone. *)

type code_info = {
  ci_code : string;
  ci_severity : severity;
  ci_summary : string;
  ci_detail : string;
}

let registry =
  [
    { ci_code = "RX000"; ci_severity = Error;
      ci_summary = "query could not be compiled to a join graph";
      ci_detail =
        "The XQuery front-end rejected the input before any graph \
         existed: a parse error, or a construct outside the supported \
         FLWOR/path fragment. Nothing downstream ran." };
    { ci_code = "RX001"; ci_severity = Error;
      ci_summary = "join graph is not connected";
      ci_detail =
        "Every vertex must be reachable from every other through step or \
         equi-join edges; a disconnected graph would make the answer a \
         cartesian product across components. Compile rejects these, so \
         seeing RX001 on a built graph means a construction bug." };
    { ci_code = "RX002"; ci_severity = Error;
      ci_summary = "vertex/edge table corruption (id or endpoint out of range)";
      ci_detail =
        "Internal invariant of the graph arena: ids are dense and every \
         edge endpoint indexes a live vertex. Only a constructor bug can \
         produce this." };
    { ci_code = "RX003"; ci_severity = Error;
      ci_summary = "self-loop edge";
      ci_detail =
        "An edge with both endpoints on one vertex has no join semantics \
         in the ROX algebra." };
    { ci_code = "RX004"; ci_severity = Warning;
      ci_summary = "duplicate parallel edge (same endpoints and operator)";
      ci_detail =
        "Two edges with identical endpoints and operator are redundant \
         work for the optimizer: one of them will execute, the other is \
         implied. Usually a compilation artifact worth deduplicating." };
    { ci_code = "RX005"; ci_severity = Error;
      ci_summary = "equi-join endpoint is not a value (text/attribute) vertex";
      ci_detail =
        "Value joins compare text or attribute content; an endpoint that \
         can never carry a value (a root, an untyped element) makes the \
         predicate vacuous. Softened to a warning when the vertex could \
         still carry mixed content." };
    { ci_code = "RX006"; ci_severity = Error;
      ci_summary = "step edge crosses document boundaries";
      ci_detail =
        "Structural axes (child, descendant, ...) are defined within one \
         document; only equi-joins may bridge documents." };
    { ci_code = "RX007"; ci_severity = Error;
      ci_summary = "attribute-axis step targets a non-attribute vertex";
      ci_detail =
        "An attribute step must land on an attribute vertex; landing \
         elsewhere means the compiler lost the axis/vertex pairing." };
    { ci_code = "RX008"; ci_severity = Error;
      ci_summary = "equi-closure inconsistency (derived edge not implied, or closure incomplete)";
      ci_detail =
        "Derived equi-join edges must be exactly the transitive closure \
         of the base value joins (paper Section 2.2): a derived edge \
         with no base chain implying it, or a missing implied edge, \
         breaks the optimizer's freedom to pick any join order." };
    { ci_code = "RX009"; ci_severity = Warning;
      ci_summary = "multiple root vertices for one document";
      ci_detail =
        "Each document contributes one root; duplicates are harmless for \
         correctness but inflate the graph and usually indicate a \
         compilation quirk." };
    { ci_code = "RX101"; ci_severity = Error;
      ci_summary = "trace executes an unknown edge id";
      ci_detail =
        "The replayed trace references an edge the graph does not have — \
         the trace and graph are out of sync." };
    { ci_code = "RX102"; ci_severity = Error;
      ci_summary = "trace executes an edge twice";
      ci_detail =
        "Each edge joins once; re-execution would double-count work and \
         signals a bookkeeping bug in the optimizer loop." };
    { ci_code = "RX103"; ci_severity = Error;
      ci_summary = "execution order is not contiguous ascending";
      ci_detail =
        "Edge_executed events must carry positions 0,1,2,... in order; \
         gaps or reordering mean events were lost or fabricated." };
    { ci_code = "RX104"; ci_severity = Error;
      ci_summary = "edge executed without being weighted or chain-chosen first";
      ci_detail =
        "ROX executes an edge only after sampling gave it a weight or a \
         chain round chose it (Algorithm 1/2); an unweighted execution \
         bypassed the run-time evidence the paper is built on." };
    { ci_code = "RX105"; ci_severity = Error;
      ci_summary = "chain rounds not consecutive or cutoff not monotone";
      ci_detail =
        "Chain sampling proceeds in rounds with a non-decreasing cutoff; \
         violations mean the Algorithm 2 loop went off-script." };
    { ci_code = "RX106"; ci_severity = Error;
      ci_summary = "chain-chosen edges do not form a connected path from the chain source";
      ci_detail =
        "Each chain round extends a connected path anchored at the chain \
         source vertex; a disconnected choice cannot be a chain." };
    { ci_code = "RX107"; ci_severity = Error;
      ci_summary = "trivial (root-descendant) edge appears in the execution order";
      ci_detail =
        "Root-descendant edges are implied by document structure and are \
         never physically executed; executing one wastes work and skews \
         the cost accounting." };
    { ci_code = "RX108"; ci_severity = Error;
      ci_summary = "cardinality accounting violation during component replay";
      ci_detail =
        "Replaying the trace against the component bookkeeping produced \
         different intermediate cardinalities than the trace recorded — \
         the executor and its accounting disagree." };
    { ci_code = "RX109"; ci_severity = Warning;
      ci_summary = "non-trivial edge neither executed nor transitively implied";
      ci_detail =
        "An edge the plan never covered: the answer may still be correct \
         via implication through executed joins, but the optimizer \
         should have accounted for it explicitly." };
    { ci_code = "RX110"; ci_severity = Error;
      ci_summary = "chain chose an already-executed edge";
      ci_detail =
        "Chain rounds explore unexecuted edges only; choosing an \
         executed one would re-join settled state." };
    { ci_code = "RX111"; ci_severity = Error;
      ci_summary = "malformed vertex-initialized event";
      ci_detail = "Vertex_initialized must name a live vertex, once." };
    { ci_code = "RX112"; ci_severity = Error;
      ci_summary = "malformed edge-weighted event";
      ci_detail =
        "Edge_weighted must name a live edge and carry a non-negative \
         weight." };
    { ci_code = "RX113"; ci_severity = Error;
      ci_summary = "malformed chain-round statistics";
      ci_detail =
        "A chain round's recorded sample sizes / estimates are \
         internally inconsistent (negative counts, estimate without a \
         sample)." };
    { ci_code = "RX114"; ci_severity = Error;
      ci_summary = "cache lookup references an unknown edge id";
      ci_detail =
        "Cache_lookup trace events must point at live edges; a dangling \
         id means the cache key schema and the graph diverged." };
    { ci_code = "RX115"; ci_severity = Warning;
      ci_summary = "trace truncated at its event cap (later events dropped)";
      ci_detail =
        "The bounded trace hit its cap and synthesized a Truncated \
         marker; replay checks that need the tail are skipped. Raise the \
         cap or trace a smaller run for full coverage." };
    { ci_code = "RX201"; ci_severity = Error;
      ci_summary = "plan references an unknown edge id";
      ci_detail = "The executed plan names an edge the graph lacks." };
    { ci_code = "RX202"; ci_severity = Error;
      ci_summary = "plan lists an edge twice";
      ci_detail = "A join order visits each edge at most once." };
    { ci_code = "RX203"; ci_severity = Error;
      ci_summary = "plan misses a non-trivial edge";
      ci_detail =
        "Every non-trivial edge must be executed or implied by the \
         executed set; downgraded to info when transitive implication \
         covers it." };
    { ci_code = "RX204"; ci_severity = Warning;
      ci_summary = "plan lists a trivial edge";
      ci_detail =
        "Trivial edges never execute physically; listing one in a plan \
         is harmless but sloppy." };
    { ci_code = "RX205"; ci_severity = Info;
      ci_summary = "plan step opens a new component (non-contiguous plan)";
      ci_detail =
        "ROX prefers plans that grow one connected component; opening a \
         second component forces a later cartesian-style merge. Legal, \
         sometimes optimal, always worth an eyebrow." };
    { ci_code = "RX301"; ci_severity = Error;
      ci_summary = "operator output violated the sorted duplicate-free contract";
      ci_detail =
        "Every algebra operator returns strictly increasing node \
         sequences; the sanitizer re-checked an output and found \
         disorder or duplicates." };
    { ci_code = "RX302"; ci_severity = Error;
      ci_summary = "operator output escaped its input domain";
      ci_detail =
        "An operator produced a node that none of its inputs contained — \
         it invented data." };
    { ci_code = "RX303"; ci_severity = Error;
      ci_summary = "operator exceeded its Table 1 cost bound";
      ci_detail =
        "The work an operator charged exceeded the paper's Table 1 \
         bound for its input sizes; either the kernel regressed or the \
         accounting lies." };
    { ci_code = "RX304"; ci_severity = Error;
      ci_summary = "cache hit differed from a fresh execution of the same operation";
      ci_detail =
        "Under ROX_SANITIZE=1 every cache hit is cross-checked \
         bit-for-bit against a fresh execution; a mismatch means stale \
         or corrupted cache state (check epoch scoping first)." };
    { ci_code = "RX305"; ci_severity = Error;
      ci_summary = "a column's sorted flag contradicts its data";
      ci_detail =
        "Kernels trust the sorted flag to pick merge paths; a dishonest \
         flag silently corrupts join results." };
    { ci_code = "RX306"; ci_severity = Error;
      ci_summary = "columnar kernel diverged from the naive reference";
      ci_detail =
        "The columnar kernel's output differed from the retained \
         row-major reference implementation on the same input." };
    { ci_code = "RX307"; ci_severity = Error;
      ci_summary = "process-global mutable state read inside a session-confined run";
      ci_detail =
        "While a session's confined region is armed, every operator must \
         draw RNG, counters and mode from the session it was handed; a \
         read through a process-global accessor breaks the isolation \
         that makes concurrent sessions sound." };
    { ci_code = "RX308"; ci_severity = Error;
      ci_summary = "lock-free shard hit differed from the locked reference lookup";
      ci_detail =
        "Under ROX_SANITIZE=1 every hit the sharded cache serves from \
         its lock-free read image is replayed through the single-lock \
         reference path; a mismatch means the published image diverged \
         from the authoritative shard table (check image maintenance \
         and epoch stamping first)." };
    { ci_code = "RX310"; ci_severity = Error;
      ci_summary = "partitioned parallel edge diverged from the sequential kernel";
      ci_detail =
        "Under ROX_SANITIZE=1 every edge executed as K partition-joins \
         on the domain pool is replayed through the sequential kernel \
         and bit-compared (the RX306 kernel-identity pattern lifted to \
         the partition layer); a mismatch means partitioning, a per-part \
         kernel, or the part-order merge broke the deterministic \
         row-order contract." };
    { ci_code = "RX401"; ci_severity = Error;
      ci_summary = "telemetry spans are not well-nested (overlap without containment)";
      ci_detail =
        "Spans from one sink must nest like a call tree; partial overlap \
         means a span leaked across an unwind." };
    { ci_code = "RX402"; ci_severity = Error;
      ci_summary = "telemetry span has a negative duration";
      ci_detail = "The monotonic clock cannot run backwards; a negative \
                   duration is a sink bookkeeping bug." };
    { ci_code = "RX403"; ci_severity = Error;
      ci_summary = "executed edge has no matching telemetry span";
      ci_detail =
        "Every Edge_executed trace event must have its execute_edge span \
         when telemetry is on; a missing span means an uninstrumented \
         execution path." };
    { ci_code = "RX404"; ci_severity = Warning;
      ci_summary = "telemetry span buffer truncated (spans dropped past the cap)";
      ci_detail =
        "The bounded span buffer hit its cap; exporters mark the \
         truncation and span-matching checks are skipped." };
    { ci_code = "RX501"; ci_severity = Error;
      ci_summary = "data race: unsynchronized cross-domain write to a shared site";
      ci_detail =
        "The access log recorded a write to a shared site that is \
         neither happens-before ordered with another domain's access to \
         the same site nor covered by a common lock — with at least one \
         side holding no lock at all. This is the racy interleaving the \
         detector exists to catch; the report names both accesses and \
         the locks (if any) each held." };
    { ci_code = "RX502"; ci_severity = Warning;
      ci_summary = "lock-discipline violation: site guarded by inconsistent lock sets";
      ci_detail =
        "Eraser-style lockset refinement: every access to the site held \
         some lock, but no single lock was common to all of them, so \
         mutual exclusion is not what orders the accesses. No race \
         manifested in this interleaving (happens-before covered every \
         pair), but the discipline is fragile — a scheduling change \
         could expose it." };
    { ci_code = "RX503"; ci_severity = Error;
      ci_summary = "mutation-epoch read/write race";
      ci_detail =
        "A read of a generation counter (e.g. the engine's mutation \
         epoch) raced an epoch bump from another domain: the reader may \
         mint a fingerprint in a retired generation. Epoch sites get \
         their own code because the damage is silent cache staleness, \
         not a crash." };
    { ci_code = "RX504"; ci_severity = Error;
      ci_summary = "session-confined state touched from multiple domains";
      ci_detail =
        "A site registered as single-owner (a session's run-time state) \
         recorded accesses from two different domains. Sessions are the \
         unit of confinement — sharing one across domains voids every \
         isolation guarantee RX307 polices within a domain. Extends \
         RX307 across the domain boundary." };
    { ci_code = "RX510"; ci_severity = Error;
      ci_summary = "undocumented mutable global or mutable field (not in the capability allowlist)";
      ci_detail =
        "rox lint inventories every top-level mutable binding (ref, \
         Atomic.t, Mutex.t, Hashtbl, DLS key, array literal) and every \
         mutable record field under lib/, and requires each to match an \
         entry in Rox_analysis.Capability.allowlist carrying a \
         documented guard (which lock, which confinement, or why \
         write-never). New shared state must state its discipline \
         before it lands." };
    { ci_code = "RX511"; ci_severity = Warning;
      ci_summary = "stale capability allowlist entry (matches no source binding)";
      ci_detail =
        "An allowlist entry in capability.ml matched nothing during the \
         lint scan: the state it documented was removed or renamed. \
         Delete or update the entry so the allowlist stays an honest \
         inventory." };
    { ci_code = "RX601"; ci_severity = Error;
      ci_summary = "server wrote more responses than it parsed requests";
      ci_detail =
        "The serving front-end's audit counters show responses_sent \
         exceeding requests_received: some reply was fabricated without a \
         matching parsed frame — a connection-handler bookkeeping bug \
         (every reply, including protocol errors, must answer exactly one \
         frame)." };
    { ci_code = "RX602"; ci_severity = Error;
      ci_summary = "coalesced result diverged from an independent execution";
      ci_detail =
        "Under ROX_SANITIZE=1 every request served by attaching to a \
         fingerprint-equal in-flight execution re-runs the query \
         independently afterwards and compares bit-for-bit. A divergence \
         means the coalescing key conflated two distinct computations \
         (wrong fingerprint parts, epoch leak) and a client received an \
         answer to someone else's query." };
    { ci_code = "RX603"; ci_severity = Error;
      ci_summary = "admission accounting imbalance (submitted != executed + coalesced + rejected)";
      ci_detail =
        "At quiescence every submitted request must be accounted for \
         exactly once: executed by a worker, attached to an in-flight \
         twin, or rejected at admission. An imbalance means a request was \
         dropped on the floor (a hung client) or double-served." };
    { ci_code = "RX701"; ci_severity = Error;
      ci_summary = "flight-recorder accounting imbalance (records != submitted)";
      ci_detail =
        "Every admitted request — executed, coalesced onto an in-flight \
         twin, or rejected at admission — must leave exactly one flight \
         record, so at quiescence the recorder's observed-record total \
         equals the RX603 audit's submitted count. An imbalance means a \
         request path skipped (or double-ran) its record_request hook \
         and the slow log no longer reconciles with the audit counters." };
    { ci_code = "RX702"; ci_severity = Error;
      ci_summary = "retained trace is not well-nested";
      ci_detail =
        "A span tree kept by tail sampling must satisfy the same \
         per-lane nesting discipline RX401 enforces on live sinks: \
         same-lane spans either nest or are disjoint, and spans never \
         have negative durations. A violation means retention corrupted \
         the chronological span order (or retained a half-built tree), \
         so the exported Chrome trace would render garbage." };
    { ci_code = "RX703"; ci_severity = Error;
      ci_summary = "tenant series cardinality exceeds the configured bound";
      ci_detail =
        "Per-tenant metrics are bounded to the first tenant_cap distinct \
         client_ids plus one shared overflow bucket, so a tenant flood \
         cannot grow the registry without limit. More series than \
         tenant_cap + 1 means the overflow routing broke and the scrape \
         payload (and its memory) now scales with attacker-chosen label \
         values." };
  ]

let find_code code =
  List.find_opt (fun ci -> ci.ci_code = code) registry

let of_code code location ?hint message =
  let severity =
    match find_code code with Some ci -> ci.ci_severity | None -> Error
  in
  make severity code location ?hint message

(* Kept as the registry's (code, summary) projection for existing callers. *)
let code_docs = List.map (fun ci -> (ci.ci_code, ci.ci_summary)) registry

let explain code =
  match find_code code with
  | None -> None
  | Some ci ->
    Some
      (Printf.sprintf "%s (%s)\n  %s\n\n%s" ci.ci_code
         (severity_string ci.ci_severity) ci.ci_summary ci.ci_detail)

let registry_markdown () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "| code | severity | meaning |\n|---|---|---|\n";
  List.iter
    (fun ci ->
      Buffer.add_string buf
        (Printf.sprintf "| %s | %s | %s |\n" ci.ci_code
           (severity_string ci.ci_severity) ci.ci_summary))
    registry;
  Buffer.contents buf

let location_json loc =
  let open Rox_util.Minijson in
  match loc with
  | Graph_loc -> Obj [ ("kind", Str "graph") ]
  | Vertex v -> Obj [ ("kind", Str "vertex"); ("id", Num (float_of_int v)) ]
  | Edge e -> Obj [ ("kind", Str "edge"); ("id", Num (float_of_int e)) ]
  | Event i -> Obj [ ("kind", Str "event"); ("index", Num (float_of_int i)) ]
  | Plan_pos i -> Obj [ ("kind", Str "plan"); ("index", Num (float_of_int i)) ]
  | Span i -> Obj [ ("kind", Str "span"); ("index", Num (float_of_int i)) ]
  | Site i -> Obj [ ("kind", Str "site"); ("id", Num (float_of_int i)) ]
  | Source (file, line) ->
    Obj [ ("kind", Str "source"); ("file", Str file); ("line", Num (float_of_int line)) ]

let to_json d =
  let open Rox_util.Minijson in
  let fields =
    [
      ("code", Str d.code);
      ("severity", Str (severity_string d.severity));
      ("location", location_json d.location);
      ("location_string", Str (location_string d.location));
      ("message", Str d.message);
    ]
  in
  let fields =
    match d.hint with None -> fields | Some h -> fields @ [ ("hint", Str h) ]
  in
  Obj fields

(** User-facing face of the operator-contract sanitizer.

    The low-level hooks live in [Rox_algebra.Sanitize] (a single
    [!enabled] flag checked on the operator hot paths — zero cost when
    off, which is the default). This module turns violations into
    {!Diagnostic.t} values: RX301 for sorted/duplicate-free breaches,
    RX302 for domain escapes, RX303 for Table 1 cost-bound overruns. *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Programmatic switch; the [ROX_SANITIZE] environment variable sets the
    initial value. *)

val diagnostic_of_violation :
  ?label:string -> Rox_algebra.Sanitize.violation -> Diagnostic.t

val wrap : ?label:string -> (unit -> 'a) -> ('a, Diagnostic.t) result
(** [wrap f] runs [f] with the sanitizer enabled (restoring the previous
    flag afterwards) and converts the first {!Rox_algebra.Sanitize.Violation}
    into an error diagnostic. Other exceptions propagate. *)

(** User-facing face of the operator-contract sanitizer.

    The low-level hooks live in [Rox_algebra.Sanitize]; the sanitize mode
    is a per-session capability threaded into every operator — zero cost
    when off, which is the default. This module turns violations into
    {!Diagnostic.t} values: RX301 for sorted/duplicate-free breaches,
    RX302 for domain escapes, RX303 for Table 1 cost-bound overruns,
    RX304 for cache replay divergence, RX305 for sorted-flag lies, RX306
    for kernel/reference divergence, and RX307 for session-confinement
    breaches — an operator reading process-global mutable state (e.g.
    falling back to [Sanitize.default_mode] instead of its session's
    threaded mode) inside an armed session region. *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** The process-global *default* sanitize mode (aliases of
    [Rox_algebra.Sanitize.default_mode] / [set_default_mode]); the
    [ROX_SANITIZE] environment variable sets the initial value. Sessions
    snapshot it at construction — flipping it never affects a session
    already built, and reading it inside an armed session region is
    itself an RX307 violation. *)

val diagnostic_of_violation :
  ?label:string -> Rox_algebra.Sanitize.violation -> Diagnostic.t

val wrap : ?label:string -> (unit -> 'a) -> ('a, Diagnostic.t) result
(** [wrap f] converts the first {!Rox_algebra.Sanitize.Violation} raised
    by [f] into an error diagnostic. Other exceptions propagate. [f] is
    expected to run under a sanitize-on session of its own; [wrap] does
    not mutate the global default. *)

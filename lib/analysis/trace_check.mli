(** Replay verification of an optimizer event trace (Algorithm 2).

    Replays a [Rox_joingraph.Trace.t] against its Join Graph and verifies
    the run-time discipline the paper prescribes: executed edges exist and
    execute once (RX101/RX102) in contiguous order (RX103) after being
    weighted or chain-chosen (RX104); chain rounds are consecutive with a
    monotonically growing cutoff (RX105) and well-formed statistics
    (RX113); chosen segments form connected paths anchored at the chain
    source (RX106, RX110); trivial edges never execute (RX107); per-edge
    cardinalities respect the relational bounds of the component operation
    performed (RX108); and every non-trivial edge is eventually executed or
    transitively implied by executed equi-joins (RX109, warning). *)

val check : Rox_joingraph.Graph.t -> Rox_joingraph.Trace.t -> Diagnostic.t list

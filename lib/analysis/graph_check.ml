open Rox_joingraph
module D = Diagnostic

(* Union-find over an int range, local to a single check. *)
let uf_create n = Array.init n (fun i -> i)

let rec uf_find uf v = if uf.(v) = v then v else (uf.(v) <- uf_find uf uf.(v); uf.(v))

let uf_union uf a b =
  let ra = uf_find uf a and rb = uf_find uf b in
  if ra <> rb then uf.(ra) <- rb

let is_value_annot = function
  | Vertex.Text _ | Vertex.Attr _ -> true
  | Vertex.Root | Vertex.Element _ -> false

let check (g : Graph.t) =
  let out = ref [] in
  let add d = out := d :: !out in
  let nv = Graph.vertex_count g in
  let vertices = Graph.vertices g and edges = Graph.edges g in

  (* RX002: table integrity. Everything else indexes by vertex/edge id, so
     bail out of the remaining checks if the tables themselves are broken. *)
  let tables_ok = ref true in
  Array.iteri
    (fun i (v : Vertex.t) ->
      if v.Vertex.id <> i then begin
        tables_ok := false;
        add
          (D.error "RX002" (D.Vertex i)
             (Printf.sprintf "vertex at index %d carries id %d" i v.Vertex.id))
      end)
    vertices;
  Array.iteri
    (fun i (e : Edge.t) ->
      if e.Edge.id <> i then begin
        tables_ok := false;
        add
          (D.error "RX002" (D.Edge i)
             (Printf.sprintf "edge at index %d carries id %d" i e.Edge.id))
      end;
      if e.Edge.v1 < 0 || e.Edge.v1 >= nv || e.Edge.v2 < 0 || e.Edge.v2 >= nv then begin
        tables_ok := false;
        add
          (D.error "RX002" (D.Edge e.Edge.id)
             (Printf.sprintf "endpoints (v%d, v%d) out of range [0, %d)" e.Edge.v1
                e.Edge.v2 nv))
      end)
    edges;
  if not !tables_ok then List.rev !out
  else begin
    (* RX001: connectedness — Join Graphs handed to ROX are one component
       (Definition 1); a disconnected graph would make the optimizer cross-
       product unrelated subqueries. *)
    if nv > 0 && not (Graph.connected g) then
      add
        (D.error "RX001" D.Graph_loc
           ~hint:
             "every vertex must be reachable through step or equi-join edges; \
              multi-document queries need a value join in the where clause"
           "join graph is not connected");

    (* RX009: one root per document. *)
    let roots = Hashtbl.create 4 in
    Array.iter
      (fun (v : Vertex.t) ->
        if Vertex.is_root v then begin
          (match Hashtbl.find_opt roots v.Vertex.doc_id with
           | Some first ->
             add
               (D.warning "RX009" (D.Vertex v.Vertex.id)
                  (Printf.sprintf "document %d already has root vertex v%d"
                     v.Vertex.doc_id first))
           | None -> ());
          if not (Hashtbl.mem roots v.Vertex.doc_id) then
            Hashtbl.replace roots v.Vertex.doc_id v.Vertex.id
        end)
      vertices;

    let seen_edges = Hashtbl.create 16 in
    Array.iter
      (fun (e : Edge.t) ->
        let v1 = Graph.vertex g e.Edge.v1 and v2 = Graph.vertex g e.Edge.v2 in
        (* RX003: self-loops make no sense for either operator. *)
        if e.Edge.v1 = e.Edge.v2 then
          add
            (D.error "RX003" (D.Edge e.Edge.id)
               (Printf.sprintf "self-loop on v%d" e.Edge.v1));
        (* RX004: duplicate parallel edges double the optimizer's work for
           the same constraint. Equi-joins are symmetric. *)
        let key =
          match e.Edge.op with
          | Edge.Equijoin ->
            (min e.Edge.v1 e.Edge.v2, max e.Edge.v1 e.Edge.v2, Edge.Equijoin)
          | Edge.Step _ -> (e.Edge.v1, e.Edge.v2, e.Edge.op)
        in
        if Hashtbl.mem seen_edges key then
          add
            (D.warning "RX004" (D.Edge e.Edge.id)
               (Printf.sprintf "duplicate of edge e%d (same endpoints and operator)"
                  (Hashtbl.find seen_edges key)))
        else Hashtbl.replace seen_edges key e.Edge.id;
        match e.Edge.op with
        | Edge.Equijoin ->
          (* RX005: value joins compare node values; a root has none, an
             element's value is implementation-defined. *)
          List.iter
            (fun (v : Vertex.t) ->
              match v.Vertex.annot with
              | Vertex.Root ->
                add
                  (D.error "RX005" (D.Edge e.Edge.id)
                     (Printf.sprintf "equi-join endpoint v%d is a root vertex"
                        v.Vertex.id))
              | Vertex.Element q ->
                add
                  (D.warning "RX005" (D.Edge e.Edge.id)
                     ~hint:"join on the element's text() child instead"
                     (Printf.sprintf
                        "equi-join endpoint v%d is element <%s>, not a value vertex"
                        v.Vertex.id q))
              | Vertex.Text _ | Vertex.Attr _ -> ())
            [ v1; v2 ]
        | Edge.Step axis ->
          (* RX006: XPath steps navigate within one document; only a value
             join can cross documents. *)
          if v1.Vertex.doc_id <> v2.Vertex.doc_id then
            add
              (D.error "RX006" (D.Edge e.Edge.id)
                 (Printf.sprintf "step edge spans documents %d and %d"
                    v1.Vertex.doc_id v2.Vertex.doc_id));
          (* RX007: axis vs target-annotation compatibility. The parser
             emits Attribute-axis edges only into Attr vertices; Child (and
             other element axes) exclude the attribute kind. *)
          (match (axis, v2.Vertex.annot) with
           | Rox_algebra.Axis.Attribute, (Vertex.Attr _) -> ()
           | Rox_algebra.Axis.Attribute, _ ->
             add
               (D.error "RX007" (D.Edge e.Edge.id)
                  (Printf.sprintf
                     "attribute-axis step targets %s vertex v%d, not an attribute"
                     (Vertex.label v2) v2.Vertex.id))
           | Rox_algebra.Axis.Child, Vertex.Attr _ ->
             add
               (D.warning "RX007" (D.Edge e.Edge.id)
                  ~hint:"use the attribute axis to reach attribute nodes"
                  (Printf.sprintf
                     "child-axis step targets attribute vertex v%d (child excludes \
                      attributes)"
                     v2.Vertex.id))
           | _ -> ()))
      edges;

    (* RX008: equi-closure consistency. Derived edges (Figure 4) must be
       implied by the base equi-join edges; and once any derived edge
       exists the closure should be complete. *)
    let base_uf = uf_create nv in
    let has_derived = ref false in
    Array.iter
      (fun (e : Edge.t) ->
        match e.Edge.op with
        | Edge.Equijoin ->
          if e.Edge.derived then has_derived := true
          else uf_union base_uf e.Edge.v1 e.Edge.v2
        | Edge.Step _ -> ())
      edges;
    Array.iter
      (fun (e : Edge.t) ->
        if
          e.Edge.derived
          && (match e.Edge.op with Edge.Equijoin -> true | Edge.Step _ -> false)
          && uf_find base_uf e.Edge.v1 <> uf_find base_uf e.Edge.v2
        then
          add
            (D.error "RX008" (D.Edge e.Edge.id)
               (Printf.sprintf
                  "derived equi-join (v%d = v%d) is not implied by the base \
                   equi-join edges"
                  e.Edge.v1 e.Edge.v2)))
      edges;
    (* Completeness: every equi-connected pair of value vertices should have
       a direct edge. Missing pairs are only an inconsistency if the closure
       was (apparently) run — i.e. some derived edge exists. *)
    for a = 0 to nv - 1 do
      for b = a + 1 to nv - 1 do
        if
          uf_find base_uf a = uf_find base_uf b
          && is_value_annot (Graph.vertex g a).Vertex.annot
          && is_value_annot (Graph.vertex g b).Vertex.annot
          &&
          match Graph.find_edge g a b with
          | Some _ -> false
          | None -> true
        then begin
          let mk = if !has_derived then D.warning else D.info in
          add
            (mk "RX008" D.Graph_loc
               ~hint:"run Graph.equi_closure before optimizing"
               (Printf.sprintf
                  "v%d and v%d are equi-connected but share no direct edge" a b))
        end
      done
    done;
    List.rev !out
  end

(* The RX5xx dynamic race detector: an Eraser-style lockset refinement
   combined with a FastTrack-style vector-clock happens-before check,
   replayed over a Rox_util.Accesslog recording.

   Happens-before edges come from the recorded Acquire/Release events:
   a Release joins the releasing domain's clock into the lock's clock
   (and advances the domain), an Acquire joins the lock's clock into the
   acquiring domain. Mutexes and the hb_publish/hb_acquire fork-join
   tokens both reduce to this rule, so safe publication before
   Domain.spawn never reads as a race.

   Per Read/Write the checker asks two independent questions:

   - Did this access *race* — is there a prior access to the same site
     from another domain that neither happens-before this one nor shares
     a lock with it? Races are errors: RX503 on epoch sites, RX501
     otherwise (the message says which side was unlocked).

   - Is the *discipline* sound — Eraser's candidate lockset (the
     intersection of lock sets over all accesses once the site is
     shared). An empty candidate with every access individually locked
     and no manifest race is RX502, a warning: this interleaving was
     saved by scheduling, not by mutual exclusion.

   Confined sites short-circuit both: any second domain is RX504. *)

module D = Diagnostic
module Al = Rox_util.Accesslog

(* Growable vector clock keyed by dense domain indexes. *)
module Vc = struct
  type t = int array ref

  let create () = ref (Array.make 8 0)

  let get (t : t) i = if i < Array.length !t then !t.(i) else 0

  let ensure (t : t) i =
    if i >= Array.length !t then begin
      let bigger = Array.make (max (i + 1) (2 * Array.length !t)) 0 in
      Array.blit !t 0 bigger 0 (Array.length !t);
      t := bigger
    end

  let set (t : t) i v =
    ensure t i;
    !t.(i) <- v

  let join (into : t) (from : t) =
    Array.iteri
      (fun i v -> if v > get into i then set into i v)
      !from
end

type access = {
  a_domain : int;   (* dense domain index *)
  a_clock : int;    (* the domain's own clock component at access time *)
  a_locks : int;
  a_seq : int;
  a_write : bool;
}

type site_state = {
  mutable last_write : access option;
  reads : (int, access) Hashtbl.t;  (* dense domain index -> last read *)
  mutable domains : int list;       (* distinct accessor domains (dense) *)
  mutable cand : int;               (* Eraser candidate lockset *)
  mutable all_locked : bool;        (* every access held >= 1 lock *)
  mutable owner : int;              (* Confined: first accessor, -1 = none *)
  mutable raced : bool;             (* an RX501/RX503 already reported here *)
  mutable leak_reported : bool;
}

let fresh_site () =
  {
    last_write = None;
    reads = Hashtbl.create 4;
    domains = [];
    cand = -1 (* all ones *);
    all_locked = true;
    owner = -1;
    raced = false;
    leak_reported = false;
  }

let lock_names locks =
  if locks = 0 then "no locks"
  else begin
    let names = ref [] in
    for i = Sys.int_size - 2 downto 0 do
      if locks land (1 lsl i) <> 0 then names := Al.lock_name i :: !names
    done;
    String.concat "+" !names
  end

let domain_label raw = Printf.sprintf "domain %d" raw

(* [check ~sites events] replays a recording. [sites] is the site table
   snapshot ([Accesslog.sites_snapshot]); site ids in the events index
   into it. Returns diagnostics sorted errors-first by the caller's
   Report. *)
let check ~(sites : Al.site_info array) (events : Al.event array) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* Dense domain indexing; raw domain ids are small ints but sparse. *)
  let domain_index : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let raw_of_dense = ref [||] in
  let n_domains = ref 0 in
  let dense raw =
    match Hashtbl.find_opt domain_index raw with
    | Some i -> i
    | None ->
      let i = !n_domains in
      Hashtbl.replace domain_index raw i;
      let cap = Array.length !raw_of_dense in
      if i >= cap then begin
        let bigger = Array.make (max 8 (2 * cap)) 0 in
        Array.blit !raw_of_dense 0 bigger 0 cap;
        raw_of_dense := bigger
      end;
      !raw_of_dense.(i) <- raw;
      incr n_domains;
      i
  in
  let domain_vcs : (int, Vc.t) Hashtbl.t = Hashtbl.create 8 in
  let vc_of d =
    match Hashtbl.find_opt domain_vcs d with
    | Some vc -> vc
    | None ->
      let vc = Vc.create () in
      (* Each domain starts with its own component at 1 so clock 0 never
         reads as "already happened". *)
      Vc.set vc d 1;
      Hashtbl.replace domain_vcs d vc;
      vc
  in
  let lock_vcs : (int, Vc.t) Hashtbl.t = Hashtbl.create 8 in
  let lock_vc l =
    match Hashtbl.find_opt lock_vcs l with
    | Some vc -> vc
    | None ->
      let vc = Vc.create () in
      Hashtbl.replace lock_vcs l vc;
      vc
  in
  let site_states = Hashtbl.create 16 in
  let state_of s =
    match Hashtbl.find_opt site_states s with
    | Some st -> st
    | None ->
      let st = fresh_site () in
      Hashtbl.replace site_states s st;
      st
  in
  let site_info id =
    if id >= 0 && id < Array.length sites then sites.(id)
    else { Al.s_name = Printf.sprintf "site#%d" id; s_kind = Al.Shared }
  in
  (* prior happened-before current iff prior's clock component is covered
     by the current domain's view of prior's domain. *)
  let happened_before (prior : access) (cur_vc : Vc.t) =
    prior.a_clock <= Vc.get cur_vc prior.a_domain
  in
  let report_race st site_id (prior : access) (cur : access) ~cur_write =
    if not st.raced then begin
      st.raced <- true;
      let info = site_info site_id in
      let describe (a : access) verb =
        Printf.sprintf "%s %s at event #%d holding %s"
          (domain_label !raw_of_dense.(a.a_domain))
          verb a.a_seq (lock_names a.a_locks)
      in
      let prior_verb = if prior.a_write then "wrote" else "read" in
      let cur_verb = if cur_write then "wrote" else "read" in
      let detail =
        Printf.sprintf "%s: %s races %s (no happens-before edge, no common lock)"
          info.Al.s_name (describe cur cur_verb) (describe prior prior_verb)
      in
      if info.Al.s_kind = Al.Epoch then
        add
          (D.of_code "RX503" (D.Site site_id)
             ~hint:
               "order the epoch bump against readers (lock, or quiesce \
                domains around mutations) — stale epochs mint stale \
                fingerprints"
             detail)
      else
        add
          (D.of_code "RX501" (D.Site site_id)
             ~hint:
               "guard the site with one mutex on every path, or prove \
                the ordering with Accesslog.hb_publish/hb_acquire around \
                spawn/join"
             detail)
    end
  in
  Array.iter
    (fun (e : Al.event) ->
      let d = dense e.Al.domain in
      let vc = vc_of d in
      match e.Al.op with
      | Al.Acquire -> Vc.join vc (lock_vc e.Al.site)
      | Al.Release ->
        let lvc = lock_vc e.Al.site in
        Vc.join lvc vc;
        Vc.set vc d (Vc.get vc d + 1)
      | Al.Read | Al.Write ->
        let is_write = e.Al.op = Al.Write in
        let st = state_of e.Al.site in
        let info = site_info e.Al.site in
        (* Confinement: first domain owns the site for good. *)
        if info.Al.s_kind = Al.Confined then begin
          if st.owner = -1 then st.owner <- d
          else if st.owner <> d && not st.leak_reported then begin
            st.leak_reported <- true;
            add
              (D.of_code "RX504" (D.Site e.Al.site)
                 ~hint:
                   "a session (and everything it owns: RNG, counters, \
                    trace, sink) must live and die on one domain — hand \
                    work a fresh session instead"
                 (Printf.sprintf
                    "%s: confined to %s but touched by %s at event #%d"
                    info.Al.s_name
                    (domain_label !raw_of_dense.(st.owner))
                    (domain_label e.Al.domain) e.Al.seq))
          end
        end;
        let cur =
          {
            a_domain = d;
            a_clock = Vc.get vc d;
            a_locks = e.Al.locks;
            a_seq = e.Al.seq;
            a_write = is_write;
          }
        in
        (* Eraser bookkeeping. *)
        if not (List.mem d st.domains) then st.domains <- d :: st.domains;
        st.cand <- st.cand land e.Al.locks;
        if e.Al.locks = 0 then st.all_locked <- false;
        (* Happens-before races (skip for confined sites: RX504 already
           says everything worth saying about a leaked session). *)
        if info.Al.s_kind <> Al.Confined then begin
          (match st.last_write with
           | Some lw
             when lw.a_domain <> d
                  && (not (happened_before lw vc))
                  && lw.a_locks land e.Al.locks = 0 ->
             report_race st e.Al.site lw cur ~cur_write:is_write
           | _ -> ());
          if is_write then
            Hashtbl.iter
              (fun rd (r : access) ->
                if
                  rd <> d
                  && (not (happened_before r vc))
                  && r.a_locks land e.Al.locks = 0
                then report_race st e.Al.site r cur ~cur_write:true)
              st.reads
        end;
        if is_write then begin
          st.last_write <- Some cur;
          Hashtbl.reset st.reads
        end
        else Hashtbl.replace st.reads d cur)
    events;
  (* Discipline pass: shared sites whose candidate lockset refined to
     empty even though every access was individually locked — and no
     manifest race already covers them. *)
  Hashtbl.iter
    (fun site_id st ->
      if
        List.length st.domains >= 2
        && st.cand = 0 && st.all_locked && not st.raced
        && (site_info site_id).Al.s_kind <> Al.Confined
      then
        add
          (D.of_code "RX502" (D.Site site_id)
             ~hint:
               "pick one lock for the site and take it on every access \
                path — per-path locks only exclude within a path"
             (Printf.sprintf
                "%s: accessed from %d domains, each under some lock, but \
                 no single lock covers all accesses"
                (site_info site_id).Al.s_name
                (List.length st.domains))))
    site_states;
  List.rev !diags

let check_log () = check ~sites:(Al.sites_snapshot ()) (Al.events ())

(* A recording summary line for racecheck output. *)
let summary ~(sites : Al.site_info array) (events : Al.event array) =
  let domains = Hashtbl.create 8 in
  let accesses = ref 0 in
  Array.iter
    (fun (e : Al.event) ->
      Hashtbl.replace domains e.Al.domain ();
      match e.Al.op with
      | Al.Read | Al.Write -> incr accesses
      | _ -> ())
    events;
  Printf.sprintf
    "%d event(s) (%d access(es)) across %d domain(s), %d site(s), %d lock(s)"
    (Array.length events) !accesses (Hashtbl.length domains)
    (Array.length sites) (Al.lock_count ())

(** Structured diagnostics for the static analysis passes.

    Each diagnostic carries a severity, a stable code ([RX0xx] graph checks,
    [RX1xx] trace checks, [RX2xx] plan checks, [RX3xx] operator-contract
    violations), a location inside the artifact being checked, a message and
    an optional fix hint. *)

type severity = Error | Warning | Info

type location =
  | Graph_loc          (** the join graph as a whole *)
  | Vertex of int      (** a vertex id *)
  | Edge of int        (** an edge id *)
  | Event of int       (** index into the trace event list *)
  | Plan_pos of int    (** index into an execution plan *)
  | Span of int        (** index into the chronological telemetry span list *)

type t = {
  severity : severity;
  code : string;
  location : location;
  message : string;
  hint : string option;
}

val make : severity -> string -> location -> ?hint:string -> string -> t
val error : string -> location -> ?hint:string -> string -> t
val warning : string -> location -> ?hint:string -> string -> t
val info : string -> location -> ?hint:string -> string -> t

val is_error : t -> bool
val severity_string : severity -> string
val severity_rank : severity -> int
(** [Error] = 0, [Warning] = 1, [Info] = 2 — errors sort first. *)

val location_string : location -> string
val to_string : t -> string
val compare_severity : t -> t -> int

val code_docs : (string * string) list
(** One-line documentation per diagnostic code. *)

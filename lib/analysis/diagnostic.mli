(** Structured diagnostics for the static analysis passes.

    Each diagnostic carries a severity, a stable code ([RX0xx] graph
    checks, [RX1xx] trace checks, [RX2xx] plan checks, [RX3xx]
    operator-contract violations, [RX4xx] telemetry checks, [RX5xx]
    concurrency-soundness checks), a location inside the artifact being
    checked, a message and an optional fix hint.

    The {!registry} is the single source of truth mapping every code to
    its default severity, one-line summary and long explanation — check
    modules may locally soften a severity, but meaning and documentation
    live here. *)

type severity = Error | Warning | Info

type location =
  | Graph_loc          (** the join graph as a whole *)
  | Vertex of int      (** a vertex id *)
  | Edge of int        (** an edge id *)
  | Event of int       (** index into the trace event list *)
  | Plan_pos of int    (** index into an execution plan *)
  | Span of int        (** index into the chronological telemetry span list *)
  | Site of int        (** an access-log shared-site id *)
  | Source of string * int  (** a source file and line (lint findings) *)

type t = {
  severity : severity;
  code : string;
  location : location;
  message : string;
  hint : string option;
}

val make : severity -> string -> location -> ?hint:string -> string -> t
val error : string -> location -> ?hint:string -> string -> t
val warning : string -> location -> ?hint:string -> string -> t
val info : string -> location -> ?hint:string -> string -> t

val of_code : string -> location -> ?hint:string -> string -> t
(** Build a diagnostic whose severity comes from the {!registry} entry
    for the code (Error if the code is unknown — better loud than lost). *)

val is_error : t -> bool
val severity_string : severity -> string
val severity_rank : severity -> int
(** [Error] = 0, [Warning] = 1, [Info] = 2 — errors sort first. *)

val location_string : location -> string
val to_string : t -> string
val compare_severity : t -> t -> int

(** {2 The code registry} *)

type code_info = {
  ci_code : string;
  ci_severity : severity;   (** default severity; checks may soften locally *)
  ci_summary : string;      (** one line, shown by [--codes] *)
  ci_detail : string;       (** the [--explain] paragraph *)
}

val registry : code_info list
(** Every RX code, in code order. *)

val find_code : string -> code_info option

val explain : string -> string option
(** The [rox analyze --explain CODE] text: code, severity, summary and
    the detail paragraph. [None] for unknown codes. *)

val registry_markdown : unit -> string
(** The registry rendered as a Markdown table — the generated "diagnostic
    code registry" section in DESIGN.md. *)

val code_docs : (string * string) list
(** One-line documentation per diagnostic code (the registry's
    (code, summary) projection, kept for existing callers). *)

val to_json : t -> Rox_util.Minijson.t
(** One diagnostic as a JSON object: code, severity, location (structured
    and rendered), message, hint when present. *)

(* The flight recorder: always-on, bounded accounting of every completed
   request. Mirrors Aggregate's per-domain discipline — each worker
   domain appends finished request records to its own DLS ring slot
   under a mutex nobody else holds in steady state, so the hot path
   never contends across domains. The rare paths (trace retention,
   tenant series, slow log) share small mutex-guarded tables. *)

type outcome = Executed | Coalesced | Rejected

let outcome_label = function
  | Executed -> "executed"
  | Coalesced -> "coalesced"
  | Rejected -> "rejected"

type reason = Slow | Errored | Head_sampled

let reason_label = function
  | Slow -> "slow"
  | Errored -> "errored"
  | Head_sampled -> "head_sampled"

type record = {
  trace_id : int;
  fingerprint : string;
  tenant : string;
  plan_digest : string;
  plan_edges : int;
  latency_ns : int;
  queue_ns : int;
  sampling_units : int;
  execution_units : int;
  cache_hits : int;
  cache_misses : int;
  outcome : outcome;
  status : string;
  edge_ns : (int * int) list;
}

(* One ring per domain: [cursor] counts every append ever made on this
   slot, so the occupied prefix is [min cursor cap] and the overwrite
   (drop) count is [max 0 (cursor - cap)] — Sink's bounded-buffer
   discipline, derived instead of double-booked. [lat] feeds the
   adaptive tail-sampling threshold with this slot's own served
   latencies, so the retention decision never takes a foreign lock. *)
type slot = {
  ring : record option array;
  mutable cursor : int;
  lat : Metrics.histogram;
  slot_mutex : Mutex.t;
  (* RX5xx access-log identities (-1 when the log was disarmed at slot
     creation): every append or snapshot records one Write at
     [slot_site] under [slot_lock]. *)
  slot_site : int;
  slot_lock : int;
}

(* Bounded per-tenant series: requests, errors, and a serve-latency
   histogram. The registry holds at most [tenant_cap] first-seen tenants
   plus the ["other"] overflow bucket, so a tenant flood cannot grow it. *)
type tenant_series = {
  tn_label : string;
  mutable tn_requests : int;
  mutable tn_errors : int;
  tn_serve_ns : Metrics.histogram;
}

type t = {
  cap : int;
  retain_cap : int;
  head_every : int;
  q : float;
  floor_ns : int;
  warmup : int;
  tenant_cap : int;
  slow_ms : int;
  next_id : int Atomic.t;
  key : slot option Domain.DLS.key;
  reg_mutex : Mutex.t;
  reg_site : int;
  reg_lock : int;
  (* Every slot ever created, newest first; slots outlive their domain
     (records appended by a finished worker stay visible). Guarded by
     [reg_mutex]. *)
  mutable slots : slot list;
  next_slot : int Atomic.t;
  (* Retained traces by id, FIFO-evicted at [retain_cap]. Rare path. *)
  ret_mutex : Mutex.t;
  ret_site : int;
  ret_lock : int;
  retained : (int, record * reason * Sink.span list) Hashtbl.t;
  ret_fifo : int Queue.t;
  (* Tenant registry: first [tenant_cap] distinct ids get their own
     series, the rest fold into ["other"]. Guarded by [ten_mutex]. *)
  ten_mutex : Mutex.t;
  ten_site : int;
  ten_lock : int;
  tenants : (string, tenant_series) Hashtbl.t;
  mutable tenant_order : string list;
  (* Slow-query log: one channel, writes serialized by [log_mutex]. *)
  log_mutex : Mutex.t;
  log_chan : out_channel option;
  mutable log_closed : bool;
  mutable log_lines : int;
}

let site_ids name =
  if Rox_util.Accesslog.armed () then
    ( Rox_util.Accesslog.site ~name Rox_util.Accesslog.Shared,
      Rox_util.Accesslog.lock ~name:(name ^ ".mutex") )
  else (-1, -1)

let create ?(cap = 256) ?(retain_cap = 64) ?(head_every = 128)
    ?(quantile = 0.95) ?(floor_ns = 1_000_000) ?(warmup = 32)
    ?(tenant_cap = 8) ?(slow_ms = 100) ?slow_log () =
  if cap < 1 then invalid_arg "Recorder.create: cap must be >= 1";
  if retain_cap < 1 then invalid_arg "Recorder.create: retain_cap must be >= 1";
  let reg_site, reg_lock = site_ids "telemetry.recorder.registry" in
  let ret_site, ret_lock = site_ids "telemetry.recorder.retained" in
  let ten_site, ten_lock = site_ids "telemetry.recorder.tenants" in
  {
    cap;
    retain_cap;
    head_every;
    q = quantile;
    floor_ns;
    warmup;
    tenant_cap;
    slow_ms;
    next_id = Atomic.make 1;
    key = Domain.DLS.new_key (fun () -> None);
    reg_mutex = Mutex.create ();
    reg_site;
    reg_lock;
    slots = [];
    next_slot = Atomic.make 0;
    ret_mutex = Mutex.create ();
    ret_site;
    ret_lock;
    retained = Hashtbl.create 64;
    ret_fifo = Queue.create ();
    ten_mutex = Mutex.create ();
    ten_site;
    ten_lock;
    tenants = Hashtbl.create 8;
    tenant_order = [];
    log_mutex = Mutex.create ();
    log_chan = Option.map open_out slow_log;
    log_closed = false;
    log_lines = 0;
  }

let next_trace_id t = Atomic.fetch_and_add t.next_id 1

let bracketed ~site ~lock f =
  if Rox_util.Accesslog.armed () then
    Rox_util.Accesslog.with_lock lock (fun () ->
        Rox_util.Accesslog.record ~site Rox_util.Accesslog.Write;
        f ())
  else f ()

let bracketed_slot s f = bracketed ~site:s.slot_site ~lock:s.slot_lock f

let mk_slot t =
  let i = Atomic.fetch_and_add t.next_slot 1 in
  let label = Printf.sprintf "telemetry.recorder.d%d" i in
  let slot_site, slot_lock = site_ids label in
  {
    ring = Array.make t.cap None;
    cursor = 0;
    lat =
      Metrics.histogram "rox_recorder_latency_ns"
        "served-request latency as seen by the flight recorder";
    slot_mutex = Mutex.create ();
    slot_site;
    slot_lock;
  }

(* The calling domain's slot, created and registered on first use —
   Aggregate's [local] verbatim. *)
let local t =
  match Domain.DLS.get t.key with
  | Some s -> s
  | None ->
    let s = mk_slot t in
    Mutex.protect t.reg_mutex (fun () ->
        bracketed ~site:t.reg_site ~lock:t.reg_lock (fun () ->
            t.slots <- s :: t.slots));
    Domain.DLS.set t.key (Some s);
    s

let slot_dropped t s = max 0 (s.cursor - t.cap)

(* ------------------------------------------------------------------ *)
(* Adaptive tail-sampling threshold                                   *)

let threshold_of_hist t (h : Metrics.histogram) =
  if h.Metrics.h_count < t.warmup then t.floor_ns
  else max t.floor_ns (int_of_float (Metrics.quantile h t.q))

(* Process-wide view (STATS / diagnostics): fold every slot's latency
   histogram, one slot mutex at a time, then apply the same rule the
   per-slot decision uses. *)
let threshold_ns t =
  let merged =
    Metrics.histogram "rox_recorder_latency_ns" "merged recorder latency"
  in
  let slots = Mutex.protect t.reg_mutex (fun () -> t.slots) in
  List.iter
    (fun s ->
      Mutex.protect s.slot_mutex (fun () ->
          bracketed_slot s (fun () ->
              Metrics.add_histogram ~into:merged s.lat)))
    slots;
  threshold_of_hist t merged

(* ------------------------------------------------------------------ *)
(* Tenant series                                                      *)

let tenant_observe t (r : record) =
  Mutex.protect t.ten_mutex (fun () ->
      bracketed ~site:t.ten_site ~lock:t.ten_lock (fun () ->
          let series key =
            match Hashtbl.find_opt t.tenants key with
            | Some s -> s
            | None ->
              let s =
                {
                  tn_label = key;
                  tn_requests = 0;
                  tn_errors = 0;
                  tn_serve_ns =
                    Metrics.histogram "rox_tenant_serve_duration_ns"
                      "per-tenant served-request latency";
                }
              in
              Hashtbl.replace t.tenants key s;
              t.tenant_order <- t.tenant_order @ [ key ];
              s
          in
          let s =
            if Hashtbl.mem t.tenants r.tenant then series r.tenant
            else if Hashtbl.length t.tenants
                    - (if Hashtbl.mem t.tenants "other" then 1 else 0)
                    < t.tenant_cap
            then series r.tenant
            else series "other"
          in
          s.tn_requests <- s.tn_requests + 1;
          if r.status <> "ok" then s.tn_errors <- s.tn_errors + 1;
          Metrics.observe s.tn_serve_ns r.latency_ns))

type tenant_stat = {
  tenant : string;
  requests : int;
  errors : int;
  serve_ns : Metrics.histogram;
}

let tenant_stats t =
  Mutex.protect t.ten_mutex (fun () ->
      bracketed ~site:t.ten_site ~lock:t.ten_lock (fun () ->
          List.filter_map
            (fun key ->
              Option.map
                (fun s ->
                  {
                    tenant = s.tn_label;
                    requests = s.tn_requests;
                    errors = s.tn_errors;
                    serve_ns = s.tn_serve_ns;
                  })
                (Hashtbl.find_opt t.tenants key))
            t.tenant_order))

let tenant_count t =
  Mutex.protect t.ten_mutex (fun () -> Hashtbl.length t.tenants)

let tenant_cap t = t.tenant_cap

(* ------------------------------------------------------------------ *)
(* Slow-query log                                                     *)

let json_of_record ?reason (r : record) =
  let module J = Rox_util.Minijson in
  let num i = J.Num (float_of_int i) in
  J.Obj
    [
      ("trace_id", num r.trace_id);
      ("fingerprint", J.Str r.fingerprint);
      ("tenant", J.Str r.tenant);
      ("plan", J.Str r.plan_digest);
      ("plan_edges", num r.plan_edges);
      ("latency_ms", J.Num (Clock.ms_of_ns r.latency_ns));
      ("queue_ms", J.Num (Clock.ms_of_ns r.queue_ns));
      ("sampling_units", num r.sampling_units);
      ("execution_units", num r.execution_units);
      ("cache_hits", num r.cache_hits);
      ("cache_misses", num r.cache_misses);
      ("outcome", J.Str (outcome_label r.outcome));
      ("status", J.Str r.status);
      ( "retained",
        match reason with
        | None -> J.Null
        | Some x -> J.Str (reason_label x) );
      ( "edges",
        J.Arr
          (List.map
             (fun (e, ns) -> J.Obj [ ("edge", num e); ("ns", num ns) ])
             r.edge_ns) );
    ]

let maybe_slow_log t (r : record) reason =
  match t.log_chan with
  | None -> ()
  | Some oc ->
    let slow = r.latency_ns >= t.slow_ms * 1_000_000 in
    let errored = r.status <> "ok" in
    if slow || errored then
      Mutex.protect t.log_mutex (fun () ->
          if not t.log_closed then begin
            output_string oc
              (Rox_util.Minijson.to_string (json_of_record ?reason r));
            output_char oc '\n';
            flush oc;
            t.log_lines <- t.log_lines + 1
          end)

let log_lines t = Mutex.protect t.log_mutex (fun () -> t.log_lines)

let close t =
  match t.log_chan with
  | None -> ()
  | Some oc ->
    Mutex.protect t.log_mutex (fun () ->
        if not t.log_closed then begin
          t.log_closed <- true;
          close_out oc
        end)

(* ------------------------------------------------------------------ *)
(* The hot path                                                       *)

let observe t (r : record) =
  let s = local t in
  let reason =
    Mutex.protect s.slot_mutex (fun () ->
        bracketed_slot s (fun () ->
            (* Decide retention against the threshold as it stood before
               this request — a latency spike must not raise the bar for
               itself. *)
            let thr = threshold_of_hist t s.lat in
            let errored = r.status <> "ok" in
            let slow = r.outcome <> Rejected && r.latency_ns >= thr in
            let head =
              t.head_every > 0 && r.trace_id mod t.head_every = 0
            in
            s.ring.(s.cursor mod t.cap) <- Some r;
            s.cursor <- s.cursor + 1;
            if r.outcome <> Rejected then Metrics.observe s.lat r.latency_ns;
            if errored then Some Errored
            else if slow then Some Slow
            else if head then Some Head_sampled
            else None))
  in
  tenant_observe t r;
  maybe_slow_log t r reason;
  reason

let records t =
  let slots = Mutex.protect t.reg_mutex (fun () -> t.slots) in
  List.fold_left
    (fun acc s ->
      acc + Mutex.protect s.slot_mutex (fun () -> bracketed_slot s (fun () -> s.cursor)))
    0 slots

let dropped t =
  let slots = Mutex.protect t.reg_mutex (fun () -> t.slots) in
  List.fold_left
    (fun acc s ->
      acc
      + Mutex.protect s.slot_mutex (fun () ->
            bracketed_slot s (fun () -> slot_dropped t s)))
    0 slots

let recent t n =
  let slots = Mutex.protect t.reg_mutex (fun () -> t.slots) in
  let all =
    List.concat_map
      (fun s ->
        Mutex.protect s.slot_mutex (fun () ->
            bracketed_slot s (fun () ->
                let live = min s.cursor t.cap in
                let out = ref [] in
                for i = 0 to live - 1 do
                  match s.ring.(i) with
                  | Some r -> out := r :: !out
                  | None -> ()
                done;
                !out)))
      slots
  in
  let sorted =
    List.sort (fun a b -> compare b.trace_id a.trace_id) all
  in
  List.filteri (fun i _ -> i < n) sorted

(* ------------------------------------------------------------------ *)
(* Retained traces                                                    *)

let retain t (r : record) reason spans =
  Mutex.protect t.ret_mutex (fun () ->
      bracketed ~site:t.ret_site ~lock:t.ret_lock (fun () ->
          if not (Hashtbl.mem t.retained r.trace_id) then begin
            Hashtbl.replace t.retained r.trace_id (r, reason, spans);
            Queue.push r.trace_id t.ret_fifo;
            while Queue.length t.ret_fifo > t.retain_cap do
              Hashtbl.remove t.retained (Queue.pop t.ret_fifo)
            done
          end))

let find_trace t id =
  Mutex.protect t.ret_mutex (fun () ->
      bracketed ~site:t.ret_site ~lock:t.ret_lock (fun () ->
          Hashtbl.find_opt t.retained id))

let retained_count t =
  Mutex.protect t.ret_mutex (fun () -> Hashtbl.length t.retained)

let traces t =
  Mutex.protect t.ret_mutex (fun () ->
      bracketed ~site:t.ret_site ~lock:t.ret_lock (fun () ->
          Hashtbl.fold
            (fun id (r, reason, spans) acc -> (id, r, reason, spans) :: acc)
            t.retained []))

(* ------------------------------------------------------------------ *)
(* Helpers for building records                                       *)

let plan_digest edge_order =
  match edge_order with
  | [] -> "-"
  | order ->
    let hex =
      Digest.to_hex
        (Digest.string (String.concat "," (List.map string_of_int order)))
    in
    String.sub hex 0 12

let edge_timings_of_spans spans =
  List.filter_map
    (fun (s : Sink.span) ->
      if s.Sink.name = "execute_edge" then
        match List.assoc_opt "edge" s.Sink.attrs with
        | Some e -> (
          match int_of_string_opt e with
          | Some id -> Some (id, Int64.to_int s.Sink.dur_ns)
          | None -> None)
        | None -> None
      else None)
    spans

(* ------------------------------------------------------------------ *)
(* Prometheus series                                                  *)

let prometheus t =
  let buf = Buffer.create 1024 in
  let head name help kind =
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  head "rox_recorder_records_total"
    "request records appended to the flight recorder" "counter";
  Buffer.add_string buf
    (Printf.sprintf "rox_recorder_records_total %d\n" (records t));
  head "rox_recorder_records_dropped_total"
    "request records overwritten by the ring cap" "counter";
  Buffer.add_string buf
    (Printf.sprintf "rox_recorder_records_dropped_total %d\n" (dropped t));
  head "rox_recorder_traces_retained"
    "full span trees currently addressable by trace id" "gauge";
  Buffer.add_string buf
    (Printf.sprintf "rox_recorder_traces_retained %d\n" (retained_count t));
  head "rox_recorder_slow_threshold_ns"
    "adaptive tail-sampling latency threshold" "gauge";
  Buffer.add_string buf
    (Printf.sprintf "rox_recorder_slow_threshold_ns %d\n" (threshold_ns t));
  let stats = tenant_stats t in
  if stats <> [] then begin
    head "rox_tenant_requests_total" "served requests per tenant" "counter";
    List.iter
      (fun s ->
        Buffer.add_string buf
          (Printf.sprintf "rox_tenant_requests_total{tenant=\"%s\"} %d\n"
             (Export.escape_label s.tenant) s.requests))
      stats;
    head "rox_tenant_errors_total" "error replies per tenant" "counter";
    List.iter
      (fun s ->
        Buffer.add_string buf
          (Printf.sprintf "rox_tenant_errors_total{tenant=\"%s\"} %d\n"
             (Export.escape_label s.tenant) s.errors))
      stats;
    head "rox_tenant_serve_duration_ns" "per-tenant served-request latency"
      "histogram";
    List.iter
      (fun s ->
        let label = Export.escape_label s.tenant in
        let h = s.serve_ns in
        let highest = ref (-1) in
        Array.iteri
          (fun i n -> if n > 0 then highest := i)
          h.Metrics.h_buckets;
        let cum = ref 0 in
        for i = 0 to !highest do
          cum := !cum + h.Metrics.h_buckets.(i);
          Buffer.add_string buf
            (Printf.sprintf
               "rox_tenant_serve_duration_ns_bucket{tenant=\"%s\",le=\"%d\"} %d\n"
               label (Metrics.bucket_upper i) !cum)
        done;
        Buffer.add_string buf
          (Printf.sprintf
             "rox_tenant_serve_duration_ns_bucket{tenant=\"%s\",le=\"+Inf\"} %d\n"
             label h.Metrics.h_count);
        Buffer.add_string buf
          (Printf.sprintf "rox_tenant_serve_duration_ns_sum{tenant=\"%s\"} %d\n"
             label h.Metrics.h_sum);
        Buffer.add_string buf
          (Printf.sprintf
             "rox_tenant_serve_duration_ns_count{tenant=\"%s\"} %d\n" label
             h.Metrics.h_count))
      stats
  end;
  Buffer.contents buf

type t = {
  mutex : Mutex.t;
  metrics : Metrics.t;
}

let create () = { mutex = Mutex.create (); metrics = Metrics.create () }

let with_metrics t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) (fun () -> f t.metrics)

let absorb t m = with_metrics t (fun into -> Metrics.add_into ~into m)

(* One absorption slot per domain: the worker's hot path merges into its
   own slot under a mutex nobody else holds in steady state (readers take
   it only while snapshotting), so absorb never contends across domains. *)
type slot = {
  slot_metrics : Metrics.t;
  slot_mutex : Mutex.t;
  (* RX5xx access-log identities (-1 when the log was disarmed at slot
     creation): every merge in or out records one Write at [slot_site]
     under [slot_lock], so the race detector sees each slot as its own
     mutex-guarded shared site. *)
  slot_site : int;
  slot_lock : int;
}

type t = {
  key : slot option Domain.DLS.key;
  reg_mutex : Mutex.t;
  reg_site : int;
  reg_lock : int;
  (* Every slot ever created for this aggregate, newest first. Slots
     outlive their domain: totals absorbed by a finished worker stay
     visible to later snapshots. Guarded by [reg_mutex]. *)
  mutable slots : slot list;
  next_slot : int Atomic.t;
}

let create () =
  let armed = Rox_util.Accesslog.armed () in
  {
    key = Domain.DLS.new_key (fun () -> None);
    reg_mutex = Mutex.create ();
    reg_site =
      (if armed then
         Rox_util.Accesslog.site ~name:"telemetry.aggregate.registry"
           Rox_util.Accesslog.Shared
       else -1);
    reg_lock =
      (if armed then
         Rox_util.Accesslog.lock ~name:"telemetry.aggregate.registry.mutex"
       else -1);
    slots = [];
    next_slot = Atomic.make 0;
  }

let bracketed_slot s f =
  if Rox_util.Accesslog.armed () then
    Rox_util.Accesslog.with_lock s.slot_lock (fun () ->
        Rox_util.Accesslog.record ~site:s.slot_site Rox_util.Accesslog.Write;
        f ())
  else f ()

let mk_slot t =
  let armed = Rox_util.Accesslog.armed () in
  let i = Atomic.fetch_and_add t.next_slot 1 in
  let label = Printf.sprintf "telemetry.aggregate.d%d" i in
  {
    slot_metrics = Metrics.create ();
    slot_mutex = Mutex.create ();
    slot_site =
      (if armed then Rox_util.Accesslog.site ~name:label Rox_util.Accesslog.Shared
       else -1);
    slot_lock = (if armed then Rox_util.Accesslog.lock ~name:(label ^ ".mutex") else -1);
  }

(* The calling domain's slot, created and registered on first use. *)
let local t =
  match Domain.DLS.get t.key with
  | Some s -> s
  | None ->
    let s = mk_slot t in
    Mutex.protect t.reg_mutex (fun () ->
        (if Rox_util.Accesslog.armed () then
           Rox_util.Accesslog.with_lock t.reg_lock (fun () ->
               Rox_util.Accesslog.record ~site:t.reg_site Rox_util.Accesslog.Write));
        t.slots <- s :: t.slots);
    Domain.DLS.set t.key (Some s);
    s

let absorb t m =
  let s = local t in
  Mutex.protect s.slot_mutex (fun () ->
      bracketed_slot s (fun () ->
          Metrics.add_into ~into:s.slot_metrics m;
          Metrics.incr s.slot_metrics.Metrics.aggregate_merges))

let slot_count t = Mutex.protect t.reg_mutex (fun () -> List.length t.slots)

let with_metrics t f =
  (* Merge-on-demand: fold every slot into a fresh snapshot, one slot
     mutex at a time — no global lock exists to contend on. The snapshot
     is the reader's to keep; writes to it do not reach the aggregate. *)
  let snap = Metrics.create () in
  let slots =
    Mutex.protect t.reg_mutex (fun () ->
        (if Rox_util.Accesslog.armed () then
           Rox_util.Accesslog.with_lock t.reg_lock (fun () ->
               Rox_util.Accesslog.record ~site:t.reg_site Rox_util.Accesslog.Write));
        t.slots)
  in
  List.iter
    (fun s ->
      Mutex.protect s.slot_mutex (fun () ->
          bracketed_slot s (fun () -> Metrics.add_into ~into:snap s.slot_metrics)))
    slots;
  f snap

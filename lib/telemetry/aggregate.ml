type t = {
  mutex : Mutex.t;
  metrics : Metrics.t;
  (* RX5xx access-log identities (-1 when the log was disarmed at
     construction): every merge records one Write at [al_site] under
     [al_lock], so the race detector sees the process registry as a
     mutex-guarded shared site. Disarmed: one boolean test per merge. *)
  al_site : int;
  al_lock : int;
}

let create () =
  let armed = Rox_util.Accesslog.armed () in
  {
    mutex = Mutex.create ();
    metrics = Metrics.create ();
    al_site =
      (if armed then
         Rox_util.Accesslog.site ~name:"telemetry.aggregate"
           Rox_util.Accesslog.Shared
       else -1);
    al_lock =
      (if armed then Rox_util.Accesslog.lock ~name:"telemetry.aggregate.mutex"
       else -1);
  }

let with_metrics t f =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      if Rox_util.Accesslog.armed () then
        Rox_util.Accesslog.with_lock t.al_lock (fun () ->
            Rox_util.Accesslog.record ~site:t.al_site Rox_util.Accesslog.Write;
            f t.metrics)
      else f t.metrics)

let absorb t m = with_metrics t (fun into -> Metrics.add_into ~into m)

type counter = {
  c_name : string;
  c_help : string;
  mutable c_value : int;
}

type gauge = {
  g_name : string;
  g_help : string;
  mutable g_value : float;
}

let n_buckets = 62

type histogram = {
  h_name : string;
  h_help : string;
  mutable h_count : int;
  mutable h_sum : int;
  h_buckets : int array;
}

type t = {
  compile_ns : histogram;
  query_ns : histogram;
  edge_execution_ns : histogram;
  chain_round_ns : histogram;
  sampled_run_ns : histogram;
  sampling_time_ns : counter;
  execution_time_ns : counter;
  relation_cache_hits : counter;
  relation_cache_misses : counter;
  estimate_cache_hits : counter;
  estimate_cache_misses : counter;
  rows_materialized : counter;
  pairs_emitted : counter;
  edges_executed : counter;
  chain_rounds : counter;
  queries_served : counter;
  budget_aborts : counter;
  spans_dropped : counter;
  aggregate_merges : counter;
  requests_received : counter;
  responses_sent : counter;
  admission_rejects : counter;
  coalesce_hits : counter;
  partition_tasks : counter;
  partition_task_ns : histogram;
  queue_wait_ns : histogram;
  serve_ns : histogram;
  cache_resident_bytes : gauge;
  cache_shard_lock_waits : gauge;
  queue_depth : gauge;
}

let counter name help = { c_name = name; c_help = help; c_value = 0 }
let gauge name help = { g_name = name; g_help = help; g_value = 0.0 }

let histogram name help =
  { h_name = name; h_help = help; h_count = 0; h_sum = 0;
    h_buckets = Array.make n_buckets 0 }

let create () =
  {
    compile_ns =
      histogram "rox_compile_duration_ns" "XQuery to Join Graph compile latency";
    query_ns = histogram "rox_query_duration_ns" "whole optimized run latency";
    edge_execution_ns =
      histogram "rox_edge_execution_duration_ns" "per-edge full execution latency";
    chain_round_ns =
      histogram "rox_chain_round_duration_ns" "per chain-sampling round latency";
    sampled_run_ns =
      histogram "rox_sampled_run_duration_ns" "per cut-off sampled execution latency";
    sampling_time_ns =
      counter "rox_sampling_time_ns_total" "total wall-clock nanoseconds in sampled runs";
    execution_time_ns =
      counter "rox_execution_time_ns_total"
        "total wall-clock nanoseconds in full edge executions";
    relation_cache_hits =
      counter "rox_relation_cache_hits_total" "relation cache lookups answered from cache";
    relation_cache_misses =
      counter "rox_relation_cache_misses_total" "relation cache lookups that ran the join";
    estimate_cache_hits =
      counter "rox_estimate_cache_hits_total" "estimate cache lookups answered from cache";
    estimate_cache_misses =
      counter "rox_estimate_cache_misses_total"
        "estimate cache lookups that ran the sampled operator";
    rows_materialized =
      counter "rox_rows_materialized_total" "component rows produced by edge executions";
    pairs_emitted = counter "rox_pairs_emitted_total" "join pairs produced by edge executions";
    edges_executed = counter "rox_edges_executed_total" "full edge executions";
    chain_rounds = counter "rox_chain_rounds_total" "chain-sampling rounds run";
    queries_served = counter "rox_queries_served_total" "optimized query runs completed";
    budget_aborts =
      counter "rox_budget_aborts_total" "runs aborted by a deadline or sampling budget";
    spans_dropped = counter "rox_spans_dropped_total" "spans lost to the sink buffer cap";
    aggregate_merges =
      counter "rox_aggregate_merges_total"
        "per-session registries merged into a domain-local aggregate slot";
    requests_received =
      counter "rox_serve_requests_total" "protocol frames parsed by the server";
    responses_sent =
      counter "rox_serve_responses_total" "protocol replies written by the server";
    admission_rejects =
      counter "rox_serve_admission_rejects_total"
        "requests rejected because the admission queue was full";
    coalesce_hits =
      counter "rox_serve_coalesce_hits_total"
        "requests attached to a fingerprint-equal in-flight execution";
    partition_tasks =
      counter "rox_partition_tasks_total"
        "intra-query partition tasks executed on the domain pool";
    partition_task_ns =
      histogram "rox_partition_task_duration_ns"
        "per partition-task latency on the domain pool";
    queue_wait_ns =
      histogram "rox_serve_queue_wait_duration_ns"
        "admission-queue residence per served request";
    serve_ns =
      histogram "rox_serve_request_duration_ns"
        "whole served-request latency (queue wait + execution)";
    cache_resident_bytes =
      gauge "rox_cache_resident_bytes" "bytes resident in the cross-query cache";
    cache_shard_lock_waits =
      gauge "rox_cache_shard_lock_waits"
        "cache lookups that found their shard lock busy (cumulative, last observed)";
    queue_depth = gauge "rox_serve_queue_depth" "requests waiting in the admission queue";
  }

let incr ?(by = 1) c = c.c_value <- c.c_value + by
let set g v = g.g_value <- v

(* Index of the highest set bit: values in [2^i, 2^(i+1)) land in bucket i;
   everything <= 1 lands in bucket 0. *)
let bucket_of v =
  if v <= 1 then 0
  else begin
    let b = ref 0 and v = ref v in
    while !v > 1 do
      b := !b + 1;
      v := !v lsr 1
    done;
    min !b (n_buckets - 1)
  end

let bucket_upper i = if i >= n_buckets - 1 then max_int else (1 lsl (i + 1)) - 1

let observe h v =
  h.h_count <- h.h_count + 1;
  if v > 0 then h.h_sum <- h.h_sum + v;
  let b = bucket_of v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1

(* Log-interpolated within the holding bucket: the old upper-edge answer
   biased every reported quantile high by up to 2x (a histogram full of
   600ns observations reported p50 = 1023ns). Bucket [i >= 1] covers
   [2^i, 2^(i+1)); assuming observations log-uniform within it, the
   q-quantile sits at 2^(i + frac) where [frac] is how far into the
   bucket's population the target rank lands. Bucket 0 is degenerate
   (absorbs everything <= 1) and stays pinned at 1. *)
let quantile h q =
  if h.h_count = 0 then 0.0
  else begin
    let target = q *. float_of_int h.h_count in
    let rec find i below =
      if i >= n_buckets - 1 then (n_buckets - 1, below)
      else
        let c = below + h.h_buckets.(i) in
        if float_of_int c >= target && h.h_buckets.(i) > 0 then (i, below)
        else find (i + 1) c
    in
    let i, below = find 0 0 in
    if i = 0 then 1.0
    else begin
      let in_bucket = float_of_int h.h_buckets.(i) in
      let frac =
        if in_bucket <= 0.0 then 1.0
        else (target -. float_of_int below) /. in_bucket
      in
      let frac = Float.min 1.0 (Float.max 0.0 frac) in
      float_of_int (1 lsl i) *. (2.0 ** frac)
    end
  end

let add_histogram ~into h =
  into.h_count <- into.h_count + h.h_count;
  into.h_sum <- into.h_sum + h.h_sum;
  Array.iteri (fun i n -> into.h_buckets.(i) <- into.h_buckets.(i) + n) h.h_buckets

let counters t =
  [
    t.sampling_time_ns; t.execution_time_ns; t.relation_cache_hits;
    t.relation_cache_misses; t.estimate_cache_hits; t.estimate_cache_misses;
    t.rows_materialized; t.pairs_emitted; t.edges_executed; t.chain_rounds;
    t.queries_served; t.budget_aborts; t.spans_dropped; t.aggregate_merges;
    t.requests_received; t.responses_sent; t.admission_rejects; t.coalesce_hits;
    t.partition_tasks;
  ]

let gauges t = [ t.cache_resident_bytes; t.cache_shard_lock_waits; t.queue_depth ]

let histograms t =
  [ t.compile_ns; t.query_ns; t.edge_execution_ns; t.chain_round_ns;
    t.sampled_run_ns; t.partition_task_ns; t.queue_wait_ns; t.serve_ns ]

let add_into ~into t =
  List.iter2
    (fun (a : counter) b -> a.c_value <- a.c_value + b.c_value)
    (counters into) (counters t);
  List.iter2
    (fun (a : gauge) b -> a.g_value <- Float.max a.g_value b.g_value)
    (gauges into) (gauges t);
  List.iter2
    (fun (a : histogram) b ->
      a.h_count <- a.h_count + b.h_count;
      a.h_sum <- a.h_sum + b.h_sum;
      Array.iteri (fun i n -> a.h_buckets.(i) <- a.h_buckets.(i) + n) b.h_buckets)
    (histograms into) (histograms t)

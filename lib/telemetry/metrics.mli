(** Typed metrics registry: counters, gauges, and log-scale histograms.

    One registry per {!Sink} (and hence per [Rox_core.Session]): a fixed,
    statically-known set of instruments covering the paper-relevant run
    signals — edge-execution latency, chain-round sampling cost, cache
    hit counts, rows materialized, queries served. A fixed shape (rather
    than registration-by-name) keeps increments allocation-free, makes
    {!add_into} a structural merge, and means the multi-domain aggregate
    never sees an instrument it does not know.

    Histograms are log₂-scale: bucket [i] counts observations in
    [[2^i, 2^(i+1))] (bucket 0 also absorbs values ≤ 1). Durations are
    observed in nanoseconds, so the 62 buckets span sub-ns to ~146 years
    with ~2x relative error — the right trade for latency profiles. *)

type counter = private {
  c_name : string;
  c_help : string;
  mutable c_value : int;
}

type gauge = private {
  g_name : string;
  g_help : string;
  mutable g_value : float;
}

val n_buckets : int
(** 62: bucket [i] covers [[2^i, 2^(i+1))]. *)

type histogram = private {
  h_name : string;
  h_help : string;
  mutable h_count : int;
  mutable h_sum : int;
  h_buckets : int array;  (** length {!n_buckets} *)
}

(** The registry. Field names are the API — instrumentation sites update
    fields directly through {!incr}/{!set}/{!observe}. *)
type t = {
  compile_ns : histogram;        (** XQuery→Join-Graph compile latency *)
  query_ns : histogram;          (** whole optimized run latency *)
  edge_execution_ns : histogram; (** per-edge full execution latency *)
  chain_round_ns : histogram;    (** per chain-sampling round latency *)
  sampled_run_ns : histogram;    (** per cut-off sampled execution latency *)
  sampling_time_ns : counter;    (** total wall-clock in sampled runs *)
  execution_time_ns : counter;   (** total wall-clock in edge executions *)
  relation_cache_hits : counter;
  relation_cache_misses : counter;
  estimate_cache_hits : counter;
  estimate_cache_misses : counter;
  rows_materialized : counter;   (** component rows produced by edge exec *)
  pairs_emitted : counter;       (** join pairs produced by edge exec *)
  edges_executed : counter;
  chain_rounds : counter;
  queries_served : counter;
  budget_aborts : counter;       (** runs ended by [Cost.Budget_exceeded] *)
  spans_dropped : counter;       (** spans lost to the sink's buffer cap *)
  aggregate_merges : counter;    (** registries merged into a domain-local slot *)
  requests_received : counter;   (** protocol frames parsed by [rox serve] *)
  responses_sent : counter;      (** protocol replies written by [rox serve] *)
  admission_rejects : counter;   (** requests bounced off a full queue *)
  coalesce_hits : counter;       (** requests served by an in-flight twin *)
  partition_tasks : counter;     (** intra-query partition tasks run on the pool *)
  partition_task_ns : histogram; (** per partition-task latency *)
  queue_wait_ns : histogram;     (** admission-queue residence per request *)
  serve_ns : histogram;          (** whole served-request latency *)
  cache_resident_bytes : gauge;  (** last observed [Rox_cache] residency *)
  cache_shard_lock_waits : gauge; (** last observed shard-lock contention total *)
  queue_depth : gauge;           (** requests waiting in the admission queue *)
}

val create : unit -> t

val histogram : string -> string -> histogram
(** [histogram name help] is a standalone instrument outside any
    registry — the flight recorder's per-tenant latency series and
    per-slot adaptive-threshold histograms are built from these. A
    standalone histogram never participates in {!add_into} (which only
    merges the fixed registry shape); callers fold buckets by hand. *)

val incr : ?by:int -> counter -> unit
val set : gauge -> float -> unit

val observe : histogram -> int -> unit
(** [observe h v] records one observation of [v] (values ≤ 0 land in
    bucket 0 and contribute 0 to the sum). *)

val bucket_of : int -> int
(** The bucket index a value lands in (exposed for tests). *)

val bucket_upper : int -> int
(** Inclusive upper bound of bucket [i]: [2^(i+1) - 1]; the last bucket
    is unbounded ([max_int]). *)

val quantile : histogram -> float -> float
(** [quantile h q] approximates the [q]-quantile (0 < q ≤ 1) by locating
    the bucket holding the target rank and log-interpolating within it:
    bucket [i ≥ 1] covers [[2^i, 2^(i+1))], so the answer is
    [2^(i + frac)] with [frac] the fraction of the bucket's population
    below the rank. Bucket 0 (values ≤ 1) always reports 1. Exact at
    bucket boundaries ([frac = 1] lands on the next power of two), and —
    unlike the upper-edge rule it replaces — unbiased in expectation for
    log-uniform populations. 0 for an empty histogram. *)

val add_histogram : into:histogram -> histogram -> unit
(** Merge one histogram's population into another (count, sum and every
    bucket add) — how standalone histograms from {!histogram} are folded
    across the recorder's per-domain slots. *)

val counters : t -> counter list
val gauges : t -> gauge list
val histograms : t -> histogram list
(** Stable enumeration order — exporters and {!add_into} rely on the two
    lists of a pair of registries being positionally aligned. *)

val add_into : into:t -> t -> unit
(** Merge [t] into [into]: counters and histograms add, gauges take the
    max. The multi-domain server's process aggregate is built from this —
    see {!Aggregate}.

    The counter-vs-gauge rule. A *counter* measures work this registry's
    owner performed itself (requests served, rows materialized, spans
    dropped): each session's contribution is disjoint, so merging adds,
    and absorbing the same registry twice genuinely double-counts — call
    sites must absorb a registry into a given aggregate at most once per
    measurement interval. A *gauge* is a last-observed snapshot of shared
    state (cache residency, shard lock waits, queue depth): many sessions
    observe the *same* store, so adding would multiply one store's
    residency by the number of observers. Merging therefore takes
    [Float.max] — idempotent, so absorbing the same store's snapshot
    twice yields the observation, not the sum. Pick the instrument by
    ownership: owned work → counter (additive), shared-state snapshot →
    gauge (max). *)

(** Per-session telemetry sink: nestable monotonic-clock spans plus the
    session's {!Metrics.t} registry.

    The overhead contract: a *disabled* sink costs one boolean test per
    {!with_span} — no clock reads, no allocation inside the sink (callers
    hoist or accept their own closure allocations; attribute thunks are
    never evaluated). An *enabled* sink costs two clock reads and one
    bounded-buffer cons per span. The buffer is capped; spans past the cap
    are counted (and surface as an explicit truncation marker in the
    exporters and an RX404 diagnostic) rather than growing without bound.

    A sink is single-domain state, exactly like the session that owns it:
    share the {!Aggregate}, never a sink. *)

type span = {
  name : string;
  start_ns : int64;   (** monotonic clock at open *)
  dur_ns : int64;
  depth : int;        (** enclosing-span count at open; 0 = root *)
  lane : int;         (** 0 = the owner's call tree; [w+1] = pool worker [w] *)
  attrs : (string * string) list;
}

type t

val default_cap : int
(** 65536 spans (a few MB at worst) — generous for any single query. *)

val create : ?cap:int -> enabled:bool -> unit -> t
(** A fresh sink with a fresh {!Metrics.t}. *)

val null : unit -> t
(** A disabled sink — the default every config record reaches for. *)

val enabled : t -> bool
val metrics : t -> Metrics.t

val with_span :
  t ->
  ?attrs:(unit -> (string * string) list) ->
  ?record:(Metrics.t -> int -> unit) ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_span t name f] times [f] as one span. Disabled: exactly [f ()].
    Enabled: the span closes (and [record metrics dur_ns] fires, and
    [attrs] is evaluated) even when [f] raises — budget aborts unwind
    through well-nested spans. [record] is where call sites feed latency
    histograms without a second clock read. *)

val add_task_span :
  t ->
  ?attrs:(string * string) list ->
  lane:int ->
  start_ns:int64 ->
  dur_ns:int64 ->
  string ->
  unit
(** Append an already-closed span measured on a pool worker. The sink
    stays single-domain state: workers only report [(start, dur)] pairs
    back through the fork/join, and the *caller* appends them here, in
    deterministic part order, stamped with [lane] = worker index + 1
    (lane 0 is the caller's own {!with_span} tree). Within one lane
    spans never overlap — each worker runs its tasks sequentially — so
    the RX401 well-nesting check and the Chrome exporter treat each
    lane as its own thread. Subject to the same cap/dropped accounting
    as {!with_span}; no-op on a disabled sink. *)

val spans : t -> span list
(** In completion order (a child precedes its parent). *)

val spans_chronological : t -> span list
(** Sorted by start time, parents before children — the order exporters
    and the RX401 nesting check want. *)

val span_count : t -> int
val dropped : t -> int
(** Spans discarded because the buffer was full. *)

val depth : t -> int
(** Currently open spans (0 when no span is live — tests use this to
    assert exception-safety of {!with_span}). *)

val reset : t -> unit
(** Clear spans and the dropped count; metrics are left alone. *)

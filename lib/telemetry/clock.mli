(** Monotonic wall-clock time for spans and latency metrics.

    The trace replayed by [Rox_joingraph.Trace] is deterministic; spans
    are not — they measure real elapsed time. All telemetry timestamps
    come from CLOCK_MONOTONIC (via the bechamel stub, an [@@noalloc]
    external), so they never jump on NTP adjustments and cost a few tens
    of nanoseconds per read. Durations are plain [int] nanoseconds — at
    63 bits that wraps after ~292 years of query time, which we accept. *)

val now_ns : unit -> int64
(** Nanoseconds on the monotonic clock. Only differences are meaningful. *)

val elapsed_ns : int64 -> int
(** [elapsed_ns t0] is [now_ns () - t0] as an [int] (nanoseconds). *)

val ms_of_ns : int -> float
(** Nanoseconds to milliseconds, for human rendering. *)

val us_of_ns : int64 -> float
(** Nanoseconds to microseconds — the Chrome trace-event unit. *)

(** The flight recorder: always-on, bounded request accounting for a
    live process.

    Three layers, all bounded so they can stay armed in production:

    - {b Request records.} Every completed request — executed, coalesced
      onto an in-flight twin, or rejected at admission — appends one
      {!record} to the calling domain's own ring slot (a
      [Domain.DLS]-registered ring, mirroring [Aggregate]'s per-domain
      slot discipline: the append takes a mutex only its own domain
      holds in steady state, so it never contends). A full ring
      overwrites the oldest record and the overwrite is counted, like
      [Sink]'s span cap.
    - {b Tail-sampled traces.} {!observe} returns a retention {!reason}
      when the request's full span tree is worth keeping: its latency
      cleared an adaptive threshold (the {!create}[ ~quantile] of the
      recorder's own latency histogram, never below [floor_ns], armed
      after [warmup] samples), it errored, or it was 1-in-[head_every]
      head-sampled by trace id. The caller then hands the spans to
      {!retain}; retained traces are addressable by trace id until
      FIFO-evicted at [retain_cap].
    - {b Tenant series.} Per-tenant request/error counters and a serve
      latency histogram, bounded to the first [tenant_cap] distinct
      tenants plus an ["other"] overflow bucket — a tenant flood cannot
      grow the registry. (A tenant literally named ["other"] shares the
      overflow bucket.)

    When built with [?slow_log], {!observe} also appends one structured
    JSONL line (via [Rox_util.Minijson]) for every record that errored
    or ran at least [slow_ms] milliseconds. *)

type outcome = Executed | Coalesced | Rejected

val outcome_label : outcome -> string

type reason = Slow | Errored | Head_sampled

val reason_label : reason -> string

type record = {
  trace_id : int;        (** monotonic, process-wide, from {!next_trace_id} *)
  fingerprint : string;  (** query fingerprint (coalescing key digest) *)
  tenant : string;       (** the request's [client_id] *)
  plan_digest : string;  (** {!plan_digest} of the chosen join order *)
  plan_edges : int;      (** edges in the executed plan *)
  latency_ns : int;      (** wall latency, queue wait included *)
  queue_ns : int;        (** admission-queue residence *)
  sampling_units : int;  (** deterministic sampling work spent *)
  execution_units : int; (** deterministic execution work spent *)
  cache_hits : int;      (** relation + estimate cache hits *)
  cache_misses : int;
  outcome : outcome;
  status : string;       (** ["ok"] or a protocol ERR kind label *)
  edge_ns : (int * int) list;  (** per-edge (id, wall ns) timings *)
}

type t

val create :
  ?cap:int ->          (* per-domain ring capacity (256) *)
  ?retain_cap:int ->   (* retained-trace bound (64) *)
  ?head_every:int ->   (* head-sample 1-in-N by trace id (128; 0 = off) *)
  ?quantile:float ->   (* adaptive-threshold quantile (0.95) *)
  ?floor_ns:int ->     (* threshold floor (1ms) *)
  ?warmup:int ->       (* samples before the quantile arms (32) *)
  ?tenant_cap:int ->   (* distinct tenant series before "other" (8) *)
  ?slow_ms:int ->      (* slow-log latency threshold (100) *)
  ?slow_log:string ->  (* JSONL path; omit for no slow log *)
  unit -> t

val next_trace_id : t -> int
(** Monotonic id assignment ([Atomic.fetch_and_add]); ids start at 1. *)

val observe : t -> record -> reason option
(** Append to the calling domain's ring, fold the latency into the
    adaptive threshold, update the tenant series, write the slow-log
    line if armed — and say whether the caller should {!retain} the
    request's span tree. The retention decision uses the threshold as it
    stood {e before} this record, so a spike cannot raise the bar for
    itself; rejected records never count as slow (their latency is the
    rejection, not service). *)

val retain : t -> record -> reason -> Sink.span list -> unit
(** Make the span tree addressable by [record.trace_id] (chronological
    order, as [Sink.spans_chronological] returns). Oldest retained trace
    is evicted past [retain_cap]; re-retaining an id is a no-op. *)

val find_trace : t -> int -> (record * reason * Sink.span list) option

val recent : t -> int -> record list
(** The [n] most recent records across every domain's ring, newest
    first (by trace id — assignment order, which is admission order). *)

val records : t -> int
(** Total records ever observed (all slots, survivors and overwritten). *)

val dropped : t -> int
(** Records overwritten by ring wraparound. *)

val retained_count : t -> int

val traces : t -> (int * record * reason * Sink.span list) list
(** Every currently retained trace (diagnostics / RX702). *)

val threshold_ns : t -> int
(** The process-wide adaptive threshold: every slot's latency histogram
    merged, then the same floor/warmup/quantile rule the per-slot
    decision applies. *)

type tenant_stat = {
  tenant : string;
  requests : int;
  errors : int;
  serve_ns : Metrics.histogram;
}

val tenant_stats : t -> tenant_stat list
(** Snapshot of every tenant series, first-seen order. *)

val tenant_count : t -> int
val tenant_cap : t -> int

val log_lines : t -> int
(** Slow-log lines written so far (0 when no log is armed). *)

val close : t -> unit
(** Flush and close the slow log; further observations still record but
    no longer log. Idempotent. *)

val plan_digest : int list -> string
(** Stable 12-hex-char digest of a chosen edge order (["-"] for none). *)

val edge_timings_of_spans : Sink.span list -> (int * int) list
(** Per-edge (id, wall ns) pairs from ["execute_edge"] spans' [("edge",
    id)] attributes — the slow-log's per-edge breakdown. *)

val prometheus : t -> string
(** Text-exposition series owned by the recorder: record/drop/retention
    counters, the adaptive threshold, and the per-tenant series (label
    values escaped via [Export.escape_label]). *)

val json_of_record : ?reason:reason -> record -> Rox_util.Minijson.t
(** The slow-log line's JSON object (exposed for the RECENT verb and
    tests). *)

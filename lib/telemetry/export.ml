let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Prometheus label-value escaping: inside a label's double quotes the
   exposition format requires backslash, double quote and line feed to
   be escaped; everything else passes through verbatim. Required before
   client-supplied tenant ids become label values — an unescaped
   client_id containing a quote-brace-newline sequence would otherwise
   inject whole fake series into the scrape. *)
let escape_label s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON                                            *)

(* The writer takes bare [(tid, spans, dropped)] parts rather than
   [Sink.t]s so retained flight-recorder traces — span lists that have
   outlived their sink — export through the same code path as live
   sinks. Spans must arrive in chronological order (the trace-event
   contract for same-timestamp nesting). *)
let chrome_trace_parts ?(process_name = "rox") parts =
  let buf = Buffer.create 4096 in
  let first = ref true in
  let event fields =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf "    {";
    Buffer.add_string buf (String.concat ", " fields);
    Buffer.add_string buf "}"
  in
  (* Timestamps relative to the earliest span keep the numbers small and
     the Perfetto timeline anchored at ~0. *)
  let epoch =
    List.fold_left
      (fun acc (_, spans, _) ->
        List.fold_left
          (fun acc (s : Sink.span) -> Int64.min acc s.Sink.start_ns)
          acc spans)
      Int64.max_int parts
  in
  let epoch = if epoch = Int64.max_int then 0L else epoch in
  let ts ns = Printf.sprintf "%.3f" (Clock.us_of_ns (Int64.sub ns epoch)) in
  Buffer.add_string buf "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  event
    [ "\"name\": \"process_name\""; "\"ph\": \"M\""; "\"cat\": \"__metadata\"";
      "\"ts\": 0"; "\"pid\": 0"; "\"tid\": 0";
      Printf.sprintf "\"args\": {\"name\": \"%s\"}" (json_escape process_name) ];
  (* Pool-worker task spans (lane > 0) render as their own Chrome threads:
     lane [l] of session [tid] maps to tid [100000 + tid*100 + l], so up to
     99 worker lanes per session stay collision-free across sessions. *)
  let lane_tid tid (s : Sink.span) =
    if s.Sink.lane = 0 then tid else 100000 + (tid * 100) + s.Sink.lane
  in
  List.iter
    (fun (tid, spans, dropped) ->
      event
        [ "\"name\": \"thread_name\""; "\"ph\": \"M\""; "\"cat\": \"__metadata\"";
          "\"ts\": 0"; "\"pid\": 0"; Printf.sprintf "\"tid\": %d" tid;
          Printf.sprintf "\"args\": {\"name\": \"session-%d\"}" tid ];
      let lanes_seen = Hashtbl.create 4 in
      List.iter
        (fun (s : Sink.span) ->
          if s.Sink.lane > 0 && not (Hashtbl.mem lanes_seen s.Sink.lane) then begin
            Hashtbl.add lanes_seen s.Sink.lane ();
            event
              [ "\"name\": \"thread_name\""; "\"ph\": \"M\"";
                "\"cat\": \"__metadata\""; "\"ts\": 0"; "\"pid\": 0";
                Printf.sprintf "\"tid\": %d" (lane_tid tid s);
                Printf.sprintf "\"args\": {\"name\": \"session-%d-worker-%d\"}" tid
                  (s.Sink.lane - 1) ]
          end)
        spans;
      List.iter
        (fun (s : Sink.span) ->
          let args =
            match s.Sink.attrs with
            | [] -> "\"args\": {}"
            | attrs ->
              "\"args\": {"
              ^ String.concat ", "
                  (List.map
                     (fun (k, v) ->
                       Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v))
                     attrs)
              ^ "}"
          in
          event
            [ Printf.sprintf "\"name\": \"%s\"" (json_escape s.Sink.name);
              "\"ph\": \"X\""; "\"cat\": \"rox\"";
              Printf.sprintf "\"ts\": %s" (ts s.Sink.start_ns);
              Printf.sprintf "\"dur\": %.3f" (Clock.us_of_ns s.Sink.dur_ns);
              "\"pid\": 0"; Printf.sprintf "\"tid\": %d" (lane_tid tid s); args ])
        spans;
      if dropped > 0 then
        event
          [ Printf.sprintf "\"name\": \"telemetry truncated: %d spans dropped\""
              dropped;
            "\"ph\": \"i\""; "\"cat\": \"rox\""; "\"s\": \"t\""; "\"ts\": 0";
            "\"pid\": 0"; Printf.sprintf "\"tid\": %d" tid; "\"args\": {}" ])
    parts;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let chrome_trace ?process_name sinks =
  chrome_trace_parts ?process_name
    (List.map
       (fun (tid, sink) ->
         (tid, Sink.spans_chronological sink, Sink.dropped sink))
       sinks)

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                         *)

let prometheus (m : Metrics.t) =
  let buf = Buffer.create 4096 in
  let head name help kind =
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (fun (c : Metrics.counter) ->
      head c.Metrics.c_name c.Metrics.c_help "counter";
      Buffer.add_string buf (Printf.sprintf "%s %d\n" c.Metrics.c_name c.Metrics.c_value))
    (Metrics.counters m);
  List.iter
    (fun (g : Metrics.gauge) ->
      head g.Metrics.g_name g.Metrics.g_help "gauge";
      Buffer.add_string buf (Printf.sprintf "%s %g\n" g.Metrics.g_name g.Metrics.g_value))
    (Metrics.gauges m);
  List.iter
    (fun (h : Metrics.histogram) ->
      head h.Metrics.h_name h.Metrics.h_help "histogram";
      let highest = ref (-1) in
      Array.iteri
        (fun i n -> if n > 0 then highest := i)
        h.Metrics.h_buckets;
      let cum = ref 0 in
      for i = 0 to !highest do
        cum := !cum + h.Metrics.h_buckets.(i);
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" h.Metrics.h_name
             (Metrics.bucket_upper i) !cum)
      done;
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" h.Metrics.h_name h.Metrics.h_count);
      Buffer.add_string buf
        (Printf.sprintf "%s_sum %d\n" h.Metrics.h_name h.Metrics.h_sum);
      Buffer.add_string buf
        (Printf.sprintf "%s_count %d\n" h.Metrics.h_name h.Metrics.h_count))
    (Metrics.histograms m);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Human profile summary                                              *)

let pct part whole =
  if whole <= 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

let ms = Clock.ms_of_ns

let hist_line (h : Metrics.histogram) =
  if h.Metrics.h_count = 0 then "none"
  else
    Printf.sprintf "%d  total %.2f ms  p50 %.3f ms  p95 %.3f ms" h.Metrics.h_count
      (ms h.Metrics.h_sum)
      (ms (int_of_float (Metrics.quantile h 0.5)))
      (ms (int_of_float (Metrics.quantile h 0.95)))

let ratio_line hits misses =
  let total = hits + misses in
  if total = 0 then "no lookups"
  else Printf.sprintf "%d/%d hits (%.1f%%)" hits total (pct hits total)

let profile ?work_units (m : Metrics.t) =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let c (x : Metrics.counter) = x.Metrics.c_value in
  line "== rox profile =========================================";
  line "queries served      %d  (%d budget abort(s))" (c m.Metrics.queries_served)
    (c m.Metrics.budget_aborts);
  if m.Metrics.compile_ns.Metrics.h_count > 0 then
    line "compile             %s" (hist_line m.Metrics.compile_ns);
  let sampling = c m.Metrics.sampling_time_ns in
  let execution = c m.Metrics.execution_time_ns in
  let wall_total = sampling + execution in
  line "wall-clock          sampling %.2f ms (%.1f%%) | execution %.2f ms (%.1f%%)"
    (ms sampling) (pct sampling wall_total) (ms execution) (pct execution wall_total);
  (match work_units with
   | None -> ()
   | Some (ws, we) ->
     (* The deterministic Figure 8 ratio, next to the wall-clock one. *)
     line "work units          sampling %d (%.1f%%) | execution %d (%.1f%%)" ws
       (pct ws (ws + we)) we (pct we (ws + we)));
  line "edge executions     %s" (hist_line m.Metrics.edge_execution_ns);
  line "sampled runs        %s" (hist_line m.Metrics.sampled_run_ns);
  line "chain rounds        %s" (hist_line m.Metrics.chain_round_ns);
  line "cache               relation %s | estimate %s"
    (ratio_line (c m.Metrics.relation_cache_hits) (c m.Metrics.relation_cache_misses))
    (ratio_line (c m.Metrics.estimate_cache_hits) (c m.Metrics.estimate_cache_misses));
  if m.Metrics.cache_resident_bytes.Metrics.g_value > 0.0 then
    line "cache resident      %.0f bytes" m.Metrics.cache_resident_bytes.Metrics.g_value;
  line "materialized        %d rows from %d pairs over %d edge execution(s)"
    (c m.Metrics.rows_materialized) (c m.Metrics.pairs_emitted)
    (c m.Metrics.edges_executed);
  if c m.Metrics.spans_dropped > 0 then
    line "spans dropped       %d (raise the sink cap for a complete trace)"
      (c m.Metrics.spans_dropped);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Chrome trace validation                                            *)

let validate_chrome json =
  let module J = Rox_util.Minijson in
  let ( let* ) r f = Result.bind r f in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let* events =
    match J.member "traceEvents" json with
    | Some (J.Arr l) -> Ok l
    | Some _ -> err "\"traceEvents\" is not an array"
    | None -> err "missing top-level \"traceEvents\" array"
  in
  let str k ev = Option.bind (J.member k ev) J.to_string_opt in
  let num k ev = Option.bind (J.member k ev) J.to_num_opt in
  (* Pass 1: per-event schema; collect complete events per (pid, tid). *)
  let lanes = Hashtbl.create 8 in
  let rec check_events i = function
    | [] -> Ok ()
    | ev :: rest ->
      let* () =
        match (str "name" ev, str "ph" ev, str "cat" ev) with
        | Some _, Some _, Some _ -> Ok ()
        | _ -> err "event #%d: missing string name/ph/cat" i
      in
      let* ts, pid, tid =
        match (num "ts" ev, num "pid" ev, num "tid" ev) with
        | Some ts, Some pid, Some tid -> Ok (ts, pid, tid)
        | _ -> err "event #%d: missing numeric ts/pid/tid" i
      in
      let* () =
        if str "ph" ev = Some "X" then
          match num "dur" ev with
          | Some d when d >= 0.0 ->
            Hashtbl.replace lanes (pid, tid)
              ((ts, d) :: (try Hashtbl.find lanes (pid, tid) with Not_found -> []));
            Ok ()
          | Some _ -> err "event #%d: negative dur" i
          | None -> err "event #%d: complete (\"X\") event without dur" i
        else Ok ()
      in
      check_events (i + 1) rest
  in
  let* () = check_events 0 events in
  (* Pass 2: complete events in one lane must be well-nested. *)
  let eps = 0.002 (* us; timestamps are printed with 3 decimals *) in
  let check_lane (pid, tid) spans =
    let sorted =
      List.sort
        (fun (ts1, d1) (ts2, d2) ->
          match compare ts1 ts2 with 0 -> compare d2 d1 | c -> c)
        spans
    in
    let rec go stack = function
      | [] -> Ok ()
      | (ts, dur) :: rest ->
        let finish = ts +. dur in
        let stack = List.filter (fun top_end -> top_end >= ts -. eps) stack in
        (match stack with
         | top_end :: _ when finish > top_end +. eps ->
           err "lane pid=%g tid=%g: span at ts=%g overlaps an enclosing span" pid tid ts
         | _ -> go (finish :: stack) rest)
    in
    go [] sorted
  in
  let* n_spans =
    Hashtbl.fold
      (fun lane spans acc ->
        let* n = acc in
        let* () = check_lane lane spans in
        Ok (n + List.length spans))
      lanes (Ok 0)
  in
  Ok n_spans

(** Exporters: Chrome trace-event JSON, Prometheus text exposition, and
    the human profile summary.

    The Chrome format is the [chrome://tracing] / Perfetto "JSON Array
    with metadata" flavour: an object with a ["traceEvents"] array of
    complete ([ph = "X"]) events, microsecond timestamps relative to the
    earliest span, one [tid] lane per sink. {!validate_chrome} checks
    exactly the schema subset {!chrome_trace} promises — the [make
    profile-smoke] gate parses the emitted file back and runs it. *)

val chrome_trace :
  ?process_name:string -> (int * Sink.t) list -> string
(** [(tid, sink)] pairs become one thread lane each. Includes process /
    thread-name metadata events and, per sink with dropped spans, an
    instant event marking the truncation. *)

val chrome_trace_parts :
  ?process_name:string -> (int * Sink.span list * int) list -> string
(** Same writer over bare parts — [(tid, spans, dropped)] — for span
    lists that have outlived their sink (the flight recorder's retained
    traces). Spans must be in chronological order, as
    [Sink.spans_chronological] returns them; {!chrome_trace} is this
    applied to live sinks. *)

val escape_label : string -> string
(** Prometheus label-value escaping: backslash, double quote and line
    feed each gain a backslash, per the text exposition format.
    Everything emitted inside a label value's quotes — in particular
    client-supplied tenant ids — must pass through this. *)

val prometheus : Metrics.t -> string
(** Text exposition format: [# HELP] / [# TYPE] per instrument, counters
    as [_total], histograms as cumulative [_bucket{le="..."}] ladders
    (log₂ bounds, buckets past the last observation folded into [+Inf])
    plus [_sum] and [_count]. *)

val profile : ?work_units:int * int -> Metrics.t -> string
(** The paper-relevant breakdown, for [--profile]: sampling vs execution
    wall-clock side by side with the deterministic work-unit split of
    Figure 8 ([work_units] = (sampling, execution) from the session's
    [Cost.counter]), per-stage latency quantiles, cache hit ratios, and
    span accounting. *)

val validate_chrome : Rox_util.Minijson.t -> (int, string) result
(** Schema check for a parsed Chrome trace: top-level ["traceEvents"]
    array; every event an object with string [name]/[ph]/[cat], numeric
    [ts]/[pid]/[tid]; every ["X"] event a non-negative [dur]; per
    [(pid, tid)] lane the complete events must be well-nested. Returns
    the number of complete events on success. *)

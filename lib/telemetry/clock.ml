let now_ns () = Monotonic_clock.now ()
let elapsed_ns t0 = Int64.to_int (Int64.sub (Monotonic_clock.now ()) t0)
let ms_of_ns ns = float_of_int ns /. 1_000_000.0
let us_of_ns ns = Int64.to_float ns /. 1_000.0

(** Process-level metrics aggregate for the multi-domain server —
    contention-free by construction.

    Sessions (and their sinks) are single-domain values; the serving path
    of [bench/exp_parallel] runs one session per query on N OCaml domains.
    The aggregate is the one place their metrics meet, but it is not one
    mutex-guarded registry: each domain gets its own absorption slot
    (via [Domain.DLS]), {!absorb} merges into the caller's slot under a
    mutex no other domain holds in steady state, and readers build a
    snapshot by folding every slot through {!Metrics.add_into} on demand.
    Worker domains therefore never contend with each other on the hot
    absorb path. Per-domain metrics must still sum exactly to the
    aggregate — the 2-domain test in [test/suite_telemetry.ml] pins that
    down. Slots outlive their domain, so totals absorbed by a finished
    worker stay visible.

    Every {!absorb} also increments the slot's [aggregate_merges]
    counter, so a snapshot reports how many per-session registries were
    batched into domain-local slots. *)

type t

val create : unit -> t

val absorb : t -> Metrics.t -> unit
(** Add a session's registry into the calling domain's slot (one
    uncontended mutex acquisition; safe from any domain). The session
    registry is not modified and may be absorbed only once unless double
    counting is intended. *)

val with_metrics : t -> (Metrics.t -> 'a) -> 'a
(** Run [f] on a freshly merged snapshot of every slot (taken one slot
    mutex at a time while domains may still be serving). The snapshot is
    private to the caller: mutating it does not write back into the
    aggregate. *)

val slot_count : t -> int
(** How many per-domain slots exist (diagnostics, tests). *)

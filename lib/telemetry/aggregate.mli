(** Process-level metrics aggregate for the multi-domain server.

    Sessions (and their sinks) are single-domain values; the serving path
    of [bench/exp_parallel] runs one session per query on N OCaml domains.
    The aggregate is the one place their metrics meet: a mutex-guarded
    {!Metrics.t} that each domain {!absorb}s its per-session registries
    into. Per-domain metrics must sum exactly to the aggregate — the
    2-domain test in [test/suite_telemetry.ml] pins that down. *)

type t

val create : unit -> t

val absorb : t -> Metrics.t -> unit
(** Add a session's registry into the aggregate (one mutex acquisition;
    safe from any domain). The session registry is not modified and may
    be absorbed only once unless double counting is intended. *)

val with_metrics : t -> (Metrics.t -> 'a) -> 'a
(** Run a reader under the aggregate's mutex (exporting a snapshot while
    domains are still serving). *)

type span = {
  name : string;
  start_ns : int64;
  dur_ns : int64;
  depth : int;
  lane : int;
  attrs : (string * string) list;
}

type t = {
  is_enabled : bool;
  cap : int;
  metrics : Metrics.t;
  mutable rev_spans : span list;
  mutable n_spans : int;
  mutable n_dropped : int;
  mutable live : int;
}

let default_cap = 65_536

let create ?(cap = default_cap) ~enabled () =
  {
    is_enabled = enabled;
    cap = max 1 cap;
    metrics = Metrics.create ();
    rev_spans = [];
    n_spans = 0;
    n_dropped = 0;
    live = 0;
  }

let null () = create ~enabled:false ()
let enabled t = t.is_enabled
let metrics t = t.metrics
let span_count t = t.n_spans
let dropped t = t.n_dropped
let depth t = t.live

let reset t =
  t.rev_spans <- [];
  t.n_spans <- 0;
  t.n_dropped <- 0

let close t name start depth attrs record =
  let dur = Int64.sub (Clock.now_ns ()) start in
  (match record with
   | None -> ()
   | Some r -> r t.metrics (Int64.to_int dur));
  if t.n_spans >= t.cap then begin
    t.n_dropped <- t.n_dropped + 1;
    Metrics.incr t.metrics.Metrics.spans_dropped
  end
  else begin
    let attrs = match attrs with None -> [] | Some f -> f () in
    t.rev_spans <-
      { name; start_ns = start; dur_ns = dur; depth; lane = 0; attrs } :: t.rev_spans;
    t.n_spans <- t.n_spans + 1
  end

let with_span t ?attrs ?record name f =
  if not t.is_enabled then f ()
  else begin
    let start = Clock.now_ns () in
    let depth = t.live in
    t.live <- depth + 1;
    Fun.protect
      ~finally:(fun () ->
        t.live <- depth;
        close t name start depth attrs record)
      f
  end

(* Pool tasks run on worker domains, but the sink stays single-domain
   state: the *caller* appends each task's already-closed span after the
   fork/join, stamped with the worker's lane (worker index + 1; lane 0 is
   the session's own call tree). Per-worker execution is sequential, so
   spans within one lane never overlap — which is exactly the per-lane
   well-nesting contract the RX401 check and the Chrome exporter rely
   on. *)
let add_task_span t ?(attrs = []) ~lane ~start_ns ~dur_ns name =
  if t.is_enabled then begin
    if t.n_spans >= t.cap then begin
      t.n_dropped <- t.n_dropped + 1;
      Metrics.incr t.metrics.Metrics.spans_dropped
    end
    else begin
      t.rev_spans <-
        { name; start_ns; dur_ns; depth = t.live; lane; attrs } :: t.rev_spans;
      t.n_spans <- t.n_spans + 1
    end
  end

let spans t = List.rev t.rev_spans

let spans_chronological t =
  List.sort
    (fun a b ->
      match Int64.compare a.start_ns b.start_ns with
      | 0 -> compare a.depth b.depth
      | c -> c)
    (spans t)

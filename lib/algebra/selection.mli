(** Value predicates on text / attribute nodes.

    Join-graph vertices carry optional range-selection predicates ("a text
    node with possibly a range-selection predicate", Definition 1). String
    equality goes through the value index when possible; order predicates
    compare numerically, matching XQuery general-comparison semantics on
    untyped numeric data (the XMark [current/text() < 145]). *)

type t =
  | Eq of string
  | Lt of float
  | Le of float
  | Gt of float
  | Ge of float
  | Between of float * float  (** inclusive bounds *)

val to_string : t -> string

val matches : Rox_shred.Doc.t -> t -> int -> bool
(** Does the node's value satisfy the predicate? Non-numeric values never
    satisfy a numeric predicate. *)

val filter :
  ?meter:Cost.meter ->
  doc:Rox_shred.Doc.t ->
  pred:t ->
  Rox_util.Column.t ->
  Rox_util.Column.t
(** The scan operator [σ(C)]: cost |C|. The sorted flag carries over. *)

(** Staircase join: the structural join of Section 2.2.

    [Dk/axis(C, S)] pairs a context node sequence [C] with candidate nodes
    [S] (both sorted on pre, duplicate-free; [S] typically comes from an
    element / kind / value index, which encodes the paper's kind-and-name
    restriction) and selects the [s ∈ S] standing in [axis] relation to
    some [c ∈ C].

    Two evaluation modes:

    - {!iter_pairs} enumerates the *pairs* (c, s) in context order — the
      basis both for extending materialized join-graph relations and for
      cut-off sampling (context order makes the reduction factor [f] of
      Section 2.3 well-defined);
    - {!join} returns the duplicate-free, document-ordered [s]-side result
      (the classic staircase output), applying context pruning for the
      containment axes.

    The operator is zero-investment with respect to [C]: work is linear in
    the consumed prefix of [C] plus produced results — never in unseen
    parts of either input — which is what licenses its use under ROX
    sampling (Section 2.3). *)

open Rox_shred

val iter_pairs :
  ?meter:Cost.meter ->
  doc:Doc.t ->
  axis:Axis.t ->
  context:Rox_util.Column.t ->
  candidates:Rox_util.Column.t ->
  (int -> int -> int -> unit) ->
  unit
(** [iter_pairs ~doc ~axis ~context ~candidates f] calls [f cidx c s] for
    every qualifying pair, grouped by ascending context index [cidx]. The
    callback may raise to stop early (cut-off); partial work is still
    charged to the meter. *)

val join :
  ?sanitize:bool ->
  ?meter:Cost.meter ->
  doc:Doc.t ->
  axis:Axis.t ->
  context:Rox_util.Column.t ->
  Rox_util.Column.t ->
  Rox_util.Column.t
(** [join ~doc ~axis ~context candidates]: duplicate-free document-ordered
    result nodes ([sorted] flag set; the Following axis returns a
    zero-copy slice of the candidates). [?sanitize] selects the
    contract-checking mode (default: {!Sanitize.default_mode}, which is an
    RX307 violation inside an armed session region — session paths thread
    their own mode). *)

val count :
  ?meter:Cost.meter ->
  doc:Doc.t ->
  axis:Axis.t ->
  context:Rox_util.Column.t ->
  Rox_util.Column.t ->
  int
(** Number of pairs (not distinct results) — the intermediate-result
    cardinality a step contributes. *)

type contract =
  | Sorted_dedup
  | Domain_subset
  | Cost_bound
  | Cache_consistent
  | Sorted_flag
  | Kernel_equiv

type violation = {
  op : string;
  contract : contract;
  detail : string;
}

exception Violation of violation

let enabled =
  ref
    (match Sys.getenv_opt "ROX_SANITIZE" with
     | None | Some "" | Some "0" -> false
     | Some _ -> true)

let contract_label = function
  | Sorted_dedup -> "sorted duplicate-free node sequence"
  | Domain_subset -> "output contained in input domain"
  | Cost_bound -> "Table 1 cost bound"
  | Cache_consistent -> "cache hit bit-identical to fresh execution"
  | Sorted_flag -> "column sorted flag honest (strictly increasing)"
  | Kernel_equiv -> "columnar kernel bit-identical to naive reference"

let fail ~op ~contract detail = raise (Violation { op; contract; detail })

let message v =
  Printf.sprintf "%s: %s violated (%s)" v.op (contract_label v.contract) v.detail

let check_sorted_dedup ~op ~what a =
  let n = Array.length a in
  for i = 1 to n - 1 do
    if a.(i - 1) >= a.(i) then
      fail ~op ~contract:Sorted_dedup
        (Printf.sprintf "%s[%d..%d] = %d, %d" what (i - 1) i a.(i - 1) a.(i))
  done

let check_subset ~op ~what ~domain a =
  Array.iter
    (fun x ->
      if not (Rox_util.Bin_search.mem domain x) then
        fail ~op ~contract:Domain_subset
          (Printf.sprintf "%s contains node %d outside its domain" what x))
    a

let check_identical ~op ~what a b =
  let na = Array.length a and nb = Array.length b in
  if na <> nb then
    fail ~op ~contract:Cache_consistent
      (Printf.sprintf "%s: cached length %d, fresh length %d" what na nb)
  else
    for i = 0 to na - 1 do
      if a.(i) <> b.(i) then
        fail ~op ~contract:Cache_consistent
          (Printf.sprintf "%s[%d]: cached %d, fresh %d" what i a.(i) b.(i))
    done

let check_column_flag ~op ~what (c : Rox_util.Column.t) =
  if not (Rox_util.Column.flag_honest c) then
    fail ~op ~contract:Sorted_flag
      (Printf.sprintf "%s carries sorted=true but is not strictly increasing" what)

let check_kernel_equiv ~op ~what ok =
  if not ok then
    fail ~op ~contract:Kernel_equiv
      (Printf.sprintf "%s differs from the naive row-major reference" what)

let check_cost ~op ~charged ~bound =
  if charged > bound then
    fail ~op ~contract:Cost_bound
      (Printf.sprintf "charged %d work units, formula bound is %d" charged bound)

(* Observe the work an operator charges without disturbing the caller's
   accounting: run with a private counter, then forward the total. *)
let observed meter f =
  let local = Cost.new_counter () in
  let result = f (Cost.execution_meter local) in
  let total = Cost.total local in
  Cost.charge meter total;
  (result, total)

type contract =
  | Sorted_dedup
  | Domain_subset
  | Cost_bound
  | Cache_consistent
  | Sorted_flag
  | Kernel_equiv
  | Session_confined
  | Shard_consistent
  | Partition_consistent

type violation = {
  op : string;
  contract : contract;
  detail : string;
}

exception Violation of violation

let contract_label = function
  | Sorted_dedup -> "sorted duplicate-free node sequence"
  | Domain_subset -> "output contained in input domain"
  | Cost_bound -> "Table 1 cost bound"
  | Cache_consistent -> "cache hit bit-identical to fresh execution"
  | Sorted_flag -> "column sorted flag honest (strictly increasing)"
  | Kernel_equiv -> "columnar kernel bit-identical to naive reference"
  | Session_confined -> "per-query state reached only through the session"
  | Shard_consistent -> "lock-free shard hit bit-identical to locked reference"
  | Partition_consistent ->
    "partitioned parallel kernel bit-identical to sequential kernel"

let fail ~op ~contract detail = raise (Violation { op; contract; detail })

let message v =
  Printf.sprintf "%s: %s violated (%s)" v.op (contract_label v.contract) v.detail

(* --- session confinement ------------------------------------------------ *)

(* The process-wide *default* sanitize mode, read from ROX_SANITIZE once at
   startup. This is configuration, not per-query state: sessions snapshot it
   at construction time and operators receive the mode as an explicit
   parameter from their session. *)
let default =
  ref
    (match Sys.getenv_opt "ROX_SANITIZE" with
     | None | Some "" | Some "0" -> false
     | Some _ -> true)

(* Per-domain marker for "a session run is in flight". While an *armed*
   (sanitize-on) region is active, any read of process-global mutable state
   through the accessors below is an RX307 Session_confined violation: every
   operator must draw its mode, counter and RNG from the session it was
   handed, never from process globals — that confinement is what makes
   concurrent sessions on separate domains sound. *)
type region = { armed : bool }

let region_key : region option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let confine ~sanitize f =
  let prev = Domain.DLS.get region_key in
  Domain.DLS.set region_key (Some { armed = sanitize });
  Fun.protect ~finally:(fun () -> Domain.DLS.set region_key prev) f

let confined () =
  match Domain.DLS.get region_key with Some _ -> true | None -> false

let global_read what =
  match Domain.DLS.get region_key with
  | Some { armed = true } ->
    fail ~op:what ~contract:Session_confined
      "process-global mutable state read inside a session-confined region"
  | Some { armed = false } | None -> ()

let default_mode () =
  global_read "Sanitize.default_mode";
  !default

let set_default_mode b =
  global_read "Sanitize.set_default_mode";
  default := b

(* --- checks ------------------------------------------------------------- *)

let check_sorted_dedup ~op ~what a =
  let n = Array.length a in
  for i = 1 to n - 1 do
    if a.(i - 1) >= a.(i) then
      fail ~op ~contract:Sorted_dedup
        (Printf.sprintf "%s[%d..%d] = %d, %d" what (i - 1) i a.(i - 1) a.(i))
  done

let check_subset ~op ~what ~domain a =
  Array.iter
    (fun x ->
      if not (Rox_util.Bin_search.mem domain x) then
        fail ~op ~contract:Domain_subset
          (Printf.sprintf "%s contains node %d outside its domain" what x))
    a

let check_identical ~op ~what a b =
  let na = Array.length a and nb = Array.length b in
  if na <> nb then
    fail ~op ~contract:Cache_consistent
      (Printf.sprintf "%s: cached length %d, fresh length %d" what na nb)
  else
    for i = 0 to na - 1 do
      if a.(i) <> b.(i) then
        fail ~op ~contract:Cache_consistent
          (Printf.sprintf "%s[%d]: cached %d, fresh %d" what i a.(i) b.(i))
    done

let check_column_flag ~op ~what (c : Rox_util.Column.t) =
  if not (Rox_util.Column.flag_honest c) then
    fail ~op ~contract:Sorted_flag
      (Printf.sprintf "%s carries sorted=true but is not strictly increasing" what)

let check_kernel_equiv ~op ~what ok =
  if not ok then
    fail ~op ~contract:Kernel_equiv
      (Printf.sprintf "%s differs from the naive row-major reference" what)

let check_cost ~op ~charged ~bound =
  if charged > bound then
    fail ~op ~contract:Cost_bound
      (Printf.sprintf "charged %d work units, formula bound is %d" charged bound)

(* Observe the work an operator charges without disturbing the caller's
   accounting: run with a private counter, then forward the total. *)
let observed meter f =
  let local = Cost.new_counter () in
  let result = f (Cost.execution_meter local) in
  let total = Cost.total local in
  Cost.charge meter total;
  (result, total)

open Rox_util
open Rox_shred
open Rox_storage

type inner_side =
  | Inner_text
  | Inner_attr of int

type inner_spec = {
  docref : Engine.docref;
  side : inner_side;
  restrict : Column.t option;
}

let inner_lookup inner value_id =
  match inner.side with
  | Inner_text -> Value_index.text_eq inner.docref.Engine.values value_id
  | Inner_attr name_id -> Value_index.attr_eq inner.docref.Engine.values ~name_id ~value_id

let iter_index_nl ?meter ~outer_doc ~outer ~inner f =
  Column.iteri
    (fun cidx onode ->
      Cost.charge meter 1;
      let v = Doc.value_id outer_doc onode in
      if v >= 0 then begin
        let bucket = inner_lookup inner v in
        match inner.restrict with
        | None ->
          Column.iter
            (fun inode ->
              Cost.charge meter 1;
              f cidx onode inode)
            bucket
        | Some table ->
          Column.iter
            (fun inode ->
              Cost.charge meter 1;
              if Column.mem table inode then f cidx onode inode)
            bucket
      end)
    outer

let iter_hash ?meter ~outer_doc ~outer ~inner_doc ~inner f =
  (* Build on the inner side — the paper's hash join costs |C| + |S| + |R|.
     The open-addressing multimap keeps keys and per-key chains unboxed. *)
  let table = Int_table.Multimap.create ~capacity:(Column.length inner) () in
  Column.iter
    (fun inode ->
      Cost.charge meter 1;
      let v = Doc.value_id inner_doc inode in
      if v >= 0 then Int_table.Multimap.add table v inode)
    inner;
  Column.iteri
    (fun cidx onode ->
      Cost.charge meter 1;
      let v = Doc.value_id outer_doc onode in
      if v >= 0 then
        Int_table.Multimap.iter_key table v (fun inode ->
            Cost.charge meter 1;
            f cidx onode inode))
    outer

let by_value doc nodes =
  let tagged = Array.map (fun n -> (Doc.value_id doc n, n)) (Column.read nodes) in
  Array.sort
    (fun (a, pa) (b, pb) -> match Int.compare a b with 0 -> Int.compare pa pb | c -> c)
    tagged;
  tagged

let iter_merge ?meter ~outer_doc ~outer ~inner_doc ~inner f =
  let a = by_value outer_doc outer in
  let b = by_value inner_doc inner in
  Cost.charge meter (min (Array.length a) (Array.length b));
  let i = ref 0 and j = ref 0 in
  let na = Array.length a and nb = Array.length b in
  while !i < na && !j < nb do
    let va, _ = a.(!i) and vb, _ = b.(!j) in
    if va < vb || va < 0 then incr i
    else if vb < va || vb < 0 then incr j
    else begin
      (* Emit the cross product of the two equal-value groups. *)
      let j_end = ref !j in
      while !j_end < nb && fst b.(!j_end) = va do incr j_end done;
      let i_end = ref !i in
      while !i_end < na && fst a.(!i_end) = va do incr i_end done;
      for ii = !i to !i_end - 1 do
        let _, onode = a.(ii) in
        for jj = !j to !j_end - 1 do
          let _, inode = b.(jj) in
          Cost.charge meter 1;
          f ii onode inode
        done
      done;
      i := !i_end;
      j := !j_end
    end
  done

(** Operations on node sequences: sorted, duplicate-free [int array]s.

    The ROX state-update step (Algorithm 1, lines 14–17) intersects a
    vertex table with the nodes that survived an edge execution; these are
    the merge-based primitives for that.

    [?sanitize] selects the contract-checking mode for this call; omit it
    only outside session runs (it then falls back to
    {!Sanitize.default_mode}, which traps under RX307 inside an armed
    session region). *)

val intersect : ?sanitize:bool -> int array -> int array -> int array
val union : ?sanitize:bool -> int array -> int array -> int array
val difference : ?sanitize:bool -> int array -> int array -> int array
val mem : int array -> int -> bool
val is_sorted_dedup : int array -> bool
val is_sorted : int array -> bool

val of_unsorted : ?sanitize:bool -> int array -> int array
(** Sort + dedup a scratch array (copy; input untouched). *)

val equal : int array -> int array -> bool

(** Operator-contract sanitizer (debug mode).

    ROX's zero-investment algebra rests on invariants the operators state
    only in comments: node sequences are sorted and duplicate-free in
    document order (the Table 1 contract), operator outputs stay inside
    their input domains, and observed work stays within the Table 1 cost
    formulas. When sanitizing is on the operators re-check those
    postconditions on every call and raise {!Violation} on the first
    breach.

    The sanitize mode is *per-session* state: every instrumented operator
    receives it as an explicit parameter (threaded from the
    [Rox_core.Session] that owns the query, or carried by the structure —
    runtime, state — the session configured). The process-wide
    {!default_mode}, initialized once from the [ROX_SANITIZE] environment
    variable, is only the default a session snapshots at construction
    time.

    Confinement (RX307): while a session run is in flight —
    {!confine} marks the current domain — reading process-global mutable
    configuration through {!default_mode} / {!set_default_mode} is itself
    a {!Session_confined} violation when the region is armed. This
    dynamically enforces that no operator on a session's execution path
    falls back to process globals, which is what makes concurrent sessions
    on separate OCaml domains sound. *)

type contract =
  | Sorted_dedup   (** Table 1's zero-investment node-sequence contract *)
  | Domain_subset  (** operator output stays inside its input domain *)
  | Cost_bound     (** observed work within the Table 1 cost formula *)
  | Cache_consistent
      (** a [Rox_cache] hit replayed a result bit-identical to what a
          fresh execution of the fingerprinted operation produces *)
  | Sorted_flag
      (** a {!Rox_util.Column.t} carrying [sorted=true] really is strictly
          increasing — the flag kernels trust for their merge fast paths *)
  | Kernel_equiv
      (** a columnar relation kernel produced a result bit-identical to
          the retained naive row-major reference implementation *)
  | Session_confined
      (** no operator inside a session run reads process-global mutable
          state (cost counters, RNG, sanitize mode) other than through its
          session (RX307) *)
  | Shard_consistent
      (** a sharded-cache hit served by the lock-free fast path is
          bit-identical to what the single-lock reference lookup returns
          for the same key (RX308) *)
  | Partition_consistent
      (** an edge executed as K partition-joins on the domain pool,
          merged in part order, is bit-identical to one sequential
          kernel run over the unpartitioned inputs (RX310 — the RX306
          kernel-identity pattern lifted to the partition layer) *)

type violation = {
  op : string;          (** operator, e.g. ["Staircase.join(descendant)"] *)
  contract : contract;  (** the invariant that broke *)
  detail : string;
}

exception Violation of violation

val contract_label : contract -> string

val default_mode : unit -> bool
(** The process-default sanitize mode, initialized from [ROX_SANITIZE]
    ([unset], [""] and ["0"] mean off). Sessions snapshot it at
    construction; operators called outside any session default to it.
    Raises {!Violation} ({!Session_confined}) when called inside an armed
    confined region — an operator on a session path must use the mode its
    session handed it. *)

val set_default_mode : bool -> unit
(** Change the process default (tests, analysis drivers). Same confinement
    rule as {!default_mode}. *)

val confine : sanitize:bool -> (unit -> 'a) -> 'a
(** [confine ~sanitize f] runs [f] with the current domain marked as
    inside a session run; [sanitize] arms the {!Session_confined} trap.
    Regions nest; the marker is domain-local, so sessions on other domains
    are unaffected. *)

val confined : unit -> bool
(** Whether the current domain is inside a {!confine} region. *)

val global_read : string -> unit
(** [global_read what] is the RX307 tripwire: call it from any accessor of
    process-global mutable state. Inside an armed confined region it fails
    the {!Session_confined} contract; otherwise it is a no-op. *)

val message : violation -> string

val fail : op:string -> contract:contract -> string -> 'a
(** Raise {!Violation}. *)

val check_sorted_dedup : op:string -> what:string -> int array -> unit
(** Sequence is strictly increasing (sorted, duplicate-free). *)

val check_subset : op:string -> what:string -> domain:int array -> int array -> unit
(** Every element occurs in [domain] (sorted). *)

val check_identical : op:string -> what:string -> int array -> int array -> unit
(** [check_identical ~op ~what cached fresh] fails the {!Cache_consistent}
    contract on the first position where the arrays differ. *)

val check_column_flag : op:string -> what:string -> Rox_util.Column.t -> unit
(** A set sorted flag matches reality ({!Sorted_flag}, RX305). *)

val check_kernel_equiv : op:string -> what:string -> bool -> unit
(** [check_kernel_equiv ~op ~what ok] fails the {!Kernel_equiv} contract
    (RX306) when the caller's columnar-vs-naive comparison came back
    [false]. *)

val check_cost : op:string -> charged:int -> bound:int -> unit
(** Observed work does not exceed the operator's cost-formula bound. *)

val observed : Cost.meter option -> (Cost.meter -> 'a) -> 'a * int
(** [observed meter f] runs [f] against a private meter, forwards the
    charged total to [meter], and returns (result, total). *)

(** Operator-contract sanitizer (debug mode).

    ROX's zero-investment algebra rests on invariants the operators state
    only in comments: node sequences are sorted and duplicate-free in
    document order (the Table 1 contract), operator outputs stay inside
    their input domains, and observed work stays within the Table 1 cost
    formulas. When {!enabled} is set — via the [ROX_SANITIZE] environment
    variable or programmatically (see [Rox_analysis.Contract]) — the
    operators re-check those postconditions on every call and raise
    {!Violation} on the first breach.

    Disabled (the default), the only cost is a single [if !enabled] flag
    check per instrumented call. *)

type contract =
  | Sorted_dedup   (** Table 1's zero-investment node-sequence contract *)
  | Domain_subset  (** operator output stays inside its input domain *)
  | Cost_bound     (** observed work within the Table 1 cost formula *)
  | Cache_consistent
      (** a [Rox_cache] hit replayed a result bit-identical to what a
          fresh execution of the fingerprinted operation produces *)
  | Sorted_flag
      (** a {!Rox_util.Column.t} carrying [sorted=true] really is strictly
          increasing — the flag kernels trust for their merge fast paths *)
  | Kernel_equiv
      (** a columnar relation kernel produced a result bit-identical to
          the retained naive row-major reference implementation *)

type violation = {
  op : string;          (** operator, e.g. ["Staircase.join(descendant)"] *)
  contract : contract;  (** the invariant that broke *)
  detail : string;
}

exception Violation of violation

val contract_label : contract -> string

val enabled : bool ref
(** Initialized from [ROX_SANITIZE] ([unset], [""] and ["0"] mean off). Hot
    paths guard every check with a single [!enabled] dereference. *)

val message : violation -> string

val fail : op:string -> contract:contract -> string -> 'a
(** Raise {!Violation}. *)

val check_sorted_dedup : op:string -> what:string -> int array -> unit
(** Sequence is strictly increasing (sorted, duplicate-free). *)

val check_subset : op:string -> what:string -> domain:int array -> int array -> unit
(** Every element occurs in [domain] (sorted). *)

val check_identical : op:string -> what:string -> int array -> int array -> unit
(** [check_identical ~op ~what cached fresh] fails the {!Cache_consistent}
    contract on the first position where the arrays differ. *)

val check_column_flag : op:string -> what:string -> Rox_util.Column.t -> unit
(** A set sorted flag matches reality ({!Sorted_flag}, RX305). *)

val check_kernel_equiv : op:string -> what:string -> bool -> unit
(** [check_kernel_equiv ~op ~what ok] fails the {!Kernel_equiv} contract
    (RX306) when the caller's columnar-vs-naive comparison came back
    [false]. *)

val check_cost : op:string -> charged:int -> bound:int -> unit
(** Observed work does not exceed the operator's cost-formula bound. *)

val observed : Cost.meter option -> (Cost.meter -> 'a) -> 'a * int
(** [observed meter f] runs [f] against a private meter, forwards the
    charged total to [meter], and returns (result, total). *)

(** Work-unit cost accounting.

    The paper reports elapsed times on one fixed testbed; this reproduction
    additionally measures *work units* — tuples touched and produced,
    charged by each physical operator according to the cost column of
    Table 1. Work units are deterministic, so plan comparisons (Figures
    5–7) and the sampling-overhead ratios (Figure 8) are exactly
    reproducible.

    A {!counter} keeps two buckets: work done while *sampling* (weight
    estimation + chain sampling) and work done *executing* edges for real.
    The ROX "full run" of the figures is [sampling + execution]; the "pure
    plan" is [execution] alone.

    A counter can also carry a *sampled-rows budget*: once the sampling
    bucket exceeds it, {!charge} aborts the run with the typed
    {!Budget_exceeded} instead of letting estimation work run away. The
    wall-clock deadline of a session raises the same exception (reason
    [Deadline]) so callers handle both budget classes uniformly. *)

type budget_reason = Deadline | Sampled_rows

exception Budget_exceeded of { reason : budget_reason; spent : int; budget : int }
(** For [Deadline], [spent]/[budget] are milliseconds; for [Sampled_rows],
    work units in the sampling bucket. *)

val budget_reason_label : budget_reason -> string

val budget_unit : budget_reason -> string
(** The unit of [spent]/[budget] for the reason: ["ms"] for [Deadline],
    ["work units"] for [Sampled_rows] — both reasons share the record
    fields, so every rendering must say which unit it is showing. *)

val budget_message : exn -> string option
(** Human-readable rendering of a {!Budget_exceeded}, unit included
    (e.g. ["wall-clock deadline exceeded: spent 1503 ms, budget 1500 ms"]);
    [None] otherwise. [rox_cli] prints this and exits with code 2 on any
    budget abort (see README). *)

type counter = private {
  mutable sampling : int;
  mutable execution : int;
  sampling_budget : int;  (** [max_int] = unlimited *)
}

type bucket = Sampling | Execution

type meter
(** A counter plus the bucket to charge; operators take a meter so they
    stay agnostic of what phase they run in. *)

val new_counter : ?sampling_budget:int -> unit -> counter
(** [sampling_budget] caps the sampling bucket (default unlimited); the
    first {!charge} pushing past it raises {!Budget_exceeded} with reason
    [Sampled_rows]. *)

val reset : counter -> unit
val total : counter -> int
val meter : counter -> bucket -> meter
val sampling_meter : counter -> meter
val execution_meter : counter -> meter

val charge : meter option -> int -> unit
(** [charge m units] adds work; [None] meters are free (tests that don't
    care about accounting). Raises {!Budget_exceeded} when the sampling
    bucket exceeds its budget. *)

val read : counter -> bucket -> int

open Rox_util
open Rox_shred

(* All loops below keep the invariant that candidates are probed through
   galloping searches from a monotonically advancing cursor, so total probe
   cost is O(|consumed C| + |touched S| + |R|) — the Table 1 costs. *)

let iter_pairs ?meter ~doc ~axis ~context ~candidates f =
  let context = Column.read context and candidates = Column.read candidates in
  let ncand = Array.length candidates in
  (* Emit all candidates within [lo, hi] satisfying [pred]. *)
  let emit_range cidx c lo hi pred =
    if hi >= lo then begin
      let start = Bin_search.lower_bound candidates lo in
      let i = ref start in
      while !i < ncand && candidates.(!i) <= hi do
        let s = candidates.(!i) in
        Cost.charge meter 1;
        if pred s then f cidx c s;
        incr i
      done
    end
  in
  let per_context work =
    Array.iteri
      (fun cidx c ->
        Cost.charge meter 1;
        work cidx c)
      context
  in
  match axis with
  | Axis.Descendant ->
    per_context (fun cidx c -> emit_range cidx c (c + 1) (c + Doc.size doc c) (fun _ -> true))
  | Axis.Desc_or_self ->
    per_context (fun cidx c -> emit_range cidx c c (c + Doc.size doc c) (fun _ -> true))
  | Axis.Child ->
    per_context (fun cidx c ->
        emit_range cidx c (c + 1) (c + Doc.size doc c) (fun s ->
            Doc.parent doc s = c
            && (match Doc.kind doc s with Nodekind.Attr -> false | _ -> true)))
  | Axis.Attribute ->
    per_context (fun cidx c ->
        emit_range cidx c (c + 1) (c + Doc.size doc c) (fun s ->
            Doc.parent doc s = c
            && (match Doc.kind doc s with Nodekind.Attr -> true | _ -> false)))
  | Axis.Self -> per_context (fun cidx c -> emit_range cidx c c c (fun _ -> true))
  | Axis.Parent ->
    per_context (fun cidx c ->
        let p = Doc.parent doc c in
        if p >= 0 then begin
          Cost.charge meter 1;
          if Bin_search.mem candidates p then f cidx c p
        end)
  | Axis.Ancestor ->
    per_context (fun cidx c ->
        let p = ref (Doc.parent doc c) in
        while !p >= 0 do
          Cost.charge meter 1;
          if Bin_search.mem candidates !p then f cidx c !p;
          p := Doc.parent doc !p
        done)
  | Axis.Anc_or_self ->
    per_context (fun cidx c ->
        let p = ref c in
        while !p >= 0 do
          Cost.charge meter 1;
          if Bin_search.mem candidates !p then f cidx c !p;
          p := Doc.parent doc !p
        done)
  | Axis.Following ->
    per_context (fun cidx c ->
        let bound = c + Doc.size doc c in
        let start = Bin_search.lower_bound candidates (bound + 1) in
        for i = start to ncand - 1 do
          Cost.charge meter 1;
          f cidx c candidates.(i)
        done)
  | Axis.Preceding ->
    per_context (fun cidx c ->
        let stop = Bin_search.lower_bound candidates c in
        for i = 0 to stop - 1 do
          let s = candidates.(i) in
          Cost.charge meter 1;
          if s + Doc.size doc s < c then f cidx c s
        done)
  | Axis.Following_sibling ->
    (* Attributes have no siblings and are never siblings (XPath). *)
    let is_attr n = match Doc.kind doc n with Nodekind.Attr -> true | _ -> false in
    per_context (fun cidx c ->
        let p = Doc.parent doc c in
        if p >= 0 && not (is_attr c) then
          emit_range cidx c (c + Doc.size doc c + 1) (p + Doc.size doc p) (fun s ->
              Doc.parent doc s = p && not (is_attr s)))
  | Axis.Preceding_sibling ->
    let is_attr n = match Doc.kind doc n with Nodekind.Attr -> true | _ -> false in
    per_context (fun cidx c ->
        let p = Doc.parent doc c in
        if p >= 0 && not (is_attr c) then
          emit_range cidx c (p + 1) (c - 1) (fun s ->
              Doc.parent doc s = p && not (is_attr s)))

(* Context pruning for containment axes: a context inside the subtree of a
   previous context contributes no new descendants. *)
let prune_covered doc context =
  let out = Int_vec.create ~capacity:(Column.length context) () in
  let covered_until = ref (-1) in
  Column.iter
    (fun c ->
      if c > !covered_until then begin
        Int_vec.push out c;
        covered_until := c + Doc.size doc c
      end)
    context;
  Column.unsafe_of_array ~sorted:true (Int_vec.to_array out)

let join_impl ?meter ~doc ~axis ~context candidates =
  match axis with
  | Axis.Descendant | Axis.Desc_or_self ->
    (* Pruned contexts have disjoint subtrees, so ranges never overlap and
       the concatenated output is already sorted and duplicate-free. *)
    let pruned = prune_covered doc context in
    let out = Int_vec.create () in
    iter_pairs ?meter ~doc ~axis ~context:pruned ~candidates (fun _ _ s -> Int_vec.push out s);
    Column.unsafe_of_array ~sorted:true (Int_vec.to_array out)
  | Axis.Following ->
    (* Union over contexts is the suffix after the earliest subtree end —
       a zero-copy slice of the candidate column. *)
    if Column.is_empty context then Column.empty
    else begin
      let bound =
        Column.fold_left (fun acc c -> min acc (c + Doc.size doc c)) max_int context
      in
      let cand = Column.read candidates in
      let start = Bin_search.lower_bound cand (bound + 1) in
      let out =
        Column.slice candidates ~pos:start ~len:(Column.length candidates - start)
      in
      Cost.charge meter (Column.length context + Column.length out);
      out
    end
  | Axis.Preceding ->
    (* Union over contexts = preceding of the last context. *)
    if Column.is_empty context then Column.empty
    else begin
      let c = Column.get context (Column.length context - 1) in
      let out = Int_vec.create () in
      iter_pairs ?meter ~doc ~axis
        ~context:(Column.unsafe_of_array ~sorted:true [| c |])
        ~candidates
        (fun _ _ s -> Int_vec.push out s);
      Column.unsafe_of_array ~sorted:true (Int_vec.to_array out)
    end
  | Axis.Child | Axis.Attribute | Axis.Self ->
    (* Distinct contexts yield distinct result ranges per context, but a
       candidate can be reached from only one parent, so output is already
       duplicate-free; context order keeps it sorted for Self, while Child /
       Attribute ranges of successive contexts can interleave with nesting —
       dedup-sort to be safe. *)
    let out = Int_vec.create () in
    iter_pairs ?meter ~doc ~axis ~context ~candidates (fun _ _ s -> Int_vec.push out s);
    Column.unsafe_of_array ~sorted:true (Int_vec.sorted_dedup out)
  | Axis.Parent | Axis.Ancestor | Axis.Anc_or_self | Axis.Following_sibling
  | Axis.Preceding_sibling ->
    let out = Int_vec.create () in
    iter_pairs ?meter ~doc ~axis ~context ~candidates (fun _ _ s -> Int_vec.push out s);
    Column.unsafe_of_array ~sorted:true (Int_vec.sorted_dedup out)

let join ?sanitize ?meter ~doc ~axis ~context candidates =
  let sanitize =
    match sanitize with Some s -> s | None -> Sanitize.default_mode ()
  in
  if not sanitize then join_impl ?meter ~doc ~axis ~context candidates
  else begin
    let op = Printf.sprintf "Staircase.join(%s)" (Axis.to_string axis) in
    Sanitize.check_column_flag ~op ~what:"context" context;
    Sanitize.check_column_flag ~op ~what:"candidates" candidates;
    Sanitize.check_sorted_dedup ~op ~what:"context" (Column.read context);
    Sanitize.check_sorted_dedup ~op ~what:"candidates" (Column.read candidates);
    let out, charged =
      Sanitize.observed meter (fun m -> join_impl ~meter:m ~doc ~axis ~context candidates)
    in
    Sanitize.check_column_flag ~op ~what:"output" out;
    Sanitize.check_sorted_dedup ~op ~what:"output" (Column.read out);
    Sanitize.check_subset ~op ~what:"output" ~domain:(Column.read candidates)
      (Column.read out);
    (* Table 1's |C| + |S| + |R| holds as an exact bound only for the
       pruned containment axes and Following; the sibling/ancestor scans
       pay per ancestor step / per subtree member instead. *)
    (match axis with
     | Axis.Descendant | Axis.Desc_or_self | Axis.Following ->
       Sanitize.check_cost ~op ~charged
         ~bound:(Column.length context + Column.length candidates + Column.length out)
     | _ -> ());
    out
  end

let count ?meter ~doc ~axis ~context candidates =
  let n = ref 0 in
  iter_pairs ?meter ~doc ~axis ~context ~candidates (fun _ _ _ -> incr n);
  !n

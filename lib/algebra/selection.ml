open Rox_util
open Rox_shred

type t =
  | Eq of string
  | Lt of float
  | Le of float
  | Gt of float
  | Ge of float
  | Between of float * float

let to_string = function
  | Eq s -> Printf.sprintf "= %S" s
  | Lt f -> Printf.sprintf "< %g" f
  | Le f -> Printf.sprintf "<= %g" f
  | Gt f -> Printf.sprintf "> %g" f
  | Ge f -> Printf.sprintf ">= %g" f
  | Between (lo, hi) -> Printf.sprintf "in [%g, %g]" lo hi

let matches doc pred node =
  match pred with
  | Eq s -> String.equal (Doc.value doc node) s
  | Lt _ | Le _ | Gt _ | Ge _ | Between _ ->
    (match float_of_string_opt (Doc.value doc node) with
     | None -> false
     | Some v ->
       (match pred with
        | Lt bound -> v < bound
        | Le bound -> v <= bound
        | Gt bound -> v > bound
        | Ge bound -> v >= bound
        | Between (lo, hi) -> lo <= v && v <= hi
        | Eq _ -> assert false))

let filter ?meter ~doc ~pred nodes =
  let out = Int_vec.create () in
  Column.iter
    (fun n ->
      Cost.charge meter 1;
      if matches doc pred n then Int_vec.push out n)
    nodes;
  (* A filtered subsequence of a strictly increasing column stays so. *)
  Column.unsafe_of_array ~sorted:(Column.sorted nodes) (Int_vec.to_array out)

(** Value-based equi-joins between text / attribute node sequences.

    XQuery general comparisons such as [$a/@person = $b/@id] or
    [$a1/text() = $a2/text()] become relational equi-join edges in the Join
    Graph. Three physical algorithms, per Table 1:

    - {!iter_index_nl}: nested-loop with an inner *value-index* lookup —
      the zero-investment algorithm ROX samples with (Section 2.3);
    - {!iter_merge}: merge join over value-ordered inputs;
    - {!iter_hash}: classic build-probe hash join (build side = inner) —
      *not* zero-investment, used only for full edge execution.

    All variants enumerate (outer, inner) node pairs through a callback
    [f cidx outer_node inner_node], with {!iter_index_nl} guaranteed to be
    grouped by ascending outer index (cut-off compatible). *)

open Rox_storage

type inner_side =
  | Inner_text
  | Inner_attr of int  (** attribute name id *)

type inner_spec = {
  docref : Engine.docref;
  side : inner_side;
  restrict : Rox_util.Column.t option;
      (** When the inner vertex already has a materialized (reduced) table,
          index hits are filtered against it. *)
}

val iter_index_nl :
  ?meter:Cost.meter ->
  outer_doc:Rox_shred.Doc.t ->
  outer:Rox_util.Column.t ->
  inner:inner_spec ->
  (int -> int -> int -> unit) ->
  unit

val iter_hash :
  ?meter:Cost.meter ->
  outer_doc:Rox_shred.Doc.t ->
  outer:Rox_util.Column.t ->
  inner_doc:Rox_shred.Doc.t ->
  inner:Rox_util.Column.t ->
  (int -> int -> int -> unit) ->
  unit

val iter_merge :
  ?meter:Cost.meter ->
  outer_doc:Rox_shred.Doc.t ->
  outer:Rox_util.Column.t ->
  inner_doc:Rox_shred.Doc.t ->
  inner:Rox_util.Column.t ->
  (int -> int -> int -> unit) ->
  unit
(** Pairs are emitted in value order, not outer order — full execution
    only. *)

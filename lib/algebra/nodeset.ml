open Rox_util

(* Direct callers (tests, ad-hoc tools) may omit [sanitize] and inherit the
   process default; session execution paths always thread the session's
   mode — the RX307 confinement trap in [Sanitize.default_mode] catches any
   path that forgets. *)
let resolve = function Some s -> s | None -> Sanitize.default_mode ()

let checked ?sanitize ~op a b out =
  if resolve sanitize then begin
    Sanitize.check_sorted_dedup ~op ~what:"left input" a;
    Sanitize.check_sorted_dedup ~op ~what:"right input" b;
    Sanitize.check_sorted_dedup ~op ~what:"output" out
  end;
  out

let intersect ?sanitize a b =
  let out = Int_vec.create ~capacity:(min (Array.length a) (Array.length b) + 1) () in
  let i = ref 0 and j = ref 0 in
  while !i < Array.length a && !j < Array.length b do
    let x = a.(!i) and y = b.(!j) in
    if x = y then begin
      Int_vec.push out x;
      incr i;
      incr j
    end
    else if x < y then incr i
    else incr j
  done;
  checked ?sanitize ~op:"Nodeset.intersect" a b (Int_vec.to_array out)

let union ?sanitize a b =
  let out = Int_vec.create ~capacity:(Array.length a + Array.length b) () in
  let i = ref 0 and j = ref 0 in
  while !i < Array.length a && !j < Array.length b do
    let x = a.(!i) and y = b.(!j) in
    if x = y then begin
      Int_vec.push out x;
      incr i;
      incr j
    end
    else if x < y then begin
      Int_vec.push out x;
      incr i
    end
    else begin
      Int_vec.push out y;
      incr j
    end
  done;
  while !i < Array.length a do
    Int_vec.push out a.(!i);
    incr i
  done;
  while !j < Array.length b do
    Int_vec.push out b.(!j);
    incr j
  done;
  checked ?sanitize ~op:"Nodeset.union" a b (Int_vec.to_array out)

let difference ?sanitize a b =
  let out = Int_vec.create () in
  let i = ref 0 and j = ref 0 in
  while !i < Array.length a do
    if !j >= Array.length b then begin
      Int_vec.push out a.(!i);
      incr i
    end
    else begin
      let x = a.(!i) and y = b.(!j) in
      if x = y then begin
        incr i;
        incr j
      end
      else if x < y then begin
        Int_vec.push out x;
        incr i
      end
      else incr j
    end
  done;
  checked ?sanitize ~op:"Nodeset.difference" a b (Int_vec.to_array out)

let mem = Bin_search.mem

let is_sorted_dedup a =
  let rec check i = i >= Array.length a || (a.(i - 1) < a.(i) && check (i + 1)) in
  Array.length a = 0 || check 1

let is_sorted a =
  let rec check i = i >= Array.length a || (a.(i - 1) <= a.(i) && check (i + 1)) in
  Array.length a = 0 || check 1

let of_unsorted ?sanitize a =
  let out =
    if is_sorted a then begin
      (* Already in document order (duplicates allowed): dedup linearly
         without paying for the sort. *)
      let n = Array.length a in
      if n = 0 then [||]
      else begin
        let out = Int_vec.create ~capacity:n () in
        Int_vec.push out a.(0);
        for i = 1 to n - 1 do
          if a.(i) <> a.(i - 1) then Int_vec.push out a.(i)
        done;
        Int_vec.to_array out
      end
    end
    else Int_vec.sorted_dedup (Int_vec.of_array a)
  in
  if resolve sanitize then
    Sanitize.check_sorted_dedup ~op:"Nodeset.of_unsorted" ~what:"output" out;
  out

(* Monomorphic length+element loop: no polymorphic [=] on int arrays. *)
let equal (a : int array) (b : int array) =
  Array.length a = Array.length b
  &&
  let rec go i = i >= Array.length a || (a.(i) = b.(i) && go (i + 1)) in
  go 0

type budget_reason = Deadline | Sampled_rows

exception Budget_exceeded of { reason : budget_reason; spent : int; budget : int }

let budget_reason_label = function
  | Deadline -> "wall-clock deadline"
  | Sampled_rows -> "sampled-rows budget"

let budget_unit = function
  | Deadline -> "ms"
  | Sampled_rows -> "work units"

let budget_message = function
  | Budget_exceeded { reason; spent; budget } ->
    let unit = budget_unit reason in
    Some
      (Printf.sprintf "%s exceeded: spent %d %s, budget %d %s"
         (budget_reason_label reason) spent unit budget unit)
  | _ -> None

type counter = {
  mutable sampling : int;
  mutable execution : int;
  sampling_budget : int;  (* [max_int] = unlimited *)
}

type bucket = Sampling | Execution
type meter = { counter : counter; bucket : bucket }

let new_counter ?(sampling_budget = max_int) () =
  if sampling_budget < 0 then
    invalid_arg (Printf.sprintf "Cost.new_counter: negative budget %d" sampling_budget);
  { sampling = 0; execution = 0; sampling_budget }

let reset c =
  c.sampling <- 0;
  c.execution <- 0

let total c = c.sampling + c.execution
let meter counter bucket = { counter; bucket }
let sampling_meter counter = { counter; bucket = Sampling }
let execution_meter counter = { counter; bucket = Execution }

let charge m units =
  match m with
  | None -> ()
  | Some { counter; bucket } ->
    (match bucket with
     | Sampling ->
       counter.sampling <- counter.sampling + units;
       if counter.sampling > counter.sampling_budget then
         raise
           (Budget_exceeded
              { reason = Sampled_rows;
                spent = counter.sampling;
                budget = counter.sampling_budget })
     | Execution -> counter.execution <- counter.execution + units)

let read c = function
  | Sampling -> c.sampling
  | Execution -> c.execution

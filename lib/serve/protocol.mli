(** The [rox serve] wire protocol: length-prefixed text frames.

    Every message — request or response — is one *frame*:

    {v
    frame    ::= length "\n" payload
    length   ::= 1..8 ASCII decimal digits (byte count of payload)
    payload  ::= head-line [ "\n" body ]
    v}

    Request head lines ([body] only for QUERY, where it is the XQuery
    text):

    {v
    QUERY [seed=N] [tau=N] [deadline_ms=N] [max_sampled_rows=N]
          [max_rows=N] [limit=N] [client_id=ID]
    PING
    STATS
    METRICS
    RECENT n=N
    TRACE id=N
    QUIT
    v}

    Response payloads:

    {v
    OK n=N sampling=N execution=N "\n" id id id ...
    PONG
    STATS k=v k=v ...
    METRICS "\n" prometheus-text
    RECENT n=N "\n" jsonl-line ... (one per record, newest first)
    TRACE id=N "\n" chrome-trace-json
    BYE
    ERR kind message...
    v}

    where [kind] is one of [busy] (admission queue full), [deadline] /
    [sampled_rows] (a per-request budget ran out — the structured form of
    the CLI's exit-2 budget abort), [max_rows] (materialization guard),
    [bad_query] (parse/compile rejection), [proto] (malformed frame),
    [internal] and [not_found] (TRACE for an id the flight recorder has
    not retained — never retained, or already evicted). A budget abort
    is an *answer*, never a dropped connection: the server keeps serving
    the connection after an ERR.

    Parsing is total: every malformed input returns [Error]/[`Corrupt],
    never raises. The incremental {!decoder} handles truncated frames
    (await more bytes), oversized declared lengths and junk where the
    length header should be (both [`Corrupt] — the stream cannot be
    resynchronized, so the server answers [ERR proto] and closes). *)

type query = {
  text : string;                  (** the XQuery source (QUERY body) *)
  seed : int;                     (** session RNG seed (default 42) *)
  tau : int;                      (** sample size τ (default 100) *)
  deadline_ms : int option;       (** wall-clock budget, queue wait included *)
  max_sampled_rows : int option;  (** sampling-work budget *)
  max_rows : int option;          (** per-component materialization guard *)
  limit : int option;             (** cap on answer ids returned (None = all) *)
  client_id : string;             (** tenant tag (default ["local"]) *)
}

val query :
  ?seed:int -> ?tau:int -> ?deadline_ms:int -> ?max_sampled_rows:int ->
  ?max_rows:int -> ?limit:int -> ?client_id:string -> string -> query
(** A QUERY request with protocol defaults for everything omitted. *)

type request =
  | Query of query
  | Ping
  | Stats
  | Metrics     (** scrape: process aggregate + recorder/tenant series *)
  | Recent of int  (** the flight recorder's n newest request records *)
  | Trace_get of int  (** a retained trace by id *)
  | Quit

type err_kind =
  | Busy | Deadline | Sampled_rows | Max_rows | Bad_query | Proto | Internal
  | Unknown_id  (** wire label [not_found]: TRACE id not retained *)

val err_kind_label : err_kind -> string
val err_kind_of_label : string -> err_kind option

type response =
  | Answer of { ids : int array; total : int; sampling : int; execution : int }
      (** [total] is the full answer cardinality; [ids] may be a
          [limit]-truncated prefix of it. *)
  | Pong
  | Stats_reply of (string * string) list
  | Metrics_reply of string
      (** Prometheus text exposition (the whole body, verbatim) *)
  | Recent_reply of string list
      (** one JSONL request record per line, newest first *)
  | Trace_reply of int * string
      (** Chrome trace-event JSON for one retained trace *)
  | Bye
  | Err of err_kind * string

val default_max_frame : int
(** 1 MiB. *)

val render_request : request -> string
(** The unframed payload ({!frame} it before writing). *)

val parse_request : string -> (request, string) result
(** Reject unknown verbs, unknown or malformed [k=v] arguments, negative
    numbers, empty QUERY bodies, and [client_id]s outside
    [[A-Za-z0-9_.-]+]. *)

val render_response : response -> string
val parse_response : string -> (response, string) result

val frame : string -> string
(** Prepend the length header. *)

type decoder

val decoder : ?max_frame:int -> unit -> decoder
val feed : decoder -> string -> unit

val next : decoder -> [ `Frame of string | `Awaiting | `Corrupt of string ]
(** Extract the next complete frame. [`Awaiting] = feed more bytes;
    [`Corrupt] is sticky — the stream is unrecoverable past a bad length
    header or an oversized frame. *)

val write_frame : Unix.file_descr -> string -> unit
(** Frame the payload and write it fully. *)

val read_frame :
  Unix.file_descr -> decoder -> [ `Frame of string | `Eof | `Corrupt of string ]
(** Blocking-read until the decoder yields. [`Eof] on a clean close;
    EOF mid-frame (a truncated frame) is [`Corrupt]. *)

(** The serving front-end: bounded admission, a worker-domain pool, and
    fingerprint coalescing over one shared read-side engine.

    One server owns:

    - a *bounded admission queue* — {!submit_async} returns [`Rejected]
      instead of queueing when the queue is at capacity, and the protocol
      layer turns that into [ERR busy] (backpressure, never silent
      buffering);
    - a pool of long-lived *worker domains* that pop requests and run one
      fresh {!Rox_core.Session} each over the shared engine and the
      mutex-guarded cache store;
    - an *in-flight table* keyed by request fingerprint (query text hash,
      seed, τ, budgets, engine epoch — {e not} the tenant): a request whose
      fingerprint matches an in-flight execution attaches to it as a
      waiter instead of executing again. Under [ROX_SANITIZE=1] every
      coalesced answer is cross-checked against an independent execution;
      a mismatch is the RX602 audit signal.

    Connection handling is separate from execution: {!serve} accepts on a
    listening socket and runs {!handle_connection} on a thread per
    connection; those threads only parse frames and block in {!await} —
    all query work happens on the worker domains.

    Budget aborts are answers: a worker catching
    [Rox_algebra.Cost.Budget_exceeded] or [Rox_joingraph.Runtime.Blowup]
    completes the request with a structured [ERR deadline] /
    [ERR sampled_rows] / [ERR max_rows] reply — a served request never
    drops the connection the way the one-shot CLI exits with code 2.

    All shared state ([t]'s queue, in-flight table and audit counters) is
    guarded by one mutex and instrumented through {!Rox_util.Accesslog}
    when armed, so [rox racecheck] covers a served workload. *)

type config = {
  engine : Rox_storage.Engine.t;
  cache : Rox_cache.Store.t option;   (** shared across all workers *)
  workers : int;        (** worker domains; [0] = drive with {!drain_once} *)
  queue_capacity : int; (** admission bound (≥ 1) *)
  max_connections : int;
      (** concurrent-connection cap for {!serve} (≥ 1): admission control
          bounds queued {e queries}, this bounds handler {e threads} — an
          over-limit connection is answered one [ERR busy] frame (outside
          the request/response audit, since it answers the connection
          attempt rather than a parsed frame) and closed *)
  session : Rox_core.Session.config;
      (** base per-request session config; wire-level overrides (seed, τ,
          budgets, client_id) win field-by-field *)
  telemetry : bool;     (** per-request sinks + process aggregate *)
  max_frame : int;      (** protocol frame cap for {!handle_connection} *)
  parallel_parts : int;
      (** intra-query partition count (≥ 1): when > 1 the server owns one
          shared {!Rox_core.Pool} and lends it to every request session,
          so partitioned edge kernels and racing probes fan out without a
          per-request pool spawn. [1] (the default) serves strictly
          sequential sessions with no pool. *)
  recorder : bool;
      (** the flight recorder (default on): every submitted request —
          executed, coalesced, or rejected — leaves one bounded record;
          slow/errored/head-sampled span trees are retained by trace id
          (see {!Rox_telemetry.Recorder}) *)
  slow_ms : int option;  (** slow-log latency threshold override *)
  slow_log : string option;  (** slow-query JSONL path (off when [None]) *)
}

val config :
  ?cache:Rox_cache.Store.t -> ?workers:int -> ?queue_capacity:int ->
  ?max_connections:int -> ?session:Rox_core.Session.config ->
  ?telemetry:bool -> ?max_frame:int -> ?parallel_parts:int ->
  ?recorder:bool -> ?slow_ms:int -> ?slow_log:string ->
  Rox_storage.Engine.t -> config
(** Defaults: no cache, 2 workers, capacity 64, 256 connections, default
    session config, telemetry on, {!Protocol.default_max_frame},
    [parallel_parts = 1], recorder on, no slow log. *)

type t

val create : config -> t
(** Spawns the worker domains. The coalesced-answer cross-check arms from
    {!Rox_algebra.Sanitize.default_mode} at creation time. Also ignores
    [SIGPIPE] process-wide (once), so a client that disconnects before
    reading its reply surfaces as [EPIPE] on the write — an ordinary
    connection close — instead of killing the process. *)

type ticket

val submit_async : t -> Protocol.query -> [ `Ticket of ticket | `Rejected ]
(** Admit one request. [`Rejected] when the queue is full or the server
    is shutting down (the caller answers [ERR busy]). A fingerprint-equal
    in-flight request coalesces — it returns a ticket without consuming
    queue capacity. *)

val await : t -> ticket -> Protocol.response
(** Block until the ticket's request completes. On a coalesced ticket
    under sanitize mode, re-executes the request independently and counts
    an RX602 divergence if the answers differ (the coalesced answer is
    still returned). *)

val submit : t -> Protocol.query -> Protocol.response
(** {!submit_async} + {!await}; a full queue is [Err (Busy, _)]. *)

val drain_once : t -> bool
(** Synchronously process one queued request on the calling domain;
    [false] if the queue was empty. Lets tests run a [workers = 0] server
    deterministically. *)

val handle_connection : t -> Unix.file_descr -> unit
(** Serve one connection until QUIT, EOF or a corrupt frame; always
    closes [fd]. Every reply answers exactly one parsed frame (corrupt
    framing counts as a parsed frame and is answered [ERR proto]), which
    is what keeps the RX601 request/response audit sound. *)

val serve : t -> Unix.file_descr -> unit
(** Accept loop on a listening socket: one {!handle_connection} thread
    per connection, bounded by [config.max_connections]. Transient accept
    failures never stop the loop — [ECONNABORTED]/[ECONNRESET] retry
    immediately, [EMFILE]/[ENFILE] (and anything else unexpected) log to
    stderr and retry after a short backoff. Returns when the listening fd
    itself dies ([EBADF]/[EINVAL], e.g. closed or shut down by the owner)
    or {!shutdown} ran. *)

val queue_depth : t -> int

val stats_kvs : t -> (string * string) list
(** The STATS reply: process uptime ([uptime_ms], and [started_at] as
    wall-clock epoch seconds), the audit counters, queue depth, in-flight
    entries and their attached waiters ([inflight_waiters] — submitters
    plus coalesced clients), open/bounced connections ([connections] /
    [conn_rejected]), worker count, flight-recorder counters ([records],
    [records_dropped], [traces_retained] — present only with the recorder
    on), and per-tenant served counts as [tenant.<client_id>]. *)

val tenants : t -> (string * int) list
(** Per-tenant admitted-request counts, sorted by client_id. *)

val audit : t -> Rox_analysis.Serve_check.counts
(** Snapshot the audit counters ({!Rox_analysis.Serve_check.check}
    expects a quiescent snapshot — take it after {!shutdown}). *)

val self_check : t -> Rox_analysis.Diagnostic.t list
(** [Serve_check.check (audit t)]. *)

val metrics : t -> Rox_telemetry.Metrics.t
(** A merged snapshot: the server's own instruments (queue depth,
    admission rejects, coalesce hits, queue-wait and serve latency) plus
    the absorbed per-request session registries. *)

val aggregate : t -> Rox_telemetry.Aggregate.t
(** The process aggregate per-request sinks are absorbed into. *)

val recorder : t -> Rox_telemetry.Recorder.t option
(** The flight recorder ([None] when [config.recorder] is false). *)

val metrics_text : t -> string
(** The METRICS reply body: {!metrics} in Prometheus text exposition,
    followed by the recorder's own series (record/drop/retention
    counters, adaptive threshold, per-tenant request/error counters and
    latency histograms with escaped [tenant] labels). *)

val recent_lines : t -> int -> string list
(** The RECENT reply body: up to [n] newest request records as JSONL,
    one compact object per line ([[]] with the recorder off). *)

val trace_response : t -> int -> Protocol.response
(** The TRACE reply: [Trace_reply] carrying the retained trace exported
    as Chrome trace-event JSON, or [Err (Unknown_id, _)] when the id was
    never retained, already evicted, or the recorder is off. *)

val shutdown : t -> unit
(** Stop admitting, drain: workers finish every queued request before
    joining ([workers = 0] leftovers are failed as [ERR busy] and counted
    rejected, keeping the RX603 balance). Drained leftovers are still
    flight-recorded (as rejected), and the slow log is flushed and
    closed. Idempotent. *)

type query = {
  text : string;
  seed : int;
  tau : int;
  deadline_ms : int option;
  max_sampled_rows : int option;
  max_rows : int option;
  limit : int option;
  client_id : string;
}

let query ?(seed = 42) ?(tau = 100) ?deadline_ms ?max_sampled_rows ?max_rows
    ?limit ?(client_id = "local") text =
  { text; seed; tau; deadline_ms; max_sampled_rows; max_rows; limit; client_id }

type request =
  | Query of query
  | Ping
  | Stats
  | Metrics
  | Recent of int
  | Trace_get of int
  | Quit

type err_kind =
  | Busy | Deadline | Sampled_rows | Max_rows | Bad_query | Proto | Internal
  | Unknown_id

let err_kind_label = function
  | Busy -> "busy"
  | Deadline -> "deadline"
  | Sampled_rows -> "sampled_rows"
  | Max_rows -> "max_rows"
  | Bad_query -> "bad_query"
  | Proto -> "proto"
  | Internal -> "internal"
  | Unknown_id -> "not_found"

let err_kind_of_label = function
  | "busy" -> Some Busy
  | "deadline" -> Some Deadline
  | "sampled_rows" -> Some Sampled_rows
  | "max_rows" -> Some Max_rows
  | "bad_query" -> Some Bad_query
  | "proto" -> Some Proto
  | "internal" -> Some Internal
  | "not_found" -> Some Unknown_id
  | _ -> None

type response =
  | Answer of { ids : int array; total : int; sampling : int; execution : int }
  | Pong
  | Stats_reply of (string * string) list
  | Metrics_reply of string
  | Recent_reply of string list
  | Trace_reply of int * string
  | Bye
  | Err of err_kind * string

let default_max_frame = 1 lsl 20

(* ---- rendering ---------------------------------------------------------- *)

let valid_id s =
  s <> ""
  && String.for_all
       (function
         | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '.' | '-' -> true
         | _ -> false)
       s

let render_request req =
  match req with
  | Ping -> "PING"
  | Stats -> "STATS"
  | Metrics -> "METRICS"
  | Recent n -> Printf.sprintf "RECENT n=%d" n
  | Trace_get id -> Printf.sprintf "TRACE id=%d" id
  | Quit -> "QUIT"
  | Query q ->
    let b = Buffer.create (String.length q.text + 64) in
    Buffer.add_string b (Printf.sprintf "QUERY seed=%d tau=%d" q.seed q.tau);
    let opt name = function
      | None -> ()
      | Some v -> Buffer.add_string b (Printf.sprintf " %s=%d" name v)
    in
    opt "deadline_ms" q.deadline_ms;
    opt "max_sampled_rows" q.max_sampled_rows;
    opt "max_rows" q.max_rows;
    opt "limit" q.limit;
    if q.client_id <> "local" then
      Buffer.add_string b (Printf.sprintf " client_id=%s" q.client_id);
    Buffer.add_char b '\n';
    Buffer.add_string b q.text;
    Buffer.contents b

let render_response resp =
  match resp with
  | Pong -> "PONG"
  | Bye -> "BYE"
  | Stats_reply kvs ->
    String.concat " "
      ("STATS" :: List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) kvs)
  | Metrics_reply text -> "METRICS\n" ^ text
  | Recent_reply lines ->
    let b = Buffer.create 256 in
    Buffer.add_string b (Printf.sprintf "RECENT n=%d" (List.length lines));
    List.iter
      (fun line ->
        Buffer.add_char b '\n';
        Buffer.add_string b line)
      lines;
    Buffer.contents b
  | Trace_reply (id, json) -> Printf.sprintf "TRACE id=%d\n%s" id json
  | Err (kind, msg) -> Printf.sprintf "ERR %s %s" (err_kind_label kind) msg
  | Answer { ids; total; sampling; execution } ->
    let b = Buffer.create (16 + (8 * Array.length ids)) in
    Buffer.add_string b
      (Printf.sprintf "OK n=%d sampling=%d execution=%d\n" total sampling
         execution);
    Array.iteri
      (fun i id ->
        if i > 0 then Buffer.add_char b ' ';
        Buffer.add_string b (string_of_int id))
      ids;
    Buffer.contents b

(* ---- parsing ------------------------------------------------------------ *)

let ( let* ) = Result.bind

let split_head payload =
  match String.index_opt payload '\n' with
  | None -> (payload, None)
  | Some i ->
    ( String.sub payload 0 i,
      Some (String.sub payload (i + 1) (String.length payload - i - 1)) )

let words line =
  String.split_on_char ' ' line |> List.filter (fun w -> w <> "")

let kv w =
  match String.index_opt w '=' with
  | None -> Error (Printf.sprintf "expected key=value, got %S" w)
  | Some i ->
    Ok (String.sub w 0 i, String.sub w (i + 1) (String.length w - i - 1))

let nat name v =
  match int_of_string_opt v with
  | Some n when n >= 0 -> Ok n
  | _ -> Error (Printf.sprintf "%s wants a non-negative integer, got %S" name v)

let parse_query_args args body =
  let q = ref (query "") in
  let rec go = function
    | [] -> Ok ()
    | w :: rest ->
      let* k, v = kv w in
      let* () =
        match k with
        | "seed" ->
          let* n = nat k v in
          q := { !q with seed = n };
          Ok ()
        | "tau" ->
          let* n = nat k v in
          q := { !q with tau = n };
          Ok ()
        | "deadline_ms" ->
          let* n = nat k v in
          q := { !q with deadline_ms = Some n };
          Ok ()
        | "max_sampled_rows" ->
          let* n = nat k v in
          q := { !q with max_sampled_rows = Some n };
          Ok ()
        | "max_rows" ->
          let* n = nat k v in
          q := { !q with max_rows = Some n };
          Ok ()
        | "limit" ->
          let* n = nat k v in
          q := { !q with limit = Some n };
          Ok ()
        | "client_id" ->
          if valid_id v then begin
            q := { !q with client_id = v };
            Ok ()
          end
          else Error (Printf.sprintf "client_id %S outside [A-Za-z0-9_.-]+" v)
        | _ -> Error (Printf.sprintf "unknown QUERY argument %S" k)
      in
      go rest
  in
  let* () = go args in
  match body with
  | None | Some "" -> Error "QUERY needs a non-empty body (the query text)"
  | Some text -> Ok (Query { !q with text })

let one_nat verb key args =
  match args with
  | [ w ] ->
    let* k, v = kv w in
    if k <> key then Error (Printf.sprintf "%s wants %s=, got %s=" verb key k)
    else nat key v
  | _ -> Error (Printf.sprintf "%s wants exactly %s=N" verb key)

let parse_request payload =
  let head, body = split_head payload in
  match words head with
  | [ "PING" ] -> Ok Ping
  | [ "STATS" ] -> Ok Stats
  | [ "METRICS" ] -> Ok Metrics
  | "RECENT" :: args ->
    let* n = one_nat "RECENT" "n" args in
    Ok (Recent n)
  | "TRACE" :: args ->
    let* id = one_nat "TRACE" "id" args in
    Ok (Trace_get id)
  | [ "QUIT" ] -> Ok Quit
  | "QUERY" :: args -> parse_query_args args body
  | verb :: _ -> Error (Printf.sprintf "unknown request verb %S" verb)
  | [] -> Error "empty request"

let parse_response payload =
  let head, body = split_head payload in
  match words head with
  | [ "PONG" ] -> Ok Pong
  | [ "BYE" ] -> Ok Bye
  | "STATS" :: kvs ->
    let rec go acc = function
      | [] -> Ok (Stats_reply (List.rev acc))
      | w :: rest ->
        let* pair = kv w in
        go (pair :: acc) rest
    in
    go [] kvs
  | [ "METRICS" ] -> Ok (Metrics_reply (Option.value body ~default:""))
  | "RECENT" :: args ->
    let* n = one_nat "RECENT" "n" args in
    let lines =
      match body with
      | None | Some "" -> []
      | Some b -> String.split_on_char '\n' b
    in
    if List.length lines <> n then
      Error
        (Printf.sprintf "RECENT declared n=%d but carries %d line(s)" n
           (List.length lines))
    else Ok (Recent_reply lines)
  | "TRACE" :: args ->
    let* id = one_nat "TRACE" "id" args in
    (match body with
     | None | Some "" -> Error "TRACE needs a non-empty body (the trace JSON)"
     | Some json -> Ok (Trace_reply (id, json)))
  | "ERR" :: label :: msg -> (
    match err_kind_of_label label with
    | Some kind -> Ok (Err (kind, String.concat " " msg))
    | None -> Error (Printf.sprintf "unknown error kind %S" label))
  | "OK" :: args ->
    let* total, sampling, execution =
      match args with
      | [ a; b; c ] ->
        let field name w =
          let* k, v = kv w in
          if k <> name then Error (Printf.sprintf "expected %s=, got %s=" name k)
          else nat name v
        in
        let* n = field "n" a in
        let* s = field "sampling" b in
        let* e = field "execution" c in
        Ok (n, s, e)
      | _ -> Error "OK wants n= sampling= execution="
    in
    let* ids =
      match body with
      | None | Some "" -> Ok [||]
      | Some line ->
        let ws = words line in
        let rec go acc = function
          | [] -> Ok (Array.of_list (List.rev acc))
          | w :: rest -> (
            match int_of_string_opt w with
            | Some id -> go (id :: acc) rest
            | None -> Error (Printf.sprintf "non-integer id %S" w))
        in
        go [] ws
    in
    Ok (Answer { ids; total; sampling; execution })
  | verb :: _ -> Error (Printf.sprintf "unknown response verb %S" verb)
  | [] -> Error "empty response"

(* ---- framing ------------------------------------------------------------ *)

let frame payload = Printf.sprintf "%d\n%s" (String.length payload) payload

type state = Header | Body of int | Corrupt of string

type decoder = {
  max_frame : int;
  buf : Buffer.t;
  mutable pos : int;  (** consumed prefix of [buf] *)
  mutable state : state;
}

let decoder ?(max_frame = default_max_frame) () =
  { max_frame; buf = Buffer.create 256; pos = 0; state = Header }

let feed d bytes = Buffer.add_string d.buf bytes

let pending d = Buffer.length d.buf - d.pos

(* Drop the consumed prefix once it dominates the buffer, so long-lived
   connections don't grow it without bound. *)
let compact d =
  if d.pos > 4096 && d.pos > Buffer.length d.buf / 2 then begin
    let rest = Buffer.sub d.buf d.pos (pending d) in
    Buffer.clear d.buf;
    Buffer.add_string d.buf rest;
    d.pos <- 0
  end

let next d =
  match d.state with
  | Corrupt msg -> `Corrupt msg
  | Body n when pending d >= n ->
    let payload = Buffer.sub d.buf d.pos n in
    d.pos <- d.pos + n;
    d.state <- Header;
    compact d;
    `Frame payload
  | Body _ -> `Awaiting
  | Header -> (
    let contents = Buffer.contents d.buf in
    match String.index_from_opt contents d.pos '\n' with
    | None ->
      if pending d > 9 then begin
        (* More bytes than the longest legal header and still no newline. *)
        d.state <- Corrupt "length header too long";
        `Corrupt "length header too long"
      end
      else `Awaiting
    | Some nl ->
      let header = String.sub contents d.pos (nl - d.pos) in
      let corrupt msg =
        d.state <- Corrupt msg;
        `Corrupt msg
      in
      if header = "" then corrupt "empty length header"
      else if not (String.for_all (function '0' .. '9' -> true | _ -> false) header)
      then corrupt (Printf.sprintf "junk length header %S" header)
      else if String.length header > 8 then corrupt "length header too long"
      else
        let n = int_of_string header in
        if n > d.max_frame then
          corrupt (Printf.sprintf "frame of %d bytes exceeds limit %d" n d.max_frame)
        else begin
          d.pos <- nl + 1;
          d.state <- Body n;
          (* Recurse at most once: state is now [Body]. *)
          match d.state with
          | Body m when pending d >= m ->
            let payload = Buffer.sub d.buf d.pos m in
            d.pos <- d.pos + m;
            d.state <- Header;
            compact d;
            `Frame payload
          | _ -> `Awaiting
        end)

(* ---- blocking fd helpers ------------------------------------------------ *)

let write_frame fd payload =
  let s = frame payload in
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    match Unix.write fd b !off (len - !off) with
    | 0 -> raise End_of_file
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let read_frame fd d =
  let chunk = Bytes.create 4096 in
  let rec go () =
    match next d with
    | `Frame _ as f -> f
    | `Corrupt _ as c -> c
    | `Awaiting -> (
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> if pending d = 0 then `Eof else `Corrupt "eof mid-frame"
      | n ->
        feed d (Bytes.sub_string chunk 0 n);
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

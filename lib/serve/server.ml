module Session = Rox_core.Session
module Optimizer = Rox_core.Optimizer
module Compile = Rox_xquery.Compile
module Cost = Rox_algebra.Cost
module Sanitize = Rox_algebra.Sanitize
module Engine = Rox_storage.Engine
module Fingerprint = Rox_cache.Fingerprint
module Accesslog = Rox_util.Accesslog
module Sink = Rox_telemetry.Sink
module Tm = Rox_telemetry.Metrics
module Aggregate = Rox_telemetry.Aggregate
module Clock = Rox_telemetry.Clock
module Export = Rox_telemetry.Export
module Recorder = Rox_telemetry.Recorder
module Serve_check = Rox_analysis.Serve_check
module Diagnostic = Rox_analysis.Diagnostic

type config = {
  engine : Engine.t;
  cache : Rox_cache.Store.t option;
  workers : int;
  queue_capacity : int;
  max_connections : int;
  session : Session.config;
  telemetry : bool;
  max_frame : int;
  parallel_parts : int;
  recorder : bool;
  slow_ms : int option;
  slow_log : string option;
}

let config ?cache ?(workers = 2) ?(queue_capacity = 64)
    ?(max_connections = 256) ?session ?(telemetry = true)
    ?(max_frame = Protocol.default_max_frame) ?(parallel_parts = 1)
    ?(recorder = true) ?slow_ms ?slow_log engine =
  let session =
    match session with Some s -> s | None -> Session.default_config ()
  in
  if workers < 0 then invalid_arg "Server.config: workers < 0";
  if queue_capacity < 1 then invalid_arg "Server.config: queue_capacity < 1";
  if max_connections < 1 then invalid_arg "Server.config: max_connections < 1";
  if parallel_parts < 1 then invalid_arg "Server.config: parallel_parts < 1";
  (match slow_ms with
   | Some n when n < 0 -> invalid_arg "Server.config: slow_ms < 0"
   | _ -> ());
  {
    engine;
    cache;
    workers;
    queue_capacity;
    max_connections;
    session;
    telemetry;
    max_frame;
    parallel_parts;
    recorder;
    slow_ms;
    slow_log;
  }

(* A client that disconnects before reading its reply turns our write into
   a SIGPIPE, whose default disposition kills the whole process — every
   tenant, every worker. Ignore it once, process-wide, and let the write's
   EPIPE surface as an ordinary connection close. *)
let ignore_sigpipe =
  lazy (if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore)

type pending = {
  key : Fingerprint.t;
  query : Protocol.query;
  trace_id : int;  (* flight-recorder id (0 when the recorder is off) *)
  submitted_ns : int64;
  done_c : Condition.t;
  mutable outcome : Protocol.response option;
  mutable waiters : int;
}

(* [tid]/[t0]/[tq] are the *waiter's* flight-record identity: a
   coalesced request rides the entry's execution but is its own record —
   its own trace id, submit time and query (the coalescing key excludes
   the tenant tag, so the waiter's client_id can differ from the
   executing entry's). *)
type ticket = {
  entry : pending;
  coalesced : bool;
  tid : int;
  t0 : int64;
  tq : Protocol.query;
}

type t = {
  cfg : config;
  mutex : Mutex.t;
  work : Condition.t;               (* signalled on push and on shutdown *)
  queue : pending Queue.t;
  inflight : (Fingerprint.t, pending) Hashtbl.t;
  (* audit counters — the Serve_check.counts source of truth *)
  mutable requests : int;
  mutable responses : int;
  mutable submitted : int;
  mutable executed : int;
  mutable coalesced : int;
  mutable rejected : int;
  mutable divergence : int;
  (* connection accounting — bounds the thread-per-connection pool *)
  mutable conns : int;
  mutable conn_rejected : int;
  tenants : (string, int) Hashtbl.t;
  metrics : Tm.t;                   (* server-level instruments, mutex-guarded *)
  aggregate : Aggregate.t;          (* absorbed per-request session sinks *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  (* One intra-query pool shared by all request sessions ([None] when
     parallel_parts = 1): Pool.run serializes concurrent batches, so
     several worker domains can route partition tasks through it safely. *)
  pool : Rox_core.Pool.t option;
  sanitize_coalesce : bool;
  (* The flight recorder: always-on request records, tail-sampled trace
     retention, slow log. Its own per-domain slots and small mutexes —
     never touched while t.mutex is held. *)
  recorder : Recorder.t option;
  started_ns : int64;   (* monotonic, for uptime_ms *)
  started_at : float;   (* wall clock (epoch seconds), for STATS *)
  (* Accesslog ids; -1 (no-op) when created disarmed *)
  al_lock : int;
  al_queue : int;
  al_inflight : int;
  al_counts : int;
  hb_spawn : int;
  hb_done : int;
}

(* Every mutation of [t]'s shared state goes through [locked]: the one
   mutex, with the Accesslog critical-section bracket inside it so the
   recorded acquisition order is the real one. Never wait on a condition
   inside the bracket — waiting releases the real mutex while the bracket
   would still claim it. *)
let locked t f =
  Mutex.protect t.mutex (fun () -> Accesslog.with_lock t.al_lock f)

let set_depth_locked t =
  Tm.set t.metrics.Tm.queue_depth (float_of_int (Queue.length t.queue))

let bump_tenant t client_id =
  let n = try Hashtbl.find t.tenants client_id with Not_found -> 0 in
  Hashtbl.replace t.tenants client_id (n + 1)

(* The coalescing identity: everything that determines the *answer bytes*
   — query text, RNG seed, τ, every budget, the reply limit, and the
   engine epoch — and nothing that doesn't (the tenant tag). Two requests
   from different tenants with equal fingerprints share one execution. *)
let coalesce_key t (q : Protocol.query) =
  let opt = function None -> "-" | Some n -> string_of_int n in
  Fingerprint.make ~epoch:(Engine.epoch t.cfg.engine)
    [
      "serve";
      Digest.to_hex (Digest.string q.Protocol.text);
      string_of_int q.Protocol.seed;
      string_of_int q.Protocol.tau;
      opt q.Protocol.deadline_ms;
      opt q.Protocol.max_sampled_rows;
      opt q.Protocol.max_rows;
      opt q.Protocol.limit;
    ]

(* ---- execution ---------------------------------------------------------- *)

(* What one served execution hands back beyond the wire response: the
   chosen join order (for the record's plan summary), the request's sink
   (for tail-sampled trace retention and cache counters), and the
   deterministic budget spend — populated even when the run aborted. *)
type exec = {
  resp : Protocol.response;
  plan : int list;
  sink : Sink.t;
  sampling : int;
  execution : int;
}

(* One served execution: a fresh single-domain session over the shared
   engine/cache, wire-level overrides winning over the base config. Every
   failure mode maps to a structured ERR — a budget abort is an answer. *)
let run_query t (q : Protocol.query) ~deadline_ms ~absorb =
  (* The recorder needs spans even when the aggregate-telemetry flag is
     off: tail sampling decides after the fact whether this request's
     tree was worth keeping, so every request runs with a live sink. *)
  let sink =
    if t.cfg.telemetry || t.recorder <> None then Sink.create ~enabled:true ()
    else Sink.null ()
  in
  let base = t.cfg.session in
  let budgets =
    {
      Session.max_rows =
        Option.value q.Protocol.max_rows
          ~default:base.Session.budgets.Session.max_rows;
      deadline_ms;
      max_sampled_rows =
        (match q.Protocol.max_sampled_rows with
        | Some _ as s -> s
        | None -> base.Session.budgets.Session.max_sampled_rows);
    }
  in
  let config =
    {
      base with
      Session.seed = q.Protocol.seed;
      tau = q.Protocol.tau;
      client_id = q.Protocol.client_id;
      budgets;
    }
  in
  let session =
    Session.create ~config ?cache:t.cfg.cache ~telemetry:sink ?pool:t.pool ()
  in
  let resp, plan =
    try
      let compiled =
        Compile.compile_string ~telemetry:sink t.cfg.engine q.Protocol.text
      in
      let ids, result = Optimizer.answer session compiled in
      let total = Array.length ids in
      let ids =
        match q.Protocol.limit with
        | Some l when l < total -> Array.sub ids 0 l
        | _ -> ids
      in
      ( Protocol.Answer
          {
            ids;
            total;
            sampling = Cost.read result.Optimizer.counter Cost.Sampling;
            execution = Cost.read result.Optimizer.counter Cost.Execution;
          },
        result.Optimizer.edge_order )
    with
    | Rox_xquery.Parser.Parse_error msg ->
      (Protocol.Err (Protocol.Bad_query, "parse error: " ^ msg), [])
    | Compile.Unsupported msg ->
      (Protocol.Err (Protocol.Bad_query, "unsupported: " ^ msg), [])
    | Compile.Rejected d ->
      (Protocol.Err (Protocol.Bad_query, Diagnostic.to_string d), [])
    | Cost.Budget_exceeded { reason; _ } as e ->
      let kind =
        match reason with
        | Cost.Deadline -> Protocol.Deadline
        | Cost.Sampled_rows -> Protocol.Sampled_rows
      in
      ( Protocol.Err
          (kind, Option.value (Cost.budget_message e) ~default:"budget exceeded"),
        [] )
    | Rox_joingraph.Runtime.Blowup { edge; rows; limit } ->
      ( Protocol.Err
          ( Protocol.Max_rows,
            Printf.sprintf "edge %d materialized %d rows over max_rows %d" edge
              rows limit ),
        [] )
    | exn -> (Protocol.Err (Protocol.Internal, Printexc.to_string exn), [])
  in
  (* Runs on the worker's own domain, so the absorb lands in that
     domain's Aggregate slot: per-request sinks batch into the worker's
     local registry without ever contending with other workers. *)
  if absorb && t.cfg.telemetry then Aggregate.absorb t.aggregate (Sink.metrics sink);
  {
    resp;
    plan;
    sink;
    (* The session counter keeps counting through an abort, so the
       record sees the budget spend even when the answer is an ERR. *)
    sampling = Cost.read (Session.counter session) Cost.Sampling;
    execution = Cost.read (Session.counter session) Cost.Execution;
  }

(* ---- flight records ------------------------------------------------------ *)

let fp_digest (q : Protocol.query) =
  String.sub (Digest.to_hex (Digest.string q.Protocol.text)) 0 12

let status_of_resp = function
  | Protocol.Err (kind, _) -> Protocol.err_kind_label kind
  | _ -> "ok"

(* One flight record per submitted request — executed entries carry their
   execution's plan/spend/span surface, coalesced and rejected ones only
   their admission outcome, so the recorder's record count reconciles
   with the RX601-603 audit (RX701). Never called with t.mutex held:
   observe takes the recorder's own (leaf) mutexes and may write the
   slow log. *)
let record_request t ~trace_id ~(q : Protocol.query) ~outcome ~resp ~latency_ns
    ~queue_ns ~exec =
  match t.recorder with
  | None -> ()
  | Some rc ->
    (* Per-edge timings read the raw close-order span list; the
       chronological sort is deferred to retention, which only a sampled
       minority of requests pays for. *)
    let plan, sampling, execution, hits, misses, edge_ns, sink =
      match exec with
      | None -> ([], 0, 0, 0, 0, [], None)
      | Some e ->
        let m = Sink.metrics e.sink in
        let c (x : Tm.counter) = x.Tm.c_value in
        ( e.plan,
          e.sampling,
          e.execution,
          c m.Tm.relation_cache_hits + c m.Tm.estimate_cache_hits,
          c m.Tm.relation_cache_misses + c m.Tm.estimate_cache_misses,
          Recorder.edge_timings_of_spans (Sink.spans e.sink),
          Some e.sink )
    in
    let record =
      {
        Recorder.trace_id;
        fingerprint = fp_digest q;
        tenant = q.Protocol.client_id;
        plan_digest = Recorder.plan_digest plan;
        plan_edges = List.length plan;
        latency_ns;
        queue_ns;
        sampling_units = sampling;
        execution_units = execution;
        cache_hits = hits;
        cache_misses = misses;
        outcome;
        status = status_of_resp resp;
        edge_ns;
      }
    in
    (match (Recorder.observe rc record, sink) with
     | Some reason, Some s ->
       (match Sink.spans_chronological s with
        | [] -> ()
        | spans -> Recorder.retain rc record reason spans)
     | _ -> ())

let complete t entry ~wait_ns resp =
  locked t (fun () ->
      Accesslog.record ~site:t.al_counts Write;
      entry.outcome <- Some resp;
      t.executed <- t.executed + 1;
      Accesslog.record ~site:t.al_inflight Write;
      Hashtbl.remove t.inflight entry.key;
      Tm.observe t.metrics.Tm.queue_wait_ns wait_ns;
      Tm.observe t.metrics.Tm.serve_ns (Clock.elapsed_ns entry.submitted_ns);
      Condition.broadcast entry.done_c)

let process t entry =
  let wait_ns = Clock.elapsed_ns entry.submitted_ns in
  let wait_ms = int_of_float (Clock.ms_of_ns wait_ns) in
  let q = entry.query in
  let resp, exec =
    match q.Protocol.deadline_ms with
    | Some d when wait_ms >= d ->
      (* The budget ran out while queued: answer without executing. *)
      ( Protocol.Err
          ( Protocol.Deadline,
            Printf.sprintf
              "deadline budget exceeded in queue: waited %d ms, budget %d ms"
              wait_ms d ),
        None )
    | Some d ->
      let e = run_query t q ~deadline_ms:(Some (d - wait_ms)) ~absorb:true in
      (e.resp, Some e)
    | None ->
      let e =
        run_query t q
          ~deadline_ms:t.cfg.session.Session.budgets.Session.deadline_ms
          ~absorb:true
      in
      (e.resp, Some e)
  in
  (* Record before waking the waiter: by the time a client reads its
     reply, the flight record is visible (RECENT/STATS right after an
     answer are deterministic). record_request takes only recorder leaf
     mutexes, never t.mutex. *)
  record_request t ~trace_id:entry.trace_id ~q ~outcome:Recorder.Executed ~resp
    ~latency_ns:(Clock.elapsed_ns entry.submitted_ns) ~queue_ns:wait_ns ~exec;
  complete t entry ~wait_ns resp

let take_locked t =
  (* Called with t.mutex held (worker loop / drain). *)
  let rec go () =
    if not (Queue.is_empty t.queue) then
      Some
        (Accesslog.with_lock t.al_lock (fun () ->
             Accesslog.record ~site:t.al_queue Write;
             let e = Queue.pop t.queue in
             set_depth_locked t;
             e))
    else if t.stopping then None
    else begin
      Condition.wait t.work t.mutex;
      go ()
    end
  in
  go ()

let worker_loop t =
  Accesslog.hb_acquire t.hb_spawn;
  let rec loop () =
    match Mutex.protect t.mutex (fun () -> take_locked t) with
    | None -> ()
    | Some entry ->
      process t entry;
      loop ()
  in
  loop ();
  Accesslog.hb_publish t.hb_done

(* ---- lifecycle ---------------------------------------------------------- *)

let create cfg =
  Lazy.force ignore_sigpipe;
  let armed = Accesslog.armed () in
  let reg_site name = if armed then Accesslog.site ~name Accesslog.Shared else -1 in
  let t =
    {
      cfg;
      mutex = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      inflight = Hashtbl.create 64;
      requests = 0;
      responses = 0;
      submitted = 0;
      executed = 0;
      coalesced = 0;
      rejected = 0;
      divergence = 0;
      conns = 0;
      conn_rejected = 0;
      tenants = Hashtbl.create 8;
      metrics = Tm.create ();
      aggregate = Aggregate.create ();
      stopping = false;
      workers = [];
      pool =
        (if cfg.parallel_parts > 1 then
           Some (Rox_core.Pool.create ~parts:cfg.parallel_parts)
         else None);
      sanitize_coalesce = Sanitize.default_mode ();
      recorder =
        (if cfg.recorder then
           Some
             (Recorder.create ?slow_ms:cfg.slow_ms ?slow_log:cfg.slow_log ())
         else None);
      started_ns = Clock.now_ns ();
      started_at = Unix.gettimeofday ();
      al_lock = (if armed then Accesslog.lock ~name:"serve.mutex" else -1);
      al_queue = reg_site "serve.queue";
      al_inflight = reg_site "serve.inflight";
      al_counts = reg_site "serve.counts";
      hb_spawn = (if armed then Accesslog.hb_token ~name:"serve.spawn" else -1);
      hb_done = (if armed then Accesslog.hb_token ~name:"serve.done" else -1);
    }
  in
  (* Publish construction before the fork so the detector sees the real
     init-to-worker happens-before edge (the Race_fixtures pattern). *)
  Accesslog.hb_publish t.hb_spawn;
  t.workers <-
    List.init cfg.workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  let first =
    locked t (fun () ->
        if t.stopping then None
        else begin
          t.stopping <- true;
          Condition.broadcast t.work;
          let ws = t.workers in
          t.workers <- [];
          Some ws
        end)
  in
  (match first with
   | None -> ()
   | Some workers ->
     List.iter
       (fun d ->
         Domain.join d;
         Accesslog.hb_acquire t.hb_done)
       workers;
     (* After the request workers joined no session can reach the shared
        pool, so this is the quiescent point to retire it. *)
     Option.iter Rox_core.Pool.shutdown t.pool);
  (* Workers drain the queue before exiting; anything still here means
     workers = 0. Fail it as rejected so the RX603 balance holds and no
     awaiting client hangs. *)
  let drained =
    locked t (fun () ->
        let acc = ref [] in
        while not (Queue.is_empty t.queue) do
          Accesslog.record ~site:t.al_queue Write;
          let e = Queue.pop t.queue in
          Accesslog.record ~site:t.al_counts Write;
          t.rejected <- t.rejected + 1;
          Tm.incr t.metrics.Tm.admission_rejects;
          Accesslog.record ~site:t.al_inflight Write;
          Hashtbl.remove t.inflight e.key;
          e.outcome <- Some (Protocol.Err (Protocol.Busy, "server shutting down"));
          Condition.broadcast e.done_c;
          acc := e :: !acc
        done;
        set_depth_locked t;
        !acc)
  in
  (* Flight-record the drained entries outside the server lock, then
     flush the slow log: after shutdown every submitted request has its
     record, so the RX701 reconciliation holds even for a server killed
     with work still queued. *)
  List.iter
    (fun e ->
      record_request t ~trace_id:e.trace_id ~q:e.query
        ~outcome:Recorder.Rejected
        ~resp:(Protocol.Err (Protocol.Busy, "server shutting down"))
        ~latency_ns:(Clock.elapsed_ns e.submitted_ns)
        ~queue_ns:(Clock.elapsed_ns e.submitted_ns) ~exec:None)
    drained;
  Option.iter Recorder.close t.recorder

(* ---- admission ---------------------------------------------------------- *)

let submit_async t (q : Protocol.query) =
  let trace_id =
    match t.recorder with Some rc -> Recorder.next_trace_id rc | None -> 0
  in
  let t0 = Clock.now_ns () in
  let verdict =
    locked t (fun () ->
        Accesslog.record ~site:t.al_counts Write;
        t.submitted <- t.submitted + 1;
        let reject () =
          t.rejected <- t.rejected + 1;
          Tm.incr t.metrics.Tm.admission_rejects;
          `Rejected
        in
        if t.stopping then reject ()
        else begin
          let key = coalesce_key t q in
          Accesslog.record ~site:t.al_inflight Read;
          match Hashtbl.find_opt t.inflight key with
          | Some entry ->
            entry.waiters <- entry.waiters + 1;
            t.coalesced <- t.coalesced + 1;
            Tm.incr t.metrics.Tm.coalesce_hits;
            bump_tenant t q.Protocol.client_id;
            `Ticket { entry; coalesced = true; tid = trace_id; t0; tq = q }
          | None ->
            if Queue.length t.queue >= t.cfg.queue_capacity then reject ()
            else begin
              let entry =
                {
                  key;
                  query = q;
                  trace_id;
                  submitted_ns = t0;
                  done_c = Condition.create ();
                  outcome = None;
                  waiters = 1;
                }
              in
              Accesslog.record ~site:t.al_queue Write;
              Queue.push entry t.queue;
              Accesslog.record ~site:t.al_inflight Write;
              Hashtbl.add t.inflight key entry;
              set_depth_locked t;
              bump_tenant t q.Protocol.client_id;
              Condition.signal t.work;
              `Ticket { entry; coalesced = false; tid = trace_id; t0; tq = q }
            end
        end)
  in
  (* Rejected requests are flight-recorded too (outside the server
     lock): the recorder's record count must reconcile with submitted,
     not with executed. *)
  (match verdict with
   | `Rejected ->
     record_request t ~trace_id ~q ~outcome:Recorder.Rejected
       ~resp:(Protocol.Err (Protocol.Busy, "admission queue full"))
       ~latency_ns:(Clock.elapsed_ns t0) ~queue_ns:0 ~exec:None
   | `Ticket _ -> ());
  verdict

let await t (tk : ticket) =
  let resp =
    Mutex.protect t.mutex (fun () ->
        let rec wait () =
          match tk.entry.outcome with
          | Some r -> r
          | None ->
            Condition.wait tk.entry.done_c t.mutex;
            wait ()
        in
        wait ())
  in
  (* RX602 cross-check: under sanitize, a coalesced answer must be
     bit-identical to an independent execution of the same request. Only
     Answer/Answer pairs are compared — budget errors are timing-dependent
     and say nothing about coalescing soundness. *)
  if tk.coalesced && t.sanitize_coalesce then begin
    let independent =
      (run_query t tk.entry.query
         ~deadline_ms:tk.entry.query.Protocol.deadline_ms ~absorb:false)
        .resp
    in
    let diverged =
      match (resp, independent) with
      | Protocol.Answer a, Protocol.Answer b ->
        a.total <> b.total || a.ids <> b.ids
      | _ -> false
    in
    if diverged then
      locked t (fun () ->
          Accesslog.record ~site:t.al_counts Write;
          t.divergence <- t.divergence + 1)
  end;
  (* A coalesced waiter is its own flight record — its own trace id,
     tenant and wait — with the shared execution's answer but no plan or
     span surface (those belong to the executing entry's record). *)
  if tk.coalesced then
    record_request t ~trace_id:tk.tid ~q:tk.tq ~outcome:Recorder.Coalesced
      ~resp ~latency_ns:(Clock.elapsed_ns tk.t0) ~queue_ns:0 ~exec:None;
  resp

let submit t q =
  match submit_async t q with
  | `Rejected -> Protocol.Err (Protocol.Busy, "admission queue full")
  | `Ticket tk -> await t tk

let drain_once t =
  match locked t (fun () ->
            if Queue.is_empty t.queue then None
            else begin
              Accesslog.record ~site:t.al_queue Write;
              let e = Queue.pop t.queue in
              set_depth_locked t;
              Some e
            end)
  with
  | None -> false
  | Some entry ->
    process t entry;
    true

(* ---- introspection ------------------------------------------------------ *)

let queue_depth t = locked t (fun () -> Queue.length t.queue)

let audit t =
  locked t (fun () ->
      Accesslog.record ~site:t.al_counts Read;
      {
        Serve_check.sv_requests = t.requests;
        sv_responses = t.responses;
        sv_submitted = t.submitted;
        sv_executed = t.executed;
        sv_coalesced = t.coalesced;
        sv_rejected = t.rejected;
        sv_divergence = t.divergence;
      })

let self_check t = Serve_check.check (audit t)

let tenants t =
  locked t (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tenants []
      |> List.sort compare)

let stats_kvs t =
  let counts =
    locked t (fun () ->
        Accesslog.record ~site:t.al_counts Read;
        Accesslog.record ~site:t.al_inflight Read;
        (* Clients currently attached to in-flight executions: each entry's
           submitter plus every coalesced waiter. *)
        let inflight_waiters =
          Hashtbl.fold (fun _ e acc -> acc + e.waiters) t.inflight 0
        in
        [
          ("uptime_ms", string_of_int (Clock.elapsed_ns t.started_ns / 1_000_000));
          ("started_at", Printf.sprintf "%.3f" t.started_at);
          ("requests", string_of_int t.requests);
          ("responses", string_of_int t.responses);
          ("submitted", string_of_int t.submitted);
          ("executed", string_of_int t.executed);
          ("coalesced", string_of_int t.coalesced);
          ("rejected", string_of_int t.rejected);
          ("divergence", string_of_int t.divergence);
          ("queue_depth", string_of_int (Queue.length t.queue));
          ("inflight", string_of_int (Hashtbl.length t.inflight));
          ("inflight_waiters", string_of_int inflight_waiters);
          ("connections", string_of_int t.conns);
          ("conn_rejected", string_of_int t.conn_rejected);
          ("workers", string_of_int t.cfg.workers);
        ])
  in
  (* Cache shard surface: per-shard residency plus the eviction and
     contention counters the sharded store maintains (no server lock —
     Store aggregates one shard lock at a time). *)
  let cache_kvs =
    match t.cfg.cache with
    | None -> []
    | Some store ->
      let rel, est = Rox_cache.Store.shard_stats store in
      let member name (per : Rox_cache.Lru.stats array) =
        let sum f = Array.fold_left (fun a s -> a + f s) 0 per in
        let open Rox_cache.Lru in
        [
          (Printf.sprintf "cache.%s.shards" name, string_of_int (Array.length per));
          (Printf.sprintf "cache.%s.bytes" name, string_of_int (sum (fun s -> s.bytes)));
          (Printf.sprintf "cache.%s.entries" name, string_of_int (sum (fun s -> s.entries)));
          (Printf.sprintf "cache.%s.evictions" name, string_of_int (sum (fun s -> s.evictions)));
          ( Printf.sprintf "cache.%s.cost_evictions" name,
            string_of_int (sum (fun s -> s.cost_evictions)) );
          (Printf.sprintf "cache.%s.lock_waits" name, string_of_int (sum (fun s -> s.lock_waits)));
          (Printf.sprintf "cache.%s.fast_hits" name, string_of_int (sum (fun s -> s.fast_hits)));
        ]
        @ List.concat
            (List.mapi
               (fun i (s : Rox_cache.Lru.stats) ->
                 [
                   ( Printf.sprintf "cache.%s.shard%d.bytes" name i,
                     string_of_int s.bytes );
                   ( Printf.sprintf "cache.%s.shard%d.entries" name i,
                     string_of_int s.entries );
                 ])
               (Array.to_list per))
      in
      member "relations" rel @ member "estimates" est
  in
  (* Recorder counters come from the recorder's own slot mutexes — never
     inside the server lock. *)
  let recorder_kvs =
    match t.recorder with
    | None -> []
    | Some rc ->
      [
        ("records", string_of_int (Recorder.records rc));
        ("records_dropped", string_of_int (Recorder.dropped rc));
        ("traces_retained", string_of_int (Recorder.retained_count rc));
      ]
  in
  counts @ recorder_kvs @ cache_kvs
  @ List.map (fun (k, v) -> ("tenant." ^ k, string_of_int v)) (tenants t)

let aggregate t = t.aggregate

let recorder t = t.recorder

let metrics t =
  let snap = Tm.create () in
  locked t (fun () -> Tm.add_into ~into:snap t.metrics);
  Aggregate.with_metrics t.aggregate (fun m -> Tm.add_into ~into:snap m);
  snap

(* The METRICS scrape body: the merged process aggregate in text
   exposition format, followed by the recorder's own series (records,
   drops, retention, adaptive threshold, per-tenant labels). *)
let metrics_text t =
  Export.prometheus (metrics t)
  ^ match t.recorder with None -> "" | Some rc -> Recorder.prometheus rc

let recent_lines t n =
  match t.recorder with
  | None -> []
  | Some rc ->
    List.map
      (fun (r : Recorder.record) ->
        (* The record itself does not store why it was retained; look the
           reason up so RECENT marks which ids TRACE can fetch. *)
        let reason =
          Option.map
            (fun (_, reason, _) -> reason)
            (Recorder.find_trace rc r.Recorder.trace_id)
        in
        Rox_util.Minijson.to_string (Recorder.json_of_record ?reason r))
      (Recorder.recent rc n)

let trace_response t id =
  match t.recorder with
  | None ->
    Protocol.Err (Protocol.Unknown_id, "flight recorder disabled")
  | Some rc -> (
    match Recorder.find_trace rc id with
    | None ->
      Protocol.Err
        ( Protocol.Unknown_id,
          Printf.sprintf "trace %d not retained (never kept, or evicted)" id )
    | Some (_, _, spans) ->
      Protocol.Trace_reply
        ( id,
          Export.chrome_trace_parts
            ~process_name:(Printf.sprintf "rox trace %d" id)
            [ (0, spans, 0) ] ))

(* ---- connection handling ------------------------------------------------ *)

let count_request t =
  locked t (fun () ->
      Accesslog.record ~site:t.al_counts Write;
      t.requests <- t.requests + 1;
      Tm.incr t.metrics.Tm.requests_received)

let reply t fd resp =
  locked t (fun () ->
      Accesslog.record ~site:t.al_counts Write;
      t.responses <- t.responses + 1;
      Tm.incr t.metrics.Tm.responses_sent);
  Protocol.write_frame fd (Protocol.render_response resp)

let handle_connection t fd =
  let d = Protocol.decoder ~max_frame:t.cfg.max_frame () in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (* A peer that disconnected before reading its reply is an ordinary
         connection close (SIGPIPE is ignored process-wide, so the failed
         write surfaces as EPIPE), never a server error. *)
      let reply_ok resp =
        try
          reply t fd resp;
          true
        with
        | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _)
        | End_of_file ->
          false
      in
      let rec loop () =
        match Protocol.read_frame fd d with
        | `Eof -> ()
        | `Corrupt msg ->
          (* The stream cannot be resynchronized: answer the garbage as
             one request (keeping RX601 sound) and close. *)
          count_request t;
          ignore (reply_ok (Protocol.Err (Protocol.Proto, msg)) : bool)
        | `Frame payload -> (
          count_request t;
          match Protocol.parse_request payload with
          | Error msg ->
            if reply_ok (Protocol.Err (Protocol.Proto, msg)) then loop ()
          | Ok Protocol.Ping -> if reply_ok Protocol.Pong then loop ()
          | Ok Protocol.Stats ->
            if reply_ok (Protocol.Stats_reply (stats_kvs t)) then loop ()
          | Ok Protocol.Metrics ->
            if reply_ok (Protocol.Metrics_reply (metrics_text t)) then loop ()
          | Ok (Protocol.Recent n) ->
            if reply_ok (Protocol.Recent_reply (recent_lines t n)) then loop ()
          | Ok (Protocol.Trace_get id) ->
            if reply_ok (trace_response t id) then loop ()
          | Ok Protocol.Quit -> ignore (reply_ok Protocol.Bye : bool)
          | Ok (Protocol.Query q) -> (
            match submit_async t q with
            | `Rejected ->
              if reply_ok (Protocol.Err (Protocol.Busy, "admission queue full"))
              then loop ()
            | `Ticket tk -> if reply_ok (await t tk) then loop ()))
      in
      loop ())

(* Admit or bounce one accepted connection. The cap bounds the handler
   thread pool — admission control only bounds queued queries: an
   over-limit connection is answered one best-effort [ERR busy] frame —
   outside the request/response audit, since it answers the connection
   attempt rather than a parsed frame — and closed. *)
let dispatch_connection t fd =
  let admitted =
    locked t (fun () ->
        Accesslog.record ~site:t.al_counts Write;
        if t.conns >= t.cfg.max_connections then begin
          t.conn_rejected <- t.conn_rejected + 1;
          false
        end
        else begin
          t.conns <- t.conns + 1;
          true
        end)
  in
  if not admitted then begin
    (try
       Protocol.write_frame fd
         (Protocol.render_response
            (Protocol.Err (Protocol.Busy, "connection limit reached")))
     with Unix.Unix_error _ | End_of_file -> ());
    try Unix.close fd with Unix.Unix_error _ -> ()
  end
  else
    let (_ : Thread.t) =
      Thread.create
        (fun () ->
          Fun.protect
            ~finally:(fun () ->
              locked t (fun () ->
                  Accesslog.record ~site:t.al_counts Write;
                  t.conns <- t.conns - 1))
            (fun () ->
              try handle_connection t fd
              with _ -> ( try Unix.close fd with Unix.Unix_error _ -> ())))
        ()
    in
    ()

let serve t listen_fd =
  Lazy.force ignore_sigpipe;
  let rec loop () =
    let stop = locked t (fun () -> t.stopping) in
    if not stop then
      match Unix.accept listen_fd with
      | fd, _ ->
        dispatch_connection t fd;
        loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.ECONNRESET), _, _)
        ->
        (* The peer vanished between SYN and accept — its problem, not the
           listening socket's. *)
        loop ()
      | exception Unix.Unix_error (((Unix.EMFILE | Unix.ENFILE) as e), _, _) ->
        (* fd exhaustion is load, not a broken listener: back off, retry. *)
        Printf.eprintf "rox serve: accept: %s; backing off\n%!"
          (Unix.error_message e);
        Unix.sleepf 0.05;
        loop ()
      | exception Unix.Unix_error (((Unix.EBADF | Unix.EINVAL) as e), _, _) ->
        (* The listening fd itself is gone (closed or shut down under us):
           nothing left to accept. *)
        Printf.eprintf "rox serve: accept: %s; stopping\n%!"
          (Unix.error_message e)
      | exception Unix.Unix_error (e, _, _) ->
        Printf.eprintf "rox serve: accept: %s; retrying\n%!"
          (Unix.error_message e);
        Unix.sleepf 0.01;
        loop ()
  in
  loop ()

open Rox_storage
open Rox_algebra
open Rox_joingraph

exception Unsupported of string
exception Rejected of Rox_analysis.Diagnostic.t

type compiled = {
  graph : Graph.t;
  engine : Engine.t;
  bindings : (string * int) list;
  tail : Tail.spec;
  query : Ast.query;
}

(* Compact rendering of a numeric literal so that "quantity = 1" matches the
   text node "1" (generators emit integers without a decimal point). *)
let literal_string = function
  | Ast.Str s -> s
  | Ast.Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%g" f

let selection_of_cmp cmp lit =
  match (cmp, lit) with
  | Ast.Eq, lit -> Selection.Eq (literal_string lit)
  | Ast.Lt, Ast.Num f -> Selection.Lt f
  | Ast.Le, Ast.Num f -> Selection.Le f
  | Ast.Gt, Ast.Num f -> Selection.Gt f
  | Ast.Ge, Ast.Num f -> Selection.Ge f
  | (Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), Ast.Str _ ->
    raise (Unsupported "order comparison against a string literal")
  | Ast.Ne, _ -> raise (Unsupported "!= predicates")

type ctx = {
  engine : Engine.t;
  graph : Graph.t;
  mutable vars : (string * int) list;  (* variable -> vertex id *)
  mutable doc_roots : (string * int) list;  (* uri -> root vertex id *)
  (* Memo so that the same step from the same vertex reuses its vertex:
     (source vertex, axis, annot) -> vertex. *)
  memo : (int * Axis.t * Vertex.annot, int) Hashtbl.t;
}

let doc_root ctx uri =
  match List.assoc_opt uri ctx.doc_roots with
  | Some v -> v
  | None ->
    (match Engine.find_uri ctx.engine uri with
     | None -> raise (Unsupported (Printf.sprintf "document %S not loaded in engine" uri))
     | Some r ->
       let v = Graph.add_vertex ctx.graph ~doc_id:(Rox_shred.Doc.id r.Engine.doc) Vertex.Root in
       ctx.doc_roots <- (uri, v.Vertex.id) :: ctx.doc_roots;
       v.Vertex.id)

let lookup_var ctx v =
  match List.assoc_opt v ctx.vars with
  | Some vertex -> vertex
  | None -> raise (Unsupported (Printf.sprintf "unbound variable $%s" v))

(* Add (or reuse) the target vertex of one step and its edge. *)
let extend_step ctx ~from ~axis annot =
  let key = (from, axis, annot) in
  match Hashtbl.find_opt ctx.memo key with
  | Some v -> v
  | None ->
    let doc_id = (Graph.vertex ctx.graph from).Vertex.doc_id in
    let v = Graph.add_vertex ctx.graph ~doc_id annot in
    ignore (Graph.add_edge ctx.graph ~v1:from ~v2:v.Vertex.id (Edge.Step axis) : Edge.t);
    Hashtbl.replace ctx.memo key v.Vertex.id;
    v.Vertex.id

let annot_of_test ?pred test =
  match (test : Ast.node_test) with
  | Ast.Name_test n ->
    if pred <> None then raise (Unsupported "value predicate directly on an element vertex");
    Vertex.Element n
  | Ast.Text_test -> Vertex.Text pred
  | Ast.Attribute_test n -> Vertex.Attr (n, pred)
  | Ast.Node_test -> raise (Unsupported "node() tests")

(* Compile a path to its terminal vertex. [terminal_pred] is attached to the
   last step's vertex (from a trailing value comparison). [self] resolves
   From_self starts (predicate paths). *)
let rec compile_path ctx ?self ?terminal_pred (path : Ast.path) =
  let start_vertex =
    match path.Ast.start with
    | Ast.From_doc uri -> doc_root ctx uri
    | Ast.From_var v -> lookup_var ctx v
    | Ast.From_self ->
      (match self with
       | Some v -> v
       | None -> raise (Unsupported "context path (.) outside a predicate"))
  in
  let rec walk from = function
    | [] -> from
    | [ last ] ->
      let annot = annot_of_test ?pred:terminal_pred last.Ast.test in
      let v = extend_step ctx ~from ~axis:last.Ast.axis annot in
      compile_predicates ctx ~self:v last.Ast.preds;
      (* A trailing value predicate on an *element* test means comparing the
         element's text content: materialize the implicit text() child, as
         in the paper's (quantity)-(text()=1) vertices of Figure 3.1. *)
      (match (terminal_pred, last.Ast.test) with
       | Some _, Ast.Name_test _ -> assert false (* annot_of_test raised *)
       | _ -> ());
      v
    | step :: rest ->
      let annot = annot_of_test step.Ast.test in
      let v = extend_step ctx ~from ~axis:step.Ast.axis annot in
      compile_predicates ctx ~self:v step.Ast.preds;
      walk v rest
  in
  match (path.Ast.steps, terminal_pred) with
  | [], None -> start_vertex
  | [], Some _ -> raise (Unsupported "value predicate on a bare variable")
  | steps, _ -> walk start_vertex steps

and compile_predicates ctx ~self preds =
  List.iter
    (fun pred ->
      match (pred : Ast.predicate) with
      | Ast.Exists p -> ignore (compile_path ctx ~self p : int)
      | Ast.Value_cmp (p, cmp, lit) ->
        let selection = selection_of_cmp cmp lit in
        let p =
          (* [./quantity = 1] compares the element's text: rewrite the path
             to end in an explicit text() child step. *)
          match last_test p with
          | Some (Ast.Name_test _) | None ->
            { p with Ast.steps = p.Ast.steps @ [ { Ast.axis = Axis.Child; test = Ast.Text_test; preds = [] } ] }
          | Some (Ast.Text_test | Ast.Attribute_test _) -> p
          | Some Ast.Node_test -> raise (Unsupported "node() tests")
        in
        ignore (compile_path ctx ~self ~terminal_pred:selection p : int))
    preds

and last_test (p : Ast.path) =
  match List.rev p.Ast.steps with
  | [] -> None
  | last :: _ -> Some last.Ast.test

let compile_untimed ~equi_closure engine (q : Ast.query) =
  let ctx =
    { engine; graph = Graph.create (); vars = []; doc_roots = []; memo = Hashtbl.create 64 }
  in
  (* let-bindings: document handles (plain paths also allowed: they bind the
     terminal vertex like a for would, without entering the tail key). *)
  List.iter
    (fun (v, path) ->
      let vertex = compile_path ctx path in
      ctx.vars <- (v, vertex) :: ctx.vars)
    q.Ast.lets;
  (* for-bindings in order; these become the tail sort key. *)
  let key_vertices =
    List.map
      (fun (v, path) ->
        let vertex = compile_path ctx path in
        ctx.vars <- (v, vertex) :: ctx.vars;
        vertex)
      q.Ast.fors
  in
  (* where conjuncts. *)
  List.iter
    (fun atom ->
      match (atom : Ast.where_atom) with
      | Ast.Join (p1, p2) ->
        let v1 = compile_path ctx p1 in
        let v2 = compile_path ctx p2 in
        (* Two syntactically identical paths share one vertex; joining it
           with itself is a tautology — the vertex's own step edges already
           express the existence constraint. *)
        if v1 <> v2 then
          (match Graph.find_edge ctx.graph v1 v2 with
           | Some _ -> ()
           | None -> ignore (Graph.add_edge ctx.graph ~v1 ~v2 Edge.Equijoin : Edge.t))
      | Ast.Filter (p, cmp, lit) ->
        let selection = selection_of_cmp cmp lit in
        let p =
          match last_test p with
          | Some (Ast.Name_test _) | None ->
            { p with Ast.steps = p.Ast.steps @ [ { Ast.axis = Axis.Child; test = Ast.Text_test; preds = [] } ] }
          | Some (Ast.Text_test | Ast.Attribute_test _) -> p
          | Some Ast.Node_test -> raise (Unsupported "node() tests")
        in
        ignore (compile_path ctx ~terminal_pred:selection p : int))
    q.Ast.where;
  if equi_closure then ignore (Graph.equi_closure ctx.graph : Edge.t list);
  (* A disconnected graph would make the optimizer cross-product unrelated
     subqueries (Definition 1 demands one component): reject it here, with
     a structured diagnostic, before it can reach the run-time. *)
  if not (Graph.connected ctx.graph) then
    raise
      (Rejected
         (Rox_analysis.Diagnostic.error "RX001" Rox_analysis.Diagnostic.Graph_loc
            ~hint:
              "multi-document queries must relate their documents through a \
               where-clause value join"
            "compiled join graph is not connected"));
  let return_vertex =
    match List.assoc_opt q.Ast.return_var ctx.vars with
    | Some v -> v
    | None -> raise (Unsupported (Printf.sprintf "unbound return variable $%s" q.Ast.return_var))
  in
  {
    graph = ctx.graph;
    engine;
    bindings = List.rev ctx.vars;
    tail = { Tail.key_vertices = Array.of_list key_vertices; return_vertex };
    query = q;
  }

let compile ?(equi_closure = true) ?telemetry engine (q : Ast.query) =
  match telemetry with
  | None -> compile_untimed ~equi_closure engine q
  | Some tel ->
    Rox_telemetry.Sink.with_span tel "compile"
      ~record:(fun m dur ->
        Rox_telemetry.Metrics.observe m.Rox_telemetry.Metrics.compile_ns dur)
      (fun () -> compile_untimed ~equi_closure engine q)

let compile_string ?equi_closure ?telemetry engine src =
  compile ?equi_closure ?telemetry engine (Parser.parse src)

let vertex_of_var c v =
  match List.assoc_opt v c.bindings with
  | Some vertex -> vertex
  | None -> raise Not_found

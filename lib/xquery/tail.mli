(** The plan tail: π — δ — τ — π (Section 2.1, Figure 1).

    The Join Graph computes the fully joined relation; XQuery's duplicate
    and ordering semantics are restored by a tail that projects onto the
    for-variable node columns, removes duplicate combinations, sorts by
    node identity in for-clause order, and finally projects the returned
    variable (keeping one output node per distinct combination). *)

type spec = {
  key_vertices : int array;
      (** Vertices bound by for-clauses, in clause order — the τ sort key. *)
  return_vertex : int;
}

val apply :
  ?sanitize:bool ->
  ?meter:Rox_algebra.Cost.meter ->
  spec ->
  Rox_joingraph.Relation.t ->
  int array
(** Returned node sequence (pre ranks of the return vertex's document),
    in XQuery order; duplicates across distinct key combinations are
    preserved, as the semantics demand. *)

val count :
  ?sanitize:bool ->
  ?meter:Rox_algebra.Cost.meter ->
  spec ->
  Rox_joingraph.Relation.t ->
  int

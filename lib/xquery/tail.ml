open Rox_joingraph

type spec = {
  key_vertices : int array;
  return_vertex : int;
}

let apply ?meter spec rel =
  let projected = Relation.project rel spec.key_vertices in
  let distinct = Relation.distinct ?meter projected in
  let sorted = Relation.sort_rows distinct in
  let final = Relation.project sorted [| spec.return_vertex |] in
  Rox_util.Column.read (Relation.column final spec.return_vertex)

let count ?meter spec rel = Array.length (apply ?meter spec rel)

open Rox_joingraph

type spec = {
  key_vertices : int array;
  return_vertex : int;
}

let apply ?sanitize ?meter spec rel =
  let projected = Relation.project ?sanitize rel spec.key_vertices in
  let distinct = Relation.distinct ?sanitize ?meter projected in
  let sorted = Relation.sort_rows ?sanitize distinct in
  let final = Relation.project ?sanitize sorted [| spec.return_vertex |] in
  Rox_util.Column.read (Relation.column final spec.return_vertex)

let count ?sanitize ?meter spec rel = Array.length (apply ?sanitize ?meter spec rel)

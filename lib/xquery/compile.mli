(** Join Graph isolation: static compilation from FLWOR queries to Join
    Graphs.

    Plays the role of the Pathfinder rewrite pipeline of [18] for our query
    fragment: every for-binding path, structural predicate and where-clause
    comparison becomes vertices and edges of one Join Graph; duplicate /
    order restoration is captured in a {!Tail.spec}. With
    [~equi_closure:true] (the default) the transitive join equivalences —
    the dotted edges ROX adds in Figure 4 — are materialized as [derived]
    equi-join edges.

    Documents named by [doc(uri)] must already be registered in the
    engine. *)

exception Unsupported of string
(** Query shape outside the compiled fragment (e.g. [!=] predicates). *)

exception Rejected of Rox_analysis.Diagnostic.t
(** The query compiled to a graph that fails static analysis — today,
    a disconnected Join Graph (diagnostic code RX001). *)

type compiled = {
  graph : Rox_joingraph.Graph.t;
  engine : Rox_storage.Engine.t;
  bindings : (string * int) list;  (** for/let variable → vertex id *)
  tail : Tail.spec;
  query : Ast.query;
}

val compile :
  ?equi_closure:bool -> ?telemetry:Rox_telemetry.Sink.t ->
  Rox_storage.Engine.t -> Ast.query -> compiled
(** With [~telemetry], compilation runs under a ["compile"] span feeding
    the [compile_ns] histogram. *)

val compile_string :
  ?equi_closure:bool -> ?telemetry:Rox_telemetry.Sink.t ->
  Rox_storage.Engine.t -> string -> compiled
(** Parse + compile. *)

val vertex_of_var : compiled -> string -> int
(** @raise Not_found for unbound variables. *)

(** Per-query session context: the one value that owns everything a query
    run may read or mutate.

    A session bundles the optimizer options, a seeded deterministic RNG,
    the trace sink, the cost counter, the sanitize mode, the cross-query
    cache handle and the resource budgets. Every layer receives the
    session (or a narrow capability derived from it) explicitly — no
    process-global mutable state is consulted during a run, which is what
    makes one {!Rox_storage.Engine.t} plus one {!Rox_cache.Store.t}
    safely shareable by concurrent sessions on OCaml 5 domains
    (see [bench/exp_parallel.ml]).

    Confinement is enforced dynamically: {!confine} marks the dynamic
    extent of a run, and — when the session sanitizes — any process-global
    accessor called inside it raises an RX307
    [{!Rox_algebra.Sanitize.Session_confined}] violation. *)

type budgets = {
  max_rows : int;
      (** materialization guard per component
          ({!Rox_joingraph.Runtime.Blowup}) *)
  deadline_ms : int option;
      (** wall-clock budget for one armed run; exceeded ⇒
          {!Rox_algebra.Cost.Budget_exceeded} with reason [Deadline]
          (spent/budget in milliseconds) *)
  max_sampled_rows : int option;
      (** cap on total sampling-bucket work; exceeded ⇒
          {!Rox_algebra.Cost.Budget_exceeded} with reason [Sampled_rows] *)
}

val default_budgets : budgets
(** 50M-row guard, no deadline, unlimited sampling. *)

type config = {
  seed : int;                    (** RNG seed (default 42) *)
  tau : int;                     (** sample size τ (default 100) *)
  use_chain : bool;              (** chain sampling vs greedy (ablation) *)
  resample : bool;               (** refresh weights after execution *)
  grow_cutoff : bool;            (** grow the chain cut-off by τ per round *)
  race_operators : bool;         (** per-edge physical-operator racing *)
  table_fraction : float option; (** approximate mode (Section 6) *)
  sanitize : bool;               (** operator-contract checking mode *)
  budgets : budgets;
  client_id : string;
      (** tenant tag (default ["local"]): surfaced per request by the
          serving front-end, threaded into the query span's attributes and
          the server's per-tenant accounting *)
  parallel_parts : int;
      (** intra-query partition count K (default 1 = strictly sequential,
          no pool spawned). When K > 1 and no pool is handed to {!create},
          the session owns a fresh {!Pool} of K workers; partitioned edge
          kernels and concurrent racing probes fan out across it with
          bit-identical results at every K. *)
}

val default_config : unit -> config
(** Paper defaults; [sanitize] comes from
    {!Rox_algebra.Sanitize.default_mode} (the [ROX_SANITIZE] environment
    default) — the single sanctioned global read, performed at
    session-construction time, never during a run. *)

type t

val create :
  ?config:config -> ?trace:Rox_joingraph.Trace.t -> ?cache:Rox_cache.Store.t ->
  ?telemetry:Rox_telemetry.Sink.t -> ?pool:Pool.t ->
  unit -> t
(** A fresh session: new RNG seeded from [config.seed], new cost counter
    (with the sampled-rows budget installed), disabled trace and null
    telemetry sink unless one is passed. Sessions are single-domain values
    — share the engine, the cache and the telemetry {!Rox_telemetry.Aggregate}
    across domains, never a session or its sink.

    [pool] lends an externally owned domain pool (the server shares one
    across request sessions); without it a pool is created — and owned —
    only when [config.parallel_parts > 1]. Call {!release} when done with
    a session that may own a pool. *)

val release : t -> unit
(** Shut down the session-owned pool, if any; a no-op for sequential
    sessions and for sessions running on a lent pool. *)

val parallel_parts : t -> int
(** Effective partition count: the pool's worker count, or 1 when
    sequential. *)

val run_tasks : t -> int -> (worker:int -> int -> unit) -> unit
(** The fork/join capability injected into {!runtime_config} and used by
    the concurrent racing probes: runs [n] independent tasks on the pool
    (sequentially in-place when the session has none), each task
    deadline-guarded against a snapshot taken caller-side before the
    fork. Tasks must write only their own slots and never touch the
    session (RX307/RX504). *)

val fork_rng : t -> stream:int -> Rox_util.Xoshiro.t
(** The seed-splitting rule for concurrent competitors:
    [Xoshiro.fork ~seed:(seed t) ~stream] — an independent stream that is
    a pure function of (session seed, stream id), never drawn from the
    live {!rng} (which would advance it and break [--parallel-parts 1]
    bit-identity). *)

val config : t -> config
val seed : t -> int
val tau : t -> int
val sanitize : t -> bool
val budgets : t -> budgets

val client_id : t -> string
(** The session's tenant tag ([config.client_id]). *)

val rng : t -> Rox_util.Xoshiro.t
val trace : t -> Rox_joingraph.Trace.t
val counter : t -> Rox_algebra.Cost.counter
val cache : t -> Rox_cache.Store.t option

val telemetry : t -> Rox_telemetry.Sink.t
(** The session's telemetry sink (null unless one was passed to
    {!create}); spans and metrics land here across the whole run. *)

val metrics : t -> Rox_telemetry.Metrics.t
(** [Rox_telemetry.Sink.metrics (telemetry t)]. *)

val sampling_meter : t -> Rox_algebra.Cost.meter
val execution_meter : t -> Rox_algebra.Cost.meter

val arm : t -> unit
(** Start the wall clock: the deadline becomes [now + deadline_ms].
    {!confine} arms automatically; call directly only in tests. *)

val disarm : t -> unit

val check_deadline : t -> unit
(** @raise Rox_algebra.Cost.Budget_exceeded with reason [Deadline] when
    the armed deadline has passed. No-op when unarmed or no deadline is
    configured. Runs call this at every edge execution and chain round —
    the deadline is a cooperative cancellation point, not preemption. *)

val confine : t -> (unit -> 'a) -> 'a
(** [confine t f] runs [f] as one armed session run: the deadline clock
    starts, and the dynamic extent is marked as session-confined
    ({!Rox_algebra.Sanitize.confine}) so that — under a sanitizing
    session — any process-global accessor called inside trips RX307. *)

val table_sampler : t -> (int -> Rox_util.Column.t -> Rox_util.Column.t) option
(** The approximate-mode table sampler implied by [table_fraction]: a
    fresh isolated RNG stream per call (seeded [seed lxor 0x5eed]), so
    approximate-mode draws never perturb optimizer sampling. *)

val runtime_config : t -> Rox_joingraph.Runtime.config
(** The narrow capability handed to {!Rox_joingraph.Runtime.create}:
    max_rows, sanitize mode, cache handle and table sampler — everything
    the join-graph layer is allowed to see of the session. *)

val flight_record :
  t -> Rox_telemetry.Recorder.t -> query:string -> plan:int list ->
  latency_ns:int -> status:string -> Rox_telemetry.Recorder.record
(** The one-shot CLI's flight-recorder hook ([rox run] / [rox profile]):
    build one request record from the finished session — fingerprint of
    [query], the session's tenant tag and deterministic spend, cache
    hit/miss counters and per-edge timings read from its sink — observe
    it (which writes the slow-log line when armed), and retain the
    session's span tree when the recorder says so. Same record shape the
    serving front-end emits, so CLI and served slow-log lines reconcile. *)

val describe : t -> string
(** One-line rendering of the full session configuration (the [analyze]
    CLI prints it). *)

(** The ROX run-time optimizer — Algorithm 1.

    Phase 1 initializes samples and cardinalities of every index-selectable
    vertex and weights every edge with at least one sampled endpoint by
    cut-off sampled execution. Phase 2 alternates chain sampling
    (Algorithm 2) with the execution of the winning path segment, fully
    materializing results and re-sampling the weights of edges incident to
    every vertex whose table shrank — the re-sampling (rather than
    independence-scaling) that makes ROX robust to correlations.

    Ablation switches (the design choices benchmarked in
    [bench/main.ml]):
    - [use_chain:false] — greedy smallest-weight-edge execution, no
      look-ahead;
    - [resample:false] — weights are never refreshed after Phase 1 (the
      independence assumption a classical optimizer is stuck with);
    - [grow_cutoff:false] — chain sampling keeps a fixed cut-off τ;
    - [race_operators:false] — skip the per-edge physical-operator race. *)

type options = {
  seed : int;
  tau : int;            (** sample size τ (default 100) *)
  max_rows : int;       (** materialization guard *)
  use_chain : bool;
  resample : bool;
  grow_cutoff : bool;
  race_operators : bool;
      (** sample the applicable physical variants of each edge before
          executing it and pick the cheapest (Section 6) *)
  table_fraction : float option;
      (** approximate mode (Section 6): materialize vertex tables as
          uniform samples of this fraction; the answer becomes a sound
          subset computed over proportionally small intermediates *)
  cache : Rox_cache.Store.t option;
      (** cross-query cache of materialized edge executions and cut-off
          sample estimates; create one {!Rox_cache.Store} next to the
          engine and pass it to every run to reuse work across queries
          (default [None] — no caching, bit-for-bit the historical
          behavior) *)
}

val default_options : options

type result = {
  state : State.t;
  relation : Rox_joingraph.Relation.t;  (** fully joined non-root relation *)
  edge_order : int list;                (** execution order (edge ids) *)
  edge_rows : (int * int) list;
      (** (edge id, component rows after executing it) in execution order —
          the per-edge intermediate result sizes behind Figure 5. *)
  counter : Rox_algebra.Cost.counter;
}

val run_graph :
  ?options:options ->
  ?trace:Rox_joingraph.Trace.t ->
  Rox_storage.Engine.t ->
  Rox_joingraph.Graph.t ->
  result

val run : ?options:options -> ?trace:Rox_joingraph.Trace.t -> Rox_xquery.Compile.compiled -> result

val answer :
  ?options:options -> ?trace:Rox_joingraph.Trace.t -> Rox_xquery.Compile.compiled -> int array * result
(** Run and apply the π/δ/τ tail: the query answer as return-vertex nodes
    in XQuery order. *)

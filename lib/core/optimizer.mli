(** The ROX run-time optimizer — Algorithm 1.

    Phase 1 initializes samples and cardinalities of every index-selectable
    vertex and weights every edge with at least one sampled endpoint by
    cut-off sampled execution. Phase 2 alternates chain sampling
    (Algorithm 2) with the execution of the winning path segment, fully
    materializing results and re-sampling the weights of edges incident to
    every vertex whose table shrank — the re-sampling (rather than
    independence-scaling) that makes ROX robust to correlations.

    Every entry point takes the owning {!Session} explicitly: options,
    RNG, trace, counter, cache and budgets all come from it, and the whole
    run executes inside {!Session.confine} — armed deadline, RX307
    confinement. Ablation switches (the design choices benchmarked in
    [bench/main.ml]) live in {!Session.config}:
    - [use_chain = false] — greedy smallest-weight-edge execution, no
      look-ahead;
    - [resample = false] — weights are never refreshed after Phase 1 (the
      independence assumption a classical optimizer is stuck with);
    - [grow_cutoff = false] — chain sampling keeps a fixed cut-off τ;
    - [race_operators = false] — skip the per-edge physical-operator
      race. *)

type result = {
  state : State.t;
  relation : Rox_joingraph.Relation.t;  (** fully joined non-root relation *)
  edge_order : int list;                (** execution order (edge ids) *)
  edge_rows : (int * int) list;
      (** (edge id, component rows after executing it) in execution order —
          the per-edge intermediate result sizes behind Figure 5. *)
  counter : Rox_algebra.Cost.counter;   (** the session's counter *)
}

val run_graph :
  Session.t -> Rox_storage.Engine.t -> Rox_joingraph.Graph.t -> result
(** One optimized run of [graph] under [session].
    @raise Rox_algebra.Cost.Budget_exceeded when a session budget
    (deadline or sampled rows) runs out mid-run. *)

val run : Session.t -> Rox_xquery.Compile.compiled -> result

val answer : Session.t -> Rox_xquery.Compile.compiled -> int array * result
(** Run and apply the π/δ/τ tail: the query answer as return-vertex nodes
    in XQuery order. *)

val run_default : ?trace:Rox_joingraph.Trace.t -> Rox_xquery.Compile.compiled -> result
(** Thin wrapper: a fresh default session per call ([Session.create ()]). *)

val answer_default :
  ?trace:Rox_joingraph.Trace.t -> Rox_xquery.Compile.compiled -> int array * result

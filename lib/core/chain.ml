open Rox_joingraph
module Sink = Rox_telemetry.Sink
module Tm = Rox_telemetry.Metrics

type trigger = [ `Stopping_condition | `Exhausted | `Single_edge ]

type result = {
  edges : Edge.t list;
  trigger : trigger;
}

type seg = {
  s_edges : Edge.t list;  (* forward order *)
  s_edge_ids : int list;
  s_stop : int;
  s_input : Rox_util.Column.t;  (* I(p): sampled tuples flowing through the chain *)
  s_cost : float;
  s_sf : float;
  s_label : string;
}

let max_paths = 32

let seg_to_trace graph s =
  let via =
    match s.s_edges with
    | [] -> "-"
    | e :: _ -> Vertex.label (Graph.vertex graph e.Edge.v1) ^ "~" ^ Vertex.label (Graph.vertex graph e.Edge.v2)
  in
  { Trace.label = s.s_label; via; cost = s.s_cost; sf = s.s_sf }

(* Line 26: executing pi first provably helps: cost(pi) + sf(pi)*cost(pj) <= cost(pj). *)
let dominates_all paths pi =
  List.for_all
    (fun pj ->
      pj == pi || pi.s_cost +. (pi.s_sf *. pj.s_cost) <= pj.s_cost)
    paths

(* Line 34: the symmetric tie-break when exploration is exhausted. *)
let best_symmetric paths =
  let wins pi pj =
    pi.s_cost +. (pi.s_sf *. pj.s_cost) <= pj.s_cost +. (pj.s_sf *. pi.s_cost)
  in
  match List.find_opt (fun pi -> List.for_all (fun pj -> pj == pi || wins pi pj) paths) paths with
  | Some p -> Some p
  | None ->
    (* The pairwise relation is a tournament and can cycle; fall back to the
       cheapest segment. *)
    (match paths with
     | [] -> None
     | first :: rest ->
       Some (List.fold_left (fun acc p -> if p.s_cost < acc.s_cost then p else acc) first rest))

let run ?grow_cutoff ?(max_rounds = 12) state =
  let session = State.session state in
  let grow_cutoff =
    match grow_cutoff with
    | Some g -> g
    | None -> (Session.config session).Session.grow_cutoff
  in
  let graph = State.graph state in
  let runtime = State.runtime state in
  match State.min_weight_edge state with
  | None -> None
  | Some e ->
    let branching v = List.length (Runtime.unexecuted_incident runtime v) > 1 in
    if not (branching e.Edge.v1 || branching e.Edge.v2) then
      Some { edges = [ e ]; trigger = `Single_edge }
    else begin
      (* Source: the endpoint with the smaller cardinality that has a
         sample to start the chain from. *)
      let cardinality v = Option.value ~default:infinity (State.card state v) in
      let candidates =
        List.filter
          (fun v -> State.sample state v <> None)
          [ e.Edge.v1; e.Edge.v2 ]
      in
      match candidates with
      | [] -> Some { edges = [ e ]; trigger = `Single_edge }
      | candidates ->
        let source =
          List.fold_left
            (fun acc v -> if cardinality v < cardinality acc then v else acc)
            (List.hd candidates) (List.tl candidates)
        in
        Trace.emit (State.trace state)
          (Trace.Chain_started { source; min_edge = e.Edge.id });
        let tau = State.tau state in
        let source_card = cardinality source in
        let initial =
          {
            s_edges = [];
            s_edge_ids = [];
            s_stop = source;
            s_input = Option.get (State.sample state source);
            s_cost = 0.0;
            s_sf = 1.0;
            s_label = "p0";
          }
        in
        let next_label = ref 0 in
        let fresh_label () =
          incr next_label;
          Printf.sprintf "p%d" !next_label
        in
        let cutoff = ref tau in
        let paths = ref [ initial ] in
        let finished = ref None in
        let round = ref 0 in
        let tel = Session.telemetry session in
        while !finished = None && !round < max_rounds do
          Sink.with_span tel "chain_round"
            ~attrs:(fun () -> [ ("round", string_of_int !round) ])
            ~record:(fun m dur ->
              Tm.observe m.Tm.chain_round_ns dur;
              Tm.incr m.Tm.chain_rounds)
            (fun () ->
          Session.check_deadline session;
          incr round;
          if grow_cutoff && !round > 1 then cutoff := !cutoff + tau;
          let extended = ref false in
          (* Gather the round's competitor set first: [cutoff] is fixed for
             the whole round (it only grows at round start), so every
             frontier probe is known up front and the batch can race them
             concurrently on the session pool. The flattened probe order is
             exactly the order the sequential per-probe loop used, and
             [sampled_cutoff_batch] keeps all session effects in that
             order, so segment labels, costs and the trace are unchanged. *)
          let jobs =
            List.map
              (fun p ->
                let frontier =
                  Runtime.unexecuted_incident runtime p.s_stop
                  |> List.filter (fun e' -> not (List.mem e'.Edge.id p.s_edge_ids))
                in
                if frontier <> [] then extended := true;
                (p, frontier))
              !paths
          in
          let probes =
            List.concat_map
              (fun (p, frontier) ->
                List.map
                  (fun e' ->
                    let outer =
                      if e'.Edge.v1 = p.s_stop then Exec.From_v1 else Exec.From_v2
                    in
                    { State.p_edge = e';
                      p_outer = outer;
                      p_sample = p.s_input;
                      p_inner = Runtime.table runtime (Edge.other_end e' p.s_stop);
                      p_limit = !cutoff })
                  frontier)
              jobs
          in
          let cuts = ref (State.sampled_cutoff_batch state probes) in
          let next_cut () =
            match !cuts with
            | c :: rest ->
              cuts := rest;
              c
            | [] -> assert false
          in
          let next =
            List.concat_map
              (fun (p, frontier) ->
                if frontier = [] then [ p ]
                else
                  List.mapi
                    (fun branch_idx e' ->
                      let v' = Edge.other_end e' p.s_stop in
                      let cut = next_cut () in
                      let est = cut.Rox_algebra.Cutoff.est in
                      {
                        s_edges = p.s_edges @ [ e' ];
                        s_edge_ids = e'.Edge.id :: p.s_edge_ids;
                        s_stop = v';
                        s_input = Rox_util.Column.unsafe_of_array_detect cut.Rox_algebra.Cutoff.out;
                        s_cost = p.s_cost +. (est *. source_card /. float_of_int tau);
                        s_sf = est /. float_of_int tau;
                        (* The first extension continues the segment's name;
                           additional branches become new segments (Fig 2.2:
                           p3 forks into p3 and p4). Children of the initial
                           empty segment are all new. *)
                        s_label =
                          (if p.s_edges = [] || branch_idx > 0 then fresh_label ()
                           else p.s_label);
                      })
                    frontier)
              jobs
          in
          let next =
            if List.length next > max_paths then begin
              (* Keep the cheapest segments; exploration stays bounded. *)
              List.sort (fun a b -> compare a.s_cost b.s_cost) next
              |> List.filteri (fun i _ -> i < max_paths)
            end
            else next
          in
          paths := next;
          Trace.emit (State.trace state)
            (Trace.Chain_round
               { round = !round; cutoff = !cutoff; paths = List.map (seg_to_trace graph) next });
          let live = List.filter (fun p -> p.s_edges <> []) !paths in
          (match List.find_opt (dominates_all live) live with
           | Some winner -> finished := Some (winner, `Stopping_condition)
           | None -> if not !extended then
               match best_symmetric live with
               | Some winner -> finished := Some (winner, `Exhausted)
               | None -> finished := None))
        done;
        let winner, trigger =
          match !finished with
          | Some (w, trig) -> (w, (trig :> trigger))
          | None ->
            (* Round budget exhausted: settle with the symmetric rule. *)
            (match best_symmetric (List.filter (fun p -> p.s_edges <> []) !paths) with
             | Some w -> (w, `Exhausted)
             | None -> ({ initial with s_edges = [ e ] }, `Single_edge))
        in
        Trace.emit (State.trace state)
          (Trace.Chain_chosen
             { edges = List.map (fun e -> e.Edge.id) winner.s_edges; trigger });
        Some { edges = winner.s_edges; trigger }
    end

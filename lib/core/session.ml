open Rox_util
open Rox_storage
open Rox_algebra
open Rox_joingraph

type budgets = {
  max_rows : int;
  deadline_ms : int option;
  max_sampled_rows : int option;
}

let default_budgets =
  { max_rows = 50_000_000; deadline_ms = None; max_sampled_rows = None }

type config = {
  seed : int;
  tau : int;
  use_chain : bool;
  resample : bool;
  grow_cutoff : bool;
  race_operators : bool;
  table_fraction : float option;
  sanitize : bool;
  budgets : budgets;
  client_id : string;
  parallel_parts : int;
}

(* The ONLY place a session consults process-global state: the default
   sanitize mode seeded from ROX_SANITIZE at module init. Every other
   field is an explicit literal. Inside an armed confined region this
   call itself trips RX307 — sessions must be built before entering
   another session's region, never from within one. *)
let default_config () =
  {
    seed = 42;
    tau = 100;
    use_chain = true;
    resample = true;
    grow_cutoff = true;
    race_operators = true;
    table_fraction = None;
    sanitize = Sanitize.default_mode ();
    budgets = default_budgets;
    client_id = "local";
    parallel_parts = 1;
  }

type t = {
  config : config;
  rng : Xoshiro.t;
  trace : Trace.t;
  counter : Cost.counter;
  cache : Rox_cache.Store.t option;
  telemetry : Rox_telemetry.Sink.t;
  (* RX5xx access-log site (kind Confined, -1 when the log was disarmed
     at creation): every [confine] entry records one Write, so the race
     detector proves each session lives and dies on one domain — a
     session reused across domains is RX504, the cross-domain extension
     of RX307. *)
  al_site : int;
  (* The intra-query domain pool: [None] means strictly sequential
     execution (parallel_parts = 1) — no pool is ever spawned on that
     path. [owns_pool] distinguishes a session-private pool (shut down by
     {!release}) from one shared by the server across request sessions. *)
  pool : Pool.t option;
  owns_pool : bool;
  mutable deadline_at : float option;
      (* Absolute wall-clock instant (Unix time) past which the session
         aborts; set when a run is armed, cleared when it unwinds. *)
}

let create ?config ?trace ?cache ?telemetry ?pool () =
  let config = match config with Some c -> c | None -> default_config () in
  let trace =
    match trace with Some t -> t | None -> Trace.create ~enabled:false ()
  in
  let telemetry =
    match telemetry with Some s -> s | None -> Rox_telemetry.Sink.null ()
  in
  let sampling_budget =
    match config.budgets.max_sampled_rows with Some b -> b | None -> max_int
  in
  let pool, owns_pool =
    match pool with
    | Some p -> (Some p, false)
    | None ->
      if config.parallel_parts > 1 then
        (Some (Pool.create ~parts:config.parallel_parts), true)
      else (None, false)
  in
  {
    config;
    rng = Xoshiro.create config.seed;
    trace;
    counter = Cost.new_counter ~sampling_budget ();
    cache;
    telemetry;
    al_site =
      (if Accesslog.armed () then
         Accesslog.site ~name:"core.session" Accesslog.Confined
       else -1);
    pool;
    owns_pool;
    deadline_at = None;
  }

let config t = t.config
let seed t = t.config.seed
let tau t = t.config.tau
let sanitize t = t.config.sanitize
let budgets t = t.config.budgets
let client_id t = t.config.client_id
let rng t = t.rng
let trace t = t.trace
let counter t = t.counter
let cache t = t.cache
let telemetry t = t.telemetry
let metrics t = Rox_telemetry.Sink.metrics t.telemetry
let sampling_meter t = Cost.sampling_meter t.counter
let execution_meter t = Cost.execution_meter t.counter

let arm t =
  t.deadline_at <-
    (match t.config.budgets.deadline_ms with
     | None -> None
     | Some ms -> Some (Unix.gettimeofday () +. (float_of_int ms /. 1000.0)))

let disarm t = t.deadline_at <- None

let check_deadline t =
  match t.deadline_at with
  | None -> ()
  | Some at ->
    let now = Unix.gettimeofday () in
    if now > at then begin
      let budget =
        match t.config.budgets.deadline_ms with Some ms -> ms | None -> 0
      in
      let spent = budget + int_of_float (ceil ((now -. at) *. 1000.0)) in
      raise (Cost.Budget_exceeded { reason = Cost.Deadline; spent; budget })
    end

let confine t f =
  if Accesslog.armed () then Accesslog.record ~site:t.al_site Accesslog.Write;
  arm t;
  Fun.protect
    ~finally:(fun () -> disarm t)
    (fun () -> Sanitize.confine ~sanitize:t.config.sanitize f)

let parallel_parts t = match t.pool with None -> 1 | Some p -> Pool.parts p

let release t =
  if t.owns_pool then match t.pool with Some p -> Pool.shutdown p | None -> ()

(* The pool fork/join with the session's deadline made worker-safe:
   [deadline_at] is mutable single-owner state (RX504 Confined), so the
   guard closes over a caller-side snapshot taken before the fork — no
   worker ever reads the session. The budget abort stays cooperative:
   each task checks once at start, exactly like the sequential loop's
   per-edge {!check_deadline} cadence. *)
let run_tasks t n f =
  match t.pool with
  | None ->
    for i = 0 to n - 1 do
      f ~worker:0 i
    done
  | Some pool ->
    let guard =
      match t.deadline_at with
      | None -> fun () -> ()
      | Some at ->
        let budget =
          match t.config.budgets.deadline_ms with Some ms -> ms | None -> 0
        in
        fun () ->
          let now = Unix.gettimeofday () in
          if now > at then
            raise
              (Cost.Budget_exceeded
                 { reason = Cost.Deadline;
                   spent = budget + int_of_float (ceil ((now -. at) *. 1000.0));
                   budget })
    in
    Pool.run pool n (fun ~worker i ->
        guard ();
        f ~worker i)

(* The seed-splitting rule: concurrent competitors each get a stream
   forked from the session *seed*, never from the live RNG — drawing from
   [t.rng] to seed a worker would advance it and break the
   [--parallel-parts 1] bit-identity. *)
let fork_rng t ~stream = Xoshiro.fork ~seed:t.config.seed ~stream

let table_sampler t =
  match t.config.table_fraction with
  | None -> None
  | Some fraction ->
    (* An isolated stream so approximate-mode draws do not perturb the
       optimizer's sampling decisions. *)
    let rng = Xoshiro.create (t.config.seed lxor 0x5eed) in
    Some (fun _vertex table -> Sampling.sample_fraction rng table fraction)

let runtime_config t =
  {
    Runtime.max_rows = t.config.budgets.max_rows;
    sanitize = t.config.sanitize;
    cache = t.cache;
    table_sampler = table_sampler t;
    telemetry = t.telemetry;
    parallel =
      (match t.pool with
       | None -> None
       | Some pool ->
         Some { Runtime.parts = Pool.parts pool; run_tasks = run_tasks t });
  }

(* The one-shot CLI's flight-recorder hook: rox run / rox profile build a
   record from the finished session exactly the way the server's
   record_request does — same fingerprint rule, same spend/cache-counter
   reads — so a slow CLI query and a slow served query produce
   reconcilable slow-log lines. *)
let flight_record t recorder ~query ~plan ~latency_ns ~status =
  let module R = Rox_telemetry.Recorder in
  let module Tm = Rox_telemetry.Metrics in
  let m = Rox_telemetry.Sink.metrics t.telemetry in
  let c (cnt : Tm.counter) = cnt.Tm.c_value in
  let record =
    {
      R.trace_id = R.next_trace_id recorder;
      fingerprint = String.sub (Digest.to_hex (Digest.string query)) 0 12;
      tenant = t.config.client_id;
      plan_digest = R.plan_digest plan;
      plan_edges = List.length plan;
      latency_ns;
      queue_ns = 0;
      sampling_units = Cost.read t.counter Cost.Sampling;
      execution_units = Cost.read t.counter Cost.Execution;
      cache_hits = c m.Tm.relation_cache_hits + c m.Tm.estimate_cache_hits;
      cache_misses = c m.Tm.relation_cache_misses + c m.Tm.estimate_cache_misses;
      outcome = R.Executed;
      status;
      (* Raw close-order spans are fine for per-edge timings; the
         chronological sort is paid only when the tree is retained. *)
      edge_ns = R.edge_timings_of_spans (Rox_telemetry.Sink.spans t.telemetry);
    }
  in
  (match R.observe recorder record with
   | Some reason -> (
     match Rox_telemetry.Sink.spans_chronological t.telemetry with
     | [] -> ()
     | spans -> R.retain recorder record reason spans)
   | None -> ());
  record

let describe t =
  let b = t.config.budgets in
  Printf.sprintf
    "session client=%s seed=%d tau=%d chain=%b resample=%b grow_cutoff=%b race=%b \
     table_fraction=%s sanitize=%b max_rows=%d deadline_ms=%s \
     max_sampled_rows=%s cache=%b trace=%b telemetry=%b parallel_parts=%d"
    t.config.client_id t.config.seed t.config.tau t.config.use_chain t.config.resample
    t.config.grow_cutoff t.config.race_operators
    (match t.config.table_fraction with
     | None -> "-"
     | Some f -> string_of_float f)
    t.config.sanitize b.max_rows
    (match b.deadline_ms with None -> "-" | Some ms -> string_of_int ms)
    (match b.max_sampled_rows with None -> "-" | Some r -> string_of_int r)
    (t.cache <> None) (Trace.enabled t.trace)
    (Rox_telemetry.Sink.enabled t.telemetry)
    (parallel_parts t)

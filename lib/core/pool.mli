(** Session-owned domain pool for intra-query parallelism.

    One pool of [parts - 1] long-lived worker domains, created once per
    session (or shared across a server's sessions) and reused for every
    partitioned edge kernel and every racing-probe batch — never a
    [Domain.spawn] per edge. [run] is a fork/join: [n] independent tasks
    are pulled off a shared atomic cursor by all [parts] workers, the
    caller participating as worker 0, so a pool of size 1 degenerates to
    the plain sequential loop with no synchronization at all.

    Determinism contract: the pool assigns tasks to workers
    nondeterministically, so tasks must write only their own slots
    (indexed by task id) and the *caller* must fold the slots in task
    order after [run] returns. Session state (RNG, trace, metrics,
    cache, meters) stays caller-only — RX307/RX504 confinement extends
    across the pool: a task touching its session is a race the RX5xx
    detector will flag.

    Failure is deterministic the same way: a task that raises parks its
    exception in its own slot, every other task still runs, and [run]
    re-raises the lowest-index failure.

    The fork/join is bracketed with access-log happens-before tokens
    ([core.pool.spawn]/[fork]/[join]/[exit]) and the batch hand-off is
    recorded under the [core.pool.mutex] lock, so [rox racecheck] can
    prove the hand-off sound instead of taking it on faith. *)

type t

val create : parts:int -> t
(** Spawn [parts - 1] worker domains ([parts = 1] spawns none).
    @raise Invalid_argument when [parts <= 0]. *)

val parts : t -> int

val run : t -> int -> (worker:int -> int -> unit) -> unit
(** [run t n f] executes [f ~worker i] once for every task [i < n] and
    returns when all have finished. [worker] is the executing worker's
    index in [0 .. parts-1] (0 = the calling domain) — use it only to
    pick scratch slots or telemetry lanes, never to vary results.
    Concurrent callers are serialized: one batch in flight at a time.
    Re-raises the lowest-task-index exception after the join. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent; [run] after shutdown
    is [Invalid_argument]. *)

open Rox_joingraph

let edge_weight state (e : Edge.t) =
  let pick_side () =
    let s1 = State.sample state e.Edge.v1 in
    let s2 = State.sample state e.Edge.v2 in
    match (s1, s2) with
    | None, None -> None
    | Some _, None -> Some (Exec.From_v1, e.Edge.v1)
    | None, Some _ -> Some (Exec.From_v2, e.Edge.v2)
    | Some _, Some _ ->
      let c1 = Option.value ~default:infinity (State.card state e.Edge.v1) in
      let c2 = Option.value ~default:infinity (State.card state e.Edge.v2) in
      (* The smaller side yields the more representative sample. *)
      if c1 <= c2 then Some (Exec.From_v1, e.Edge.v1) else Some (Exec.From_v2, e.Edge.v2)
  in
  match pick_side () with
  | None -> None
  | Some (outer, v) ->
    let sample = Option.get (State.sample state v) in
    let card = Option.get (State.card state v) in
    if Rox_util.Column.is_empty sample then Some 0.0
    else begin
      let v' = Edge.other_end e v in
      let inner_table = Runtime.table (State.runtime state) v' in
      let cut =
        State.sampled_cutoff state e ~outer ~sample ~inner_table
          ~limit:(State.tau state)
      in
      Some (card /. float_of_int (Rox_util.Column.length sample) *. cut.Rox_algebra.Cutoff.est)
    end

let reweigh_incident state vertices =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun v ->
      List.iter
        (fun e ->
          if not (Hashtbl.mem seen e.Edge.id) then begin
            Hashtbl.replace seen e.Edge.id ();
            match edge_weight state e with
            | Some w -> State.set_weight state e w
            | None -> ()
          end)
        (Runtime.unexecuted_incident (State.runtime state) v))
    vertices

(** ROX optimizer state: the Join Graph knowledge base of Algorithm 1.

    Wraps the shared execution {!Rox_joingraph.Runtime} with the sampling
    side of ROX: per-vertex random samples S(v) and cardinalities card(v)
    and per-edge weights w(e). Everything mutable a run touches — RNG,
    cost counter, trace, cache — belongs to the owning {!Session}; the
    state only adds the per-graph arrays. *)

open Rox_joingraph

type t

val create : Session.t -> Rox_storage.Engine.t -> Graph.t -> t
(** One state per query run, owned by [session]: the runtime is built from
    {!Session.runtime_config} (max_rows, sanitize mode, cache,
    approximate-mode table sampler), and sampling draws from the session
    RNG and charge the session counter. *)

val session : t -> Session.t
val runtime : t -> Runtime.t
val graph : t -> Graph.t
val engine : t -> Rox_storage.Engine.t
val tau : t -> int
val rng : t -> Rox_util.Xoshiro.t
val counter : t -> Rox_algebra.Cost.counter
val trace : t -> Trace.t

val sample : t -> int -> Rox_util.Column.t option
(** S(v). *)

val card : t -> int -> float option
(** card(v); [None] while unknown. *)

val set_table : t -> int -> Rox_util.Column.t -> unit
(** Install T(v) and refresh S(v) (a fresh τ-sample) and card(v). *)

val refresh_vertex : t -> int -> unit
(** Re-derive S(v) / card(v) from the runtime's current T(v). *)

val init_vertex_from_index : t -> int -> bool
(** Phase-1 initialization (Algorithm 1 lines 1–2): when the vertex is
    index-selectable (root, element, or equality-predicate text/attribute),
    set S(v) and card(v) from an index lookup *without* materializing T(v),
    and return true. The index supplies the count for free; only the
    τ-sample is charged. *)

val weight : t -> Edge.t -> float option
val set_weight : t -> Edge.t -> float -> unit

val min_weight_edge : t -> Edge.t option
(** Un-executed edge of smallest weight (unweighted edges lose against any
    weighted one; among only-unweighted edges, the first). *)

val sampling_meter : t -> Rox_algebra.Cost.meter
val execution_meter : t -> Rox_algebra.Cost.meter

val cache : t -> Rox_cache.Store.t option

val sampled_cutoff :
  t ->
  Edge.t ->
  outer:Exec.direction ->
  sample:Rox_util.Column.t ->
  inner_table:Rox_util.Column.t option ->
  limit:int ->
  Rox_algebra.Cutoff.t
(** The [↓l(exec(e, S, T))] of Algorithms 1 and 2 with the estimate cache
    in front: identical requests (same edge shape, sample contents, inner
    table and limit, on the same engine epoch) replay the cached
    {!Rox_algebra.Cutoff.t} — across chain rounds and across queries —
    and charge no sampling work. Emits a [Trace.Cache_lookup] event per
    consultation; a hit is cross-checked bit-identical under the session's
    sanitize mode. Without a cache this is exactly [Exec.sampled] charged
    to the sampling meter. *)

type probe = {
  p_edge : Edge.t;
  p_outer : Exec.direction;
  p_sample : Rox_util.Column.t;
  p_inner : Rox_util.Column.t option;
  p_limit : int;
}
(** One {!sampled_cutoff} request, reified so a chain round can hand the
    whole competitor set over at once. *)

val sampled_cutoff_batch : t -> probe list -> Rox_algebra.Cutoff.t list
(** {!sampled_cutoff} over the list, racing the probes concurrently on
    the session pool when it has one. All session effects — trace events,
    cache lookups and adds, meter charges (and hence [max_sampled_rows]
    aborts), metrics — happen on the calling domain in probe order, so
    results and effects are independent of pool scheduling; the pool only
    runs the pure [Exec.sampled] misses. With no pool (or a single probe)
    this is exactly the sequential per-probe loop. *)

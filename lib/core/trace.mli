(** Compatibility alias: the trace event log now lives with the Join Graph
    machinery ([Rox_joingraph.Trace]) so the static analysis passes can
    replay traces without depending on the optimizer. *)

include module type of struct include Rox_joingraph.Trace end

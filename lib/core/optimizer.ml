open Rox_joingraph
module Sink = Rox_telemetry.Sink
module Tm = Rox_telemetry.Metrics

type result = {
  state : State.t;
  relation : Relation.t;
  edge_order : int list;
  edge_rows : (int * int) list;
  counter : Rox_algebra.Cost.counter;
}

let phase1 state =
  let graph = State.graph state in
  Array.iter
    (fun (v : Vertex.t) -> ignore (State.init_vertex_from_index state v.Vertex.id : bool))
    (Graph.vertices graph);
  List.iter
    (fun e ->
      match Estimate.edge_weight state e with
      | Some w -> State.set_weight state e w
      | None -> ())
    (Runtime.unexecuted_edges (State.runtime state))

let execute_one state ~order ~rows e =
  let session = State.session state in
  Session.check_deadline session;
  let cfg = Session.config session in
  (* Operator racing (Section 6): sample the applicable zero-investment
     variants and execute with the cheapest. *)
  let step_direction, equi_algo =
    if cfg.Session.race_operators then
      match Race.choose state e with
      | Race.Step_dir d -> (Some d, None)
      | Race.Equi_dir d -> (None, Some (Exec.Algo_index_nl d))
      | Race.Default -> (None, None)
    else (None, None)
  in
  let info =
    Runtime.execute_edge ?step_direction ?equi_algo
      ~meter:(State.execution_meter state) (State.runtime state) e
  in
  incr order;
  rows := (e.Edge.id, info.Runtime.rel_rows) :: !rows;
  if Session.cache session <> None then
    Trace.emit (State.trace state)
      (Trace.Cache_lookup
         { edge = e.Edge.id; store = `Relation; hit = info.Runtime.cache_hit });
  Trace.emit (State.trace state)
    (Trace.Edge_executed
       { edge = e.Edge.id; order = !order; pairs = info.Runtime.pair_count;
         rel_rows = info.Runtime.rel_rows });
  (* Refresh samples/cards of every vertex whose table shrank, then
     re-sample the weights of the un-executed edges incident to the executed
     edge's endpoints (lines 14-19; Fig 3.2: "the weights of other edges are
     unchanged" — they are re-sampled when their own vertices execute). *)
  List.iter (State.refresh_vertex state) info.Runtime.changed;
  if cfg.Session.resample then Estimate.reweigh_incident state [ e.Edge.v1; e.Edge.v2 ]

(* The chosen path segment "is treated as a separate Join Graph, optimized,
   and executed in the most optimal order found" (Section 3.2): execute its
   edges greedily by current weight, which refreshes after each step. *)
let execute_segment state ~order ~rows edges =
  let remaining = ref edges in
  while !remaining <> [] do
    let weight_of e =
      match State.weight state e with Some w -> w | None -> infinity
    in
    let best =
      List.fold_left
        (fun acc e ->
          match acc with
          | None -> Some e
          | Some b -> if weight_of e < weight_of b then Some e else acc)
        None !remaining
    in
    match best with
    | None -> remaining := []
    | Some e ->
      remaining := List.filter (fun e' -> e'.Edge.id <> e.Edge.id) !remaining;
      if not (Runtime.executed (State.runtime state) e) then
        execute_one state ~order ~rows e
  done

let run_graph session engine graph =
  let tel = Session.telemetry session in
  Sink.with_span tel "query"
    ~attrs:(fun () -> [ ("client", Session.client_id session) ])
    ~record:(fun m dur -> Tm.observe m.Tm.query_ns dur)
    (fun () ->
  try
    let r =
  Session.confine session (fun () ->
      let state = State.create session engine graph in
      let cfg = Session.config session in
      phase1 state;
      let order = ref 0 in
      let rows = ref [] in
      let continue = ref true in
      while !continue do
        Session.check_deadline session;
        if Runtime.all_executed (State.runtime state) then continue := false
        else if cfg.Session.use_chain then begin
          match Chain.run state with
          | None -> continue := false
          | Some { Chain.edges; _ } -> execute_segment state ~order ~rows edges
        end
        else begin
          match State.min_weight_edge state with
          | None -> continue := false
          | Some e -> execute_one state ~order ~rows e
        end
      done;
      let relation =
        Runtime.final_relation ~meter:(State.execution_meter state)
          (State.runtime state)
      in
      {
        state;
        relation;
        edge_order = List.rev_map fst !rows;
        edge_rows = List.rev !rows;
        counter = State.counter state;
      })
    in
    if Sink.enabled tel then Tm.incr (Sink.metrics tel).Tm.queries_served;
    r
  with Rox_algebra.Cost.Budget_exceeded _ as exn ->
    if Sink.enabled tel then Tm.incr (Sink.metrics tel).Tm.budget_aborts;
    raise exn)

let run session (compiled : Rox_xquery.Compile.compiled) =
  run_graph session compiled.Rox_xquery.Compile.engine
    compiled.Rox_xquery.Compile.graph

let answer session (compiled : Rox_xquery.Compile.compiled) =
  let result = run session compiled in
  let nodes =
    Session.confine session (fun () ->
        Rox_xquery.Tail.apply ~sanitize:(Session.sanitize session)
          ~meter:(Rox_algebra.Cost.execution_meter result.counter)
          compiled.Rox_xquery.Compile.tail result.relation)
  in
  (nodes, result)

let run_default ?trace compiled = run (Session.create ?trace ()) compiled

let answer_default ?trace compiled = answer (Session.create ?trace ()) compiled

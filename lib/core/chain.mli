(** Chain sampling — Algorithm 2.

    Starting from the smallest-weight un-executed edge, explore the
    branching path segments around its cheaper endpoint breadth-first,
    piping each segment's sampled output into the sampling of its next
    edge. Stop as soon as one segment pi dominates every other pj under
    the stopping condition

      cost(pi) + sf(pi)·cost(pj) ≤ cost(pj)

    (executing pi first can only help pj), and return pi for execution;
    when the neighborhood is exhausted first, pick the winner of the
    symmetric comparison (line 34). The per-round cut-off limit grows by τ
    each round to dilute front-bias accumulation (Section 3.1). *)

type trigger = [ `Stopping_condition | `Exhausted | `Single_edge ]

type result = {
  edges : Rox_joingraph.Edge.t list;  (** segment in discovery order *)
  trigger : trigger;
}

val run : ?grow_cutoff:bool -> ?max_rounds:int -> State.t -> result option
(** [None] when no un-executed edges remain. [grow_cutoff] defaults to the
    owning session's config; [false] freezes the cut-off at τ (the
    ablation of the front-bias mitigation); [max_rounds] bounds
    exploration (default 12). Checks the session deadline once per round
    ({!Session.check_deadline}). *)

open Rox_algebra
open Rox_joingraph

type choice =
  | Step_dir of Exec.direction
  | Equi_dir of Exec.direction
  | Default

(* Sampled work of one variant, extrapolated to the full outer table. *)
let variant_cost state e ~outer =
  let v = match outer with Exec.From_v1 -> e.Edge.v1 | Exec.From_v2 -> e.Edge.v2 in
  match (State.sample state v, State.card state v) with
  | Some _, Some card when card <= 0.0 ->
    (* Executing from an empty side is free. *)
    Some 0.0
  | Some sample, Some card when Rox_util.Column.length sample > 0 ->
    let scratch = Cost.new_counter () in
    let inner_table = Runtime.table (State.runtime state) (Edge.other_end e v) in
    let tel = Session.telemetry (State.session state) in
    Rox_telemetry.Sink.with_span tel "race_probe"
      ~attrs:(fun () -> [ ("edge", string_of_int e.Edge.id) ])
      ~record:(fun m dur ->
        Rox_telemetry.Metrics.observe m.Rox_telemetry.Metrics.sampled_run_ns dur;
        Rox_telemetry.Metrics.incr ~by:dur m.Rox_telemetry.Metrics.sampling_time_ns)
      (fun () ->
        ignore
          (Exec.sampled
             ~meter:(Cost.sampling_meter scratch)
             (State.engine state) (State.graph state) e ~outer ~sample ~inner_table
             ~limit:(State.tau state)
            : Cutoff.t));
    let spent = Cost.total scratch in
    (* The probing itself is real sampling work. *)
    Cost.charge (Some (State.sampling_meter state)) spent;
    Some (float_of_int spent *. card /. float_of_int (Rox_util.Column.length sample))
  | _ -> None

let choose state (e : Edge.t) =
  let candidates =
    match e.Edge.op with
    | Edge.Step _ -> [ (Exec.From_v1, true); (Exec.From_v2, true) ]
    | Edge.Equijoin ->
      (* Only race directions whose inner endpoint has a value-index access
         path (the zero-investment requirement). *)
      let value_vertex v =
        match (Graph.vertex (State.graph state) v).Vertex.annot with
        | Vertex.Text _ | Vertex.Attr _ -> true
        | Vertex.Root | Vertex.Element _ -> false
      in
      [ (Exec.From_v1, value_vertex e.Edge.v2); (Exec.From_v2, value_vertex e.Edge.v1) ]
  in
  let scored =
    List.filter_map
      (fun (dir, applicable) ->
        if applicable then
          Option.map (fun cost -> (dir, cost)) (variant_cost state e ~outer:dir)
        else None)
      candidates
  in
  match scored with
  | [] -> Default
  | (dir0, cost0) :: rest ->
    let best_dir, _ =
      List.fold_left
        (fun (bd, bc) (d, c) -> if c < bc then (d, c) else (bd, bc))
        (dir0, cost0) rest
    in
    (match e.Edge.op with
     | Edge.Step _ -> Step_dir best_dir
     | Edge.Equijoin -> Equi_dir best_dir)

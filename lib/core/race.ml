open Rox_algebra
open Rox_joingraph

type choice =
  | Step_dir of Exec.direction
  | Equi_dir of Exec.direction
  | Default

(* Sampled work of one variant, extrapolated to the full outer table. *)
let variant_cost state e ~outer =
  let v = match outer with Exec.From_v1 -> e.Edge.v1 | Exec.From_v2 -> e.Edge.v2 in
  match (State.sample state v, State.card state v) with
  | Some _, Some card when card <= 0.0 ->
    (* Executing from an empty side is free. *)
    Some 0.0
  | Some sample, Some card when Rox_util.Column.length sample > 0 ->
    let scratch = Cost.new_counter () in
    let inner_table = Runtime.table (State.runtime state) (Edge.other_end e v) in
    let tel = Session.telemetry (State.session state) in
    Rox_telemetry.Sink.with_span tel "race_probe"
      ~attrs:(fun () -> [ ("edge", string_of_int e.Edge.id) ])
      ~record:(fun m dur ->
        Rox_telemetry.Metrics.observe m.Rox_telemetry.Metrics.sampled_run_ns dur;
        Rox_telemetry.Metrics.incr ~by:dur m.Rox_telemetry.Metrics.sampling_time_ns)
      (fun () ->
        ignore
          (Exec.sampled
             ~meter:(Cost.sampling_meter scratch)
             (State.engine state) (State.graph state) e ~outer ~sample ~inner_table
             ~limit:(State.tau state)
            : Cutoff.t));
    let spent = Cost.total scratch in
    (* The probing itself is real sampling work. *)
    Cost.charge (Some (State.sampling_meter state)) spent;
    Some (float_of_int spent *. card /. float_of_int (Rox_util.Column.length sample))
  | _ -> None

(* Concurrent competitors: the applicable directions' sampled probes run
   as one fork/join on the session pool. [Exec.sampled] is pure, so each
   task only fills its own scratch counter and timing slots; the caller
   then replays the accounting — sampling-meter charges, metrics, one
   closed task span per competitor — in candidate order, making scores
   (and hence the chosen variant) independent of pool scheduling and
   bit-identical to the sequential path. *)
let scored_concurrent state (e : Edge.t) session candidates =
  let classified =
    List.filter_map
      (fun (dir, applicable) ->
        if not applicable then None
        else
          let v =
            match dir with Exec.From_v1 -> e.Edge.v1 | Exec.From_v2 -> e.Edge.v2
          in
          match (State.sample state v, State.card state v) with
          | Some _, Some card when card <= 0.0 -> Some (dir, `Free)
          | Some sample, Some card when Rox_util.Column.length sample > 0 ->
            Some
              ( dir,
                `Probe
                  (sample, card,
                   Runtime.table (State.runtime state) (Edge.other_end e v)) )
          | _ -> None)
      candidates
  in
  let probes =
    List.filter_map
      (function
        | dir, `Probe (sample, card, inner) -> Some (dir, sample, card, inner)
        | _, `Free -> None)
      classified
  in
  let parr = Array.of_list probes in
  let n = Array.length parr in
  let scratch = Array.init n (fun _ -> Cost.new_counter ()) in
  let starts = Array.make n 0L in
  let durs = Array.make n 0L in
  let lanes = Array.make n 1 in
  let engine = State.engine state in
  let graph = State.graph state in
  let tau = State.tau state in
  Session.run_tasks session n (fun ~worker k ->
      let dir, sample, _, inner_table = parr.(k) in
      let t0 = Rox_telemetry.Clock.now_ns () in
      ignore
        (Exec.sampled
           ~meter:(Cost.sampling_meter scratch.(k))
           engine graph e ~outer:dir ~sample ~inner_table ~limit:tau
          : Cutoff.t);
      lanes.(k) <- worker + 1;
      starts.(k) <- t0;
      durs.(k) <- Int64.sub (Rox_telemetry.Clock.now_ns ()) t0);
  let tel = Session.telemetry session in
  let next = ref 0 in
  List.map
    (fun (dir, cls) ->
      match cls with
      | `Free -> (dir, 0.0)
      | `Probe (sample, card, _) ->
        let k = !next in
        incr next;
        if Rox_telemetry.Sink.enabled tel then begin
          let m = Rox_telemetry.Sink.metrics tel in
          let dur = Int64.to_int durs.(k) in
          Rox_telemetry.Metrics.observe m.Rox_telemetry.Metrics.sampled_run_ns dur;
          Rox_telemetry.Metrics.incr ~by:dur
            m.Rox_telemetry.Metrics.sampling_time_ns;
          Rox_telemetry.Sink.add_task_span tel ~lane:lanes.(k)
            ~start_ns:starts.(k) ~dur_ns:durs.(k)
            ~attrs:[ ("edge", string_of_int e.Edge.id) ]
            "race_probe"
        end;
        let spent = Cost.total scratch.(k) in
        Cost.charge (Some (State.sampling_meter state)) spent;
        (dir, float_of_int spent *. card /. float_of_int (Rox_util.Column.length sample)))
    classified

let choose state (e : Edge.t) =
  let candidates =
    match e.Edge.op with
    | Edge.Step _ -> [ (Exec.From_v1, true); (Exec.From_v2, true) ]
    | Edge.Equijoin ->
      (* Only race directions whose inner endpoint has a value-index access
         path (the zero-investment requirement). *)
      let value_vertex v =
        match (Graph.vertex (State.graph state) v).Vertex.annot with
        | Vertex.Text _ | Vertex.Attr _ -> true
        | Vertex.Root | Vertex.Element _ -> false
      in
      [ (Exec.From_v1, value_vertex e.Edge.v2); (Exec.From_v2, value_vertex e.Edge.v1) ]
  in
  let session = State.session state in
  let scored =
    if Session.parallel_parts session > 1 then
      scored_concurrent state e session candidates
    else
      List.filter_map
        (fun (dir, applicable) ->
          if applicable then
            Option.map (fun cost -> (dir, cost)) (variant_cost state e ~outer:dir)
          else None)
        candidates
  in
  match scored with
  | [] -> Default
  | (dir0, cost0) :: rest ->
    let best_dir, _ =
      List.fold_left
        (fun (bd, bc) (d, c) -> if c < bc then (d, c) else (bd, bc))
        (dir0, cost0) rest
    in
    (match e.Edge.op with
     | Edge.Step _ -> Step_dir best_dir
     | Edge.Equijoin -> Equi_dir best_dir)

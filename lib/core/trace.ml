(* The trace event log lives with the Join Graph machinery
   ([Rox_joingraph.Trace]) so the static analysis passes can replay it
   without depending on the optimizer; this alias keeps the historical
   [Rox_core.Trace] path working. *)
include Rox_joingraph.Trace

open Rox_util

(* A batch is one fork/join: [n] independent tasks pulled off a shared
   atomic cursor by [nparts] workers (the caller is worker 0). Per-task
   exception slots keep failure deterministic: distinct tasks write
   distinct slots, and the caller re-raises the lowest-index failure
   regardless of which domain hit it first. *)
type batch = {
  n : int;
  f : worker:int -> int -> unit;
  cursor : int Atomic.t;
  exns : exn option array;
  mutable remaining : int;  (* pool workers yet to finish this batch *)
}

type t = {
  nparts : int;
  mutex : Mutex.t;
  cond : Condition.t;       (* workers: a new batch or shutdown *)
  done_cond : Condition.t;  (* caller: pool workers drained the batch *)
  (* Written by the caller under [mutex]; read by workers under [mutex]. *)
  mutable batch : batch option;
  mutable generation : int;
  mutable stopping : bool;
  (* Serializes concurrent [run] callers (serve workers share one pool):
     one batch in flight at a time, correctness over batch interleaving. *)
  admission : Mutex.t;
  mutable domains : unit Domain.t array;
  (* RX5xx instrumentation: ids are -1 / no-ops when the log is disarmed. *)
  al_lock : int;
  al_site : int;
  hb_spawn : int;
  hb_fork : int;
  hb_join : int;
  hb_exit : int;
}

let parts t = t.nparts

let drain b ~worker =
  let continue_ = ref true in
  while !continue_ do
    let i = Atomic.fetch_and_add b.cursor 1 in
    if i >= b.n then continue_ := false
    else
      match b.f ~worker i with
      | () -> ()
      | exception e -> b.exns.(i) <- Some e
  done

let worker_loop t w =
  Accesslog.hb_acquire t.hb_spawn;
  let my_gen = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock t.mutex;
    let b =
      Accesslog.with_lock t.al_lock (fun () ->
          while (not t.stopping) && t.generation = !my_gen do
            Condition.wait t.cond t.mutex
          done;
          if t.stopping then None
          else begin
            my_gen := t.generation;
            Accesslog.record ~site:t.al_site Accesslog.Read;
            t.batch
          end)
    in
    Mutex.unlock t.mutex;
    match b with
    | None -> continue_ := false
    | Some b ->
      Accesslog.hb_acquire t.hb_fork;
      drain b ~worker:w;
      Accesslog.hb_publish t.hb_join;
      Mutex.lock t.mutex;
      Accesslog.with_lock t.al_lock (fun () ->
          b.remaining <- b.remaining - 1;
          if b.remaining = 0 then Condition.broadcast t.done_cond);
      Mutex.unlock t.mutex
  done;
  Accesslog.hb_publish t.hb_exit

let create ~parts =
  if parts <= 0 then invalid_arg "Pool.create: parts must be positive";
  let armed = Accesslog.armed () in
  let t =
    {
      nparts = parts;
      mutex = Mutex.create ();
      cond = Condition.create ();
      done_cond = Condition.create ();
      batch = None;
      generation = 0;
      stopping = false;
      admission = Mutex.create ();
      domains = [||];
      al_lock = (if armed then Accesslog.lock ~name:"core.pool.mutex" else -1);
      al_site =
        (if armed then Accesslog.site ~name:"core.pool.batch" Accesslog.Shared
         else -1);
      hb_spawn = (if armed then Accesslog.hb_token ~name:"core.pool.spawn" else -1);
      hb_fork = (if armed then Accesslog.hb_token ~name:"core.pool.fork" else -1);
      hb_join = (if armed then Accesslog.hb_token ~name:"core.pool.join" else -1);
      hb_exit = (if armed then Accesslog.hb_token ~name:"core.pool.exit" else -1);
    }
  in
  (* Publish before spawn: everything built so far happens-before every
     worker's first read of the pool record. *)
  Accesslog.hb_publish t.hb_spawn;
  t.domains <-
    Array.init (parts - 1) (fun w -> Domain.spawn (fun () -> worker_loop t (w + 1)));
  t

let run t n f =
  if n < 0 then invalid_arg "Pool.run: negative task count";
  if n = 0 then ()
  else if t.nparts = 1 || n = 1 then
    for i = 0 to n - 1 do
      f ~worker:0 i
    done
  else begin
    Mutex.lock t.admission;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.admission)
      (fun () ->
        if t.stopping then invalid_arg "Pool.run: pool is shut down";
        let b =
          { n; f; cursor = Atomic.make 0; exns = Array.make n None;
            remaining = t.nparts - 1 }
        in
        Accesslog.hb_publish t.hb_fork;
        Mutex.lock t.mutex;
        Accesslog.with_lock t.al_lock (fun () ->
            Accesslog.record ~site:t.al_site Accesslog.Write;
            t.batch <- Some b;
            t.generation <- t.generation + 1;
            Condition.broadcast t.cond);
        Mutex.unlock t.mutex;
        drain b ~worker:0;
        Mutex.lock t.mutex;
        Accesslog.with_lock t.al_lock (fun () ->
            while b.remaining > 0 do
              Condition.wait t.done_cond t.mutex
            done;
            t.batch <- None);
        Mutex.unlock t.mutex;
        Accesslog.hb_acquire t.hb_join;
        Array.iter (function None -> () | Some e -> raise e) b.exns)
  end

let shutdown t =
  Mutex.lock t.admission;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.admission)
    (fun () ->
      if not t.stopping then begin
        Mutex.lock t.mutex;
        t.stopping <- true;
        Condition.broadcast t.cond;
        Mutex.unlock t.mutex;
        Array.iter Domain.join t.domains;
        Accesslog.hb_acquire t.hb_exit
      end)

open Rox_util
open Rox_storage
open Rox_algebra
open Rox_joingraph
module Sink = Rox_telemetry.Sink
module Tm = Rox_telemetry.Metrics

type t = {
  session : Session.t;
  runtime : Runtime.t;
  samples : Column.t option array;
  cards : float option array;
  weights : float option array;
}

let create session engine graph =
  {
    session;
    runtime = Runtime.create ~config:(Session.runtime_config session) engine graph;
    samples = Array.make (Graph.vertex_count graph) None;
    cards = Array.make (Graph.vertex_count graph) None;
    weights = Array.make (Graph.edge_count graph) None;
  }

let session t = t.session
let runtime t = t.runtime
let graph t = Runtime.graph t.runtime
let engine t = Runtime.engine t.runtime
let tau t = Session.tau t.session
let rng t = Session.rng t.session
let counter t = Session.counter t.session
let trace t = Session.trace t.session
let sample t v = t.samples.(v)
let card t v = t.cards.(v)
let cache t = Session.cache t.session
let sampling_meter t = Session.sampling_meter t.session
let execution_meter t = Session.execution_meter t.session

(* --- cut-off sampled execution, estimate cache in front ---------------- *)

let est_key t (e : Edge.t) ~outer ~sample ~inner_table ~limit store =
  let graph = Runtime.graph t.runtime in
  let vdesc v = Vertex.fingerprint_label (Graph.vertex graph v) in
  Rox_cache.Fingerprint.make
    ~epoch:(Rox_cache.Store.epoch store)
    [
      "est";
      (match e.Edge.op with
       | Edge.Step axis -> "step:" ^ Axis.short_label axis
       | Edge.Equijoin -> "eq");
      (match outer with Exec.From_v1 -> "1" | Exec.From_v2 -> "2");
      vdesc e.Edge.v1;
      vdesc e.Edge.v2;
      Rox_cache.Fingerprint.column sample;
      Rox_cache.Fingerprint.option_column inner_table;
      string_of_int limit;
    ]

let est_note_lookup t hit =
  let tel = Session.telemetry t.session in
  if Sink.enabled tel then begin
    let m = Sink.metrics tel in
    Tm.incr (if hit then m.Tm.estimate_cache_hits else m.Tm.estimate_cache_misses)
  end

(* A hit under the sanitizer is cross-checked bit-identical against a
   fresh (uncharged) execution of the same sampled operator. *)
let est_check_hit t (e : Edge.t) ~run (cut : Cutoff.t) =
  if Session.sanitize t.session then begin
    let op = Printf.sprintf "State.sampled_cutoff(e%d)" e.Edge.id in
    let fresh = run None in
    Sanitize.check_identical ~op ~what:"sampled output"
      cut.Cutoff.out fresh.Cutoff.out;
    if
      cut.Cutoff.est <> fresh.Cutoff.est
      || cut.Cutoff.produced <> fresh.Cutoff.produced
      || cut.Cutoff.consumed_outer
         <> fresh.Cutoff.consumed_outer
      || cut.Cutoff.completed <> fresh.Cutoff.completed
    then
      Sanitize.fail ~op
        ~contract:Sanitize.Cache_consistent
        (Printf.sprintf "cached est %g/produced %d, fresh est %g/produced %d"
           cut.Cutoff.est cut.Cutoff.produced
           fresh.Cutoff.est fresh.Cutoff.produced)
  end

(* Cut-off sampled execution with the cross-query estimate cache in front.
   A sampled run is a pure function of (edge shape, direction, outer
   sample, inner table, limit), so the full Cutoff.t — estimate, sampled
   output, consumed fraction — can be replayed from cache; a hit skips the
   physical sampled operator and its sampling-meter charges. Under the
   sanitizer every hit is cross-checked bit-identical against a fresh
   (uncharged) execution. *)
let sampled_cutoff t (e : Edge.t) ~outer ~sample ~inner_table ~limit =
  let engine = Runtime.engine t.runtime in
  let graph = Runtime.graph t.runtime in
  let tel = Session.telemetry t.session in
  let run meter = Exec.sampled ?meter engine graph e ~outer ~sample ~inner_table ~limit in
  (* Charged (non-sanitize-replay) sampled runs are spanned and feed the
     sampling wall-clock bucket — the numerator of the Figure 8 overhead. *)
  let run_charged () =
    Sink.with_span tel "exec_sampled"
      ~attrs:(fun () -> [ ("edge", string_of_int e.Edge.id) ])
      ~record:(fun m dur ->
        Tm.observe m.Tm.sampled_run_ns dur;
        Tm.incr ~by:dur m.Tm.sampling_time_ns)
      (fun () -> run (Some (sampling_meter t)))
  in
  match Session.cache t.session with
  | None -> run_charged ()
  | Some store ->
    let key = est_key t e ~outer ~sample ~inner_table ~limit store in
    let estimates = Rox_cache.Store.estimates store in
    (match
       Rox_cache.Estimate_cache.find ~sanitize:(Session.sanitize t.session)
         estimates key
     with
     | Some cut ->
       est_note_lookup t true;
       Trace.emit (trace t)
         (Trace.Cache_lookup { edge = e.Edge.id; store = `Estimate; hit = true });
       est_check_hit t e ~run cut;
       cut
     | None ->
       est_note_lookup t false;
       Trace.emit (trace t)
         (Trace.Cache_lookup { edge = e.Edge.id; store = `Estimate; hit = false });
       let t0 = Rox_telemetry.Clock.now_ns () in
       let cut = run_charged () in
       let cost = Rox_telemetry.Clock.elapsed_ns t0 in
       Rox_cache.Estimate_cache.add ~cost estimates key cut;
       cut)

type probe = {
  p_edge : Edge.t;
  p_outer : Exec.direction;
  p_sample : Column.t;
  p_inner : Column.t option;
  p_limit : int;
}

let sampled_cutoff_p t p =
  sampled_cutoff t p.p_edge ~outer:p.p_outer ~sample:p.p_sample
    ~inner_table:p.p_inner ~limit:p.p_limit

(* One chain round's competitors, raced concurrently on the session pool.

   Three phases keep every session effect on the calling domain and in
   probe order, so the result — and the trace, meter charges, metrics and
   cache contents — is a function of the probe list alone, independent of
   pool scheduling:

   1. caller: estimate-cache lookups, trace events and hit cross-checks,
      probe by probe (exactly the sequential hit path);
   2. pool: the misses run concurrently — [Exec.sampled] is pure (no RNG,
      no session state), each task writing only its own result, scratch
      counter and timing slots;
   3. caller: merge in probe order — sampling-meter charges (so a
      [max_sampled_rows] abort fires at the same probe as sequentially),
      metrics, one closed task span per probe, cache adds.

   With no pool (or a single probe) this is exactly the sequential
   [sampled_cutoff] loop, effect for effect. *)
let sampled_cutoff_batch t probes =
  if List.length probes <= 1 || Session.parallel_parts t.session <= 1 then
    List.map (sampled_cutoff_p t) probes
  else begin
    let engine = Runtime.engine t.runtime in
    let graph = Runtime.graph t.runtime in
    let tel = Session.telemetry t.session in
    let arr = Array.of_list probes in
    let n = Array.length arr in
    let run p meter =
      Exec.sampled ?meter engine graph p.p_edge ~outer:p.p_outer
        ~sample:p.p_sample ~inner_table:p.p_inner ~limit:p.p_limit
    in
    let results : Cutoff.t option array = Array.make n None in
    let keys = Array.make n None in
    (match Session.cache t.session with
     | None -> ()
     | Some store ->
       let estimates = Rox_cache.Store.estimates store in
       Array.iteri
         (fun i p ->
           let key =
             est_key t p.p_edge ~outer:p.p_outer ~sample:p.p_sample
               ~inner_table:p.p_inner ~limit:p.p_limit store
           in
           keys.(i) <- Some (key, estimates);
           match
             Rox_cache.Estimate_cache.find
               ~sanitize:(Session.sanitize t.session) estimates key
           with
           | Some cut ->
             est_note_lookup t true;
             Trace.emit (trace t)
               (Trace.Cache_lookup
                  { edge = p.p_edge.Edge.id; store = `Estimate; hit = true });
             est_check_hit t p.p_edge ~run:(run p) cut;
             results.(i) <- Some cut
           | None ->
             est_note_lookup t false;
             Trace.emit (trace t)
               (Trace.Cache_lookup
                  { edge = p.p_edge.Edge.id; store = `Estimate; hit = false }))
         arr);
    let miss = ref [] in
    for i = n - 1 downto 0 do
      if results.(i) = None then miss := i :: !miss
    done;
    let miss = Array.of_list !miss in
    let m = Array.length miss in
    let scratch = Array.init m (fun _ -> Cost.new_counter ()) in
    let starts = Array.make m 0L in
    let durs = Array.make m 0L in
    let lanes = Array.make m 1 in
    let outs = Array.make m None in
    Session.run_tasks t.session m (fun ~worker k ->
        let t0 = Rox_telemetry.Clock.now_ns () in
        let cut = run arr.(miss.(k)) (Some (Cost.sampling_meter scratch.(k))) in
        lanes.(k) <- worker + 1;
        starts.(k) <- t0;
        durs.(k) <- Int64.sub (Rox_telemetry.Clock.now_ns ()) t0;
        outs.(k) <- Some cut);
    Array.iteri
      (fun k i ->
        let cut = match outs.(k) with Some c -> c | None -> assert false in
        Cost.charge (Some (sampling_meter t)) (Cost.total scratch.(k));
        let dur = Int64.to_int durs.(k) in
        if Sink.enabled tel then begin
          let met = Sink.metrics tel in
          Tm.observe met.Tm.sampled_run_ns dur;
          Tm.incr ~by:dur met.Tm.sampling_time_ns;
          Sink.add_task_span tel ~lane:lanes.(k) ~start_ns:starts.(k)
            ~dur_ns:durs.(k)
            ~attrs:[ ("edge", string_of_int arr.(i).p_edge.Edge.id) ]
            "exec_sampled"
        end;
        (match keys.(i) with
         | Some (key, estimates) ->
           Rox_cache.Estimate_cache.add ~cost:dur estimates key cut
         | None -> ());
        results.(i) <- Some cut)
      miss;
    Array.to_list
      (Array.map (function Some c -> c | None -> assert false) results)
  end

let set_sample_from t v table =
  let s = Sampling.sample (rng t) table (tau t) in
  (* Drawing the sample touches |s| tuples. *)
  Cost.charge (Some (sampling_meter t)) (Column.length s);
  t.samples.(v) <- Some s;
  t.cards.(v) <- Some (float_of_int (Column.length table))

let set_table t v table =
  (* Runtime tables are refreshed by Runtime.execute_edge itself; this
     entry point is for the rare direct installs (tests). *)
  ignore (Runtime.ensure_table t.runtime v : Column.t);
  set_sample_from t v table

let refresh_vertex t v =
  match Runtime.table t.runtime v with
  | Some table -> set_sample_from t v table
  | None -> ()

let init_vertex_from_index t v =
  let vertex = Graph.vertex (graph t) v in
  if Exec.can_index_init vertex then begin
    let domain = Exec.vertex_domain (engine t) vertex in
    set_sample_from t v domain;
    Trace.emit (trace t) (Trace.Vertex_initialized { vertex = v; card = Column.length domain });
    true
  end
  else false

let weight t (e : Edge.t) = t.weights.(e.Edge.id)

let set_weight t (e : Edge.t) w =
  t.weights.(e.Edge.id) <- Some w;
  Trace.emit (trace t) (Trace.Edge_weighted { edge = e.Edge.id; weight = w })

let min_weight_edge t =
  let best = ref None in
  List.iter
    (fun e ->
      let w = match t.weights.(e.Edge.id) with Some w -> w | None -> infinity in
      match !best with
      | None -> best := Some (e, w)
      | Some (_, bw) -> if w < bw then best := Some (e, w))
    (Runtime.unexecuted_edges t.runtime);
  Option.map fst !best

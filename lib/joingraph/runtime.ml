open Rox_util
open Rox_storage
open Rox_algebra
module Sink = Rox_telemetry.Sink
module Tm = Rox_telemetry.Metrics

exception Blowup of { edge : int; rows : int; limit : int }

(* The narrow intra-query parallelism capability the session injects: the
   joingraph layer sits below [Rox_core.Pool] in the dependency order, so
   it receives the pool as a closure instead of seeing the module. *)
type parallel = {
  parts : int;  (** partition count K; the capability is absent when K = 1 *)
  run_tasks : int -> (worker:int -> int -> unit) -> unit;
      (** session fork/join: runs [n] tasks on the shared pool (caller
          included as worker 0), deadline-guarded per task *)
}

(* Everything per-query the runtime needs, handed over in one piece by the
   session (or defaulted for direct/test use) instead of the historical
   ad-hoc [?max_rows ?cache ?table_sampler] optionals. *)
type config = {
  max_rows : int;
  (* Per-session sanitize mode: threaded into every operator this runtime
     calls, so concurrent sessions can differ and no operator consults the
     process-global default mid-run. *)
  sanitize : bool;
  (* Cross-query relation cache: consulted before running the physical
     staircase / value join of an edge, keyed by operation shape and input
     table contents (epoch-scoped). *)
  cache : Rox_cache.Store.t option;
  (* Applied when a vertex table is first materialized from its index
     domain — the hook behind approximate (sample-driven) execution. *)
  table_sampler : (int -> Column.t -> Column.t) option;
  (* Per-session telemetry sink: spans around edge executions, cache
     hit/miss counters. A disabled (null) sink costs one boolean test. *)
  telemetry : Sink.t;
  (* Intra-query parallelism: [None] is the sequential path, bit-for-bit
     the historical behavior (and the [--parallel-parts 1] default). *)
  parallel : parallel option;
}

let default_config () =
  { max_rows = 50_000_000;
    sanitize = Sanitize.default_mode ();
    cache = None;
    table_sampler = None;
    telemetry = Sink.null ();
    parallel = None }

type t = {
  engine : Engine.t;
  graph : Graph.t;
  max_rows : int;
  sanitize : bool;
  cache : Rox_cache.Store.t option;
  table_sampler : (int -> Column.t -> Column.t) option;
  telemetry : Sink.t;
  parallel : parallel option;
  tables : Column.t option array;
  executed_edges : bool array;
  implied_edges : bool array;
  (* Component id per vertex (-1 = none); components.(cid) = Some relation. *)
  comp_of : int array;
  mutable components : Relation.t option array;
  mutable ncomponents : int;
  (* Union-find over vertices linked by *executed* equi-joins: an equi-join
     edge whose endpoints are already equi-connected is transitively implied
     (the closure edges of Figure 4 are alternatives, not extra work) and
     completes as a no-op. *)
  equi_uf : int array;
}

let engine t = t.engine
let graph t = t.graph

let is_trivial_edge graph (e : Edge.t) =
  match e.Edge.op with
  | Edge.Step (Axis.Descendant | Axis.Desc_or_self) ->
    Vertex.is_root (Graph.vertex graph e.Edge.v1)
  | Edge.Step _ | Edge.Equijoin -> false

let create ?config engine graph =
  let config = match config with Some c -> c | None -> default_config () in
  let t =
    {
      engine;
      graph;
      max_rows = config.max_rows;
      sanitize = config.sanitize;
      cache = config.cache;
      table_sampler = config.table_sampler;
      telemetry = config.telemetry;
      parallel = config.parallel;
      tables = Array.make (Graph.vertex_count graph) None;
      executed_edges = Array.make (Graph.edge_count graph) false;
      implied_edges = Array.make (Graph.edge_count graph) false;
      comp_of = Array.make (Graph.vertex_count graph) (-1);
      components = Array.make 8 None;
      ncomponents = 0;
      equi_uf = Array.init (Graph.vertex_count graph) (fun i -> i);
    }
  in
  Array.iter
    (fun e -> if is_trivial_edge graph e then t.executed_edges.(e.Edge.id) <- true)
    (Graph.edges graph);
  t

let executed t (e : Edge.t) = t.executed_edges.(e.Edge.id)
let implied t (e : Edge.t) = t.implied_edges.(e.Edge.id)
let mark_executed t (e : Edge.t) = t.executed_edges.(e.Edge.id) <- true

let unexecuted_edges t =
  Array.to_list (Graph.edges t.graph) |> List.filter (fun e -> not (executed t e))

let unexecuted_incident t v =
  Graph.incident t.graph v |> List.filter (fun e -> not (executed t e))

let all_executed t = Array.for_all (fun b -> b) t.executed_edges

let table t v = t.tables.(v)

let table_or_domain t v =
  match t.tables.(v) with
  | Some tab -> tab
  | None -> Exec.vertex_domain t.engine (Graph.vertex t.graph v)

let ensure_table t v =
  match t.tables.(v) with
  | Some tab -> tab
  | None ->
    let tab = Exec.vertex_domain t.engine (Graph.vertex t.graph v) in
    let tab = match t.table_sampler with Some f -> f v tab | None -> tab in
    t.tables.(v) <- Some tab;
    tab

let component_rows t =
  let out = ref [] in
  for i = t.ncomponents - 1 downto 0 do
    match t.components.(i) with
    | Some rel -> out := Relation.rows rel :: !out
    | None -> ()
  done;
  Array.of_list !out

let new_component t rel =
  if t.ncomponents >= Array.length t.components then begin
    let bigger = Array.make (2 * Array.length t.components) None in
    Array.blit t.components 0 bigger 0 t.ncomponents;
    t.components <- bigger
  end;
  let cid = t.ncomponents in
  t.components.(cid) <- Some rel;
  t.ncomponents <- cid + 1;
  cid

let set_component t cid rel =
  t.components.(cid) <- Some rel;
  Array.iter (fun v -> t.comp_of.(v) <- cid) (Relation.vertices rel)

type exec_info = {
  pair_count : int;
  rel_rows : int;
  changed : int list;
  cache_hit : bool;
}

let rec uf_find t v = if t.equi_uf.(v) = v then v else (t.equi_uf.(v) <- uf_find t t.equi_uf.(v); t.equi_uf.(v))

let equi_connected t a b = uf_find t a = uf_find t b

let equi_union t a b =
  let ra = uf_find t a and rb = uf_find t b in
  if ra <> rb then t.equi_uf.(ra) <- rb

(* Mark every equi-join edge whose endpoints became equi-connected as
   executed — it is transitively implied. *)
let sweep_implied t =
  Array.iter
    (fun (e : Edge.t) ->
      if (not t.executed_edges.(e.Edge.id))
         && (match e.Edge.op with Edge.Equijoin -> true | Edge.Step _ -> false)
         && equi_connected t e.Edge.v1 e.Edge.v2
      then begin
        t.executed_edges.(e.Edge.id) <- true;
        t.implied_edges.(e.Edge.id) <- true
      end)
    (Graph.edges t.graph)

(* After the affected component changed, refresh T(v) for all its vertices;
   report which ones actually shrank. *)
let refresh_tables t rel =
  let changed = ref [] in
  Array.iter
    (fun v ->
      let fresh = Relation.column_distinct rel v in
      let dirty =
        match t.tables.(v) with
        | Some old -> Column.length old <> Column.length fresh
        | None -> true
      in
      t.tables.(v) <- Some fresh;
      if dirty then changed := v :: !changed)
    (Relation.vertices rel);
  List.rev !changed

let is_value_vertex t v =
  match (Graph.vertex t.graph v).Vertex.annot with
  | Vertex.Text _ | Vertex.Attr _ -> true
  | Vertex.Root | Vertex.Element _ -> false

(* Size of the vertex's node set without materializing anything: index
   lookups expose counts for free (Section 2.2). *)
let known_size t v =
  match t.tables.(v) with
  | Some tab -> Column.length tab
  | None -> Exec.vertex_domain_count t.engine (Graph.vertex t.graph v)

(* Materializing a table from its index costs |R| (Table 1's Delt / value
   lookups); a table that already exists was paid for when it was built. *)
let charged_table ?meter t v =
  match t.tables.(v) with
  | Some tab -> tab
  | None ->
    let tab = ensure_table t v in
    Rox_algebra.Cost.charge meter (Column.length tab);
    tab

(* The cacheable unit of edge execution: the physical-variant descriptor
   (results are bit-identical only per variant — pair order differs between
   a hash join and an index nested-loop), the concrete input tables, and a
   thunk running the physical operator. *)
type exec_plan = {
  variant : string;
  in1 : Column.t;
  in2 : Column.t;
  run : Rox_algebra.Cost.meter option -> Exec.pairs;
}

let edge_fingerprint t (e : Edge.t) store plan =
  let vdesc v = Vertex.fingerprint_label (Graph.vertex t.graph v) in
  Rox_cache.Fingerprint.make
    ~epoch:(Rox_cache.Store.epoch store)
    [
      "edge"; plan.variant; vdesc e.Edge.v1; vdesc e.Edge.v2;
      Rox_cache.Fingerprint.column plan.in1; Rox_cache.Fingerprint.column plan.in2;
    ]

(* Consult the relation cache around the physical join. A hit replays the
   stored pair columns; under the sanitizer every hit is cross-checked
   bit-identical against a fresh (uncharged) execution of the same
   physical variant. *)
let cached_pairs ?meter t (e : Edge.t) plan =
  let note_lookup hit =
    if Sink.enabled t.telemetry then begin
      let m = Sink.metrics t.telemetry in
      Tm.incr (if hit then m.Tm.relation_cache_hits else m.Tm.relation_cache_misses)
    end
  in
  match t.cache with
  | None -> (plan.run meter, false)
  | Some store ->
    let key = edge_fingerprint t e store plan in
    let relations = Rox_cache.Store.relations store in
    (match Rox_cache.Relation_cache.find ~sanitize:t.sanitize relations key with
     | Some v ->
       note_lookup true;
       let pairs =
         { Exec.left = v.Rox_cache.Relation_cache.left;
           right = v.Rox_cache.Relation_cache.right }
       in
       if t.sanitize then begin
         let op = Printf.sprintf "Runtime.cached_pairs(e%d %s)" e.Edge.id plan.variant in
         let fresh = plan.run None in
         Sanitize.check_identical ~op ~what:"left column"
           (Column.read pairs.Exec.left) (Column.read fresh.Exec.left);
         Sanitize.check_identical ~op ~what:"right column"
           (Column.read pairs.Exec.right) (Column.read fresh.Exec.right)
       end;
       (pairs, true)
     | None ->
       note_lookup false;
       (* The measured recomputation cost rides into the cache entry:
          cost-aware eviction keeps what was expensive to produce. *)
       let t0 = Rox_telemetry.Clock.now_ns () in
       let pairs = plan.run meter in
       let cost = Rox_telemetry.Clock.elapsed_ns t0 in
       Rox_cache.Relation_cache.add ~cost relations key
         { Rox_cache.Relation_cache.left = pairs.Exec.left; right = pairs.Exec.right };
       (pairs, false))

(* Fork [n] partition tasks onto the session pool and merge their
   side-effects deterministically. Task [i] writes only its own slots —
   result, scratch cost counter, timing — and runs its kernel with
   [sanitize:false] (sanitizing, like every other session effect, is the
   caller's job: RX307 confinement extends across the pool). After the
   join the caller folds the scratch meters into [meter], bumps the
   partition metrics and appends one closed task span per part, all in
   part order, so work accounting is independent of scheduling. *)
let pooled_parts ?meter t (p : parallel) ~n task =
  let results = Array.make n None in
  let scratch = Array.init n (fun _ -> Cost.new_counter ()) in
  let starts = Array.make n 0L in
  let durs = Array.make n 0L in
  let lanes = Array.make n 1 in
  p.run_tasks n (fun ~worker i ->
      let t0 = Rox_telemetry.Clock.now_ns () in
      let r = task i (Some (Cost.execution_meter scratch.(i))) in
      lanes.(i) <- worker + 1;
      starts.(i) <- t0;
      durs.(i) <- Int64.sub (Rox_telemetry.Clock.now_ns ()) t0;
      results.(i) <- Some r);
  Array.iter (fun c -> Cost.charge meter (Cost.total c)) scratch;
  if Sink.enabled t.telemetry then begin
    let m = Sink.metrics t.telemetry in
    for i = 0 to n - 1 do
      Tm.incr m.Tm.partition_tasks;
      Tm.observe m.Tm.partition_task_ns (Int64.to_int durs.(i));
      Sink.add_task_span t.telemetry ~lane:lanes.(i) ~start_ns:starts.(i)
        ~dur_ns:durs.(i)
        ~attrs:[ ("part", string_of_int i) ]
        "partition_task"
    done
  end;
  Array.map (function Some r -> r | None -> assert false) results

let execute_edge_body ?meter ?equi_algo ?step_direction t (e : Edge.t) =
  let v1 = e.Edge.v1 and v2 = e.Edge.v2 in
  (match e.Edge.op with
   | Edge.Equijoin ->
     equi_union t v1 v2;
     sweep_implied t
   | Edge.Step _ -> ());
  (* Only the outer (context / probing) side is materialized and paid for;
     the inner side is served by the indices — the zero-investment
     discipline the paper's Join Graph execution lives by. *)
  let outer_first = known_size t v1 <= known_size t v2 in
  let plan =
    match e.Edge.op with
    | Edge.Step axis ->
      let dir =
        match step_direction with
        | Some d -> d
        | None -> if outer_first then Exec.From_v1 else Exec.From_v2
      in
      let t1, t2 =
        match dir with
        | Exec.From_v1 -> (charged_table ?meter t v1, table_or_domain t v2)
        | Exec.From_v2 -> (table_or_domain t v1, charged_table ?meter t v2)
      in
      {
        variant =
          Printf.sprintf "step:%s:%s" (Rox_algebra.Axis.short_label axis)
            (match dir with Exec.From_v1 -> "1" | Exec.From_v2 -> "2");
        in1 = t1;
        in2 = t2;
        run =
          (fun m ->
            Exec.full_pairs ~sanitize:t.sanitize ?meter:m ~step_direction:dir
              t.engine t.graph e ~t1 ~t2);
      }
    | Edge.Equijoin ->
      (* Index nested-loop from the smaller side when the inner endpoint
         has a value-index access path; hash join otherwise. *)
      let algo =
        match equi_algo with
        | Some a -> a
        | None ->
          if outer_first && is_value_vertex t v2 then Exec.Algo_index_nl Exec.From_v1
          else if is_value_vertex t v1 then Exec.Algo_index_nl Exec.From_v2
          else Exec.Algo_hash
      in
      let t1, t2 =
        match algo with
        | Exec.Algo_index_nl Exec.From_v1 ->
          (charged_table ?meter t v1, table_or_domain t v2)
        | Exec.Algo_index_nl Exec.From_v2 ->
          (table_or_domain t v1, charged_table ?meter t v2)
        | Exec.Algo_hash | Exec.Algo_merge ->
          (charged_table ?meter t v1, charged_table ?meter t v2)
      in
      {
        variant =
          (match algo with
           | Exec.Algo_hash -> "eq:hash"
           | Exec.Algo_merge -> "eq:merge"
           | Exec.Algo_index_nl Exec.From_v1 -> "eq:nl1"
           | Exec.Algo_index_nl Exec.From_v2 -> "eq:nl2");
        in1 = t1;
        in2 = t2;
        run =
          (fun m ->
            Exec.full_pairs ~sanitize:t.sanitize ?meter:m ~equi_algo:algo
              t.engine t.graph e ~t1 ~t2);
      }
  in
  let pairs, cache_hit = cached_pairs ?meter t e plan in
  let c1 = t.comp_of.(v1) and c2 = t.comp_of.(v2) in
  let get cid = match t.components.(cid) with Some r -> r | None -> assert false in
  let swapped = { Exec.left = pairs.Exec.right; right = pairs.Exec.left } in
  (* The component kernel for this edge, as one closure: the sequential
     path runs it once with the session's meter and sanitize mode; the
     partitioned path runs it per part and reuses it (sanitize on, meter
     free) as the RX310 replay reference. *)
  let sequential ~sanitize meter =
    if c1 < 0 && c2 < 0 then Relation.of_pairs ~v1 ~v2 pairs
    else if c1 >= 0 && c2 < 0 then
      Relation.extend ~sanitize ?meter ~max_rows:t.max_rows (get c1) ~on:v1
        ~new_vertex:v2 pairs
    else if c1 < 0 && c2 >= 0 then
      Relation.extend ~sanitize ?meter ~max_rows:t.max_rows (get c2) ~on:v2
        ~new_vertex:v1 swapped
    else if c1 = c2 then
      Relation.filter_pairs ~sanitize ?meter (get c1) ~c1:v1 ~c2:v2 pairs
    else
      Relation.fuse ~sanitize ?meter ~max_rows:t.max_rows (get c1) (get c2)
        ~on_left:v1 ~on_right:v2 pairs
  in
  (* Each kernel's output order is a function of its *first* input's order
     (extend and filter_pairs stream base rows; fuse streams pairs), so
     contiguous slices of that input, joined per slice and concatenated in
     slice order, reproduce the sequential row order exactly. [of_pairs]
     does no join work and always stays sequential. *)
  let partitioned =
    match t.parallel with
    | Some p when p.parts > 1 ->
      let parts = p.parts in
      if c1 >= 0 && c2 < 0 && Relation.rows (get c1) >= parts then
        Some
          (fun () ->
            let base = Relation.partition (get c1) ~by:v1 ~parts in
            pooled_parts ?meter t p ~n:parts (fun i m ->
                Relation.extend ~sanitize:false ?meter:m ~max_rows:t.max_rows
                  base.(i) ~on:v1 ~new_vertex:v2 pairs))
      else if c1 < 0 && c2 >= 0 && Relation.rows (get c2) >= parts then
        Some
          (fun () ->
            let base = Relation.partition (get c2) ~by:v2 ~parts in
            pooled_parts ?meter t p ~n:parts (fun i m ->
                Relation.extend ~sanitize:false ?meter:m ~max_rows:t.max_rows
                  base.(i) ~on:v2 ~new_vertex:v1 swapped))
      else if c1 >= 0 && c2 >= 0 && c1 = c2 && Relation.rows (get c1) >= parts
      then
        Some
          (fun () ->
            let base = Relation.partition (get c1) ~by:v1 ~parts in
            pooled_parts ?meter t p ~n:parts (fun i m ->
                Relation.filter_pairs ~sanitize:false ?meter:m base.(i) ~c1:v1
                  ~c2:v2 pairs))
      else if c1 >= 0 && c2 >= 0 && c1 <> c2 && Exec.pair_count pairs >= parts
      then
        Some
          (fun () ->
            let npairs = Exec.pair_count pairs in
            pooled_parts ?meter t p ~n:parts (fun i m ->
                let lo = i * npairs / parts in
                let len = ((i + 1) * npairs / parts) - lo in
                let sub =
                  { Exec.left = Column.slice pairs.Exec.left ~pos:lo ~len;
                    right = Column.slice pairs.Exec.right ~pos:lo ~len }
                in
                Relation.fuse ~sanitize:false ?meter:m ~max_rows:t.max_rows
                  (get c1) (get c2) ~on_left:v1 ~on_right:v2 sub))
      else None
    | _ -> None
  in
  let rel =
    match
      match partitioned with
      | None -> sequential ~sanitize:t.sanitize meter
      | Some run_parts ->
        let rel = Relation.concat_parts (run_parts ()) in
        if t.sanitize then begin
          (* RX310: replay the whole edge through the sequential kernel
             and demand bit-identity — the RX306 kernel-equivalence
             pattern lifted to the partition layer. *)
          let reference = sequential ~sanitize:true None in
          if not (Relation.equal rel reference) then
            Sanitize.fail
              ~op:(Printf.sprintf "Runtime.execute_edge(e%d)" e.Edge.id)
              ~contract:Sanitize.Partition_consistent
              (Printf.sprintf
                 "partitioned result (%d rows) differs from the sequential \
                  kernel (%d rows)"
                 (Relation.rows rel) (Relation.rows reference))
        end;
        rel
    with
    | rel -> rel
    | exception Relation.Too_large rows ->
      raise (Blowup { edge = e.Edge.id; rows; limit = t.max_rows })
  in
  if Relation.rows rel > t.max_rows then
    raise (Blowup { edge = e.Edge.id; rows = Relation.rows rel; limit = t.max_rows });
  (* Install the new component, retiring any merged ones. *)
  let cid =
    if c1 >= 0 then c1
    else if c2 >= 0 then c2
    else new_component t rel
  in
  if c1 >= 0 && c2 >= 0 && c1 <> c2 then t.components.(c2) <- None;
  set_component t cid rel;
  mark_executed t e;
  let changed = refresh_tables t rel in
  if t.sanitize then begin
    let op = Printf.sprintf "Runtime.execute_edge(e%d)" e.Edge.id in
    Array.iter
      (fun v ->
        match t.tables.(v) with
        | None -> ()
        | Some tab ->
          let what = Printf.sprintf "T(v%d)" v in
          Sanitize.check_column_flag ~op ~what tab;
          Sanitize.check_sorted_dedup ~op ~what (Column.read tab);
          Sanitize.check_subset ~op ~what
            ~domain:(Column.read (Exec.vertex_domain t.engine (Graph.vertex t.graph v)))
            (Column.read tab))
      (Relation.vertices rel)
  end;
  { pair_count = Exec.pair_count pairs; rel_rows = Relation.rows rel; changed; cache_hit }

let execute_edge ?meter ?equi_algo ?step_direction t (e : Edge.t) =
  if executed t e then invalid_arg "Runtime.execute_edge: edge already executed";
  Sink.with_span t.telemetry "execute_edge"
    ~attrs:(fun () -> [ ("edge", string_of_int e.Edge.id) ])
    ~record:(fun m dur ->
      Tm.observe m.Tm.edge_execution_ns dur;
      Tm.incr ~by:dur m.Tm.execution_time_ns)
    (fun () ->
      let info = execute_edge_body ?meter ?equi_algo ?step_direction t e in
      if Sink.enabled t.telemetry then begin
        let m = Sink.metrics t.telemetry in
        Tm.incr m.Tm.edges_executed;
        Tm.incr ~by:info.pair_count m.Tm.pairs_emitted;
        Tm.incr ~by:info.rel_rows m.Tm.rows_materialized
      end;
      info)

let final_relation ?meter t =
  if not (all_executed t) then
    invalid_arg "Runtime.final_relation: unexecuted edges remain";
  let live = ref [] in
  for i = t.ncomponents - 1 downto 0 do
    match t.components.(i) with
    | Some rel -> live := rel :: !live
    | None -> ()
  done;
  (* Non-root vertices with no component (graphs whose only edges were
     trivial) enter as their domains. *)
  Array.iter
    (fun (v : Vertex.t) ->
      if (not (Vertex.is_root v)) && t.comp_of.(v.Vertex.id) < 0 then
        live :=
          Relation.singleton ~vertex:v.Vertex.id (table_or_domain t v.Vertex.id) :: !live)
    (Graph.vertices t.graph);
  match !live with
  | [] -> invalid_arg "Runtime.final_relation: empty graph"
  | first :: rest ->
    List.fold_left
      (fun acc r -> Relation.cross ~sanitize:t.sanitize ?meter acc r)
      first rest

type chain_path = {
  label : string;
  via : string;
  cost : float;
  sf : float;
}

type event =
  | Vertex_initialized of { vertex : int; card : int }
  | Edge_weighted of { edge : int; weight : float }
  | Chain_started of { source : int; min_edge : int }
  | Chain_round of { round : int; cutoff : int; paths : chain_path list }
  | Chain_chosen of {
      edges : int list;
      trigger : [ `Stopping_condition | `Exhausted | `Single_edge ];
    }
  | Edge_executed of { edge : int; order : int; pairs : int; rel_rows : int }
  | Cache_lookup of { edge : int; store : [ `Relation | `Estimate ]; hit : bool }
  | Truncated of { dropped : int }

let default_cap = 200_000

type t = {
  mutable rev_events : event list;
  mutable count : int;
  mutable dropped : int;
  cap : int;
  is_enabled : bool;
  (* Memoized forward event list: [events] is called per accessor
     (execution_order, chain_rounds, ...) and used to re-reverse the whole
     history per call; now the reversal happens once per emit burst. *)
  mutable forward : event list option;
}

let create ?(cap = default_cap) ?(enabled = true) () =
  if cap < 1 then invalid_arg (Printf.sprintf "Trace.create: cap %d < 1" cap);
  { rev_events = []; count = 0; dropped = 0; cap; is_enabled = enabled;
    forward = None }

let enabled t = t.is_enabled
let cap t = t.cap
let dropped t = t.dropped

let emit t ev =
  if t.is_enabled then begin
    t.forward <- None;
    if t.count >= t.cap then t.dropped <- t.dropped + 1
    else begin
      t.rev_events <- ev :: t.rev_events;
      t.count <- t.count + 1
    end
  end

let events t =
  match t.forward with
  | Some l -> l
  | None ->
    let base = List.rev t.rev_events in
    let l =
      if t.dropped > 0 then base @ [ Truncated { dropped = t.dropped } ] else base
    in
    t.forward <- Some l;
    l

let execution_order t =
  events t
  |> List.filter_map (function Edge_executed { edge; _ } -> Some edge | _ -> None)

let chain_rounds t =
  events t
  |> List.filter_map (function
       | Chain_round { round; cutoff; paths } -> Some (round, cutoff, paths)
       | _ -> None)

let cache_hits ?store t =
  events t
  |> List.filter (function
       | Cache_lookup { store = s; hit = true; _ } ->
         (match store with None -> true | Some wanted -> s = wanted)
       | _ -> false)
  |> List.length

let cache_lookups ?store t =
  events t
  |> List.filter (function
       | Cache_lookup { store = s; _ } ->
         (match store with None -> true | Some wanted -> s = wanted)
       | _ -> false)
  |> List.length

type chain_path = {
  label : string;
  via : string;
  cost : float;
  sf : float;
}

type event =
  | Vertex_initialized of { vertex : int; card : int }
  | Edge_weighted of { edge : int; weight : float }
  | Chain_started of { source : int; min_edge : int }
  | Chain_round of { round : int; cutoff : int; paths : chain_path list }
  | Chain_chosen of {
      edges : int list;
      trigger : [ `Stopping_condition | `Exhausted | `Single_edge ];
    }
  | Edge_executed of { edge : int; order : int; pairs : int; rel_rows : int }
  | Cache_lookup of { edge : int; store : [ `Relation | `Estimate ]; hit : bool }

type t = { mutable events : event list; is_enabled : bool }

let create ?(enabled = true) () = { events = []; is_enabled = enabled }
let enabled t = t.is_enabled
let emit t ev = if t.is_enabled then t.events <- ev :: t.events
let events t = List.rev t.events

let execution_order t =
  events t
  |> List.filter_map (function Edge_executed { edge; _ } -> Some edge | _ -> None)

let chain_rounds t =
  events t
  |> List.filter_map (function
       | Chain_round { round; cutoff; paths } -> Some (round, cutoff, paths)
       | _ -> None)

let cache_hits ?store t =
  events t
  |> List.filter (function
       | Cache_lookup { store = s; hit = true; _ } ->
         (match store with None -> true | Some wanted -> s = wanted)
       | _ -> false)
  |> List.length

let cache_lookups ?store t =
  events t
  |> List.filter (function
       | Cache_lookup { store = s; _ } ->
         (match store with None -> true | Some wanted -> s = wanted)
       | _ -> false)
  |> List.length

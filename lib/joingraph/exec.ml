open Rox_util
open Rox_storage
open Rox_algebra

type direction = From_v1 | From_v2

let docref engine (v : Vertex.t) = Engine.get engine v.Vertex.doc_id

(* Translate an exclusive numeric bound into the value index's inclusive
   range using adjacent floats: v < f  ⇔  v <= pred(f). *)
let range_of_pred = function
  | Selection.Lt f -> Some (None, Some (Float.pred f))
  | Selection.Le f -> Some (None, Some f)
  | Selection.Gt f -> Some (Some (Float.succ f), None)
  | Selection.Ge f -> Some (Some f, None)
  | Selection.Between (lo, hi) -> Some (Some lo, Some hi)
  | Selection.Eq _ -> None

let vertex_domain engine (v : Vertex.t) =
  let r = docref engine v in
  match v.Vertex.annot with
  | Vertex.Root -> Column.unsafe_of_array ~sorted:true [| 0 |]
  | Vertex.Element q ->
    (match Engine.qname_id engine q with
     | Some id -> Element_index.lookup r.Engine.elements id
     | None -> Column.empty)
  | Vertex.Text None -> Kind_index.lookup r.Engine.kinds Rox_shred.Nodekind.Text
  | Vertex.Text (Some (Selection.Eq s)) ->
    (match Engine.value_id engine s with
     | Some id -> Value_index.text_eq r.Engine.values id
     | None -> Column.empty)
  | Vertex.Text (Some pred) ->
    (match range_of_pred pred with
     | Some (lo, hi) -> Value_index.text_range r.Engine.values ?lo ?hi ()
     | None -> assert false)
  | Vertex.Attr (q, pred) ->
    (match Engine.qname_id engine q with
     | None -> Column.empty
     | Some name_id ->
       (match pred with
        | None -> Element_index.lookup_attr r.Engine.elements name_id
        | Some (Selection.Eq s) ->
          (match Engine.value_id engine s with
           | Some value_id -> Value_index.attr_eq r.Engine.values ~name_id ~value_id
           | None -> Column.empty)
        | Some p ->
          Selection.filter ~doc:r.Engine.doc ~pred:p
            (Element_index.lookup_attr r.Engine.elements name_id)))

let vertex_domain_count engine v = Column.length (vertex_domain engine v)

let can_index_init (v : Vertex.t) =
  match v.Vertex.annot with
  | Vertex.Root | Vertex.Element _ -> true
  | Vertex.Text (Some (Selection.Eq _)) | Vertex.Attr (_, Some (Selection.Eq _)) -> true
  | Vertex.Text _ | Vertex.Attr _ -> false

type pairs = { left : Column.t; right : Column.t }

let pair_count p = Column.length p.left

(* The builders below fill plain vectors; wrapping detects sortedness in
   one scan so a strictly-increasing pair column (e.g. a fresh selective
   step) keeps its document-order certificate for downstream kernels. *)
let freeze vec = Column.unsafe_of_array_detect (Int_vec.to_array vec)

type equi_algo = Algo_hash | Algo_merge | Algo_index_nl of direction

let inner_spec engine (v : Vertex.t) restrict =
  let r = docref engine v in
  let side =
    match v.Vertex.annot with
    | Vertex.Text _ -> Value_join.Inner_text
    | Vertex.Attr (q, _) ->
      (match Engine.qname_id engine q with
       | Some id -> Value_join.Inner_attr id
       | None -> Value_join.Inner_attr (-1))
    | Vertex.Root | Vertex.Element _ ->
      invalid_arg "Exec: equi-join endpoint must be a text or attribute vertex"
  in
  (* Index buckets ignore the vertex predicate; compensate through the
     restrict table when none was supplied. *)
  let restrict =
    match (restrict, Vertex.predicate v) with
    | (Some _ as r), _ -> r
    | None, None -> None
    | None, Some _ -> Some (vertex_domain engine v)
  in
  { Value_join.docref = r; side; restrict }

let full_pairs_impl ?meter ?equi_algo ?step_direction engine graph (e : Edge.t) ~t1 ~t2 =
  let v1 = Graph.vertex graph e.Edge.v1 in
  let v2 = Graph.vertex graph e.Edge.v2 in
  match e.Edge.op with
  | Edge.Step axis ->
    let dir =
      match step_direction with
      | Some d -> d
      | None -> if Column.length t1 <= Column.length t2 then From_v1 else From_v2
    in
    let lefts = Int_vec.create () and rights = Int_vec.create () in
    (match dir with
     | From_v1 ->
       let doc = (docref engine v1).Engine.doc in
       Staircase.iter_pairs ?meter ~doc ~axis ~context:t1 ~candidates:t2 (fun _ c s ->
           Int_vec.push lefts c;
           Int_vec.push rights s)
     | From_v2 ->
       let doc = (docref engine v2).Engine.doc in
       Staircase.iter_pairs ?meter ~doc ~axis:(Axis.reverse axis) ~context:t2 ~candidates:t1
         (fun _ c s ->
           Int_vec.push lefts s;
           Int_vec.push rights c));
    { left = freeze lefts; right = freeze rights }
  | Edge.Equijoin ->
    let algo =
      match equi_algo with
      | Some a -> a
      | None -> Algo_hash
    in
    let lefts = Int_vec.create () and rights = Int_vec.create () in
    let doc1 = (docref engine v1).Engine.doc in
    let doc2 = (docref engine v2).Engine.doc in
    (match algo with
     | Algo_hash ->
       (* Build on the smaller side. *)
       if Column.length t2 <= Column.length t1 then
         Value_join.iter_hash ?meter ~outer_doc:doc1 ~outer:t1 ~inner_doc:doc2 ~inner:t2
           (fun _ o i ->
             Int_vec.push lefts o;
             Int_vec.push rights i)
       else
         Value_join.iter_hash ?meter ~outer_doc:doc2 ~outer:t2 ~inner_doc:doc1 ~inner:t1
           (fun _ o i ->
             Int_vec.push lefts i;
             Int_vec.push rights o)
     | Algo_merge ->
       Value_join.iter_merge ?meter ~outer_doc:doc1 ~outer:t1 ~inner_doc:doc2 ~inner:t2
         (fun _ o i ->
           Int_vec.push lefts o;
           Int_vec.push rights i)
     | Algo_index_nl dir ->
       (match dir with
        | From_v1 ->
          let inner = inner_spec engine v2 (Some t2) in
          Value_join.iter_index_nl ?meter ~outer_doc:doc1 ~outer:t1 ~inner (fun _ o i ->
              Int_vec.push lefts o;
              Int_vec.push rights i)
        | From_v2 ->
          let inner = inner_spec engine v1 (Some t1) in
          Value_join.iter_index_nl ?meter ~outer_doc:doc2 ~outer:t2 ~inner (fun _ o i ->
              Int_vec.push lefts i;
              Int_vec.push rights o)));
    { left = freeze lefts; right = freeze rights }

let full_pairs ?sanitize ?meter ?equi_algo ?step_direction engine graph (e : Edge.t)
    ~t1 ~t2 =
  let sanitize =
    match sanitize with Some s -> s | None -> Sanitize.default_mode ()
  in
  if not sanitize then
    full_pairs_impl ?meter ?equi_algo ?step_direction engine graph e ~t1 ~t2
  else begin
    let op =
      match e.Edge.op with
      | Edge.Step axis -> Printf.sprintf "Exec.full_pairs(step %s)" (Axis.to_string axis)
      | Edge.Equijoin -> "Exec.full_pairs(equijoin)"
    in
    Sanitize.check_column_flag ~op ~what:"t1" t1;
    Sanitize.check_column_flag ~op ~what:"t2" t2;
    Sanitize.check_sorted_dedup ~op ~what:"t1" (Column.read t1);
    Sanitize.check_sorted_dedup ~op ~what:"t2" (Column.read t2);
    let pairs, charged =
      Sanitize.observed meter (fun m ->
          full_pairs_impl ~meter:m ?equi_algo ?step_direction engine graph e ~t1 ~t2)
    in
    Sanitize.check_column_flag ~op ~what:"pairs.left" pairs.left;
    Sanitize.check_column_flag ~op ~what:"pairs.right" pairs.right;
    Sanitize.check_subset ~op ~what:"left column" ~domain:(Column.read t1)
      (Column.read pairs.left);
    Sanitize.check_subset ~op ~what:"right column" ~domain:(Column.read t2)
      (Column.read pairs.right);
    (* Only the hash and merge value joins have a |C| + |S| + |R| Table 1
       bound expressible in the sizes at hand; index-NL work depends on
       bucket sizes, steps on subtree shapes. *)
    (match (e.Edge.op, equi_algo) with
     | Edge.Equijoin, (None | Some Algo_hash | Some Algo_merge) ->
       Sanitize.check_cost ~op ~charged
         ~bound:(Column.length t1 + Column.length t2 + Column.length pairs.left)
     | _ -> ());
    pairs
  end

let sampled ?meter engine graph (e : Edge.t) ~outer ~sample ~inner_table ~limit =
  let v1 = Graph.vertex graph e.Edge.v1 in
  let v2 = Graph.vertex graph e.Edge.v2 in
  let outer_v, inner_v = match outer with From_v1 -> (v1, v2) | From_v2 -> (v2, v1) in
  match e.Edge.op with
  | Edge.Step axis ->
    let axis = match outer with From_v1 -> axis | From_v2 -> Axis.reverse axis in
    let doc = (docref engine outer_v).Engine.doc in
    let candidates =
      match inner_table with
      | Some t -> t
      | None -> vertex_domain engine inner_v
    in
    Cutoff.run ~limit ~outer_len:(Column.length sample) ~iter:(fun emit ->
        Staircase.iter_pairs ?meter ~doc ~axis ~context:sample ~candidates (fun cidx _ s ->
            emit cidx s))
  | Edge.Equijoin ->
    let outer_doc = (docref engine outer_v).Engine.doc in
    let inner = inner_spec engine inner_v inner_table in
    Cutoff.run ~limit ~outer_len:(Column.length sample) ~iter:(fun emit ->
        Value_join.iter_index_nl ?meter ~outer_doc ~outer:sample ~inner (fun cidx _ i ->
            emit cidx i))

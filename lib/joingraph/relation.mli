(** Materialized intermediate results over Join Graph vertices.

    ROX "executes the operations in the Join Graph one by one, fully
    materializing partial results" (Section 1.1). A relation is the joined
    table over the vertices of one already-executed connected subgraph: one
    column per vertex, each cell a node (pre rank) of that vertex's
    document. Executing an edge either creates a fresh binary relation,
    extends one component, fuses two components, or filters a component
    whose endpoints it already spans.

    Storage is column-major — one immutable {!Rox_util.Column.t} per
    vertex, mirroring the MonetDB/XQuery substrate the paper runs on.
    [project] and [of_pairs] move column pointers without copying;
    [extend] / [fuse] / [distinct] / [sort_rows] gather through unboxed
    row-index vectors and open-addressing int tables (no polymorphic
    compare, no boxed keys); the trusted [Column.sorted] flag turns
    [distinct], [sort_rows] and [column_distinct] into no-ops on
    document-ordered columns and unlocks a merge path in [extend].

    Under [ROX_SANITIZE=1] every kernel is cross-checked bit-for-bit
    against the retained row-major reference {!Naive} (contract RX306)
    and every column's sorted flag is audited (RX305).

    The per-vertex tables T(v) of Algorithm 1 are distinct column
    projections of these relations. *)

type t

exception Too_large of int
(** Raised by the constructing operations when [max_rows] is exceeded —
    *before* the oversized relation is fully materialized. The payload is
    the row count reached. *)

val width : t -> int
val rows : t -> int
val vertices : t -> int array
(** Column order. *)

val has_vertex : t -> int -> bool
val singleton : vertex:int -> Rox_util.Column.t -> t
(** One-column relation from a node set (zero-copy). *)

val of_pairs : v1:int -> v2:int -> Exec.pairs -> t
(** The pair columns become the relation's columns — zero-copy. *)

val column : t -> int -> Rox_util.Column.t
(** The vertex's column, with duplicates, in row order — zero-copy. *)

val column_distinct : t -> int -> Rox_util.Column.t
(** Sorted duplicate-free column — the updated T(v). Zero-copy when the
    column's sorted flag is already set. *)

val equal : t -> t -> bool
(** Same vertices, same rows in the same order; monomorphic element
    loops, no polymorphic compare. Used by the sanitizer cross-checks. *)

val partition : t -> by:int -> parts:int -> t array
(** [partition t ~by ~parts] splits [t] into [parts] contiguous
    row-range slices — zero-copy ({!Rox_util.Column.slice} per column).
    Parts may be empty when [parts > rows t]; row counts differ by at
    most one. [by] must be a vertex of [t]; when its column is strictly
    increasing, the row ranges are disjoint key ranges. Because every
    parallelized kernel emits output in base-row order, running a kernel
    per part and merging with {!concat_parts} in part order reproduces
    the sequential kernel's exact row order.
    @raise Invalid_argument on [parts <= 0] or a foreign [by] vertex. *)

val concat_parts : t array -> t
(** Deterministic merge of partition outputs: concatenate in part order.
    All parts must agree on the vertex set (in column order). Column
    flags follow {!Rox_util.Column.concat}'s boundary rule, so
    re-assembling unmodified slices restores the original flags.
    @raise Invalid_argument on an empty array or disagreeing parts. *)

(** The kernels below take the calling session's sanitize mode as
    [?sanitize]; omitting it falls back to {!Rox_algebra.Sanitize.default_mode},
    which is an RX307 violation inside an armed session region. *)

val extend :
  ?sanitize:bool ->
  ?meter:Rox_algebra.Cost.meter ->
  ?max_rows:int ->
  t -> on:int -> new_vertex:int -> Exec.pairs -> t
(** [extend r ~on ~new_vertex pairs] joins [r] with the pair list on [r]'s
    [on] column (pairs are oriented (on-node, new-node)). Work charged:
    result rows. Takes a hash-free merge path when the [on] column is
    strictly increasing and the pairs arrive grouped by left key. *)

val fuse :
  ?sanitize:bool ->
  ?meter:Rox_algebra.Cost.meter ->
  ?max_rows:int ->
  t -> t -> on_left:int -> on_right:int -> Exec.pairs -> t
(** Join two components through an edge whose endpoints live one in each:
    pairs oriented (left-component node, right-component node). *)

val filter_pairs :
  ?sanitize:bool ->
  ?meter:Rox_algebra.Cost.meter -> t -> c1:int -> c2:int -> Exec.pairs -> t
(** Keep rows whose (c1, c2) cell pair appears in the pair list — an edge
    both of whose endpoints are already in the component. *)

val project : ?sanitize:bool -> t -> int array -> t
(** Restrict to the given vertex columns (in the given order) — pure
    column-pointer selection, no copying. *)

val distinct : ?sanitize:bool -> ?meter:Rox_algebra.Cost.meter -> t -> t
(** Duplicate row elimination (the δ of the plan tail), keeping the first
    occurrence of each row. Free when any column is strictly increasing. *)

val sort_rows : ?sanitize:bool -> t -> t
(** Lexicographic row order over the columns — the τ numbering of the plan
    tail sorts by node identity column by column. Free when the first
    column is strictly increasing. *)

val iter_rows : t -> (int array -> unit) -> unit
(** Calls with a scratch row buffer (do not retain). *)

val row_array : t -> int -> int array
(** Fresh copy of one row. *)

val cross :
  ?sanitize:bool -> ?meter:Rox_algebra.Cost.meter -> ?max_rows:int -> t -> t -> t
(** Cartesian product (needed only when a plan joins two components on an
    edge spanning them — via [fuse] — never blindly; exposed for tests and
    the plan-space enumerator). *)

(** The seed's row-major implementation, retained as the reference the
    columnar kernels are validated against: by the RX306 sanitizer
    cross-check on every kernel call under [ROX_SANITIZE=1], by the
    property tests, and as the "old" side of [bench/exp_relation]. *)
module Naive : sig
  type r = { verts : int array; data : int array; nrows : int }

  val of_relation : t -> r
  val to_relation : r -> t

  val singleton : vertex:int -> int array -> r
  val of_pairs : v1:int -> v2:int -> left:int array -> right:int array -> r

  val extend :
    ?max_rows:int -> r -> on:int -> new_vertex:int -> left:int array -> right:int array -> r

  val fuse :
    ?max_rows:int -> r -> r -> on_left:int -> on_right:int -> pl:int array -> pr:int array -> r

  val filter_pairs : r -> c1:int -> c2:int -> left:int array -> right:int array -> r
  val project : r -> int array -> r
  val distinct : r -> r
  val sort_rows : r -> r
  val cross : ?max_rows:int -> r -> r -> r
end

(** Join Graph vertices (Definition 1 of the paper).

    A vertex denotes a relation of XML nodes of one document: the document
    root, the elements with a qualified name, the text nodes (optionally
    under a range-selection predicate), or the attribute nodes of a given
    name (ditto). *)

type annot =
  | Root
  | Element of string                                    (** qualified name *)
  | Text of Rox_algebra.Selection.t option
  | Attr of string * Rox_algebra.Selection.t option      (** attribute name *)

type t = {
  id : int;        (** dense id within its graph *)
  doc_id : int;    (** engine document the node set lives in *)
  annot : annot;
}

val label : t -> string
(** Display label in the paper's style: "open_auction", "text() < 145",
    "@person", "root". *)

val fingerprint_label : t -> string
(** Graph-independent identity for cache fingerprints: document id plus
    annotation label, without the per-graph vertex id — so the same base
    node set fingerprints identically across queries. *)

val is_element : t -> bool
val is_root : t -> bool

val predicate : t -> Rox_algebra.Selection.t option

val equality_value : t -> string option
(** [Some v] when the vertex is a text or attribute node with an equality
    predicate ["= v"] — the vertices Algorithm 1 may initialize from the
    value index. *)

(** Edge evaluation: maps Join Graph edges onto the physical operators.

    Both the ROX optimizer and the classical-baseline executor run edges
    through this module, so cost accounting and semantics are identical —
    plans differ only in *order*, exactly as in the paper's experiments.

    Every node-set argument and result is a sorted duplicate-free pre
    array; pair results are parallel arrays oriented as (v1-node,
    v2-node) regardless of the execution direction chosen. *)

open Rox_storage

type direction = From_v1 | From_v2
(** Which endpoint provides the context (outer / sampled) input. *)

val vertex_domain : Engine.t -> Vertex.t -> Rox_util.Column.t
(** The full base node set of a vertex, through the best index: element
    index for elements, value index for equality / range predicates, kind
    or attribute-name index otherwise. Includes the vertex predicate. *)

val vertex_domain_count : Engine.t -> Vertex.t -> int
(** Like [vertex_domain] but only the count — index lookups expose counts
    for free (Section 2.2). *)

val can_index_init : Vertex.t -> bool
(** Algorithm 1 (lines 1-2, 9-12) initializes only root vertices, elements
    and text/attribute nodes with an equality predicate. *)

type pairs = { left : Rox_util.Column.t; right : Rox_util.Column.t }
(** Parallel columns: [left.(i)] is the v1-side node of pair [i]. The
    sorted flags are detected at construction, so strictly-increasing
    pair columns carry their document-order certificate downstream. *)

val pair_count : pairs -> int

type equi_algo = Algo_hash | Algo_merge | Algo_index_nl of direction

val full_pairs :
  ?sanitize:bool ->
  ?meter:Rox_algebra.Cost.meter ->
  ?equi_algo:equi_algo ->
  ?step_direction:direction ->
  Engine.t ->
  Graph.t ->
  Edge.t ->
  t1:Rox_util.Column.t ->
  t2:Rox_util.Column.t ->
  pairs
(** Complete evaluation of an edge against materialized endpoint tables.
    Steps default to taking the smaller side as context; equi-joins default
    to a hash join building on the smaller side. *)

val sampled :
  ?meter:Rox_algebra.Cost.meter ->
  Engine.t ->
  Graph.t ->
  Edge.t ->
  outer:direction ->
  sample:Rox_util.Column.t ->
  inner_table:Rox_util.Column.t option ->
  limit:int ->
  Rox_algebra.Cutoff.t
(** Zero-investment cut-off sampled evaluation: the [↓l(exec(e, S, T))] of
    Algorithms 1 and 2. [sample] is a (document-ordered) sample of the
    outer vertex; [inner_table] restricts the inner side to its current
    materialized table, or [None] to use the vertex domain. The result's
    [out] holds inner-side nodes in generation order. *)

open Rox_util
open Rox_algebra

(* Column-major materialized intermediates. Each vertex's cells live in
   one immutable [Column.t]; kernels move column pointers where they can
   ([project], [of_pairs]) and gather through row-index vectors where
   they cannot ([extend], [fuse], [distinct], [sort_rows]), so a cell is
   copied at most once per kernel and never boxed. The trusted
   [Column.sorted] flag (strictly increasing = document order, duplicate
   free) unlocks merge paths and makes [distinct] / [sort_rows] /
   [column_distinct] free on fresh single-component relations.

   Under [ROX_SANITIZE=1] every kernel is cross-checked bit-for-bit
   against the retained row-major reference in {!Naive} (RX306), and
   every column flag is audited (RX305). *)

type t = {
  verts : int array;
  cols : Column.t array; (* parallel to [verts] *)
  col_of : int array; (* vertex id -> column index, -1 when absent *)
  nrows : int;
}

exception Too_large of int

let make verts cols nrows =
  let maxv = Array.fold_left max (-1) verts in
  let col_of = Array.make (maxv + 1) (-1) in
  Array.iteri (fun i v -> col_of.(v) <- i) verts;
  { verts; cols; col_of; nrows }

let width t = Array.length t.verts
let rows t = t.nrows
let vertices t = t.verts

let col_index t v =
  if v < 0 || v >= Array.length t.col_of then None
  else
    let i = t.col_of.(v) in
    if i < 0 then None else Some i

let has_vertex t v = col_index t v <> None

let col_index_exn t v =
  match col_index t v with
  | Some i -> i
  | None -> invalid_arg "Relation: vertex not in relation"

let column t v = t.cols.(col_index_exn t v)
let column_distinct t v = Column.sorted_dedup (column t v)

let singleton ~vertex nodes = make [| vertex |] [| nodes |] (Column.length nodes)

let of_pairs ~v1 ~v2 (p : Exec.pairs) =
  (* Pointer copy: the pair columns become the relation's columns. *)
  make [| v1; v2 |] [| p.Exec.left; p.Exec.right |] (Column.length p.Exec.left)

let equal a b =
  a.nrows = b.nrows
  && Array.length a.verts = Array.length b.verts
  && (let rec go i =
        i >= Array.length a.verts || (a.verts.(i) = b.verts.(i) && go (i + 1))
      in
      go 0)
  &&
  let rec go i =
    i >= Array.length a.cols || (Column.equal a.cols.(i) b.cols.(i) && go (i + 1))
  in
  go 0

(* --- partitioning ------------------------------------------------------- *)

(* K contiguous row-range slices — zero-copy ([Column.slice] per column,
   verts/col_of shared). Contiguous row ranges are what makes the merge
   deterministic: every parallelized kernel (extend, filter_pairs) emits
   output in base-row order, so per-part outputs concatenated in part
   order reconstruct exactly the sequential kernel's row order. When the
   [by] column is strictly increasing (its sorted flag is set), row
   ranges are also disjoint key ranges. Parts may be empty (K > nrows);
   row counts differ by at most one. *)
let partition t ~by ~parts =
  if parts <= 0 then invalid_arg "Relation.partition: parts must be positive";
  ignore (col_index_exn t by : int);
  Array.init parts (fun i ->
      let lo = i * t.nrows / parts in
      let hi = (i + 1) * t.nrows / parts in
      let len = hi - lo in
      { t with
        cols = Array.map (fun c -> Column.slice c ~pos:lo ~len) t.cols;
        nrows = len })

(* Deterministic merge: parts (over identical vertex sets, in identical
   column order) concatenated in part order. [Column.concat]'s boundary
   rule keeps every output flag honest — and equal to the sequential
   kernel's flag whenever every part dropped rows the same way the
   sequential kernel would have. *)
let concat_parts parts =
  if Array.length parts = 0 then invalid_arg "Relation.concat_parts: no parts";
  let first = parts.(0) in
  Array.iter
    (fun p ->
      if Array.length p.verts <> Array.length first.verts
         || not (Array.for_all2 ( = ) p.verts first.verts)
      then invalid_arg "Relation.concat_parts: parts disagree on vertices")
    parts;
  if Array.length parts = 1 then first
  else
    let nrows = Array.fold_left (fun acc p -> acc + p.nrows) 0 parts in
    let cols =
      Array.init (Array.length first.verts) (fun j ->
          Column.concat (Array.map (fun p -> p.cols.(j)) parts))
    in
    { first with cols; nrows }

let row_array t i = Array.map (fun c -> Column.get c i) t.cols

let iter_rows t f =
  let w = width t in
  let buf = Array.make w 0 in
  for i = 0 to t.nrows - 1 do
    for j = 0 to w - 1 do
      buf.(j) <- Column.get t.cols.(j) i
    done;
    f buf
  done

(* Gather the first [n] row indices of [rows] out of every column of
   [t]. [rows] entries are in bounds by construction. *)
let gather t rows n =
  Array.map
    (fun c ->
      let src = Column.read c in
      let out = Array.make n 0 in
      for i = 0 to n - 1 do
        Array.unsafe_set out i (Array.unsafe_get src (Array.unsafe_get rows i))
      done;
      Column.unsafe_of_array ~sorted:false out)
    t.cols

(* Pairs grouped by key in a compressed sparse layout: key id [kid] owns
   the [starts.(kid) .. starts.(kid) + counts.(kid) - 1] slice of
   [vals], in pair order — per-key insertion order is what keeps the
   kernels bit-identical to the row-major reference. *)
type csr = {
  index : Int_table.t; (* key -> key id *)
  counts : int array;
  starts : int array;
  vals : int array;
}

let csr_of_pairs keys vals_in =
  let np = Array.length keys in
  let index = Int_table.create ~capacity:(2 * np) () in
  let kid_of = Array.make (max np 1) 0 in
  let nkeys = ref 0 in
  for k = 0 to np - 1 do
    let kid = Int_table.find_or_add index (Array.unsafe_get keys k) ~default:!nkeys in
    if kid = !nkeys then incr nkeys;
    Array.unsafe_set kid_of k kid
  done;
  let counts = Array.make (max !nkeys 1) 0 in
  for k = 0 to np - 1 do
    let kid = Array.unsafe_get kid_of k in
    Array.unsafe_set counts kid (Array.unsafe_get counts kid + 1)
  done;
  let starts = Array.make (max !nkeys 1) 0 in
  let acc = ref 0 in
  for kid = 0 to !nkeys - 1 do
    starts.(kid) <- !acc;
    acc := !acc + counts.(kid)
  done;
  let vals = Array.make (max np 1) 0 in
  let fill = Array.copy starts in
  for k = 0 to np - 1 do
    let kid = Array.unsafe_get kid_of k in
    Array.unsafe_set vals (Array.unsafe_get fill kid) (Array.unsafe_get vals_in k);
    Array.unsafe_set fill kid (Array.unsafe_get fill kid + 1)
  done;
  { index; counts; starts; vals }

let project t keep =
  let cols = Array.map (fun v -> column t v) keep in
  make (Array.copy keep) cols t.nrows

(* --- extend ------------------------------------------------------------ *)

let is_nondecreasing arr =
  let rec go i = i >= Array.length arr || (arr.(i - 1) <= arr.(i) && go (i + 1)) in
  Array.length arr <= 1 || go 1

let extend_impl ?meter ?(max_rows = max_int) t ~on ~new_vertex (p : Exec.pairs) =
  let on_col = column t on in
  let pl = Column.read p.Exec.left and pr = Column.read p.Exec.right in
  let np = Array.length pl in
  let od = Column.read on_col in
  let n = t.nrows in
  if Column.sorted on_col && is_nondecreasing pl then begin
    (* Merge path: the on-column is strictly increasing (each key on at
       most one row) and the pairs arrive grouped by non-decreasing left
       key — a single forward scan reproduces the hash path's output
       order exactly. *)
    let out_rows = Int_vec.create () in
    let out_new = Int_vec.create () in
    let nrows = ref 0 in
    let i = ref 0 and k = ref 0 in
    while !i < n && !k < np do
      let key = od.(!i) and l = pl.(!k) in
      if l < key then incr k
      else if l > key then incr i
      else begin
        Int_vec.push out_rows !i;
        Int_vec.push out_new pr.(!k);
        incr nrows;
        if !nrows > max_rows then raise (Too_large !nrows);
        incr k
      end
    done;
    Cost.charge meter !nrows;
    make
      (Array.append t.verts [| new_vertex |])
      (Array.append
         (gather t (Int_vec.to_array out_rows) !nrows)
         [| Column.unsafe_of_array ~sorted:false (Int_vec.to_array out_new) |])
      !nrows
  end
  else begin
    (* Hash path: pairs grouped by left key, one counting pass to size
       the output exactly, then straight column fills — no per-row
       closures, no growth reallocation. *)
    let csr = csr_of_pairs pl pr in
    let row_kid = Array.make (max n 1) (-1) in
    let row_cnt = Array.make (max n 1) 0 in
    let total = ref 0 in
    for i = 0 to n - 1 do
      let kid = Int_table.find_default csr.index (Array.unsafe_get od i) ~default:(-1) in
      Array.unsafe_set row_kid i kid;
      if kid >= 0 then begin
        let cnt = Array.unsafe_get csr.counts kid in
        Array.unsafe_set row_cnt i cnt;
        total := !total + cnt;
        if !total > max_rows then raise (Too_large (max_rows + 1))
      end
    done;
    Cost.charge meter !total;
    let w = Array.length t.cols in
    let out = Array.make (w + 1) Column.empty in
    for c = 0 to w - 1 do
      let src = Column.read t.cols.(c) in
      let dst = Array.make !total 0 in
      let r = ref 0 in
      for i = 0 to n - 1 do
        let v = Array.unsafe_get src i in
        for _ = 1 to Array.unsafe_get row_cnt i do
          Array.unsafe_set dst !r v;
          incr r
        done
      done;
      out.(c) <- Column.unsafe_of_array ~sorted:false dst
    done;
    let dst = Array.make !total 0 in
    let r = ref 0 in
    for i = 0 to n - 1 do
      let kid = Array.unsafe_get row_kid i in
      if kid >= 0 then begin
        let s = Array.unsafe_get csr.starts kid in
        for j = 0 to Array.unsafe_get csr.counts kid - 1 do
          Array.unsafe_set dst !r (Array.unsafe_get csr.vals (s + j));
          incr r
        done
      end
    done;
    out.(w) <- Column.unsafe_of_array ~sorted:false dst;
    make (Array.append t.verts [| new_vertex |]) out !total
  end

(* --- fuse -------------------------------------------------------------- *)

(* Rows of [t] grouped by the values of its [ci]th column. *)
let rows_csr t ci =
  csr_of_pairs (Column.read t.cols.(ci)) (Array.init t.nrows (fun i -> i))

let fuse_impl ?meter ?(max_rows = max_int) left right ~on_left ~on_right (p : Exec.pairs) =
  let cl = col_index_exn left on_left in
  let cr = col_index_exn right on_right in
  let lc = rows_csr left cl in
  let rc = rows_csr right cr in
  let pl = Column.read p.Exec.left and pr = Column.read p.Exec.right in
  let np = Array.length pl in
  (* Counting pass: exact output size and each pair's key ids. *)
  let lkid = Array.make (max np 1) (-1) and rkid = Array.make (max np 1) (-1) in
  let total = ref 0 in
  for k = 0 to np - 1 do
    let lk = Int_table.find_default lc.index (Array.unsafe_get pl k) ~default:(-1) in
    let rk = Int_table.find_default rc.index (Array.unsafe_get pr k) ~default:(-1) in
    Array.unsafe_set lkid k lk;
    Array.unsafe_set rkid k rk;
    if lk >= 0 && rk >= 0 then begin
      total := !total + (Array.unsafe_get lc.counts lk * Array.unsafe_get rc.counts rk);
      if !total > max_rows then raise (Too_large (max_rows + 1))
    end
  done;
  Cost.charge meter !total;
  let out_l = Array.make (max !total 1) 0 and out_r = Array.make (max !total 1) 0 in
  let r = ref 0 in
  for k = 0 to np - 1 do
    let lk = Array.unsafe_get lkid k and rk = Array.unsafe_get rkid k in
    if lk >= 0 && rk >= 0 then begin
      let ls = Array.unsafe_get lc.starts lk and ln = Array.unsafe_get lc.counts lk in
      let rs = Array.unsafe_get rc.starts rk and rn = Array.unsafe_get rc.counts rk in
      for a = 0 to ln - 1 do
        let li = Array.unsafe_get lc.vals (ls + a) in
        for b = 0 to rn - 1 do
          Array.unsafe_set out_l !r li;
          Array.unsafe_set out_r !r (Array.unsafe_get rc.vals (rs + b));
          incr r
        done
      done
    end
  done;
  make
    (Array.append left.verts right.verts)
    (Array.append (gather left out_l !total) (gather right out_r !total))
    !total

(* --- filter_pairs ------------------------------------------------------ *)

let filter_pairs_impl ?meter t ~c1 ~c2 (p : Exec.pairs) =
  let i1 = col_index_exn t c1 and i2 = col_index_exn t c2 in
  let pl = Column.read p.Exec.left and pr = Column.read p.Exec.right in
  let set = Int_table.Multimap.create ~capacity:(Array.length pl) () in
  for k = 0 to Array.length pl - 1 do
    Int_table.Multimap.add set pl.(k) pr.(k)
  done;
  let d1 = Column.read t.cols.(i1) and d2 = Column.read t.cols.(i2) in
  let keep = Array.make (max t.nrows 1) 0 in
  let nkeep = ref 0 in
  for i = 0 to t.nrows - 1 do
    if Int_table.Multimap.mem_pair set d1.(i) d2.(i) then begin
      Array.unsafe_set keep !nkeep i;
      incr nkeep
    end
  done;
  Cost.charge meter t.nrows;
  if !nkeep = t.nrows then t else make t.verts (gather t keep !nkeep) !nkeep

(* --- distinct ----------------------------------------------------------- *)

let distinct_impl ?meter t =
  (* Any strictly-increasing column certifies every row distinct. *)
  if t.nrows <= 1 || Array.exists Column.sorted t.cols then begin
    Cost.charge meter t.nrows;
    t
  end
  else begin
    let w = Array.length t.cols in
    let cols_data = Array.map Column.read t.cols in
    let cap = ref 16 in
    while !cap < 2 * t.nrows do
      cap := !cap * 2
    done;
    let mask = !cap - 1 in
    let slots = Array.make !cap (-1) in
    let keep = Array.make t.nrows 0 in
    let nkeep = ref 0 in
    let row_equal i j =
      let rec go c =
        c >= w
        || (let col = Array.unsafe_get cols_data c in
            Array.unsafe_get col i = Array.unsafe_get col j && go (c + 1))
      in
      go 0
    in
    for i = 0 to t.nrows - 1 do
      let h = ref 0 in
      for c = 0 to w - 1 do
        h := (!h lxor Array.unsafe_get (Array.unsafe_get cols_data c) i) * 0x2545F4914F6CDD1D
      done;
      let j = ref (!h land mask) in
      while
        let s = Array.unsafe_get slots !j in
        s >= 0 && not (row_equal s i)
      do
        j := (!j + 1) land mask
      done;
      if Array.unsafe_get slots !j < 0 then begin
        (* First occurrence wins: order-preserving, like the reference. *)
        Array.unsafe_set slots !j i;
        Array.unsafe_set keep !nkeep i;
        incr nkeep
      end
    done;
    Cost.charge meter t.nrows;
    if !nkeep = t.nrows then t else make t.verts (gather t keep !nkeep) !nkeep
  end

(* --- sort_rows ---------------------------------------------------------- *)

let sort_rows_impl t =
  (* A strictly-increasing first column already orders the rows. *)
  if t.nrows <= 1 || (width t > 0 && Column.sorted t.cols.(0)) then t
  else begin
    let w = Array.length t.cols in
    let cols_data = Array.map Column.read t.cols in
    let idx = Array.init t.nrows (fun i -> i) in
    let cmp a b =
      let rec go c =
        if c >= w then 0
        else
          let d = Int.compare cols_data.(c).(a) cols_data.(c).(b) in
          if d <> 0 then d else go (c + 1)
      in
      go 0
    in
    Array.sort cmp idx;
    make t.verts (gather t idx t.nrows) t.nrows
  end

(* --- cross -------------------------------------------------------------- *)

let cross_impl ?meter ?(max_rows = max_int) a b =
  let nrows = a.nrows * b.nrows in
  if nrows > max_rows then raise (Too_large nrows);
  Cost.charge meter nrows;
  let verts = Array.append a.verts b.verts in
  if b.nrows = 1 then
    (* One right row: left columns survive untouched (pointer copy), the
       single right row is replicated down every output row. *)
    make verts
      (Array.append a.cols
         (Array.map
            (fun c ->
              Column.unsafe_of_array ~sorted:false (Array.make nrows (Column.get c 0)))
            b.cols))
      nrows
  else if a.nrows = 1 then
    make verts
      (Array.append
         (Array.map
            (fun c ->
              Column.unsafe_of_array ~sorted:false (Array.make nrows (Column.get c 0)))
            a.cols)
         b.cols)
      nrows
  else begin
    let left =
      Array.map
        (fun c ->
          let src = Column.read c in
          let out = Array.make nrows 0 in
          let r = ref 0 in
          for i = 0 to a.nrows - 1 do
            let v = src.(i) in
            for _ = 0 to b.nrows - 1 do
              out.(!r) <- v;
              incr r
            done
          done;
          Column.unsafe_of_array ~sorted:false out)
        a.cols
    in
    let right =
      Array.map
        (fun c ->
          let src = Column.read c in
          let out = Array.make nrows 0 in
          let r = ref 0 in
          for _ = 0 to a.nrows - 1 do
            for j = 0 to b.nrows - 1 do
              out.(!r) <- src.(j);
              incr r
            done
          done;
          Column.unsafe_of_array ~sorted:false out)
        b.cols
    in
    make verts (Array.append left right) nrows
  end

(* --- naive row-major reference ------------------------------------------ *)

module Naive = struct
  (* The seed's row-major implementation, retained verbatim in spirit:
     one flat [data] array, boxed hashtables, polymorphic sorts. It is
     the ground truth the columnar kernels are compared against under
     ROX_SANITIZE=1 (RX306), the oracle of the property tests, and the
     "old" side of bench/exp_relation. *)

  type r = { verts : int array; data : int array (* row-major *); nrows : int }

  let of_relation t =
    let w = width t in
    let data = Array.make (t.nrows * w) 0 in
    for j = 0 to w - 1 do
      let src = Column.read t.cols.(j) in
      for i = 0 to t.nrows - 1 do
        data.((i * w) + j) <- src.(i)
      done
    done;
    { verts = Array.copy t.verts; data; nrows = t.nrows }

  let to_relation r =
    let w = Array.length r.verts in
    let cols =
      Array.init w (fun j ->
          let out = Array.make r.nrows 0 in
          for i = 0 to r.nrows - 1 do
            out.(i) <- r.data.((i * w) + j)
          done;
          Column.unsafe_of_array_detect out)
    in
    make (Array.copy r.verts) cols r.nrows

  let width r = Array.length r.verts

  let col_index_exn r v =
    let rec find i =
      if i >= Array.length r.verts then invalid_arg "Relation.Naive: vertex not in relation"
      else if r.verts.(i) = v then i
      else find (i + 1)
    in
    find 0

  let singleton ~vertex nodes =
    { verts = [| vertex |]; data = Array.copy nodes; nrows = Array.length nodes }

  let of_pairs ~v1 ~v2 ~left ~right =
    let n = Array.length left in
    let data = Array.make (2 * n) 0 in
    for i = 0 to n - 1 do
      data.(2 * i) <- left.(i);
      data.((2 * i) + 1) <- right.(i)
    done;
    { verts = [| v1; v2 |]; data; nrows = n }

  let pairs_multimap ~left ~right =
    let map : (int, Int_vec.t) Hashtbl.t = Hashtbl.create (Array.length left) in
    Array.iteri
      (fun i l ->
        let vec =
          match Hashtbl.find_opt map l with
          | Some v -> v
          | None ->
            let v = Int_vec.create ~capacity:2 () in
            Hashtbl.replace map l v;
            v
        in
        Int_vec.push vec right.(i))
      left;
    map

  let extend ?(max_rows = max_int) t ~on ~new_vertex ~left ~right =
    let c = col_index_exn t on in
    let w = width t in
    let map = pairs_multimap ~left ~right in
    let out = Int_vec.create () in
    let nrows = ref 0 in
    for i = 0 to t.nrows - 1 do
      match Hashtbl.find_opt map t.data.((i * w) + c) with
      | None -> ()
      | Some matches ->
        Int_vec.iter
          (fun m ->
            for j = 0 to w - 1 do
              Int_vec.push out t.data.((i * w) + j)
            done;
            Int_vec.push out m;
            incr nrows;
            if !nrows > max_rows then raise (Too_large !nrows))
          matches
    done;
    { verts = Array.append t.verts [| new_vertex |];
      data = Int_vec.to_array out;
      nrows = !nrows }

  let rows_by_key t c =
    let w = width t in
    let map : (int, Int_vec.t) Hashtbl.t = Hashtbl.create (max 16 t.nrows) in
    for i = 0 to t.nrows - 1 do
      let key = t.data.((i * w) + c) in
      let vec =
        match Hashtbl.find_opt map key with
        | Some v -> v
        | None ->
          let v = Int_vec.create ~capacity:2 () in
          Hashtbl.replace map key v;
          v
      in
      Int_vec.push vec i
    done;
    map

  let fuse ?(max_rows = max_int) left right ~on_left ~on_right ~pl ~pr =
    let cl = col_index_exn left on_left in
    let cr = col_index_exn right on_right in
    let wl = width left and wr = width right in
    let left_rows = rows_by_key left cl in
    let right_rows = rows_by_key right cr in
    let out = Int_vec.create () in
    let nrows = ref 0 in
    Array.iteri
      (fun i lnode ->
        let rnode = pr.(i) in
        match (Hashtbl.find_opt left_rows lnode, Hashtbl.find_opt right_rows rnode) with
        | Some lrows, Some rrows ->
          Int_vec.iter
            (fun li ->
              Int_vec.iter
                (fun ri ->
                  for j = 0 to wl - 1 do
                    Int_vec.push out left.data.((li * wl) + j)
                  done;
                  for j = 0 to wr - 1 do
                    Int_vec.push out right.data.((ri * wr) + j)
                  done;
                  incr nrows;
                  if !nrows > max_rows then raise (Too_large !nrows))
                rrows)
            lrows
        | _ -> ())
      pl;
    { verts = Array.append left.verts right.verts;
      data = Int_vec.to_array out;
      nrows = !nrows }

  let filter_pairs t ~c1 ~c2 ~left ~right =
    let i1 = col_index_exn t c1 and i2 = col_index_exn t c2 in
    let w = width t in
    let set : (int * int, unit) Hashtbl.t = Hashtbl.create (Array.length left) in
    Array.iteri (fun i l -> Hashtbl.replace set (l, right.(i)) ()) left;
    let out = Int_vec.create () in
    let nrows = ref 0 in
    for i = 0 to t.nrows - 1 do
      let key = (t.data.((i * w) + i1), t.data.((i * w) + i2)) in
      if Hashtbl.mem set key then begin
        for j = 0 to w - 1 do
          Int_vec.push out t.data.((i * w) + j)
        done;
        incr nrows
      end
    done;
    { t with data = Int_vec.to_array out; nrows = !nrows }

  let project t keep =
    let cols = Array.map (col_index_exn t) keep in
    let w = width t in
    let nw = Array.length cols in
    let data = Array.make (t.nrows * nw) 0 in
    for i = 0 to t.nrows - 1 do
      Array.iteri (fun j c -> data.((i * nw) + j) <- t.data.((i * w) + c)) cols
    done;
    { verts = Array.copy keep; data; nrows = t.nrows }

  let row_array t i =
    let w = width t in
    Array.sub t.data (i * w) w

  let distinct t =
    let seen : (int array, unit) Hashtbl.t = Hashtbl.create (max 16 t.nrows) in
    let out = Int_vec.create () in
    let nrows = ref 0 in
    for i = 0 to t.nrows - 1 do
      let row = row_array t i in
      if not (Hashtbl.mem seen row) then begin
        Hashtbl.replace seen row ();
        Array.iter (Int_vec.push out) row;
        incr nrows
      end
    done;
    { t with data = Int_vec.to_array out; nrows = !nrows }

  let sort_rows t =
    let rows = Array.init t.nrows (row_array t) in
    Array.sort compare rows;
    let w = width t in
    let data = Array.make (t.nrows * w) 0 in
    Array.iteri (fun i row -> Array.blit row 0 data (i * w) w) rows;
    { t with data }

  let cross ?(max_rows = max_int) a b =
    let wa = width a and wb = width b in
    let nrows = a.nrows * b.nrows in
    if nrows > max_rows then raise (Too_large nrows);
    let data = Array.make (nrows * (wa + wb)) 0 in
    let r = ref 0 in
    for i = 0 to a.nrows - 1 do
      for j = 0 to b.nrows - 1 do
        Array.blit a.data (i * wa) data (!r * (wa + wb)) wa;
        Array.blit b.data (j * wb) data ((!r * (wa + wb)) + wa) wb;
        incr r
      done
    done;
    { verts = Array.append a.verts b.verts; data; nrows }
end

(* --- sanitizer wrappers ------------------------------------------------- *)

(* Kernels take the session's sanitize mode explicitly; a missing argument
   falls back to the process default, which the RX307 confinement trap
   rejects inside an armed session region. *)
let resolve = function Some s -> s | None -> Sanitize.default_mode ()

let check_flags ~op t =
  Array.iteri
    (fun i c ->
      Sanitize.check_column_flag ~op
        ~what:(Printf.sprintf "column %d (vertex %d)" i t.verts.(i))
        c)
    t.cols

let check_against ~op result naive =
  check_flags ~op result;
  Sanitize.check_kernel_equiv ~op ~what:"result" (equal result (Naive.to_relation naive))

let pair_arrays (p : Exec.pairs) = (Column.read p.Exec.left, Column.read p.Exec.right)

let extend ?sanitize ?meter ?max_rows t ~on ~new_vertex p =
  let r = extend_impl ?meter ?max_rows t ~on ~new_vertex p in
  if resolve sanitize then begin
    let op = "Relation.extend" in
    check_flags ~op t;
    Sanitize.check_column_flag ~op ~what:"pairs.left" p.Exec.left;
    Sanitize.check_column_flag ~op ~what:"pairs.right" p.Exec.right;
    let left, right = pair_arrays p in
    check_against ~op r
      (Naive.extend ?max_rows (Naive.of_relation t) ~on ~new_vertex ~left ~right)
  end;
  r

let fuse ?sanitize ?meter ?max_rows left right ~on_left ~on_right p =
  let r = fuse_impl ?meter ?max_rows left right ~on_left ~on_right p in
  if resolve sanitize then begin
    let op = "Relation.fuse" in
    check_flags ~op left;
    check_flags ~op right;
    let pl, pr = pair_arrays p in
    check_against ~op r
      (Naive.fuse ?max_rows (Naive.of_relation left) (Naive.of_relation right)
         ~on_left ~on_right ~pl ~pr)
  end;
  r

let filter_pairs ?sanitize ?meter t ~c1 ~c2 p =
  let r = filter_pairs_impl ?meter t ~c1 ~c2 p in
  if resolve sanitize then begin
    let op = "Relation.filter_pairs" in
    check_flags ~op t;
    let left, right = pair_arrays p in
    check_against ~op r (Naive.filter_pairs (Naive.of_relation t) ~c1 ~c2 ~left ~right)
  end;
  r

let project ?sanitize t keep =
  let r = project t keep in
  if resolve sanitize then
    check_against ~op:"Relation.project" r (Naive.project (Naive.of_relation t) keep);
  r

let distinct ?sanitize ?meter t =
  let r = distinct_impl ?meter t in
  if resolve sanitize then
    check_against ~op:"Relation.distinct" r (Naive.distinct (Naive.of_relation t));
  r

let sort_rows ?sanitize t =
  let r = sort_rows_impl t in
  if resolve sanitize then
    check_against ~op:"Relation.sort_rows" r (Naive.sort_rows (Naive.of_relation t));
  r

let cross ?sanitize ?meter ?max_rows a b =
  let r = cross_impl ?meter ?max_rows a b in
  if resolve sanitize then
    check_against ~op:"Relation.cross" r
      (Naive.cross ?max_rows (Naive.of_relation a) (Naive.of_relation b));
  r

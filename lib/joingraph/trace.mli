(** Optimizer event trace.

    The paper's figures narrate ROX's inner life: edge weights after each
    exploration step (Figure 3.2), per-round (cost, sf) pairs of competing
    path segments (Table 2), the final edge execution order (Figures
    3.3/3.4). The optimizer emits these events; the benchmark harness
    renders them. Disabled traces cost nothing. *)

type chain_path = {
  label : string;      (** e.g. "p1" *)
  via : string;        (** first vertex the segment branches through *)
  cost : float;
  sf : float;
}

type event =
  | Vertex_initialized of { vertex : int; card : int }
  | Edge_weighted of { edge : int; weight : float }
  | Chain_started of { source : int; min_edge : int }
  | Chain_round of { round : int; cutoff : int; paths : chain_path list }
  | Chain_chosen of {
      edges : int list;
      trigger : [ `Stopping_condition | `Exhausted | `Single_edge ];
    }
  | Edge_executed of { edge : int; order : int; pairs : int; rel_rows : int }
  | Cache_lookup of { edge : int; store : [ `Relation | `Estimate ]; hit : bool }
      (** A [Rox_cache] consultation: [`Relation] lookups guard full edge
          executions, [`Estimate] lookups guard cut-off sampled runs.
          Emitted only when a cache store is wired in, so cache-off traces
          are unchanged. *)
  | Truncated of { dropped : int }
      (** The trace hit its event cap and [dropped] later events were
          discarded. Never passed to {!emit}: synthesized (at most once,
          always last) by {!events} so every consumer sees an explicit
          partial-trace marker instead of a silently shortened history. *)

type t

val default_cap : int
(** 200k events — generous (the paper's workloads emit a few hundred)
    while bounding a pathological session to a few MB. *)

val create : ?cap:int -> ?enabled:bool -> unit -> t
(** @raise Invalid_argument when [cap < 1]. *)

val enabled : t -> bool
val cap : t -> int

val dropped : t -> int
(** Events discarded past the cap so far. *)

val emit : t -> event -> unit
(** Disabled traces and events past the cap cost one test; nothing is
    stored (the drop is counted). *)

val events : t -> event list
(** In emission order, with a final {!Truncated} marker iff events were
    dropped. Memoized: repeated calls (and the accessors below) reverse
    the history once per emission burst instead of once per call. *)

val execution_order : t -> int list
(** Edge ids in the order they were executed. *)

val chain_rounds : t -> (int * int * chain_path list) list
(** All (round, cutoff, paths) events — the raw data behind Table 2. *)

val cache_hits : ?store:[ `Relation | `Estimate ] -> t -> int
(** Number of cache hits recorded, optionally for one store only. *)

val cache_lookups : ?store:[ `Relation | `Estimate ] -> t -> int
(** Number of cache consultations recorded (hits + misses). *)

(** Shared Join Graph execution state: vertex tables + materialized
    components.

    Both the ROX optimizer and the fixed-plan executor of the classical
    baseline drive edge execution through this module, so both measure the
    very same operator work — plans differ only in edge *order* and
    sampling, exactly the comparison of Section 4.

    The runtime tracks, per vertex, the materialized table T(v) (initially
    unset; initialized from the best index when an incident edge first
    executes — Algorithm 1, lines 8–12), and per already-executed connected
    subgraph a fully joined {!Relation}. Executing an edge creates,
    extends, fuses or filters components and semijoin-reduces every table
    of the affected component. *)

open Rox_storage

type t

exception Blowup of { edge : int; rows : int; limit : int }
(** Raised when an edge execution would materialize more than [max_rows]
    tuples — the runaway-plan guard for the enumeration experiments. *)

type parallel = {
  parts : int;
      (** partition count K; inject the capability only when K > 1 *)
  run_tasks : int -> (worker:int -> int -> unit) -> unit;
      (** the session's pool fork/join ([Rox_core.Session.run_tasks]):
          runs [n] independent tasks to completion, the caller
          participating as worker 0. Handed in as a closure because this
          layer sits below [Rox_core.Pool] in the dependency order. *)
}
(** Intra-query parallelism capability. When present (and an edge's base
    input has at least K rows), {!execute_edge} runs the component kernel
    as K partition-joins on the pool and concatenates the slices in part
    order — bit-identical to the sequential kernel by the kernels'
    order-of-first-input contract, enforced under the sanitizer by the
    RX310 [Partition_consistent] replay. Work is metered per task and
    folded in part order, so cost accounting stays deterministic. *)

type config = {
  max_rows : int;
      (** materialization guard: {!execute_edge} raises {!Blowup} past it *)
  sanitize : bool;
      (** the session's contract-checking mode, threaded into every
          operator this runtime calls *)
  cache : Rox_cache.Store.t option;
      (** cross-query relation cache: {!execute_edge} consults it (keyed
          by physical variant, endpoint identities and input table
          contents, scoped by the engine epoch) before running the
          staircase / value join, and stores fresh results. Component
          maintenance and semijoin reduction always run — only the
          physical join itself is elided on a hit. *)
  table_sampler : (int -> Rox_util.Column.t -> Rox_util.Column.t) option;
      (** [table_sampler vertex domain] may thin a table when it is first
          materialized from its index — the hook behind the approximate
          (sample-driven) execution mode of Section 6. Tables refreshed
          from executed relations are never re-sampled. *)
  telemetry : Rox_telemetry.Sink.t;
      (** the session's telemetry sink: {!execute_edge} runs under an
          ["execute_edge"] span carrying an [("edge", id)] attribute and
          feeds the edge-latency histogram and cache hit/miss counters.
          The null sink (see {!default_config}) costs one boolean test. *)
  parallel : parallel option;
      (** [None] (the default, and the [--parallel-parts 1] path) is the
          sequential kernel, byte-for-byte the historical behavior. *)
}

val default_config : unit -> config
(** 50M-row guard, no cache, no sampler, null telemetry, sanitize =
    {!Rox_algebra.Sanitize.default_mode} (hence an RX307 violation inside
    an armed session region — sessions always build their config
    explicitly). *)

val create : ?config:config -> Engine.t -> Graph.t -> t
(** One runtime per query run. Sessions pass the per-query [config]
    explicitly; omitting it takes {!default_config} (direct/test use). *)

val engine : t -> Engine.t
val graph : t -> Graph.t

val is_trivial_edge : Graph.t -> Edge.t -> bool
(** Descendant steps out of a document root are always satisfied ("not
    necessary to execute to produce the correct result", Section 3.2);
    they are marked executed at creation and skipped by every plan. *)

val executed : t -> Edge.t -> bool

val implied : t -> Edge.t -> bool
(** The edge completed for free because it was transitively implied by
    executed equi-joins (a Figure 4 join equivalence). *)

val mark_executed : t -> Edge.t -> unit
val unexecuted_edges : t -> Edge.t list

val unexecuted_incident : t -> int -> Edge.t list
(** The paper's edges(v): un-executed edges touching the vertex. *)

val all_executed : t -> bool

val table : t -> int -> Rox_util.Column.t option
(** T(v), if materialized. *)

val table_or_domain : t -> int -> Rox_util.Column.t
(** T(v), or the vertex's index domain when not yet materialized — the
    inner input for full or sampled edge evaluation. *)

val ensure_table : t -> int -> Rox_util.Column.t
(** Materialize T(v) from its index domain if unset, and return it. *)

val component_rows : t -> int array
(** Row counts of live components (diagnostics). *)

type exec_info = {
  pair_count : int;      (** operator result pairs *)
  rel_rows : int;        (** rows of the affected component afterwards *)
  changed : int list;    (** vertices whose T(v) shrank (incl. endpoints) *)
  cache_hit : bool;      (** the physical join was replayed from the cache *)
}

val execute_edge :
  ?meter:Rox_algebra.Cost.meter ->
  ?equi_algo:Exec.equi_algo ->
  ?step_direction:Exec.direction ->
  t ->
  Edge.t ->
  exec_info
(** Full evaluation of one edge with component maintenance.
    @raise Invalid_argument if the edge was already executed.
    @raise Blowup when the component would exceed [max_rows]. *)

val final_relation : ?meter:Rox_algebra.Cost.meter -> t -> Relation.t
(** The fully joined relation over all non-root vertices after every edge
    executed. Vertices never touched by an edge enter as their index
    domains; genuinely disconnected components combine by Cartesian
    product (the Join Graph semantics). *)

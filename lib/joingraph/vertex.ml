type annot =
  | Root
  | Element of string
  | Text of Rox_algebra.Selection.t option
  | Attr of string * Rox_algebra.Selection.t option

type t = { id : int; doc_id : int; annot : annot }

let label t =
  match t.annot with
  | Root -> "root"
  | Element q -> q
  | Text None -> "text()"
  | Text (Some pred) -> "text() " ^ Rox_algebra.Selection.to_string pred
  | Attr (q, None) -> "@" ^ q
  | Attr (q, Some pred) -> "@" ^ q ^ " " ^ Rox_algebra.Selection.to_string pred

(* Graph-independent identity for cache fingerprints: two vertices with
   equal keys denote the same base node set, whatever their graph ids. *)
let fingerprint_label t = Printf.sprintf "d%d:%s" t.doc_id (label t)

let is_element t = match t.annot with Element _ -> true | _ -> false
let is_root t = match t.annot with Root -> true | _ -> false

let predicate t =
  match t.annot with
  | Text pred | Attr (_, pred) -> pred
  | Root | Element _ -> None

let equality_value t =
  match predicate t with
  | Some (Rox_algebra.Selection.Eq v) -> Some v
  | Some _ | None -> None

(* Open-addressing int -> int hash table (linear probing, power-of-two
   capacity, Fibonacci mixing). No boxing, no polymorphic [Hashtbl.hash]:
   the workhorse behind the columnar join kernels and Floyd sampling.

   [min_int] is the empty-slot sentinel, so it cannot be a key — node
   identifiers, row indices and sample values are all non-negative. *)

let empty_key = min_int

(* 2^63 / phi, truncated to OCaml's 63-bit int range. *)
let fib = 0x2545F4914F6CDD1D

type t = {
  mutable keys : int array;
  mutable vals : int array;
  mutable mask : int; (* capacity - 1, capacity a power of two *)
  mutable size : int;
}

let rec pow2_at_least n c = if c >= n then c else pow2_at_least n (c * 2)

let create ?(capacity = 16) () =
  let cap = pow2_at_least (max 8 capacity) 8 in
  {
    keys = Array.make cap empty_key;
    vals = Array.make cap 0;
    mask = cap - 1;
    size = 0;
  }

let length t = t.size

let slot_of keys mask key =
  (* [i] stays masked, so the unsafe reads are in bounds. *)
  let i = ref (key * fib land mask) in
  while
    let k = Array.unsafe_get keys !i in
    k <> empty_key && k <> key
  do
    i := (!i + 1) land mask
  done;
  !i

let grow t =
  let cap = (t.mask + 1) * 2 in
  let keys = Array.make cap empty_key in
  let vals = Array.make cap 0 in
  let mask = cap - 1 in
  for i = 0 to t.mask do
    let k = t.keys.(i) in
    if k <> empty_key then begin
      let j = slot_of keys mask k in
      keys.(j) <- k;
      vals.(j) <- t.vals.(i)
    end
  done;
  t.keys <- keys;
  t.vals <- vals;
  t.mask <- mask

(* Keep load <= 1/2 so probe sequences stay short. *)
let ensure_room t = if 2 * (t.size + 1) > t.mask + 1 then grow t

let set t key v =
  if key = empty_key then invalid_arg "Int_table: min_int key";
  ensure_room t;
  let i = slot_of t.keys t.mask key in
  if t.keys.(i) = empty_key then begin
    t.keys.(i) <- key;
    t.size <- t.size + 1
  end;
  t.vals.(i) <- v

let find t key =
  let i = slot_of t.keys t.mask key in
  if t.keys.(i) = empty_key then None else Some t.vals.(i)

(* Allocation-free [find]: hot kernels probe once per row. *)
let find_default t key ~default =
  let i = slot_of t.keys t.mask key in
  if t.keys.(i) = empty_key then default else t.vals.(i)

let mem t key = t.keys.(slot_of t.keys t.mask key) <> empty_key

let add t key = set t key 0

(* Returns the existing value for [key], or inserts [default] and
   returns it — one probe for the find-or-create pattern. *)
let find_or_add t key ~default =
  if key = empty_key then invalid_arg "Int_table: min_int key";
  ensure_room t;
  let i = slot_of t.keys t.mask key in
  if t.keys.(i) = empty_key then begin
    t.keys.(i) <- key;
    t.vals.(i) <- default;
    t.size <- t.size + 1;
    default
  end
  else t.vals.(i)

let iter f t =
  for i = 0 to t.mask do
    if t.keys.(i) <> empty_key then f t.keys.(i) t.vals.(i)
  done

(* Multimap over the same skeleton: key -> dense key id via the table,
   per-key chains stored as (vals, next) entry arrays with head/tail
   slots so each key's values replay in insertion order — the kernels
   depend on that to stay bit-identical to the naive row-major
   reference. *)
module Multimap = struct
  type nonrec t = {
    index : t; (* key -> dense key id *)
    heads : Int_vec.t; (* key id -> first entry, -1 if none *)
    tails : Int_vec.t; (* key id -> last entry *)
    entries : Int_vec.t; (* entry -> value *)
    next : Int_vec.t; (* entry -> next entry of same key, -1 at end *)
  }

  let create ?(capacity = 16) () =
    {
      index = create ~capacity ();
      heads = Int_vec.create ();
      tails = Int_vec.create ();
      entries = Int_vec.create ();
      next = Int_vec.create ();
    }

  let add t key v =
    let kid = find_or_add t.index key ~default:(Int_vec.length t.heads) in
    let entry = Int_vec.length t.entries in
    Int_vec.push t.entries v;
    Int_vec.push t.next (-1);
    if kid = Int_vec.length t.heads then begin
      Int_vec.push t.heads entry;
      Int_vec.push t.tails entry
    end
    else begin
      Int_vec.set t.next (Int_vec.get t.tails kid) entry;
      Int_vec.set t.tails kid entry
    end

  let keys t = length t.index

  let iter_key t key f =
    match find t.index key with
    | None -> ()
    | Some kid ->
      let e = ref (Int_vec.get t.heads kid) in
      while !e >= 0 do
        f (Int_vec.get t.entries !e);
        e := Int_vec.get t.next !e
      done

  let mem_pair t key v =
    match find t.index key with
    | None -> false
    | Some kid ->
      let e = ref (Int_vec.get t.heads kid) in
      let found = ref false in
      while (not !found) && !e >= 0 do
        if Int_vec.get t.entries !e = v then found := true
        else e := Int_vec.get t.next !e
      done;
      !found
end

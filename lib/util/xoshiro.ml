(* xoshiro256** by Blackman & Vigna (public domain reference), seeded via
   splitmix64 so that small integer seeds still produce well-mixed states. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let int64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tt = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tt;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (int64 t) land max_int in
  create seed

(* Fork a stream from a *seed integer* without touching any live
   generator: mixing (seed, stream) through splitmix64 gives independent
   streams per index, and — unlike [split] — leaves every existing
   generator's state byte-identical. This is the only sanctioned way to
   derive per-task streams for pooled work: splitting a live RNG would
   advance it and make sequential and parallel runs diverge. *)
let fork ~seed ~stream =
  let state = ref (Int64.of_int seed) in
  let _ = splitmix64 state in
  state := Int64.logxor !state (Int64.of_int (stream + 0x51ce));
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let int t n =
  assert (n > 0);
  (* Rejection-free for practical purposes: 63 uniform bits modulo n has
     negligible bias for the n (< 2^40) used in this repository. *)
  let v = Int64.to_int (int64 t) land max_int in
  v mod n

let float t =
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int v *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (int64 t) 1L = 1L

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t n k =
  let k = min n k in
  if k <= 0 then [||]
  else if k * 3 >= n then begin
    (* Dense case: shuffle a full identity permutation and take a prefix. *)
    let all = Array.init n (fun i -> i) in
    shuffle t all;
    let out = Array.sub all 0 k in
    Array.sort Int.compare out;
    out
  end
  else begin
    (* Floyd's algorithm: k iterations, set-membership via the unboxed
       open-addressing [Int_table]. *)
    let seen = Int_table.create ~capacity:(2 * k) () in
    for j = n - k to n - 1 do
      let r = int t (j + 1) in
      if Int_table.mem seen r then Int_table.add seen j
      else Int_table.add seen r
    done;
    let out = Array.make k 0 in
    let i = ref 0 in
    Int_table.iter (fun key _ -> out.(!i) <- key; incr i) seen;
    Array.sort Int.compare out;
    out
  end

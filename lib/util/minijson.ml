type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad hex digit"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
           if !pos + 4 > n then fail "truncated \\u escape";
           let code =
             (hex s.[!pos] lsl 12) lor (hex s.[!pos + 1] lsl 8)
             lor (hex s.[!pos + 2] lsl 4) lor hex s.[!pos + 3]
           in
           pos := !pos + 4;
           (* UTF-8 encode the BMP code point (surrogate pairs decode as
              two replacement-range sequences; good enough for validation). *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
         | _ -> fail "unknown escape");
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (elements [])
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing content";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

(* --- writer ------------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to buf f =
  if Float.is_nan f || not (Float.is_finite f) then
    (* NaN / infinities have no JSON spelling; null is the least-wrong. *)
    Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec write_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> number_to buf f
  | Str s -> escape_to buf s
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write_to buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        write_to buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write_to buf v;
  Buffer.contents buf

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
let to_num_opt = function Num f -> Some f | _ -> None
let to_list_opt = function Arr l -> Some l | _ -> None

(* The shared-access event log behind the RX5xx race detector.

   Every instrumented touch of cross-domain mutable state — a cache store
   operation, an engine epoch read or bump, a telemetry aggregate merge, a
   session confinement entry — appends one event: which domain, which
   site, read or write, which locks the domain held, and an optional info
   word (the epoch value for epoch sites). The checker in
   Rox_analysis.Race_check replays the log with Eraser-style locksets and
   vector-clock happens-before.

   Overhead contract (mirrors the telemetry sink): a *disarmed* log costs
   one boolean test per instrumented site — no atomics, no allocation.
   Armed, an event is one Atomic.fetch_and_add plus five stores into a
   preallocated buffer. The buffer is bounded: events past the cap are
   counted as dropped, never grown. *)

type site_kind = Shared | Epoch | Confined

type op = Read | Write | Acquire | Release

type event = {
  seq : int;
  domain : int;
  site : int;  (* site id for Read/Write, lock id for Acquire/Release *)
  op : op;
  locks : int; (* bitmask of lock ids held by the recording domain *)
  info : int;  (* epoch value for Epoch sites; 0 otherwise *)
}

(* --- arming ------------------------------------------------------------- *)

(* Plain ref, not an Atomic: it is flipped before domains spawn (CLI
   startup or a racecheck driver) and only read afterwards — the spawn
   itself publishes the value. One load + one branch per disarmed site. *)
let armed_flag =
  ref
    (match Sys.getenv_opt "ROX_SANITIZE" with
     | None | Some "" | Some "0" -> false
     | Some _ -> true)

let armed () = !armed_flag

(* --- registration ------------------------------------------------------- *)

(* Site and lock tables grow under their own private mutex; registration
   is a cold path (object construction), never a per-access one. The
   registry mutex is deliberately *not* instrumented — the detector must
   not observe itself. *)
let registry_mutex = Mutex.create ()

type site_info = { s_name : string; s_kind : site_kind }

let sites : site_info array ref = ref [||]
let n_sites = ref 0

let lock_names : string array ref = ref [||]
let n_locks = ref 0

(* Locksets are bitmasks in an OCaml int: at most 62 tracked locks.
   Registration dedups by name — a mutex re-registered under a name seen
   before (a fixture re-run, a second cache store with the same label)
   reuses the original bit instead of burning a fresh one, so a long
   multi-pass racecheck process cannot exhaust the bitmask through
   repetition alone. The price is that two *live* mutexes sharing a name
   alias to one tracked bit (labels embed the protected object's
   identity, so in practice only temporally disjoint objects collide).
   Past 62 distinct names, registrations return -1 and their critical
   sections go untracked — graceful degradation, loud in the summary's
   lock count. *)
let max_locks = 62

let push tbl count v =
  let n = !count in
  let cap = Array.length !tbl in
  if n >= cap then begin
    let bigger = Array.make (max 16 (2 * cap)) v in
    Array.blit !tbl 0 bigger 0 n;
    tbl := bigger
  end;
  !tbl.(n) <- v;
  count := n + 1;
  n

(* Linear scan: registration is a cold path and the tables are tiny. *)
let find_name tbl count name =
  let rec go i = if i >= !count then -1 else if !tbl.(i) = name then i else go (i + 1) in
  go 0

let site ~name kind =
  Mutex.protect registry_mutex (fun () ->
      push sites n_sites { s_name = name; s_kind = kind })

let lock ~name =
  Mutex.protect registry_mutex (fun () ->
      match find_name lock_names n_locks name with
      | i when i >= 0 -> i
      | _ -> if !n_locks >= max_locks then -1 else push lock_names n_locks name)

(* Happens-before tokens are pseudo-locks used only for their
   vector-clock transfer (see below): they never appear in a lockset, so
   they get their own id space — offset far above any lockset bit — and
   their own unbounded, name-dedup'd table. Tokens must not compete with
   real mutexes for the 62 bitmask slots: a workload that forks many
   times registers tokens freely without ever untracked-ing a mutex. *)
let token_base = 1 lsl 16

let token_names : string array ref = ref [||]
let n_tokens = ref 0

let site_count () = !n_sites
let lock_count () = !n_locks

let site_name id =
  if id >= 0 && id < !n_sites then !sites.(id).s_name else "?"

let site_kind id =
  if id >= 0 && id < !n_sites then !sites.(id).s_kind else Shared

let lock_name id =
  if id >= 0 && id < !n_locks then !lock_names.(id)
  else if id >= token_base && id - token_base < !n_tokens then
    !token_names.(id - token_base)
  else "?"

let sites_snapshot () = Array.sub !sites 0 !n_sites

(* --- the event buffer --------------------------------------------------- *)

(* Flat int array, 5 slots per event. Each slot is written exactly once,
   by the domain that won the cursor for it; readers only look after the
   recording domains have quiesced (joined), which synchronizes. *)
let stride = 5
let default_cap = 65_536

let cap = ref default_cap
let buf = ref [||]
let cursor = Atomic.make 0
let dropped_count = Atomic.make 0

let ensure_buf () =
  if Array.length !buf < !cap * stride then buf := Array.make (!cap * stride) 0

let set_armed b =
  if b then ensure_buf ();
  armed_flag := b

let () = if !armed_flag then ensure_buf ()

let reset () =
  Atomic.set cursor 0;
  Atomic.set dropped_count 0

let dropped () = Atomic.get dropped_count
let recorded () = min (Atomic.get cursor) !cap

let op_code = function Read -> 0 | Write -> 1 | Acquire -> 2 | Release -> 3
let op_of_code = function 0 -> Read | 1 -> Write | 2 -> Acquire | _ -> Release

(* --- per-domain lockset ------------------------------------------------- *)

let lockset_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let locks_held () = Domain.DLS.get lockset_key

let record_raw ~site ~op ~locks ~info =
  let i = Atomic.fetch_and_add cursor 1 in
  if i < !cap then begin
    let b = !buf and o = i * stride in
    Array.unsafe_set b o (op_code op);
    Array.unsafe_set b (o + 1) ((Domain.self () :> int));
    Array.unsafe_set b (o + 2) site;
    Array.unsafe_set b (o + 3) locks;
    Array.unsafe_set b (o + 4) info
  end
  else Atomic.incr dropped_count

let record ~site ?(info = 0) op =
  if !armed_flag && site >= 0 then
    record_raw ~site ~op ~locks:(Domain.DLS.get lockset_key) ~info

(* [with_lock] is called *inside* the real critical section (after the
   Mutex.lock), so the Acquire event order reflects actual acquisition
   order and the lockset bit is honest for every access recorded while
   the lock is held. *)
let with_lock id f =
  if (not !armed_flag) || id < 0 then f ()
  else begin
    let prev = Domain.DLS.get lockset_key in
    let held = prev lor (1 lsl id) in
    Domain.DLS.set lockset_key held;
    record_raw ~site:id ~op:Acquire ~locks:held ~info:0;
    Fun.protect
      ~finally:(fun () ->
        record_raw ~site:id ~op:Release ~locks:held ~info:0;
        Domain.DLS.set lockset_key prev)
      f
  end

(* --- happens-before tokens ---------------------------------------------- *)

(* A token is a pseudo-lock used only for its vector-clock transfer:
   [hb_publish] behaves like a release (the publishing domain's history
   flows into the token), [hb_acquire] like an acquire (the token's
   history flows into the acquiring domain). Drivers bracket
   Domain.spawn/join with these so the detector sees the real fork/join
   edges instead of inventing races against initialization writes.
   Token ids live at [token_base] and up — disjoint from both lock ids
   and site ids, so the checker's per-id clocks never collide — and are
   dedup'd by name: a fixture's Nth fork reuses its first fork's token,
   which only strengthens the recorded ordering (the main domain's
   clock already covers the earlier rounds it joined). *)
let hb_token ~name =
  Mutex.protect registry_mutex (fun () ->
      match find_name token_names n_tokens name with
      | i when i >= 0 -> token_base + i
      | _ -> token_base + push token_names n_tokens name)

let hb_publish tok =
  if !armed_flag && tok >= 0 then
    record_raw ~site:tok ~op:Release ~locks:(Domain.DLS.get lockset_key) ~info:0

let hb_acquire tok =
  if !armed_flag && tok >= 0 then
    record_raw ~site:tok ~op:Acquire ~locks:(Domain.DLS.get lockset_key) ~info:0

(* --- decoding ----------------------------------------------------------- *)

let events () =
  let n = recorded () in
  let b = !buf in
  Array.init n (fun i ->
      let o = i * stride in
      {
        seq = i;
        op = op_of_code b.(o);
        domain = b.(o + 1);
        site = b.(o + 2);
        locks = b.(o + 3);
        info = b.(o + 4);
      })

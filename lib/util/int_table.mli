(** Open-addressing int -> int hash table: linear probing, power-of-two
    capacity, Fibonacci mixing — no boxing and no polymorphic
    [Hashtbl.hash] on the hot paths.

    [min_int] is the empty-slot sentinel and cannot be used as a key. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int

val set : t -> int -> int -> unit
val find : t -> int -> int option
val mem : t -> int -> bool

val find_default : t -> int -> default:int -> int
(** [find] without the option allocation: the stored value, or
    [default] when absent. *)

val add : t -> int -> unit
(** Set semantics: [add t k] is [set t k 0]. *)

val find_or_add : t -> int -> default:int -> int
(** One-probe find-or-create: the stored value, or [default] after
    inserting it. *)

val iter : (int -> int -> unit) -> t -> unit

(** Multimap: each key's values replay in insertion order — the columnar
    join kernels depend on that to stay bit-identical to the naive
    row-major reference. *)
module Multimap : sig
  type t

  val create : ?capacity:int -> unit -> t
  val add : t -> int -> int -> unit

  val keys : t -> int
  (** Number of distinct keys. *)

  val iter_key : t -> int -> (int -> unit) -> unit
  (** Values of one key, oldest first. *)

  val mem_pair : t -> int -> int -> bool
end

(** Shared-access event log for the RX5xx concurrency-soundness checks.

    Instrumented sites (the cache store, the engine mutation epoch, the
    telemetry aggregate, session confinement) append one event per touch
    of cross-domain mutable state: domain id, site id, read/write, the
    locks the domain held, and an info word. {!Rox_analysis.Race_check}
    replays the log with Eraser locksets and vector-clock happens-before.

    Overhead contract: disarmed, an instrumented site costs one boolean
    test ({!armed}) — no atomics, no allocation. Armed, one
    [Atomic.fetch_and_add] plus five stores into a preallocated bounded
    buffer; events past the cap are counted in {!dropped}, never grown.

    The log is process-global by design — it is the one observer that
    must see *every* domain — and is armed either by [ROX_SANITIZE=1] at
    startup or explicitly ({!set_armed}) before domains spawn. *)

type site_kind =
  | Shared    (** plain cross-domain mutable state; races are RX501/RX502 *)
  | Epoch     (** a generation counter; read/write races are RX503 *)
  | Confined  (** single-owner state; any second domain is RX504 *)

type op = Read | Write | Acquire | Release

type event = {
  seq : int;      (** index in global recording order *)
  domain : int;   (** [(Domain.self () :> int)] of the recording domain *)
  site : int;     (** site id for [Read]/[Write]; lock id for [Acquire]/[Release] *)
  op : op;
  locks : int;    (** bitmask of lock ids held by the recording domain *)
  info : int;     (** epoch value for [Epoch] sites; 0 otherwise *)
}

val armed : unit -> bool
(** The one test every instrumented site performs first. *)

val set_armed : bool -> unit
(** Arm or disarm; arming allocates the event buffer. Flip only while
    single-domained (before spawning workers). *)

val site : name:string -> site_kind -> int
(** Register one instrumented site (per shared *object*, not per source
    location — two private stores must not alias). Cold path, thread-safe. *)

val lock : name:string -> int
(** Register one tracked lock. Dedup'd by name: re-registering a name
    returns the original id (so repeated fixture runs or re-created
    same-labelled objects don't burn bitmask slots — label locks per
    protected object to keep live mutexes from aliasing). Locksets are
    bitmasks: at most 62 distinct names are tracked; later registrations
    return [-1] and go untracked. *)

val record : site:int -> ?info:int -> op -> unit
(** Append one [Read]/[Write] event with the domain's current lockset.
    No-op when disarmed or [site < 0]. *)

val with_lock : int -> (unit -> 'a) -> 'a
(** Mark a critical section: sets the lock's bit in the domain lockset
    and records [Acquire]/[Release] events. Call *inside* the real mutex
    so the recorded order reflects actual acquisition order. No-op
    (beyond running the thunk) when disarmed or the id is [-1]. *)

val locks_held : unit -> int
(** This domain's current lockset bitmask. *)

val hb_token : name:string -> int
(** A pseudo-lock used only for happens-before transfer. Tokens live in
    their own unbounded, name-dedup'd id space (disjoint from lock and
    site ids) and never occupy a lockset bit — fork-heavy workloads
    cannot exhaust the 62 tracked-mutex slots through tokens. *)

val hb_publish : int -> unit
(** Release-like: the caller's history flows into the token. Bracket the
    parent side of [Domain.spawn] / the child side before exit. *)

val hb_acquire : int -> unit
(** Acquire-like: the token's history flows into the caller. Bracket the
    child's entry / the parent side after [Domain.join]. *)

val reset : unit -> unit
(** Clear events and the dropped counter; registrations survive (they are
    tied to live objects). Call while single-domained. *)

val events : unit -> event array
(** Decode the recorded events in order. Call after all recording domains
    joined — the join synchronizes the buffer. *)

val dropped : unit -> int
val recorded : unit -> int

val site_count : unit -> int
val lock_count : unit -> int
val site_name : int -> string
val site_kind : int -> site_kind
val lock_name : int -> string

type site_info = { s_name : string; s_kind : site_kind }

val sites_snapshot : unit -> site_info array
(** The registered sites, indexed by site id — what the checker pairs
    with {!events}. *)

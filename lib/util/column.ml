(* Immutable int column: the unit of materialized storage.

   A column is a read-only view [off, off+len) into an int array that is
   promised never to mutate. Slicing and full-array reads are zero-copy;
   the [sorted] flag — *strictly increasing*, i.e. sorted and
   duplicate-free, the document-order contract of node sequences — is
   trusted by kernels and audited by the sanitizer (RX305). *)

type t = {
  data : int array;
  off : int;
  len : int;
  sorted : bool; (* strictly increasing over the view *)
}

let empty = { data = [||]; off = 0; len = 0; sorted = true }

let is_strictly_increasing_range arr off len =
  let rec go i = i >= off + len || (arr.(i - 1) < arr.(i) && go (i + 1)) in
  len <= 1 || go (off + 1)

let is_strictly_increasing arr = is_strictly_increasing_range arr 0 (Array.length arr)

let of_array arr =
  let data = Array.copy arr in
  let len = Array.length data in
  { data; off = 0; len; sorted = is_strictly_increasing_range data 0 len }

(* No copy and no scan: [arr] must never be mutated afterwards, and
   [sorted] is the caller's promise (checked only under ROX_SANITIZE). *)
let unsafe_of_array ~sorted arr =
  { data = arr; off = 0; len = Array.length arr; sorted }

(* No copy; detects the flag with one scan. *)
let unsafe_of_array_detect arr =
  let len = Array.length arr in
  { data = arr; off = 0; len; sorted = is_strictly_increasing_range arr 0 len }

let length t = t.len
let is_empty t = t.len = 0
let sorted t = t.sorted
let get t i = t.data.(t.off + i)

let slice t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then invalid_arg "Column.slice";
  { t with off = t.off + pos; len }

let to_array t = Array.sub t.data t.off t.len

(* Zero-copy when the view covers its whole storage (the common case);
   callers must not mutate the result. *)
let read t =
  if t.off = 0 && t.len = Array.length t.data then t.data else to_array t

let iter f t =
  for i = t.off to t.off + t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(t.off + i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = t.off to t.off + t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let equal a b =
  a.len = b.len
  &&
  let rec go i = i >= a.len || (a.data.(a.off + i) = b.data.(b.off + i) && go (i + 1)) in
  go 0

let same_storage a b = a.data == b.data

(* Bytes of the *underlying* storage — shared storage should be counted
   once by callers that account for memory (see Rox_cache). *)
let storage_bytes t = 8 * Array.length t.data

let mem t x =
  if t.sorted then begin
    (* binary search over the view *)
    let lo = ref t.off and hi = ref (t.off + t.len) in
    let found = ref false in
    while (not !found) && !lo < !hi do
      let mid = !lo + ((!hi - !lo) / 2) in
      let v = t.data.(mid) in
      if v = x then found := true else if v < x then lo := mid + 1 else hi := mid
    done;
    !found
  end
  else
    let rec go i = i < t.off + t.len && (t.data.(i) = x || go (i + 1)) in
    go t.off

(* Deterministic merge of partition outputs: parts in order, one blit
   each. The sorted flag is propagated exactly when it is provably
   honest: every non-empty part sorted AND strictly increasing across
   part boundaries — so concatenating the slices of a sorted column
   gives back a sorted column, while kernel outputs (always flagged
   unsorted) stay unsorted. *)
let concat parts =
  match Array.length parts with
  | 0 -> empty
  | 1 -> parts.(0)
  | _ ->
    let total = Array.fold_left (fun acc c -> acc + c.len) 0 parts in
    if total = 0 then empty
    else begin
      let out = Array.make total 0 in
      let pos = ref 0 in
      let sorted = ref true in
      let last = ref min_int in
      Array.iter
        (fun c ->
          if c.len > 0 then begin
            Array.blit c.data c.off out !pos c.len;
            if (not c.sorted) || (!pos > 0 && c.data.(c.off) <= !last) then
              sorted := false;
            last := c.data.(c.off + c.len - 1);
            pos := !pos + c.len
          end)
        parts;
      { data = out; off = 0; len = total; sorted = !sorted }
    end

(* Honesty audit for the trusted flag: true iff the flag matches reality
   in the strict direction that kernels rely on (a set flag over an
   unsorted view is the lie; an unset flag is merely conservative). *)
let flag_honest t =
  (not t.sorted) || is_strictly_increasing_range t.data t.off t.len

(* Sorted duplicate-free copy of the values (zero-copy when the flag
   says the work is already done). *)
let sorted_dedup t =
  if t.sorted then t
  else begin
    let arr = to_array t in
    Array.sort Int.compare arr;
    let n = Array.length arr in
    if n = 0 then empty
    else begin
      let w = ref 1 in
      for i = 1 to n - 1 do
        if arr.(i) <> arr.(!w - 1) then begin
          arr.(!w) <- arr.(i);
          incr w
        end
      done;
      if !w = n then { data = arr; off = 0; len = n; sorted = true }
      else { data = Array.sub arr 0 !w; off = 0; len = !w; sorted = true }
    end
  end

let pp ppf t =
  Format.fprintf ppf "[%s|%d%s]"
    (String.concat ";"
       (List.map string_of_int
          (Array.to_list (Array.sub t.data t.off (min t.len 8)))))
    t.len
    (if t.sorted then "s" else "")

(** Minimal JSON reader.

    Just enough JSON to validate the artifacts this repo itself emits
    (Chrome trace-event files, benchmark JSON) without pulling in a
    parsing dependency: objects, arrays, strings with the standard
    escapes, numbers, booleans, null. Duplicate object keys are kept in
    order; [\uXXXX] escapes are decoded to UTF-8. Not a streaming parser —
    intended for test and CLI validation paths, not hot ones. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** The whole input must be one JSON value (surrounding whitespace ok);
    [Error] carries a message with a character offset. *)

val to_string : t -> string
(** Compact serialization. Strings get the standard escapes (control
    characters as [\uXXXX]); integral numbers under 1e15 print without a
    fraction; NaN and infinities (which JSON cannot spell) print as
    [null]. [parse (to_string v)] round-trips every finite value. *)

val member : string -> t -> t option
(** First binding of the key in an [Obj]; [None] otherwise. *)

val to_string_opt : t -> string option
val to_num_opt : t -> float option
val to_list_opt : t -> t list option

(** Immutable int column — the unit of materialized storage.

    A column is a read-only view into an int array that is promised never
    to mutate after construction. Slices and full-view reads are
    zero-copy. The [sorted] flag means *strictly increasing* (sorted and
    duplicate-free — the document-order contract of node sequences); it is
    trusted by kernels and audited by the operator-contract sanitizer
    (RX305) when [ROX_SANITIZE=1]. *)

type t

val empty : t

val of_array : int array -> t
(** Copies the array; detects the sorted flag with one scan. *)

val unsafe_of_array : sorted:bool -> int array -> t
(** Wraps without copying or scanning. The caller promises the array is
    never mutated afterwards and that [sorted] is honest. *)

val unsafe_of_array_detect : int array -> t
(** Wraps without copying; detects the sorted flag with one scan. The
    caller promises the array is never mutated afterwards. *)

val length : t -> int
val is_empty : t -> bool

val sorted : t -> bool
(** The trusted flag: strictly increasing. [false] is always safe. *)

val get : t -> int -> int

val slice : t -> pos:int -> len:int -> t
(** Zero-copy sub-view; inherits the sorted flag. *)

val to_array : t -> int array
(** Always a fresh copy — safe to mutate. *)

val read : t -> int array
(** Zero-copy when the view covers its whole storage (the common case),
    else a copy. Callers must not mutate the result. *)

val iter : (int -> unit) -> t -> unit
val iteri : (int -> int -> unit) -> t -> unit
val fold_left : ('a -> int -> 'a) -> 'a -> t -> 'a

val equal : t -> t -> bool
(** Element-wise, monomorphic — no polymorphic compare. *)

val same_storage : t -> t -> bool
(** Physical identity of the underlying arrays. *)

val storage_bytes : t -> int
(** Bytes of the underlying storage (count shared storage once). *)

val mem : t -> int -> bool
(** Binary search when sorted, linear scan otherwise. *)

val concat : t array -> t
(** Concatenate in order (the deterministic merge of partitioned kernel
    outputs). The sorted flag is set iff every non-empty part is sorted
    *and* the boundaries are strictly increasing — always honest, and it
    reproduces the input flag when re-assembling the slices of one
    column. *)

val flag_honest : t -> bool
(** [true] iff a set sorted flag matches reality (an unset flag is
    merely conservative, never a lie). *)

val sorted_dedup : t -> t
(** Sorted duplicate-free values; zero-copy when already sorted. *)

val is_strictly_increasing : int array -> bool

val pp : Format.formatter -> t -> unit

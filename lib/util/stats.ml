let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let m = mean a in
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. ((x -. m) *. (x -. m))) a;
    !acc /. float_of_int n
  end

let stddev a = sqrt (variance a)

let geometric_mean a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive value";
        acc := !acc +. log x)
      a;
    exp (!acc /. float_of_int n)
  end

let percentile a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let minimum a = Array.fold_left min a.(0) a
let maximum a = Array.fold_left max a.(0) a

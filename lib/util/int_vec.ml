type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () =
  { data = Array.make (max capacity 1) 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Int_vec.get";
  t.data.(i)

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Int_vec.set";
  t.data.(i) <- v

let ensure t needed =
  if needed > Array.length t.data then begin
    let cap = ref (Array.length t.data) in
    while !cap < needed do cap := !cap * 2 done;
    let data = Array.make !cap 0 in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t v =
  ensure t (t.len + 1);
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Int_vec.pop";
  t.len <- t.len - 1;
  t.data.(t.len)

let clear t = t.len <- 0

let last t =
  if t.len = 0 then invalid_arg "Int_vec.last";
  t.data.(t.len - 1)

let to_array t = Array.sub t.data 0 t.len

let of_array arr =
  { data = (if Array.length arr = 0 then Array.make 1 0 else Array.copy arr);
    len = Array.length arr }

let iter f t =
  for i = 0 to t.len - 1 do f t.data.(i) done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do acc := f !acc t.data.(i) done;
  !acc

let append_array t arr =
  ensure t (t.len + Array.length arr);
  Array.blit arr 0 t.data t.len (Array.length arr);
  t.len <- t.len + Array.length arr

let sort t =
  let live = Array.sub t.data 0 t.len in
  Array.sort Int.compare live;
  Array.blit live 0 t.data 0 t.len

let sorted_dedup t =
  sort t;
  if t.len = 0 then [||]
  else begin
    let out = create ~capacity:t.len () in
    push out t.data.(0);
    for i = 1 to t.len - 1 do
      if t.data.(i) <> t.data.(i - 1) then push out t.data.(i)
    done;
    to_array out
  end

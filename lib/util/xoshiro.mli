(** Deterministic, seedable pseudo-random number generator.

    ROX bases every optimization decision on random samples; experiments must
    nevertheless be reproducible run-to-run. All randomness in the repository
    flows through this splittable generator (xoshiro256** core seeded through
    splitmix64), never through [Stdlib.Random]. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from a 63-bit seed. Equal seeds
    yield equal streams. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. Used to give
    sub-systems (generator, optimizer, sampler) isolated streams so adding
    draws in one place does not perturb another. *)

val fork : seed:int -> stream:int -> t
(** [fork ~seed ~stream] derives an independent generator from a seed
    *integer* and a stream index, without advancing any live generator.
    Equal [(seed, stream)] pairs yield equal streams. This is the
    seed-splitting rule for intra-query parallelism: pooled tasks fork
    their streams from the session's seed, never by calling {!split} on
    the session's live RNG — so results are independent of task
    scheduling and a one-part run stays byte-identical to the sequential
    path. *)

val int : t -> int -> int
(** [int t n] draws uniformly from [0, n-1]. [n] must be positive. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [0, 1). *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t n k] draws [min n k] distinct integers from
    [0, n-1], returned sorted ascending. Runs in O(k) expected time for
    k << n (Floyd's algorithm) and O(n) otherwise. *)

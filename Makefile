.PHONY: all build test analyze bench-smoke check clean

all: build

build:
	dune build

test:
	dune runtest

# Static analysis over the built-in workloads: join-graph checks, trace
# replay verification, and the operator-contract sanitizer.
analyze:
	dune exec bin/rox_cli.exe -- analyze

# Quick cache benchmark: repeated workload against a shared store;
# writes BENCH_cache.json (join reduction, hit rates, bit-identity).
bench-smoke:
	dune exec bench/main.exe -- cache

check: build test analyze
	-$(MAKE) bench-smoke

clean:
	dune clean

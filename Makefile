.PHONY: all build test analyze check clean

all: build

build:
	dune build

test:
	dune runtest

# Static analysis over the built-in workloads: join-graph checks, trace
# replay verification, and the operator-contract sanitizer.
analyze:
	dune exec bin/rox_cli.exe -- analyze

check: build test analyze

clean:
	dune clean

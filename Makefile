.PHONY: all build test analyze lint racecheck sanitize bench-smoke profile-smoke serve-smoke recorder-smoke par-smoke check clean

all: build

build:
	dune build

test:
	dune runtest

# Static analysis over the built-in workloads: join-graph checks, trace
# replay verification, and the operator-contract sanitizer.
analyze:
	dune exec bin/rox_cli.exe -- analyze

# Static mutable-state lint (RX510/RX511): every top-level mutable
# global and mutable record field under lib/ must carry a documented
# guard in the capability allowlist. JSON diagnostics land next to the
# other CI artifacts.
lint:
	dune exec bin/rox_cli.exe -- lint
	dune exec bin/rox_cli.exe -- lint --json > rox_lint.json

# Dynamic race detection (RX501-RX504): prove the detector's teeth on
# the seeded fixtures (the planted unguarded counter must come back
# RX501, its mutex-guarded twin clean), then replay the multi-domain
# parallel-serving workload under the armed access log and require it
# race-free. The explicit seeded-race invocation asserts the non-zero
# exit path CI depends on.
racecheck:
	dune exec bin/rox_cli.exe -- racecheck
	dune exec bin/rox_cli.exe -- racecheck --json > rox_racecheck.json
	@if dune exec bin/rox_cli.exe -- racecheck --fixture seeded-race \
	  > /dev/null 2>&1; then \
	  echo "racecheck: seeded race was NOT flagged (expected exit 1)"; exit 1; \
	else echo "racecheck: seeded race correctly rejected"; fi

# Runtime contract checks (RX301-RX307): the analyze workloads plus the
# fuzz suite with every operator call cross-checked — columnar kernels
# bit-for-bit against the row-major reference, sorted flags audited,
# session confinement (no global reads on a session's path) armed.
sanitize:
	ROX_SANITIZE=1 dune exec bin/rox_cli.exe -- analyze
	ROX_SANITIZE=1 dune exec test/test_main.exe -- test fuzz

# Quick benchmarks: the cache experiment (BENCH_cache.json), the
# columnar relation kernels vs the row-major reference
# (BENCH_relation.json, warns under 2x at 10^5 rows), concurrent
# sessions on OCaml 5 domains (BENCH_parallel.json, bit-identity
# enforced; speedup tracks physical cores), telemetry overhead on
# the Figure 5 workload (BENCH_telemetry.json, <3% target), and the
# serving front-end (BENCH_serve.json: saturation qps at 1 and N
# worker domains, open-loop p50/p99, coalesce hit ratio with
# bit-identity enforced).
bench-smoke:
	dune exec bench/main.exe -- cache relation parallel telemetry serve

# A scripted protocol session against an in-process server over a
# socketpair: PING, repeated QUERY (answers must be bit-identical),
# a budget-aborted QUERY (structured ERR, not a dropped connection),
# STATS accounting, QUIT — then the RX601-603 self-audit.
serve-smoke:
	dune exec bin/rox_cli.exe -- serve --smoke

# The flight-recorder acceptance loop, under the sanitizer: the serve
# smoke script with a slow log armed at --slow-ms 0, so every request
# writes a JSONL line (validated in-script, line count reconciled with
# the recorder) and at least one trace is retained, fetched over TRACE,
# and exported — then the exported file must pass the Chrome-trace
# schema check.
recorder-smoke:
	ROX_SANITIZE=1 dune exec bin/rox_cli.exe -- serve --smoke \
	  --slow-log rox_slow.jsonl --slow-ms 0
	dune exec bin/rox_cli.exe -- trace-validate rox_slow.jsonl.trace.json

# Intra-query parallelism under the sanitizer: the built-in profile
# workload at --parallel-parts 2, so every partitioned edge kernel is
# replayed sequentially and bit-compared (RX310 Partition_consistent)
# and every concurrent racing probe must reproduce the sequential
# scores. Catches partition/merge divergence that a 1-core container's
# timing never would.
par-smoke:
	ROX_SANITIZE=1 dune exec bin/rox_cli.exe -- profile --parallel-parts 2 \
	  --scale 0.02 > /dev/null

# An instrumented run of the built-in XMark workload: --profile summary
# on stderr, Chrome trace-event JSON + Prometheus metrics on disk, then
# the emitted trace parsed back and schema-checked (well-nested spans,
# non-negative durations). The trace loads in Perfetto / chrome://tracing.
profile-smoke:
	dune exec bin/rox_cli.exe -- profile --repeat 2 \
	  --trace-out rox_trace.json --metrics-out rox_metrics.prom
	dune exec bin/rox_cli.exe -- trace-validate rox_trace.json

check: build test analyze lint racecheck sanitize profile-smoke serve-smoke recorder-smoke par-smoke
	-$(MAKE) bench-smoke

clean:
	dune clean

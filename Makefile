.PHONY: all build test analyze sanitize bench-smoke profile-smoke check clean

all: build

build:
	dune build

test:
	dune runtest

# Static analysis over the built-in workloads: join-graph checks, trace
# replay verification, and the operator-contract sanitizer.
analyze:
	dune exec bin/rox_cli.exe -- analyze

# Runtime contract checks (RX301-RX307): the analyze workloads plus the
# fuzz suite with every operator call cross-checked — columnar kernels
# bit-for-bit against the row-major reference, sorted flags audited,
# session confinement (no global reads on a session's path) armed.
sanitize:
	ROX_SANITIZE=1 dune exec bin/rox_cli.exe -- analyze
	ROX_SANITIZE=1 dune exec test/test_main.exe -- test fuzz

# Quick benchmarks: the cache experiment (BENCH_cache.json), the
# columnar relation kernels vs the row-major reference
# (BENCH_relation.json, warns under 2x at 10^5 rows), concurrent
# sessions on OCaml 5 domains (BENCH_parallel.json, bit-identity
# enforced; speedup tracks physical cores), and telemetry overhead on
# the Figure 5 workload (BENCH_telemetry.json, <3% target).
bench-smoke:
	dune exec bench/main.exe -- cache relation parallel telemetry

# An instrumented run of the built-in XMark workload: --profile summary
# on stderr, Chrome trace-event JSON + Prometheus metrics on disk, then
# the emitted trace parsed back and schema-checked (well-nested spans,
# non-negative durations). The trace loads in Perfetto / chrome://tracing.
profile-smoke:
	dune exec bin/rox_cli.exe -- profile --repeat 2 \
	  --trace-out rox_trace.json --metrics-out rox_metrics.prom
	dune exec bin/rox_cli.exe -- trace-validate rox_trace.json

check: build test analyze sanitize profile-smoke
	-$(MAKE) bench-smoke

clean:
	dune clean

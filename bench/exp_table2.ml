(* E3 — Figure 3 + Table 2: ROX on XMark Q1 (current < theta) and Qm1
   (current > theta). Shows the initial sampled edge weights (Fig 3.1), the
   chain-sampling (cost, sf) rounds (Table 2), and the final edge execution
   orders (Figs 3.3 / 3.4), which differ between the two queries because of
   the price <-> #bidders correlation. *)

open Rox_xquery
open Rox_joingraph
open Rox_core
open Bench_common

let edge_desc graph id =
  let e = Graph.edge graph id in
  Printf.sprintf "%s %s %s"
    (Vertex.label (Graph.vertex graph e.Edge.v1))
    (Edge.label e)
    (Vertex.label (Graph.vertex graph e.Edge.v2))

let show_query label op =
  subheader (Printf.sprintf "%s: current/text() %s 145" label op);
  let engine = xmark_engine ~factor:1.0 () in
  let compiled = Compile.compile_string engine (q1_query op 145) in
  let graph = compiled.Compile.graph in
  let trace = Trace.create () in
  let (answer, result), dt =
    time_it (fun () -> Optimizer.answer (Session.create ~trace ()) compiled)
  in
  (* Initial weights: the first Edge_weighted event per edge. *)
  let initial = Hashtbl.create 32 in
  List.iter
    (function
      | Trace.Edge_weighted { edge; weight } ->
        if not (Hashtbl.mem initial edge) then Hashtbl.replace initial edge weight
      | _ -> ())
    (Trace.events trace);
  Printf.printf "initial edge weights (Fig 3.1 analog):\n";
  Array.iter
    (fun (e : Edge.t) ->
      match Hashtbl.find_opt initial e.Edge.id with
      | Some w ->
        Printf.printf "  %-42s w = %s\n" (edge_desc graph e.Edge.id)
          (Rox_util.Table_fmt.human_float w)
      | None -> ())
    (Graph.edges graph);
  (* Chain rounds rooted at open_auction: the Table 2 analog. *)
  let rounds = Trace.chain_rounds trace in
  let interesting =
    List.filter (fun (_, _, paths) -> List.length paths >= 2) rounds
  in
  Printf.printf "\nchain-sampling rounds with competing segments (Table 2 analog):\n";
  List.iteri
    (fun i (round, cutoff, paths) ->
      if i < 12 then begin
        Printf.printf "  round %d (cutoff=%d): " round cutoff;
        List.iter
          (fun p ->
            Printf.printf "%s=(%s, %.2g) " p.Trace.label
              (Rox_util.Table_fmt.human_float p.Trace.cost)
              p.Trace.sf)
          paths;
        print_newline ()
      end)
    interesting;
  Printf.printf "\nexecution order (Fig 3.3/3.4 analog):\n";
  List.iteri
    (fun i id -> Printf.printf "  %2d. %s\n" (i + 1) (edge_desc graph id))
    result.Optimizer.edge_order;
  let c = result.Optimizer.counter in
  Printf.printf "\nanswer: %d nodes; sampling=%d execution=%d work units (%.3fs)\n"
    (Array.length answer)
    (Rox_algebra.Cost.read c Rox_algebra.Cost.Sampling)
    (Rox_algebra.Cost.read c Rox_algebra.Cost.Execution)
    dt;
  result.Optimizer.edge_order

let run () =
  header "Figure 3 + Table 2: ROX adapts its plan to the price/bidder correlation";
  let o1 = show_query "Q1" "<" in
  let om1 = show_query "Qm1" ">" in
  subheader "comparison";
  Printf.printf
    "Q1 and Qm1 executed %s edge orders — ROX reacted to the correlation\n"
    (if o1 <> om1 then "DIFFERENT" else "identical (unexpected at this scale)")

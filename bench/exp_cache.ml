(* E-cache — cross-query cache effectiveness. The same XMark query family
   is evaluated twice against one shared [Rox_cache.Store]: the first pass
   populates the relation and estimate caches, the second pass should
   answer mostly from them. We measure how many physical joins each pass
   actually ran (executed edges minus relation-cache hits), prove the
   answers bit-identical to cache-off runs, and — with the sanitizer
   armed for the cached passes — have every single hit cross-checked
   against a fresh execution. Results land in BENCH_cache.json for
   `make bench-smoke`. *)

open Rox_xquery
open Rox_core
open Bench_common
module Trace = Rox_joingraph.Trace
module Store = Rox_cache.Store

let queries ~full =
  let thresholds = if full then [ 100; 145; 200; 300 ] else [ 145; 300 ] in
  List.concat_map (fun t -> [ q1_query "<" t; q1_query ">" t ]) thresholds

type qrun = {
  answer : int array;
  work : int;
  executed : int;       (* edges in the execution order *)
  physical : int;       (* joins actually run (executed - relation hits) *)
  rel_lookups : int;
  rel_hits : int;
  est_lookups : int;
  est_hits : int;
}

let run_query ?sanitize ?cache engine source =
  let compiled = Compile.compile_string engine source in
  let config =
    match sanitize with
    | None -> Session.default_config ()
    | Some s -> { (Session.default_config ()) with Session.sanitize = s }
  in
  let trace = Trace.create () in
  let session = Session.create ~config ~trace ?cache () in
  let answer, result = Optimizer.answer session compiled in
  let rel_hits = Trace.cache_hits ~store:`Relation trace in
  let executed = List.length (Trace.execution_order trace) in
  {
    answer;
    work = Rox_algebra.Cost.total result.Optimizer.counter;
    executed;
    physical = executed - rel_hits;
    rel_lookups = Trace.cache_lookups ~store:`Relation trace;
    rel_hits;
    est_lookups = Trace.cache_lookups ~store:`Estimate trace;
    est_hits = Trace.cache_hits ~store:`Estimate trace;
  }

let sum f runs = List.fold_left (fun a r -> a + f r) 0 runs

let pass_line name runs =
  Printf.printf
    "%-10s physical joins %3d / %3d executed; relation hits %3d/%3d; estimate hits %4d/%4d; work %s\n"
    name (sum (fun r -> r.physical) runs)
    (sum (fun r -> r.executed) runs)
    (sum (fun r -> r.rel_hits) runs)
    (sum (fun r -> r.rel_lookups) runs)
    (sum (fun r -> r.est_hits) runs)
    (sum (fun r -> r.est_lookups) runs)
    (Rox_util.Table_fmt.human_int (sum (fun r -> r.work) runs))

let json_file = "BENCH_cache.json"

let run ~full () =
  header "Cache: cross-query reuse of materialized joins and sample estimates";
  let factor = if full then 0.1 else 0.05 in
  let engine = xmark_engine ~factor () in
  let qs = queries ~full in
  Printf.printf "workload: %d XMark q1-family queries, factor %g, shared 32 MiB store\n"
    (List.length qs) factor;
  (* Cache-off baseline: the ground truth the cached passes must match. *)
  let base = List.map (fun q -> run_query engine q) qs in
  (* Cached passes run with the sanitizer armed: every cache hit is
     re-executed fresh and compared bit-for-bit (Cache_consistent / RX304),
     exactly what ROX_SANITIZE=1 arms from the environment. *)
  let store = Store.of_megabytes engine 32 in
  let pass1 = List.map (fun q -> run_query ~sanitize:true ~cache:store engine q) qs in
  let pass2 = List.map (fun q -> run_query ~sanitize:true ~cache:store engine q) qs in
  let identical =
    List.for_all2 (fun a b -> a.answer = b.answer) base pass1
    && List.for_all2 (fun a b -> a.answer = b.answer) base pass2
  in
  subheader "per-pass totals";
  pass_line "cache-off" base;
  pass_line "pass 1" pass1;
  pass_line "pass 2" pass2;
  let p1 = sum (fun r -> r.physical) pass1 in
  let p2 = sum (fun r -> r.physical) pass2 in
  let reduction = float_of_int p1 /. float_of_int (max 1 p2) in
  let base_work = sum (fun r -> r.work) base in
  let pass2_work = sum (fun r -> r.work) pass2 in
  let speedup = float_of_int base_work /. float_of_int (max 1 pass2_work) in
  let stats = Store.stats store in
  subheader "verdict";
  Printf.printf "answers bit-identical to cache-off: %b (every hit sanitizer-checked)\n"
    identical;
  Printf.printf "physical joins: pass 1 ran %d, pass 2 ran %d (%.1fx fewer)\n" p1 p2
    reduction;
  Printf.printf "work (charged operations): %s off-cache vs %s warm (%.2fx)\n"
    (Rox_util.Table_fmt.human_int base_work)
    (Rox_util.Table_fmt.human_int pass2_work)
    speedup;
  print_string (Store.stats_to_string stats);
  let oc = open_out json_file in
  Printf.fprintf oc "{\n  %s,\n" (machine_json ~domains_used:1);
  Printf.fprintf oc
    {|  "experiment": "cache",
  "workload": "xmark q1 family",
  "queries": %d,
  "xmark_factor": %g,
  "bit_identical": %b,
  "sanitizer_checked_hits": true,
  "pass1": { "physical_joins": %d, "executed_edges": %d,
             "relation_hits": %d, "relation_lookups": %d,
             "estimate_hits": %d, "estimate_lookups": %d, "work": %d },
  "pass2": { "physical_joins": %d, "executed_edges": %d,
             "relation_hits": %d, "relation_lookups": %d,
             "estimate_hits": %d, "estimate_lookups": %d, "work": %d },
  "join_reduction": %.2f,
  "work_speedup": %.2f,
  "relation_store": { "entries": %d, "bytes": %d, "evictions": %d },
  "estimate_store": { "entries": %d, "bytes": %d, "evictions": %d }
}
|}
    (List.length qs) factor identical p1
    (sum (fun r -> r.executed) pass1)
    (sum (fun r -> r.rel_hits) pass1)
    (sum (fun r -> r.rel_lookups) pass1)
    (sum (fun r -> r.est_hits) pass1)
    (sum (fun r -> r.est_lookups) pass1)
    (sum (fun r -> r.work) pass1)
    p2
    (sum (fun r -> r.executed) pass2)
    (sum (fun r -> r.rel_hits) pass2)
    (sum (fun r -> r.rel_lookups) pass2)
    (sum (fun r -> r.est_hits) pass2)
    (sum (fun r -> r.est_lookups) pass2)
    pass2_work reduction speedup stats.Store.relations.Rox_cache.Lru.entries
    stats.Store.relations.Rox_cache.Lru.bytes
    stats.Store.relations.Rox_cache.Lru.evictions
    stats.Store.estimates.Rox_cache.Lru.entries
    stats.Store.estimates.Rox_cache.Lru.bytes
    stats.Store.estimates.Rox_cache.Lru.evictions;
  close_out oc;
  Printf.printf "\nwrote %s\n" json_file;
  if not identical then failwith "cache-on answers differ from cache-off";
  if p2 * 2 > p1 then
    Printf.eprintf "WARNING: warm pass ran more than half the joins of the cold pass\n"

(* E1 — Figure 1: the Join Graph and plan tail of the auction query Q. *)

open Rox_xquery
open Bench_common

let query =
  {|let $r := doc("xmark.xml")
for $a in $r//open_auction[./reserve]/bidder//personref,
    $b in $r//person[.//education]
where $a/@person = $b/@id
return $a|}

let run () =
  header "Figure 1: Join Graph and tail of query Q (auction.xml)";
  let engine = xmark_engine ~factor:0.2 () in
  Printf.printf "XQuery Q:\n%s\n\n" query;
  let compiled = Compile.compile_string engine query in
  print_string (Rox_joingraph.Pretty.to_string compiled.Compile.graph);
  let tail = compiled.Compile.tail in
  Printf.printf
    "\nTail: pi_{personref.*, person.*} -> delta -> tau(sort by %s) -> pi_{return $a}\n"
    (String.concat ", "
       (Array.to_list
          (Array.map
             (fun v ->
               Rox_joingraph.Vertex.label (Rox_joingraph.Graph.vertex compiled.Compile.graph v))
             tail.Tail.key_vertices)));
  let (answer, result), dt =
    time_it (fun () -> Rox_core.Optimizer.answer_default compiled)
  in
  let c = result.Rox_core.Optimizer.counter in
  Printf.printf
    "\nROX evaluation: %d result nodes; work units: sampling=%d execution=%d (%.3fs)\n"
    (Array.length answer)
    (Rox_algebra.Cost.read c Rox_algebra.Cost.Sampling)
    (Rox_algebra.Cost.read c Rox_algebra.Cost.Execution)
    dt

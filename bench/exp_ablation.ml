(* Ablations of ROX's design choices (see DESIGN.md):
   - re-sampling after each execution vs frozen Phase-1 weights
     (independence assumption);
   - chain sampling vs greedy smallest-weight edge;
   - growing cut-off vs fixed tau cut-off (front-bias mitigation). *)

open Rox_xquery
open Rox_workload
open Rox_core
open Bench_common

let base_config () = Session.default_config ()

let variants () =
  [
    ("ROX (full)", base_config ());
    ("no resample", { (base_config ()) with Session.resample = false });
    ("greedy (no chain)", { (base_config ()) with Session.use_chain = false });
    ("fixed cutoff", { (base_config ()) with Session.grow_cutoff = false });
    ("no operator race", { (base_config ()) with Session.race_operators = false });
  ]

let measure compiled config =
  let result = Optimizer.run (Session.create ~config ()) compiled in
  let c = result.Optimizer.counter in
  ( Rox_algebra.Cost.read c Rox_algebra.Cost.Sampling,
    Rox_algebra.Cost.read c Rox_algebra.Cost.Execution )

let run () =
  header "Ablations: chain sampling, re-sampling, cut-off growth";
  (* XMark Q1 / Qm1. *)
  let engine = xmark_engine ~factor:1.0 () in
  let queries =
    [ ("XMark Q1 (<145)", Compile.compile_string engine (q1_query "<" 145));
      ("XMark Qm1 (>145)", Compile.compile_string engine (q1_query ">" 145)) ]
  in
  (* A correlated DBLP combo. *)
  let venues = List.map Dblp.find_venue [ "VLDB"; "ICDE"; "ICIP"; "ADBIS" ] in
  let ctx = load_dblp ~scale:10 venues in
  let queries = queries @ [ ("DBLP VLDB,ICDE,ICIP,ADBIS x10", compile_combo ctx venues) ] in
  let table =
    List.concat_map
      (fun (qname, compiled) ->
        List.map
          (fun (vname, config) ->
            let sampling, execution = measure compiled config in
            [
              qname;
              vname;
              string_of_int sampling;
              string_of_int execution;
              string_of_int (sampling + execution);
            ])
          (variants ()))
      queries
  in
  Rox_util.Table_fmt.print
    ~header:[ "workload"; "variant"; "sampling"; "execution"; "total" ]
    table;
  Printf.printf
    "\n(execution column = plan quality; sampling column = optimization spend.\n\
    \ 'no resample' and 'greedy' typically buy less sampling at the price of\n\
    \ worse plans on correlated inputs.)\n";

  (* Baseline ladder: synopsis-static < mid-query re-optimization < ROX. *)
  subheader "optimizer ladder: static synopsis / mid-query re-opt / ROX";
  let ladder =
    List.map
      (fun (qname, compiled) ->
        let graph = compiled.Compile.graph in
        let static_work =
          let order = Rox_classical.Midquery.synopsis_order compiled.Compile.engine graph in
          match
            Rox_classical.Executor.execute
              (plan_session ~max_rows:3_000_000 ())
              compiled.Compile.engine graph order
          with
          | run -> string_of_int (Rox_algebra.Cost.total run.Rox_classical.Executor.counter)
          | exception Rox_joingraph.Runtime.Blowup _ -> "blowup"
        in
        let mq =
          Rox_classical.Midquery.execute (Session.create ()) compiled.Compile.engine graph
        in
        let mq_work = Rox_algebra.Cost.total mq.Rox_classical.Midquery.counter in
        let rox = Optimizer.run_default compiled in
        let rox_work = Rox_algebra.Cost.total rox.Optimizer.counter in
        [
          qname;
          static_work;
          Printf.sprintf "%d (%d replans)" mq_work mq.Rox_classical.Midquery.replans;
          string_of_int rox_work;
        ])
      queries
  in
  Rox_util.Table_fmt.print
    ~header:[ "workload"; "static synopsis"; "mid-query re-opt"; "ROX total" ]
    ladder;

  (* Approximate mode: fraction of tables vs answer recall and work. *)
  subheader "approximate (sample-driven) execution";
  let compiled = List.assoc "XMark Qm1 (>145)" queries in
  let exact, _ = Optimizer.answer_default compiled in
  let exact_n = max 1 (Array.length exact) in
  let rows =
    List.map
      (fun fraction ->
        let config =
          { (base_config ()) with Session.table_fraction = Some fraction }
        in
        let approx, result =
          Optimizer.answer (Session.create ~config ()) compiled
        in
        [
          Printf.sprintf "%.2f" fraction;
          string_of_int (Array.length approx);
          Printf.sprintf "%.0f%%" (100.0 *. float_of_int (Array.length approx) /. float_of_int exact_n);
          string_of_int (Rox_algebra.Cost.total result.Optimizer.counter);
        ])
      [ 0.1; 0.25; 0.5; 1.0 ]
  in
  Rox_util.Table_fmt.print ~header:[ "fraction"; "answers"; "recall"; "work" ] rows;
  Printf.printf "(exact answer: %d nodes)\n" (Array.length exact)

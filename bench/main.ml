(* Benchmark harness: regenerates every table and figure of the paper
   (see DESIGN.md's experiment index) plus ablations and operator
   micro-benchmarks.

   Usage:
     dune exec bench/main.exe                 # every experiment, default sizes
     dune exec bench/main.exe -- fig5 fig6    # a subset
     dune exec bench/main.exe -- --full       # larger sweeps / scales
     dune exec bench/main.exe -- --list       # list experiment names *)

let experiments ~full =
  [
    ("fig1", "Figure 1: Join Graph + tail of query Q", fun () -> Exp_fig1.run ());
    ("fig2", "Figure 2: chain sampling illustration", fun () -> Exp_fig2.run ());
    ("table2", "Figure 3 + Table 2: ROX on XMark Q1/Qm1", fun () -> Exp_table2.run ());
    ("fig4", "Figure 4: DBLP Join Graph", fun () -> Exp_fig4.run ());
    ("table3", "Table 3: document characteristics", fun () -> Exp_table3.run ~full ());
    ("fig5", "Figure 5: join order vs intermediate sizes", fun () -> Exp_fig5.run ~full ());
    ("fig6", "Figure 6: ROX vs plan classes", fun () -> Exp_fig6.run ~full ());
    ("fig7", "Figure 7: scaling document sizes", fun () -> Exp_fig7.run ~full ());
    ("fig8", "Figure 8: sample size vs overhead", fun () -> Exp_fig8.run ~full ());
    ("ablate", "Ablations of ROX design choices", fun () -> Exp_ablation.run ());
    ("cache", "Cross-query cache: repeated workload reuse", fun () -> Exp_cache.run ~full ());
    ("relation", "Columnar relation kernels vs row-major reference", fun () -> Exp_relation.run ~full ());
    ("parallel", "Concurrent sessions on OCaml 5 domains, shared engine", fun () -> Exp_parallel.run ());
    ("telemetry", "Telemetry span/metric overhead on the fig5 workload", fun () -> Exp_telemetry.run ~full ());
    ("recorder", "Flight-recorder overhead (alias: the telemetry experiment's recorder arm)", fun () -> Exp_telemetry.run ~full ());
    ("serve", "Serving front-end: saturation, open-loop latency, coalescing", fun () -> Exp_serve.run ());
    ("bechamel", "Operator kernel micro-benchmarks", fun () -> Exp_bechamel.run ());
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  let args = List.filter (fun a -> a <> "--full" && a <> "--" ) args in
  let exps = experiments ~full in
  if List.mem "--list" args then begin
    List.iter (fun (name, descr, _) -> Printf.printf "%-10s %s\n" name descr) exps;
    exit 0
  end;
  let selected =
    match args with
    | [] -> exps
    | names ->
      List.map
        (fun name ->
          match List.find_opt (fun (n, _, _) -> n = name) exps with
          | Some e -> e
          | None ->
            Printf.eprintf "unknown experiment %S (use --list)\n" name;
            exit 2)
        names
  in
  let t0 = Unix.gettimeofday () in
  List.iter (fun (_, _, run) -> run ()) selected;
  Printf.printf "\n== all selected experiments done in %.1fs ==\n"
    (Unix.gettimeofday () -. t0)

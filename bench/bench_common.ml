(* Shared plumbing for the experiment harness: engine setup, plan-class
   evaluation, and the cost model conventions.

   Scale mapping. The paper scales the original DBLP dataset (×1) by
   replicating articles 10 and 100 times. The generator reproduces the
   Table 3 author-tag counts divided by [reduction] (default 10, to keep the
   default benchmark run laptop-fast), and replicates with the same
   suffix-serial scheme. Thus "x10" below means: base counts = Table 3 / 10,
   articles replicated 10-fold. Shapes (who wins, by what factor) are
   preserved; absolute counts are 1/10th of the paper's at each scale. *)

open Rox_storage
open Rox_xquery
open Rox_joingraph
open Rox_workload
open Rox_classical

let header title =
  let line = String.make 72 '=' in
  Printf.printf "\n%s\n  %s\n%s\n%!" line title line

let subheader title = Printf.printf "\n--- %s ---\n%!" title

(* ---------- DBLP setups ---------- *)

let dblp_params ~scale ~reduction = { Dblp.default_gen with Dblp.scale; reduction }

type dblp_ctx = {
  engine : Engine.t;
  loaded : Dblp.loaded list;
  by_name : (string * Engine.docref) list;
}

let load_dblp ?(reduction = 10) ?(scale = 1) venues =
  let engine = Engine.create () in
  let loaded = Dblp.load ~params:(dblp_params ~scale ~reduction) engine venues in
  let by_name = List.map (fun l -> (l.Dblp.venue.Dblp.name, l.Dblp.docref)) loaded in
  { engine; loaded; by_name }

let compile_combo ctx venues =
  let uris = List.map Dblp.uri_of venues in
  Compile.compile_string ctx.engine (Dblp.query_for uris)

(* ---------- Plan classes of Figures 5-7 ---------- *)

type plan_class_costs = {
  optimal : int;        (** cheapest canonical plan *)
  largest : int;        (** slowest placement of the largest join order *)
  classical : int;      (** best placement of the classical join order *)
  smallest : int;       (** best placement of the smallest-intermediates order *)
  rox_order : int;      (** best placement of ROX's join order *)
  rox_full : int;       (** ROX, sampling included *)
  rox_pure : int;       (** ROX's plan without the sampling work *)
  rox_result_rows : int;
}

(* Reconstruct which canonical join order ROX executed from its edge order. *)
let rox_join_order graph template edge_order =
  let slot_of_vertex v =
    let rec find i =
      if i >= Array.length template.Enumerate.slots then None
      else if template.Enumerate.slots.(i).Enumerate.join_vertex = v then Some i
      else find (i + 1)
    in
    find 0
  in
  let joins =
    List.filter_map
      (fun id ->
        let e = Graph.edge graph id in
        match e.Edge.op with
        | Edge.Equijoin ->
          (match (slot_of_vertex e.Edge.v1, slot_of_vertex e.Edge.v2) with
           | Some a, Some b -> Some (a, b)
           | _ -> None)
        | Edge.Step _ -> None)
      edge_order
  in
  match joins with
  | [ (a, b); (c, d); _ ] when c <> a && c <> b && d <> a && d <> b ->
    Enumerate.Bushy ((a, b), (c, d))
  | (a, b) :: rest ->
    let joined = ref [ a; b ] in
    List.iter
      (fun (x, y) ->
        if not (List.mem x !joined) then joined := !joined @ [ x ];
        if not (List.mem y !joined) then joined := !joined @ [ y ])
      rest;
    Enumerate.Linear !joined
  | [] -> Enumerate.Linear []

let work run = Rox_algebra.Cost.total run.Executor.counter

(* Runaway plans (the "largest" class at scale) are stopped at [plan_max_rows]
   materialized tuples and assessed a penalty larger than any honest plan —
   they would only be worse if allowed to finish. *)
let plan_max_rows = 1_000_000

(* One throwaway session per fixed-plan run: counters must not accumulate
   across plan evaluations. *)
let plan_session ?(max_rows = plan_max_rows) () =
  Rox_core.Session.create
    ~config:
      { (Rox_core.Session.default_config ()) with
        Rox_core.Session.budgets =
          { Rox_core.Session.default_budgets with max_rows } }
    ()
let blowup_penalty = 30_000_000

type plan_eval = { p_work : int; p_join_rows : int; p_blown : bool }

let eval_plan ctx graph edges =
  match Executor.execute (plan_session ()) ctx.engine graph edges with
  | run -> { p_work = work run; p_join_rows = run.Executor.join_rows; p_blown = false }
  | exception Runtime.Blowup { rows; _ } ->
    { p_work = blowup_penalty; p_join_rows = max rows blowup_penalty; p_blown = true }

let execute_plan ctx graph edges =
  try Some (Executor.execute (plan_session ()) ctx.engine graph edges)
  with Runtime.Blowup _ -> None

(* Evaluate every plan class for one combo. Returns None when the combo is
   degenerate (no template). *)
let plan_classes ?rox_config ctx compiled =
  let rox_config =
    match rox_config with
    | Some c -> c
    | None -> Rox_core.Session.default_config ()
  in
  let graph = compiled.Compile.graph in
  match Enumerate.analyze graph with
  | None -> None
  | Some template ->
    (* Canonical sweep: per order keep (best placement work, worst placement
       work, best-placement cumulative join rows). *)
    let per_order =
      List.map
        (fun order ->
          let runs =
            List.map
              (fun placement ->
                let edges = Enumerate.plan_edges graph template ~order ~placement in
                (placement, eval_plan ctx graph edges))
              Enumerate.placements
          in
          (order, runs))
        (Enumerate.all_join_orders ~ndocs:(Array.length template.Enumerate.slots))
    in
    let order_best (_, runs) =
      List.fold_left (fun acc (_, e) -> min acc e.p_work) max_int runs
    in
    let order_worst (_, runs) =
      List.fold_left (fun acc (_, e) -> max acc e.p_work) 0 runs
    in
    let order_join_rows (_, runs) =
      match runs with
      | [] -> max_int
      | (_, e) :: _ -> e.p_join_rows
    in
    let usable = List.filter (fun (_, runs) -> runs <> []) per_order in
    if usable = [] then None
    else begin
      let optimal = List.fold_left (fun acc o -> min acc (order_best o)) max_int usable in
      let largest_order =
        List.fold_left
          (fun acc o -> if order_join_rows o > order_join_rows acc then o else acc)
          (List.hd usable) (List.tl usable)
      in
      let smallest_order =
        List.fold_left
          (fun acc o -> if order_join_rows o < order_join_rows acc then o else acc)
          (List.hd usable) (List.tl usable)
      in
      let find_order target =
        List.find_opt (fun (o, _) -> Enumerate.equal_order o target) usable
      in
      let classical_order = Classical_opt.join_order ctx.engine graph template in
      let classical =
        match find_order classical_order with
        | Some o -> order_best o
        | None -> max_int
      in
      (* ROX. *)
      match
        Rox_core.Optimizer.run
          (Rox_core.Session.create ~config:rox_config ())
          compiled
      with
      | exception Runtime.Blowup _ -> None
      | rox ->
      let counter = rox.Rox_core.Optimizer.counter in
      let rox_full = Rox_algebra.Cost.total counter in
      let rox_pure = Rox_algebra.Cost.read counter Rox_algebra.Cost.Execution in
      let rox_order_class = rox_join_order graph template rox.Rox_core.Optimizer.edge_order in
      let rox_order =
        match find_order rox_order_class with
        | Some o -> order_best o
        | None -> rox_pure
      in
      Some
        {
          optimal = min optimal rox_pure;
          largest = order_worst largest_order;
          classical;
          smallest = order_best smallest_order;
          rox_order;
          rox_full;
          rox_pure;
          rox_result_rows = Relation.rows rox.Rox_core.Optimizer.relation;
        }
    end

(* ---------- XMark setup ---------- *)

let xmark_engine ?(factor = 1.0) ?(seed = 7) () =
  let engine = Engine.create () in
  let params = Xmark.scaled factor in
  ignore (Xmark.generate ~seed ~params engine ~uri:"xmark.xml" : Engine.docref);
  engine

let q1_query op threshold =
  Printf.sprintf
    {|let $d := doc("xmark.xml")
for $o in $d//open_auction[.//current/text() %s %d],
    $p in $d//person[.//province],
    $i in $d//item[./quantity = 1]
where $o//bidder//personref/@person = $p/@id and
      $o//itemref/@item = $i/@id
return $o|}
    op threshold

let time_it f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

(* ---------- Machine stamp ---------- *)

let cores () = Domain.recommended_domain_count ()

(* The "machine" fragment every BENCH_*.json carries: a scaling (or
   non-scaling) number is unreadable without the core count the run
   actually had — a 1-core container must be recognizable from the
   artifact alone. [domains_used] is the widest fan-out the experiment
   attempted, 1 for single-domain experiments. *)
let machine_json ~domains_used =
  Printf.sprintf "\"machine\": {\"cores\": %d, \"domains_used\": %d}"
    (cores ()) domains_used

(* E-relation — columnar relation kernels vs the retained row-major
   reference. The core intermediate-result kernels (extend, fuse,
   distinct) run on synthetic duplicate-heavy inputs at 10^4 and 10^5
   rows (10^6 with --full), once through the columnar implementation and
   once through [Relation.Naive], the seed's row-major code. Every
   columnar result is compared bit-for-bit against the naive one before
   any timing is reported. Results land in BENCH_relation.json for
   `make bench-smoke`. *)

open Rox_joingraph
open Bench_common
module Column = Rox_util.Column
module Xoshiro = Rox_util.Xoshiro

let json_file = "BENCH_relation.json"

let time_best f =
  ignore (f ());
  (* best of 3: wall-clock floor, insensitive to one-off GC pauses *)
  let best = ref infinity in
  for _ = 1 to 3 do
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

type case = {
  kernel : string;
  rows : int;
  old_s : float;
  new_s : float;
  out_rows : int;
}

let speedup c = c.old_s /. c.new_s

(* ---- input generators (deterministic per size) ---- *)

let gen_pairs rng ~nkeys ~fanout =
  let lv = Rox_util.Int_vec.create () and rv = Rox_util.Int_vec.create () in
  for k = 0 to nkeys - 1 do
    for j = 0 to Xoshiro.int rng (fanout + 1) - 1 do
      Rox_util.Int_vec.push lv k;
      Rox_util.Int_vec.push rv ((k * 7) + j + 1_000_000)
    done
  done;
  (Rox_util.Int_vec.to_array lv, Rox_util.Int_vec.to_array rv)

let col a = Column.unsafe_of_array_detect a

(* extend: n-row binary relation, on-column duplicate-heavy (n/4 distinct
   keys), pair list with fanout 0..2 per key. *)
let case_extend n =
  let rng = Xoshiro.create (n + 1) in
  let nk = max 1 (n / 4) in
  let left = Array.init n (fun i -> i) in
  let right = Array.init n (fun _ -> Xoshiro.int rng nk) in
  let pl, pr = gen_pairs rng ~nkeys:nk ~fanout:2 in
  let naive_base = Relation.Naive.of_pairs ~v1:0 ~v2:1 ~left ~right in
  let columnar_base = Relation.of_pairs ~v1:0 ~v2:1 { Exec.left = col left; right = col right } in
  let pairs = { Exec.left = col pl; right = col pr } in
  let old_s =
    time_best (fun () ->
        Relation.Naive.extend naive_base ~on:1 ~new_vertex:2 ~left:pl ~right:pr)
  in
  let new_s =
    time_best (fun () -> Relation.extend columnar_base ~on:1 ~new_vertex:2 pairs)
  in
  let out = Relation.extend columnar_base ~on:1 ~new_vertex:2 pairs in
  let ref_out =
    Relation.Naive.to_relation
      (Relation.Naive.extend naive_base ~on:1 ~new_vertex:2 ~left:pl ~right:pr)
  in
  if not (Relation.equal out ref_out) then
    failwith "relation bench: columnar extend differs from naive reference";
  { kernel = "extend"; rows = n; old_s; new_s; out_rows = Relation.rows out }

(* fuse: two n-row components joined through n/2 pairs over near-unique
   join columns. *)
let case_fuse n =
  let rng = Xoshiro.create (n + 2) in
  let mk v1 v2 =
    let l = Array.init n (fun i -> i) in
    let r = Array.init n (fun _ -> Xoshiro.int rng n) in
    ( Relation.Naive.of_pairs ~v1 ~v2 ~left:l ~right:r,
      Relation.of_pairs ~v1 ~v2 { Exec.left = col l; right = col r } )
  in
  let naive_l, col_l = mk 0 1 in
  let naive_r, col_r = mk 2 3 in
  let m = n / 2 in
  let pl = Array.init m (fun _ -> Xoshiro.int rng n) in
  let pr = Array.init m (fun _ -> Xoshiro.int rng n) in
  let pairs = { Exec.left = col pl; right = col pr } in
  let old_s =
    time_best (fun () ->
        Relation.Naive.fuse naive_l naive_r ~on_left:1 ~on_right:2 ~pl ~pr)
  in
  let new_s =
    time_best (fun () -> Relation.fuse col_l col_r ~on_left:1 ~on_right:2 pairs)
  in
  let out = Relation.fuse col_l col_r ~on_left:1 ~on_right:2 pairs in
  let ref_out =
    Relation.Naive.to_relation
      (Relation.Naive.fuse naive_l naive_r ~on_left:1 ~on_right:2 ~pl ~pr)
  in
  if not (Relation.equal out ref_out) then
    failwith "relation bench: columnar fuse differs from naive reference";
  { kernel = "fuse"; rows = n; old_s; new_s; out_rows = Relation.rows out }

(* distinct: n rows, ~half duplicated, no column sorted — both sides pay
   for real duplicate elimination. *)
let case_distinct n =
  let rng = Xoshiro.create (n + 3) in
  let half = max 1 (n / 2) in
  let left = Array.init n (fun _ -> Xoshiro.int rng half) in
  let right = Array.map (fun v -> (v * 7) + 1) left in
  let naive = Relation.Naive.of_pairs ~v1:0 ~v2:1 ~left ~right in
  let columnar = Relation.of_pairs ~v1:0 ~v2:1 { Exec.left = col left; right = col right } in
  let old_s = time_best (fun () -> Relation.Naive.distinct naive) in
  let new_s = time_best (fun () -> Relation.distinct columnar) in
  let out = Relation.distinct columnar in
  let ref_out = Relation.Naive.to_relation (Relation.Naive.distinct naive) in
  if not (Relation.equal out ref_out) then
    failwith "relation bench: columnar distinct differs from naive reference";
  { kernel = "distinct"; rows = n; old_s; new_s; out_rows = Relation.rows out }

let run ~full () =
  header "Relation kernels: columnar core vs row-major reference";
  let sizes = if full then [ 10_000; 100_000; 1_000_000 ] else [ 10_000; 100_000 ] in
  (* Time the kernels themselves, not the RX306 cross-check. *)
  let prev = Rox_algebra.Sanitize.default_mode () in
  Rox_algebra.Sanitize.set_default_mode false;
  let cases =
    Fun.protect
      ~finally:(fun () -> Rox_algebra.Sanitize.set_default_mode prev)
      (fun () ->
        List.concat_map (fun n -> [ case_extend n; case_fuse n; case_distinct n ]) sizes)
  in
  subheader "best-of-3 wall clock per kernel call";
  Rox_util.Table_fmt.print
    ~header:[ "kernel"; "rows"; "out rows"; "row-major"; "columnar"; "speedup" ]
    (List.map
       (fun c ->
         [ c.kernel;
           string_of_int c.rows;
           string_of_int c.out_rows;
           Printf.sprintf "%.2f ms" (c.old_s *. 1e3);
           Printf.sprintf "%.2f ms" (c.new_s *. 1e3);
           Printf.sprintf "%.2fx" (speedup c) ])
       cases);
  let at_1e5 = List.filter (fun c -> c.rows = 100_000) cases in
  let min_speedup =
    List.fold_left (fun acc c -> min acc (speedup c)) infinity at_1e5
  in
  Printf.printf "\nall outputs bit-identical to the row-major reference\n";
  Printf.printf "minimum speedup at 10^5 rows: %.2fx\n" min_speedup;
  let oc = open_out json_file in
  Printf.fprintf oc
    "{\n  %s,\n  \"experiment\": \"relation\",\n  \"bit_identical\": true,\n  \"min_speedup_1e5\": %.2f,\n  \"cases\": [\n"
    (machine_json ~domains_used:1) min_speedup;
  List.iteri
    (fun i c ->
      Printf.fprintf oc
        "    { \"kernel\": \"%s\", \"rows\": %d, \"out_rows\": %d, \"old_s\": %.6f, \"new_s\": %.6f, \"speedup\": %.2f }%s\n"
        c.kernel c.rows c.out_rows c.old_s c.new_s (speedup c)
        (if i = List.length cases - 1 then "" else ","))
    cases;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" json_file;
  if min_speedup < 2.0 then
    Printf.eprintf "WARNING: columnar kernels under 2x at 10^5 rows (%.2fx)\n" min_speedup

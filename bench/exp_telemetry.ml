(* Telemetry overhead on the Figure 5 workload (the DBLP 4-venue author
   chain): the same query run with telemetry off (null sink — one boolean
   test per instrumentation site), on (spans + metrics recorded, per-run
   sinks absorbed into one aggregate registry), and with the flight
   recorder armed on top (per-run record append, tail-sampling retention
   decision, tenant series — the always-on production configuration).

   The contracts are <3% overhead with telemetry OFF relative to the seed
   (the sink must be free when disabled) and <=2% for the recorder arm
   relative to telemetry-on (always-on observability must be affordable).
   Trials interleave the arms and keep the fastest trial per arm — minima
   are robust against scheduler noise on shared CI machines.

   Writes BENCH_telemetry.json: per-arm seconds, overhead percentages,
   and the span/record volume of an instrumented run. *)

open Rox_workload
open Bench_common

let time_arm ~reps run_once =
  (* One warmup run per arm keeps allocator/cache state comparable, and
     an empty minor heap keeps one arm from billing GC debt to the next. *)
  run_once ();
  Gc.minor ();
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    run_once ()
  done;
  Unix.gettimeofday () -. t0

let run ?(full = false) () =
  header "Telemetry overhead: fig5 workload — off vs spans+metrics vs recorder";
  let scale = if full then 100 else 10 in
  let venues = List.map Dblp.find_venue [ "VLDB"; "ICDE"; "ICIP"; "ADBIS" ] in
  let ctx = load_dblp ~scale venues in
  let compiled = compile_combo ctx venues in
  (* Long arms: each timed arm runs ~100ms so the 2-3% gates sit well
     above scheduler jitter on shared CI machines. *)
  let reps = if full then 60 else 120 in
  let trials = 7 in
  let run_off () =
    ignore (Rox_core.Optimizer.run (Rox_core.Session.create ()) compiled)
  in
  let aggregate = Rox_telemetry.Aggregate.create () in
  let last_sink = ref (Rox_telemetry.Sink.null ()) in
  let session_on () =
    (* Fresh sink per query, absorbed post-run — the serving pattern. *)
    (match Rox_telemetry.Sink.enabled !last_sink, !last_sink with
     | true, s -> Rox_telemetry.Aggregate.absorb aggregate (Rox_telemetry.Sink.metrics s)
     | false, _ -> ());
    let sink = Rox_telemetry.Sink.create ~enabled:true () in
    last_sink := sink;
    Rox_core.Session.create ~telemetry:sink ()
  in
  let run_on () = ignore (Rox_core.Optimizer.run (session_on ()) compiled) in
  (* The recorder arm is the telemetry-on pattern plus everything a
     served request pays the flight recorder for: trace-id assignment,
     the ring append, the adaptive-threshold retention decision (and the
     retain itself when it fires), and the tenant series. *)
  let recorder = Rox_telemetry.Recorder.create () in
  let query_text = "bench fig5 author chain" in
  let run_rec () =
    let session = session_on () in
    let t0 = Rox_telemetry.Clock.now_ns () in
    let result = Rox_core.Optimizer.run session compiled in
    ignore
      (Rox_core.Session.flight_record session recorder ~query:query_text
         ~plan:result.Rox_core.Optimizer.edge_order
         ~latency_ns:(Rox_telemetry.Clock.elapsed_ns t0) ~status:"ok"
        : Rox_telemetry.Recorder.record)
  in
  let best_off = ref infinity
  and best_on = ref infinity
  and best_rec = ref infinity in
  let rec_deltas = ref [] in
  for trial = 1 to trials do
    (* Alternate the arm order so slow drift (heap growth, CPU thermal
       state) cannot systematically bill one arm. *)
    let off = ref 0.0 and on = ref 0.0 and rc = ref 0.0 in
    let arms =
      [ (off, run_off); (on, run_on); (rc, run_rec) ]
    in
    let arms = if trial mod 2 = 0 then List.rev arms else arms in
    List.iter (fun (slot, f) -> slot := time_arm ~reps f) arms;
    best_off := Float.min !best_off !off;
    best_on := Float.min !best_on !on;
    best_rec := Float.min !best_rec !rc;
    rec_deltas := ((!rc -. !on) /. !on *. 100.0) :: !rec_deltas;
    Printf.printf "trial %d: off %.3fs  on %.3fs  recorder %.3fs (%d runs each)\n%!"
      trial !off !on !rc reps
  done;
  let overhead_pct = (!best_on -. !best_off) /. !best_off *. 100.0 in
  (* The recorder gate compares the *paired* per-trial deltas and takes
     their median: the two arms run adjacently inside each trial, so
     whole-trial noise (CPU frequency, a neighbour's burst) cancels in
     the pair, and the median shrugs off the odd disturbed trial that a
     min-vs-min comparison would let poison one side. *)
  let recorder_pct =
    let sorted = List.sort compare !rec_deltas in
    List.nth sorted (List.length sorted / 2)
  in
  let spans_per_run = Rox_telemetry.Sink.span_count !last_sink in
  Printf.printf "\nbest of %d trials: off %.3fs, on %.3fs — overhead %+.2f%%\n"
    trials !best_off !best_on overhead_pct;
  Printf.printf
    "recorder arm: %.3fs — %+.2f%% over telemetry-on (median paired delta)\n"
    !best_rec recorder_pct;
  Printf.printf "instrumented run: %d span(s), %d dropped\n" spans_per_run
    (Rox_telemetry.Sink.dropped !last_sink);
  Printf.printf
    "recorder: %d record(s), %d dropped, %d trace(s) retained, \
     threshold %dns\n"
    (Rox_telemetry.Recorder.records recorder)
    (Rox_telemetry.Recorder.dropped recorder)
    (Rox_telemetry.Recorder.retained_count recorder)
    (Rox_telemetry.Recorder.threshold_ns recorder);
  let target = 3.0 in
  let recorder_target = 2.0 in
  let within = overhead_pct < target in
  let within_recorder = recorder_pct <= recorder_target in
  if not within then
    Printf.printf "note: above the %.0f%% target — rerun on a quiet machine\n" target;
  if not within_recorder then
    Printf.printf
      "note: recorder arm above the %.0f%% target — rerun on a quiet machine\n"
      recorder_target;
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  %s,\n" (Bench_common.machine_json ~domains_used:1));
  Buffer.add_string buf (Printf.sprintf "  \"workload\": \"fig5 dblp x%d\",\n" scale);
  Buffer.add_string buf (Printf.sprintf "  \"runs_per_trial\": %d,\n" reps);
  Buffer.add_string buf (Printf.sprintf "  \"trials\": %d,\n" trials);
  Buffer.add_string buf (Printf.sprintf "  \"telemetry_off_s\": %.4f,\n" !best_off);
  Buffer.add_string buf (Printf.sprintf "  \"telemetry_on_s\": %.4f,\n" !best_on);
  Buffer.add_string buf (Printf.sprintf "  \"recorder_s\": %.4f,\n" !best_rec);
  Buffer.add_string buf (Printf.sprintf "  \"overhead_pct\": %.2f,\n" overhead_pct);
  Buffer.add_string buf
    (Printf.sprintf "  \"recorder_overhead_pct\": %.2f,\n" recorder_pct);
  Buffer.add_string buf (Printf.sprintf "  \"spans_per_run\": %d,\n" spans_per_run);
  Buffer.add_string buf
    (Printf.sprintf "  \"records\": %d,\n" (Rox_telemetry.Recorder.records recorder));
  Buffer.add_string buf
    (Printf.sprintf "  \"traces_retained\": %d,\n"
       (Rox_telemetry.Recorder.retained_count recorder));
  Buffer.add_string buf (Printf.sprintf "  \"target_pct\": %.1f,\n" target);
  Buffer.add_string buf
    (Printf.sprintf "  \"recorder_target_pct\": %.1f,\n" recorder_target);
  Buffer.add_string buf (Printf.sprintf "  \"within_target\": %b,\n" within);
  Buffer.add_string buf
    (Printf.sprintf "  \"within_recorder_target\": %b\n" within_recorder);
  Buffer.add_string buf "}\n";
  let path = "BENCH_telemetry.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" path

(* Telemetry overhead on the Figure 5 workload (the DBLP 4-venue author
   chain): the same query run with telemetry off (null sink — one boolean
   test per instrumentation site) and on (spans + metrics recorded,
   per-run sinks absorbed into one aggregate registry).

   The contract is <3% overhead with telemetry OFF relative to the seed
   (the sink must be free when disabled); the on/off delta reported here
   bounds it from above, since "off" runs still pass through every
   instrumented call site. Trials interleave off/on and keep the fastest
   trial per arm — minima are robust against scheduler noise on shared CI
   machines.

   Writes BENCH_telemetry.json: per-arm seconds, overhead percentage, and
   the span/metric volume of an instrumented run. *)

open Rox_workload
open Bench_common

let time_arm ~reps make_session compiled =
  (* One warmup run per arm keeps allocator/cache state comparable. *)
  ignore (Rox_core.Optimizer.run (make_session ()) compiled);
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (Rox_core.Optimizer.run (make_session ()) compiled)
  done;
  Unix.gettimeofday () -. t0

let run ?(full = false) () =
  header "Telemetry overhead: Figure 5 workload, spans+metrics on vs off";
  let scale = if full then 100 else 10 in
  let venues = List.map Dblp.find_venue [ "VLDB"; "ICDE"; "ICIP"; "ADBIS" ] in
  let ctx = load_dblp ~scale venues in
  let compiled = compile_combo ctx venues in
  let reps = if full then 30 else 15 in
  let trials = 5 in
  let session_off () = Rox_core.Session.create () in
  let aggregate = Rox_telemetry.Aggregate.create () in
  let last_sink = ref (Rox_telemetry.Sink.null ()) in
  let session_on () =
    (* Fresh sink per query, absorbed post-run — the serving pattern. *)
    (match Rox_telemetry.Sink.enabled !last_sink, !last_sink with
     | true, s -> Rox_telemetry.Aggregate.absorb aggregate (Rox_telemetry.Sink.metrics s)
     | false, _ -> ());
    let sink = Rox_telemetry.Sink.create ~enabled:true () in
    last_sink := sink;
    Rox_core.Session.create ~telemetry:sink ()
  in
  let best_off = ref infinity and best_on = ref infinity in
  for trial = 1 to trials do
    let off = time_arm ~reps session_off compiled in
    let on = time_arm ~reps session_on compiled in
    best_off := Float.min !best_off off;
    best_on := Float.min !best_on on;
    Printf.printf "trial %d: off %.3fs  on %.3fs (%d runs each)\n%!" trial off on reps
  done;
  let overhead_pct = (!best_on -. !best_off) /. !best_off *. 100.0 in
  let spans_per_run = Rox_telemetry.Sink.span_count !last_sink in
  Printf.printf "\nbest of %d trials: off %.3fs, on %.3fs — overhead %+.2f%%\n"
    trials !best_off !best_on overhead_pct;
  Printf.printf "instrumented run: %d span(s), %d dropped\n" spans_per_run
    (Rox_telemetry.Sink.dropped !last_sink);
  let target = 3.0 in
  let within = overhead_pct < target in
  if not within then
    Printf.printf "note: above the %.0f%% target — rerun on a quiet machine\n" target;
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  %s,\n" (Bench_common.machine_json ~domains_used:1));
  Buffer.add_string buf (Printf.sprintf "  \"workload\": \"fig5 dblp x%d\",\n" scale);
  Buffer.add_string buf (Printf.sprintf "  \"runs_per_trial\": %d,\n" reps);
  Buffer.add_string buf (Printf.sprintf "  \"trials\": %d,\n" trials);
  Buffer.add_string buf (Printf.sprintf "  \"telemetry_off_s\": %.4f,\n" !best_off);
  Buffer.add_string buf (Printf.sprintf "  \"telemetry_on_s\": %.4f,\n" !best_on);
  Buffer.add_string buf (Printf.sprintf "  \"overhead_pct\": %.2f,\n" overhead_pct);
  Buffer.add_string buf (Printf.sprintf "  \"spans_per_run\": %d,\n" spans_per_run);
  Buffer.add_string buf (Printf.sprintf "  \"target_pct\": %.1f,\n" target);
  Buffer.add_string buf (Printf.sprintf "  \"within_target\": %b\n" within);
  Buffer.add_string buf "}\n";
  let path = "BENCH_telemetry.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" path

(* E2 — Figure 2: chain sampling illustrated on a planted-correlation
   document. The smallest-weight edge is not on the best path; chain
   sampling discovers a hyper-selective branch and executes it first. *)

open Rox_storage
open Rox_xquery
open Rox_core
open Bench_common
module Trace = Rox_joingraph.Trace

(* 2000 'a' elements; every a has a b child and most have an e child; only a
   handful of b's lead to c[d]. The (a,b) edge looks cheap and uniform; the
   b->c branch is where the selectivity hides. *)
let build_engine () =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf "<r>";
  for i = 0 to 1999 do
    Buffer.add_string buf "<a><b>";
    if i mod 100 = 0 then Buffer.add_string buf "<c><d/><d/></c>";
    Buffer.add_string buf "</b>";
    if i mod 2 = 0 then Buffer.add_string buf "<e/>";
    Buffer.add_string buf "</a>"
  done;
  Buffer.add_string buf "</r>";
  let engine = Engine.create () in
  ignore
    (Engine.add_tree engine ~uri:"planted.xml"
       (Rox_xmldom.Xml_parser.parse_string (Buffer.contents buf))
      : Engine.docref);
  engine

let query =
  {|for $a in doc("planted.xml")//a[./e][./b//c[./d]]
return $a|}

let run () =
  header "Figure 2: chain sampling on a planted selective correlation";
  let engine = build_engine () in
  let compiled = Compile.compile_string engine query in
  print_string (Rox_joingraph.Pretty.to_string compiled.Compile.graph);
  let trace = Trace.create () in
  let answer, _result = Optimizer.answer (Session.create ~trace ()) compiled in
  subheader "chain sampling rounds (cost, sf) per path segment";
  List.iter
    (fun (round, cutoff, paths) ->
      Printf.printf "round %d (cutoff=%d):\n" round cutoff;
      List.iter
        (fun p ->
          Printf.printf "  %-4s via %-28s cost=%-10s sf=%.3g\n" p.Trace.label p.Trace.via
            (Rox_util.Table_fmt.human_float p.Trace.cost)
            p.Trace.sf)
        paths)
    (Trace.chain_rounds trace);
  let chosen =
    List.filter_map
      (function
        | Trace.Chain_chosen { edges; trigger } ->
          let t =
            match trigger with
            | `Stopping_condition -> "stopping condition"
            | `Exhausted -> "branches exhausted"
            | `Single_edge -> "single edge"
          in
          Some (Printf.sprintf "chose segment [%s] (%s)"
                  (String.concat " " (List.map string_of_int edges)) t)
        | _ -> None)
      (Trace.events trace)
  in
  subheader "decisions";
  List.iter print_endline chosen;
  Printf.printf "\nanswer: %d nodes (the 20 selective a's that survive both branches)\n"
    (Array.length answer)

(* E8 — Figure 7: scaling document sizes (x1 / x10 / x50 replication):
   plan quality stays flat while the relative sampling overhead shrinks
   with document size.

   To keep the scaling sweep tractable, this experiment uses the
   lightweight plan classes only — ROX (incl/excl sampling), the classical
   smallest-input-first plan, and the mid-query re-optimization baseline —
   normalized to ROX excl. sampling, which Figure 6 shows to be the
   bottom line of the full plan space. *)

open Rox_workload
open Rox_classical
open Bench_common

type point = {
  rox_pure : int;
  rox_full : int;
  classical : int;
  midquery : int;
}

let measure_combo ctx vs =
  let compiled = compile_combo ctx vs in
  let graph = compiled.Rox_xquery.Compile.graph in
  match Enumerate.analyze graph with
  | None -> None
  | Some template ->
    let rox = Rox_core.Optimizer.run_default compiled in
    let c = rox.Rox_core.Optimizer.counter in
    let classical_order = Classical_opt.join_order ctx.engine graph template in
    let classical =
      List.fold_left
        (fun acc placement ->
          let edges = Enumerate.plan_edges graph template ~order:classical_order ~placement in
          min acc (eval_plan ctx graph edges).p_work)
        max_int Enumerate.placements
    in
    let mq = Midquery.execute (plan_session ()) ctx.engine graph in
    Some
      {
        rox_pure = Rox_algebra.Cost.read c Rox_algebra.Cost.Execution;
        rox_full = Rox_algebra.Cost.total c;
        classical;
        midquery = Rox_algebra.Cost.total mq.Midquery.counter;
      }

let run ~full () =
  header "Figure 7: scaling document sizes";
  let scales = if full then [ 1; 10; 100 ] else [ 1; 10; 50 ] in
  let per_group = if full then 5 else 3 in
  let table = ref [] in
  let overheads = ref [] in
  List.iter
    (fun scale ->
      let ctx, dt = time_it (fun () -> load_dblp ~scale (Array.to_list Dblp.venues)) in
      Printf.printf "scale x%d: loaded in %.1fs\n%!" scale dt;
      let combos =
        Combos.all_combinations Dblp.venues
        |> List.filter (fun (_, vs) ->
               Correlation.nonempty_joint
                 (List.map (fun v -> List.assoc v.Dblp.name ctx.by_name) vs))
        |> Combos.sample_per_group ~seed:23 ~per_group
      in
      List.iter
        (fun group ->
          let points =
            List.filter_map
              (fun (g, vs) -> if g = group then measure_combo ctx vs else None)
              combos
          in
          if points <> [] then begin
            let gm f =
              Rox_util.Stats.geometric_mean
                (Array.of_list
                   (List.map
                      (fun p ->
                        max 1e-9 (float_of_int (f p) /. float_of_int (max 1 p.rox_pure)))
                      points))
            in
            table :=
              [
                Printf.sprintf "x%d" scale;
                Combos.group_name group;
                Printf.sprintf "%.2f" (gm (fun p -> p.rox_pure));
                Printf.sprintf "%.2f" (gm (fun p -> p.rox_full));
                Printf.sprintf "%.2f" (gm (fun p -> p.classical));
                Printf.sprintf "%.2f" (gm (fun p -> p.midquery));
              ]
              :: !table
          end)
        Combos.groups;
      let ovs =
        List.filter_map
          (fun (_, vs) ->
            Option.map
              (fun p ->
                float_of_int (p.rox_full - p.rox_pure) /. float_of_int (max 1 p.rox_pure))
              (measure_combo ctx vs))
          combos
      in
      if ovs <> [] then
        overheads :=
          (scale, 100.0 *. Rox_util.Stats.mean (Array.of_list ovs)) :: !overheads)
    scales;
  Rox_util.Table_fmt.print
    ~header:[ "scale"; "grp"; "ROX excl"; "ROX incl"; "classical"; "mid-query" ]
    (List.rev !table);
  subheader "ROX sampling overhead by scale (the Fig 7 trend)";
  List.iter
    (fun (scale, ov) -> Printf.printf "  x%-3d mean overhead = %.0f%%\n" scale ov)
    (List.rev !overheads)

(* E6 — Figure 5: impact of the equi-join order on cumulative (intermediate)
   join result cardinality for the combination VLDB, ICDE, ICIP, ADBIS.
   ICIP (IR) is uncorrelated with the three DB venues: join orders that
   touch ICIP only at the end pay orders of magnitude larger intermediates.
   Classical picks such an order; ROX starts from the ICIP joins. *)

open Rox_xquery
open Rox_workload
open Rox_classical
open Bench_common

let run ~full () =
  header "Figure 5: impact of join order on intermediate result sizes";
  let scale = if full then 100 else 10 in
  Printf.printf "documents: 1=VLDB 2=ICDE 3=ICIP 4=ADBIS (scale x%d)\n" scale;
  let venues = List.map Dblp.find_venue [ "VLDB"; "ICDE"; "ICIP"; "ADBIS" ] in
  let ctx = load_dblp ~scale venues in
  let compiled = compile_combo ctx venues in
  let graph = compiled.Compile.graph in
  let template = Option.get (Enumerate.analyze graph) in
  let classical_order = Classical_opt.join_order ctx.engine graph template in
  (* ROX's join order class. *)
  let rox = Rox_core.Optimizer.run_default compiled in
  let rox_order = rox_join_order graph template rox.Rox_core.Optimizer.edge_order in
  let rows =
    List.map
      (fun order ->
        let cumulative placement =
          let edges = Enumerate.plan_edges graph template ~order ~placement in
          match execute_plan ctx graph edges with
          | Some run -> string_of_int run.Executor.join_rows
          | None -> "blowup"
        in
        let marks =
          (if Enumerate.equal_order order classical_order then " <= classical" else "")
          ^ (if Enumerate.equal_order order rox_order then " <= ROX" else "")
        in
        [ Enumerate.order_name order ^ marks; cumulative Enumerate.SJ ])
      (Enumerate.all_join_orders ~ndocs:4)
  in
  let sorted =
    List.sort
      (fun a b ->
        compare
          (int_of_string_opt (List.nth a 1))
          (int_of_string_opt (List.nth b 1)))
      rows
  in
  Rox_util.Table_fmt.print ~header:[ "join order"; "cumulative join rows (SJ)" ] sorted;
  let values =
    List.filter_map (fun r -> int_of_string_opt (List.nth r 1)) rows
    |> List.map float_of_int
  in
  (match (values, rox_order) with
   | v :: _ :: _, _ ->
     ignore v;
     let arr = Array.of_list values in
     Printf.printf
       "\nspread: min=%d max=%d (factor %.0fx) — the paper reports up to 3 orders of magnitude\n"
       (int_of_float (Rox_util.Stats.minimum arr))
       (int_of_float (Rox_util.Stats.maximum arr))
       (Rox_util.Stats.maximum arr /. Rox_util.Stats.minimum arr)
   | _ -> ());
  Printf.printf "classical chose %s; ROX chose %s\n"
    (Enumerate.order_name classical_order)
    (Enumerate.order_name rox_order)

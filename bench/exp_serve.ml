(* The serving front-end under load — the payoff of lib/serve.

   Four legs against one shared XMark engine:

   1. Closed-loop saturation: G client threads submit back-to-back with
      per-request distinct thresholds (defeating both coalescing and any
      cache), at 1 worker domain and at N — the saturation qps pair.
   2. Open-loop latency: requests arrive on a fixed schedule (fractions
      of the measured saturation rate); latency is completion minus the
      *scheduled* arrival, so queueing delay counts. p50/p99 from the
      serve-side histogram-free client-side samples.
   3. Coalescing: one worker is pinned by a blocker request, then 8
      fingerprint-identical requests are submitted — the first queues,
      the other 7 must coalesce onto it, and all 8 answers must be
      bit-identical to an independent execution.
   4. A scripted protocol session over a socketpair.

   Writes BENCH_serve.json; fails hard on audit diagnostics (RX601-603),
   admission imbalance or divergent coalesced answers. *)

open Bench_common
module P = Rox_serve.Protocol
module S = Rox_serve.Server

let query_for i =
  (* 97 distinct thresholds => 97 distinct fingerprints, round-robin. *)
  q1_query (if i mod 2 = 0 then "<" else ">") (50 + (i mod 97))

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

(* G threads drain a shared request counter as fast as the server lets
   them: the closed-loop saturation measurement. *)
let closed_loop server ~clients ~requests =
  let next = Atomic.make 0 in
  let rejected = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  let body () =
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < requests then begin
        (match S.submit server (P.query (query_for i)) with
         | P.Err (P.Busy, _) -> Atomic.incr rejected
         | _ -> ());
        go ()
      end
    in
    go ()
  in
  let threads = List.init clients (fun _ -> Thread.create body ()) in
  List.iter Thread.join threads;
  let dt = Unix.gettimeofday () -. t0 in
  let qps = float_of_int requests /. dt in
  (qps, Atomic.get rejected)

(* Open loop: request i is *scheduled* at t0 + i/rate regardless of how
   the server is doing; a thread pool picks up arrivals. Latency counts
   from the scheduled arrival, so a saturated server shows its queueing
   delay instead of hiding it. *)
let open_loop server ~clients ~requests ~rate =
  let next = Atomic.make 0 in
  let rejected = Atomic.make 0 in
  let latencies = Array.make requests nan in
  let t0 = Unix.gettimeofday () in
  let body () =
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < requests then begin
        let scheduled = t0 +. (float_of_int i /. rate) in
        let now = Unix.gettimeofday () in
        if scheduled > now then Thread.delay (scheduled -. now);
        (match S.submit server (P.query (query_for i)) with
         | P.Err (P.Busy, _) -> Atomic.incr rejected
         | _ -> latencies.(i) <- (Unix.gettimeofday () -. scheduled) *. 1e3);
        go ()
      end
    in
    go ()
  in
  let threads = List.init clients (fun _ -> Thread.create body ()) in
  List.iter Thread.join threads;
  let dt = Unix.gettimeofday () -. t0 in
  let served =
    Array.to_list latencies |> List.filter (fun l -> not (Float.is_nan l))
  in
  let sorted = Array.of_list (List.sort compare served) in
  let achieved = float_of_int (Array.length sorted) /. dt in
  ( percentile sorted 0.50,
    percentile sorted 0.99,
    achieved,
    Atomic.get rejected )

let ids_of = function P.Answer a -> Some a.ids | _ -> None

let run ?(factor = 0.1) ?(requests = 90) () =
  header "Serving front-end: admission, worker domains, coalescing";
  let engine = xmark_engine ~factor () in
  let n_cores = cores () in
  let big_workers = 4 in
  Printf.printf "machine: %d recommended domain(s)\n%!" n_cores;

  (* -- closed-loop saturation at 1 and N workers ---------------------- *)
  let saturation =
    List.map
      (fun workers ->
        let server =
          S.create (S.config ~workers ~queue_capacity:256 engine)
        in
        let qps, rejected =
          closed_loop server ~clients:(2 * workers) ~requests
        in
        S.shutdown server;
        let audit_ok = S.self_check server = [] in
        Printf.printf
          "closed loop, %d worker(s): %7.1f q/s (%d rejected)%s\n%!" workers
          qps rejected
          (if audit_ok then "" else "  AUDIT FAILED");
        (workers, qps, rejected, audit_ok))
      [ 1; big_workers ]
  in
  let sat_qps =
    match List.rev saturation with (_, q, _, _) :: _ -> q | [] -> 1.0
  in

  (* -- open-loop latency at fractions of saturation ------------------- *)
  let open_runs =
    List.map
      (fun frac ->
        let rate = Float.max 1.0 (frac *. sat_qps) in
        let server =
          S.create (S.config ~workers:big_workers ~queue_capacity:256 engine)
        in
        let p50, p99, achieved, rejected =
          open_loop server ~clients:(2 * big_workers) ~requests ~rate
        in
        S.shutdown server;
        let audit_ok = S.self_check server = [] in
        Printf.printf
          "open loop %4.0f%% of saturation (%6.1f q/s): p50 %6.2f ms  p99 \
           %7.2f ms  achieved %6.1f q/s%s\n%!"
          (frac *. 100.) rate p50 p99 achieved
          (if audit_ok then "" else "  AUDIT FAILED");
        (frac, rate, p50, p99, achieved, rejected, audit_ok))
      [ 0.5; 0.8 ]
  in

  (* -- coalescing: 1 worker pinned, 7 of 8 identical requests coalesce  *)
  let coalesce_server = S.create (S.config ~workers:1 ~queue_capacity:64 engine) in
  let blocker =
    match S.submit_async coalesce_server (P.query (q1_query "<" 145)) with
    | `Ticket t -> t
    | `Rejected -> failwith "blocker rejected"
  in
  let twin = P.query ~seed:11 (q1_query ">" 145) in
  let tickets =
    List.init 8 (fun _ ->
        match S.submit_async coalesce_server twin with
        | `Ticket t -> t
        | `Rejected -> failwith "twin rejected")
  in
  ignore (S.await coalesce_server blocker : P.response);
  let twin_answers = List.map (S.await coalesce_server) tickets in
  S.shutdown coalesce_server;
  let coalesce_audit = S.audit coalesce_server in
  let hits = coalesce_audit.Rox_analysis.Serve_check.sv_coalesced in
  let reference =
    let compiled = Rox_xquery.Compile.compile_string engine (q1_query ">" 145) in
    let session =
      Rox_core.Session.create
        ~config:{ (Rox_core.Session.default_config ()) with Rox_core.Session.seed = 11 }
        ()
    in
    fst (Rox_core.Optimizer.answer session compiled)
  in
  let coalesce_identical =
    List.for_all (fun r -> ids_of r = Some reference) twin_answers
  in
  let hit_ratio = float_of_int hits /. 8.0 in
  let coalesce_ok =
    hits = 7 && coalesce_identical && S.self_check coalesce_server = []
  in
  Printf.printf
    "coalescing: %d/8 hits (ratio %.3f), answers %s\n%!" hits hit_ratio
    (if coalesce_identical then "bit-identical" else "DIVERGED");

  (* -- scripted protocol session over a socketpair -------------------- *)
  let sp_server = S.create (S.config ~workers:2 ~queue_capacity:16 engine) in
  let srv_fd, cli_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let handler = Thread.create (fun () -> S.handle_connection sp_server srv_fd) () in
  let socketpair_ok =
    let d = P.decoder () in
    let send r = P.write_frame cli_fd (P.render_request r) in
    let recv () =
      match P.read_frame cli_fd d with
      | `Frame payload ->
        (match P.parse_response payload with Ok r -> r | Error m -> failwith m)
      | `Eof -> failwith "eof"
      | `Corrupt m -> failwith m
    in
    send P.Ping;
    let pong_ok = recv () = P.Pong in
    send (P.Query (P.query (q1_query "<" 145)));
    let answered = match recv () with P.Answer a -> a.total >= 0 | _ -> false in
    send P.Stats;
    let stats_ok =
      match recv () with
      | P.Stats_reply kvs -> List.mem_assoc "requests" kvs
      | _ -> false
    in
    send P.Quit;
    let bye_ok = recv () = P.Bye in
    pong_ok && answered && stats_ok && bye_ok
  in
  Thread.join handler;
  (try Unix.close cli_fd with Unix.Unix_error _ -> ());
  S.shutdown sp_server;
  let sp_audit_ok = S.self_check sp_server = [] in
  Printf.printf "socketpair session: %s\n%!"
    (if socketpair_ok && sp_audit_ok then "ok" else "FAILED");

  let audits_ok =
    List.for_all (fun (_, _, _, ok) -> ok) saturation
    && List.for_all (fun (_, _, _, _, _, _, ok) -> ok) open_runs
    && sp_audit_ok
  in
  let all_ok = audits_ok && coalesce_ok && socketpair_ok in

  (* -- BENCH_serve.json ---------------------------------------------- *)
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  %s,\n" (machine_json ~domains_used:big_workers));
  Buffer.add_string buf (Printf.sprintf "  \"cores\": %d,\n" n_cores);
  Buffer.add_string buf (Printf.sprintf "  \"requests_per_leg\": %d,\n" requests);
  Buffer.add_string buf "  \"closed_loop\": [\n";
  List.iteri
    (fun i (workers, qps, rejected, _) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"workers\": %d, \"saturation_qps\": %.1f, \"rejected\": %d}%s\n"
           workers qps rejected
           (if i = List.length saturation - 1 then "" else ",")))
    saturation;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"open_loop\": [\n";
  List.iteri
    (fun i (frac, rate, p50, p99, achieved, rejected, _) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"workers\": %d, \"saturation_fraction\": %.2f, \"rate_qps\": \
            %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"achieved_qps\": %.1f, \
            \"rejected\": %d}%s\n"
           big_workers frac rate p50 p99 achieved rejected
           (if i = List.length open_runs - 1 then "" else ",")))
    open_runs;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"coalesce\": {\"requests\": 8, \"hits\": %d, \"hit_ratio\": %.3f, \
        \"identical\": %b},\n"
       hits hit_ratio coalesce_identical);
  Buffer.add_string buf (Printf.sprintf "  \"socketpair_ok\": %b,\n" socketpair_ok);
  Buffer.add_string buf (Printf.sprintf "  \"audits_clean\": %b,\n" audits_ok);
  Buffer.add_string buf (Printf.sprintf "  \"all_ok\": %b\n" all_ok);
  Buffer.add_string buf "}\n";
  let path = "BENCH_serve.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" path;
  if not all_ok then failwith "serve bench failed its invariants"

(* Concurrent query serving on OCaml 5 domains — the payoff of the
   session refactor.

   One shared read-only Engine (and, in the cache check, one shared
   mutex-guarded Rox_cache.Store) serves N domains; each domain runs its
   own stream of queries, one fresh Session per query run. Because every
   piece of run-time mutable state — RNG, counters, trace, deadline —
   lives in the session, equal seeds must give bit-identical answers on
   every domain, and throughput should scale with physical cores.

   Writes BENCH_parallel.json next to the working directory: queries/sec
   at 1, 2 and 4 domains, the machine's core count, and whether all
   domains produced bit-identical answers. *)

open Rox_xquery
open Bench_common

let queries = [ q1_query "<" 145; q1_query ">" 145; q1_query "<" 60 ]

(* With [?aggregate], each query runs under a fresh per-session telemetry
   sink that is absorbed into the shared mutex-guarded process registry
   after the run — the multi-domain serving pattern the telemetry layer is
   built for. Sinks are session-local; only the aggregate crosses domains. *)
let run_one ?cache ?aggregate compiled =
  let telemetry =
    match aggregate with
    | None -> Rox_telemetry.Sink.null ()
    | Some _ -> Rox_telemetry.Sink.create ~enabled:true ()
  in
  let session = Rox_core.Session.create ?cache ~telemetry () in
  let answer = fst (Rox_core.Optimizer.answer session compiled) in
  (match aggregate with
   | Some agg -> Rox_telemetry.Aggregate.absorb agg (Rox_telemetry.Sink.metrics telemetry)
   | None -> ());
  answer

(* Each domain executes [iters] passes over the whole query list and
   returns the answers of its last pass (for the bit-identity check). *)
let domain_work ?cache ?aggregate compiled_list iters () =
  let answers = ref [] in
  for _ = 1 to iters do
    answers := List.map (fun c -> run_one ?cache ?aggregate c) compiled_list
  done;
  !answers

let measure ~domains ~iters ?cache ?aggregate compiled_list =
  let t0 = Unix.gettimeofday () in
  let spawned =
    List.init (domains - 1) (fun _ ->
        Domain.spawn (domain_work ?cache ?aggregate compiled_list iters))
  in
  let mine = domain_work ?cache ?aggregate compiled_list iters () in
  let others = List.map Domain.join spawned in
  let dt = Unix.gettimeofday () -. t0 in
  let total_runs = domains * iters * List.length compiled_list in
  let qps = float_of_int total_runs /. dt in
  (qps, dt, mine :: others)

let answers_equal lists =
  match lists with
  | [] -> true
  | first :: rest -> List.for_all (fun l -> l = first) rest

(* ---- cache-hit-throughput leg -------------------------------------- *)

(* One domain's share of the hammer: re-run the (already warmed, hence
   all-hits) query list [iters] times against the shared store, timing
   itself so the leg can report per-domain qps spread. *)
let hammer_work ~cache compiled_list iters () =
  let t0 = Unix.gettimeofday () in
  let answers = ref [] in
  for _ = 1 to iters do
    answers := List.map (fun c -> run_one ~cache c) compiled_list
  done;
  let dt = Unix.gettimeofday () -. t0 in
  (!answers, dt)

type hammer_result = {
  hr_qps : float;
  hr_per_domain_qps : float list;
  hr_spread_pct : float;     (* (max-min)/max across domains, percent *)
  hr_lock_waits : int;
  hr_fast_hits : int;
  hr_hits : int;
  hr_identical : bool;
}

(* Warm one store, then hammer the same hot fingerprints from [domains]
   domains. [shards]/[fast_path] select the configuration: (1, false) is
   the single-mutex baseline, (8, true) the sharded store under test. *)
let hammer_config ~domains ~iters ~shards ~fast_path engine compiled_list
    reference =
  let store = Rox_cache.Store.of_megabytes ~shards ~fast_path engine 32 in
  (* Warm pass: after this every edge/estimate fingerprint is resident,
     so the measured phase is (almost) pure cache-hit traffic. *)
  ignore (List.map (fun c -> run_one ~cache:store c) compiled_list);
  let spawned =
    List.init (domains - 1) (fun _ ->
        Domain.spawn (hammer_work ~cache:store compiled_list iters))
  in
  let mine = hammer_work ~cache:store compiled_list iters () in
  let per = mine :: List.map Domain.join spawned in
  let answers = List.map fst per in
  let runs_each = iters * List.length compiled_list in
  let per_qps =
    List.map
      (fun (_, dt) -> if dt > 0.0 then float_of_int runs_each /. dt else 0.0)
      per
  in
  let total_dt = List.fold_left (fun a (_, dt) -> Float.max a dt) 0.0 per in
  let qps =
    if total_dt > 0.0 then float_of_int (domains * runs_each) /. total_dt
    else 0.0
  in
  let mx = List.fold_left Float.max 0.0 per_qps in
  let mn = List.fold_left Float.min infinity per_qps in
  let spread = if mx > 0.0 then 100.0 *. (mx -. mn) /. mx else 0.0 in
  let s = Rox_cache.Store.stats store in
  let open Rox_cache in
  {
    hr_qps = qps;
    hr_per_domain_qps = per_qps;
    hr_spread_pct = spread;
    hr_lock_waits = s.Store.relations.Lru.lock_waits + s.Store.estimates.Lru.lock_waits;
    hr_fast_hits = s.Store.relations.Lru.fast_hits + s.Store.estimates.Lru.fast_hits;
    hr_hits = s.Store.relations.Lru.hits + s.Store.estimates.Lru.hits;
    hr_identical =
      answers_equal answers && List.for_all (fun l -> l = reference) answers;
  }

let json_escape_float f = Printf.sprintf "%.2f" f

(* ---- intra-query leg ------------------------------------------------ *)

(* ONE query fanned out across a session pool: every physical join runs
   as K partition-joins and the racing probes go concurrently, merged in
   partition order. The answers must be bit-identical at every K (the
   partition/concat contract, RX310); the timing is reported honestly —
   on a 1-core container sub-1x is the expected result and the machine
   stamp says so. *)
let intra_query ~iters compiled reference =
  List.map
    (fun parts ->
      let pool =
        if parts > 1 then Some (Rox_core.Pool.create ~parts) else None
      in
      let ok = ref true in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to iters do
        let session = Rox_core.Session.create ?pool () in
        let answer = fst (Rox_core.Optimizer.answer session compiled) in
        if answer <> reference then ok := false
      done;
      let dt = Unix.gettimeofday () -. t0 in
      Option.iter Rox_core.Pool.shutdown pool;
      (parts, dt, !ok))
    [ 1; 2; 4 ]

let run ?(factor = 0.25) ?(iters = 3) () =
  header "Parallel sessions: N domains, one shared engine";
  let engine = xmark_engine ~factor () in
  let compiled_list = List.map (Compile.compile_string engine) queries in
  (* Sequential reference answers: the ground truth every domain must
     reproduce bit-for-bit. *)
  let reference = List.map (fun c -> run_one c) compiled_list in
  let n_cores = cores () in
  Printf.printf "machine: %d recommended domain(s)\n%!" n_cores;
  let runs =
    List.map
      (fun domains ->
        let qps, dt, per_domain = measure ~domains ~iters compiled_list in
        let identical =
          answers_equal per_domain
          && List.for_all (fun l -> l = reference) per_domain
        in
        Printf.printf "%d domain(s): %6.2f q/s (%.2fs)%s\n%!" domains qps dt
          (if identical then "" else "  ANSWERS DIVERGED");
        (domains, qps, identical))
      [ 1; 2; 4 ]
  in
  (* Shared-cache sanity: two domains hammer one mutex-guarded store;
     answers must still match the cache-off reference. *)
  let store = Rox_cache.Store.of_megabytes engine 32 in
  let _, _, cached = measure ~domains:2 ~iters ~cache:store compiled_list in
  let cache_ok =
    answers_equal cached && List.for_all (fun l -> l = reference) cached
  in
  Printf.printf "shared cache, 2 domains: answers %s\n%!"
    (if cache_ok then "identical" else "DIVERGED");
  (* Telemetry aggregate sanity: per-session sinks absorbed across domains
     must account for exactly one queries_served per run. *)
  let aggregate = Rox_telemetry.Aggregate.create () in
  let telemetry_domains = 2 in
  let _, _, with_telemetry =
    measure ~domains:telemetry_domains ~iters ~aggregate compiled_list
  in
  let telemetry_answers_ok =
    answers_equal with_telemetry
    && List.for_all (fun l -> l = reference) with_telemetry
  in
  let served, merges =
    Rox_telemetry.Aggregate.with_metrics aggregate (fun m ->
        ( m.Rox_telemetry.Metrics.queries_served.Rox_telemetry.Metrics.c_value,
          m.Rox_telemetry.Metrics.aggregate_merges.Rox_telemetry.Metrics.c_value ))
  in
  let expected_served = telemetry_domains * iters * List.length queries in
  let telemetry_ok = served = expected_served && telemetry_answers_ok in
  Printf.printf "telemetry aggregate, %d domains: %d/%d queries served%s\n%!"
    telemetry_domains served expected_served
    (if telemetry_ok then "" else "  INCONSISTENT");
  (* Cache-hit throughput: the same hot fingerprints hammered from N
     domains against (a) a single-mutex, fast-path-off baseline store and
     (b) the sharded store with the lock-free read image. The contention
     counters make the refactor's effect visible even when a 1-core
     container flattens the qps difference. *)
  let hammer_domains = 2 in
  let single =
    hammer_config ~domains:hammer_domains ~iters ~shards:1 ~fast_path:false
      engine compiled_list reference
  in
  let sharded =
    hammer_config ~domains:hammer_domains ~iters
      ~shards:8 ~fast_path:true engine compiled_list reference
  in
  let lock_waits_dropped = sharded.hr_lock_waits <= single.hr_lock_waits in
  let hammer_ok = single.hr_identical && sharded.hr_identical in
  Printf.printf
    "cache-hit hammer, %d domains: single-lock %6.2f q/s (%d waits), 8-shard %6.2f q/s (%d waits, %d fast hits)%s\n%!"
    hammer_domains single.hr_qps single.hr_lock_waits sharded.hr_qps
    sharded.hr_lock_waits sharded.hr_fast_hits
    (if hammer_ok then "" else "  ANSWERS DIVERGED");
  Printf.printf "  qps spread across domains: single %.1f%%, sharded %.1f%%; shard lock waits %s\n%!"
    single.hr_spread_pct sharded.hr_spread_pct
    (if lock_waits_dropped then "dropped" else "DID NOT DROP");
  (* Intra-query partitioning: the SAME single query at 1, 2 and 4
     partitions on a session pool. *)
  let intra_compiled = List.hd compiled_list in
  let intra_reference = List.hd reference in
  let intra = intra_query ~iters:(max 1 iters) intra_compiled intra_reference in
  let intra_t1 =
    match intra with (1, dt, _) :: _ -> dt | _ -> 0.0
  in
  List.iter
    (fun (parts, dt, ok) ->
      Printf.printf
        "intra-query, %d part(s): %.3fs (%.2fx vs sequential)%s\n%!" parts dt
        (if dt > 0.0 then intra_t1 /. dt else 0.0)
        (if ok then "" else "  ANSWERS DIVERGED"))
    intra;
  let intra_ok = List.for_all (fun (_, _, ok) -> ok) intra in
  if n_cores < 4 then
    Printf.printf
      "note: intra-query speedup is bounded by the %d available core(s)\n%!"
      n_cores;
  let qps_of d = List.find_opt (fun (d', _, _) -> d' = d) runs in
  let speedup =
    match (qps_of 1, qps_of 4) with
    | Some (_, q1, _), Some (_, q4, _) when q1 > 0.0 -> q4 /. q1
    | _ -> 0.0
  in
  Printf.printf "4-domain speedup over 1: %.2fx\n" speedup;
  if speedup < 2.5 then
    Printf.printf
      "note: below the 2.5x target%s\n"
      (if n_cores < 4 then
         Printf.sprintf " — only %d core(s) available; scaling needs >= 4"
           n_cores
       else " on a >= 4-core machine: investigate");
  let all_identical =
    cache_ok && telemetry_ok && hammer_ok && intra_ok
    && List.for_all (fun (_, _, ok) -> ok) runs
  in
  let hammer_json label hr =
    Printf.sprintf
      "    \"%s\": {\"qps\": %s, \"per_domain_qps\": [%s], \"qps_spread_pct\": %s, \"lock_waits\": %d, \"fast_hits\": %d, \"hits\": %d, \"identical\": %b}"
      label (json_escape_float hr.hr_qps)
      (String.concat ", " (List.map json_escape_float hr.hr_per_domain_qps))
      (json_escape_float hr.hr_spread_pct)
      hr.hr_lock_waits hr.hr_fast_hits hr.hr_hits hr.hr_identical
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  %s,\n" (machine_json ~domains_used:4));
  Buffer.add_string buf (Printf.sprintf "  \"cores\": %d,\n" n_cores);
  Buffer.add_string buf
    (Printf.sprintf "  \"iters_per_domain\": %d,\n" (iters * List.length queries));
  Buffer.add_string buf "  \"runs\": [\n";
  List.iteri
    (fun i (domains, qps, identical) ->
      Buffer.add_string buf
        (Printf.sprintf "    {\"domains\": %d, \"qps\": %s, \"identical\": %b}%s\n"
           domains (json_escape_float qps) identical
           (if i = List.length runs - 1 then "" else ",")))
    runs;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"speedup_4_over_1\": %s,\n" (json_escape_float speedup));
  Buffer.add_string buf
    (Printf.sprintf "  \"shared_cache_identical\": %b,\n" cache_ok);
  Buffer.add_string buf
    (Printf.sprintf "  \"telemetry_queries_served\": %d,\n" served);
  Buffer.add_string buf
    (Printf.sprintf "  \"telemetry_consistent\": %b,\n" telemetry_ok);
  Buffer.add_string buf
    (Printf.sprintf "  \"aggregate_merges\": %d,\n" merges);
  Buffer.add_string buf
    (Printf.sprintf "  \"cache_hit_leg\": {\n    \"domains\": %d,\n"
       hammer_domains);
  Buffer.add_string buf (hammer_json "single_lock" single);
  Buffer.add_string buf ",\n";
  Buffer.add_string buf (hammer_json "sharded" sharded);
  Buffer.add_string buf ",\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"cache_shard_lock_waits\": %d,\n"
       sharded.hr_lock_waits);
  Buffer.add_string buf
    (Printf.sprintf "    \"lock_waits_dropped\": %b\n  },\n" lock_waits_dropped);
  Buffer.add_string buf "  \"intra_query\": {\n    \"runs\": [\n";
  List.iteri
    (fun i (parts, dt, ok) ->
      Buffer.add_string buf
        (Printf.sprintf
           "      {\"parts\": %d, \"seconds\": %.3f, \"speedup_vs_1\": %s, \
            \"identical\": %b}%s\n"
           parts dt
           (json_escape_float (if dt > 0.0 then intra_t1 /. dt else 0.0))
           ok
           (if i = List.length intra - 1 then "" else ",")))
    intra;
  Buffer.add_string buf
    (Printf.sprintf "    ],\n    \"identical\": %b\n  },\n" intra_ok);
  Buffer.add_string buf
    (Printf.sprintf "  \"all_identical\": %b\n" all_identical);
  Buffer.add_string buf "}\n";
  let path = "BENCH_parallel.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" path;
  if not all_identical then failwith "parallel sessions produced divergent answers"

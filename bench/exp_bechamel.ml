(* E10 — Table 1 validation: bechamel micro-benchmarks of the physical
   operator kernels each experiment leans on. One Test.make per paper
   artifact: the staircase joins (Table 1 / Figs 1-3), the value-index
   lookups (Table 1), the index-NL equi-join (Figs 4-7 joins), cut-off
   sampled execution (Table 2 / Fig 8), and relation maintenance (Fig 5
   intermediates). *)

open Bechamel
open Bechamel.Toolkit
open Rox_storage
open Rox_algebra
open Bench_common

let make_tests () =
  let engine = xmark_engine ~factor:0.5 () in
  let r = Engine.get engine 0 in
  let doc = r.Engine.doc in
  let auctions = Element_index.lookup_name r.Engine.elements "open_auction" in
  let bidders = Element_index.lookup_name r.Engine.elements "bidder" in
  let persons = Element_index.lookup_name r.Engine.elements "person" in
  let person_attrs = Element_index.lookup_attr_name r.Engine.elements "person" in
  let rng = Rox_util.Xoshiro.create 5 in
  let sample100 = Sampling.sample rng auctions 100 in
  let id_name = Option.get (Engine.qname_id engine "id") in
  let staircase_desc =
    Test.make ~name:"staircase descendant (Fig1-3 steps)"
      (Staged.stage (fun () ->
           Staircase.join ~doc ~axis:Axis.Descendant ~context:sample100 bidders))
  in
  let staircase_child =
    Test.make ~name:"staircase child (Table 1)"
      (Staged.stage (fun () ->
           Staircase.join ~doc ~axis:Axis.Child ~context:sample100 bidders))
  in
  let staircase_anc =
    Test.make ~name:"staircase ancestor (Table 1)"
      (Staged.stage (fun () ->
           Staircase.join ~doc ~axis:Axis.Ancestor ~context:bidders auctions))
  in
  let index_lookup =
    Test.make ~name:"element index lookup (Table 1 Delt)"
      (Staged.stage (fun () -> Element_index.lookup_name r.Engine.elements "person"))
  in
  let value_join =
    Test.make ~name:"index-NL value join (Fig 4-7 equi-joins)"
      (Staged.stage (fun () ->
           let inner =
             { Value_join.docref = r; side = Value_join.Inner_attr id_name; restrict = None }
           in
           let n = ref 0 in
           Value_join.iter_index_nl ~outer_doc:doc
             ~outer:
               (Rox_util.Column.slice person_attrs ~pos:0
                  ~len:(min 100 (Rox_util.Column.length person_attrs)))
             ~inner
             (fun _ _ _ -> incr n);
           !n))
  in
  let cutoff_sample =
    Test.make ~name:"cut-off sampled step (Table 2 / Fig 8)"
      (Staged.stage (fun () ->
           Cutoff.run ~limit:100 ~outer_len:(Rox_util.Column.length sample100) ~iter:(fun emit ->
               Staircase.iter_pairs ~doc ~axis:Axis.Descendant ~context:sample100
                 ~candidates:bidders (fun cidx _ s -> emit cidx s))))
  in
  let relation_extend =
    let base = Rox_joingraph.Relation.singleton ~vertex:0 auctions in
    let pairs =
      let lefts = Rox_util.Int_vec.create () and rights = Rox_util.Int_vec.create () in
      Staircase.iter_pairs ~doc ~axis:Axis.Descendant ~context:auctions ~candidates:bidders
        (fun _ c s ->
          Rox_util.Int_vec.push lefts c;
          Rox_util.Int_vec.push rights s);
      { Rox_joingraph.Exec.left =
          Rox_util.Column.unsafe_of_array_detect (Rox_util.Int_vec.to_array lefts);
        right =
          Rox_util.Column.unsafe_of_array_detect (Rox_util.Int_vec.to_array rights) }
    in
    Test.make ~name:"relation extend (Fig 5 intermediates)"
      (Staged.stage (fun () ->
           Rox_joingraph.Relation.extend base ~on:0 ~new_vertex:1 pairs))
  in
  let sampling_draw =
    Test.make ~name:"index sampling tau=100 (Sec 2.3)"
      (Staged.stage (fun () -> Sampling.sample rng persons 100))
  in
  Test.make_grouped ~name:"kernels"
    [ staircase_desc; staircase_child; staircase_anc; index_lookup; value_join;
      cutoff_sample; relation_extend; sampling_draw ]

let run () =
  header "Bechamel micro-benchmarks of the physical operator kernels";
  let tests = make_tests () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let time_ns =
        match Analyze.OLS.estimates ols_result with
        | Some (t :: _) -> t
        | _ -> nan
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with Some r -> r | None -> nan
      in
      rows :=
        [ name;
          (if time_ns > 1e6 then Printf.sprintf "%.2f ms" (time_ns /. 1e6)
           else if time_ns > 1e3 then Printf.sprintf "%.2f us" (time_ns /. 1e3)
           else Printf.sprintf "%.0f ns" time_ns);
          Printf.sprintf "%.4f" r2 ]
        :: !rows)
    results;
  Rox_util.Table_fmt.print ~header:[ "kernel"; "time/run"; "r^2" ]
    (List.sort compare !rows)

(* E9 — Figure 8: impact of the sample size tau on the relative sampling
   overhead 100*(R - r)/r, per correlation group. *)

open Rox_workload
open Bench_common

let run ~full () =
  header "Figure 8: impact of sample size tau on sampling overhead";
  let per_group = if full then 12 else 6 in
  let scale = if full then 50 else 20 in
  let ctx = load_dblp ~scale (Array.to_list Dblp.venues) in
  let nonempty =
    List.filter
      (fun (_, vs) ->
        Correlation.nonempty_joint
          (List.map (fun v -> List.assoc v.Dblp.name ctx.by_name) vs))
      (Combos.all_combinations Dblp.venues)
  in
  let chosen = Combos.sample_per_group ~seed:31 ~per_group nonempty in
  let taus = [ 25; 100; 400 ] in
  let overhead_of tau group =
    let of_group = List.filter (fun (g, _) -> g = group) chosen in
    let ovs =
      List.map
        (fun (_, vs) ->
          let compiled = compile_combo ctx vs in
          let config = { (Rox_core.Session.default_config ()) with Rox_core.Session.tau } in
          let result =
            Rox_core.Optimizer.run (Rox_core.Session.create ~config ()) compiled
          in
          let c = result.Rox_core.Optimizer.counter in
          let sampling = Rox_algebra.Cost.read c Rox_algebra.Cost.Sampling in
          let execution = Rox_algebra.Cost.read c Rox_algebra.Cost.Execution in
          100.0 *. float_of_int sampling /. float_of_int (max 1 execution))
        of_group
    in
    Rox_util.Stats.mean (Array.of_list ovs)
  in
  let all_groups = Combos.groups in
  let table =
    List.map
      (fun tau ->
        let per = List.map (fun g -> overhead_of tau g) all_groups in
        let all = Rox_util.Stats.mean (Array.of_list per) in
        Printf.sprintf "%d" tau
        :: (List.map (fun v -> Printf.sprintf "%.1f%%" v) per
           @ [ Printf.sprintf "%.1f%%" all ]))
      taus
  in
  Rox_util.Table_fmt.print ~header:[ "tau"; "2:2"; "3:1"; "4:0"; "all" ] table;
  Printf.printf
    "\n(the paper finds tau=25 and tau=100 close, tau=400 markedly costlier —\n\
    \ supporting the default tau=100)\n"

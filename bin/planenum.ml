(* Plan-space enumeration tool (the "small tool that enumerates all plans
   that ROX could potentially consider" of Section 4.2).

     rox-planenum --venue VLDB --venue ICDE --venue ICIP --venue ADBIS --scale 10

   Enumerates every canonical join order x step placement for the
   DBLP-template query over the given venues, executes each, and reports
   work units and cumulative intermediate join cardinality, together with
   the classical optimizer's choice and ROX's. *)

open Cmdliner
open Rox_workload
open Rox_classical

let run venue_names scale reduction seed sort_by_work =
  let venues =
    match venue_names with
    | [] -> List.map Dblp.find_venue [ "VLDB"; "ICDE"; "ICIP"; "ADBIS" ]
    | names ->
      List.map
        (fun n ->
          try Dblp.find_venue n
          with Not_found ->
            Printf.eprintf "unknown venue %S\n" n;
            exit 2)
        names
  in
  let engine = Rox_storage.Engine.create () in
  let params = { Dblp.default_gen with Dblp.scale; reduction; seed } in
  let loaded = Dblp.load ~params engine venues in
  List.iter
    (fun l ->
      Printf.printf "%-18s %-6s %7d author tags\n" l.Dblp.venue.Dblp.name
        (String.concat "," (List.map Dblp.area_name l.Dblp.venue.Dblp.areas))
        l.Dblp.author_tag_count)
    loaded;
  let compiled =
    Rox_xquery.Compile.compile_string engine
      (Dblp.query_for (List.map Dblp.uri_of venues))
  in
  let graph = compiled.Rox_xquery.Compile.graph in
  let template =
    match Enumerate.analyze graph with
    | Some t -> t
    | None ->
      prerr_endline "query does not match the k-document join template";
      exit 1
  in
  let classical_order = Classical_opt.join_order engine graph template in
  let rox = Rox_core.Optimizer.run_default compiled in
  let rox_counter = rox.Rox_core.Optimizer.counter in
  let rows = ref [] in
  List.iter
    (fun (order, placement, edges) ->
      let entry =
        let session =
          Rox_core.Session.create
            ~config:
              { (Rox_core.Session.default_config ()) with
                Rox_core.Session.budgets =
                  { Rox_core.Session.default_budgets with max_rows = 5_000_000 } }
            ()
        in
        match Executor.execute session engine graph edges with
        | run ->
          ( Rox_algebra.Cost.total run.Executor.counter,
            string_of_int run.Executor.join_rows )
        | exception Rox_joingraph.Runtime.Blowup { rows; _ } ->
          (max_int, Printf.sprintf ">%d (blowup)" rows)
      in
      let marks =
        (if Enumerate.equal_order order classical_order then " [classical]" else "")
      in
      rows :=
        ( fst entry,
          [
            Enumerate.order_name order ^ marks;
            Enumerate.placement_name placement;
            (if fst entry = max_int then "blowup" else string_of_int (fst entry));
            snd entry;
          ] )
        :: !rows)
    (Enumerate.canonical_plans graph template);
  let sorted =
    if sort_by_work then List.sort (fun (a, _) (b, _) -> compare a b) !rows
    else List.rev !rows
  in
  Rox_util.Table_fmt.print
    ~header:[ "join order"; "placement"; "work units"; "cumulative join rows" ]
    (List.map snd sorted);
  Printf.printf
    "\n%d plans enumerated; classical chose %s\nROX: sampling=%d execution=%d total=%d\n"
    (List.length !rows)
    (Enumerate.order_name classical_order)
    (Rox_algebra.Cost.read rox_counter Rox_algebra.Cost.Sampling)
    (Rox_algebra.Cost.read rox_counter Rox_algebra.Cost.Execution)
    (Rox_algebra.Cost.total rox_counter)

let cmd =
  let venues =
    Arg.(value & opt_all string [] & info [ "venue" ] ~docv:"NAME"
           ~doc:"Venue (repeatable; default VLDB ICDE ICIP ADBIS — the Figure 5 combination).")
  in
  let scale = Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N" ~doc:"Replication factor.") in
  let reduction =
    Arg.(value & opt int 10 & info [ "reduction" ] ~docv:"R" ~doc:"Base size divisor.")
  in
  let seed = Arg.(value & opt int 2009 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.") in
  let sort_by_work =
    Arg.(value & flag & info [ "sort" ] ~doc:"Sort plans by work (default: enumeration order).")
  in
  Cmd.v
    (Cmd.info "rox-planenum" ~doc:"Enumerate and execute the canonical plan space of the DBLP join query (Section 4.2).")
    Term.(const run $ venues $ scale $ reduction $ seed $ sort_by_work)

let () = exit (Cmd.eval cmd)

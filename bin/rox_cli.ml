(* The ROX query processor CLI.

     rox --doc data/xmark.xml query.xq
     echo 'for $a in doc("x.xml")//author return $a' | rox --doc x.xml -
     rox --doc a.xml --doc b.xml --graph --trace --optimizer rox query.xq

   Documents are parsed, shredded and indexed; the query is compiled to a
   Join Graph and evaluated with the selected optimizer. The answer
   sequence is serialized to stdout (use --count to print only its size,
   --limit to truncate). *)

open Cmdliner

type optimizer = Opt_rox | Opt_greedy | Opt_static | Opt_midquery

let optimizer_conv =
  Arg.enum
    [ ("rox", Opt_rox); ("greedy", Opt_greedy); ("static", Opt_static);
      ("midquery", Opt_midquery) ]

(* Shard counts must be powers of two (Lru.create enforces it); reject
   bad values at the command line instead of surfacing the exception. *)
let shards_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 && n land (n - 1) = 0 -> Ok n
    | Some n ->
      Error (`Msg (Printf.sprintf "shard count %d is not a power of two" n))
    | None -> Error (`Msg (Printf.sprintf "invalid shard count %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let read_query = function
  | "-" ->
    let buf = Buffer.create 1024 in
    (try
       while true do
         Buffer.add_channel buf stdin 1
       done
     with End_of_file -> ());
    Buffer.contents buf
  | path ->
    (match open_in_bin path with
     | exception Sys_error m ->
       Printf.eprintf "%s\n" m;
       exit 1
     | ic ->
       let n = in_channel_length ic in
       let s = really_input_string ic n in
       close_in ic;
       s)

let serialize_node engine (doc_id, pre) =
  let doc = (Rox_storage.Engine.get engine doc_id).Rox_storage.Engine.doc in
  match Rox_shred.Doc.kind doc pre with
  | Rox_shred.Nodekind.Elem ->
    let rec build p =
      match Rox_shred.Doc.kind doc p with
      | Rox_shred.Nodekind.Elem ->
        let attrs =
          Rox_shred.Navigation.attributes doc p
          |> Array.to_list
          |> List.map (fun a ->
                 { Rox_xmldom.Tree.name = Rox_xmldom.Qname.of_string (Rox_shred.Doc.name doc a);
                   value = Rox_shred.Doc.value doc a })
        in
        let children =
          Rox_shred.Navigation.children doc p |> Array.to_list |> List.map build
        in
        Rox_xmldom.Tree.Element
          { Rox_xmldom.Tree.tag = Rox_xmldom.Qname.of_string (Rox_shred.Doc.name doc p);
            attrs; children }
      | Rox_shred.Nodekind.Text -> Rox_xmldom.Tree.Text (Rox_shred.Doc.value doc p)
      | Rox_shred.Nodekind.Comment -> Rox_xmldom.Tree.Comment (Rox_shred.Doc.value doc p)
      | Rox_shred.Nodekind.Pi ->
        Rox_xmldom.Tree.Pi (Rox_shred.Doc.name doc p, Rox_shred.Doc.value doc p)
      | Rox_shred.Nodekind.Attr | Rox_shred.Nodekind.Doc ->
        Rox_xmldom.Tree.Text ""
    in
    (match build pre with
     | Rox_xmldom.Tree.Element _ as e ->
       Rox_xmldom.Xml_writer.to_string (Rox_xmldom.Tree.document e)
     | _ -> assert false)
  | Rox_shred.Nodekind.Text -> Rox_xmldom.Xml_writer.escape_text (Rox_shred.Doc.value doc pre)
  | Rox_shred.Nodekind.Attr ->
    Printf.sprintf "%s=\"%s\"" (Rox_shred.Doc.name doc pre)
      (Rox_xmldom.Xml_writer.escape_attr (Rox_shred.Doc.value doc pre))
  | Rox_shred.Nodekind.Comment -> Printf.sprintf "<!--%s-->" (Rox_shred.Doc.value doc pre)
  | Rox_shred.Nodekind.Pi ->
    Printf.sprintf "<?%s %s?>" (Rox_shred.Doc.name doc pre) (Rox_shred.Doc.value doc pre)
  | Rox_shred.Nodekind.Doc -> "<!-- document root -->"

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let run docs query_file show_graph show_trace optimizer tau seed parallel_parts
    deadline_ms max_sampled_rows count_only limit cache_mb cache_shards
    cache_cost_aware cache_stats profile trace_out metrics_out slow_log slow_ms =
  (* The slow log needs span timings, so --slow-log arms the sink too. *)
  let telemetry_on =
    profile || trace_out <> None || metrics_out <> None || slow_log <> None
  in
  let sink = Rox_telemetry.Sink.create ~enabled:telemetry_on () in
  let engine = Rox_storage.Engine.create () in
  List.iter
    (fun path ->
      let tree =
        try Rox_xmldom.Xml_parser.parse_file path with
        | Rox_xmldom.Xml_parser.Parse_error { line; column; message } ->
          Printf.eprintf "%s:%d:%d: parse error: %s\n" path line column message;
          exit 1
        | Sys_error m ->
          Printf.eprintf "%s\n" m;
          exit 1
      in
      let uri = Filename.basename path in
      ignore (Rox_storage.Engine.add_tree engine ~uri tree : Rox_storage.Engine.docref);
      Printf.eprintf "loaded %s as doc(%S)\n" path uri)
    docs;
  let source = read_query query_file in
  let compiled =
    try Rox_xquery.Compile.compile_string ~telemetry:sink engine source with
    | Rox_xquery.Parser.Parse_error m ->
      Printf.eprintf "query parse error: %s\n" m;
      exit 1
    | Rox_xquery.Compile.Unsupported m ->
      Printf.eprintf "unsupported query: %s\n" m;
      exit 1
  in
  if show_graph then prerr_string (Rox_joingraph.Pretty.to_string compiled.Rox_xquery.Compile.graph);
  let cache =
    if cache_mb > 0 then
      Some
        (Rox_cache.Store.of_megabytes ~shards:cache_shards
           ~policy:(if cache_cost_aware then Rox_cache.Lru.Cost_aware
                    else Rox_cache.Lru.Lru_only)
           engine cache_mb)
    else None
  in
  if (cache_mb > 0 || cache_stats)
     && not (optimizer = Opt_rox || optimizer = Opt_greedy)
  then
    Printf.eprintf
      "note: --cache-mb/--cache-stats only apply to the rox and greedy optimizers\n";
  (* Everything a run may touch is owned by one explicit session built
     from the command-line flags. *)
  let budgets =
    { Rox_core.Session.default_budgets with
      deadline_ms = (if deadline_ms > 0 then Some deadline_ms else None);
      max_sampled_rows =
        (if max_sampled_rows > 0 then Some max_sampled_rows else None) }
  in
  let session_config use_chain =
    { (Rox_core.Session.default_config ()) with
      Rox_core.Session.tau; seed; use_chain; budgets }
  in
  (* One pool for the whole invocation, shared by whichever session the
     optimizer choice builds; [--parallel-parts 1] spawns nothing and runs
     the strictly sequential engine byte-for-byte. *)
  let pool =
    if parallel_parts > 1 then Some (Rox_core.Pool.create ~parts:parallel_parts)
    else None
  in
  (* Telemetry outputs are written on success AND on a budget abort — an
     aborted run's partial profile is exactly what one wants to inspect. *)
  let emit_telemetry ?work_units () =
    if telemetry_on then begin
      let m = Rox_telemetry.Sink.metrics sink in
      (match cache with Some store -> Rox_cache.Store.observe_into store m | None -> ());
      (match trace_out with
       | Some path ->
         write_file path (Rox_telemetry.Export.chrome_trace [ (0, sink) ]);
         Printf.eprintf "wrote Chrome trace (%d span(s)) to %s\n"
           (Rox_telemetry.Sink.span_count sink) path
       | None -> ());
      (match metrics_out with
       | Some path ->
         write_file path (Rox_telemetry.Export.prometheus m);
         Printf.eprintf "wrote metrics to %s\n" path
       | None -> ());
      if profile then prerr_string (Rox_telemetry.Export.profile ?work_units m)
    end
  in
  (* The flight recorder rides along only to feed the slow log here: a
     one-shot run has no scrape surface, so it is built when (and only
     when) --slow-log asks for the JSONL. *)
  let recorder =
    match slow_log with
    | None -> None
    | Some path ->
      Some (Rox_telemetry.Recorder.create ?slow_ms ~slow_log:path ())
  in
  let cur_session = ref None in
  let t0 = Unix.gettimeofday () in
  let latency_ns () = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
  let flight session ~plan ~status =
    match recorder with
    | None -> ()
    | Some rc ->
      ignore
        (Rox_core.Session.flight_record session rc ~query:source ~plan
           ~latency_ns:(latency_ns ()) ~status
          : Rox_telemetry.Recorder.record);
      (match slow_log with
       | Some path ->
         Printf.eprintf "slow-log: %d line(s) written to %s\n"
           (Rox_telemetry.Recorder.log_lines rc) path
       | None -> ());
      Rox_telemetry.Recorder.close rc
  in
  let answer, counter, plan_session =
    try
      match optimizer with
      | Opt_rox | Opt_greedy ->
        let trace = Rox_joingraph.Trace.create ~enabled:show_trace () in
        let session =
          Rox_core.Session.create
            ~config:(session_config (optimizer = Opt_rox))
            ~trace ?cache ~telemetry:sink ?pool ()
        in
        cur_session := Some session;
        let answer, result = Rox_core.Optimizer.answer session compiled in
        if show_trace then begin
          List.iter
            (fun id ->
              let e = Rox_joingraph.Graph.edge compiled.Rox_xquery.Compile.graph id in
              Printf.eprintf "executed edge %d: %s\n" id
                (Rox_joingraph.Pretty.edge_line compiled.Rox_xquery.Compile.graph e))
            (Rox_joingraph.Trace.execution_order trace)
        end;
        ( answer, result.Rox_core.Optimizer.counter,
          (result.Rox_core.Optimizer.edge_order, session) )
      | Opt_static ->
        let order =
          Rox_classical.Classical_opt.static_order engine compiled.Rox_xquery.Compile.graph
        in
        let session =
          Rox_core.Session.create ~config:(session_config false) ~telemetry:sink
            ?pool ()
        in
        cur_session := Some session;
        let answer, run = Rox_classical.Executor.answer session compiled order in
        ( answer, run.Rox_classical.Executor.counter,
          (List.map (fun e -> e.Rox_joingraph.Edge.id) order, session) )
      | Opt_midquery ->
        let session =
          Rox_core.Session.create ~config:(session_config false) ~telemetry:sink
            ?pool ()
        in
        cur_session := Some session;
        let answer, run = Rox_classical.Midquery.answer session compiled in
        Printf.eprintf "mid-query re-optimizations: %d\n" run.Rox_classical.Midquery.replans;
        (answer, run.Rox_classical.Midquery.counter, ([], session))
    with Rox_algebra.Cost.Budget_exceeded { reason; _ } as exn ->
      (match Rox_algebra.Cost.budget_message exn with
       | Some m -> Printf.eprintf "aborted: %s\n" m
       | None -> ());
      emit_telemetry ();
      (* An aborted run still slow-logs: errored records always write. *)
      (match !cur_session with
       | Some session ->
         let status =
           match reason with
           | Rox_algebra.Cost.Deadline -> "deadline"
           | Rox_algebra.Cost.Sampled_rows -> "sampled_rows"
         in
         flight session ~plan:[] ~status
       | None -> ());
      Option.iter Rox_core.Pool.shutdown pool;
      exit 2
  in
  let dt = Unix.gettimeofday () -. t0 in
  let plan, session = plan_session in
  flight session ~plan ~status:"ok";
  Option.iter Rox_core.Pool.shutdown pool;
  Printf.eprintf "answer: %d nodes; work: sampling=%d execution=%d; %.3fs\n"
    (Array.length answer)
    (Rox_algebra.Cost.read counter Rox_algebra.Cost.Sampling)
    (Rox_algebra.Cost.read counter Rox_algebra.Cost.Execution)
    dt;
  emit_telemetry
    ~work_units:
      ( Rox_algebra.Cost.read counter Rox_algebra.Cost.Sampling,
        Rox_algebra.Cost.read counter Rox_algebra.Cost.Execution )
    ();
  (match cache with
   | Some store when cache_stats ->
     prerr_string (Rox_cache.Store.stats_to_string (Rox_cache.Store.stats store))
   | _ -> ());
  if count_only then Printf.printf "%d\n" (Array.length answer)
  else begin
    let return_doc =
      (Rox_joingraph.Graph.vertex compiled.Rox_xquery.Compile.graph
         compiled.Rox_xquery.Compile.tail.Rox_xquery.Tail.return_vertex)
        .Rox_joingraph.Vertex.doc_id
    in
    Array.iteri
      (fun i pre ->
        if limit = 0 || i < limit then
          print_endline (serialize_node engine (return_doc, pre)))
      answer;
    if limit > 0 && Array.length answer > limit then
      Printf.printf "... (%d more)\n" (Array.length answer - limit)
  end

(* ---------------------------------------------------------------------- *)
(* analyze: static analysis + trace verification + contract sanitizer.    *)

module A = Rox_analysis

(* One analysis case: compile, check the graph, run ROX with the sanitizer
   armed and the trace enabled, then verify the trace and the executed
   plan. *)
let analyze_case ?(quiet = false) ~subject engine query =
  match Rox_xquery.Compile.compile_string engine query with
  | exception Rox_xquery.Compile.Rejected d -> A.Report.make ~subject [ d ]
  | exception Rox_xquery.Parser.Parse_error m ->
    A.Report.make ~subject
      [ A.Diagnostic.error "RX000" A.Diagnostic.Graph_loc ("query parse error: " ^ m) ]
  | exception Rox_xquery.Compile.Unsupported m ->
    A.Report.make ~subject
      [ A.Diagnostic.error "RX000" A.Diagnostic.Graph_loc ("unsupported query: " ^ m) ]
  | compiled ->
    let graph = compiled.Rox_xquery.Compile.graph in
    let diags = ref (A.Graph_check.check graph) in
    let trace = Rox_joingraph.Trace.create () in
    (* Telemetry rides along so the RX4xx span checks run against the same
       trace: every Edge_executed event must have its execute_edge span. *)
    let sink = Rox_telemetry.Sink.create ~enabled:true () in
    (* The sanitizer is a per-session capability: build an explicit
       sanitize-on session instead of flipping any global flag. *)
    let config =
      { (Rox_core.Session.default_config ()) with Rox_core.Session.sanitize = true }
    in
    let session = Rox_core.Session.create ~config ~trace ~telemetry:sink () in
    if not quiet then
      Printf.printf "%s: %s\n" subject (Rox_core.Session.describe session);
    (match
       A.Contract.wrap ~label:subject (fun () ->
           Rox_core.Optimizer.run session compiled)
     with
     | Error d -> diags := !diags @ [ d ]
     | Ok result ->
       diags :=
         !diags
         @ A.Trace_check.check graph trace
         @ A.Plan_check.check graph result.Rox_core.Optimizer.edge_order
         @ A.Telemetry_check.check ~trace sink);
    A.Report.make ~subject !diags

let quickstart_document =
  {|<library>
  <book year="2009"><title>Run-time Query Optimization</title>
    <author>Abdel Kader</author><author>Boncz</author></book>
  <book year="2004"><title>Staircase Join</title>
    <author>Grust</author><author>van Keulen</author><author>Teubner</author></book>
  <book year="2009"><title>Join Graph Isolation</title>
    <author>Grust</author><author>Mayr</author><author>Rittinger</author></book>
</library>|}

let quickstart_query =
  {|for $b in doc("library.xml")//book[./@year = 2009],
    $a in doc("library.xml")//author
where $b//author/text() = $a/text()
return $a|}

let xmark_query op =
  Printf.sprintf
    {|let $d := doc("xmark.xml")
for $o in $d//open_auction[.//current/text() %s 145],
    $p in $d//person[.//province],
    $i in $d//item[./quantity = 1]
where $o//bidder//personref/@person = $p/@id and
      $o//itemref/@item = $i/@id
return $o|}
    op

let showdown_query =
  {|let $d := doc("xmark.xml")
for $o in $d//open_auction[.//current/text() > 145],
    $p in $d//person[.//province]
where $o//bidder//personref/@person = $p/@id
return $o|}

(* The built-in suite: the quickstart query, the Section 3.2 XMark pair
   plus the showdown query, and the Table 3 DBLP author chain. *)
let builtin_cases ?(quiet = false) () =
  let analyze_case = analyze_case ~quiet in
  let quickstart () =
    let engine = Rox_storage.Engine.create () in
    ignore
      (Rox_storage.Engine.add_tree engine ~uri:"library.xml"
         (Rox_xmldom.Xml_parser.parse_string quickstart_document)
        : Rox_storage.Engine.docref);
    [ analyze_case ~subject:"quickstart" engine quickstart_query ]
  in
  let xmark () =
    let engine = Rox_storage.Engine.create () in
    let params = Rox_workload.Xmark.scaled 0.05 in
    ignore
      (Rox_workload.Xmark.generate ~params engine ~uri:"xmark.xml"
        : Rox_storage.Engine.docref);
    [
      analyze_case ~subject:"xmark q1 (current < 145)" engine (xmark_query "<");
      analyze_case ~subject:"xmark qm1 (current > 145)" engine (xmark_query ">");
      analyze_case ~subject:"xmark showdown" engine showdown_query;
    ]
  in
  let dblp () =
    let engine = Rox_storage.Engine.create () in
    let venues = List.map Rox_workload.Dblp.find_venue [ "VLDB"; "ICDE"; "SIGMOD"; "EDBT" ] in
    let params = { Rox_workload.Dblp.default_gen with reduction = 400 } in
    let loaded = Rox_workload.Dblp.load ~params engine venues in
    let uris =
      List.map (fun l -> Rox_workload.Dblp.uri_of l.Rox_workload.Dblp.venue) loaded
    in
    [ analyze_case ~subject:"dblp author chain (4 venues)" engine
        (Rox_workload.Dblp.query_for uris) ]
  in
  quickstart () @ xmark () @ dblp ()

let analyze docs query_file list_codes codes_md explain json =
  if list_codes then begin
    List.iter
      (fun (code, doc) -> Printf.printf "%s  %s\n" code doc)
      A.Diagnostic.code_docs;
    0
  end
  else if codes_md then begin
    print_string (A.Diagnostic.registry_markdown ());
    0
  end
  else
    match explain with
    | Some code ->
      (match A.Diagnostic.explain code with
       | Some text ->
         print_string text;
         0
       | None ->
         Printf.eprintf
           "unknown diagnostic code %s (try `rox analyze --codes`)\n" code;
         2)
    | None ->
  begin
    let reports =
      match query_file with
      | None -> builtin_cases ~quiet:json ()
      | Some qf ->
        let engine = Rox_storage.Engine.create () in
        List.iter
          (fun path ->
            let tree =
              try Rox_xmldom.Xml_parser.parse_file path with
              | Rox_xmldom.Xml_parser.Parse_error { line; column; message } ->
                Printf.eprintf "%s:%d:%d: parse error: %s\n" path line column message;
                exit 1
              | Sys_error m ->
                Printf.eprintf "%s\n" m;
                exit 1
            in
            let uri = Filename.basename path in
            ignore (Rox_storage.Engine.add_tree engine ~uri tree : Rox_storage.Engine.docref))
          docs;
        [ analyze_case ~quiet:json ~subject:qf engine (read_query qf) ]
    in
    if json then print_string (A.Report.json_string reports)
    else begin
      List.iter (fun r -> A.Report.print r; print_newline ()) reports;
      let errors = List.fold_left (fun n r -> n + A.Report.errors r) 0 reports in
      let warnings = List.fold_left (fun n r -> n + A.Report.warnings r) 0 reports in
      Printf.printf "analyzed %d case(s): %d error(s), %d warning(s)\n"
        (List.length reports) errors warnings
    end;
    A.Report.exit_code reports
  end

(* ---------------------------------------------------------------------- *)
(* lint: the static mutable-global scan against the capability allowlist. *)

let lint root json list_bindings =
  if list_bindings then begin
    List.iter
      (fun b ->
        Printf.printf "%s:%d: %s %s (%s)\n" b.A.Global_lint.gb_file
          b.A.Global_lint.gb_line
          (A.Capability.kind_string b.A.Global_lint.gb_kind)
          b.A.Global_lint.gb_name b.A.Global_lint.gb_what)
      (A.Global_lint.scan_root root);
    0
  end
  else begin
    let report = A.Global_lint.run ~root in
    if json then print_string (A.Report.json_string [ report ])
    else begin
      A.Report.print report;
      Printf.printf "lint %s: %d error(s), %d warning(s)\n" root
        (A.Report.errors report)
        (A.Report.warnings report)
    end;
    A.Report.exit_code [ report ]
  end

(* ---------------------------------------------------------------------- *)
(* racecheck: the RX5xx dynamic race detector. Default run = fixture      *)
(* sweep (the detector must flag every seeded bug and stay silent on the  *)
(* fixed twins — exit 3 if its teeth are gone) + a recorded replay of the *)
(* multi-domain parallel-serving workload, which must come back clean.    *)

let racecheck_workload ~domains ~iters ~scale () =
  let serve_diags = ref [] in
  let race_diags =
    A.Race_fixtures.with_recording (fun () ->
        (* Everything is created *inside* the armed region so every cache,
           engine epoch, aggregate and session registers its site. *)
        let engine = Rox_storage.Engine.create () in
        let params = Rox_workload.Xmark.scaled scale in
        ignore
          (Rox_workload.Xmark.generate ~params engine ~uri:"xmark.xml"
            : Rox_storage.Engine.docref);
        let queries = [ xmark_query "<"; xmark_query ">"; showdown_query ] in
        let compiled_list =
          List.map (Rox_xquery.Compile.compile_string engine) queries
        in
        let cache = Rox_cache.Store.of_megabytes engine 8 in
        let aggregate = Rox_telemetry.Aggregate.create () in
        A.Race_fixtures.fork_join domains (fun _ ->
            for _ = 1 to iters do
              List.iter
                (fun compiled ->
                  let telemetry = Rox_telemetry.Sink.create ~enabled:true () in
                  let session = Rox_core.Session.create ~cache ~telemetry () in
                  let answer =
                    Rox_core.Session.confine session (fun () ->
                        fst (Rox_core.Optimizer.answer session compiled))
                  in
                  ignore (answer : _ array);
                  Rox_telemetry.Aggregate.absorb aggregate
                    (Rox_telemetry.Sink.metrics telemetry))
                compiled_list
            done);
        (* Intra-query pass: the same queries with every session lent one
           shared 2-part pool, so partitioned edge kernels and concurrent
           racing probes run under the armed log — the recording covers the
           pool's generation/batch handoff (hb fork/join tokens) alongside
           the client domains' own session traffic. *)
        let pool = Rox_core.Pool.create ~parts:2 in
        A.Race_fixtures.fork_join domains (fun _ ->
            for _ = 1 to iters do
              List.iter
                (fun compiled ->
                  let telemetry = Rox_telemetry.Sink.create ~enabled:true () in
                  let session =
                    Rox_core.Session.create ~cache ~telemetry ~pool ()
                  in
                  let answer =
                    Rox_core.Session.confine session (fun () ->
                        fst (Rox_core.Optimizer.answer session compiled))
                  in
                  ignore (answer : _ array);
                  Rox_telemetry.Aggregate.absorb aggregate
                    (Rox_telemetry.Sink.metrics telemetry))
                compiled_list
            done);
        Rox_core.Pool.shutdown pool;
        (* Served pass: the same queries through the serving front-end's
           shared state (admission queue, in-flight table, audit counters)
           — client domains submitting against a 2-worker pool, so the
           recording covers the server's mutex discipline too. *)
        let server =
          Rox_serve.Server.create
            (Rox_serve.Server.config ~cache ~workers:2 ~queue_capacity:64
               engine)
        in
        A.Race_fixtures.fork_join domains (fun i ->
            for _ = 1 to iters do
              List.iter
                (fun q ->
                  let query =
                    Rox_serve.Protocol.query
                      ~client_id:(Printf.sprintf "domain%d" i) q
                  in
                  ignore
                    (Rox_serve.Server.submit server query
                      : Rox_serve.Protocol.response))
                queries
            done);
        Rox_serve.Server.shutdown server;
        serve_diags := Rox_serve.Server.self_check server)
  in
  race_diags @ !serve_diags

let racecheck fixture json domains iters scale =
  match fixture with
  | Some name ->
    (match A.Race_fixtures.find name with
     | None ->
       Printf.eprintf "unknown fixture %s; available: %s\n" name
         (String.concat ", "
            (List.map (fun (n, _, _, _) -> n) A.Race_fixtures.all));
       2
     | Some (n, run, descr, _expected) ->
       let report = A.Report.make ~subject:("racecheck:" ^ n) (run ()) in
       if json then print_string (A.Report.json_string [ report ])
       else begin
         A.Report.print report;
         Printf.printf "racecheck fixture %s (%s): %d error(s), %d warning(s)\n"
           n descr
           (A.Report.errors report)
           (A.Report.warnings report)
       end;
       A.Report.exit_code [ report ])
  | None ->
    (* Self-test: every fixture must produce exactly its expected codes —
       in particular the seeded race must come back RX501. A detector
       that cannot see the planted bug blesses nothing (exit 3). *)
    let codes_of diags =
      List.sort_uniq compare (List.map (fun d -> d.A.Diagnostic.code) diags)
    in
    let failures = ref [] in
    let fixture_reports =
      List.map
        (fun (name, run, _descr, expected) ->
          let diags = run () in
          let got = codes_of diags in
          if got <> List.sort_uniq compare expected then
            failures := (name, expected, got) :: !failures;
          A.Report.make ~subject:("racecheck:" ^ name) diags)
        A.Race_fixtures.all
    in
    if !failures <> [] then begin
      List.iter
        (fun (name, expected, got) ->
          Printf.eprintf "racecheck self-test FAILED: %s expected [%s] got [%s]\n"
            name (String.concat " " expected) (String.concat " " got))
        (List.rev !failures);
      3
    end
    else begin
      let workload = racecheck_workload ~domains ~iters ~scale () in
      let wreport =
        A.Report.make ~subject:"racecheck:parallel-workload" workload
      in
      (* JSON carries only the workload findings (the fixture sweep is a
         self-test, not a finding), so its exit_code field matches the
         process exit. *)
      if json then print_string (A.Report.json_string [ wreport ])
      else begin
        Printf.printf
          "racecheck self-test: %d fixture(s) behaved as seeded\n"
          (List.length fixture_reports);
        A.Report.print wreport
      end;
      A.Report.exit_code [ wreport ]
    end

(* ---------------------------------------------------------------------- *)
(* serve: the protocol front-end over a worker-domain pool. Real mode     *)
(* listens on a Unix or TCP socket; --smoke runs a scripted client over a *)
(* socketpair against an in-process XMark engine (`make serve-smoke`).    *)

module Serve = Rox_serve.Server
module Sproto = Rox_serve.Protocol

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let serve_smoke scale slow_log slow_ms =
  let engine = Rox_storage.Engine.create () in
  let params = Rox_workload.Xmark.scaled scale in
  ignore
    (Rox_workload.Xmark.generate ~params engine ~uri:"xmark.xml"
      : Rox_storage.Engine.docref);
  let cache = Rox_cache.Store.of_megabytes engine 8 in
  let server =
    Serve.create
      (Serve.config ~cache ~workers:2 ~queue_capacity:16 ?slow_ms ?slow_log
         engine)
  in
  let srv_fd, cli_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let handler = Thread.create (fun () -> Serve.handle_connection server srv_fd) () in
  let decoder = Sproto.decoder () in
  let send req = Sproto.write_frame cli_fd (Sproto.render_request req) in
  let recv () =
    match Sproto.read_frame cli_fd decoder with
    | `Frame payload ->
      (match Sproto.parse_response payload with
       | Ok r -> r
       | Error m -> failwith ("bad response: " ^ m))
    | `Eof -> failwith "unexpected EOF"
    | `Corrupt m -> failwith ("corrupt response stream: " ^ m)
  in
  let failures = ref 0 in
  let check name ok =
    Printf.printf "serve-smoke: %-32s %s\n" name (if ok then "ok" else "FAIL");
    if not ok then incr failures
  in
  send Sproto.Ping;
  check "ping" (recv () = Sproto.Pong);
  let q = Sproto.query ~client_id:"smoke" (xmark_query "<") in
  send (Sproto.Query q);
  let r1 = recv () in
  check "query answers"
    (match r1 with Sproto.Answer a -> a.total > 0 | _ -> false);
  send (Sproto.Query q);
  let r2 = recv () in
  check "repeat query bit-identical"
    (match (r1, r2) with
     | Sproto.Answer a, Sproto.Answer b -> a.ids = b.ids && a.total = b.total
     | _ -> false);
  send (Sproto.Query (Sproto.query ~max_sampled_rows:1 (xmark_query ">")));
  check "budget abort is an ERR reply"
    (match recv () with Sproto.Err (Sproto.Sampled_rows, _) -> true | _ -> false);
  send Sproto.Stats;
  let stats = match recv () with Sproto.Stats_reply kvs -> kvs | _ -> [] in
  let stat k = try List.assoc k stats with Not_found -> "<absent>" in
  check "stats requests=5" (stat "requests" = "5");
  check "stats executed=3" (stat "executed" = "3");
  check "stats rejected=0" (stat "rejected" = "0");
  check "stats tenant.smoke=2" (stat "tenant.smoke" = "2");
  (* Flight recorder: every record is visible before its reply, so the
     counts right after the three query answers are deterministic. *)
  check "stats records=3" (stat "records" = "3");
  check "stats records_dropped=0" (stat "records_dropped" = "0");
  check "stats uptime_ms present" (stat "uptime_ms" <> "<absent>");
  check "stats started_at present" (stat "started_at" <> "<absent>");
  check "stats traces_retained >= 1"
    (match int_of_string_opt (stat "traces_retained") with
     | Some n -> n >= 1
     | None -> false);
  send Sproto.Metrics;
  let mtext =
    match recv () with Sproto.Metrics_reply s -> s | _ -> ""
  in
  check "metrics has recorder series"
    (contains_substring mtext "rox_recorder_records_total");
  check "metrics has tenant series"
    (contains_substring mtext "rox_tenant_requests_total");
  send (Sproto.Recent 10);
  let recent_lines =
    match recv () with Sproto.Recent_reply l -> l | _ -> []
  in
  check "recent returns 3 records" (List.length recent_lines = 3);
  let recent_json =
    List.filter_map
      (fun l -> Result.to_option (Rox_util.Minijson.parse l))
      recent_lines
  in
  check "recent lines are JSON"
    (List.length recent_json = List.length recent_lines);
  (* The budget-aborted query errored, so its trace is always retained:
     fetch it over the wire and validate the Chrome export. *)
  let retained_id =
    List.fold_left
      (fun acc json ->
        match acc with
        | Some _ -> acc
        | None ->
          (match Rox_util.Minijson.member "retained" json with
           | Some Rox_util.Minijson.Null | None -> None
           | Some _ ->
             Option.bind
               (Option.bind
                  (Rox_util.Minijson.member "trace_id" json)
                  Rox_util.Minijson.to_num_opt)
               (fun f -> Some (int_of_float f))))
      None recent_json
  in
  check "recent shows a retained record" (retained_id <> None);
  (match retained_id with
   | None -> ()
   | Some id ->
     send (Sproto.Trace_get id);
     (match recv () with
      | Sproto.Trace_reply (rid, json) ->
        check "trace id echoes" (rid = id);
        let valid =
          match Rox_util.Minijson.parse json with
          | Error _ -> false
          | Ok parsed ->
            (match Rox_telemetry.Export.validate_chrome parsed with
             | Ok _ -> true
             | Error _ -> false)
        in
        check "trace exports valid Chrome JSON" valid;
        (match slow_log with
         | Some path ->
           let out = path ^ ".trace.json" in
           write_file out json;
           Printf.printf "serve-smoke: wrote retained trace %d to %s\n" id out
         | None -> ())
      | _ -> check "trace reply" false));
  send (Sproto.Trace_get 999_999);
  check "unknown trace id is ERR not_found"
    (match recv () with
     | Sproto.Err (Sproto.Unknown_id, _) -> true
     | _ -> false);
  send Sproto.Quit;
  check "quit acknowledged" (recv () = Sproto.Bye);
  Thread.join handler;
  Serve.shutdown server;
  check "audit self-check clean" (Serve.self_check server = []);
  (match Serve.recorder server with
   | None -> check "recorder present" false
   | Some rc ->
     check "recorder records=3 after shutdown"
       (Rox_telemetry.Recorder.records rc = 3);
     check "recorder RX7xx clean"
       (A.Recorder_check.check ~submitted:3 rc = []);
     (match slow_log with
      | Some path ->
        (* Every slow-log line must parse; the errored request always
           logs, so the file is never empty. *)
        let lines = ref [] in
        (try
           let ic = open_in path in
           (try
              while true do
                lines := input_line ic :: !lines
              done
            with End_of_file -> close_in ic)
         with Sys_error _ -> ());
        let parsed =
          List.filter_map
            (fun l -> Result.to_option (Rox_util.Minijson.parse l))
            !lines
        in
        check "slow-log non-empty" (!lines <> []);
        check "slow-log lines parse as JSON"
          (List.length parsed = List.length !lines);
        check "slow-log reconciles with recorder"
          (List.length !lines = Rox_telemetry.Recorder.log_lines rc)
      | None -> ()));
  (try Unix.close cli_fd with Unix.Unix_error _ -> ());
  Printf.printf "serve-smoke: %s\n" (if !failures = 0 then "PASS" else "FAIL");
  if !failures = 0 then 0 else 1

let serve_run docs socket port workers queue_cap max_conns cache_mb cache_shards
    cache_cost_aware parallel_parts smoke scale slow_log slow_ms =
  if smoke then serve_smoke scale slow_log slow_ms
  else begin
    let engine = Rox_storage.Engine.create () in
    List.iter
      (fun path ->
        let tree =
          try Rox_xmldom.Xml_parser.parse_file path with
          | Rox_xmldom.Xml_parser.Parse_error { line; column; message } ->
            Printf.eprintf "%s:%d:%d: parse error: %s\n" path line column message;
            exit 1
          | Sys_error m ->
            Printf.eprintf "%s\n" m;
            exit 1
        in
        let uri = Filename.basename path in
        ignore (Rox_storage.Engine.add_tree engine ~uri tree : Rox_storage.Engine.docref);
        Printf.eprintf "loaded %s as doc(%S)\n" path uri)
      docs;
    if docs = [] then
      Printf.eprintf "warning: no --doc given; every doc() reference will fail\n";
    let cache =
      if cache_mb > 0 then
        Some
          (Rox_cache.Store.of_megabytes ~shards:cache_shards
             ~policy:(if cache_cost_aware then Rox_cache.Lru.Cost_aware
                      else Rox_cache.Lru.Lru_only)
             engine cache_mb)
      else None
    in
    let server =
      Serve.create
        (Serve.config ?cache ~workers ~queue_capacity:queue_cap
           ~max_connections:max_conns ~parallel_parts:(max 1 parallel_parts)
           ?slow_ms ?slow_log engine)
    in
    let fd =
      match socket with
      | Some path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 64;
        Printf.eprintf "rox serve: listening on %s (%d worker(s), queue %d)\n"
          path workers queue_cap;
        fd
      | None ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.listen fd 64;
        Printf.eprintf
          "rox serve: listening on 127.0.0.1:%d (%d worker(s), queue %d)\n"
          port workers queue_cap;
        fd
    in
    Serve.serve server fd;
    Serve.shutdown server;
    0
  end

(* ---------------------------------------------------------------------- *)
(* profile: the built-in XMark workload under full telemetry — the self-  *)
(* contained run behind `make profile-smoke` (no external files needed).  *)

let profile_builtin trace_out metrics_out repeat scale parallel_parts slow_log
    slow_ms =
  let engine = Rox_storage.Engine.create () in
  let params = Rox_workload.Xmark.scaled scale in
  ignore
    (Rox_workload.Xmark.generate ~params engine ~uri:"xmark.xml"
      : Rox_storage.Engine.docref);
  let sink = Rox_telemetry.Sink.create ~enabled:true () in
  let cache = Rox_cache.Store.of_megabytes engine 8 in
  let recorder =
    match slow_log with
    | None -> None
    | Some path ->
      Some (Rox_telemetry.Recorder.create ?slow_ms ~slow_log:path ())
  in
  let pool =
    if parallel_parts > 1 then Some (Rox_core.Pool.create ~parts:parallel_parts)
    else None
  in
  let sampling = ref 0 and execution = ref 0 in
  let queries = [ xmark_query "<"; xmark_query ">"; showdown_query ] in
  for _ = 1 to max 1 repeat do
    List.iter
      (fun q ->
        let compiled = Rox_xquery.Compile.compile_string ~telemetry:sink engine q in
        let session = Rox_core.Session.create ~cache ~telemetry:sink ?pool () in
        let t0 = Unix.gettimeofday () in
        let answer, result = Rox_core.Optimizer.answer session compiled in
        ignore (answer : _ array);
        let c = result.Rox_core.Optimizer.counter in
        sampling := !sampling + Rox_algebra.Cost.read c Rox_algebra.Cost.Sampling;
        execution := !execution + Rox_algebra.Cost.read c Rox_algebra.Cost.Execution;
        match recorder with
        | None -> ()
        | Some rc ->
          ignore
            (Rox_core.Session.flight_record session rc ~query:q
               ~plan:result.Rox_core.Optimizer.edge_order
               ~latency_ns:
                 (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9))
               ~status:"ok"
              : Rox_telemetry.Recorder.record))
      queries
  done;
  (match (recorder, slow_log) with
   | Some rc, Some path ->
     Printf.eprintf "slow-log: %d line(s) written to %s\n"
       (Rox_telemetry.Recorder.log_lines rc) path;
     Rox_telemetry.Recorder.close rc
   | _ -> ());
  let m = Rox_telemetry.Sink.metrics sink in
  Rox_cache.Store.observe_into cache m;
  (match trace_out with
   | Some path ->
     write_file path (Rox_telemetry.Export.chrome_trace [ (0, sink) ]);
     Printf.eprintf "wrote Chrome trace (%d span(s)) to %s\n"
       (Rox_telemetry.Sink.span_count sink) path
   | None -> ());
  (match metrics_out with
   | Some path ->
     write_file path (Rox_telemetry.Export.prometheus m);
     Printf.eprintf "wrote metrics to %s\n" path
   | None -> ());
  print_string (Rox_telemetry.Export.profile ~work_units:(!sampling, !execution) m);
  Option.iter Rox_core.Pool.shutdown pool;
  0

let trace_validate file =
  let content = read_query file in
  match Rox_util.Minijson.parse content with
  | Error e ->
    Printf.eprintf "%s: JSON parse error: %s\n" file e;
    1
  | Ok json ->
    (match Rox_telemetry.Export.validate_chrome json with
     | Error e ->
       Printf.eprintf "%s: invalid Chrome trace: %s\n" file e;
       1
     | Ok n ->
       Printf.printf "%s: valid Chrome trace (%d complete event(s))\n" file n;
       0)

(* ---------------------------------------------------------------------- *)
(* stat: the scrape client — one request (STATS, METRICS, RECENT or       *)
(* TRACE) against a running rox serve, result on stdout.                  *)

let stat_run socket port metrics recent trace_id out =
  let addr =
    match socket with
    | Some path -> Unix.ADDR_UNIX path
    | None -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)
  in
  let fd =
    let domain = match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> fd
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Printf.eprintf "rox stat: cannot connect to %s: %s\n"
        (match socket with
         | Some p -> p
         | None -> Printf.sprintf "127.0.0.1:%d" port)
        (Unix.error_message e);
      exit 2
  in
  let decoder = Sproto.decoder () in
  let send req = Sproto.write_frame fd (Sproto.render_request req) in
  let recv () =
    match Sproto.read_frame fd decoder with
    | `Frame payload ->
      (match Sproto.parse_response payload with
       | Ok r -> r
       | Error m ->
         Printf.eprintf "rox stat: bad response: %s\n" m;
         exit 2)
    | `Eof ->
      Printf.eprintf "rox stat: server closed the connection\n";
      exit 2
    | `Corrupt m ->
      Printf.eprintf "rox stat: corrupt response stream: %s\n" m;
      exit 2
  in
  let req =
    if metrics then Sproto.Metrics
    else
      match (recent, trace_id) with
      | Some n, _ -> Sproto.Recent n
      | None, Some id -> Sproto.Trace_get id
      | None, None -> Sproto.Stats
  in
  send req;
  let code =
    match recv () with
    | Sproto.Stats_reply kvs ->
      List.iter (fun (k, v) -> Printf.printf "%s=%s\n" k v) kvs;
      0
    | Sproto.Metrics_reply text ->
      print_string text;
      0
    | Sproto.Recent_reply lines ->
      List.iter print_endline lines;
      0
    | Sproto.Trace_reply (id, json) ->
      (match out with
       | Some path ->
         write_file path json;
         Printf.eprintf "wrote trace %d to %s\n" id path
       | None -> print_endline json);
      0
    | Sproto.Err (kind, m) ->
      Printf.eprintf "ERR %s %s\n" (Sproto.err_kind_label kind) m;
      1
    | _ ->
      Printf.eprintf "rox stat: unexpected reply\n";
      1
  in
  send Sproto.Quit;
  (match recv () with Sproto.Bye -> () | _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  code

let docs_arg =
  Arg.(value & opt_all string [] & info [ "doc" ] ~docv:"FILE"
         ~doc:"XML document to load (repeatable); referenced in the query as doc(\"basename\").")

let trace_out_arg =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Write the telemetry spans as Chrome trace-event JSON to $(docv) \
               (load it in Perfetto or chrome://tracing).")

let metrics_out_arg =
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE"
         ~doc:"Write the metrics registry in Prometheus text exposition format \
               to $(docv).")

let slow_log_arg =
  Arg.(value & opt (some string) None & info [ "slow-log" ] ~docv:"FILE"
         ~doc:"Append one structured JSONL line (trace id, fingerprint, \
               tenant, plan digest, latency, budget spend, cache counters, \
               per-edge timings) to $(docv) for every request that errored \
               or ran at least $(b,--slow-ms) milliseconds.")

let slow_ms_arg =
  Arg.(value & opt (some int) None & info [ "slow-ms" ] ~docv:"MS"
         ~doc:"Slow-query threshold for $(b,--slow-log) in milliseconds \
               (default 100; 0 logs every request).")

let parallel_parts_arg =
  Arg.(value & opt int 1 & info [ "parallel-parts" ] ~docv:"K"
         ~doc:"Intra-query partition count: execute each physical join as K \
               partition-joins and race sampling probes concurrently on a \
               shared domain pool, merging in partition order so answers are \
               bit-identical at every K. 1 (the default) spawns no pool and \
               runs the strictly sequential engine byte-for-byte.")

let serve_cmd =
  let socket =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Listen on a Unix-domain socket at $(docv) instead of TCP.")
  in
  let port =
    Arg.(value & opt int 7077 & info [ "port" ] ~docv:"PORT"
           ~doc:"TCP port on 127.0.0.1 (default 7077; ignored with --socket).")
  in
  let workers =
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N"
           ~doc:"Worker domains executing queries (default 2).")
  in
  let queue_cap =
    Arg.(value & opt int 64 & info [ "queue-cap" ] ~docv:"N"
           ~doc:"Admission-queue capacity; a full queue answers ERR busy \
                 (default 64).")
  in
  let max_conns =
    Arg.(value & opt int 256 & info [ "max-conns" ] ~docv:"N"
           ~doc:"Concurrent-connection cap; an over-limit connection is \
                 answered one ERR busy frame and closed (default 256).")
  in
  let cache_mb =
    Arg.(value & opt int 0 & info [ "cache-mb" ] ~docv:"MB"
           ~doc:"Cross-query cache budget shared by all workers (0 = off).")
  in
  let cache_shards =
    Arg.(value & opt shards_conv Rox_cache.Store.default_shards
         & info [ "cache-shards" ] ~docv:"N"
             ~doc:"Power-of-two shard count for each cache (per-shard \
                   mutexes plus a lock-free read fast path; default 4).")
  in
  let cache_cost_aware =
    Arg.(value & flag
         & info [ "cache-cost-aware" ]
             ~doc:"Evict by cost-per-byte within the cold window instead \
                   of pure LRU: keep what is expensive to recompute.")
  in
  let smoke =
    Arg.(value & flag & info [ "smoke" ]
           ~doc:"Self-test: serve an in-process XMark engine to a scripted \
                 client over a socketpair, assert the protocol replies and \
                 the STATS counters, and exit 0/1 (behind $(b,make serve-smoke)).")
  in
  let scale =
    Arg.(value & opt float 0.02 & info [ "scale" ] ~docv:"F"
           ~doc:"XMark scale factor for the --smoke engine (default 0.02).")
  in
  let doc =
    "Serve queries over a length-prefixed socket protocol (QUERY/PING/STATS/\
     METRICS/RECENT/TRACE/QUIT) with bounded admission, a worker-domain pool, \
     fingerprint coalescing of concurrent identical requests, and an \
     always-on flight recorder (request records, tail-sampled traces, \
     optional $(b,--slow-log) JSONL). Budget overruns answer as structured \
     ERR replies (the served counterpart of the one-shot CLI's exit 2), \
     never as dropped connections."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const serve_run $ docs_arg $ socket $ port $ workers $ queue_cap
          $ max_conns $ cache_mb $ cache_shards $ cache_cost_aware
          $ parallel_parts_arg $ smoke $ scale $ slow_log_arg $ slow_ms_arg)

let stat_cmd =
  let socket =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Connect to a Unix-domain socket at $(docv) instead of TCP.")
  in
  let port =
    Arg.(value & opt int 7077 & info [ "port" ] ~docv:"PORT"
           ~doc:"TCP port on 127.0.0.1 (default 7077; ignored with --socket).")
  in
  let metrics =
    Arg.(value & flag & info [ "metrics" ]
           ~doc:"Scrape the Prometheus text exposition (METRICS) instead of \
                 the STATS key/value reply.")
  in
  let recent =
    Arg.(value & opt (some int) None & info [ "recent" ] ~docv:"N"
           ~doc:"Fetch the flight recorder's N newest request records as \
                 JSONL (RECENT).")
  in
  let trace_id =
    Arg.(value & opt (some int) None & info [ "trace" ] ~docv:"ID"
           ~doc:"Fetch one retained trace by id as Chrome trace-event JSON \
                 (TRACE); exits 1 with ERR not_found if the id was never \
                 retained or has been evicted.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE"
           ~doc:"With --trace, write the JSON to $(docv) instead of stdout \
                 (feed it to $(b,rox trace-validate)).")
  in
  let doc =
    "Scrape a running $(b,rox serve): STATS key/values by default, or \
     $(b,--metrics) (Prometheus text), $(b,--recent N) (request records as \
     JSONL), $(b,--trace ID) (one retained trace as Chrome trace-event \
     JSON). Exits 2 when the server is unreachable, 1 on an ERR reply."
  in
  Cmd.v (Cmd.info "stat" ~doc)
    Term.(const stat_run $ socket $ port $ metrics $ recent $ trace_id $ out)

let profile_cmd =
  let repeat =
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N"
           ~doc:"Run the workload N times (cache effects show from the second \
                 pass on).")
  in
  let scale =
    Arg.(value & opt float 0.05 & info [ "scale" ] ~docv:"F"
           ~doc:"XMark scale factor for the generated document (default 0.05).")
  in
  let doc =
    "Run the built-in XMark workload with telemetry enabled and print the \
     profile summary (sampling vs execution wall-clock next to the work-unit \
     split). With $(b,--trace-out) / $(b,--metrics-out) also export the spans \
     and metrics — the self-contained run behind $(b,make profile-smoke)."
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const profile_builtin $ trace_out_arg $ metrics_out_arg $ repeat
          $ scale $ parallel_parts_arg $ slow_log_arg $ slow_ms_arg)

let trace_validate_cmd =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"Chrome trace-event JSON file (or - for stdin).")
  in
  let doc =
    "Validate a Chrome trace-event JSON file produced by $(b,--trace-out): \
     parse it, check the trace-event schema, and verify span well-nesting \
     per thread lane. Exits 1 on any violation."
  in
  Cmd.v (Cmd.info "trace-validate" ~doc) Term.(const trace_validate $ file)

let json_arg =
  Arg.(value & flag & info [ "json" ]
         ~doc:"Emit the diagnostics as JSON on stdout (stable keys: reports, \
               errors, warnings, exit_code) instead of rendered text.")

let analyze_cmd =
  let query_file =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"QUERY"
           ~doc:"XQuery file to analyze (with --doc); omit to run the built-in suite.")
  in
  let list_codes =
    Arg.(value & flag & info [ "codes" ] ~doc:"List the diagnostic codes and exit.")
  in
  let codes_md =
    Arg.(value & flag & info [ "codes-md" ]
           ~doc:"Print the full diagnostic-code registry as a Markdown table \
                 (the generated section in DESIGN.md) and exit.")
  in
  let explain =
    Arg.(value & opt (some string) None & info [ "explain" ] ~docv:"CODE"
           ~doc:"Print the long explanation for one diagnostic code (e.g. \
                 $(b,RX501)) and exit; unknown codes exit 2.")
  in
  let doc =
    "Static analysis: check Join Graphs, verify optimizer traces and executed \
     plans, and run the operator-contract sanitizer over the built-in workloads \
     (or a supplied query). Exits non-zero if any error diagnostic is found."
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const analyze $ docs_arg $ query_file $ list_codes $ codes_md
          $ explain $ json_arg)

let lint_cmd =
  let root =
    Arg.(value & opt string "lib" & info [ "root" ] ~docv:"DIR"
           ~doc:"Directory tree to scan (default $(b,lib)).")
  in
  let list_bindings =
    Arg.(value & flag & info [ "list" ]
           ~doc:"Print every mutable global and mutable field the scanner \
                 finds (the inventory behind the allowlist) and exit 0.")
  in
  let doc =
    "Static mutable-state lint: scan the sources for top-level mutable \
     globals and mutable record fields, and fail (RX510) on any not covered \
     by a guarded entry in the capability allowlist. Stale allowlist entries \
     are RX511 warnings. Exits 1 on undocumented mutable state."
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(const lint $ root $ json_arg $ list_bindings)

let racecheck_cmd =
  let fixture =
    Arg.(value & opt (some string) None & info [ "fixture" ] ~docv:"NAME"
           ~doc:"Run one seeded fixture and report its diagnostics (exit 1 \
                 when they contain errors — the seeded-race fixture does). \
                 Omit to run the full self-test plus the multi-domain \
                 workload replay.")
  in
  let domains =
    Arg.(value & opt int 4 & info [ "domains" ] ~docv:"N"
           ~doc:"Worker domains for the workload replay (default 4).")
  in
  let iters =
    Arg.(value & opt int 2 & info [ "iters" ] ~docv:"N"
           ~doc:"Passes over the query list per domain (default 2).")
  in
  let scale =
    Arg.(value & opt float 0.02 & info [ "scale" ] ~docv:"F"
           ~doc:"XMark scale factor for the replayed workload (default 0.02).")
  in
  let doc =
    "Dynamic race detection (RX501-RX504): first prove the detector's teeth \
     on the seeded fixtures (every planted bug must be flagged, every fixed \
     twin must be clean — exit 3 otherwise), then record the multi-domain \
     parallel-serving workload and verify it race-free. Exits 1 if the \
     workload itself races."
  in
  Cmd.v (Cmd.info "racecheck" ~doc)
    Term.(const racecheck $ fixture $ json_arg $ domains $ iters $ scale)

let cmd =
  let docs = docs_arg in
  let query_file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY"
           ~doc:"XQuery file, or - for stdin.")
  in
  let show_graph = Arg.(value & flag & info [ "graph" ] ~doc:"Print the isolated Join Graph to stderr.") in
  let show_trace = Arg.(value & flag & info [ "trace" ] ~doc:"Print the edge execution order to stderr.") in
  let optimizer =
    Arg.(value & opt optimizer_conv Opt_rox & info [ "optimizer" ] ~docv:"OPT"
           ~doc:"Evaluation strategy: $(b,rox) (run-time optimization with chain sampling), $(b,greedy) (run-time, smallest-weight edge), $(b,static) (compile-time synopsis plan), or $(b,midquery) (static plan with validity-range re-optimization).")
  in
  let tau = Arg.(value & opt int 100 & info [ "tau" ] ~docv:"N" ~doc:"Sample size (default 100).") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Session RNG seed: equal seeds give bit-identical runs.") in
  let deadline_ms =
    Arg.(value & opt int 0 & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Wall-clock budget per query run in milliseconds (0 = none). \
                 Exceeding it aborts the run with a budget error.")
  in
  let max_sampled_rows =
    Arg.(value & opt int 0 & info [ "max-sampled-rows" ] ~docv:"N"
           ~doc:"Budget on total sampled tuples per run (0 = unlimited). \
                 Exceeding it aborts the run with a budget error.")
  in
  let count_only = Arg.(value & flag & info [ "count" ] ~doc:"Print only the answer cardinality.") in
  let limit =
    Arg.(value & opt int 20 & info [ "limit" ] ~docv:"K"
           ~doc:"Serialize at most K answer nodes (0 = all; default 20).")
  in
  let cache_mb =
    Arg.(value & opt int 0 & info [ "cache-mb" ] ~docv:"MB"
           ~doc:"Budget (MiB) for the cross-query cache of materialized edge \
                 executions and sample estimates (0 = off; default 0). Only \
                 affects the rox and greedy optimizers.")
  in
  let cache_shards =
    Arg.(value & opt shards_conv Rox_cache.Store.default_shards
         & info [ "cache-shards" ] ~docv:"N"
             ~doc:"Power-of-two shard count for each cache: keys spread \
                   across N independently locked shards with a lock-free \
                   read fast path (default 4; 1 = classic single lock).")
  in
  let cache_cost_aware =
    Arg.(value & flag
         & info [ "cache-cost-aware" ]
             ~doc:"Evict by cost-per-byte within the cold window instead \
                   of pure LRU: keep entries that are expensive to \
                   recompute rather than merely recently used.")
  in
  let cache_stats =
    Arg.(value & flag & info [ "cache-stats" ]
           ~doc:"Print cache hit/miss/eviction counters to stderr after the run \
                 (requires --cache-mb).")
  in
  let profile =
    Arg.(value & flag & info [ "profile" ]
           ~doc:"Print the telemetry profile summary (sampling vs execution \
                 wall-clock next to the work-unit split, per-stage latency \
                 quantiles, cache hit ratios) to stderr after the run.")
  in
  let doc = "ROX: run-time optimization of XQueries" in
  let run_term =
    Term.(
      const (fun docs qf g t o tau seed pp dl msr c l cmb csh cca cst p tro mo
                 sl sm ->
          run docs qf g t o tau seed pp dl msr c l cmb csh cca cst p tro mo
            sl sm;
          0)
      $ docs $ query_file $ show_graph $ show_trace $ optimizer $ tau $ seed
      $ parallel_parts_arg $ deadline_ms $ max_sampled_rows $ count_only
      $ limit $ cache_mb $ cache_shards $ cache_cost_aware $ cache_stats
      $ profile $ trace_out_arg $ metrics_out_arg $ slow_log_arg $ slow_ms_arg)
  in
  let group =
    Cmd.group ~default:run_term (Cmd.info "rox" ~doc)
      [ analyze_cmd; lint_cmd; racecheck_cmd; serve_cmd; stat_cmd; profile_cmd;
        trace_validate_cmd ]
  in
  let legacy = Cmd.v (Cmd.info "rox" ~doc) run_term in
  (group, legacy)

(* Cmd.group dispatches on the first argv token, which would reject the
   historical `rox query.xq` spelling as an unknown command: route bare
   positionals that aren't subcommand names to the plain query runner. *)
let () =
  let group, legacy = cmd in
  let bare_positional =
    Array.length Sys.argv > 1
    && String.length Sys.argv.(1) > 0
    && Sys.argv.(1).[0] <> '-'
    && Sys.argv.(1) <> "analyze"
    && Sys.argv.(1) <> "lint"
    && Sys.argv.(1) <> "racecheck"
    && Sys.argv.(1) <> "serve"
    && Sys.argv.(1) <> "stat"
    && Sys.argv.(1) <> "profile"
    && Sys.argv.(1) <> "trace-validate"
  in
  exit (Cmd.eval' (if bare_positional then legacy else group))

(* Tests for the Section 6 extensions: operator racing, approximate
   (sample-driven) execution, the path synopsis, and the mid-query
   re-optimization baseline. *)

open Rox_storage
open Rox_xquery
open Rox_core
open Rox_classical
open Helpers

let session_with adjust = Session.create ~config:(adjust (Session.default_config ())) ()

let xmark_engine () =
  let engine = Engine.create () in
  ignore
    (Rox_workload.Xmark.generate ~params:(Rox_workload.Xmark.scaled 0.02) engine
       ~uri:"xmark.xml"
      : Engine.docref);
  engine

let q1 =
  {|let $d := doc("xmark.xml")
for $o in $d//open_auction[.//current/text() < 145],
    $p in $d//person[.//province]
where $o//bidder//personref/@person = $p/@id
return $o|}

(* ---------- Operator racing ---------- *)

let test_race_correct () =
  let engine = xmark_engine () in
  let compiled = Compile.compile_string engine q1 in
  let on, _ =
    Optimizer.answer (session_with (fun c -> { c with Session.race_operators = true })) compiled
  in
  let off, _ =
    Optimizer.answer (session_with (fun c -> { c with Session.race_operators = false })) compiled
  in
  check_bool "same answers with and without racing" true (on = off);
  let naive = Naive.eval_query engine compiled.Compile.query |> List.map snd in
  check_bool "racing answer = naive" true (Array.to_list on = naive)

let test_race_prefers_empty_side () =
  (* One side empty: racing must report zero cost for it and never force
     the expensive direction. *)
  let engine, _ = engine_of_xml "<r><a><b/></a><a><b/></a><a/></r>" in
  let graph = Rox_joingraph.Graph.create () in
  let a = Rox_joingraph.Graph.add_vertex graph ~doc_id:0 (Rox_joingraph.Vertex.Element "a") in
  let z = Rox_joingraph.Graph.add_vertex graph ~doc_id:0 (Rox_joingraph.Vertex.Element "zz") in
  let e =
    Rox_joingraph.Graph.add_edge graph ~v1:a.Rox_joingraph.Vertex.id
      ~v2:z.Rox_joingraph.Vertex.id
      (Rox_joingraph.Edge.Step Rox_algebra.Axis.Child)
  in
  let state = State.create (Session.create ()) engine graph in
  ignore (State.init_vertex_from_index state a.Rox_joingraph.Vertex.id : bool);
  ignore (State.init_vertex_from_index state z.Rox_joingraph.Vertex.id : bool);
  (match Race.choose state e with
   | Race.Step_dir Rox_joingraph.Exec.From_v2 -> ()
   | Race.Step_dir Rox_joingraph.Exec.From_v1 -> Alcotest.fail "raced into the non-empty side"
   | Race.Equi_dir _ | Race.Default -> Alcotest.fail "expected a step direction")

(* ---------- Approximate (sample-driven) execution ---------- *)

let test_approximate_subset () =
  let engine = xmark_engine () in
  let compiled = Compile.compile_string engine q1 in
  let exact, _ = Optimizer.answer_default compiled in
  let approx, _ =
    Optimizer.answer
      (session_with (fun c -> { c with Session.table_fraction = Some 0.5 }))
      compiled
  in
  let exact_set = List.sort_uniq compare (Array.to_list exact) in
  let approx_set = List.sort_uniq compare (Array.to_list approx) in
  check_bool "approximate answer is a subset" true
    (List.for_all (fun n -> List.mem n exact_set) approx_set);
  check_bool "fraction thins the work" true (Array.length approx <= Array.length exact)

let test_approximate_full_fraction_exact () =
  let engine = xmark_engine () in
  let compiled = Compile.compile_string engine q1 in
  let exact, _ = Optimizer.answer_default compiled in
  let approx, _ =
    Optimizer.answer
      (session_with (fun c -> { c with Session.table_fraction = Some 1.0 }))
      compiled
  in
  check_bool "fraction 1.0 = exact" true (exact = approx)

(* ---------- Synopsis ---------- *)

let synopsis_of xml =
  let _, r = engine_of_xml xml in
  (Synopsis.build r, r)

let test_synopsis_counts () =
  let syn, _ =
    synopsis_of
      {|<lib><b year="1"><a>x</a><a>y</a></b><b><a>z</a><c><a>w</a></c></b></lib>|}
  in
  check_int "b count" 2 (Synopsis.element_count syn "b");
  check_int "a count" 4 (Synopsis.element_count syn "a");
  check_int "missing" 0 (Synopsis.element_count syn "zz");
  check_int "b/a pairs" 3 (Synopsis.child_pair_count syn ~parent:"b" ~child:"a");
  check_int "b//a pairs" 4 (Synopsis.desc_pair_count syn ~anc:"b" ~desc:"a");
  check_int "lib//a pairs" 4 (Synopsis.desc_pair_count syn ~anc:"lib" ~desc:"a");
  check_int "c/a" 1 (Synopsis.child_pair_count syn ~parent:"c" ~child:"a");
  check_int "texts under a" 4 (Synopsis.text_child_count syn ~parent:"a");
  check_int "@year on b" 1 (Synopsis.attr_count syn ~elem:"b" ~attr:"year")

let test_synopsis_estimates () =
  (* Uniform fan-out: estimates should be near-exact. *)
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "<r>";
  for i = 0 to 99 do
    Buffer.add_string buf
      (Printf.sprintf "<item><price>%d</price><tag/><tag/></item>" (i + 1))
  done;
  Buffer.add_string buf "</r>";
  let syn, _ = synopsis_of (Buffer.contents buf) in
  let open Rox_joingraph in
  let est =
    Synopsis.estimate_step syn ~context_card:100.0 ~context:(Vertex.Element "item")
      ~axis:Rox_algebra.Axis.Child ~target:(Vertex.Element "tag")
  in
  check_bool "child fan-out exact on uniform data" true (abs_float (est -. 200.0) < 1e-6);
  let est_half =
    Synopsis.estimate_step syn ~context_card:50.0 ~context:(Vertex.Element "item")
      ~axis:Rox_algebra.Axis.Child ~target:(Vertex.Element "tag")
  in
  check_bool "scales with context estimate" true (abs_float (est_half -. 100.0) < 1e-6);
  (* Range selectivity from the histogram: prices uniform on [1,100]. *)
  let sel = Synopsis.selectivity syn ~elem:"price" (Rox_algebra.Selection.Le 50.0) in
  check_bool "about half below the median" true (sel > 0.4 && sel < 0.6);
  let sel_all = Synopsis.selectivity syn ~elem:"price" (Rox_algebra.Selection.Ge 0.0) in
  check_bool "everything passes an open bound" true (sel_all > 0.99);
  let sel_eq = Synopsis.selectivity syn ~elem:"price" (Rox_algebra.Selection.Eq "13") in
  check_bool "equality ~ 1/distinct" true (abs_float (sel_eq -. 0.01) < 1e-6)

let test_synopsis_desc_step () =
  let syn, _ = synopsis_of "<r><a><x/><b><x/><x/></b></a><a/></r>" in
  let open Rox_joingraph in
  let est =
    Synopsis.estimate_step syn ~context_card:2.0 ~context:(Vertex.Element "a")
      ~axis:Rox_algebra.Axis.Descendant ~target:(Vertex.Element "x")
  in
  check_bool "descendant pairs exact" true (abs_float (est -. 3.0) < 1e-6)

(* ---------- Mid-query re-optimization ---------- *)

let dblp_compiled () =
  let engine = Engine.create () in
  let params = { Rox_workload.Dblp.default_gen with Rox_workload.Dblp.reduction = 400 } in
  ignore
    (Rox_workload.Dblp.load ~params engine
       (List.map Rox_workload.Dblp.find_venue [ "VLDB"; "ICDE"; "SIGMOD"; "EDBT" ]));
  Compile.compile_string engine
    (Rox_workload.Dblp.query_for [ "VLDB.xml"; "ICDE.xml"; "SIGMOD.xml"; "EDBT.xml" ])

let test_midquery_correct_dblp () =
  let compiled = dblp_compiled () in
  let nodes, run = Midquery.answer_default compiled in
  let naive =
    Naive.eval_query compiled.Compile.engine compiled.Compile.query |> List.map snd
  in
  check_bool "midquery = naive on DBLP" true (Array.to_list nodes = naive);
  check_bool "replans bounded" true (run.Midquery.replans <= 20)

let test_midquery_correct_xmark () =
  let engine = xmark_engine () in
  let compiled = Compile.compile_string engine q1 in
  let nodes, _ = Midquery.answer_default compiled in
  let naive = Naive.eval_query engine compiled.Compile.query |> List.map snd in
  check_bool "midquery = naive on XMark" true (Array.to_list nodes = naive)

let test_synopsis_order_covers () =
  let compiled = dblp_compiled () in
  let order = Midquery.synopsis_order compiled.Compile.engine compiled.Compile.graph in
  let nodes, _ = Executor.answer_default compiled order in
  let naive =
    Naive.eval_query compiled.Compile.engine compiled.Compile.query |> List.map snd
  in
  check_bool "synopsis static order = naive" true (Array.to_list nodes = naive)

let test_midquery_replans_on_surprise () =
  (* Build data where the synopsis prediction is wildly wrong because of a
     correlation: all 'b' children live under the a's that also have 'c'. *)
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "<r>";
  for i = 0 to 199 do
    if i < 10 then Buffer.add_string buf "<a><c/><b/><b/><b/><b/><b/></a>"
    else Buffer.add_string buf "<a/>"
  done;
  Buffer.add_string buf "</r>";
  let engine, _ = engine_of_xml (Buffer.contents buf) in
  let compiled =
    Compile.compile_string engine {|for $a in doc("doc0.xml")//a[./c][./b] return $a|}
  in
  let nodes, _run = Midquery.answer_default compiled in
  check_int "10 selective results" 10 (Array.length nodes)

let suite =
  [
    Alcotest.test_case "race: correct" `Quick test_race_correct;
    Alcotest.test_case "race: prefers empty side" `Quick test_race_prefers_empty_side;
    Alcotest.test_case "approximate: subset" `Quick test_approximate_subset;
    Alcotest.test_case "approximate: fraction 1 exact" `Quick test_approximate_full_fraction_exact;
    Alcotest.test_case "synopsis counts" `Quick test_synopsis_counts;
    Alcotest.test_case "synopsis estimates" `Quick test_synopsis_estimates;
    Alcotest.test_case "synopsis descendant step" `Quick test_synopsis_desc_step;
    Alcotest.test_case "midquery = naive (DBLP)" `Quick test_midquery_correct_dblp;
    Alcotest.test_case "midquery = naive (XMark)" `Quick test_midquery_correct_xmark;
    Alcotest.test_case "synopsis order covers" `Quick test_synopsis_order_covers;
    Alcotest.test_case "midquery replans on surprise" `Quick test_midquery_replans_on_surprise;
  ]
